// The reference P4 simulator ("BMv2" in the paper's setup).
//
// Executes a P4 model program on concrete packets given a set of installed
// table entries. SwitchV runs every generated test packet through this
// interpreter and through the switch under test, and compares behaviours.
//
// Hashing is configurable and defaults to round-robin, exactly as the paper
// configures BMv2 (§5 "Hashing"): run k enumerates hash draw k, and
// EnumerateBehaviors() collects the set of possible behaviours by re-running
// until an outcome repeats.
#ifndef SWITCHV_BMV2_INTERPRETER_H_
#define SWITCHV_BMV2_INTERPRETER_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "p4ir/p4info.h"
#include "p4ir/program.h"
#include "p4runtime/decoded_entry.h"
#include "packet/packet.h"

namespace switchv::bmv2 {

// Packet-replication-engine configuration: clone session id -> output port.
using CloneSessionMap = std::map<std::uint16_t, std::uint16_t>;

// Observation hook for coverage-guided fuzzing (fuzzer/coverage.h): called
// once per table application with the action the packet took (the table's
// default action on a miss). Views point into program-owned strings and
// are valid only for the duration of the call. Purely observational — an
// attached sink never changes a run's outcome.
class CoverageSink {
 public:
  virtual ~CoverageSink() = default;
  virtual void OnTableApply(std::string_view table,
                            std::string_view action) = 0;
};

class Interpreter {
 public:
  // `program` must outlive the interpreter and be validated.
  Interpreter(const p4ir::Program& program, packet::ParserSpec parser,
              CloneSessionMap clone_sessions = {});

  // Replaces the installed entries of all tables. Entries must be
  // syntactically valid for the program's P4Info.
  Status InstallEntries(const std::vector<p4rt::TableEntry>& entries);

  // Runs one packet through ingress (and egress unless dropped) using the
  // given hash seed: hash statement k in the run yields seed + k.
  StatusOr<packet::ForwardingOutcome> Run(std::string_view packet_bytes,
                                          std::uint16_t ingress_port,
                                          std::uint64_t hash_seed) const;

  // The set of possible behaviours under round-robin hashing: runs with
  // seeds 0, 1, 2, ... until further seeds stop producing new behaviours
  // (paper §5 "until the same behavior occurs twice", hardened for
  // weighted selectors), capped at `max_runs` — which must exceed the
  // largest WCMP total weight for exhaustive member coverage.
  // Deterministic programs yield exactly one behaviour.
  StatusOr<std::vector<packet::ForwardingOutcome>> EnumerateBehaviors(
      std::string_view packet_bytes, std::uint16_t ingress_port,
      int max_runs = 160) const;

  const p4ir::P4Info& p4info() const { return p4info_; }
  const p4ir::Program& program() const { return program_; }

  // Attaches (or detaches, with nullptr) a coverage observation sink.
  // Const because Run() is const and the batch engine holds the scalar
  // interpreter by const reference; the sink is observation-only state.
  void set_coverage_sink(CoverageSink* sink) const { coverage_sink_ = sink; }
  CoverageSink* coverage_sink() const { return coverage_sink_; }

 private:
  // The 64-lane batch engine reuses the program/parser/entry state and the
  // scalar Run as its divergence fallback.
  friend class BatchInterpreter;

  struct RunState {
    packet::ParsedPacket packet;
    std::uint64_t hash_seed = 0;
    int hash_draws = 0;
  };

  StatusOr<BitString> EvalExpr(
      const p4ir::Expr& expr, const RunState& state,
      const std::map<std::string, BitString>* args) const;
  Status ApplyAction(const p4ir::Action& action,
                     const std::vector<BitString>& arg_values,
                     RunState& state) const;
  Status ApplyTable(const p4ir::Table& table, RunState& state) const;
  Status ExecControl(const std::vector<p4ir::ControlNode>& nodes,
                     RunState& state) const;
  // Index of the matching entry with highest precedence, or -1 for miss.
  int SelectEntry(const p4ir::Table& table,
                  const std::vector<p4rt::DecodedEntry>& entries,
                  const RunState& state) const;

  const p4ir::Program& program_;
  p4ir::P4Info p4info_;
  packet::ParserSpec parser_;
  CloneSessionMap clone_sessions_;
  std::map<std::string, std::vector<p4rt::DecodedEntry>> entries_;
  mutable CoverageSink* coverage_sink_ = nullptr;
};

}  // namespace switchv::bmv2

#endif  // SWITCHV_BMV2_INTERPRETER_H_
