#include "bmv2/lane_kernels.h"

namespace switchv::bmv2 {

void LanePlanes::Transpose(const uint128* values, std::uint64_t lane_mask,
                           uint128 bits) {
  populated = bits;
  for (uint128 b = bits; b != 0; b &= b - 1) {
    planes[CountTrailingZeros128(b)] = 0;
  }
  for (std::uint64_t m = lane_mask; m != 0; m &= m - 1) {
    const int lane = __builtin_ctzll(m);
    const uint128 v = values[lane];
    for (uint128 b = bits; b != 0; b &= b - 1) {
      const int pos = CountTrailingZeros128(b);
      planes[pos] |=
          static_cast<std::uint64_t>((v >> pos) & 1) << lane;
    }
  }
}

std::uint64_t LaneTernaryMatch(const LanePlanes& planes, uint128 value,
                               uint128 mask, std::uint64_t seed_mask) {
  std::uint64_t match = seed_mask;
  for (uint128 b = mask; match != 0 && b != 0; b &= b - 1) {
    const int pos = CountTrailingZeros128(b);
    const std::uint64_t plane = planes.planes[pos];
    match &= ((value >> pos) & 1) != 0 ? plane : ~plane;
  }
  return match;
}

}  // namespace switchv::bmv2
