#include "bmv2/batch_interpreter.h"

#include <algorithm>
#include <cstring>
#include <set>

#include "util/strings.h"

namespace switchv::bmv2 {

using packet::ForwardingOutcome;

namespace {

constexpr std::uint64_t kAllLanes = ~std::uint64_t{0};

std::uint64_t LowLaneMask(int n) {
  return n >= 64 ? kAllLanes : (std::uint64_t{1} << n) - 1;
}

int Popcount(std::uint64_t m) { return __builtin_popcountll(m); }

}  // namespace

BatchInterpreter::BatchInterpreter(const Interpreter& scalar)
    : scalar_(scalar), program_(scalar.program_) {
  fields_ = program_.AllFields();
  for (std::size_t f = 0; f < fields_.size(); ++f) {
    field_index_.emplace(fields_[f].name, static_cast<int>(f));
  }
  for (const p4ir::HeaderDef& h : program_.headers) {
    header_index_.emplace(h.name, static_cast<int>(header_names_.size()));
    header_names_.push_back(h.name);
  }
  auto find_field = [&](const char* name) {
    auto it = field_index_.find(name);
    return it == field_index_.end() ? -1 : it->second;
  };
  ingress_port_f_ = find_field(p4ir::kIngressPortField);
  egress_port_f_ = find_field(p4ir::kEgressPortField);
  drop_f_ = find_field(p4ir::kDropField);
  punt_f_ = find_field(p4ir::kPuntField);
  clone_session_f_ = find_field(p4ir::kCloneSessionField);

  const std::size_t slab = fields_.size() * kLaneCount;
  tmpl_values_.resize(slab);
  tmpl_widths_.resize(slab);
  tmpl_valid_.resize(header_names_.size());
  values_.resize(slab);
  widths_.resize(slab);
  valid_.resize(header_names_.size());

  PrepareTables();
  PreparePacketIo();
}

void BatchInterpreter::PreparePacketIo() {
  // Zero-init template: every program field at its declared width, the
  // width BitString::FromUint(0, f.width) would store.
  decl_widths_.resize(fields_.size() * kLaneCount);
  for (std::size_t f = 0; f < fields_.size(); ++f) {
    const std::uint8_t w = static_cast<std::uint8_t>(
        BitString::FromUint(0, fields_[f].width).width());
    std::memset(&decl_widths_[f * kLaneCount], w, kLaneCount);
  }

  io_plan_.resize(program_.headers.size());
  for (std::size_t h = 0; h < program_.headers.size(); ++h) {
    const p4ir::HeaderDef& header = program_.headers[h];
    PlanHeader& plan = io_plan_[h];
    for (const p4ir::FieldDef& f : header.fields) {
      plan.total_bits += f.width;
      auto it = field_index_.find(f.name);
      if (it == field_index_.end()) {
        // A header field outside AllFields() has no slab slot; scalar
        // Parse would still read it. Nothing vector-side can be exact.
        slab_io_ok_ = false;
        continue;
      }
      plan.fields.emplace_back(it->second, f.width);
    }
    // Transitions keyed on this header, in spec order; first match wins,
    // exactly as packet::Parse scans them. Select fields that are not
    // program fields are skipped (scalar's fields.find would miss too —
    // parsing this header inserted all *its* fields into the map).
    const std::string prefix = header.name + ".";
    for (const packet::ParseTransition& t : scalar_.parser_.transitions) {
      if (!HasPrefix(t.select_field, prefix)) continue;
      auto fit = field_index_.find(t.select_field);
      if (fit == field_index_.end()) continue;
      PlanTransition pt;
      pt.field_index = fit->second;
      pt.value = t.value;
      auto hit = header_index_.find(t.next_header);
      pt.next = hit == header_index_.end() ? -1 : hit->second;
      plan.transitions.push_back(pt);
    }
  }
  if (auto it = header_index_.find(scalar_.parser_.start_header);
      it != header_index_.end()) {
    parse_start_ = it->second;
  }
}

void BatchInterpreter::PrepareTables() {
  std::size_t max_keys = 0;
  for (const p4ir::Table& table : program_.tables) {
    PreparedTable pt;
    pt.keys.resize(table.keys.size());
    max_keys = std::max(max_keys, table.keys.size());
    for (std::size_t k = 0; k < table.keys.size(); ++k) {
      auto it = field_index_.find(table.keys[k].field);
      if (it == field_index_.end()) {
        // Scalar SelectEntry would throw on fields.at(); a validated
        // program never reaches here — demote on apply.
        pt.vectorizable = false;
      } else {
        pt.keys[k].field_index = it->second;
      }
    }
    const std::vector<p4rt::DecodedEntry>* installed = nullptr;
    if (auto it = scalar_.entries_.find(table.name);
        it != scalar_.entries_.end()) {
      installed = &it->second;
    }
    if (installed != nullptr && pt.vectorizable) {
      pt.sorted.reserve(installed->size());
      for (const p4rt::DecodedEntry& entry : *installed) {
        if (entry.matches.size() != table.keys.size()) {
          pt.vectorizable = false;
          break;
        }
        PreparedEntry pe;
        pe.entry = &entry;
        pe.matches.resize(table.keys.size());
        for (std::size_t k = 0; k < table.keys.size(); ++k) {
          const p4rt::DecodedMatch& m = entry.matches[k];
          pe.matches[k].present = m.present;
          if (m.present) {
            pe.matches[k].value = m.value.value();
            pe.matches[k].mask = m.mask.value();
            pt.keys[k].union_mask |= m.mask.value();
          }
        }
        pt.sorted.push_back(std::move(pe));
      }
      // Descending precedence; stable so the first match in sorted order is
      // exactly the entry scalar SelectEntry picks (strictly-greater key,
      // earliest installed index among equals).
      auto precedence = [&table](const PreparedEntry& pe) {
        // Numerically larger priority wins (P4Runtime); longest prefix
        // otherwise — the same keys scalar SelectEntry maximizes.
        if (table.RequiresPriority()) return pe.entry->priority;
        int prefix_sum = 0;
        for (const p4rt::DecodedMatch& m : pe.entry->matches) {
          if (m.present) prefix_sum += m.prefix_len;
        }
        return prefix_sum;
      };
      std::stable_sort(pt.sorted.begin(), pt.sorted.end(),
                       [&](const PreparedEntry& a, const PreparedEntry& b) {
                         return precedence(a) > precedence(b);
                       });
    }
    plane_scratch_.resize(std::max(plane_scratch_.size(), max_keys));
    entry_hit_scratch_.resize(
        std::max(entry_hit_scratch_.size(), pt.sorted.size()), 0);
    tables_.emplace(table.name, std::move(pt));
  }
}

void BatchInterpreter::SetupLanes(std::span<const LanePacket> lanes) {
  setup_fallback_ = 0;
  std::fill(tmpl_valid_.begin(), tmpl_valid_.end(), 0);
  // Zero-init all lanes at once: packet::Parse starts every program field
  // at zero with its declared width.
  std::memset(tmpl_values_.data(), 0, tmpl_values_.size() * sizeof(uint128));
  std::memcpy(tmpl_widths_.data(), decl_widths_.data(), tmpl_widths_.size());
  const int n = static_cast<int>(lanes.size());
  for (int l = 0; l < n; ++l) {
    lane_inputs_[l] = lanes[l];
    if (!slab_io_ok_ || ingress_port_f_ < 0) {
      // Programs the slabs cannot carry re-run scalar end to end.
      setup_fallback_ |= std::uint64_t{1} << l;
      payload_[l] = std::string_view();
      continue;
    }
    const std::string_view bytes = lanes[l].bytes;
    // Consecutive lanes of the same packet (the enumeration packer emits
    // seed runs per packet) parse once: copy the previous lane's column.
    if (l > 0 && bytes.data() == lanes[l - 1].bytes.data() &&
        bytes.size() == lanes[l - 1].bytes.size() &&
        lanes[l].ingress_port == lanes[l - 1].ingress_port) {
      for (std::size_t f = 0; f < fields_.size(); ++f) {
        tmpl_values_[f * kLaneCount + l] = tmpl_values_[f * kLaneCount + l - 1];
      }
      // Parse leaves every width at its declared value except the
      // ingress-port metadata seeded below.
      tmpl_widths_[static_cast<std::size_t>(ingress_port_f_) * kLaneCount +
                   l] =
          tmpl_widths_[static_cast<std::size_t>(ingress_port_f_) * kLaneCount +
                       l - 1];
      for (std::size_t h = 0; h < tmpl_valid_.size(); ++h) {
        tmpl_valid_[h] |= ((tmpl_valid_[h] >> (l - 1)) & 1) << l;
      }
      payload_[l] = payload_[l - 1];
      continue;
    }
    const std::size_t total_bits = bytes.size() * 8;
    std::size_t bit_pos = 0;
    // Slab-direct mirror of packet::Parse: walk the header chain with a
    // big-endian bit cursor, breaking on a missing or truncated header
    // (the partial header stays invalid, the cursor stays put).
    int current = parse_start_;
    while (current >= 0) {
      const PlanHeader& plan = io_plan_[current];
      if (bit_pos + static_cast<std::size_t>(plan.total_bits) > total_bits) {
        break;
      }
      for (const auto& [fi, width] : plan.fields) {
        uint128 value = 0;
        for (int i = 0; i < width; ++i) {
          const std::size_t byte = bit_pos >> 3;
          const int bit = 7 - static_cast<int>(bit_pos & 7);
          value = (value << 1) |
                  ((static_cast<unsigned char>(bytes[byte]) >> bit) & 1);
          ++bit_pos;
        }
        tmpl_values_[static_cast<std::size_t>(fi) * kLaneCount + l] = value;
      }
      tmpl_valid_[current] |= std::uint64_t{1} << l;
      int next = -1;
      for (const PlanTransition& t : plan.transitions) {
        if (tmpl_values_[static_cast<std::size_t>(t.field_index) *
                             kLaneCount +
                         l] == t.value) {
          next = t.next;
          break;
        }
      }
      current = next;
    }
    // Remaining whole bytes from the (byte-aligned) cursor; views into the
    // caller's buffers, which outlive the batch call.
    payload_[l] = bytes.substr(bit_pos / 8);
    // Ingress-port metadata, as scalar Run seeds it before the pipeline.
    tmpl_values_[static_cast<std::size_t>(ingress_port_f_) * kLaneCount + l] =
        lanes[l].ingress_port;
    tmpl_widths_[static_cast<std::size_t>(ingress_port_f_) * kLaneCount + l] =
        static_cast<std::uint8_t>(
            BitString::FromUint(lanes[l].ingress_port, p4ir::kPortWidth)
                .width());
  }
}

void BatchInterpreter::LoadField(int f, std::uint64_t& mask, EvalVec& out) {
  const std::uint8_t* w = &widths_[static_cast<std::size_t>(f) * kLaneCount];
  const uint128* v = &values_[static_cast<std::size_t>(f) * kLaneCount];
  const int first = __builtin_ctzll(mask);
  std::uint8_t uniform = w[first];
  bool mixed = false;
  for (std::uint64_t m = mask; m != 0; m &= m - 1) {
    if (w[__builtin_ctzll(m)] != uniform) {
      mixed = true;
      break;
    }
  }
  if (mixed) {
    // Assignments store the expression's width, so lanes that took
    // different action paths can disagree; keep the majority width
    // vectorized and demote the rest (ties keep the lowest lane's width).
    int best_count = 0;
    for (std::uint64_t m = mask; m != 0; m &= m - 1) {
      const std::uint8_t cand = w[__builtin_ctzll(m)];
      int c = 0;
      for (std::uint64_t m2 = mask; m2 != 0; m2 &= m2 - 1) {
        if (w[__builtin_ctzll(m2)] == cand) ++c;
      }
      if (c > best_count) {
        best_count = c;
        uniform = cand;
      }
    }
    std::uint64_t keep = 0;
    for (std::uint64_t m = mask; m != 0; m &= m - 1) {
      const int l = __builtin_ctzll(m);
      if (w[l] == uniform) keep |= std::uint64_t{1} << l;
    }
    Demote(mask & ~keep);
    mask = keep;
  }
  out.width = uniform;
  for (std::uint64_t m = mask; m != 0; m &= m - 1) {
    const int l = __builtin_ctzll(m);
    out.v[l] = v[l];
  }
}

void BatchInterpreter::StoreField(int f, std::uint64_t mask,
                                  const EvalVec& value) {
  std::uint8_t* w = &widths_[static_cast<std::size_t>(f) * kLaneCount];
  uint128* v = &values_[static_cast<std::size_t>(f) * kLaneCount];
  for (std::uint64_t m = mask; m != 0; m &= m - 1) {
    const int l = __builtin_ctzll(m);
    v[l] = value.v[l];
    w[l] = static_cast<std::uint8_t>(value.width);
  }
}

void BatchInterpreter::EvalExprBatch(
    const p4ir::Expr& expr, const std::map<std::string, BitString>* args,
    std::uint64_t& mask, EvalVec& out) {
  switch (expr.kind()) {
    case p4ir::Expr::Kind::kConstant: {
      const uint128 c = expr.constant().value();
      out.width = expr.constant().width();
      for (std::uint64_t m = mask; m != 0; m &= m - 1) {
        out.v[__builtin_ctzll(m)] = c;
      }
      return;
    }
    case p4ir::Expr::Kind::kField: {
      auto it = field_index_.find(expr.name());
      if (it == field_index_.end()) {
        Demote(mask);
        mask = 0;
        return;
      }
      LoadField(it->second, mask, out);
      return;
    }
    case p4ir::Expr::Kind::kParam: {
      const BitString* bound = nullptr;
      if (args != nullptr) {
        if (auto it = args->find(expr.name()); it != args->end()) {
          bound = &it->second;
        }
      }
      if (bound == nullptr) {
        Demote(mask);
        mask = 0;
        return;
      }
      out.width = bound->width();
      const uint128 c = bound->value();
      for (std::uint64_t m = mask; m != 0; m &= m - 1) {
        out.v[__builtin_ctzll(m)] = c;
      }
      return;
    }
    case p4ir::Expr::Kind::kValid: {
      std::uint64_t bits = 0;
      if (auto it = header_index_.find(expr.name());
          it != header_index_.end()) {
        bits = valid_[it->second];
      }
      out.width = 1;
      for (std::uint64_t m = mask; m != 0; m &= m - 1) {
        const int l = __builtin_ctzll(m);
        out.v[l] = (bits >> l) & 1;
      }
      return;
    }
    case p4ir::Expr::Kind::kUnary: {
      EvalVec child;
      EvalExprBatch(expr.children()[0], args, mask, child);
      if (mask == 0) return;
      if (expr.unary_op() == p4ir::UnaryOp::kLogicalNot) {
        out.width = 1;
        for (std::uint64_t m = mask; m != 0; m &= m - 1) {
          const int l = __builtin_ctzll(m);
          out.v[l] = child.v[l] == 0 ? 1 : 0;
        }
      } else {
        out.width = child.width;
        const uint128 wm = LowBitMask(child.width);
        for (std::uint64_t m = mask; m != 0; m &= m - 1) {
          const int l = __builtin_ctzll(m);
          out.v[l] = ~child.v[l] & wm;
        }
      }
      return;
    }
    case p4ir::Expr::Kind::kBinary: {
      EvalVec a;
      EvalExprBatch(expr.children()[0], args, mask, a);
      if (mask == 0) return;
      EvalVec b;
      EvalExprBatch(expr.children()[1], args, mask, b);
      if (mask == 0) return;
      using Op = p4ir::BinaryOp;
      const Op op = expr.binary_op();
      switch (op) {
        case Op::kEq:
        case Op::kNe:
        case Op::kLt:
        case Op::kLe:
        case Op::kGt:
        case Op::kGe:
        case Op::kAnd:
        case Op::kOr: {
          out.width = 1;
          for (std::uint64_t m = mask; m != 0; m &= m - 1) {
            const int l = __builtin_ctzll(m);
            const uint128 x = a.v[l];
            const uint128 y = b.v[l];
            bool r = false;
            switch (op) {
              case Op::kEq: r = x == y; break;
              case Op::kNe: r = x != y; break;
              case Op::kLt: r = x < y; break;
              case Op::kLe: r = x <= y; break;
              case Op::kGt: r = x > y; break;
              case Op::kGe: r = x >= y; break;
              case Op::kAnd: r = x != 0 && y != 0; break;
              case Op::kOr: r = x != 0 || y != 0; break;
              default: break;
            }
            out.v[l] = r ? 1 : 0;
          }
          return;
        }
        case Op::kBitAnd:
        case Op::kBitOr:
        case Op::kBitXor:
        case Op::kAdd:
        case Op::kSub: {
          // Same-width semantics as BitString: the result keeps the left
          // operand's width; the raw value is masked to it.
          out.width = a.width;
          const uint128 wm = LowBitMask(a.width);
          for (std::uint64_t m = mask; m != 0; m &= m - 1) {
            const int l = __builtin_ctzll(m);
            const uint128 x = a.v[l];
            const uint128 y = b.v[l];
            uint128 r = 0;
            switch (op) {
              case Op::kBitAnd: r = x & y; break;
              case Op::kBitOr: r = x | y; break;
              case Op::kBitXor: r = x ^ y; break;
              case Op::kAdd: r = x + y; break;
              case Op::kSub: r = x - y; break;
              default: break;
            }
            out.v[l] = r & wm;
          }
          return;
        }
      }
      Demote(mask);
      mask = 0;
      return;
    }
  }
  Demote(mask);
  mask = 0;
}

void BatchInterpreter::ApplyActionBatch(
    const p4ir::Action& action, const std::vector<BitString>& arg_values,
    std::uint64_t mask) {
  if (arg_values.size() != action.params.size()) {
    Demote(mask);
    return;
  }
  std::map<std::string, BitString> args;
  for (std::size_t i = 0; i < action.params.size(); ++i) {
    args.emplace(action.params[i].name, arg_values[i]);
  }
  for (const p4ir::Statement& stmt : action.body) {
    mask &= live_;
    if (mask == 0) return;
    switch (stmt.kind) {
      case p4ir::Statement::Kind::kAssign: {
        EvalVec value;
        std::uint64_t m = mask;
        EvalExprBatch(*stmt.value, &args, m, value);
        if (m == 0) break;
        auto it = field_index_.find(stmt.target);
        if (it == field_index_.end()) {
          // Scalar would grow the field map with a non-program field; the
          // slab cannot represent that, so those lanes re-run scalar.
          Demote(m);
          break;
        }
        StoreField(it->second, m, value);
        break;
      }
      case p4ir::Statement::Kind::kSetValid: {
        auto it = header_index_.find(stmt.target);
        if (it == header_index_.end()) {
          Demote(mask);
          break;
        }
        if (stmt.valid) {
          valid_[it->second] |= mask;
        } else {
          valid_[it->second] &= ~mask;
        }
        break;
      }
      case p4ir::Statement::Kind::kHash: {
        auto it = field_index_.find(stmt.target);
        if (it == field_index_.end()) {
          Demote(mask);
          break;
        }
        // Round-robin hashing, one counter per lane: draw k of a run with
        // seed s yields s + k truncated to the destination width.
        int width = fields_[it->second].width;
        if (width < 1) width = 1;
        if (width > BitString::kMaxWidth) width = BitString::kMaxWidth;
        EvalVec value;
        value.width = width;
        const uint128 wm = LowBitMask(width);
        for (std::uint64_t m = mask; m != 0; m &= m - 1) {
          const int l = __builtin_ctzll(m);
          value.v[l] =
              (static_cast<uint128>(lane_seeds_[l]) +
               static_cast<uint128>(static_cast<std::uint64_t>(draws_[l]))) &
              wm;
          ++draws_[l];
        }
        StoreField(it->second, mask, value);
        break;
      }
    }
  }
}

void BatchInterpreter::ApplyTableBatch(const p4ir::Table& table,
                                       std::uint64_t mask) {
  auto pt_it = tables_.find(table.name);
  if (pt_it == tables_.end() || !pt_it->second.vectorizable) {
    Demote(mask);
    return;
  }
  const PreparedTable& pt = pt_it->second;

  std::uint64_t undecided = mask;
  // (entry, lanes that selected it), in precedence order.
  std::vector<std::pair<const PreparedEntry*, std::uint64_t>> hits;
  if (Popcount(mask) < 24) {
    // Small lane groups (divergent-branch subgroups, partial batches):
    // the bit-sliced kernel costs O(entries × mask bits) word ops no
    // matter how few lanes ask, so a scalar-shaped scan — one 128-bit op
    // per (entry, key), first hit in the same precedence order wins — is
    // cheaper below roughly the average entry-mask popcount.
    touched_scratch_.clear();
    for (std::uint64_t m = mask; m != 0; m &= m - 1) {
      const int l = __builtin_ctzll(m);
      for (std::size_t e = 0; e < pt.sorted.size(); ++e) {
        const PreparedEntry& pe = pt.sorted[e];
        bool hit = true;
        for (std::size_t k = 0; k < pt.keys.size(); ++k) {
          const PreparedMatch& pm = pe.matches[k];
          if (!pm.present) continue;  // wildcard
          const uint128 v =
              values_[static_cast<std::size_t>(pt.keys[k].field_index) *
                          kLaneCount +
                      l];
          if (((v ^ pm.value) & pm.mask) != 0) {
            hit = false;
            break;
          }
        }
        if (hit) {
          if (entry_hit_scratch_[e] == 0) touched_scratch_.push_back(e);
          entry_hit_scratch_[e] |= std::uint64_t{1} << l;
          undecided &= ~(std::uint64_t{1} << l);
          break;
        }
      }
    }
    std::sort(touched_scratch_.begin(), touched_scratch_.end());
    for (const std::size_t e : touched_scratch_) {
      hits.emplace_back(&pt.sorted[e], entry_hit_scratch_[e]);
      entry_hit_scratch_[e] = 0;
    }
  } else {
    // Word-parallel entry selection: transpose each key's lanes once,
    // then resolve all lanes against the precedence-sorted entries with
    // one kernel call per (entry, key); lanes leave `undecided` at their
    // first (= highest-precedence) hit.
    for (std::size_t k = 0; k < pt.keys.size(); ++k) {
      plane_scratch_[k].Transpose(
          &values_[static_cast<std::size_t>(pt.keys[k].field_index) *
                   kLaneCount],
          mask, pt.keys[k].union_mask);
    }
    for (const PreparedEntry& pe : pt.sorted) {
      if (undecided == 0) break;
      std::uint64_t m = undecided;
      for (std::size_t k = 0; k < pt.keys.size() && m != 0; ++k) {
        const PreparedMatch& pm = pe.matches[k];
        if (!pm.present) continue;  // wildcard
        m = LaneTernaryMatch(plane_scratch_[k], pm.value, pm.mask, m);
      }
      if (m == 0) continue;
      hits.emplace_back(&pe, m);
      undecided &= ~m;
    }
  }

  if (undecided != 0) {
    const p4ir::Action* default_action =
        program_.FindAction(table.default_action);
    if (default_action == nullptr) {
      Demote(undecided);
    } else {
      if (coverage_sink_ != nullptr) {
        RecordLaneEvents(undecided, table.name, table.default_action);
      }
      ApplyActionBatch(*default_action, table.default_action_args, undecided);
    }
  }

  for (const auto& [pe, lanes] : hits) {
    std::uint64_t m = lanes & live_;
    if (m == 0) continue;
    const p4rt::DecodedEntry& entry = *pe->entry;
    if (!entry.is_action_set) {
      const p4rt::DecodedAction& chosen = entry.actions[0];
      const p4ir::Action* action = program_.FindAction(chosen.name);
      if (action == nullptr) {
        Demote(m);
        continue;
      }
      if (coverage_sink_ != nullptr) {
        RecordLaneEvents(m, table.name, chosen.name);
      }
      ApplyActionBatch(*action, chosen.args, m);
      continue;
    }
    // Weighted member selection by the next hash draw, per lane.
    const int total = entry.TotalWeight();
    if (total <= 0) {
      Demote(m);
      continue;
    }
    std::vector<std::uint64_t> member_lanes(entry.actions.size(), 0);
    for (std::uint64_t rest = m; rest != 0; rest &= rest - 1) {
      const int l = __builtin_ctzll(rest);
      std::uint64_t draw =
          (lane_seeds_[l] + static_cast<std::uint64_t>(draws_[l])) %
          static_cast<std::uint64_t>(total);
      ++draws_[l];
      std::size_t idx = 0;
      for (std::size_t i = 0; i < entry.actions.size(); ++i) {
        if (draw < static_cast<std::uint64_t>(entry.actions[i].weight)) {
          idx = i;
          break;
        }
        draw -= static_cast<std::uint64_t>(entry.actions[i].weight);
      }
      member_lanes[idx] |= std::uint64_t{1} << l;
    }
    for (std::size_t i = 0; i < entry.actions.size(); ++i) {
      if (member_lanes[i] == 0) continue;
      const p4ir::Action* action = program_.FindAction(entry.actions[i].name);
      if (action == nullptr) {
        Demote(member_lanes[i]);
        continue;
      }
      if (coverage_sink_ != nullptr) {
        RecordLaneEvents(member_lanes[i], table.name, entry.actions[i].name);
      }
      ApplyActionBatch(*action, entry.actions[i].args, member_lanes[i]);
    }
  }
}

void BatchInterpreter::ExecControlBatch(
    const std::vector<p4ir::ControlNode>& nodes, std::uint64_t mask) {
  for (const p4ir::ControlNode& node : nodes) {
    mask &= live_;
    if (mask == 0) return;
    switch (node.kind) {
      case p4ir::ControlNode::Kind::kApplyTable: {
        const p4ir::Table* table = program_.FindTable(node.table);
        if (table == nullptr) {
          Demote(mask);
          break;
        }
        ApplyTableBatch(*table, mask);
        break;
      }
      case p4ir::ControlNode::Kind::kApplyAction: {
        const p4ir::Action* action = program_.FindAction(node.action);
        if (action == nullptr) {
          Demote(mask);
          break;
        }
        ApplyActionBatch(*action, node.action_args, mask);
        break;
      }
      case p4ir::ControlNode::Kind::kIf: {
        EvalVec cond;
        std::uint64_t m = mask;
        EvalExprBatch(*node.condition, nullptr, m, cond);
        if (m == 0) break;
        std::uint64_t then_mask = 0;
        for (std::uint64_t rest = m; rest != 0; rest &= rest - 1) {
          const int l = __builtin_ctzll(rest);
          if (cond.v[l] != 0) then_mask |= std::uint64_t{1} << l;
        }
        const std::uint64_t else_mask = m & ~then_mask;
        // Divergent conditional: both sides run under disjoint lane
        // masks. Every state update (assignments, validity bits, hash
        // draws, WCMP selection) is mask-guarded and per-lane, so each
        // lane's trajectory is exactly its scalar one regardless of which
        // branch the other lanes took.
        if (then_mask != 0) ExecControlBatch(node.then_branch, then_mask);
        if (else_mask != 0) ExecControlBatch(node.else_branch, else_mask);
        break;
      }
    }
  }
}

std::string BatchInterpreter::DeparseLane(int lane) const {
  // Slab-direct mirror of packet::Deparse: valid headers in program
  // declaration order, each field at its *stored* width (assignments keep
  // the expression's width), bit-packed big-endian, then the payload.
  // Slab values are invariantly masked to their stored width, as BitString
  // values are to theirs.
  std::string out;
  int bit_fill = 0;
  for (std::size_t h = 0; h < io_plan_.size(); ++h) {
    if (((valid_[h] >> lane) & 1) == 0) continue;
    for (const auto& [fi, decl_width] : io_plan_[h].fields) {
      const uint128 value =
          values_[static_cast<std::size_t>(fi) * kLaneCount + lane];
      const int width =
          widths_[static_cast<std::size_t>(fi) * kLaneCount + lane];
      for (int i = width - 1; i >= 0; --i) {
        const bool bit = (value >> i) & 1;
        if (bit_fill == 0) out.push_back('\0');
        out.back() = static_cast<char>(
            static_cast<unsigned char>(out.back()) |
            ((bit ? 1u : 0u) << (7 - bit_fill)));
        bit_fill = (bit_fill + 1) & 7;
      }
    }
  }
  out.append(payload_[lane].data(), payload_[lane].size());
  return out;
}

void BatchInterpreter::RecordLaneEvents(std::uint64_t mask,
                                        std::string_view table,
                                        std::string_view action) {
  for (std::uint64_t m = mask; m != 0; m &= m - 1) {
    lane_events_[__builtin_ctzll(m)].emplace_back(table, action);
  }
}

void BatchInterpreter::FlushLaneEvents(int lane) {
  for (const auto& [table, action] : lane_events_[lane]) {
    coverage_sink_->OnTableApply(table, action);
  }
  lane_events_[lane].clear();
}

void BatchInterpreter::RunPass(std::uint64_t mask) {
  std::memcpy(values_.data(), tmpl_values_.data(),
              values_.size() * sizeof(uint128));
  std::memcpy(widths_.data(), tmpl_widths_.data(), widths_.size());
  std::copy(tmpl_valid_.begin(), tmpl_valid_.end(), valid_.begin());
  draws_.fill(0);
  live_ = mask;
  fallback_ = 0;
  ++stats_.batch_passes;
  if (coverage_sink_ != nullptr) {
    for (std::uint64_t m = mask; m != 0; m &= m - 1) {
      lane_events_[__builtin_ctzll(m)].clear();
    }
  }

  std::uint64_t forced = setup_fallback_ & mask;
  if (force_scalar_fallback_) forced = mask;
  if (forced != 0) Demote(forced);

  // The forwarding-verdict metadata fields are read directly after each
  // control block; a program missing them would throw in scalar Run's
  // fields.at — demote everything in that (never-validated) case.
  if (drop_f_ < 0 || punt_f_ < 0 || clone_session_f_ < 0 ||
      egress_port_f_ < 0) {
    Demote(live_);
  }

  ExecControlBatch(program_.ingress, live_);

  // End of ingress: clones fire before the drop decision (mirroring
  // survives drops, as in SAI), then punt and drop verdicts are read.
  std::uint64_t dropped_at_ingress = 0;
  for (std::uint64_t m = live_; m != 0; m &= m - 1) {
    const int l = __builtin_ctzll(m);
    ForwardingOutcome& out = pass_outcome_[l];
    out = ForwardingOutcome{};
    const uint128 session_value =
        values_[static_cast<std::size_t>(clone_session_f_) * kLaneCount + l];
    if (session_value != 0) {
      auto it = scalar_.clone_sessions_.find(static_cast<std::uint16_t>(
          static_cast<std::uint64_t>(session_value & LowBitMask(64))));
      if (it != scalar_.clone_sessions_.end()) {
        out.clones.emplace_back(it->second, DeparseLane(l));
      }
    }
    out.punted =
        values_[static_cast<std::size_t>(punt_f_) * kLaneCount + l] != 0;
    if (values_[static_cast<std::size_t>(drop_f_) * kLaneCount + l] != 0) {
      out.dropped = true;
      pass_status_[l] = OkStatus();
      dropped_at_ingress |= std::uint64_t{1} << l;
    }
  }
  live_ &= ~dropped_at_ingress;

  ExecControlBatch(program_.egress, live_);

  for (std::uint64_t m = live_; m != 0; m &= m - 1) {
    const int l = __builtin_ctzll(m);
    ForwardingOutcome& out = pass_outcome_[l];
    if (values_[static_cast<std::size_t>(drop_f_) * kLaneCount + l] != 0) {
      out.dropped = true;
      pass_status_[l] = OkStatus();
      continue;
    }
    out.egress_port = static_cast<std::uint16_t>(static_cast<std::uint64_t>(
        values_[static_cast<std::size_t>(egress_port_f_) * kLaneCount + l] &
        LowBitMask(64)));
    out.packet_bytes = DeparseLane(l);
    pass_status_[l] = OkStatus();
  }

  stats_.lanes_run += static_cast<std::uint64_t>(
      Popcount(mask & ~fallback_));
  stats_.scalar_fallbacks += static_cast<std::uint64_t>(Popcount(fallback_));

  // Demoted lanes re-run end to end through the scalar interpreter: Run is
  // a pure function of (bytes, port, seed), so the re-run is byte-exact.
  // With a coverage sink attached, a per-lane recording sink is swapped
  // onto the scalar interpreter for each re-run: the lane's vector-path
  // events (recorded before it demoted) are dropped and replaced by
  // exactly what the scalar run applies.
  struct LaneRecordSink final : CoverageSink {
    std::vector<std::pair<std::string_view, std::string_view>>* events =
        nullptr;
    void OnTableApply(std::string_view table,
                      std::string_view action) override {
      events->emplace_back(table, action);
    }
  };
  LaneRecordSink record_sink;
  CoverageSink* const scalar_sink = scalar_.coverage_sink();
  for (std::uint64_t m = fallback_; m != 0; m &= m - 1) {
    const int l = __builtin_ctzll(m);
    if (coverage_sink_ != nullptr) {
      lane_events_[l].clear();
      record_sink.events = &lane_events_[l];
      scalar_.set_coverage_sink(&record_sink);
    }
    StatusOr<ForwardingOutcome> result = scalar_.Run(
        lane_inputs_[l].bytes, lane_inputs_[l].ingress_port, lane_seeds_[l]);
    if (result.ok()) {
      pass_outcome_[l] = std::move(result).value();
      pass_status_[l] = OkStatus();
    } else {
      pass_status_[l] = result.status();
    }
  }
  if (coverage_sink_ != nullptr) scalar_.set_coverage_sink(scalar_sink);
}

std::vector<StatusOr<ForwardingOutcome>> BatchInterpreter::RunBatch64(
    std::span<const LanePacket> lanes, std::uint64_t hash_seed) {
  std::vector<StatusOr<ForwardingOutcome>> results;
  results.reserve(lanes.size());
  lane_seeds_.fill(hash_seed);
  for (std::size_t base = 0; base < lanes.size(); base += kLaneCount) {
    const std::size_t n = std::min<std::size_t>(kLaneCount,
                                                lanes.size() - base);
    SetupLanes(lanes.subspan(base, n));
    RunPass(LowLaneMask(static_cast<int>(n)));
    for (std::size_t l = 0; l < n; ++l) {
      if (coverage_sink_ != nullptr) FlushLaneEvents(static_cast<int>(l));
      if (pass_status_[l].ok()) {
        results.emplace_back(std::move(pass_outcome_[l]));
      } else {
        results.emplace_back(pass_status_[l]);
      }
    }
  }
  return results;
}

std::vector<StatusOr<std::vector<ForwardingOutcome>>>
BatchInterpreter::EnumerateBehaviorsBatch(std::span<const LanePacket> lanes,
                                          int max_runs) {
  const std::size_t count = lanes.size();
  std::vector<std::vector<ForwardingOutcome>> behaviors(count);
  std::vector<std::set<std::string>> seen(count);
  std::vector<int> repeats(count, 0);
  std::vector<int> next_seed(count, 0);
  std::vector<Status> lane_error(count, OkStatus());
  std::vector<bool> done(count, false);
  std::vector<std::size_t> pending(count);
  for (std::size_t p = 0; p < count; ++p) pending[p] = p;

  // Per packet this replicates scalar EnumerateBehaviors exactly: seeds
  // 0, 1, 2, ... until 16 consecutive seeds add nothing new (or an error,
  // or max_runs). Each pass packs (packet, seed) pairs — consecutive
  // speculative seeds per packet — and results are consumed in per-packet
  // seed order, so seeds past a packet's scalar stop point are simply
  // discarded.
  //
  // The packing is depth-first over seeds: a deterministic packet stops
  // after exactly 17 runs (one new behaviour + 16 repeats), so ~17
  // consecutive seeds fill its whole enumeration in one pass with no
  // speculation waste, and a pass carries only ~4 distinct packets.
  // Lanes of the same packet take the same branches (hash draws aside),
  // so pipeline divergence stays low and pass-fixed costs amortize —
  // breadth-first packing (one seed each across dozens of diverse
  // packets) splinters every conditional into tiny lane groups.
  struct Slot {
    std::size_t p;
    int seed;
  };
  std::array<Slot, kLaneCount> slots;
  std::array<LanePacket, kLaneCount> pass_lanes;
  while (!pending.empty()) {
    const int per = std::max<int>(
        17, kLaneCount / static_cast<int>(pending.size()));
    int used = 0;
    for (std::size_t pi = 0; pi < pending.size() && used < kLaneCount;
         ++pi) {
      const std::size_t p = pending[pi];
      for (int k = 0; k < per && used < kLaneCount; ++k) {
        const int s = next_seed[p] + k;
        if (s >= max_runs) break;
        slots[used] = {p, s};
        pass_lanes[used] = lanes[p];
        lane_seeds_[used] = static_cast<std::uint64_t>(s);
        ++used;
      }
    }
    if (used == 0) break;  // every pending packet has exhausted max_runs
    SetupLanes(std::span<const LanePacket>(pass_lanes.data(),
                                           static_cast<std::size_t>(used)));
    RunPass(LowLaneMask(used));
    for (int i = 0; i < used; ++i) {
      const auto [p, s] = slots[i];
      if (done[p]) {
        // Past this packet's stop point: the lane-run is speculative, so
        // its buffered coverage events are discarded, not flushed — the
        // scalar enumeration never ran this seed.
        if (coverage_sink_ != nullptr) lane_events_[i].clear();
        continue;
      }
      if (coverage_sink_ != nullptr) FlushLaneEvents(i);
      if (!pass_status_[i].ok()) {
        lane_error[p] = pass_status_[i];
        done[p] = true;
        continue;
      }
      if (seen[p].insert(pass_outcome_[i].Canonical()).second) {
        repeats[p] = 0;
        behaviors[p].push_back(std::move(pass_outcome_[i]));
      } else if (++repeats[p] >= 16) {
        done[p] = true;
      }
      next_seed[p] = s + 1;
    }
    std::vector<std::size_t> still;
    still.reserve(pending.size());
    for (const std::size_t p : pending) {
      if (!done[p] && next_seed[p] < max_runs) still.push_back(p);
    }
    pending = std::move(still);
  }

  std::vector<StatusOr<std::vector<ForwardingOutcome>>> results;
  results.reserve(count);
  for (std::size_t p = 0; p < count; ++p) {
    if (!lane_error[p].ok()) {
      results.emplace_back(lane_error[p]);
    } else {
      results.emplace_back(std::move(behaviors[p]));
    }
  }
  return results;
}

}  // namespace switchv::bmv2
