#include "bmv2/interpreter.h"

#include <set>

namespace switchv::bmv2 {

using packet::ForwardingOutcome;
using packet::ParsedPacket;

Interpreter::Interpreter(const p4ir::Program& program,
                         packet::ParserSpec parser,
                         CloneSessionMap clone_sessions)
    : program_(program),
      p4info_(p4ir::P4Info::FromProgram(program)),
      parser_(std::move(parser)),
      clone_sessions_(std::move(clone_sessions)) {}

Status Interpreter::InstallEntries(
    const std::vector<p4rt::TableEntry>& entries) {
  std::map<std::string, std::vector<p4rt::DecodedEntry>> installed;
  for (const p4rt::TableEntry& entry : entries) {
    SWITCHV_ASSIGN_OR_RETURN(p4rt::DecodedEntry decoded,
                             p4rt::DecodeEntry(p4info_, entry));
    installed[decoded.table_name].push_back(std::move(decoded));
  }
  entries_ = std::move(installed);
  return OkStatus();
}

StatusOr<BitString> Interpreter::EvalExpr(
    const p4ir::Expr& expr, const RunState& state,
    const std::map<std::string, BitString>* args) const {
  switch (expr.kind()) {
    case p4ir::Expr::Kind::kConstant:
      return expr.constant();
    case p4ir::Expr::Kind::kField: {
      auto it = state.packet.fields.find(expr.name());
      if (it == state.packet.fields.end()) {
        return InternalError("unknown field at runtime: " + expr.name());
      }
      return it->second;
    }
    case p4ir::Expr::Kind::kParam: {
      if (args == nullptr) {
        return InternalError("param outside action: " + expr.name());
      }
      auto it = args->find(expr.name());
      if (it == args->end()) {
        return InternalError("unbound param: " + expr.name());
      }
      return it->second;
    }
    case p4ir::Expr::Kind::kValid:
      return BitString::FromUint(
          state.packet.valid_headers.contains(expr.name()) ? 1 : 0, 1);
    case p4ir::Expr::Kind::kUnary: {
      SWITCHV_ASSIGN_OR_RETURN(BitString v,
                               EvalExpr(expr.children()[0], state, args));
      if (expr.unary_op() == p4ir::UnaryOp::kLogicalNot) {
        return BitString::FromUint(v.IsZero() ? 1 : 0, 1);
      }
      return ~v;
    }
    case p4ir::Expr::Kind::kBinary: {
      SWITCHV_ASSIGN_OR_RETURN(BitString a,
                               EvalExpr(expr.children()[0], state, args));
      SWITCHV_ASSIGN_OR_RETURN(BitString b,
                               EvalExpr(expr.children()[1], state, args));
      using Op = p4ir::BinaryOp;
      switch (expr.binary_op()) {
        case Op::kEq: return BitString::FromUint(a.value() == b.value(), 1);
        case Op::kNe: return BitString::FromUint(a.value() != b.value(), 1);
        case Op::kLt: return BitString::FromUint(a.value() < b.value(), 1);
        case Op::kLe: return BitString::FromUint(a.value() <= b.value(), 1);
        case Op::kGt: return BitString::FromUint(a.value() > b.value(), 1);
        case Op::kGe: return BitString::FromUint(a.value() >= b.value(), 1);
        case Op::kAnd:
          return BitString::FromUint(!a.IsZero() && !b.IsZero(), 1);
        case Op::kOr:
          return BitString::FromUint(!a.IsZero() || !b.IsZero(), 1);
        case Op::kBitAnd: return a & b;
        case Op::kBitOr: return a | b;
        case Op::kBitXor: return a ^ b;
        case Op::kAdd:
          return BitString::FromUint(a.value() + b.value(), a.width());
        case Op::kSub:
          return BitString::FromUint(a.value() - b.value(), a.width());
      }
      return InternalError("unreachable binary op");
    }
  }
  return InternalError("unreachable expr kind");
}

Status Interpreter::ApplyAction(const p4ir::Action& action,
                                const std::vector<BitString>& arg_values,
                                RunState& state) const {
  if (arg_values.size() != action.params.size()) {
    return InternalError("arity mismatch applying " + action.name);
  }
  std::map<std::string, BitString> args;
  for (std::size_t i = 0; i < action.params.size(); ++i) {
    args.emplace(action.params[i].name, arg_values[i]);
  }
  for (const p4ir::Statement& stmt : action.body) {
    switch (stmt.kind) {
      case p4ir::Statement::Kind::kAssign: {
        SWITCHV_ASSIGN_OR_RETURN(BitString value,
                                 EvalExpr(*stmt.value, state, &args));
        state.packet.fields[stmt.target] = value;
        break;
      }
      case p4ir::Statement::Kind::kSetValid:
        if (stmt.valid) {
          state.packet.valid_headers.insert(stmt.target);
        } else {
          state.packet.valid_headers.erase(stmt.target);
        }
        break;
      case p4ir::Statement::Kind::kHash: {
        // Round-robin hashing: draw k of a run with seed s yields s + k,
        // truncated to the destination width (paper §5).
        const int width = program_.FieldWidth(stmt.target);
        state.packet.fields[stmt.target] = BitString::FromUint(
            state.hash_seed + static_cast<std::uint64_t>(state.hash_draws),
            width);
        ++state.hash_draws;
        break;
      }
    }
  }
  return OkStatus();
}

int Interpreter::SelectEntry(const p4ir::Table& table,
                             const std::vector<p4rt::DecodedEntry>& entries,
                             const RunState& state) const {
  int best = -1;
  int best_priority = -1;
  int best_prefix = -1;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const p4rt::DecodedEntry& entry = entries[i];
    bool matches = true;
    int prefix_sum = 0;
    for (std::size_t k = 0; k < table.keys.size() && matches; ++k) {
      const p4rt::DecodedMatch& m = entry.matches[k];
      if (!m.present) continue;  // wildcard
      const BitString& field_value =
          state.packet.fields.at(table.keys[k].field);
      if (!field_value.TernaryMatches(m.value, m.mask)) matches = false;
      prefix_sum += m.prefix_len;
    }
    if (!matches) continue;
    if (table.RequiresPriority()) {
      // Numerically larger priority wins (P4Runtime).
      if (entry.priority > best_priority) {
        best_priority = entry.priority;
        best = static_cast<int>(i);
      }
    } else {
      // Longest-prefix (or the unique exact match; prefix_sum 0 then).
      if (prefix_sum > best_prefix) {
        best_prefix = prefix_sum;
        best = static_cast<int>(i);
      }
    }
  }
  return best;
}

Status Interpreter::ApplyTable(const p4ir::Table& table,
                               RunState& state) const {
  const std::vector<p4rt::DecodedEntry>* installed = nullptr;
  if (auto it = entries_.find(table.name); it != entries_.end()) {
    installed = &it->second;
  }
  static const std::vector<p4rt::DecodedEntry> kEmpty;
  const auto& entries = installed != nullptr ? *installed : kEmpty;
  const int selected = SelectEntry(table, entries, state);
  if (selected < 0) {
    const p4ir::Action* default_action =
        program_.FindAction(table.default_action);
    if (coverage_sink_ != nullptr) {
      coverage_sink_->OnTableApply(table.name, table.default_action);
    }
    return ApplyAction(*default_action, table.default_action_args, state);
  }
  const p4rt::DecodedEntry& entry = entries[static_cast<std::size_t>(selected)];
  const p4rt::DecodedAction* chosen = &entry.actions[0];
  if (entry.is_action_set) {
    // Weighted member selection by the next hash draw.
    const int total = entry.TotalWeight();
    std::uint64_t draw =
        (state.hash_seed + static_cast<std::uint64_t>(state.hash_draws)) %
        static_cast<std::uint64_t>(total);
    ++state.hash_draws;
    for (const p4rt::DecodedAction& member : entry.actions) {
      if (draw < static_cast<std::uint64_t>(member.weight)) {
        chosen = &member;
        break;
      }
      draw -= static_cast<std::uint64_t>(member.weight);
    }
  }
  const p4ir::Action* action = program_.FindAction(chosen->name);
  if (action == nullptr) {
    return InternalError("entry references unknown action " + chosen->name);
  }
  if (coverage_sink_ != nullptr) {
    coverage_sink_->OnTableApply(table.name, chosen->name);
  }
  return ApplyAction(*action, chosen->args, state);
}

Status Interpreter::ExecControl(const std::vector<p4ir::ControlNode>& nodes,
                                RunState& state) const {
  for (const p4ir::ControlNode& node : nodes) {
    if (node.kind == p4ir::ControlNode::Kind::kApplyTable) {
      const p4ir::Table* table = program_.FindTable(node.table);
      SWITCHV_RETURN_IF_ERROR(ApplyTable(*table, state));
    } else if (node.kind == p4ir::ControlNode::Kind::kApplyAction) {
      const p4ir::Action* action = program_.FindAction(node.action);
      SWITCHV_RETURN_IF_ERROR(
          ApplyAction(*action, node.action_args, state));
    } else {
      SWITCHV_ASSIGN_OR_RETURN(BitString cond,
                               EvalExpr(*node.condition, state, nullptr));
      SWITCHV_RETURN_IF_ERROR(ExecControl(
          cond.IsZero() ? node.else_branch : node.then_branch, state));
    }
  }
  return OkStatus();
}

StatusOr<ForwardingOutcome> Interpreter::Run(std::string_view packet_bytes,
                                             std::uint16_t ingress_port,
                                             std::uint64_t hash_seed) const {
  RunState state;
  state.packet = packet::Parse(program_, parser_, packet_bytes);
  state.hash_seed = hash_seed;
  state.packet.fields[p4ir::kIngressPortField] =
      BitString::FromUint(ingress_port, p4ir::kPortWidth);

  SWITCHV_RETURN_IF_ERROR(ExecControl(program_.ingress, state));

  ForwardingOutcome outcome;
  // Clones happen at the end of ingress, before the drop decision
  // (mirroring survives drops, as in SAI).
  const BitString clone_session =
      state.packet.fields.at(p4ir::kCloneSessionField);
  if (!clone_session.IsZero()) {
    auto it = clone_sessions_.find(
        static_cast<std::uint16_t>(clone_session.ToUint64()));
    if (it != clone_sessions_.end()) {
      outcome.clones.emplace_back(it->second,
                                  packet::Deparse(program_, state.packet));
    }
  }
  outcome.punted = !state.packet.fields.at(p4ir::kPuntField).IsZero();
  if (!state.packet.fields.at(p4ir::kDropField).IsZero()) {
    outcome.dropped = true;
    return outcome;
  }
  SWITCHV_RETURN_IF_ERROR(ExecControl(program_.egress, state));
  if (!state.packet.fields.at(p4ir::kDropField).IsZero()) {
    outcome.dropped = true;
    return outcome;
  }
  outcome.egress_port = static_cast<std::uint16_t>(
      state.packet.fields.at(p4ir::kEgressPortField).ToUint64());
  outcome.packet_bytes = packet::Deparse(program_, state.packet);
  return outcome;
}

StatusOr<std::vector<ForwardingOutcome>> Interpreter::EnumerateBehaviors(
    std::string_view packet_bytes, std::uint16_t ingress_port,
    int max_runs) const {
  std::vector<ForwardingOutcome> behaviors;
  std::set<std::string> seen;
  // Weighted selectors map several consecutive hash draws to the same
  // member, so a single repeated outcome does not mean the set is
  // exhausted; stop only after a run of seeds adds nothing new (or at
  // max_runs, which bounds the scan above the largest total weight).
  int consecutive_repeats = 0;
  for (int seed = 0; seed < max_runs && consecutive_repeats < 16; ++seed) {
    SWITCHV_ASSIGN_OR_RETURN(
        ForwardingOutcome outcome,
        Run(packet_bytes, ingress_port, static_cast<std::uint64_t>(seed)));
    if (seen.insert(outcome.Canonical()).second) {
      consecutive_repeats = 0;
      behaviors.push_back(std::move(outcome));
    } else {
      ++consecutive_repeats;
    }
  }
  return behaviors;
}

}  // namespace switchv::bmv2
