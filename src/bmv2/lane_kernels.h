// Word-parallel match kernels for the 64-lane batch interpreter.
//
// The classic bit-parallel fault-simulation idiom: hold one bit of state per
// lane in each machine word, so a single word op advances all 64 lanes at
// once. Here the lanes are packets and the state is "does lane l still match
// entry e": a table lookup over 64 packets reduces to a handful of AND/XNOR
// word ops per populated mask bit instead of 64 independent BitString
// comparisons.
//
// These kernels are deliberately free-standing (no interpreter state) so the
// property tests in tests/batch_sim_test.cc can drive them directly against
// per-lane scalar BitString::TernaryMatches.
#ifndef SWITCHV_BMV2_LANE_KERNELS_H_
#define SWITCHV_BMV2_LANE_KERNELS_H_

#include <cstdint>

#include "util/bitstring.h"

namespace switchv::bmv2 {

// Index of the lowest set bit; precondition: v != 0.
inline int CountTrailingZeros128(uint128 v) {
  const std::uint64_t low = static_cast<std::uint64_t>(v);
  if (low != 0) return __builtin_ctzll(low);
  return 64 + __builtin_ctzll(static_cast<std::uint64_t>(v >> 64));
}

// Transposed bit-slice view of one match key across up to 64 lanes: bit `l`
// of `planes[b]` is bit `b` of lane l's field value. Only the bit positions
// of `populated` are filled — kernels may only test those bits, which lets a
// table transpose just the union of its entries' mask bits.
struct LanePlanes {
  uint128 populated = 0;
  std::uint64_t planes[BitString::kMaxWidth] = {};

  // (Re)builds the planes from `values[0..63]` (raw BitString values,
  // lane-indexed) restricted to the lanes of `lane_mask` and the bit
  // positions of `bits`. Lanes outside `lane_mask` read as zero.
  void Transpose(const uint128* values, std::uint64_t lane_mask, uint128 bits);
};

// The lanes (within `seed_mask`) whose transposed value ternary-matches
// `value` under `mask`: bit l of the result is
//   (lane_value[l] & mask) == (value & mask),
// i.e. per-lane BitString::TernaryMatches, one word op per set mask bit.
// Exact keys pass the all-ones mask of the key width, LPM keys a prefix
// mask, and a zero mask (wildcard / prefix length 0) matches every lane.
// Precondition: every set bit of `mask` is in `planes.populated`.
std::uint64_t LaneTernaryMatch(const LanePlanes& planes, uint128 value,
                               uint128 mask, std::uint64_t seed_mask);

}  // namespace switchv::bmv2

#endif  // SWITCHV_BMV2_LANE_KERNELS_H_
