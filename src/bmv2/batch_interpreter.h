// Bit-parallel batch execution for the reference interpreter: up to 64
// packets per pipeline pass.
//
// The match-action pipeline has the shape classic bit-parallel fault
// simulation exploits — a topologically fixed table sequence evaluated over
// independent per-packet values — so lane state is kept struct-of-arrays
// (one uint128 per field per lane, one validity word per header) and table
// lookups run through the transposed word-parallel kernels in
// lane_kernels.h. Expression evaluation, action application, and WCMP
// member selection are applied per lane group under a mask.
//
// Conformance contract: every lane result is byte-identical to the scalar
// Interpreter — same ForwardingOutcome bytes, same error Status. Divergent
// conditionals run both branches under disjoint lane masks (every state
// update is mask-guarded and per-lane, so this is exact). Anything the
// vector path cannot reproduce exactly (structurally broken
// programs/entries, mixed dynamic field widths) demotes the affected lanes
// to a full scalar Run for that seed; determinism of Run makes the re-run
// exact. Drop/punt/clone divergence is handled by lane masks and never
// falls back.
#ifndef SWITCHV_BMV2_BATCH_INTERPRETER_H_
#define SWITCHV_BMV2_BATCH_INTERPRETER_H_

#include <array>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "bmv2/interpreter.h"
#include "bmv2/lane_kernels.h"

namespace switchv::bmv2 {

class BatchInterpreter {
 public:
  static constexpr int kLaneCount = 64;

  struct LanePacket {
    std::string_view bytes;
    std::uint16_t ingress_port = 0;
  };

  // Merge-commutative run counters, folded into switchv::Metrics by the
  // dataplane phase.
  struct Stats {
    std::uint64_t lanes_run = 0;         // lane-runs completed word-parallel
    std::uint64_t scalar_fallbacks = 0;  // lane-runs demoted to scalar Run
    std::uint64_t batch_passes = 0;      // vectorized pipeline passes
  };

  // Snapshots `scalar`'s installed entries (pre-sorted into precedence
  // order, match values transposition-ready); construct after
  // InstallEntries. `scalar` must outlive the batch interpreter. Not
  // thread-safe: one instance per shard, like the interpreter it wraps.
  explicit BatchInterpreter(const Interpreter& scalar);

  // Runs every lane with the given hash seed; element i is byte-identical
  // to scalar.Run(lanes[i].bytes, lanes[i].ingress_port, hash_seed).
  // Accepts any lane count; batches of 64 are processed per pass.
  std::vector<StatusOr<packet::ForwardingOutcome>> RunBatch64(
      std::span<const LanePacket> lanes, std::uint64_t hash_seed);

  // Per-lane behaviour enumeration; element i is byte-identical to
  // scalar.EnumerateBehaviors(lanes[i].bytes, lanes[i].ingress_port,
  // max_runs). (packet, seed) pairs are packed into full 64-lane passes
  // with per-lane seeds, so pass-fixed costs amortize over ~64 lane-runs
  // even when few packets are enumerated; per-packet results are consumed
  // in seed order, replicating scalar termination exactly (seeds past a
  // packet's stop point are speculative and discarded).
  std::vector<StatusOr<std::vector<packet::ForwardingOutcome>>>
  EnumerateBehaviorsBatch(std::span<const LanePacket> lanes,
                          int max_runs = 160);

  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats{}; }

  // Test hook: demote every lane to the scalar fallback at pass entry, so
  // the fallback boundary can be exercised (and its counters pinned)
  // without crafting divergent programs.
  void set_force_scalar_fallback(bool force) {
    force_scalar_fallback_ = force;
  }

  // Coverage observation with per-lane attribution (fuzzer/coverage.h):
  // (table, action) applications are buffered per lane during a pass —
  // vector path and scalar-fallback re-runs alike — and flushed to the
  // sink only for consumed lane-runs, in consumption order, so the sink
  // sees exactly the applications the equivalent scalar calls would have
  // reported (speculative enumeration seeds are discarded unflushed).
  // Purely observational and zero-cost when no sink is attached.
  void set_coverage_sink(CoverageSink* sink) { coverage_sink_ = sink; }

 private:
  // One evaluated expression across the batch: raw BitString values (always
  // masked to `width`) for the lanes of the evaluation mask.
  struct EvalVec {
    std::array<uint128, kLaneCount> v;
    int width = 1;
  };

  struct PreparedMatch {
    bool present = false;
    uint128 value = 0;
    uint128 mask = 0;
  };
  struct PreparedEntry {
    const p4rt::DecodedEntry* entry = nullptr;
    std::vector<PreparedMatch> matches;  // parallel to the table's keys
  };
  struct PreparedKey {
    int field_index = -1;
    uint128 union_mask = 0;  // OR of all entry masks: bits worth transposing
  };
  struct PreparedTable {
    std::vector<PreparedKey> keys;
    std::vector<PreparedEntry> sorted;  // descending precedence, ties stable
    bool vectorizable = true;  // false: always demote (malformed entries)
  };

  // Precompiled packet I/O, mirroring packet::Parse / packet::Deparse over
  // the slabs so lane setup and egress assembly never build a field map.
  struct PlanTransition {
    int field_index = -1;  // select field (a field of this header)
    uint128 value = 0;
    int next = -1;  // header index to continue with; -1 stops parsing
  };
  struct PlanHeader {
    int total_bits = 0;  // sum of declared widths: the truncation check
    // Declaration-order (field index, declared width); shared by the
    // parser (reads declared widths) and the deparser (reads stored
    // widths from the slab).
    std::vector<std::pair<int, int>> fields;
    std::vector<PlanTransition> transitions;  // ParserSpec order
  };

  void PrepareTables();
  void PreparePacketIo();
  // Parses the chunk's packets into the template slabs; lanes whose setup
  // cannot be represented are pre-demoted via `setup_fallback_`.
  void SetupLanes(std::span<const LanePacket> lanes);
  // One full pipeline pass over `mask`, each lane running with
  // lane_seeds_[l] (callers fill it first — uniform for RunBatch64,
  // per-(packet,seed) slots for enumeration); fills pass_outcome_ /
  // pass_status_ for every lane in `mask` (vector path or scalar
  // fallback) and updates stats_.
  void RunPass(std::uint64_t mask);

  void Demote(std::uint64_t lanes) {
    live_ &= ~lanes;
    fallback_ |= lanes;
  }

  // Evaluates `expr` for the lanes of `mask`. Shrinks `mask` when lanes are
  // demoted (structural errors demote all of them; dynamic-width divergence
  // demotes the minority); out.v[l] is defined for the surviving lanes.
  void EvalExprBatch(const p4ir::Expr& expr,
                     const std::map<std::string, BitString>* args,
                     std::uint64_t& mask, EvalVec& out);
  void ApplyActionBatch(const p4ir::Action& action,
                        const std::vector<BitString>& arg_values,
                        std::uint64_t mask);
  void ApplyTableBatch(const p4ir::Table& table, std::uint64_t mask);
  void ExecControlBatch(const std::vector<p4ir::ControlNode>& nodes,
                        std::uint64_t mask);

  // Reads field `f` for the lanes of `mask`: demotes lanes whose dynamic
  // width departs from the lane-majority width (assignments store the
  // expression's width, so lanes that took different action paths can
  // disagree), then copies values. Mirrors scalar width semantics exactly
  // for the surviving lanes.
  void LoadField(int f, std::uint64_t& mask, EvalVec& out);
  void StoreField(int f, std::uint64_t mask, const EvalVec& value);

  // Serializes lane `lane`'s current slab state: valid headers in program
  // declaration order at their stored (dynamic) widths, then the payload
  // tail. Byte-identical to packet::Deparse of the reassembled lane.
  std::string DeparseLane(int lane) const;

  const Interpreter& scalar_;
  const p4ir::Program& program_;

  std::vector<p4ir::FieldDef> fields_;  // Program::AllFields() order
  std::map<std::string, int> field_index_;
  std::vector<std::string> header_names_;
  std::map<std::string, int> header_index_;
  std::map<std::string, PreparedTable> tables_;
  int ingress_port_f_ = -1;
  int egress_port_f_ = -1;
  int drop_f_ = -1;
  int punt_f_ = -1;
  int clone_session_f_ = -1;

  // Packet I/O plans, one per program header (parallel to header_names_).
  std::vector<PlanHeader> io_plan_;
  int parse_start_ = -1;  // header index, -1 if the start header is absent
  // All declared widths, pre-broadcast across lanes: the parser's
  // zero-init template (packet::Parse initializes every program field to
  // zero at its declared width).
  std::vector<std::uint8_t> decl_widths_;
  // False when a header field is missing from AllFields(): the slabs
  // cannot represent such a program, so every pass demotes to scalar.
  bool slab_io_ok_ = true;

  // Parse templates for the current chunk (reused across seeds).
  std::vector<uint128> tmpl_values_;       // fields_.size() * 64, lane-major
  std::vector<std::uint8_t> tmpl_widths_;
  std::vector<std::uint64_t> tmpl_valid_;  // one lane word per header
  std::array<std::string_view, kLaneCount> payload_;
  std::array<LanePacket, kLaneCount> lane_inputs_;
  std::uint64_t setup_fallback_ = 0;

  // Per-pass state.
  std::vector<uint128> values_;
  std::vector<std::uint8_t> widths_;
  std::vector<std::uint64_t> valid_;
  std::array<int, kLaneCount> draws_;
  std::array<std::uint64_t, kLaneCount> lane_seeds_;
  std::uint64_t live_ = 0;
  std::uint64_t fallback_ = 0;
  // Per-pass results: outcome of lane l is pass_outcome_[l] iff
  // pass_status_[l].ok(), else the lane's error status.
  std::array<packet::ForwardingOutcome, kLaneCount> pass_outcome_;
  std::array<Status, kLaneCount> pass_status_;
  std::vector<LanePlanes> plane_scratch_;
  // Scratch for the small-group per-lane selection path: per sorted-entry
  // hit masks (sized to the largest table) plus the touched indices.
  std::vector<std::uint64_t> entry_hit_scratch_;
  std::vector<std::size_t> touched_scratch_;

  // Appends (table, action) to every lane of `mask`'s event buffer; the
  // views point into program-/entry-owned strings, stable for the
  // interpreter's lifetime. Callers guard on coverage_sink_ != nullptr.
  void RecordLaneEvents(std::uint64_t mask, std::string_view table,
                        std::string_view action);
  // Emits lane `lane`'s buffered events to the sink and clears the buffer.
  void FlushLaneEvents(int lane);

  Stats stats_;
  bool force_scalar_fallback_ = false;
  CoverageSink* coverage_sink_ = nullptr;
  std::array<std::vector<std::pair<std::string_view, std::string_view>>,
             kLaneCount>
      lane_events_;
};

}  // namespace switchv::bmv2

#endif  // SWITCHV_BMV2_BATCH_INTERPRETER_H_
