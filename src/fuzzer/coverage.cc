#include "fuzzer/coverage.h"

#include <algorithm>

namespace switchv::fuzzer {

std::uint64_t CoverageEdgeId(std::uint32_t table_id, std::uint64_t action_id,
                             int layer, bool failed) {
  // Three rounds of the splitmix finalizer over the packed tuple: cheap,
  // and a pure function of the tuple so ids are stable across runs.
  std::uint64_t x = SplitMix64(static_cast<std::uint64_t>(table_id) ^
                               0x7ab1e00000000000ull);
  x = SplitMix64(x ^ action_id);
  return SplitMix64(x ^ (static_cast<std::uint64_t>(layer) << 1) ^
                    (failed ? 1 : 0));
}

std::uint32_t CoverageNameId(std::string_view name) {
  // FNV-1a 32: stable, allocation-free, good enough for program-point
  // names (tables and actions are a few hundred strings at most).
  std::uint32_t h = 0x811c9dc5u;
  for (const char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x01000193u;
  }
  return h;
}

std::uint64_t CoverageEdgeIdNamed(std::string_view table,
                                  std::string_view action) {
  // Reference-interpreter edges have no SUT layer; give them their own
  // layer coordinate (bit beyond the stack) so they never collide with
  // control-plane edges structurally.
  return CoverageEdgeId(CoverageNameId(table), CoverageNameId(action),
                        /*layer=*/6, /*failed=*/false);
}

void CoverageMap::MergeFrom(const CoverageMap& other) {
  for (std::size_t i = 0; i < kCoverageMapSize; ++i) {
    const unsigned sum = static_cast<unsigned>(counts_[i]) +
                         static_cast<unsigned>(other.counts_[i]);
    counts_[i] = static_cast<std::uint8_t>(std::min(sum, 255u));
  }
}

std::uint64_t CoverageMap::PopulatedEdges() const {
  std::uint64_t populated = 0;
  for (const std::uint8_t count : counts_) populated += count != 0;
  return populated;
}

std::uint64_t CoverageMap::Fingerprint() const {
  std::uint64_t fp = 0xc0e0e0e0ull;
  for (std::size_t i = 0; i < kCoverageMapSize; ++i) {
    if (counts_[i] == 0) continue;
    fp = SplitMix64(fp ^ (static_cast<std::uint64_t>(i) << 8) ^ counts_[i]);
  }
  return fp;
}

CoverageScheduler::Plan CoverageScheduler::DrawPlan() {
  Plan plan;
  if (energy_.empty() || rng_.Chance(options_.exploration)) {
    return plan;  // exploration arm: uniform baseline
  }
  // Quadratic weighting: recipes that keep producing novelty should
  // dominate the draw, not merely lead it. A linear walk leaves the
  // long tail of one-hit recipes with most of the probability mass once
  // the corpus fills; squaring concentrates draws on the few keys that
  // are still paying off while the exploration arm above keeps the tail
  // alive. Energies are decay-bounded (halving per batch), so the
  // squares cannot overflow the running total.
  std::uint64_t total = 0;
  for (const auto& [key, energy] : energy_) total += energy * energy;
  if (total == 0) return plan;
  std::uint64_t draw = rng_.Uniform(0, total - 1);
  for (const auto& [key, energy] : energy_) {
    if (draw < energy * energy) {
      plan.use_corpus = true;
      plan.table_id = static_cast<std::uint32_t>(key >> 8);
      plan.mutation = static_cast<int>(key & 0xff) - 1;
      return plan;
    }
    draw -= energy * energy;
  }
  return plan;
}

void CoverageScheduler::Credit(std::uint64_t key, std::uint64_t amount) {
  if (amount == 0) return;
  novelty_events_ += 1;
  batches_since_novelty_ = 0;
  auto it = energy_.find(key);
  if (it != energy_.end()) {
    it->second += amount;
    return;
  }
  if (static_cast<int>(energy_.size()) >= options_.corpus_max) {
    // Evict the weakest recipe (first of the lowest energy in key order —
    // deterministic).
    auto weakest = energy_.begin();
    for (auto cand = energy_.begin(); cand != energy_.end(); ++cand) {
      if (cand->second < weakest->second) weakest = cand;
    }
    energy_.erase(weakest);
  }
  energy_.emplace(key, amount);
}

void CoverageScheduler::RecordUpdate(std::uint32_t table_id,
                                     std::uint64_t action_id,
                                     std::uint8_t layer_mask, int mutation) {
  const bool failed = (layer_mask & 0x80) != 0;
  std::uint64_t credit = 0;
  for (int layer = 0; layer < 7; ++layer) {
    if ((layer_mask & (1u << layer)) == 0) continue;
    const std::uint8_t before =
        map_.Mark(CoverageEdgeId(table_id, action_id, layer, failed));
    if (before == 0) {
      // New edge: credit scaled by stack depth — an update that put a new
      // edge in syncd/asic is worth more follow-up than one that died at
      // the p4rt server.
      credit += std::uint64_t{4} << layer;
    } else if (((before + 1) & before) == 0) {
      // Crossed a power-of-two hit-count bucket (AFL's count buckets).
      credit += std::uint64_t{1} << layer;
    }
  }
  Credit(Key(table_id, mutation), credit);
}

void CoverageScheduler::EndBatch() {
  ++batches_since_novelty_;
  for (auto it = energy_.begin(); it != energy_.end();) {
    it->second /= 2;
    it = it->second == 0 ? energy_.erase(it) : std::next(it);
  }
}

void CoverageScheduler::ImportSeeds(const std::vector<SeedDescriptor>& seeds) {
  for (const SeedDescriptor& seed : seeds) {
    auto [it, inserted] =
        energy_.emplace(Key(seed.table_id, seed.mutation), seed.energy);
    if (!inserted) it->second += seed.energy;
  }
}

std::vector<SeedDescriptor> CoverageScheduler::HarvestSeeds() const {
  std::vector<SeedDescriptor> seeds;
  seeds.reserve(energy_.size());
  for (const auto& [key, energy] : energy_) {
    SeedDescriptor seed;
    seed.table_id = static_cast<std::uint32_t>(key >> 8);
    seed.mutation = static_cast<int>(key & 0xff) - 1;
    seed.energy = energy;
    seeds.push_back(seed);
  }
  // Top energy first; stable on the deterministic key order for ties.
  std::stable_sort(seeds.begin(), seeds.end(),
                   [](const SeedDescriptor& a, const SeedDescriptor& b) {
                     return a.energy > b.energy;
                   });
  if (static_cast<int>(seeds.size()) > options_.harvest_max) {
    seeds.resize(static_cast<std::size_t>(options_.harvest_max));
  }
  return seeds;
}

}  // namespace switchv::fuzzer
