// The p4-fuzzer request generator (paper §4.1-§4.2, Figure 5).
//
// Generates batches of control-plane updates against the switch's current
// state: valid requests built from the P4Info (respecting bit widths,
// per-table action scopes, and @refers_to by drawing referenced values from
// installed entries), and "interestingly invalid" requests produced by
// applying a single mutation to a valid request.
//
// For tables with @entry_restriction the generator can sample
// constraint-compliant entries from the compiled constraint BDD and
// near-miss violations via BDD node flips — the §7 extension. With
// `use_bdd_for_constraints=false` it reproduces the paper's §4.1 baseline
// behaviour (constraints ignored during generation, so constrained tables
// frequently receive invalid requests).
#ifndef SWITCHV_FUZZER_GENERATOR_H_
#define SWITCHV_FUZZER_GENERATOR_H_

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "fuzzer/coverage.h"
#include "fuzzer/mutation.h"
#include "fuzzer/state.h"
#include "p4constraints/constraint_bdd.h"
#include "util/rng.h"

namespace switchv::fuzzer {

struct FuzzerOptions {
  // Fraction of updates produced by mutating a valid request.
  double invalid_probability = 0.3;
  // Fraction of valid updates that are deletes / modifies of installed
  // entries (the rest are inserts).
  double delete_probability = 0.12;
  double modify_probability = 0.08;
  // Sample constrained tables from the constraint BDD (§7 extension).
  bool use_bdd_for_constraints = true;
  // Extra weight for ACL-style (priority) tables: they carry the
  // constraints and TCAM behaviour where control-plane bugs concentrate.
  double priority_table_bias = 0.25;
};

// One generated update plus how it was produced (for oracle diagnostics).
struct AnnotatedUpdate {
  p4rt::Update update;
  std::optional<Mutation> mutation;  // nullopt: intended-valid
};

class RequestGenerator {
 public:
  RequestGenerator(const p4ir::P4Info& info, FuzzerOptions options,
                   std::uint64_t seed);

  // Generates a batch of `n` updates against `state`. All intended-valid
  // updates reference only entries installed in `state` (never entries
  // earlier in the same batch), so the batch is order-independent — the
  // paper's §4.4 batching discipline.
  std::vector<AnnotatedUpdate> GenerateBatch(const SwitchStateView& state,
                                             int n);

  // Generates one intended-valid insert entry for a uniformly random
  // generatable table (a table whose references can be satisfied). A
  // non-zero `preferred_table_id` is tried first (coverage-guided draws);
  // zero — the unguided default — leaves the draw sequence untouched.
  StatusOr<p4rt::TableEntry> GenerateValidEntry(
      const SwitchStateView& state, std::uint32_t preferred_table_id = 0);

  // Attaches (or detaches, with nullptr) a coverage scheduler. While the
  // scheduler reports guided_active(), corpus-directed draws replace the
  // uniform recipe draw; recipe randomness comes from the scheduler's own
  // stream, so the generator's stream is consumed only by entry
  // construction and an unguided run's byte stream is untouched.
  void set_scheduler(CoverageScheduler* scheduler) { scheduler_ = scheduler; }

  // Statistics.
  std::uint64_t generated_valid() const { return generated_valid_; }
  std::uint64_t generated_invalid() const { return generated_invalid_; }

 private:
  StatusOr<p4rt::TableEntry> GenerateEntryForTable(
      const SwitchStateView& state, const p4ir::TableInfo& table);
  StatusOr<p4rt::TableEntry> SampleConstrainedEntry(
      const SwitchStateView& state, const p4ir::TableInfo& table,
      bool violating);
  StatusOr<p4rt::FieldMatch> GenerateMatch(const SwitchStateView& state,
                                           const p4ir::MatchFieldInfo& field);
  StatusOr<p4rt::ActionInvocation> GenerateAction(
      const SwitchStateView& state, const p4ir::TableInfo& table,
      const p4ir::ActionInfo& action);
  std::optional<AnnotatedUpdate> ApplyMutation(const SwitchStateView& state,
                                               Mutation mutation,
                                               p4rt::TableEntry entry);
  p4constraints::ConstraintBdd* BddFor(const p4ir::TableInfo& table);

  const p4ir::P4Info& info_;
  FuzzerOptions options_;
  Rng rng_;
  CoverageScheduler* scheduler_ = nullptr;
  std::map<std::uint32_t, std::unique_ptr<p4constraints::ConstraintBdd>>
      bdd_cache_;
  std::uint64_t generated_valid_ = 0;
  std::uint64_t generated_invalid_ = 0;
};

}  // namespace switchv::fuzzer

#endif  // SWITCHV_FUZZER_GENERATOR_H_
