// The mutation vocabulary of p4-fuzzer (paper §4.2).
//
// Invalid requests are produced by applying exactly one mutation to a valid
// request — uniform-random invalid requests would be rejected by the first
// syntactic check and never exercise deeper control paths. The list mirrors
// the paper's named mutations plus the P4Runtime-derived ones it alludes to.
#ifndef SWITCHV_FUZZER_MUTATION_H_
#define SWITCHV_FUZZER_MUTATION_H_

#include <string_view>

namespace switchv::fuzzer {

enum class Mutation {
  kInvalidTableId,          // "Invalid ID": table id not in the P4 program
  kInvalidFieldId,          // "Invalid ID": match field id not in the table
  kInvalidActionId,         // "Invalid ID": action id not in the program
  kInvalidTableAction,      // action exists but is out of scope for table
  kInvalidMatchType,        // e.g. a prefix length on an exact field
  kDuplicateMatchField,     // same field id twice
  kMissingMandatoryField,   // drop a mandatory exact match
  kInvalidSelectorWeight,   // non-positive one-shot weight
  kInvalidTableImplementation,  // action set on a direct table & vice versa
  kInvalidReference,        // dangling @refers_to value
  kNonCanonicalBytes,       // leading zero byte in a value
  kOutOfRangeValue,         // value exceeding the declared bit width
  kWrongParamCount,         // missing action parameter
  kMissingPriority,         // priority 0 where required
  kDuplicateEntry,          // re-insert an installed entry
  kDeleteNonExisting,       // delete an entry that was never installed
  kConstraintViolation,     // BDD node-flip sample violating the constraint
                            // (paper §7 extension)
};

inline constexpr Mutation kAllMutations[] = {
    Mutation::kInvalidTableId,
    Mutation::kInvalidFieldId,
    Mutation::kInvalidActionId,
    Mutation::kInvalidTableAction,
    Mutation::kInvalidMatchType,
    Mutation::kDuplicateMatchField,
    Mutation::kMissingMandatoryField,
    Mutation::kInvalidSelectorWeight,
    Mutation::kInvalidTableImplementation,
    Mutation::kInvalidReference,
    Mutation::kNonCanonicalBytes,
    Mutation::kOutOfRangeValue,
    Mutation::kWrongParamCount,
    Mutation::kMissingPriority,
    Mutation::kDuplicateEntry,
    Mutation::kDeleteNonExisting,
    Mutation::kConstraintViolation,
};

std::string_view MutationName(Mutation mutation);

}  // namespace switchv::fuzzer

#endif  // SWITCHV_FUZZER_MUTATION_H_
