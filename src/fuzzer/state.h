// The fuzzer's view of the switch's installed state.
//
// Both the request generator (to build valid requests that reference only
// installed entries, §4.4) and the oracle (to judge state-dependent
// validity) work from this view. It is re-synchronized from a full switch
// read after every batch, implementing the paper's "observe the actual
// state, then forget the prior state" oracle design (§4.3) — but the
// re-sync is a diff, not a rebuild: only entries that actually changed are
// re-indexed, and per-table content digests let the oracle (and the shared
// judgment cache keyed on them) detect which tables are dirty since the
// last sync.
#ifndef SWITCHV_FUZZER_STATE_H_
#define SWITCHV_FUZZER_STATE_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "p4runtime/messages.h"

namespace switchv::fuzzer {

class SwitchStateView {
 public:
  explicit SwitchStateView(const p4ir::P4Info& info);

  // Replaces the view with the given (read-back) entries.
  void Reset(const std::vector<p4rt::TableEntry>& entries);

  // Incrementally re-synchronizes the view to a read-back state, given as
  // a key-fingerprint → entry map (last-wins deduped, exactly what Reset
  // would have kept). Entries already present and unchanged are not
  // touched: only the diff is re-indexed and re-digested.
  void SyncTo(const std::map<std::string, const p4rt::TableEntry*>& observed);

  // Applies one accepted update on top of the current view.
  void Apply(const p4rt::Update& update);

  bool Contains(const p4rt::TableEntry& entry) const {
    return by_fingerprint_.contains(entry.KeyFingerprint());
  }
  const p4rt::TableEntry* Find(const p4rt::TableEntry& entry) const;
  // Find with the key fingerprint already computed (the oracle's post-read
  // diff computes every fingerprint exactly once).
  const p4rt::TableEntry* FindByFingerprint(
      const std::string& fingerprint) const;

  int Count(std::uint32_t table_id) const;
  std::size_t TotalEntries() const { return by_fingerprint_.size(); }

  // All installed entries of one table, in key-fingerprint order.
  std::vector<const p4rt::TableEntry*> TableEntries(
      std::uint32_t table_id) const;
  std::vector<const p4rt::TableEntry*> AllEntries() const;

  // Canonical byte values installed for (table, key): the candidate pool
  // for @refers_to-respecting generation. Sorted, distinct.
  std::vector<std::string> KeyValues(const std::string& table,
                                     const std::string& key) const;
  // Indexed access to the same pool without materializing it: size, i-th
  // value (same sorted order KeyValues returns), and membership.
  std::size_t KeyPoolSize(const std::string& table,
                          const std::string& key) const;
  const std::string& KeyValueAt(const std::string& table,
                                const std::string& key,
                                std::size_t index) const;
  bool HasKeyValue(const std::string& table, const std::string& key,
                   const std::string& value) const;

  // True if deleting `entry` would leave a dangling reference (some other
  // installed entry references a value only this entry provides).
  bool IsReferenced(const p4rt::TableEntry& entry) const;

  // Order-independent 64-bit content digest of one table's installed
  // entries (sum of per-entry content hashes, maintained incrementally).
  // Changes whenever any entry of the table is inserted, modified, or
  // deleted; equal digests mean equal contents up to hash collision.
  std::uint64_t TableDigest(std::uint32_t table_id) const;
  // Same, over the whole view — the oracle's fast path compares this
  // against the digest of a read-back state to skip the per-entry diff.
  std::uint64_t TotalDigest() const { return total_digest_; }

  const p4ir::P4Info& info() const { return *info_; }

 private:
  struct Stored {
    p4rt::TableEntry entry;
    std::uint64_t hash = 0;  // EntryContentHash(entry)
  };
  using RefKey = std::tuple<std::string, std::string, std::string>;
  using PoolKey = std::pair<std::string, std::string>;
  std::vector<RefKey> ProvidedBy(const p4rt::TableEntry& entry) const;
  std::vector<RefKey> ReferencesOf(const p4rt::TableEntry& entry) const;
  void Index(const p4rt::TableEntry& entry, int delta);
  void AddDigest(const Stored& stored, int sign);
  void InsertStored(const std::string& fingerprint, Stored stored);
  void EraseStored(std::map<std::string, Stored>::iterator it);

  const p4ir::P4Info* info_;
  std::map<std::string, Stored> by_fingerprint_;
  // Per-table secondary index: key fingerprint → entry, same iteration
  // order as a by_fingerprint_ scan but O(k) per table.
  std::map<std::uint32_t, std::map<std::string, const p4rt::TableEntry*>>
      by_table_;
  std::map<std::uint32_t, int> count_by_table_;
  std::map<std::uint32_t, std::uint64_t> digest_by_table_;
  std::uint64_t total_digest_ = 0;
  // (table, key) → value → provider/reference count. Zero-count values are
  // erased, so map order == the sorted distinct pool.
  std::map<PoolKey, std::map<std::string, int>> providers_;
  std::map<PoolKey, std::map<std::string, int>> references_;
  // Pools only ever get queried for @refers_to / param-reference targets
  // (the generator builds references from them, the oracle checks dangling
  // references against them), so providers_ indexes just those pools:
  // table id → the match field ids of that table that feed a referenced
  // pool. Tables absent from the map need no provider indexing at all.
  std::map<std::uint32_t, std::vector<std::uint32_t>> provider_fields_;
  // Tables with any outgoing reference; all others skip reference
  // indexing on insert/erase.
  std::set<std::uint32_t> referring_tables_;
};

}  // namespace switchv::fuzzer

#endif  // SWITCHV_FUZZER_STATE_H_
