// The fuzzer's view of the switch's installed state.
//
// Both the request generator (to build valid requests that reference only
// installed entries, §4.4) and the oracle (to judge state-dependent
// validity) work from this view. It is re-synchronized from a full switch
// read after every batch, implementing the paper's "observe the actual
// state, then forget the prior state" oracle design (§4.3).
#ifndef SWITCHV_FUZZER_STATE_H_
#define SWITCHV_FUZZER_STATE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "p4runtime/messages.h"

namespace switchv::fuzzer {

class SwitchStateView {
 public:
  explicit SwitchStateView(const p4ir::P4Info& info) : info_(&info) {}

  // Replaces the view with the given (read-back) entries.
  void Reset(const std::vector<p4rt::TableEntry>& entries);

  // Applies one accepted update on top of the current view.
  void Apply(const p4rt::Update& update);

  bool Contains(const p4rt::TableEntry& entry) const {
    return by_fingerprint_.contains(entry.KeyFingerprint());
  }
  const p4rt::TableEntry* Find(const p4rt::TableEntry& entry) const;

  int Count(std::uint32_t table_id) const;
  std::size_t TotalEntries() const { return by_fingerprint_.size(); }

  // All installed entries of one table.
  std::vector<const p4rt::TableEntry*> TableEntries(
      std::uint32_t table_id) const;
  std::vector<const p4rt::TableEntry*> AllEntries() const;

  // Canonical byte values installed for (table, key): the candidate pool
  // for @refers_to-respecting generation.
  std::vector<std::string> KeyValues(const std::string& table,
                                     const std::string& key) const;

  // True if deleting `entry` would leave a dangling reference (some other
  // installed entry references a value only this entry provides).
  bool IsReferenced(const p4rt::TableEntry& entry) const;

  const p4ir::P4Info& info() const { return *info_; }

 private:
  using RefKey = std::tuple<std::string, std::string, std::string>;
  std::vector<RefKey> ProvidedBy(const p4rt::TableEntry& entry) const;
  std::vector<RefKey> ReferencesOf(const p4rt::TableEntry& entry) const;
  void Index(const p4rt::TableEntry& entry, int delta);

  const p4ir::P4Info* info_;
  std::map<std::string, p4rt::TableEntry> by_fingerprint_;
  std::map<RefKey, int> providers_;
  std::map<RefKey, int> references_;
};

}  // namespace switchv::fuzzer

#endif  // SWITCHV_FUZZER_STATE_H_
