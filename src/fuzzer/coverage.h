// Coverage-guided greybox scheduling for the p4-fuzzer (FP4-style).
//
// The SUT stack and the reference interpreter already know which tables,
// actions, and layers every update and packet touched; this module turns
// those observations into a compact edge bitmap and an AFL-style energy
// scheduler that biases mutation/table selection toward the inputs whose
// parents reached new edges. An *edge* is the tuple
// (table, action, SUT layer, failed-bit) hashed into a fixed 16 KiB
// count map — the fuzzing analogue of AFL's branch pairs, at the
// granularity SwitchV actually observes (paper Table 1 attributes bugs to
// exactly these coordinates).
//
// Determinism contract: the scheduler draws from its own splitmix-derived
// stream (ShardSeed(shard_seed, kCoverageSchedulerStream)) and never
// consumes the request generator's RNG, so a guided shard is a pure
// function of (options, seed) — replayable from the flight recorder — and
// an unguided shard's request stream is byte-identical to a build without
// this module. Guidance only reorders what the fuzzer tries, never what a
// campaign can report.
#ifndef SWITCHV_FUZZER_COVERAGE_H_
#define SWITCHV_FUZZER_COVERAGE_H_

#include <array>
#include <cstdint>
#include <map>
#include <string_view>
#include <vector>

#include "util/rng.h"

namespace switchv::fuzzer {

// Campaign-level guidance mode; carried on the shard wire (spec JSON and
// the v3 request envelope) as its integer value.
enum class Guidance {
  kUniform = 0,   // baseline: uniform mutation draw, byte-identical stream
  kCoverage = 1,  // coverage-guided energy scheduling
};

// Scheduler knobs. The defaults are the tuned campaign values; tests pin
// behaviour through them.
struct GuidanceOptions {
  // Probability that a draw ignores the corpus and takes the uniform
  // baseline path (AFL's exploration arm).
  double exploration = 0.15;
  // Batches without a novelty event before the scheduler falls back to
  // the uniform baseline (coverage plateau). 0 = observe-only: coverage
  // is recorded and exported but never steers a draw, which keeps the
  // generated stream byte-identical to Guidance::kUniform.
  int plateau_batches = 12;
  // Upper bound on distinct (table, mutation) energy keys kept.
  int corpus_max = 512;
  // Seeds exported per shard by HarvestSeeds (top energy first).
  int harvest_max = 16;
};

// Splitmix sub-stream index for the scheduler's private RNG (derived from
// the shard seed, disjoint from every shard's generator stream by the
// ShardSeed mixing).
inline constexpr std::uint64_t kCoverageSchedulerStream = 0x5eedc0de;

// An interesting input exchanged between shards and hosts: the scheduler
// key that discovered novelty plus its residual energy. mutation < 0
// means "valid insert" (no mutation applied); otherwise the value is the
// int of fuzzer::Mutation.
struct SeedDescriptor {
  std::uint32_t table_id = 0;
  int mutation = -1;
  std::uint64_t energy = 1;

  friend bool operator==(const SeedDescriptor&,
                         const SeedDescriptor&) = default;
};

inline constexpr int kCoverageMapBits = 14;
inline constexpr std::size_t kCoverageMapSize = std::size_t{1}
                                                << kCoverageMapBits;

// Stable edge ids. These are pure functions of their arguments (splitmix /
// FNV-1a mixing, no addresses, no global state), so the same tuple hashes
// to the same id in every process, build, and shard — fingerprint
// stability across runs is what makes merged maps comparable.
std::uint64_t CoverageEdgeId(std::uint32_t table_id, std::uint64_t action_id,
                             int layer, bool failed);
std::uint32_t CoverageNameId(std::string_view name);
// Edge id for named program points (the bmv2 interpreter reports table and
// action by name).
std::uint64_t CoverageEdgeIdNamed(std::string_view table,
                                  std::string_view action);

// Fixed-size saturating 8-bit count map. Merge is min(255, a+b) per slot:
// commutative and associative, so shard maps fold in any order.
class CoverageMap {
 public:
  // Bumps the edge's slot; returns the count *before* the increment
  // (0 ⇒ first hit). Saturates at 255.
  std::uint8_t Mark(std::uint64_t edge_id) {
    std::uint8_t& slot = counts_[Slot(edge_id)];
    const std::uint8_t before = slot;
    if (slot != 0xff) ++slot;
    return before;
  }

  std::uint8_t CountAt(std::uint64_t edge_id) const {
    return counts_[Slot(edge_id)];
  }

  void MergeFrom(const CoverageMap& other);
  void Clear() { counts_.fill(0); }

  // Number of populated slots (distinct edges, modulo map collisions).
  std::uint64_t PopulatedEdges() const;
  // Order-independent content fingerprint of the populated slots.
  std::uint64_t Fingerprint() const;

 private:
  static std::size_t Slot(std::uint64_t edge_id) {
    return static_cast<std::size_t>(edge_id & (kCoverageMapSize - 1));
  }

  std::array<std::uint8_t, kCoverageMapSize> counts_{};
};

// AFL-style energy scheduler. The corpus is a map from
// (table_id, mutation) — the recipe that produced an update — to energy;
// RecordUpdate credits the recipe when its update reached a new edge or
// crossed a power-of-two hit-count bucket, EndBatch decays energy and
// tracks the plateau, DrawPlan picks the next recipe energy-weighted.
class CoverageScheduler {
 public:
  struct Plan {
    // False: take the uniform baseline draw (exploration or plateau).
    bool use_corpus = false;
    // When use_corpus: mutation < 0 ⇒ valid insert, else the Mutation to
    // apply, both preferring `table_id`.
    int mutation = -1;
    std::uint32_t table_id = 0;
  };

  CoverageScheduler(std::uint64_t shard_seed, const GuidanceOptions& options)
      : options_(options),
        rng_(ShardSeed(shard_seed, kCoverageSchedulerStream)) {}

  // True while the corpus should steer draws: not in observe-only mode,
  // non-empty corpus, and no coverage plateau.
  bool guided_active() const {
    return options_.plateau_batches > 0 && !energy_.empty() &&
           batches_since_novelty_ < options_.plateau_batches;
  }

  // Draws the recipe for the next update. Deterministic in the scheduler
  // stream; callers must consult guided_active() first (the baseline path
  // must not consume this stream when guidance is off, but an active
  // scheduler consumes exactly one draw sequence per plan).
  Plan DrawPlan();

  // Observation for one control-plane update: `layer_mask` has bit l set
  // for every SUT layer the update reached (bit 7 = the unit failed);
  // `mutation` as in SeedDescriptor. Marks one edge per reached layer and
  // credits the (table_id, mutation) recipe for novelty.
  void RecordUpdate(std::uint32_t table_id, std::uint64_t action_id,
                    std::uint8_t layer_mask, int mutation);

  // Batch boundary: decays energy (halving, so stale discoveries wash
  // out) and advances the plateau clock.
  void EndBatch();

  // Seed exchange: imports fanned-out seeds from other shards (energy
  // adds, saturating), exports this shard's top recipes.
  void ImportSeeds(const std::vector<SeedDescriptor>& seeds);
  std::vector<SeedDescriptor> HarvestSeeds() const;

  const CoverageMap& map() const { return map_; }
  std::uint64_t edges_total() const { return map_.PopulatedEdges(); }
  std::uint64_t novelty_events() const { return novelty_events_; }

 private:
  static std::uint64_t Key(std::uint32_t table_id, int mutation) {
    // mutation ∈ [-1, 16] → biased to non-negative for packing.
    return (static_cast<std::uint64_t>(table_id) << 8) |
           static_cast<std::uint64_t>(mutation + 1);
  }
  void Credit(std::uint64_t key, std::uint64_t amount);

  GuidanceOptions options_;
  Rng rng_;
  CoverageMap map_;
  // Ordered so iteration (draws, harvest) is deterministic.
  std::map<std::uint64_t, std::uint64_t> energy_;
  std::uint64_t novelty_events_ = 0;
  int batches_since_novelty_ = 0;
};

}  // namespace switchv::fuzzer

#endif  // SWITCHV_FUZZER_COVERAGE_H_
