#include "fuzzer/judgment_cache.h"

#include <algorithm>
#include <cstring>
#include <functional>
#include <string_view>
#include <utility>

#include "util/fingerprint.h"

namespace switchv::fuzzer {

namespace {

void AppendU32(std::string& out, std::uint32_t v) {
  const char bytes[4] = {static_cast<char>(v & 0xff),
                         static_cast<char>((v >> 8) & 0xff),
                         static_cast<char>((v >> 16) & 0xff),
                         static_cast<char>((v >> 24) & 0xff)};
  out.append(bytes, 4);
}

void AppendI32(std::string& out, int v) {
  AppendU32(out, static_cast<std::uint32_t>(v));
}

void AppendStr(std::string& out, const std::string& s) {
  AppendU32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

void AppendAction(std::string& out, const p4rt::ActionInvocation& action) {
  AppendU32(out, action.action_id);
  AppendU32(out, static_cast<std::uint32_t>(action.params.size()));
  for (const p4rt::ActionInvocation::Param& p : action.params) {
    AppendU32(out, p.param_id);
    AppendStr(out, p.value);
  }
}

}  // namespace

namespace {

void AppendCanonicalEntryBytes(const p4rt::TableEntry& entry,
                               std::string& out) {
  AppendU32(out, entry.table_id);
  AppendI32(out, entry.priority);
  // Encode each match on its own, then sort the encodings: match order is
  // semantically irrelevant, so permutations must share bytes. Each match
  // encoding is self-delimiting (fixed-width ids, length-prefixed values),
  // so concatenation under a count prefix stays injective. The pieces are
  // packed into one scratch buffer and sorted as spans — this runs on
  // every cached judgment, so per-match string allocations would dominate
  // the hit path. The buffers are thread-local so the steady state is
  // allocation-free.
  thread_local std::string scratch;
  thread_local std::vector<std::pair<std::uint32_t, std::uint32_t>> spans;
  scratch.clear();
  spans.clear();
  for (const p4rt::FieldMatch& m : entry.matches) {
    const std::uint32_t begin = static_cast<std::uint32_t>(scratch.size());
    AppendU32(scratch, m.field_id);
    AppendStr(scratch, m.value);
    AppendStr(scratch, m.mask);
    AppendI32(scratch, m.prefix_len);
    spans.emplace_back(begin, static_cast<std::uint32_t>(scratch.size()));
  }
  std::sort(spans.begin(), spans.end(),
            [&scratch](const auto& a, const auto& b) {
              return std::string_view(scratch).substr(a.first,
                                                      a.second - a.first) <
                     std::string_view(scratch).substr(b.first,
                                                      b.second - b.first);
            });
  AppendU32(out, static_cast<std::uint32_t>(spans.size()));
  for (const auto& [begin, end] : spans) {
    out.append(scratch, begin, end - begin);
  }
  out.push_back(entry.action.kind == p4rt::TableAction::Kind::kDirect ? 0
                                                                      : 1);
  if (entry.action.kind == p4rt::TableAction::Kind::kDirect) {
    AppendAction(out, entry.action.direct);
  } else {
    AppendU32(out, static_cast<std::uint32_t>(entry.action.action_set.size()));
    for (const p4rt::WeightedAction& wa : entry.action.action_set) {
      AppendAction(out, wa.action);
      AppendI32(out, wa.weight);
    }
  }
}

}  // namespace

std::string CanonicalEntryBytes(const p4rt::TableEntry& entry) {
  std::string out;
  out.reserve(96);
  AppendCanonicalEntryBytes(entry, out);
  return out;
}

std::string CanonicalUpdateBytes(const p4rt::Update& update) {
  std::string out;
  AppendCanonicalUpdateBytes(update, out);
  return out;
}

void AppendCanonicalUpdateBytes(const p4rt::Update& update,
                                std::string& out) {
  out.reserve(out.size() + 104);
  out.push_back(static_cast<char>(update.type));
  AppendCanonicalEntryBytes(update.entry, out);
}

namespace {

// Word-at-a-time 64-bit mixer (splitmix-style multiply + xor-shift).
// EntryContentHash is only ever compared against other EntryContentHash
// values (state digests, the oracle's post-read fast path), so it needs
// speed and avalanche, not a stable external format: one multiply per
// 8 input bytes beats byte-at-a-time FNV ~4x on the read-back digest
// loop, the hottest code in a healthy-switch campaign.
struct WordHash {
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  void Add(std::uint64_t v) {
    h = (h ^ v) * 0xff51afd7ed558ccdull;
    h ^= h >> 33;
  }
  void AddBytes(std::string_view s) {
    Add(s.size());  // length marker keeps ("ab","")/("a","b") distinct
    while (s.size() >= 8) {
      std::uint64_t w;
      std::memcpy(&w, s.data(), 8);
      Add(w);
      s.remove_prefix(8);
    }
    if (!s.empty()) {
      std::uint64_t w = 0;
      std::memcpy(&w, s.data(), s.size());
      Add(w);
    }
  }
};

}  // namespace

std::uint64_t EntryContentHash(const p4rt::TableEntry& entry) {
  // Single allocation-free pass — this runs once per installed entry per
  // post-batch read, so it is the hottest loop in the oracle's fast path.
  // Matches combine by an order-independent sum of per-match hashes
  // (mirroring the sorted canonical encoding's order-insensitivity);
  // everything else is hashed in a fixed field order with length markers,
  // so distinct entries collide only with hash probability.
  WordHash head;
  head.Add(entry.table_id);
  head.Add(static_cast<std::uint64_t>(entry.priority));
  std::uint64_t match_sum = 0;
  for (const p4rt::FieldMatch& m : entry.matches) {
    WordHash piece;
    piece.Add(m.field_id);
    piece.AddBytes(m.value);
    piece.AddBytes(m.mask);
    piece.Add(static_cast<std::uint64_t>(m.prefix_len));
    match_sum += piece.h;
  }
  head.Add(entry.matches.size());
  head.Add(match_sum);
  const auto add_action = [&head](const p4rt::ActionInvocation& action) {
    head.Add(action.action_id);
    head.Add(action.params.size());
    for (const p4rt::ActionInvocation::Param& p : action.params) {
      head.Add(p.param_id);
      head.AddBytes(p.value);
    }
  };
  if (entry.action.kind == p4rt::TableAction::Kind::kDirect) {
    head.Add(0);
    add_action(entry.action.direct);
  } else {
    head.Add(1);
    head.Add(entry.action.action_set.size());
    for (const p4rt::WeightedAction& wa : entry.action.action_set) {
      add_action(wa.action);
      head.Add(static_cast<std::uint64_t>(wa.weight));
    }
  }
  return head.h;
}

JudgmentCache::JudgmentCache() : JudgmentCache(Options{}) {}

JudgmentCache::JudgmentCache(Options options)
    : per_stripe_cap_(std::max<std::size_t>(
          1, options.max_entries /
                 static_cast<std::size_t>(std::max(1, options.stripes)))),
      stripes_(static_cast<std::size_t>(std::max(1, options.stripes))) {}

JudgmentCache::Stripe& JudgmentCache::StripeFor(std::string_view key) {
  return stripes_[std::hash<std::string_view>{}(key) % stripes_.size()];
}

bool JudgmentCache::Lookup(std::string_view key, Expectation* out,
                           JudgmentCacheStats* stats) {
  Stripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.map.find(key);
  if (it == stripe.map.end()) {
    if (stats != nullptr) ++stats->misses;
    return false;
  }
  if (stats != nullptr) ++stats->hits;
  *out = it->second;
  return true;
}

void JudgmentCache::Insert(std::string_view key, const Expectation& value,
                           JudgmentCacheStats* stats) {
  Stripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto [it, inserted] = stripe.map.emplace(std::string(key), value);
  if (!inserted) return;  // racing writer got there first
  stripe.fifo.push_back(&it->first);
  while (stripe.fifo.size() > per_stripe_cap_) {
    const std::string* oldest = stripe.fifo.front();
    stripe.fifo.pop_front();
    stripe.map.erase(*oldest);
    if (stats != nullptr) ++stats->evictions;
  }
}

std::size_t JudgmentCache::size() const {
  std::size_t total = 0;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    total += stripe.map.size();
  }
  return total;
}

}  // namespace switchv::fuzzer
