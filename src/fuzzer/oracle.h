// The p4-fuzzer oracle (paper §4.3).
//
// Encodes the P4Runtime specification's admissible behaviours without
// predicting a single outcome: under-specified cases (insertion beyond the
// guaranteed table size, batch ordering) accept multiple responses. After
// every batch the oracle reads the switch's actual state, checks it against
// the expected state implied by the switch's own responses, and then
// *forgets* the prior state — avoiding the state explosion of tracking all
// valid interleavings.
#ifndef SWITCHV_FUZZER_ORACLE_H_
#define SWITCHV_FUZZER_ORACLE_H_

#include <optional>
#include <string>
#include <vector>

#include "fuzzer/generator.h"
#include "fuzzer/state.h"

namespace switchv::fuzzer {

// One oracle complaint about the switch's behaviour.
struct Finding {
  std::string message;
  std::optional<Mutation> mutation;  // the mutation behind the request
  std::string entry_text;            // offending entry, human-readable
  std::uint32_t table_id = 0;        // table involved, 0 if not entry-bound
};

class Oracle {
 public:
  explicit Oracle(const p4ir::P4Info& info) : info_(info), state_(info) {}

  // Judges a batch given the switch's per-update statuses and the
  // post-batch read of all tables. Re-synchronizes the tracked state to
  // the read on return.
  std::vector<Finding> JudgeBatch(
      const std::vector<AnnotatedUpdate>& batch,
      const p4rt::WriteResponse& response,
      const StatusOr<p4rt::ReadResponse>& post_read);

  // The oracle's current (trusted) view of the switch state: the request
  // generator draws reference targets from it.
  const SwitchStateView& state() const { return state_; }

  // Seeds the view (e.g. after installing a known-good base state).
  void SyncState(const std::vector<p4rt::TableEntry>& entries) {
    state_.Reset(entries);
  }

 private:
  // What the spec requires for one update given the expected pre-state.
  struct Expectation {
    enum class Kind { kMustAccept, kMustReject, kEither } kind;
    // Required canonical code for rejections, when the spec pins one.
    std::optional<StatusCode> required_code;
    std::string reason;
  };
  Expectation Classify(const p4rt::Update& update,
                       const SwitchStateView& expected) const;

  const p4ir::P4Info& info_;
  SwitchStateView state_;
};

}  // namespace switchv::fuzzer

#endif  // SWITCHV_FUZZER_ORACLE_H_
