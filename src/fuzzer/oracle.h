// The p4-fuzzer oracle (paper §4.3).
//
// Encodes the P4Runtime specification's admissible behaviours without
// predicting a single outcome: under-specified cases (insertion beyond the
// guaranteed table size, batch ordering) accept multiple responses. After
// every batch the oracle reads the switch's actual state, checks it against
// the expected state implied by the switch's own responses, and then
// *forgets* the prior state — avoiding the state explosion of tracking all
// valid interleavings.
//
// The bookkeeping is incremental: the tracked view is mutated in place as
// the switch acknowledges updates, the post-read comparison short-circuits
// on content digests when the switch state matches expectations (the common
// case on a healthy switch), and the final re-sync diffs instead of
// rebuilding. Classification itself can be memoized through a shared
// `JudgmentCache`: verdicts are keyed on canonical update bytes plus the
// digests of the update's dependency tables, so a judgment is reused
// exactly when nothing it could observe has changed — and produces
// byte-identical findings to the uncached path by construction.
#ifndef SWITCHV_FUZZER_ORACLE_H_
#define SWITCHV_FUZZER_ORACLE_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "fuzzer/generator.h"
#include "fuzzer/judgment_cache.h"
#include "fuzzer/state.h"

namespace switchv::fuzzer {

// One oracle complaint about the switch's behaviour.
struct Finding {
  std::string message;
  std::optional<Mutation> mutation;  // the mutation behind the request
  std::string entry_text;            // offending entry, human-readable
  std::uint32_t table_id = 0;        // table involved, 0 if not entry-bound
};

class Oracle {
 public:
  // `cache` is optional; null judges every update from scratch. The cache
  // may be shared with other oracles (other shards on this host) — hits
  // and misses are accumulated per-oracle in `cache_stats()`.
  explicit Oracle(const p4ir::P4Info& info, JudgmentCache* cache = nullptr);

  // Judges a batch given the switch's per-update statuses and the
  // post-batch read of all tables. Re-synchronizes the tracked state to
  // the read on return.
  std::vector<Finding> JudgeBatch(
      const std::vector<AnnotatedUpdate>& batch,
      const p4rt::WriteResponse& response,
      const StatusOr<p4rt::ReadResponse>& post_read);

  // The oracle's current (trusted) view of the switch state: the request
  // generator draws reference targets from it.
  const SwitchStateView& state() const { return state_; }

  // Seeds the view (e.g. after installing a known-good base state).
  void SyncState(const std::vector<p4rt::TableEntry>& entries) {
    state_.Reset(entries);
  }

  // Cache traffic attributed to this oracle (zeros when uncached).
  const JudgmentCacheStats& cache_stats() const { return cache_stats_; }

 private:
  Expectation Classify(const p4rt::Update& update,
                       const SwitchStateView& expected) const;
  // Memoized front-end for Classify against the current tracked state.
  Expectation ClassifyCached(const p4rt::Update& update);
  // Tables whose contents a judgment for `table_id` may observe: the table
  // itself, its @refers_to targets, and its reverse referrers (delete
  // judgments read referring tables). Precomputed from P4Info.
  const std::vector<std::uint32_t>& DepClosure(std::uint32_t table_id) const;

  const p4ir::P4Info& info_;
  SwitchStateView state_;
  JudgmentCache* cache_;
  JudgmentCacheStats cache_stats_;
  std::map<std::uint32_t, std::vector<std::uint32_t>> dep_closure_;
};

}  // namespace switchv::fuzzer

#endif  // SWITCHV_FUZZER_ORACLE_H_
