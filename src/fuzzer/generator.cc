#include "fuzzer/generator.h"

#include <algorithm>
#include <set>

#include "p4runtime/validator.h"

namespace switchv::fuzzer {

std::string_view MutationName(Mutation mutation) {
  switch (mutation) {
    case Mutation::kInvalidTableId: return "InvalidTableId";
    case Mutation::kInvalidFieldId: return "InvalidFieldId";
    case Mutation::kInvalidActionId: return "InvalidActionId";
    case Mutation::kInvalidTableAction: return "InvalidTableAction";
    case Mutation::kInvalidMatchType: return "InvalidMatchType";
    case Mutation::kDuplicateMatchField: return "DuplicateMatchField";
    case Mutation::kMissingMandatoryField: return "MissingMandatoryMatchField";
    case Mutation::kInvalidSelectorWeight: return "InvalidActionSelectorWeight";
    case Mutation::kInvalidTableImplementation:
      return "InvalidTableImplementation";
    case Mutation::kInvalidReference: return "InvalidReference";
    case Mutation::kNonCanonicalBytes: return "NonCanonicalBytes";
    case Mutation::kOutOfRangeValue: return "OutOfRangeValue";
    case Mutation::kWrongParamCount: return "WrongParamCount";
    case Mutation::kMissingPriority: return "MissingPriority";
    case Mutation::kDuplicateEntry: return "DuplicateEntry";
    case Mutation::kDeleteNonExisting: return "DeleteNonExisting";
    case Mutation::kConstraintViolation: return "ConstraintViolation";
  }
  return "?";
}

RequestGenerator::RequestGenerator(const p4ir::P4Info& info,
                                   FuzzerOptions options, std::uint64_t seed)
    : info_(info), options_(options), rng_(seed) {}

p4constraints::ConstraintBdd* RequestGenerator::BddFor(
    const p4ir::TableInfo& table) {
  auto it = bdd_cache_.find(table.id);
  if (it != bdd_cache_.end()) return it->second.get();
  auto compiled = p4constraints::ConstraintBdd::Compile(
      table.entry_restriction, p4rt::SchemaForTable(table));
  if (!compiled.ok()) {
    bdd_cache_[table.id] = nullptr;
    return nullptr;
  }
  auto owned = std::make_unique<p4constraints::ConstraintBdd>(
      std::move(compiled).value());
  p4constraints::ConstraintBdd* raw = owned.get();
  bdd_cache_[table.id] = std::move(owned);
  return raw;
}

StatusOr<p4rt::FieldMatch> RequestGenerator::GenerateMatch(
    const SwitchStateView& state, const p4ir::MatchFieldInfo& field) {
  p4rt::FieldMatch match;
  match.field_id = field.id;
  if (field.refers_to.has_value()) {
    const std::size_t pool_size = state.KeyPoolSize(
        field.refers_to->table, field.refers_to->key);
    if (pool_size == 0) {
      return NotFoundError("no installed values for reference target");
    }
    match.value = state.KeyValueAt(field.refers_to->table,
                                   field.refers_to->key,
                                   rng_.Index(pool_size));
    return match;
  }
  switch (field.kind) {
    case p4ir::MatchKind::kExact:
      match.value = rng_.Bits(field.width).ToCanonicalBytes();
      break;
    case p4ir::MatchKind::kLpm: {
      match.prefix_len = static_cast<int>(
          rng_.Uniform(1, static_cast<std::uint64_t>(field.width)));
      const BitString mask =
          BitString::PrefixMask(match.prefix_len, field.width);
      match.value = (rng_.Bits(field.width) & mask).ToCanonicalBytes();
      break;
    }
    case p4ir::MatchKind::kTernary: {
      BitString mask = rng_.Bits(field.width);
      if (mask.IsZero()) mask = BitString::AllOnes(field.width);
      match.mask = mask.ToCanonicalBytes();
      match.value = (rng_.Bits(field.width) & mask).ToCanonicalBytes();
      break;
    }
    case p4ir::MatchKind::kOptional:
      match.value = rng_.Bits(field.width).ToCanonicalBytes();
      break;
  }
  return match;
}

StatusOr<p4rt::ActionInvocation> RequestGenerator::GenerateAction(
    const SwitchStateView& state, const p4ir::TableInfo& table,
    const p4ir::ActionInfo& action) {
  p4rt::ActionInvocation invocation;
  invocation.action_id = action.id;
  for (const p4ir::ActionParamInfo& param : action.params) {
    const p4ir::RefersTo* target = nullptr;
    for (const p4ir::TableParamReference& r : table.param_references) {
      if (r.action_id == action.id && r.param_id == param.id) {
        target = &r.target;
      }
    }
    std::string value;
    if (target != nullptr) {
      const std::size_t pool_size =
          state.KeyPoolSize(target->table, target->key);
      if (pool_size == 0) {
        return NotFoundError("no installed values for param reference");
      }
      value = state.KeyValueAt(target->table, target->key,
                               rng_.Index(pool_size));
    } else {
      value = rng_.Bits(param.width).ToCanonicalBytes();
    }
    invocation.params.push_back(
        p4rt::ActionInvocation::Param{param.id, std::move(value)});
  }
  return invocation;
}

StatusOr<p4rt::TableEntry> RequestGenerator::SampleConstrainedEntry(
    const SwitchStateView& state, const p4ir::TableInfo& table,
    bool violating) {
  p4constraints::ConstraintBdd* bdd = BddFor(table);
  if (bdd == nullptr) {
    return InternalError("constraint failed to compile for " + table.name);
  }
  auto sample = violating ? bdd->SampleViolating(rng_)
                          : bdd->SampleSatisfying(rng_);
  if (!sample.ok()) return sample.status();

  p4rt::TableEntry entry;
  entry.table_id = table.id;
  for (const p4ir::MatchFieldInfo& field : table.match_fields) {
    const p4constraints::KeyValuation& kv = sample->keys.at(field.name);
    p4rt::FieldMatch match;
    match.field_id = field.id;
    if (field.refers_to.has_value()) {
      // Referenced keys draw from the installed pool instead (our models
      // never constrain a referencing key).
      const std::size_t pool_size = state.KeyPoolSize(
          field.refers_to->table, field.refers_to->key);
      if (pool_size == 0) {
        return NotFoundError("no installed values for reference target");
      }
      match.value = state.KeyValueAt(field.refers_to->table,
                                     field.refers_to->key,
                                     rng_.Index(pool_size));
      entry.matches.push_back(std::move(match));
      continue;
    }
    switch (field.kind) {
      case p4ir::MatchKind::kExact:
        match.value =
            BitString::FromUint(kv.value, field.width).ToCanonicalBytes();
        break;
      case p4ir::MatchKind::kLpm:
        if (kv.prefix_len == 0) continue;  // wildcard: omit
        match.prefix_len = kv.prefix_len;
        match.value =
            BitString::FromUint(kv.value, field.width).ToCanonicalBytes();
        break;
      case p4ir::MatchKind::kTernary:
        if (kv.mask == 0) continue;  // wildcard: omit
        match.value =
            BitString::FromUint(kv.value, field.width).ToCanonicalBytes();
        match.mask =
            BitString::FromUint(kv.mask, field.width).ToCanonicalBytes();
        break;
      case p4ir::MatchKind::kOptional:
        if (kv.mask == 0) continue;  // wildcard: omit
        match.value =
            BitString::FromUint(kv.value, field.width).ToCanonicalBytes();
        break;
    }
    entry.matches.push_back(std::move(match));
  }
  if (table.requires_priority) {
    entry.priority = std::max(1, sample->priority);
  }
  // Action part is unconstrained: generate as usual.
  const std::uint32_t action_id = rng_.Pick(table.action_ids);
  const p4ir::ActionInfo* action = info_.FindAction(action_id);
  SWITCHV_ASSIGN_OR_RETURN(p4rt::ActionInvocation invocation,
                           GenerateAction(state, table, *action));
  entry.action.kind = p4rt::TableAction::Kind::kDirect;
  entry.action.direct = std::move(invocation);
  return entry;
}

StatusOr<p4rt::TableEntry> RequestGenerator::GenerateEntryForTable(
    const SwitchStateView& state, const p4ir::TableInfo& table) {
  // Constrained tables: sample compliant entries from the BDD when enabled.
  if (!table.entry_restriction.empty() && options_.use_bdd_for_constraints &&
      !table.selector.has_value()) {
    return SampleConstrainedEntry(state, table, /*violating=*/false);
  }

  p4rt::TableEntry entry;
  entry.table_id = table.id;
  for (const p4ir::MatchFieldInfo& field : table.match_fields) {
    const bool mandatory = field.kind == p4ir::MatchKind::kExact;
    if (!mandatory && !rng_.Chance(0.6)) continue;  // omit = wildcard
    SWITCHV_ASSIGN_OR_RETURN(p4rt::FieldMatch match,
                             GenerateMatch(state, field));
    entry.matches.push_back(std::move(match));
  }
  if (table.requires_priority) {
    entry.priority = static_cast<int>(rng_.Uniform(1, 10000));
  }
  if (table.selector.has_value()) {
    entry.action.kind = p4rt::TableAction::Kind::kActionSet;
    const int max_members = std::min(4, table.selector->max_group_size);
    const int members = static_cast<int>(
        rng_.Uniform(1, static_cast<std::uint64_t>(max_members)));
    for (int i = 0; i < members; ++i) {
      const std::uint32_t action_id = rng_.Pick(table.action_ids);
      const p4ir::ActionInfo* action = info_.FindAction(action_id);
      SWITCHV_ASSIGN_OR_RETURN(p4rt::ActionInvocation invocation,
                               GenerateAction(state, table, *action));
      const int weight = static_cast<int>(rng_.Uniform(1, 3));
      entry.action.action_set.push_back(
          p4rt::WeightedAction{std::move(invocation), weight});
    }
  } else {
    const std::uint32_t action_id = rng_.Pick(table.action_ids);
    const p4ir::ActionInfo* action = info_.FindAction(action_id);
    SWITCHV_ASSIGN_OR_RETURN(p4rt::ActionInvocation invocation,
                             GenerateAction(state, table, *action));
    entry.action.kind = p4rt::TableAction::Kind::kDirect;
    entry.action.direct = std::move(invocation);
  }
  return entry;
}

StatusOr<p4rt::TableEntry> RequestGenerator::GenerateValidEntry(
    const SwitchStateView& state, std::uint32_t preferred_table_id) {
  if (preferred_table_id != 0) {
    // Coverage-guided draw: honour the scheduler's table pick first (two
    // tries — reference draws can still fail transiently), then fall
    // through to the uniform path below.
    if (const p4ir::TableInfo* preferred =
            info_.FindTable(preferred_table_id)) {
      for (int attempt = 0; attempt < 2; ++attempt) {
        auto entry = GenerateEntryForTable(state, *preferred);
        if (entry.ok()) return entry;
      }
    }
  }
  // Try a few random tables: some may be ungeneratable until their
  // reference targets are installed. ACL-style tables get extra weight.
  std::vector<const p4ir::TableInfo*> priority_tables;
  for (const p4ir::TableInfo& table : info_.tables()) {
    if (table.requires_priority) priority_tables.push_back(&table);
  }
  for (int attempt = 0; attempt < 8; ++attempt) {
    const p4ir::TableInfo& table =
        !priority_tables.empty() && rng_.Chance(options_.priority_table_bias)
            ? *priority_tables[rng_.Index(priority_tables.size())]
            : info_.tables()[rng_.Index(info_.tables().size())];
    auto entry = GenerateEntryForTable(state, table);
    if (entry.ok()) return entry;
  }
  return NotFoundError("no generatable table (references unsatisfied)");
}

std::optional<AnnotatedUpdate> RequestGenerator::ApplyMutation(
    const SwitchStateView& state, Mutation mutation, p4rt::TableEntry entry) {
  AnnotatedUpdate out;
  out.mutation = mutation;
  out.update.type = p4rt::UpdateType::kInsert;
  switch (mutation) {
    case Mutation::kInvalidTableId:
      entry.table_id = 0x0BADF00D;
      break;
    case Mutation::kInvalidFieldId:
      if (entry.matches.empty()) return std::nullopt;
      entry.matches[rng_.Index(entry.matches.size())].field_id = 250;
      break;
    case Mutation::kInvalidActionId:
      if (entry.action.kind != p4rt::TableAction::Kind::kDirect) {
        return std::nullopt;
      }
      entry.action.direct.action_id = 0x0BADF00D;
      entry.action.direct.params.clear();
      break;
    case Mutation::kInvalidTableAction: {
      const p4ir::TableInfo* table = info_.FindTable(entry.table_id);
      if (table == nullptr ||
          entry.action.kind != p4rt::TableAction::Kind::kDirect) {
        return std::nullopt;
      }
      const p4ir::ActionInfo* out_of_scope = nullptr;
      for (const p4ir::ActionInfo& action : info_.actions()) {
        if (!table->HasAction(action.id)) out_of_scope = &action;
      }
      if (out_of_scope == nullptr) return std::nullopt;
      entry.action.direct.action_id = out_of_scope->id;
      entry.action.direct.params.clear();
      for (const p4ir::ActionParamInfo& p : out_of_scope->params) {
        entry.action.direct.params.push_back(p4rt::ActionInvocation::Param{
            p.id, rng_.Bits(p.width).ToCanonicalBytes()});
      }
      break;
    }
    case Mutation::kInvalidMatchType: {
      if (entry.matches.empty()) return std::nullopt;
      const p4ir::TableInfo* table = info_.FindTable(entry.table_id);
      if (table == nullptr) return std::nullopt;
      p4rt::FieldMatch& match = entry.matches[rng_.Index(entry.matches.size())];
      const p4ir::MatchFieldInfo* field = table->FindMatchField(match.field_id);
      if (field == nullptr) return std::nullopt;
      if (field->kind == p4ir::MatchKind::kLpm) {
        match.mask = std::string("\xFF", 1);  // lpm must not carry a mask
      } else {
        match.prefix_len = 8;  // non-lpm must not carry a prefix
      }
      break;
    }
    case Mutation::kDuplicateMatchField:
      if (entry.matches.empty()) return std::nullopt;
      entry.matches.push_back(entry.matches[0]);
      break;
    case Mutation::kMissingMandatoryField: {
      const p4ir::TableInfo* table = info_.FindTable(entry.table_id);
      if (table == nullptr) return std::nullopt;
      bool removed = false;
      for (std::size_t i = 0; i < entry.matches.size(); ++i) {
        const p4ir::MatchFieldInfo* field =
            table->FindMatchField(entry.matches[i].field_id);
        if (field != nullptr && field->kind == p4ir::MatchKind::kExact) {
          entry.matches.erase(entry.matches.begin() +
                              static_cast<std::ptrdiff_t>(i));
          removed = true;
          break;
        }
      }
      if (!removed) return std::nullopt;
      break;
    }
    case Mutation::kInvalidSelectorWeight:
      if (entry.action.kind != p4rt::TableAction::Kind::kActionSet ||
          entry.action.action_set.empty()) {
        return std::nullopt;
      }
      entry.action.action_set[0].weight = 0;
      break;
    case Mutation::kInvalidTableImplementation:
      if (entry.action.kind == p4rt::TableAction::Kind::kDirect) {
        // Send an action set to a single-action table.
        p4rt::ActionInvocation direct = entry.action.direct;
        entry.action.kind = p4rt::TableAction::Kind::kActionSet;
        entry.action.action_set = {p4rt::WeightedAction{std::move(direct), 1}};
      } else {
        entry.action.kind = p4rt::TableAction::Kind::kDirect;
        entry.action.direct = entry.action.action_set[0].action;
        entry.action.action_set.clear();
      }
      break;
    case Mutation::kInvalidReference: {
      const p4ir::TableInfo* table = info_.FindTable(entry.table_id);
      if (table == nullptr) return std::nullopt;
      // Replace a referencing value (match or param) with a fresh value
      // that is not installed.
      const std::string bogus =
          BitString::FromUint(0xEE00 + rng_.Uniform(0, 0xFF), 16)
              .ToCanonicalBytes();
      for (p4rt::FieldMatch& match : entry.matches) {
        const p4ir::MatchFieldInfo* field =
            table->FindMatchField(match.field_id);
        if (field != nullptr && field->refers_to.has_value()) {
          match.value = bogus;
          return AnnotatedUpdate{
              p4rt::Update{p4rt::UpdateType::kInsert, std::move(entry)},
              mutation};
        }
      }
      auto mutate_action = [&](p4rt::ActionInvocation& action) -> bool {
        for (const p4ir::TableParamReference& r : table->param_references) {
          if (r.action_id != action.action_id) continue;
          for (p4rt::ActionInvocation::Param& p : action.params) {
            if (p.param_id == r.param_id) {
              p.value = bogus;
              return true;
            }
          }
        }
        return false;
      };
      bool mutated = false;
      if (entry.action.kind == p4rt::TableAction::Kind::kDirect) {
        mutated = mutate_action(entry.action.direct);
      } else {
        for (p4rt::WeightedAction& wa : entry.action.action_set) {
          if (mutate_action(wa.action)) mutated = true;
        }
      }
      if (!mutated) return std::nullopt;
      break;
    }
    case Mutation::kNonCanonicalBytes:
      if (entry.matches.empty()) return std::nullopt;
      entry.matches[0].value = std::string("\0", 1) + entry.matches[0].value;
      break;
    case Mutation::kOutOfRangeValue: {
      const p4ir::TableInfo* table = info_.FindTable(entry.table_id);
      if (table == nullptr || entry.matches.empty()) return std::nullopt;
      p4rt::FieldMatch& match = entry.matches[0];
      const p4ir::MatchFieldInfo* field = table->FindMatchField(match.field_id);
      if (field == nullptr) return std::nullopt;
      match.value = BitString::AllOnes(std::min(128, field->width + 8))
                        .ToCanonicalBytes();
      break;
    }
    case Mutation::kWrongParamCount:
      if (entry.action.kind != p4rt::TableAction::Kind::kDirect ||
          entry.action.direct.params.empty()) {
        return std::nullopt;
      }
      entry.action.direct.params.pop_back();
      break;
    case Mutation::kMissingPriority: {
      const p4ir::TableInfo* table = info_.FindTable(entry.table_id);
      if (table == nullptr || !table->requires_priority) return std::nullopt;
      entry.priority = 0;
      break;
    }
    case Mutation::kDuplicateEntry: {
      const auto installed = state.AllEntries();
      if (installed.empty()) return std::nullopt;
      entry = *installed[rng_.Index(installed.size())];
      break;
    }
    case Mutation::kDeleteNonExisting: {
      if (state.Contains(entry)) return std::nullopt;
      out.update.type = p4rt::UpdateType::kDelete;
      break;
    }
    case Mutation::kConstraintViolation: {
      // Pick a constrained table and sample a near-miss violation.
      std::vector<const p4ir::TableInfo*> constrained;
      for (const p4ir::TableInfo& table : info_.tables()) {
        if (!table.entry_restriction.empty() && !table.selector.has_value()) {
          constrained.push_back(&table);
        }
      }
      if (constrained.empty()) return std::nullopt;
      auto violating = SampleConstrainedEntry(
          state, *constrained[rng_.Index(constrained.size())],
          /*violating=*/true);
      if (!violating.ok()) return std::nullopt;
      entry = std::move(violating).value();
      break;
    }
  }
  out.update.entry = std::move(entry);
  return out;
}

std::vector<AnnotatedUpdate> RequestGenerator::GenerateBatch(
    const SwitchStateView& state, int n) {
  std::vector<AnnotatedUpdate> batch;
  batch.reserve(static_cast<std::size_t>(n));
  // Track fingerprints used in this batch so intended-valid updates stay
  // independent of each other (no in-batch identity collisions).
  std::set<std::string> batch_fingerprints;
  int guard = 0;
  while (static_cast<int>(batch.size()) < n && guard++ < n * 20) {
    // Corpus-directed bias: when guidance is active the scheduler may
    // supply a (table, mutation) recipe from its own stream. The recipe
    // biases the *choice inside* the baseline arms below — which table to
    // target, which mutation to apply — but never the arm frequencies
    // themselves: a guided run keeps the unguided invalid/delete/modify
    // mix and only redirects where the energy says novelty lives.
    // (Replacing the arm roll wholesale starves mutations, because
    // valid-insert recipes traverse every layer and dominate the energy
    // map.) A neutral plan leaves the arms fully unbiased, and rng_ then
    // runs exactly as an unguided stream would from this point.
    std::optional<CoverageScheduler::Plan> plan;
    if (scheduler_ != nullptr && scheduler_->guided_active()) {
      const CoverageScheduler::Plan drawn = scheduler_->DrawPlan();
      if (drawn.use_corpus) plan = drawn;
    }
    if (rng_.Chance(options_.invalid_probability)) {
      auto valid = plan.has_value() ? GenerateValidEntry(state, plan->table_id)
                                    : GenerateValidEntry(state);
      if (!valid.ok()) continue;
      const Mutation mutation =
          plan.has_value() && plan->mutation >= 0
              ? Mutation(plan->mutation)
              : kAllMutations[rng_.Index(std::size(kAllMutations))];
      auto mutated = ApplyMutation(state, mutation, std::move(valid).value());
      if (!mutated.has_value()) continue;
      ++generated_invalid_;
      batch.push_back(std::move(*mutated));
      continue;
    }
    // Intended-valid update: insert, or delete/modify of installed entries.
    const double roll = static_cast<double>(rng_.Uniform(0, 999)) / 1000.0;
    if (roll < options_.delete_probability) {
      const auto installed = state.AllEntries();
      if (!installed.empty()) {
        const p4rt::TableEntry& victim =
            *installed[rng_.Index(installed.size())];
        if (batch_fingerprints.insert(victim.KeyFingerprint()).second) {
          ++generated_valid_;
          batch.push_back(AnnotatedUpdate{
              p4rt::Update{p4rt::UpdateType::kDelete, victim}, std::nullopt});
        }
        continue;
      }
    }
    if (roll < options_.delete_probability + options_.modify_probability) {
      const auto installed = state.AllEntries();
      if (!installed.empty()) {
        const p4rt::TableEntry& victim =
            *installed[rng_.Index(installed.size())];
        const p4ir::TableInfo* table = info_.FindTable(victim.table_id);
        if (table != nullptr &&
            batch_fingerprints.count(victim.KeyFingerprint()) == 0) {
          auto fresh = GenerateEntryForTable(state, *table);
          if (fresh.ok()) {
            p4rt::TableEntry modified = victim;
            modified.action = fresh->action;
            batch_fingerprints.insert(modified.KeyFingerprint());
            ++generated_valid_;
            batch.push_back(AnnotatedUpdate{
                p4rt::Update{p4rt::UpdateType::kModify, std::move(modified)},
                std::nullopt});
          }
        }
        continue;
      }
    }
    auto entry = plan.has_value() ? GenerateValidEntry(state, plan->table_id)
                                  : GenerateValidEntry(state);
    if (!entry.ok()) continue;
    if (state.Contains(*entry) ||
        !batch_fingerprints.insert(entry->KeyFingerprint()).second) {
      continue;  // avoid unintended duplicates
    }
    ++generated_valid_;
    batch.push_back(AnnotatedUpdate{
        p4rt::Update{p4rt::UpdateType::kInsert, std::move(entry).value()},
        std::nullopt});
  }
  return batch;
}

}  // namespace switchv::fuzzer
