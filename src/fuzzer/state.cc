#include "fuzzer/state.h"

#include <algorithm>

#include "fuzzer/judgment_cache.h"

namespace switchv::fuzzer {

SwitchStateView::SwitchStateView(const p4ir::P4Info& info) : info_(&info) {
  // Resolve, once, which (table, key) pools the program can ever query:
  // the targets of @refers_to match annotations and action-param
  // references. Provider indexing is restricted to the fields that feed
  // those pools; everything else skips the index entirely on apply.
  std::set<PoolKey> referenced_pools;
  for (const p4ir::TableInfo& table : info.tables()) {
    bool refers = false;
    for (const p4ir::MatchFieldInfo& field : table.match_fields) {
      if (field.refers_to.has_value()) {
        referenced_pools.insert(
            PoolKey{field.refers_to->table, field.refers_to->key});
        refers = true;
      }
    }
    for (const p4ir::TableParamReference& r : table.param_references) {
      referenced_pools.insert(PoolKey{r.target.table, r.target.key});
      refers = true;
    }
    if (refers) referring_tables_.insert(table.id);
  }
  for (const p4ir::TableInfo& table : info.tables()) {
    for (const p4ir::MatchFieldInfo& field : table.match_fields) {
      if (referenced_pools.contains(PoolKey{table.name, field.name})) {
        provider_fields_[table.id].push_back(field.id);
      }
    }
  }
}

void SwitchStateView::AddDigest(const Stored& stored, int sign) {
  const std::uint64_t h = stored.hash;
  std::uint64_t& table_digest = digest_by_table_[stored.entry.table_id];
  if (sign > 0) {
    table_digest += h;
    total_digest_ += h;
  } else {
    table_digest -= h;
    total_digest_ -= h;
  }
}

void SwitchStateView::InsertStored(const std::string& fingerprint,
                                   Stored stored) {
  auto [it, inserted] =
      by_fingerprint_.insert_or_assign(fingerprint, std::move(stored));
  (void)inserted;
  const Stored& s = it->second;
  by_table_[s.entry.table_id][fingerprint] = &s.entry;
  ++count_by_table_[s.entry.table_id];
  AddDigest(s, +1);
  Index(s.entry, +1);
}

void SwitchStateView::EraseStored(
    std::map<std::string, Stored>::iterator it) {
  const Stored& s = it->second;
  Index(s.entry, -1);
  AddDigest(s, -1);
  --count_by_table_[s.entry.table_id];
  auto table_it = by_table_.find(s.entry.table_id);
  if (table_it != by_table_.end()) {
    table_it->second.erase(it->first);
    if (table_it->second.empty()) by_table_.erase(table_it);
  }
  by_fingerprint_.erase(it);
}

void SwitchStateView::Reset(const std::vector<p4rt::TableEntry>& entries) {
  by_fingerprint_.clear();
  by_table_.clear();
  count_by_table_.clear();
  digest_by_table_.clear();
  total_digest_ = 0;
  providers_.clear();
  references_.clear();
  for (const p4rt::TableEntry& entry : entries) {
    const std::string fingerprint = entry.KeyFingerprint();
    auto it = by_fingerprint_.find(fingerprint);
    if (it != by_fingerprint_.end()) {
      // Duplicate key in the input: last wins, like map assignment did.
      EraseStored(it);
    }
    InsertStored(fingerprint, Stored{entry, EntryContentHash(entry)});
  }
}

void SwitchStateView::SyncTo(
    const std::map<std::string, const p4rt::TableEntry*>& observed) {
  // Drop entries that vanished from the read.
  for (auto it = by_fingerprint_.begin(); it != by_fingerprint_.end();) {
    if (observed.contains(it->first)) {
      ++it;
    } else {
      auto doomed = it++;
      EraseStored(doomed);
    }
  }
  // Add new entries; replace changed ones; leave identical ones untouched.
  for (const auto& [fingerprint, entry] : observed) {
    auto it = by_fingerprint_.find(fingerprint);
    if (it != by_fingerprint_.end()) {
      if (it->second.entry == *entry) continue;
      EraseStored(it);
    }
    InsertStored(fingerprint, Stored{*entry, EntryContentHash(*entry)});
  }
}

void SwitchStateView::Apply(const p4rt::Update& update) {
  const std::string fingerprint = update.entry.KeyFingerprint();
  switch (update.type) {
    case p4rt::UpdateType::kInsert: {
      auto it = by_fingerprint_.find(fingerprint);
      if (it != by_fingerprint_.end()) EraseStored(it);
      InsertStored(fingerprint,
                   Stored{update.entry, EntryContentHash(update.entry)});
      break;
    }
    case p4rt::UpdateType::kModify: {
      auto it = by_fingerprint_.find(fingerprint);
      if (it != by_fingerprint_.end()) {
        EraseStored(it);
        InsertStored(fingerprint,
                     Stored{update.entry, EntryContentHash(update.entry)});
      }
      break;
    }
    case p4rt::UpdateType::kDelete: {
      auto it = by_fingerprint_.find(fingerprint);
      if (it != by_fingerprint_.end()) EraseStored(it);
      break;
    }
  }
}

const p4rt::TableEntry* SwitchStateView::Find(
    const p4rt::TableEntry& entry) const {
  return FindByFingerprint(entry.KeyFingerprint());
}

const p4rt::TableEntry* SwitchStateView::FindByFingerprint(
    const std::string& fingerprint) const {
  auto it = by_fingerprint_.find(fingerprint);
  return it == by_fingerprint_.end() ? nullptr : &it->second.entry;
}

int SwitchStateView::Count(std::uint32_t table_id) const {
  auto it = count_by_table_.find(table_id);
  return it == count_by_table_.end() ? 0 : it->second;
}

std::vector<const p4rt::TableEntry*> SwitchStateView::TableEntries(
    std::uint32_t table_id) const {
  std::vector<const p4rt::TableEntry*> out;
  auto it = by_table_.find(table_id);
  if (it == by_table_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [fingerprint, entry] : it->second) {
    out.push_back(entry);
  }
  return out;
}

std::vector<const p4rt::TableEntry*> SwitchStateView::AllEntries() const {
  std::vector<const p4rt::TableEntry*> out;
  out.reserve(by_fingerprint_.size());
  for (const auto& [fingerprint, stored] : by_fingerprint_) {
    out.push_back(&stored.entry);
  }
  return out;
}

std::vector<std::string> SwitchStateView::KeyValues(
    const std::string& table, const std::string& key) const {
  std::vector<std::string> values;
  auto it = providers_.find(PoolKey{table, key});
  if (it == providers_.end()) return values;
  values.reserve(it->second.size());
  for (const auto& [value, count] : it->second) {
    values.push_back(value);
  }
  return values;
}

std::size_t SwitchStateView::KeyPoolSize(const std::string& table,
                                         const std::string& key) const {
  auto it = providers_.find(PoolKey{table, key});
  return it == providers_.end() ? 0 : it->second.size();
}

const std::string& SwitchStateView::KeyValueAt(const std::string& table,
                                               const std::string& key,
                                               std::size_t index) const {
  auto it = providers_.find(PoolKey{table, key});
  auto value_it = it->second.begin();
  std::advance(value_it, static_cast<std::ptrdiff_t>(index));
  return value_it->first;
}

bool SwitchStateView::HasKeyValue(const std::string& table,
                                  const std::string& key,
                                  const std::string& value) const {
  auto it = providers_.find(PoolKey{table, key});
  return it != providers_.end() && it->second.contains(value);
}

bool SwitchStateView::IsReferenced(const p4rt::TableEntry& entry) const {
  for (const RefKey& provided : ProvidedBy(entry)) {
    const PoolKey pool{std::get<0>(provided), std::get<1>(provided)};
    const std::string& value = std::get<2>(provided);
    auto refs = references_.find(pool);
    if (refs == references_.end()) continue;
    auto ref_count = refs->second.find(value);
    if (ref_count == refs->second.end() || ref_count->second <= 0) continue;
    auto providers = providers_.find(pool);
    if (providers == providers_.end()) continue;
    auto provider_count = providers->second.find(value);
    if (provider_count != providers->second.end() &&
        provider_count->second <= 1) {
      return true;
    }
  }
  return false;
}

std::uint64_t SwitchStateView::TableDigest(std::uint32_t table_id) const {
  auto it = digest_by_table_.find(table_id);
  return it == digest_by_table_.end() ? 0 : it->second;
}

std::vector<SwitchStateView::RefKey> SwitchStateView::ProvidedBy(
    const p4rt::TableEntry& entry) const {
  std::vector<RefKey> provided;
  const auto fields_it = provider_fields_.find(entry.table_id);
  if (fields_it == provider_fields_.end()) return provided;
  const std::vector<std::uint32_t>& provider_fields = fields_it->second;
  const p4ir::TableInfo* table = info_->FindTable(entry.table_id);
  if (table == nullptr) return provided;
  for (const p4rt::FieldMatch& m : entry.matches) {
    if (std::find(provider_fields.begin(), provider_fields.end(),
                  m.field_id) == provider_fields.end()) {
      continue;
    }
    const p4ir::MatchFieldInfo* field = table->FindMatchField(m.field_id);
    if (field == nullptr) continue;
    provided.emplace_back(table->name, field->name, m.value);
  }
  return provided;
}

std::vector<SwitchStateView::RefKey> SwitchStateView::ReferencesOf(
    const p4rt::TableEntry& entry) const {
  std::vector<RefKey> refs;
  const p4ir::TableInfo* table = info_->FindTable(entry.table_id);
  if (table == nullptr) return refs;
  for (const p4rt::FieldMatch& m : entry.matches) {
    const p4ir::MatchFieldInfo* field = table->FindMatchField(m.field_id);
    if (field == nullptr || !field->refers_to.has_value()) continue;
    refs.emplace_back(field->refers_to->table, field->refers_to->key,
                      m.value);
  }
  auto collect = [&](const p4rt::ActionInvocation& action) {
    for (const p4ir::TableParamReference& r : table->param_references) {
      if (r.action_id != action.action_id) continue;
      for (const p4rt::ActionInvocation::Param& p : action.params) {
        if (p.param_id == r.param_id) {
          refs.emplace_back(r.target.table, r.target.key, p.value);
        }
      }
    }
  };
  if (entry.action.kind == p4rt::TableAction::Kind::kDirect) {
    collect(entry.action.direct);
  } else {
    for (const p4rt::WeightedAction& wa : entry.action.action_set) {
      collect(wa.action);
    }
  }
  return refs;
}

void SwitchStateView::Index(const p4rt::TableEntry& entry, int delta) {
  // Most tables neither provide a referenced pool nor reference one:
  // skip the RefKey materialization entirely for them — this runs once
  // per accepted update.
  const bool provides = provider_fields_.contains(entry.table_id);
  const bool refers = referring_tables_.contains(entry.table_id);
  if (!provides && !refers) return;
  auto bump = [delta](std::map<PoolKey, std::map<std::string, int>>& index,
                      const RefKey& ref) {
    const PoolKey pool{std::get<0>(ref), std::get<1>(ref)};
    std::map<std::string, int>& values = index[pool];
    int& count = values[std::get<2>(ref)];
    count += delta;
    // Erase spent values so pool size and iteration order track only the
    // live (count > 0) pool.
    if (count <= 0) values.erase(std::get<2>(ref));
  };
  if (provides) {
    for (const RefKey& provided : ProvidedBy(entry)) {
      bump(providers_, provided);
    }
  }
  if (refers) {
    for (const RefKey& ref : ReferencesOf(entry)) {
      bump(references_, ref);
    }
  }
}

}  // namespace switchv::fuzzer
