#include "fuzzer/state.h"

namespace switchv::fuzzer {

void SwitchStateView::Reset(const std::vector<p4rt::TableEntry>& entries) {
  by_fingerprint_.clear();
  providers_.clear();
  references_.clear();
  for (const p4rt::TableEntry& entry : entries) {
    by_fingerprint_[entry.KeyFingerprint()] = entry;
    Index(entry, +1);
  }
}

void SwitchStateView::Apply(const p4rt::Update& update) {
  const std::string fingerprint = update.entry.KeyFingerprint();
  switch (update.type) {
    case p4rt::UpdateType::kInsert:
      by_fingerprint_[fingerprint] = update.entry;
      Index(update.entry, +1);
      break;
    case p4rt::UpdateType::kModify: {
      auto it = by_fingerprint_.find(fingerprint);
      if (it != by_fingerprint_.end()) {
        Index(it->second, -1);
        it->second = update.entry;
        Index(update.entry, +1);
      }
      break;
    }
    case p4rt::UpdateType::kDelete: {
      auto it = by_fingerprint_.find(fingerprint);
      if (it != by_fingerprint_.end()) {
        Index(it->second, -1);
        by_fingerprint_.erase(it);
      }
      break;
    }
  }
}

const p4rt::TableEntry* SwitchStateView::Find(
    const p4rt::TableEntry& entry) const {
  auto it = by_fingerprint_.find(entry.KeyFingerprint());
  return it == by_fingerprint_.end() ? nullptr : &it->second;
}

int SwitchStateView::Count(std::uint32_t table_id) const {
  int count = 0;
  for (const auto& [fingerprint, entry] : by_fingerprint_) {
    if (entry.table_id == table_id) ++count;
  }
  return count;
}

std::vector<const p4rt::TableEntry*> SwitchStateView::TableEntries(
    std::uint32_t table_id) const {
  std::vector<const p4rt::TableEntry*> out;
  for (const auto& [fingerprint, entry] : by_fingerprint_) {
    if (entry.table_id == table_id) out.push_back(&entry);
  }
  return out;
}

std::vector<const p4rt::TableEntry*> SwitchStateView::AllEntries() const {
  std::vector<const p4rt::TableEntry*> out;
  out.reserve(by_fingerprint_.size());
  for (const auto& [fingerprint, entry] : by_fingerprint_) {
    out.push_back(&entry);
  }
  return out;
}

std::vector<std::string> SwitchStateView::KeyValues(
    const std::string& table, const std::string& key) const {
  std::vector<std::string> values;
  for (const auto& [ref, count] : providers_) {
    if (count > 0 && std::get<0>(ref) == table && std::get<1>(ref) == key) {
      values.push_back(std::get<2>(ref));
    }
  }
  return values;
}

bool SwitchStateView::IsReferenced(const p4rt::TableEntry& entry) const {
  for (const RefKey& provided : ProvidedBy(entry)) {
    auto refs = references_.find(provided);
    if (refs == references_.end() || refs->second <= 0) continue;
    auto providers = providers_.find(provided);
    if (providers != providers_.end() && providers->second <= 1) return true;
  }
  return false;
}

std::vector<SwitchStateView::RefKey> SwitchStateView::ProvidedBy(
    const p4rt::TableEntry& entry) const {
  std::vector<RefKey> provided;
  const p4ir::TableInfo* table = info_->FindTable(entry.table_id);
  if (table == nullptr) return provided;
  for (const p4rt::FieldMatch& m : entry.matches) {
    const p4ir::MatchFieldInfo* field = table->FindMatchField(m.field_id);
    if (field == nullptr) continue;
    provided.emplace_back(table->name, field->name, m.value);
  }
  return provided;
}

std::vector<SwitchStateView::RefKey> SwitchStateView::ReferencesOf(
    const p4rt::TableEntry& entry) const {
  std::vector<RefKey> refs;
  const p4ir::TableInfo* table = info_->FindTable(entry.table_id);
  if (table == nullptr) return refs;
  for (const p4rt::FieldMatch& m : entry.matches) {
    const p4ir::MatchFieldInfo* field = table->FindMatchField(m.field_id);
    if (field == nullptr || !field->refers_to.has_value()) continue;
    refs.emplace_back(field->refers_to->table, field->refers_to->key,
                      m.value);
  }
  auto collect = [&](const p4rt::ActionInvocation& action) {
    for (const p4ir::TableParamReference& r : table->param_references) {
      if (r.action_id != action.action_id) continue;
      for (const p4rt::ActionInvocation::Param& p : action.params) {
        if (p.param_id == r.param_id) {
          refs.emplace_back(r.target.table, r.target.key, p.value);
        }
      }
    }
  };
  if (entry.action.kind == p4rt::TableAction::Kind::kDirect) {
    collect(entry.action.direct);
  } else {
    for (const p4rt::WeightedAction& wa : entry.action.action_set) {
      collect(wa.action);
    }
  }
  return refs;
}

void SwitchStateView::Index(const p4rt::TableEntry& entry, int delta) {
  for (const RefKey& provided : ProvidedBy(entry)) {
    providers_[provided] += delta;
  }
  for (const RefKey& ref : ReferencesOf(entry)) {
    references_[ref] += delta;
  }
}

}  // namespace switchv::fuzzer
