// Shared memo for oracle judgments (ROADMAP item 1: per-core oracle speed).
//
// `Oracle::Classify` is a pure function of (update bytes, P4Info, contents
// of the update's dependency tables): the entry's own table plus every
// table it can refer to (@refers_to targets) or be referred from (reverse
// referrers, consulted by delete judgments). `JudgmentCache` memoizes the
// resulting admissible-behaviour verdict under a key that encodes exactly
// those inputs:
//
//   key = CanonicalUpdateBytes(update)
//       ‖ fnv64(P4Info fingerprint, {table id, table content digest}
//               for every table in the dependency closure)
//
// The update bytes are kept verbatim (no hashing), so two distinct updates
// can never alias a cache slot; only the dependency digest is compressed.
// Table digests are order-independent sums of per-entry content hashes,
// maintained incrementally by `SwitchStateView` — any insert, modify, or
// delete in a dependency table changes the digest and thereby invalidates
// every cached judgment that could observe it. Because digests are derived
// from table *contents* (not per-view version counters), one cache can be
// shared by every shard on a host: shards whose views agree on the
// dependency tables share hits, shards that diverge cannot collide.
//
// Thread-safe via striped mutexes; bounded by FIFO eviction per stripe.
#ifndef SWITCHV_FUZZER_JUDGMENT_CACHE_H_
#define SWITCHV_FUZZER_JUDGMENT_CACHE_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "p4runtime/messages.h"
#include "util/status.h"

namespace switchv::fuzzer {

// What the spec requires for one update given the expected pre-state.
// (Hoisted out of Oracle so judgments can live in the shared cache.)
struct Expectation {
  enum class Kind { kMustAccept, kMustReject, kEither };
  Kind kind = Kind::kMustAccept;
  // Required canonical code for rejections, when the spec pins one.
  std::optional<StatusCode> required_code;
  std::string reason;

  friend bool operator==(const Expectation&, const Expectation&) = default;
};

// Injective canonical encoding of an entry / update: every variable-length
// field is length-prefixed, so two distinct messages can never encode to
// the same bytes. Match fields are encoded in sorted order (match-field
// order is semantically irrelevant: entry identity, syntax validation, and
// constraint evaluation are all set-based), so permuted-but-equal entries
// share one cache line.
std::string CanonicalEntryBytes(const p4rt::TableEntry& entry);
std::string CanonicalUpdateBytes(const p4rt::Update& update);
// In-place variant for the cache-key hot path: appends the update's
// canonical bytes to `out` without intermediate strings.
void AppendCanonicalUpdateBytes(const p4rt::Update& update, std::string& out);

// Fast 64-bit content hash over the same canonical view of an entry — the
// per-entry hash that `SwitchStateView` sums into per-table digests and the
// oracle's post-read fast path recomputes for every read-back entry. Only
// ever compared against other EntryContentHash values (no external format).
std::uint64_t EntryContentHash(const p4rt::TableEntry& entry);

// Per-caller cache traffic counters. Each oracle accumulates its own copy
// (plain values, no atomics) so per-shard attribution survives the metrics
// merge algebra: hits/misses/evictions add commutatively like every other
// counter.
struct JudgmentCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
};

class JudgmentCache {
 public:
  struct Options {
    // Total bound across stripes; FIFO eviction beyond it.
    std::size_t max_entries = 1 << 17;
    int stripes = 16;
  };

  JudgmentCache();  // defaults: Options{}
  explicit JudgmentCache(Options options);

  // Returns true and fills `*out` on a hit. `stats` (optional) is the
  // caller's traffic accounting.
  bool Lookup(std::string_view key, Expectation* out,
              JudgmentCacheStats* stats);

  // Inserts (first writer wins; a racing duplicate is dropped). Evictions
  // are charged to the inserting caller's stats.
  void Insert(std::string_view key, const Expectation& value,
              JudgmentCacheStats* stats);

  std::size_t size() const;

 private:
  // Transparent hashing: lookups take string_view without materializing a
  // std::string.
  struct KeyHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<std::string, Expectation, KeyHash, std::equal_to<>>
        map;
    std::deque<const std::string*> fifo;  // keys in insertion order
  };

  Stripe& StripeFor(std::string_view key);

  std::size_t per_stripe_cap_;
  std::vector<Stripe> stripes_;
};

}  // namespace switchv::fuzzer

#endif  // SWITCHV_FUZZER_JUDGMENT_CACHE_H_
