#include "fuzzer/oracle.h"

#include <algorithm>

#include "p4runtime/validator.h"
#include "util/fingerprint.h"

namespace switchv::fuzzer {

Oracle::Oracle(const p4ir::P4Info& info, JudgmentCache* cache)
    : info_(info), state_(info), cache_(cache) {
  // Forward references (who do I read when judging an insert/modify) and
  // reverse references (who reads me when judging a delete), resolved to
  // table ids once.
  std::map<std::uint32_t, std::vector<std::uint32_t>> forward;
  for (const p4ir::TableInfo& table : info_.tables()) {
    std::vector<std::uint32_t>& targets = forward[table.id];
    auto add_target = [&](const p4ir::RefersTo& target) {
      const p4ir::TableInfo* referred = info_.FindTableByName(target.table);
      if (referred != nullptr) targets.push_back(referred->id);
    };
    for (const p4ir::MatchFieldInfo& field : table.match_fields) {
      if (field.refers_to.has_value()) add_target(*field.refers_to);
    }
    for (const p4ir::TableParamReference& r : table.param_references) {
      add_target(r.target);
    }
  }
  for (const p4ir::TableInfo& table : info_.tables()) {
    std::vector<std::uint32_t> closure;
    closure.push_back(table.id);
    for (std::uint32_t target : forward[table.id]) closure.push_back(target);
    for (const auto& [referrer, targets] : forward) {
      if (std::find(targets.begin(), targets.end(), table.id) !=
          targets.end()) {
        closure.push_back(referrer);
      }
    }
    std::sort(closure.begin(), closure.end());
    closure.erase(std::unique(closure.begin(), closure.end()),
                  closure.end());
    dep_closure_[table.id] = std::move(closure);
  }
}

const std::vector<std::uint32_t>& Oracle::DepClosure(
    std::uint32_t table_id) const {
  static const std::vector<std::uint32_t> kEmpty;
  auto it = dep_closure_.find(table_id);
  // Unknown table: the judgment is state-independent (syntax rejection),
  // so the key needs no table digests.
  return it == dep_closure_.end() ? kEmpty : it->second;
}

Expectation Oracle::ClassifyCached(const p4rt::Update& update) {
  if (cache_ == nullptr) return Classify(update, state_);
  // The key never outlives this call (Lookup reads it, Insert copies it),
  // so a reused thread-local buffer keeps the hit path allocation-free.
  thread_local std::string key;
  key.clear();
  AppendCanonicalUpdateBytes(update, key);
  Fingerprint digest;
  digest.AddU64(info_.fingerprint());
  for (std::uint32_t table_id : DepClosure(update.entry.table_id)) {
    digest.AddU64(table_id);
    digest.AddU64(state_.TableDigest(table_id));
  }
  const std::uint64_t d = digest.digest();
  for (int i = 0; i < 8; ++i) {
    key.push_back(static_cast<char>((d >> (i * 8)) & 0xff));
  }
  Expectation out;
  if (cache_->Lookup(key, &out, &cache_stats_)) return out;
  out = Classify(update, state_);
  cache_->Insert(key, out, &cache_stats_);
  return out;
}

Expectation Oracle::Classify(const p4rt::Update& update,
                             const SwitchStateView& expected) const {
  using Kind = Expectation::Kind;
  const p4rt::TableEntry& entry = update.entry;

  if (update.type == p4rt::UpdateType::kDelete) {
    // Deletes are keyed on identity; the spec requires NOT_FOUND for
    // missing entries.
    const p4ir::TableInfo* table = info_.FindTable(entry.table_id);
    if (table == nullptr) {
      return {Kind::kMustReject, std::nullopt, "delete from unknown table"};
    }
    const p4rt::TableEntry* installed = expected.Find(entry);
    if (installed == nullptr) {
      return {Kind::kMustReject, StatusCode::kNotFound,
              "delete of non-existent entry"};
    }
    if (expected.IsReferenced(*installed)) {
      return {Kind::kMustReject, std::nullopt,
              "delete of a still-referenced entry"};
    }
    return {Kind::kMustAccept, std::nullopt, "valid delete"};
  }

  // Inserts and modifies carry a full entry: check syntax and constraints.
  if (!p4rt::ValidateEntrySyntax(info_, entry).ok()) {
    return {Kind::kMustReject, std::nullopt, "syntactically invalid"};
  }
  const p4ir::TableInfo* table = info_.FindTable(entry.table_id);
  if (table == nullptr) {
    // Syntax validation rejects unknown tables, but never rely on that for
    // a pointer dereference.
    return {Kind::kMustReject, std::nullopt, "unknown table"};
  }
  auto compliant = p4rt::IsConstraintCompliant(info_, entry);
  if (!compliant.ok() || !*compliant) {
    return {Kind::kMustReject, std::nullopt, "violates @entry_restriction"};
  }
  // Referential integrity against the expected pre-state: a reference is
  // dangling iff none of the installed entries provides the referenced
  // value.
  bool dangling = false;
  {
    auto check_value = [&](const p4ir::RefersTo& target,
                           const std::string& value) {
      if (!expected.HasKeyValue(target.table, target.key, value)) {
        dangling = true;
      }
    };
    for (const p4rt::FieldMatch& m : entry.matches) {
      const p4ir::MatchFieldInfo* field = table->FindMatchField(m.field_id);
      if (field != nullptr && field->refers_to.has_value()) {
        check_value(*field->refers_to, m.value);
      }
    }
    auto check_action = [&](const p4rt::ActionInvocation& action) {
      for (const p4ir::TableParamReference& r : table->param_references) {
        if (r.action_id != action.action_id) continue;
        for (const p4rt::ActionInvocation::Param& p : action.params) {
          if (p.param_id == r.param_id) check_value(r.target, p.value);
        }
      }
    };
    if (entry.action.kind == p4rt::TableAction::Kind::kDirect) {
      check_action(entry.action.direct);
    } else {
      for (const p4rt::WeightedAction& wa : entry.action.action_set) {
        check_action(wa.action);
      }
    }
  }
  if (dangling) {
    return {Kind::kMustReject, std::nullopt, "dangling @refers_to"};
  }

  if (update.type == p4rt::UpdateType::kModify) {
    if (expected.Find(entry) == nullptr) {
      return {Kind::kMustReject, StatusCode::kNotFound,
              "modify of non-existent entry"};
    }
    return {Kind::kMustAccept, std::nullopt, "valid modify"};
  }

  // Insert.
  if (expected.Contains(entry)) {
    return {Kind::kMustReject, StatusCode::kAlreadyExists,
            "duplicate insert"};
  }
  if (expected.Count(entry.table_id) >= table->size) {
    // Beyond the guaranteed size: accept-or-reject is under-specified.
    return {Kind::kEither, std::nullopt, "insert beyond guaranteed size"};
  }
  return {Kind::kMustAccept, std::nullopt, "valid insert within guarantee"};
}

std::vector<Finding> Oracle::JudgeBatch(
    const std::vector<AnnotatedUpdate>& batch,
    const p4rt::WriteResponse& response,
    const StatusOr<p4rt::ReadResponse>& post_read) {
  std::vector<Finding> findings;

  // The P4Runtime spec requires exactly one status per update. A switch
  // that returns a short (or long) status vector has violated the protocol;
  // report it as a finding rather than silently truncating the judgment.
  if (response.statuses.size() != batch.size()) {
    findings.push_back(Finding{
        "P4Runtime protocol violation: write response carries " +
            std::to_string(response.statuses.size()) +
            " statuses for a batch of " + std::to_string(batch.size()) +
            " updates (the spec requires exactly one status per update)",
        std::nullopt, "", 0});
  }
  // Judge each update against the evolving expected state. The tracked
  // view is advanced in place — it is re-synchronized to the authoritative
  // read below, so there is nothing to restore on divergence.
  for (std::size_t i = 0; i < batch.size() && i < response.statuses.size();
       ++i) {
    const AnnotatedUpdate& annotated = batch[i];
    const Status& status = response.statuses[i];
    const Expectation expectation = ClassifyCached(annotated.update);
    switch (expectation.kind) {
      case Expectation::Kind::kMustAccept:
        if (!status.ok()) {
          findings.push_back(Finding{
              "switch rejected a request it must accept (" +
                  expectation.reason + "): " + status.ToString(),
              annotated.mutation,
              annotated.update.entry.ToString(&info_),
              annotated.update.entry.table_id});
        }
        break;
      case Expectation::Kind::kMustReject:
        if (status.ok()) {
          findings.push_back(Finding{
              "switch accepted a request it must reject (" +
                  expectation.reason + ")",
              annotated.mutation,
              annotated.update.entry.ToString(&info_),
              annotated.update.entry.table_id});
        } else if (expectation.required_code.has_value() &&
                   status.code() != *expectation.required_code) {
          findings.push_back(Finding{
              "switch rejected with the wrong code (" + expectation.reason +
                  "): want " +
                  std::string(StatusCodeName(*expectation.required_code)) +
                  ", got " + std::string(StatusCodeName(status.code())),
              annotated.mutation,
              annotated.update.entry.ToString(&info_),
              annotated.update.entry.table_id});
        }
        break;
      case Expectation::Kind::kEither:
        if (!status.ok() && status.code() != StatusCode::kResourceExhausted) {
          findings.push_back(Finding{
              "insert beyond guarantee rejected with unexpected code: " +
                  status.ToString(),
              annotated.mutation,
              annotated.update.entry.ToString(&info_),
              annotated.update.entry.table_id});
        }
        break;
    }
    // Track what the switch claims happened.
    if (status.ok()) {
      state_.Apply(annotated.update);
    }
  }

  // Compare the switch's actual state against the expected one.
  if (!post_read.ok()) {
    findings.push_back(Finding{
        "reading the switch state failed: " + post_read.status().ToString(),
        std::nullopt, ""});
    // Keep the expected state as the best available view.
    return findings;
  }

  // Fast path: if the read-back multiset of entries hashes to exactly the
  // tracked view's content digest, the states agree — no divergence
  // findings, and the view is already in sync.
  std::uint64_t observed_digest = 0;
  for (const p4rt::TableEntry& entry : post_read->entries) {
    observed_digest += EntryContentHash(entry);
  }
  if (observed_digest == state_.TotalDigest()) {
    return findings;
  }

  // Slow path: per-entry diff. Dedup the read by key fingerprint
  // (last-wins, matching what a view rebuild would keep).
  std::map<std::string, const p4rt::TableEntry*> observed;
  for (const p4rt::TableEntry& entry : post_read->entries) {
    observed[entry.KeyFingerprint()] = &entry;
  }
  int divergences = 0;
  for (const p4rt::TableEntry* want : state_.AllEntries()) {
    auto it = observed.find(want->KeyFingerprint());
    const p4rt::TableEntry* got = it == observed.end() ? nullptr : it->second;
    if (got == nullptr) {
      if (++divergences <= 5) {
        findings.push_back(Finding{
            "entry acknowledged by the switch is missing from the read-back "
            "state",
            std::nullopt, want->ToString(&info_), want->table_id});
      }
    } else if (!(*got == *want)) {
      if (++divergences <= 5) {
        findings.push_back(Finding{
            "read-back entry differs from the acknowledged one",
            std::nullopt,
            "want " + want->ToString(&info_) + "; got " +
                got->ToString(&info_),
            want->table_id});
      }
    }
  }
  for (const auto& [fingerprint, got] : observed) {
    if (state_.FindByFingerprint(fingerprint) == nullptr) {
      if (++divergences <= 5) {
        findings.push_back(Finding{
            "read-back state contains an entry the switch never "
            "acknowledged",
            std::nullopt, got->ToString(&info_), got->table_id});
      }
    }
  }
  if (divergences > 5) {
    findings.push_back(Finding{
        std::to_string(divergences) + " total state divergences in batch",
        std::nullopt, ""});
  }
  state_.SyncTo(observed);
  return findings;
}

}  // namespace switchv::fuzzer
