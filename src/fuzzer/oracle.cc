#include "fuzzer/oracle.h"

#include "p4runtime/validator.h"

namespace switchv::fuzzer {

Oracle::Expectation Oracle::Classify(const p4rt::Update& update,
                                     const SwitchStateView& expected) const {
  using Kind = Expectation::Kind;
  const p4rt::TableEntry& entry = update.entry;

  if (update.type == p4rt::UpdateType::kDelete) {
    // Deletes are keyed on identity; the spec requires NOT_FOUND for
    // missing entries.
    const p4ir::TableInfo* table = info_.FindTable(entry.table_id);
    if (table == nullptr) {
      return {Kind::kMustReject, std::nullopt, "delete from unknown table"};
    }
    const p4rt::TableEntry* installed = expected.Find(entry);
    if (installed == nullptr) {
      return {Kind::kMustReject, StatusCode::kNotFound,
              "delete of non-existent entry"};
    }
    if (expected.IsReferenced(*installed)) {
      return {Kind::kMustReject, std::nullopt,
              "delete of a still-referenced entry"};
    }
    return {Kind::kMustAccept, std::nullopt, "valid delete"};
  }

  // Inserts and modifies carry a full entry: check syntax and constraints.
  if (!p4rt::ValidateEntrySyntax(info_, entry).ok()) {
    return {Kind::kMustReject, std::nullopt, "syntactically invalid"};
  }
  const p4ir::TableInfo* table = info_.FindTable(entry.table_id);
  if (table == nullptr) {
    // Syntax validation rejects unknown tables, but never rely on that for
    // a pointer dereference.
    return {Kind::kMustReject, std::nullopt, "unknown table"};
  }
  auto compliant = p4rt::IsConstraintCompliant(info_, entry);
  if (!compliant.ok() || !*compliant) {
    return {Kind::kMustReject, std::nullopt, "violates @entry_restriction"};
  }
  // Referential integrity against the expected pre-state.
  bool dangling = false;
  {
    // A reference is dangling iff none of the installed entries provides
    // the referenced value. `KeyValues` is a read-only query, so ask
    // `expected` directly.
    auto check_value = [&](const p4ir::RefersTo& target,
                           const std::string& value) {
      const auto pool = expected.KeyValues(target.table, target.key);
      bool found = false;
      for (const std::string& v : pool) {
        if (v == value) found = true;
      }
      if (!found) dangling = true;
    };
    for (const p4rt::FieldMatch& m : entry.matches) {
      const p4ir::MatchFieldInfo* field = table->FindMatchField(m.field_id);
      if (field != nullptr && field->refers_to.has_value()) {
        check_value(*field->refers_to, m.value);
      }
    }
    auto check_action = [&](const p4rt::ActionInvocation& action) {
      for (const p4ir::TableParamReference& r : table->param_references) {
        if (r.action_id != action.action_id) continue;
        for (const p4rt::ActionInvocation::Param& p : action.params) {
          if (p.param_id == r.param_id) check_value(r.target, p.value);
        }
      }
    };
    if (entry.action.kind == p4rt::TableAction::Kind::kDirect) {
      check_action(entry.action.direct);
    } else {
      for (const p4rt::WeightedAction& wa : entry.action.action_set) {
        check_action(wa.action);
      }
    }
  }
  if (dangling) {
    return {Kind::kMustReject, std::nullopt, "dangling @refers_to"};
  }

  if (update.type == p4rt::UpdateType::kModify) {
    if (expected.Find(entry) == nullptr) {
      return {Kind::kMustReject, StatusCode::kNotFound,
              "modify of non-existent entry"};
    }
    return {Kind::kMustAccept, std::nullopt, "valid modify"};
  }

  // Insert.
  if (expected.Contains(entry)) {
    return {Kind::kMustReject, StatusCode::kAlreadyExists,
            "duplicate insert"};
  }
  if (expected.Count(entry.table_id) >= table->size) {
    // Beyond the guaranteed size: accept-or-reject is under-specified.
    return {Kind::kEither, std::nullopt, "insert beyond guaranteed size"};
  }
  return {Kind::kMustAccept, std::nullopt, "valid insert within guarantee"};
}

std::vector<Finding> Oracle::JudgeBatch(
    const std::vector<AnnotatedUpdate>& batch,
    const p4rt::WriteResponse& response,
    const StatusOr<p4rt::ReadResponse>& post_read) {
  std::vector<Finding> findings;
  SwitchStateView expected = state_;

  // The P4Runtime spec requires exactly one status per update. A switch
  // that returns a short (or long) status vector has violated the protocol;
  // report it as a finding rather than silently truncating the judgment.
  if (response.statuses.size() != batch.size()) {
    findings.push_back(Finding{
        "P4Runtime protocol violation: write response carries " +
            std::to_string(response.statuses.size()) +
            " statuses for a batch of " + std::to_string(batch.size()) +
            " updates (the spec requires exactly one status per update)",
        std::nullopt, "", 0});
  }
  for (std::size_t i = 0; i < batch.size() && i < response.statuses.size();
       ++i) {
    const AnnotatedUpdate& annotated = batch[i];
    const Status& status = response.statuses[i];
    const Expectation expectation = Classify(annotated.update, expected);
    switch (expectation.kind) {
      case Expectation::Kind::kMustAccept:
        if (!status.ok()) {
          findings.push_back(Finding{
              "switch rejected a request it must accept (" +
                  expectation.reason + "): " + status.ToString(),
              annotated.mutation,
              annotated.update.entry.ToString(&info_),
              annotated.update.entry.table_id});
        }
        break;
      case Expectation::Kind::kMustReject:
        if (status.ok()) {
          findings.push_back(Finding{
              "switch accepted a request it must reject (" +
                  expectation.reason + ")",
              annotated.mutation,
              annotated.update.entry.ToString(&info_),
              annotated.update.entry.table_id});
        } else if (expectation.required_code.has_value() &&
                   status.code() != *expectation.required_code) {
          findings.push_back(Finding{
              "switch rejected with the wrong code (" + expectation.reason +
                  "): want " +
                  std::string(StatusCodeName(*expectation.required_code)) +
                  ", got " + std::string(StatusCodeName(status.code())),
              annotated.mutation,
              annotated.update.entry.ToString(&info_),
              annotated.update.entry.table_id});
        }
        break;
      case Expectation::Kind::kEither:
        if (!status.ok() && status.code() != StatusCode::kResourceExhausted) {
          findings.push_back(Finding{
              "insert beyond guarantee rejected with unexpected code: " +
                  status.ToString(),
              annotated.mutation,
              annotated.update.entry.ToString(&info_),
              annotated.update.entry.table_id});
        }
        break;
    }
    // Track what the switch claims happened.
    if (status.ok()) {
      expected.Apply(annotated.update);
    }
  }

  // Compare the switch's actual state against the expected one.
  if (!post_read.ok()) {
    findings.push_back(Finding{
        "reading the switch state failed: " + post_read.status().ToString(),
        std::nullopt, ""});
    // Keep the expected state as the best available view.
    std::vector<p4rt::TableEntry> entries;
    for (const p4rt::TableEntry* e : expected.AllEntries()) {
      entries.push_back(*e);
    }
    state_.Reset(entries);
    return findings;
  }

  SwitchStateView observed(info_);
  observed.Reset(post_read->entries);
  int divergences = 0;
  for (const p4rt::TableEntry* want : expected.AllEntries()) {
    const p4rt::TableEntry* got = observed.Find(*want);
    if (got == nullptr) {
      if (++divergences <= 5) {
        findings.push_back(Finding{
            "entry acknowledged by the switch is missing from the read-back "
            "state",
            std::nullopt, want->ToString(&info_), want->table_id});
      }
    } else if (!(*got == *want)) {
      if (++divergences <= 5) {
        findings.push_back(Finding{
            "read-back entry differs from the acknowledged one",
            std::nullopt,
            "want " + want->ToString(&info_) + "; got " +
                got->ToString(&info_),
            want->table_id});
      }
    }
  }
  for (const p4rt::TableEntry* got : observed.AllEntries()) {
    if (expected.Find(*got) == nullptr) {
      if (++divergences <= 5) {
        findings.push_back(Finding{
            "read-back state contains an entry the switch never "
            "acknowledged",
            std::nullopt, got->ToString(&info_), got->table_id});
      }
    }
  }
  if (divergences > 5) {
    findings.push_back(Finding{
        std::to_string(divergences) + " total state divergences in batch",
        std::nullopt, ""});
  }
  state_.Reset(post_read->entries);
  return findings;
}

}  // namespace switchv::fuzzer
