// TCP transport for distributing campaign shards across hosts.
//
// The shard wire protocol (switchv/shard_io.h) is line-delimited precisely
// so the pipe between engine and worker can become a socket. This module is
// that socket: it frames the existing WireShardSpec/WireShardResult JSON
// lines for transport between the campaign engine (dispatcher side) and a
// `switchv_worker_host` daemon (serving side), which runs each shard in a
// `switchv_shard_worker` subprocess for crash isolation.
//
// Frame layout (all integers big-endian):
//   magic    4 bytes   "SwV1" — resynchronization guard; mid-stream garbage
//                      is detected here, not by the JSON parser
//   type     1 byte    FrameType
//   length   4 bytes   payload size; capped at kMaxFramePayload so a
//                      corrupt prefix cannot make the peer buffer gigabytes
//   payload  `length` bytes
//
// Protocol, client view (one shard attempt):
//   connect → kShardRequest → { kHeartbeat* } → kShardResult | kShardError
// The host streams heartbeats while the shard subprocess runs; a silent
// connection (no frame for the heartbeat timeout) or a dropped one is a
// *transport* failure, distinct from a worker failure reported in-band via
// kShardError. Transport failures are safe to resend: shard execution is
// deterministic in the spec, and the host dedupes resends by the
// idempotency key (campaign_id, shard, attempt, spec digest), replaying
// the cached result instead of re-running the shard.
//
// Robustness contract (mirrors shard_io): every malformed input — truncated
// frame, bad magic, unknown type, oversized length, malformed envelope —
// yields INVALID_ARGUMENT (which the caller turns into a reconnect), never
// a crash or an unbounded buffer.
#ifndef SWITCHV_SWITCHV_SHARD_TRANSPORT_H_
#define SWITCHV_SWITCHV_SHARD_TRANSPORT_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "util/status.h"

namespace switchv {

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

enum class FrameType : std::uint8_t {
  kShardRequest = 1,  // request envelope + '\n' + WireShardSpec line
  kShardResult = 2,   // WireShardResult line
  kShardError = 3,    // error envelope (worker failed; shard may be retried)
  kHeartbeat = 4,     // empty payload; host liveness while a shard runs
  kHello = 5,         // hello envelope; opens a connection (health check /
                      // authenticated session bring-up)
  kHelloOk = 6,       // host's answer to a well-formed hello
  kTelemetry = 7,     // host → client: one TelemetrySample line (shard_io.h)
                      // streamed while the shard runs; only sent when the
                      // request opted in (telemetry_interval_seconds > 0),
                      // so pre-telemetry clients never see it
};

// Payload cap: generously above any real spec (packet-laden dataplane
// specs run to megabytes), far below "attacker-controlled allocation".
inline constexpr std::uint32_t kMaxFramePayload = 256u << 20;  // 256 MiB

struct Frame {
  FrameType type = FrameType::kHeartbeat;
  std::string payload;
};

// Encodes one frame, ready to write to a socket.
std::string EncodeFrame(FrameType type, std::string_view payload);

// Incremental frame decoder: feed raw socket bytes in arbitrary splits,
// pop complete frames. Once the stream is corrupt it stays corrupt — the
// only recovery is a fresh connection.
class FrameDecoder {
 public:
  // Appends bytes received from the socket.
  void Feed(std::string_view bytes);

  // The next complete frame; std::nullopt when more bytes are needed;
  // INVALID_ARGUMENT when the stream is corrupt (bad magic, unknown frame
  // type, oversized length).
  StatusOr<std::optional<Frame>> Next();

  // Bytes buffered but not yet consumed by a returned frame.
  std::size_t buffered() const { return buffer_.size() - pos_; }

 private:
  std::string buffer_;
  std::size_t pos_ = 0;
  Status corrupt_ = OkStatus();
};

// ---------------------------------------------------------------------------
// Frame authentication (HMAC-SHA256, MAC-then-frame). Opt-in per
// connection for untrusted networks; with no shared secret the wire bytes
// are exactly the unauthenticated "SwV1" protocol, unchanged.
//
// Sealed payload layout (inside the ordinary frame payload):
//   mac      32 bytes   HMAC-SHA256(secret,
//                           nonce || direction || seq_be8 || type || payload)
//   seq      8 bytes    per-direction frame counter, big-endian, from 0
//   payload  rest       the plaintext payload
//
// The connection nonce is chosen by the client and carried in its kHello
// frame (which is itself sealed, seq 0, so a tampered nonce fails its own
// MAC). `direction` is 'C' for client→host frames and 'S' for host→client,
// so a frame can never be reflected back at its sender. Replay is dead on
// both axes: a frame from another connection carries the wrong nonce (MAC
// mismatch), and a frame repeated within a connection carries a stale
// sequence number. Every verification failure — truncated auth header,
// wrong MAC, wrong key, stale sequence — is PERMISSION_DENIED, raised
// before any envelope or JSON parsing sees the payload.
// ---------------------------------------------------------------------------

inline constexpr std::size_t kAuthMacSize = 32;                  // HMAC-SHA256
inline constexpr std::size_t kAuthHeaderSize = kAuthMacSize + 8;  // + seq

// One side of an authenticated connection. Single-threaded, like the
// FrameDecoder it pairs with: all sends and receives of a connection happen
// on the thread that owns it. Default-constructed = authentication off:
// Seal/Open pass payloads through untouched.
class FrameAuthenticator {
 public:
  FrameAuthenticator() = default;
  // `nonce` is the connection nonce (raw bytes; the client draws it from
  // NewNonce, the host takes it from the client's hello).
  FrameAuthenticator(std::string secret, std::string nonce, bool is_client);

  // A fresh 16-byte connection nonce from the OS entropy pool.
  static std::string NewNonce();

  bool enabled() const { return !secret_.empty(); }
  const std::string& nonce() const { return nonce_; }

  // Wraps a payload for sending (prepends MAC and sequence number).
  std::string Seal(FrameType type, std::string_view payload);

  // Verifies and strips the auth header of a received frame's payload.
  // PERMISSION_DENIED on truncation, MAC mismatch (tampering or wrong
  // key), or sequence regression (replay).
  StatusOr<std::string> Open(FrameType type, std::string_view sealed);

 private:
  std::string Mac(char direction, std::uint64_t seq, FrameType type,
                  std::string_view payload) const;

  std::string secret_;
  std::string nonce_;
  char send_direction_ = 'C';
  char recv_direction_ = 'S';
  std::uint64_t send_seq_ = 0;
  std::uint64_t recv_seq_ = 0;
};

// Host-side bootstrap of an authenticated connection. The client's sealed
// kHello carries the nonce its own MAC is keyed on (in the clear portion
// past the auth header); this parses the nonce, builds the host-side
// authenticator, and verifies the hello with it — returning the
// authenticator already advanced past the hello on success, and
// PERMISSION_DENIED on truncation, tampering, or a wrong key.
StatusOr<FrameAuthenticator> AcceptAuthenticatedHello(
    const std::string& secret, std::string_view sealed);

// ---------------------------------------------------------------------------
// Envelopes. The request header and error report are small fixed-shape
// records; the framing already carries exact lengths, so they use a strict
// one-line text form followed by raw bytes — no escaping layer to fuzz.
// ---------------------------------------------------------------------------

// The hello envelope: sent as the first frame of a connection for health
// checks and, when authenticated, to carry the connection nonce. `nonce`
// is empty on unauthenticated hellos (serialized as "-").
struct HelloEnvelope {
  std::string nonce;  // raw bytes; hex on the wire
};

std::string SerializeHello(const HelloEnvelope& hello);
StatusOr<HelloEnvelope> ParseHello(std::string_view payload);

struct RemoteShardRequest {
  // Idempotency key: a resend of the same (campaign_id, shard, attempt)
  // with the same spec is answered from the host's result cache.
  std::uint64_t campaign_id = 0;
  int shard = 0;
  int attempt = 0;
  // Wall-clock deadline the host enforces on the shard subprocess.
  double timeout_seconds = 120;
  // > 0 opts this attempt into live telemetry: the host runs the worker
  // with --telemetry-interval and forwards each interim sample back as a
  // kTelemetry frame. Serialized as an envelope-version-2 request; the
  // default 0 keeps the version-1 envelope, so a telemetry-off campaign's
  // wire bytes are identical to the pre-telemetry protocol.
  double telemetry_interval_seconds = 0;
  // > 0 (fuzzer::Guidance::kCoverage) marks a coverage-guided shard and
  // selects the version-3 envelope, which appends the telemetry interval
  // (0 allowed: guidance does not require telemetry) and then the guidance
  // value. The default 0 keeps the v1/v2 envelopes, so a guidance-off
  // campaign's wire bytes are identical to the pre-guidance protocol.
  int guidance = 0;
  std::string spec_line;  // SerializeShardSpec output (no newline)
};

std::string SerializeRemoteRequest(const RemoteShardRequest& request);
StatusOr<RemoteShardRequest> ParseRemoteRequest(std::string_view payload);

struct RemoteShardError {
  // Mirrors WorkerProcessResult::Outcome so the dispatcher counts remote
  // worker failures in the same Metrics buckets as local subprocess ones.
  enum class Kind { kCrash, kTimeout, kExit, kSpawn, kBadRequest };
  Kind kind = Kind::kCrash;
  std::string note;
};

std::string SerializeRemoteError(const RemoteShardError& error);
StatusOr<RemoteShardError> ParseRemoteError(std::string_view payload);

// ---------------------------------------------------------------------------
// Sockets (POSIX TCP). Every call is deadline-bounded; none throws.
// ---------------------------------------------------------------------------

// Splits "host:port". Rejects empty host, non-numeric or out-of-range port.
Status ParseEndpoint(std::string_view endpoint, std::string* host, int* port);

// Connects to "host:port" with a deadline. Returns the connected fd.
StatusOr<int> ConnectTcp(const std::string& endpoint, double timeout_seconds);

// Creates a listening socket bound to host:port (port 0 = ephemeral);
// reports the actually-bound port via `bound_port`.
StatusOr<int> ListenTcp(const std::string& host, int port, int* bound_port);

// Writes the whole frame; partial writes are retried until the deadline.
Status SendFrame(int fd, FrameType type, std::string_view payload,
                 double timeout_seconds);

// ---------------------------------------------------------------------------
// Client: one shard attempt over one connection.
// ---------------------------------------------------------------------------

struct RemoteCallOutcome {
  enum class Kind {
    kResult,     // result_line holds the worker's WireShardResult line
    kWorkerError,  // host ran the attempt; the worker failed (error below)
    kTransport,  // connect/framing/connection failure — safe to resend
    kTimeout,    // client-side shard deadline expired
  };
  Kind kind = Kind::kTransport;
  std::string result_line;
  RemoteShardError::Kind error_kind = RemoteShardError::Kind::kCrash;
  std::string note;  // failure detail for the harness incident
};

// Dials `endpoint`, sends the request, and waits for the result:
// heartbeats hold the connection live, `heartbeat_timeout_seconds` of
// silence declares it dead (kTransport), and the overall per-shard
// deadline — request.timeout_seconds plus transfer slack — caps the wait
// (kTimeout). Never blocks past the deadline; never crashes the campaign.
//
// Observation hooks for the telemetry plane. All optional; with none set
// (or a null hooks pointer) CallRemoteShard's wire behaviour is exactly
// the pre-telemetry protocol.
struct RemoteCallHooks {
  // Called with each opened kTelemetry frame payload (one TelemetrySample
  // line). Runs on the calling thread, between socket reads — keep it
  // cheap.
  std::function<void(std::string_view payload)> on_telemetry;
  // Called with each measured round-trip time: once for the authenticated
  // hello (when used) and once per answered heartbeat ping.
  std::function<void(std::uint64_t rtt_ns)> on_rtt;
  // > 0: while waiting for the result, send a "ping <seq> <ns>" heartbeat
  // this often; a telemetry-capable host echoes "pong <seq> <ns>" (legacy
  // hosts ignore client heartbeats, which merely disables RTT sampling).
  double ping_interval_seconds = 0;
};

// A non-empty `auth_secret` runs the connection authenticated: hello with
// a fresh nonce, await the host's kHelloOk, then every frame sealed (see
// FrameAuthenticator). Authentication failures — including a host that
// rejects the secret — surface as kTransport, which is safe to resend.
RemoteCallOutcome CallRemoteShard(const std::string& endpoint,
                                  const RemoteShardRequest& request,
                                  double heartbeat_timeout_seconds,
                                  const std::string& auth_secret = "",
                                  const RemoteCallHooks* hooks = nullptr);

// Health check, the fleet provisioner's bring-up gate: connect, send a
// hello (authenticated when `auth_secret` is non-empty), and require the
// host's kHelloOk within the deadline. OK exactly when a shard dispatched
// to this endpoint would reach a live, correctly-keyed worker host.
Status ProbeWorkerHost(const std::string& endpoint,
                       const std::string& auth_secret,
                       double timeout_seconds);

}  // namespace switchv

#endif  // SWITCHV_SWITCHV_SHARD_TRANSPORT_H_
