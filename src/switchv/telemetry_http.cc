#include "switchv/telemetry_http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "switchv/telemetry.h"

namespace switchv {

namespace {

constexpr std::size_t kMaxRequestHead = 16 * 1024;
constexpr int kIoTimeoutMs = 5000;

// Reads until the end-of-head marker or the cap; returns the head (without
// any body — these endpoints are GET-only) or empty on error/timeout.
std::string ReadRequestHead(int fd) {
  std::string head;
  char buffer[2048];
  while (head.find("\r\n\r\n") == std::string::npos &&
         head.find("\n\n") == std::string::npos) {
    if (head.size() >= kMaxRequestHead) return "";
    struct pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kIoTimeoutMs);
    if (ready <= 0) return "";
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) return "";
    head.append(buffer, static_cast<std::size_t>(n));
  }
  return head;
}

void SendAll(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return;
    sent += static_cast<std::size_t>(n);
  }
}

void SendResponse(int fd, int code, std::string_view reason,
                  std::string_view content_type, std::string_view body) {
  std::string head = "HTTP/1.0 " + std::to_string(code) + " " +
                     std::string(reason) + "\r\nContent-Type: " +
                     std::string(content_type) +
                     "\r\nContent-Length: " + std::to_string(body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  SendAll(fd, head);
  SendAll(fd, body);
}

}  // namespace

void TelemetryHttpServer::Handle(std::string path, Handler handler) {
  handlers_[std::move(path)] = std::move(handler);
}

void TelemetryHttpServer::ServeCampaignTelemetry(
    CampaignTelemetry* telemetry) {
  Handle("/metrics", [telemetry](std::string_view, std::string* type) {
    *type = "text/plain; version=0.0.4; charset=utf-8";
    return telemetry->ToPrometheus();
  });
  Handle("/status", [telemetry](std::string_view, std::string* type) {
    *type = "application/json";
    return telemetry->StatusJson();
  });
  Handle("/events", [telemetry](std::string_view query, std::string* type) {
    *type = "application/x-ndjson";
    std::uint64_t since = 0;
    const std::string_view key = "since=";
    std::size_t pos = query.find(key);
    if (pos != std::string_view::npos) {
      since = std::strtoull(std::string(query.substr(pos + key.size()))
                                .c_str(),
                            nullptr, 10);
    }
    return telemetry->journal().ToJsonlSince(since);
  });
}

Status TelemetryHttpServer::Start(int port) {
  if (running_.load(std::memory_order_acquire)) {
    return FailedPreconditionError("telemetry http server already running");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return InternalError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return InternalError("bind 127.0.0.1:" + std::to_string(port) + ": " +
                         err);
  }
  if (::listen(fd, 16) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return InternalError("listen: " + err);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return InternalError("getsockname: " + err);
  }
  listen_fd_ = fd;
  port_ = ntohs(addr.sin_port);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return OkStatus();
}

void TelemetryHttpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Unblock accept(): shutdown makes the blocked call return with an error
  // on Linux; closing afterwards releases the port.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void TelemetryHttpServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Stop() shut the listening socket down.
      return;
    }
    // Serial handling is fine: the only clients are a scraper and curl.
    ServeConnection(fd);
    ::close(fd);
  }
}

void TelemetryHttpServer::ServeConnection(int fd) {
  const std::string head = ReadRequestHead(fd);
  if (head.empty()) return;
  // Request line: METHOD SP TARGET SP VERSION
  const std::size_t line_end = head.find_first_of("\r\n");
  const std::string line = head.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    SendResponse(fd, 400, "Bad Request", "text/plain", "bad request\n");
    return;
  }
  const std::string method = line.substr(0, sp1);
  const std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (method != "GET") {
    SendResponse(fd, 405, "Method Not Allowed", "text/plain",
                 "GET only\n");
    return;
  }
  const std::size_t qpos = target.find('?');
  const std::string path =
      qpos == std::string::npos ? target : target.substr(0, qpos);
  const std::string query =
      qpos == std::string::npos ? "" : target.substr(qpos + 1);
  const auto it = handlers_.find(path);
  if (it == handlers_.end()) {
    SendResponse(fd, 404, "Not Found", "text/plain", "not found\n");
    return;
  }
  std::string content_type = "text/plain";
  const std::string body = it->second(query, &content_type);
  SendResponse(fd, 200, "OK", content_type, body);
}

}  // namespace switchv
