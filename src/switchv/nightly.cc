#include "switchv/nightly.h"

namespace switchv {

NightlyReport RunNightlyValidation(
    const sut::FaultRegistry* faults, const p4ir::Program& model,
    const packet::ParserSpec& parser,
    const std::vector<p4rt::TableEntry>& entries,
    const NightlyOptions& options) {
  CampaignOptions campaign;
  campaign.parallelism = options.parallelism;
  campaign.control_plane_shards = options.control_plane_shards;
  campaign.dataplane_shards = options.dataplane_shards;
  campaign.seed = options.campaign_seed != 0 ? options.campaign_seed
                                             : options.control_plane.seed;
  campaign.control_plane = options.control_plane;
  campaign.dataplane = options.dataplane;
  campaign.run_control_plane = options.run_control_plane;
  campaign.run_dataplane = options.run_dataplane;
  campaign.dataplane_on_fuzzed_state = options.dataplane_on_fuzzed_state;
  campaign.guidance = options.guidance;
  campaign.guidance_options = options.guidance_options;
  campaign.guidance_seeds = options.guidance_seeds;
  campaign.tracer = options.tracer;
  campaign.flight_recorder_capacity = options.flight_recorder_capacity;
  campaign.execution = options.execution;
  campaign.scenario = options.scenario;
  campaign.worker_binary = options.worker_binary;
  campaign.shard_timeout_seconds = options.shard_timeout_seconds;
  campaign.shard_retries = options.shard_retries;
  campaign.remote_endpoints = options.remote_endpoints;
  campaign.campaign_id = options.campaign_id;
  campaign.fleet = options.fleet;
  campaign.remote_auth_secret = options.remote_auth_secret;
  campaign.telemetry = options.telemetry;
  campaign.telemetry_interval_seconds = options.telemetry_interval_seconds;

  CampaignReport campaign_report =
      RunValidationCampaign(faults, model, parser, entries, campaign);

  NightlyReport report;
  report.incidents = campaign_report.Incidents();
  report.groups = std::move(campaign_report.groups);
  report.metrics = campaign_report.metrics;
  report.fuzzed_updates = campaign_report.fuzzed_updates;
  report.packets_tested = campaign_report.packets_tested;
  report.generation = campaign_report.generation;
  report.harvested_seeds = std::move(campaign_report.harvested_seeds);
  return report;
}

}  // namespace switchv
