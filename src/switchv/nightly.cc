#include "switchv/nightly.h"

#include "models/sai_model.h"

namespace switchv {

NightlyReport RunNightlyValidation(
    const sut::FaultRegistry* faults, const p4ir::Program& model,
    const packet::ParserSpec& parser,
    const std::vector<p4rt::TableEntry>& entries,
    const NightlyOptions& options) {
  NightlyReport report;
  const p4ir::P4Info info = p4ir::P4Info::FromProgram(model);

  if (options.run_control_plane) {
    sut::SwitchUnderTest sut(faults, models::DefaultCloneSessions(),
                             model.cpu_port);
    const Status config = sut.SetForwardingPipelineConfig(info);
    if (!config.ok()) {
      report.incidents.push_back(Incident{
          Detector::kFuzzer,
          "switch rejected a valid forwarding pipeline config: " +
              config.ToString(),
          "SetForwardingPipelineConfig"});
    } else {
      (void)sut.ApplyStandardBringUpConfig();
      // Seed with the replayed state so the fuzzer starts from a realistic
      // switch, then fuzz.
      p4rt::WriteRequest seed;
      for (const p4rt::TableEntry& entry : entries) {
        seed.updates.push_back(p4rt::Update{p4rt::UpdateType::kInsert, entry});
      }
      (void)sut.Write(seed);  // failures surface via the oracle's read-sync
      ControlPlaneResult control =
          RunControlPlaneValidation(sut, info, options.control_plane);
      report.fuzzed_updates = control.updates_sent;
      for (Incident& incident : control.incidents) {
        report.incidents.push_back(std::move(incident));
      }
      if (options.dataplane_on_fuzzed_state && control.incidents.empty()) {
        // §7 extension: validate the forwarding behaviour of the state the
        // fuzzing campaign left behind, in place.
        auto fuzzed_state = sut.Read(p4rt::ReadRequest{});
        if (fuzzed_state.ok()) {
          DataplaneOptions dataplane = options.dataplane;
          dataplane.simulator_faults = faults;
          dataplane.entries_preinstalled = true;
          DataplaneResult fuzzed = RunDataplaneValidation(
              sut, model, parser, fuzzed_state->entries, dataplane);
          report.packets_tested += fuzzed.packets_tested;
          for (Incident& incident : fuzzed.incidents) {
            report.incidents.push_back(std::move(incident));
          }
        }
      }
    }
  }

  if (options.run_dataplane) {
    sut::SwitchUnderTest sut(faults, models::DefaultCloneSessions(),
                             model.cpu_port);
    const Status config = sut.SetForwardingPipelineConfig(info);
    if (!config.ok()) {
      report.incidents.push_back(Incident{
          Detector::kSymbolic,
          "data-plane validation could not configure the switch: " +
              config.ToString(),
          "SetForwardingPipelineConfig"});
      return report;
    }
    (void)sut.ApplyStandardBringUpConfig();
    DataplaneOptions dataplane = options.dataplane;
    dataplane.simulator_faults = faults;
    DataplaneResult data =
        RunDataplaneValidation(sut, model, parser, entries, dataplane);
    report.packets_tested = data.packets_tested;
    report.generation = data.generation;
    for (Incident& incident : data.incidents) {
      report.incidents.push_back(std::move(incident));
    }
  }
  return report;
}

}  // namespace switchv
