// Structured campaign event journal (the telemetry plane's flight log).
//
// Metrics say how much work the fleet did; the journal says what *happened*
// to it: hosts launched, proved themselves at hello, got retired, went on
// probation, were readmitted or reprovisioned; shards dispatched, retried,
// lost; incident fingerprints first seen. Each event carries a monotonic
// coordinator-clock timestamp and full campaign/shard/host identity, and
// renders as one JSON object per line (JSONL) — append-friendly for files,
// range-queryable for the /events?since=N endpoint.
//
// Thread-safe: the engine's worker threads, the host pool (inside its own
// mutex), and the fleet provisioner all append concurrently. Timestamps are
// clamped monotone *under the journal mutex*, so the sequence order and the
// timestamp order never disagree — consumers may sort by either.
#ifndef SWITCHV_SWITCHV_JOURNAL_H_
#define SWITCHV_SWITCHV_JOURNAL_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace switchv {

enum class JournalEventKind {
  kCampaignStarted,
  kCampaignFinished,
  kHostLaunched,      // fleet provisioner forked a worker host
  kHostHello,         // the host passed the bring-up hello gate
  kHostRetired,       // pool dropped the host (consecutive failures)
  kHostProbation,     // cooled-down retired host got its probe shard
  kHostReadmitted,    // the probe succeeded; host is live again
  kHostReprovisioned, // fleet replaced a retired host with a fresh one
  kShardDispatched,   // a shard attempt started (any substrate)
  kShardRetried,      // a failed attempt is being retried
  kShardCompleted,    // the shard's result was absorbed into the report
  kShardLost,         // every attempt failed; synthetic harness incident
  kIncidentFirstSeen, // a fingerprint's first occurrence this campaign
  kSeedsExchanged,    // guided shard's harvested seeds folded at merge
};

// Stable wire name ("host-retired", "shard-dispatched", ...).
std::string_view JournalEventKindName(JournalEventKind kind);

struct JournalEvent {
  std::uint64_t seq = 0;    // 1-based append order
  std::uint64_t ts_ns = 0;  // coordinator clock, monotone across events
  JournalEventKind kind = JournalEventKind::kCampaignStarted;
  std::uint64_t campaign_id = 0;
  int shard = -1;      // -1 = not shard-scoped
  std::string host;    // endpoint, when host-scoped
  std::string detail;  // free-form context (error note, fingerprint, ...)

  std::string ToJson() const;
};

class EventJournal {
 public:
  EventJournal() : epoch_(std::chrono::steady_clock::now()) {}

  EventJournal(const EventJournal&) = delete;
  EventJournal& operator=(const EventJournal&) = delete;

  // Appends one event, stamping seq and a monotone timestamp. Returns the
  // assigned seq.
  std::uint64_t Append(JournalEventKind kind, std::uint64_t campaign_id = 0,
                       int shard = -1, std::string host = "",
                       std::string detail = "");

  std::size_t size() const;
  std::uint64_t CountKind(JournalEventKind kind) const;

  // Events with seq > since, in order.
  std::vector<JournalEvent> EventsSince(std::uint64_t since) const;

  // One JSON object per line. ToJsonl() = ToJsonlSince(0).
  std::string ToJsonl() const;
  std::string ToJsonlSince(std::uint64_t since) const;

 private:
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::uint64_t last_ts_ns_ = 0;
  std::vector<JournalEvent> events_;
};

// Null-safe append: telemetry is optional everywhere, so call sites guard
// with this instead of sprinkling `if (journal != nullptr)`.
inline void JournalAppend(EventJournal* journal, JournalEventKind kind,
                          std::uint64_t campaign_id = 0, int shard = -1,
                          std::string host = "", std::string detail = "") {
  if (journal != nullptr) {
    journal->Append(kind, campaign_id, shard, std::move(host),
                    std::move(detail));
  }
}

}  // namespace switchv

#endif  // SWITCHV_SWITCHV_JOURNAL_H_
