// Minimal embedded HTTP server for the telemetry plane.
//
// Serves GET-only plaintext endpoints from a dedicated accept thread over
// blocking POSIX sockets — just enough HTTP/1.0 for `curl` and a Prometheus
// scraper, with no external dependencies:
//
//   /metrics          Prometheus text exposition 0.0.4
//   /status           JSON campaign status (shard progress, ETA, hosts)
//   /events?since=N   event-journal JSONL with seq > N
//
// Deliberately boring: requests are handled serially (a scrape endpoint
// has one or two clients), request heads are capped at 16 KiB, every
// response closes the connection. Nothing here can touch campaign
// correctness — handlers only read from CampaignTelemetry.
#ifndef SWITCHV_SWITCHV_TELEMETRY_HTTP_H_
#define SWITCHV_SWITCHV_TELEMETRY_HTTP_H_

#include <atomic>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <thread>

#include "util/status.h"

namespace switchv {

class CampaignTelemetry;

class TelemetryHttpServer {
 public:
  // Handler: (query string after '?', possibly empty; out content type)
  // -> response body. Registered per exact path.
  using Handler =
      std::function<std::string(std::string_view query, std::string* type)>;

  TelemetryHttpServer() = default;
  ~TelemetryHttpServer() { Stop(); }

  TelemetryHttpServer(const TelemetryHttpServer&) = delete;
  TelemetryHttpServer& operator=(const TelemetryHttpServer&) = delete;

  // Register before Start (not thread-safe against a running server).
  void Handle(std::string path, Handler handler);

  // Registers the standard /metrics, /status, /events endpoints backed by
  // `telemetry` (which must outlive the server).
  void ServeCampaignTelemetry(CampaignTelemetry* telemetry);

  // Binds 127.0.0.1:`port` (0 = ephemeral) and starts the accept thread.
  Status Start(int port);
  int port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

  // Idempotent; joins the accept thread.
  void Stop();

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  std::map<std::string, Handler> handlers_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
};

}  // namespace switchv

#endif  // SWITCHV_SWITCHV_TELEMETRY_HTTP_H_
