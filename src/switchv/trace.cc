#include "switchv/trace.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>

namespace switchv {

namespace {

// Chrome trace_event timestamps are microseconds; emit three decimals so
// sub-microsecond spans stay visible.
std::string NsToUsField(std::uint64_t ns) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return buffer;
}

// Shard index -> trace tid. The campaign-level track (-1) is tid 0; shard
// k is tid k+1, so timeline rows line up with shard indices.
int ShardTid(int shard) { return shard + 1; }

}  // namespace

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::vector<TraceSpan> Tracer::Spans() const {
  std::vector<TraceSpan> spans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    spans = spans_;
  }
  std::sort(spans.begin(), spans.end(),
            [](const TraceSpan& a, const TraceSpan& b) {
              if (a.shard != b.shard) return a.shard < b.shard;
              return a.seq < b.seq;
            });
  return spans;
}

std::vector<TraceSpan> Tracer::SpansSince(std::size_t* cursor) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (*cursor >= spans_.size()) return {};
  std::vector<TraceSpan> fresh(spans_.begin() +
                                   static_cast<std::ptrdiff_t>(*cursor),
                               spans_.end());
  *cursor = spans_.size();
  return fresh;
}

std::string Tracer::ToChromeJson() const {
  const std::vector<TraceSpan> spans = Spans();
  // One Chrome "process" per fleet host: the coordinator (host "") is pid
  // 0, remote hosts get pids 1..N in sorted-endpoint order — so a stitched
  // fleet trace shows every host as its own labelled track group.
  std::map<std::string, int> host_pid;
  for (const TraceSpan& span : spans) host_pid.emplace(span.host, 0);
  int next_pid = 0;
  for (auto& [host, pid] : host_pid) {
    pid = host.empty() ? 0 : ++next_pid;
  }
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  // Process- and thread-name metadata first so Perfetto labels the rows.
  // Deterministic: hosts in sorted order, then spans (already sorted).
  for (const auto& [host, pid] : host_pid) {
    if (!first) out << ",";
    first = false;
    const std::string label =
        host.empty() ? "coordinator" : "host " + host;
    out << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << pid
        << ",\"tid\":0,\"args\":{\"name\":\"" << JsonEscape(label) << "\"}}";
  }
  std::set<std::pair<int, int>> named;  // (pid, tid)
  for (const TraceSpan& span : spans) {
    const int pid = host_pid[span.host];
    if (!named.insert({pid, ShardTid(span.shard)}).second) continue;
    if (!first) out << ",";
    first = false;
    const std::string label =
        span.shard < 0 ? "campaign" : "shard " + std::to_string(span.shard);
    out << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << pid
        << ",\"tid\":" << ShardTid(span.shard) << ",\"args\":{\"name\":\""
        << label << "\"}}";
  }
  for (const TraceSpan& span : spans) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << JsonEscape(span.name) << "\",\"cat\":\""
        << JsonEscape(span.category) << "\",\"ph\":\"X\",\"ts\":"
        << NsToUsField(span.start_ns) << ",\"dur\":"
        << NsToUsField(span.duration_ns) << ",\"pid\":" << host_pid[span.host]
        << ",\"tid\":" << ShardTid(span.shard) << ",\"args\":{\"seq\":\""
        << span.seq << "\"";
    for (const auto& [key, value] : span.args) {
      out << ",\"" << JsonEscape(key) << "\":\"" << JsonEscape(value)
          << "\"";
    }
    out << "}}";
  }
  out << "]}";
  return out.str();
}

}  // namespace switchv
