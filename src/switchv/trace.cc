#include "switchv/trace.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <sstream>

namespace switchv {

namespace {

// Chrome trace_event timestamps are microseconds; emit three decimals so
// sub-microsecond spans stay visible.
std::string NsToUsField(std::uint64_t ns) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return buffer;
}

// Shard index -> trace tid. The campaign-level track (-1) is tid 0; shard
// k is tid k+1, so timeline rows line up with shard indices.
int ShardTid(int shard) { return shard + 1; }

}  // namespace

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::vector<TraceSpan> Tracer::Spans() const {
  std::vector<TraceSpan> spans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    spans = spans_;
  }
  std::sort(spans.begin(), spans.end(),
            [](const TraceSpan& a, const TraceSpan& b) {
              if (a.shard != b.shard) return a.shard < b.shard;
              return a.seq < b.seq;
            });
  return spans;
}

std::string Tracer::ToChromeJson() const {
  const std::vector<TraceSpan> spans = Spans();
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  // Thread-name metadata first, one per distinct track, so Perfetto labels
  // the rows. Deterministic: spans are sorted, shards emitted in order.
  std::set<int> named;
  for (const TraceSpan& span : spans) {
    if (!named.insert(span.shard).second) continue;
    if (!first) out << ",";
    first = false;
    const std::string label =
        span.shard < 0 ? "campaign" : "shard " + std::to_string(span.shard);
    out << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":"
        << ShardTid(span.shard) << ",\"args\":{\"name\":\"" << label
        << "\"}}";
  }
  for (const TraceSpan& span : spans) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << JsonEscape(span.name) << "\",\"cat\":\""
        << JsonEscape(span.category) << "\",\"ph\":\"X\",\"ts\":"
        << NsToUsField(span.start_ns) << ",\"dur\":"
        << NsToUsField(span.duration_ns) << ",\"pid\":0,\"tid\":"
        << ShardTid(span.shard) << ",\"args\":{\"seq\":\"" << span.seq
        << "\"";
    for (const auto& [key, value] : span.args) {
      out << ",\"" << JsonEscape(key) << "\":\"" << JsonEscape(value)
          << "\"";
    }
    out << "}}";
  }
  out << "]}";
  return out.str();
}

}  // namespace switchv
