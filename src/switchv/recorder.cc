#include "switchv/recorder.h"

#include <sstream>

namespace switchv {

std::string_view FlightEventKindName(FlightEvent::Kind kind) {
  switch (kind) {
    case FlightEvent::Kind::kConfigPush:
      return "config-push";
    case FlightEvent::Kind::kWrite:
      return "write";
    case FlightEvent::Kind::kRead:
      return "read";
    case FlightEvent::Kind::kPacket:
      return "packet";
    case FlightEvent::Kind::kPacketOut:
      return "packet-out";
  }
  return "?";
}

void FlightRecorder::Record(FlightEvent event) {
  event.seq = ++next_seq_;
  if (static_cast<int>(ring_.size()) < capacity_) {
    ring_.push_back(std::move(event));
    write_pos_ = ring_.size() % static_cast<std::size_t>(capacity_);
    return;
  }
  ring_[write_pos_] = std::move(event);
  write_pos_ = (write_pos_ + 1) % ring_.size();
}

void FlightRecorder::RecordOperation(FlightEvent::Kind kind,
                                     const sut::StackProbe& probe,
                                     int rejected, std::string note) {
  FlightEvent event;
  event.kind = kind;
  event.units = probe.units();
  event.rejected = rejected;
  event.deepest = probe.op_deepest();
  event.failed_deepest = probe.op_failed_deepest();
  event.note = std::move(note);
  Record(std::move(event));
}

std::vector<FlightEvent> FlightRecorder::Snapshot() const {
  std::vector<FlightEvent> events;
  events.reserve(ring_.size());
  if (static_cast<int>(ring_.size()) < capacity_) {
    events = ring_;
    return events;
  }
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    events.push_back(ring_[(write_pos_ + i) % ring_.size()]);
  }
  return events;
}

std::string FlightRecorder::Render() const {
  const std::vector<FlightEvent> events = Snapshot();
  std::ostringstream out;
  out << "flight recorder (last " << events.size() << " of " << next_seq_
      << " operations):";
  if (events.empty()) {
    out << " (no switch operations recorded)";
    return out.str();
  }
  for (const FlightEvent& event : events) {
    out << "\n  #" << event.seq << " " << FlightEventKindName(event.kind);
    const bool batched = event.kind == FlightEvent::Kind::kWrite ||
                         event.kind == FlightEvent::Kind::kConfigPush;
    if (batched && event.units > 0) {
      out << " " << event.units
          << (event.units == 1 ? " update" : " updates");
    }
    if (event.rejected > 0) {
      out << " (" << event.rejected << " rejected)";
    }
    out << " reached=" << SutLayerName(event.deepest);
    if (event.failed_deepest != sut::SutLayer::kNone) {
      out << " failed@=" << SutLayerName(event.failed_deepest);
    }
    if (!event.note.empty()) {
      out << "  " << event.note;
    }
  }
  return out.str();
}

}  // namespace switchv
