// Shared machinery for regenerating the paper's evaluation (§6): running
// SwitchV against each catalog bug and recording whether, and by which
// component, it was detected. Used by the integration tests and by the
// bench binaries that print Tables 1-2 and Figure 7.
#ifndef SWITCHV_SWITCHV_EXPERIMENT_H_
#define SWITCHV_SWITCHV_EXPERIMENT_H_

#include <ostream>

#include "models/entry_gen.h"
#include "sut/bug_catalog.h"
#include "switchv/nightly.h"
#include "switchv/trivial_suite.h"

namespace switchv {

struct ExperimentOptions {
  // Forwarding-state scale. The full Inst1/Inst2 workloads take minutes of
  // Z3 time per run (paper Table 3); the bug-detection experiments use a
  // scaled-down state with the same shape.
  models::WorkloadSpec workload = SmallWorkload();
  NightlyOptions nightly;
  std::uint64_t seed = 1;

  static models::WorkloadSpec SmallWorkload();
};

// The role model validated for a stack: PINS switches are middleblocks,
// Cerberus is the WAN/encap stack (paper §6: "the P4 programs used in
// Cerberus were more complex, with ... encapsulation and decapsulation").
models::Role RoleForStack(sut::Stack stack);

// Model knobs for a bug run: "Input P4 Program" bugs flip the knob that
// plants the defect in the model itself; every other bug leaves the model
// as the intended specification. Exposed separately from ModelForBug so a
// ShardScenario (switchv/shard_io.h) can carry the same recipe to worker
// processes.
models::ModelOptions ModelOptionsForBug(const sut::BugInfo& bug);

// Builds the input P4 model for a bug run. For "Input P4 Program" bugs the
// model itself carries the defect (the switch is correct); for all other
// bugs the model is the intended specification.
StatusOr<p4ir::Program> ModelForBug(const sut::BugInfo& bug);

// The workload a bug run validates against: the experiment workload, plus
// the encap/decap state the Cerberus stack requires.
models::WorkloadSpec WorkloadForBug(const sut::BugInfo& bug,
                                    const ExperimentOptions& options);

struct BugRunResult {
  const sut::BugInfo* bug = nullptr;
  bool detected = false;
  std::optional<Detector> detector;  // component that raised the first incident
  int incident_count = 0;
  std::string first_incident;
  NightlyReport report;
};

// Activates the bug's fault, runs a nightly validation, and reports.
StatusOr<BugRunResult> RunNightlyForBug(const sut::BugInfo& bug,
                                        const ExperimentOptions& options);

// Runs the §6.2 trivial suite against the bug and returns the first failing
// test (kNone if the suite passes — the bug is invisible to trivial tests).
StatusOr<sut::TrivialTest> RunTrivialSuiteForBug(const sut::BugInfo& bug);

// Runs SwitchV against every catalog bug (the Table 1 / Figure 7 sweep).
// Uses one shared p4-symbolic packet cache internally: bugs that share a
// model and forwarding state skip regeneration, as in real nightly use
// (§6.3 "Caching"). `progress`, if non-null, receives one line per bug.
StatusOr<std::vector<BugRunResult>> RunFullSweep(
    const ExperimentOptions& options, std::ostream* progress = nullptr);

}  // namespace switchv

#endif  // SWITCHV_SWITCHV_EXPERIMENT_H_
