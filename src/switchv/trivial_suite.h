// The "trivial test suite" of paper §6.2: six hand-crafted integration
// tests run in sequence, used to measure how many SwitchV-found bugs a
// traditional minimal test suite would have caught (Table 2).
//
// Tests 4 and 6 judge the switch against the P4 model (via the reference
// interpreter) rather than hard-coded expectations, so bugs in the *model*
// also surface when they affect the trivial packets — as in the paper's
// Appendix A attribution of the wrong-ICMP-field model bug to "Packet-in".
#ifndef SWITCHV_SWITCHV_TRIVIAL_SUITE_H_
#define SWITCHV_SWITCHV_TRIVIAL_SUITE_H_

#include <array>
#include <optional>
#include <string>

#include "sut/bug_catalog.h"
#include "sut/switch_stack.h"
#include "p4ir/program.h"
#include "packet/packet.h"

namespace switchv {

struct TrivialSuiteReport {
  // Pass/fail per test, in the §6.2 sequence: Set P4Info, Table entry
  // programming, Read all tables, Packet-in, Packet-out, Packet forwarding.
  std::array<bool, 6> passed = {false, false, false, false, false, false};
  std::array<std::string, 6> failure_details;

  bool all_passed() const {
    for (bool p : passed) {
      if (!p) return false;
    }
    return true;
  }

  // The first failing test, or nullopt if all passed. Later tests are not
  // meaningful after an earlier failure (the suite is sequential).
  std::optional<sut::TrivialTest> FirstFailing() const;
};

// Runs the suite against a fresh, unconfigured switch. `model` is the role
// model used for the switch's P4Info and the reference expectations.
TrivialSuiteReport RunTrivialSuite(sut::SwitchUnderTest& sut,
                                   const p4ir::Program& model,
                                   const packet::ParserSpec& parser);

}  // namespace switchv

#endif  // SWITCHV_SWITCHV_TRIVIAL_SUITE_H_
