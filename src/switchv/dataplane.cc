#include "switchv/dataplane.h"

#include <memory>
#include <optional>
#include <set>

#include "bmv2/batch_interpreter.h"
#include "fuzzer/coverage.h"
#include "fuzzer/state.h"
#include "models/sai_model.h"  // only for default clone sessions in reference
#include "util/strings.h"

namespace switchv {

namespace {

// Emulated reference-simulator defect: rejects entries with optional
// matches (kBmv2RejectsValidOptional).
Status InstallIntoReference(bmv2::Interpreter& reference,
                            const std::vector<p4rt::TableEntry>& entries,
                            const sut::FaultRegistry* simulator_faults) {
  if (simulator_faults != nullptr &&
      simulator_faults->active(sut::Fault::kBmv2RejectsValidOptional)) {
    const p4ir::P4Info& info = reference.p4info();
    for (const p4rt::TableEntry& entry : entries) {
      const p4ir::TableInfo* table = info.FindTable(entry.table_id);
      if (table == nullptr) continue;
      for (const p4rt::FieldMatch& m : entry.matches) {
        const p4ir::MatchFieldInfo* field = table->FindMatchField(m.field_id);
        if (field != nullptr &&
            field->kind == p4ir::MatchKind::kOptional) {
          return InvalidArgumentError(
              "simple_switch: unsupported optional match in " + table->name);
        }
      }
    }
  }
  return reference.InstallEntries(entries);
}

// Coverage observation sink: marks one edge per (table, action) the
// reference applies. Attached to both the scalar interpreter and the batch
// front end, which buffers and flushes per lane so attribution matches the
// scalar event stream exactly.
struct CoverageMapSink final : bmv2::CoverageSink {
  fuzzer::CoverageMap map;
  void OnTableApply(std::string_view table, std::string_view action) override {
    map.Mark(fuzzer::CoverageEdgeIdNamed(table, action));
  }
};

// The validation body, with an optional coverage sink threaded to the
// reference interpreters. Split from the public wrapper so the observed
// edge counts fold into the result on every return path (the body returns
// early on install/generation failures and on the incident cap).
DataplaneResult RunDataplaneImpl(
    sut::SwitchUnderTest& sut, const p4ir::Program& model,
    const packet::ParserSpec& parser,
    const std::vector<p4rt::TableEntry>& entries,
    const DataplaneOptions& options, bmv2::CoverageSink* coverage_sink) {
  DataplaneResult result;
  Metrics* metrics = options.metrics;
  TraceTrack* trace = options.trace;
  FlightRecorder* recorder = options.recorder;
  const p4ir::P4Info info = p4ir::P4Info::FromProgram(model);
  // Layer attribution of the most recent switch operation: where a failed
  // unit stopped if any failed, else the deepest layer reached.
  auto sut_layer = [&sut] {
    return sut.probe().op_failed_deepest() != sut::SutLayer::kNone
               ? sut.probe().op_failed_deepest()
               : sut.probe().op_deepest();
  };
  // `layer` overrides the probe-derived attribution — pass kNone for
  // defects outside the SUT (reference simulator, packet generator).
  auto report = [&](std::string summary, std::string details,
                    std::uint32_t table_id = 0,
                    std::optional<sut::SutLayer> layer = std::nullopt) {
    if (static_cast<int>(result.incidents.size()) < options.max_incidents) {
      Incident incident{Detector::kSymbolic, std::move(summary),
                        std::move(details), table_id};
      incident.layer = layer.has_value() ? *layer : sut_layer();
      if (recorder != nullptr) incident.replay_trace = recorder->Render();
      result.incidents.push_back(std::move(incident));
    }
  };

  // Phase 1: install the forwarding state into the switch; every entry in
  // a production replay is valid and must be accepted. (Skipped when the
  // state is already on the switch, e.g. validating the state a fuzzing
  // campaign left behind.)
  std::vector<p4rt::TableEntry> accepted;
  if (options.entries_preinstalled) {
    accepted = entries;
  } else {
    ScopedSpan span(trace, "install", "dataplane");
    p4rt::WriteRequest request;
    for (const p4rt::TableEntry& entry : entries) {
      request.updates.push_back(
          p4rt::Update{p4rt::UpdateType::kInsert, entry});
    }
    p4rt::WriteResponse response;
    {
      ScopedTimer timer(metrics ? &metrics->switch_write_ns : nullptr,
                        metrics ? &metrics->switch_write_hist : nullptr);
      response = sut.Write(request);
    }
    span.AddArg("layers", sut.probe().OpLayersSummary());
    int rejected = 0;
    for (const Status& status : response.statuses) {
      if (!status.ok()) ++rejected;
    }
    if (recorder != nullptr) {
      recorder->RecordOperation(FlightEvent::Kind::kWrite, sut.probe(),
                                rejected, "state install");
    }
    for (std::size_t i = 0; i < response.statuses.size(); ++i) {
      if (response.statuses[i].ok()) {
        accepted.push_back(entries[i]);
      } else {
        report("switch rejected a table entry of the replayed forwarding "
               "state: " + response.statuses[i].ToString(),
               entries[i].ToString(&info), entries[i].table_id);
      }
    }
  }

  // Phase 1.5: state resync. Controllers periodically re-send their
  // intended state as MODIFY updates; an idempotent resync must leave the
  // switch unchanged. This exercises the update path (the paper found
  // several WCMP group-update bugs there, Appendix A).
  {
    ScopedSpan span(trace, "resync", "dataplane");
    p4rt::WriteRequest resync;
    for (const p4rt::TableEntry& entry : accepted) {
      const p4ir::TableInfo* table = info.FindTable(entry.table_id);
      if (table == nullptr || !table->selector.has_value()) continue;
      resync.updates.push_back(
          p4rt::Update{p4rt::UpdateType::kModify, entry});
    }
    p4rt::WriteResponse response;
    {
      ScopedTimer timer(metrics ? &metrics->switch_write_ns : nullptr,
                        metrics ? &metrics->switch_write_hist : nullptr);
      response = sut.Write(resync);
    }
    if (recorder != nullptr) {
      recorder->RecordOperation(FlightEvent::Kind::kWrite, sut.probe(),
                                sut.probe().failed_units(),
                                "idempotent resync");
    }
    for (std::size_t i = 0; i < response.statuses.size(); ++i) {
      if (!response.statuses[i].ok()) {
        report("idempotent MODIFY resync rejected: " +
                   response.statuses[i].ToString(),
               resync.updates[i].entry.ToString(&info),
               resync.updates[i].entry.table_id);
      }
    }
  }

  // Phase 1.6: delete/re-insert churn over unreferenced entries (routes,
  // ACL entries, and WCMP groups no route points at). Controllers do this
  // constantly; stale-state bugs in the delete path surface as failed
  // re-insertions or as forwarding divergence.
  {
    ScopedSpan span(trace, "churn", "dataplane");
    fuzzer::SwitchStateView state_view(info);
    state_view.Reset(accepted);
    // Deletes and re-inserts go in separate batches: updates within one
    // batch may be applied in any order (paper §4, Example 2).
    p4rt::WriteRequest deletes;
    p4rt::WriteRequest inserts;
    int picked = 0;
    for (const p4rt::TableEntry& entry : accepted) {
      const p4ir::TableInfo* table = info.FindTable(entry.table_id);
      if (table == nullptr ||
          (table->name != "ipv4_tbl" && table->name != "ipv6_tbl" &&
           table->name != "acl_ingress_tbl" &&
           table->name != "wcmp_group_tbl")) {
        continue;
      }
      if (state_view.IsReferenced(entry)) continue;
      if (++picked % 7 != 0 && table->name != "wcmp_group_tbl") continue;
      deletes.updates.push_back(
          p4rt::Update{p4rt::UpdateType::kDelete, entry});
      inserts.updates.push_back(
          p4rt::Update{p4rt::UpdateType::kInsert, entry});
    }
    for (const p4rt::WriteRequest* batch : {&deletes, &inserts}) {
      p4rt::WriteResponse response;
      {
        ScopedTimer timer(metrics ? &metrics->switch_write_ns : nullptr,
                          metrics ? &metrics->switch_write_hist : nullptr);
        response = sut.Write(*batch);
      }
      if (recorder != nullptr) {
        recorder->RecordOperation(
            FlightEvent::Kind::kWrite, sut.probe(),
            sut.probe().failed_units(),
            batch == &deletes ? "churn deletes" : "churn re-inserts");
      }
      for (std::size_t i = 0; i < response.statuses.size(); ++i) {
        if (!response.statuses[i].ok()) {
          report("delete/re-insert churn failed: " +
                     response.statuses[i].ToString(),
                 batch->updates[i].entry.ToString(&info),
                 batch->updates[i].entry.table_id);
        }
      }
    }
  }

  // Phase 2: read-back check (the trivial suite's "read all tables" is a
  // weaker form of this).
  {
    ScopedSpan span(trace, "read-back", "dataplane");
    auto read = sut.Read(p4rt::ReadRequest{});
    if (recorder != nullptr) {
      recorder->RecordOperation(FlightEvent::Kind::kRead, sut.probe(),
                                read.ok() ? 0 : 1, "read-back check");
    }
    if (!read.ok()) {
      report("reading the switch state failed: " + read.status().ToString(),
             "");
    } else {
      std::set<std::string> observed;
      for (const p4rt::TableEntry& entry : read->entries) {
        observed.insert(entry.KeyFingerprint());
      }
      for (const p4rt::TableEntry& entry : accepted) {
        if (!observed.contains(entry.KeyFingerprint())) {
          report("accepted entry missing from read-back state",
                 entry.ToString(&info), entry.table_id);
        }
      }
    }
  }

  // Phase 3: configure the reference simulator. A failure here is a bug in
  // the simulator or toolchain, not the switch (paper Table 1 lists 4 BMv2
  // bugs found this way).
  bmv2::Interpreter reference(model, parser,
                              models::DefaultCloneSessions());
  if (coverage_sink != nullptr) reference.set_coverage_sink(coverage_sink);
  // All reference-simulator work (entry install + behaviour enumeration)
  // is accounted to the reference timer.
  auto enumerate = [&](std::string_view bytes, std::uint16_t port) {
    ScopedTimer timer(metrics ? &metrics->reference_ns : nullptr,
                      metrics ? &metrics->reference_hist : nullptr);
    if (metrics != nullptr) metrics->Add(metrics->reference_packets, 1);
    return reference.EnumerateBehaviors(bytes, port);
  };
  Status install_status;
  {
    ScopedSpan span(trace, "reference-install", "dataplane");
    ScopedTimer timer(metrics ? &metrics->reference_ns : nullptr,
                      metrics ? &metrics->reference_hist : nullptr);
    install_status = InstallIntoReference(reference, accepted,
                                          options.simulator_faults);
  }
  if (!install_status.ok()) {
    report("reference simulator rejected valid entries: " +
               install_status.ToString(),
           "BMv2/simulator defect (entries are valid per the P4 program)",
           0, sut::SutLayer::kNone);
    return result;
  }
  // Bit-parallel 64-lane front end over the reference. Constructed after
  // entry install (it snapshots the installed tables); lane results are
  // byte-identical to scalar enumeration, with automatic per-lane scalar
  // fallback on divergence.
  std::unique_ptr<bmv2::BatchInterpreter> batch;
  if (options.batch_reference) {
    ScopedTimer timer(metrics ? &metrics->reference_ns : nullptr,
                      metrics ? &metrics->reference_hist : nullptr);
    batch = std::make_unique<bmv2::BatchInterpreter>(reference);
    if (coverage_sink != nullptr) batch->set_coverage_sink(coverage_sink);
  }
  // Enumerates reference behaviours for a whole packet list — 64 lanes
  // per pass when the batch interpreter is on, scalar otherwise. The
  // reference is deterministic, so callers may reuse the results across
  // phases.
  auto enumerate_many =
      [&](const std::vector<bmv2::BatchInterpreter::LanePacket>& lanes) {
        std::vector<StatusOr<std::vector<packet::ForwardingOutcome>>> out;
        if (batch != nullptr) {
          const bmv2::BatchInterpreter::Stats before = batch->stats();
          {
            ScopedTimer timer(metrics ? &metrics->reference_ns : nullptr,
                              metrics ? &metrics->reference_hist : nullptr);
            out = batch->EnumerateBehaviorsBatch(lanes);
          }
          if (metrics != nullptr) {
            const bmv2::BatchInterpreter::Stats after = batch->stats();
            metrics->Add(metrics->reference_packets, lanes.size());
            metrics->Add(metrics->batch_lanes_run,
                         after.lanes_run - before.lanes_run);
            metrics->Add(metrics->batch_scalar_fallbacks,
                         after.scalar_fallbacks - before.scalar_fallbacks);
          }
        } else {
          out.reserve(lanes.size());
          for (const bmv2::BatchInterpreter::LanePacket& lane : lanes) {
            out.push_back(enumerate(lane.bytes, lane.ingress_port));
          }
        }
        return out;
      };

  // Phase 4: obtain test packets — either the campaign-precomputed list,
  // or generated here from the model + installed state.
  const std::vector<symbolic::TestPacket>* packets =
      options.precomputed_packets;
  std::vector<symbolic::TestPacket> generated;
  if (packets == nullptr) {
    StatusOr<std::vector<symbolic::TestPacket>> generation_result =
        OkStatus();
    {
      ScopedSpan span(trace, "packet-gen", "dataplane");
      ScopedTimer timer(metrics ? &metrics->generation_ns : nullptr,
                        metrics ? &metrics->generation_hist : nullptr);
      generation_result =
          symbolic::GeneratePackets(model, parser, accepted,
                                    options.coverage, options.cache,
                                    &result.generation);
      span.AddArg("solver_queries", static_cast<std::uint64_t>(
                                        result.generation.solver_queries));
    }
    if (!generation_result.ok()) {
      report("test packet generation failed: " +
                 generation_result.status().ToString(),
             "", 0, sut::SutLayer::kNone);
      return result;
    }
    generated = *std::move(generation_result);
    packets = &generated;
    if (metrics != nullptr) {
      metrics->Add(metrics->solver_queries,
                   static_cast<std::uint64_t>(result.generation.solver_queries));
      if (result.generation.cache_hit) {
        metrics->Add(metrics->generation_cache_hits, 1);
      }
    }
  }
  // This shard's packet subset (round-robin partition across dataplane
  // shards; the identity partition when packet_shards == 1).
  auto in_shard = [&](std::size_t index) {
    return static_cast<int>(index %
                            static_cast<std::size_t>(options.packet_shards)) ==
           options.packet_shard;
  };

  // Phase 4.5: enumerate reference behaviours for this shard's packet
  // subset once (64 packets per pass when the batch lane is on). Phases 5
  // and 6 both need the behaviour sets; enumerate-once-reuse-twice is
  // exact because the reference is a pure function of bytes/port/seed.
  std::vector<std::size_t> shard_indices;
  for (std::size_t index = 0; index < packets->size(); ++index) {
    if (in_shard(index)) shard_indices.push_back(index);
  }
  std::vector<bmv2::BatchInterpreter::LanePacket> shard_lanes;
  shard_lanes.reserve(shard_indices.size());
  for (std::size_t index : shard_indices) {
    shard_lanes.push_back(
        {(*packets)[index].bytes, (*packets)[index].ingress_port});
  }
  std::vector<StatusOr<std::vector<packet::ForwardingOutcome>>>
      shard_behaviors;
  {
    ScopedSpan span(trace, "reference-enumerate", "dataplane");
    shard_behaviors = enumerate_many(shard_lanes);
    span.AddArg("packets", static_cast<std::uint64_t>(shard_lanes.size()));
  }

  // Phase 5: differential packet testing.
  sut.DrainPacketIns();  // discard anything stale
  // Let the OS daemons get several scheduling quanta during the run; any
  // traffic they originate lands on the packet-in channel as noise.
  for (int tick = 0; tick < 6; ++tick) sut.Tick();
  {
    ScopedSpan span(trace, "packet-test", "dataplane");
    int tested_here = 0;
    for (std::size_t si = 0; si < shard_indices.size(); ++si) {
      const symbolic::TestPacket& packet = (*packets)[shard_indices[si]];
      const packet::ForwardingOutcome observed =
          sut.InjectPacket(packet.bytes, packet.ingress_port);
      if (recorder != nullptr) {
        recorder->RecordOperation(FlightEvent::Kind::kPacket, sut.probe(), 0,
                                  "target " + packet.target_id);
      }
      ++result.packets_tested;
      ++tested_here;
      if (metrics != nullptr) metrics->Add(metrics->packets_tested, 1);
      const auto& behaviors = shard_behaviors[si];
      if (!behaviors.ok()) {
        report("reference simulator failed on a test packet: " +
                   behaviors.status().ToString(),
               packet.target_id, 0, sut::SutLayer::kNone);
        continue;
      }
      bool admissible = false;
      for (const packet::ForwardingOutcome& expected : *behaviors) {
        if (expected == observed) admissible = true;
      }
      if (!admissible) {
        std::string details = "target " + packet.target_id + "; observed " +
                              observed.Canonical() + "; expected one of {";
        for (std::size_t i = 0; i < behaviors->size() && i < 3; ++i) {
          if (i > 0) details += ", ";
          details += (*behaviors)[i].Canonical();
        }
        details += "}";
        report("switch behaviour diverges from the P4 model", details);
      }
      if (static_cast<int>(result.incidents.size()) >=
          options.max_incidents) {
        span.AddArg("packets", static_cast<std::uint64_t>(tested_here));
        return result;
      }
    }
    span.AddArg("packets", static_cast<std::uint64_t>(tested_here));
  }

  // Phase 6: packet-in channel reconciliation. Punts delivered during
  // phase 5 are accounted for by the punt flag; anything else on the
  // channel is an unexpected packet toward the controller.
  {
    ScopedSpan span(trace, "packet-in-reconcile", "dataplane");
    int expected_punts = 0;
    // Expected punt count comes from the behaviour sets enumerated in
    // phase 4.5 — the reference is deterministic, so re-enumerating here
    // would produce the identical verdicts at twice the cost.
    const std::vector<p4rt::PacketIn> packet_ins = sut.DrainPacketIns();
    for (const auto& behaviors : shard_behaviors) {
      if (behaviors.ok() && !behaviors->empty() && (*behaviors)[0].punted) {
        ++expected_punts;
      }
    }
    if (static_cast<int>(packet_ins.size()) > expected_punts + 2) {
      std::string sample;
      if (!packet_ins.empty()) {
        sample = "first unexpected payload: 0x" +
                 BytesToHex(packet_ins.back().payload.substr(0, 20));
      }
      report("unexpected packets punted to the controller (" +
                 std::to_string(packet_ins.size() - expected_punts) +
                 " beyond the expected punts)",
             sample);
    }
  }

  // Phase 5.5: load-balancing sanity. Hashing is a free operation in the
  // model, so any single packet's member choice is admissible — but a WCMP
  // group that never spreads traffic across members is degenerate. Take
  // one packet that traverses a WCMP group, derive many distinct flows
  // from it (vary hash inputs only), and check the switch uses more than
  // one member when the model says more than one outcome is possible.
  {
    ScopedSpan wcmp_span(trace, "wcmp-probe", "dataplane");
    for (std::size_t index = 0; index < packets->size(); ++index) {
      if (!in_shard(index)) continue;
      const symbolic::TestPacket& packet = (*packets)[index];
      if (!packet.target_id.starts_with("wcmp_group_tbl.entry[")) continue;
      packet::ParsedPacket base =
          packet::Parse(model, parser, packet.bytes);
      const bool is_v4 = base.valid_headers.contains("ipv4");
      if (!is_v4 && !base.valid_headers.contains("ipv6")) continue;
      std::set<std::uint16_t> model_ports;
      std::set<std::string> switch_outcomes;
      int flows = 0;
      // The variant bytes depend only on the base packet, so derive all 24
      // up front and enumerate them as one batch (hash-driven member
      // spread keeps the lanes vectorized together).
      std::vector<std::string> variant_bytes;
      variant_bytes.reserve(24);
      for (int variant = 0; variant < 24; ++variant) {
        packet::ParsedPacket mutated = base;
        // Vary hash inputs only: source address low bits and L4 source.
        if (is_v4) {
          mutated.fields["ipv4.src_addr"] = BitString::FromUint(
              base.fields.at("ipv4.src_addr").ToUint64() ^
                  static_cast<std::uint64_t>(variant),
              32);
        } else {
          mutated.fields["ipv6.src_addr"] = BitString::FromUint(
              base.fields.at("ipv6.src_addr").value() ^
                  static_cast<uint128>(variant),
              128);
        }
        if (mutated.valid_headers.contains("tcp")) {
          mutated.fields["tcp.src_port"] =
              BitString::FromUint(20000 + variant * 7, 16);
        } else if (mutated.valid_headers.contains("udp")) {
          mutated.fields["udp.src_port"] =
              BitString::FromUint(20000 + variant * 7, 16);
        }
        variant_bytes.push_back(packet::Deparse(model, mutated));
      }
      std::vector<bmv2::BatchInterpreter::LanePacket> variant_lanes;
      variant_lanes.reserve(variant_bytes.size());
      for (const std::string& bytes : variant_bytes) {
        variant_lanes.push_back({bytes, packet.ingress_port});
      }
      const auto variant_behaviors = enumerate_many(variant_lanes);
      for (std::size_t variant = 0; variant < variant_bytes.size();
           ++variant) {
        const std::string& bytes = variant_bytes[variant];
        const auto& behaviors = variant_behaviors[variant];
        if (!behaviors.ok()) continue;
        bool forwarded_somewhere = false;
        for (const packet::ForwardingOutcome& b : *behaviors) {
          if (!b.dropped) {
            model_ports.insert(b.egress_port);
            forwarded_somewhere = true;
          }
        }
        if (!forwarded_somewhere) continue;
        const packet::ForwardingOutcome observed =
            sut.InjectPacket(bytes, packet.ingress_port);
        // Each variant must itself be admissible; if not, it is an ordinary
        // behavioural divergence, not a load-balancing smell.
        bool admissible = false;
        for (const packet::ForwardingOutcome& b : *behaviors) {
          if (b == observed) admissible = true;
        }
        if (!admissible) {
          report("switch behaviour diverges from the P4 model",
                 "flow variant of " + packet.target_id + "; observed " +
                     observed.Canonical().substr(0, 80));
          flows = 0;
          break;
        }
        // Compare member choice only (the varied source fields make the
        // full egress bytes trivially distinct).
        switch_outcomes.insert(observed.dropped
                                   ? "drop"
                                   : std::to_string(observed.egress_port));
        ++flows;
      }
      if (flows >= 12 && model_ports.size() >= 2 &&
          switch_outcomes.size() == 1) {
        report("WCMP load balancing appears stuck on a single member",
               "target " + packet.target_id + ": " + std::to_string(flows) +
                   " distinct flows all produced one behaviour; the model "
                   "allows " +
                   std::to_string(model_ports.size()) + " egress ports");
      }
      break;  // one group suffices
    }
    sut.DrainPacketIns();  // variants above may have punted; not noise
  }


  // Phase 7: packet-out. Direct packet-outs must egress on the requested
  // port and must not come back as packet-ins; submit-to-ingress must
  // traverse the pipeline like a normal packet.
  const symbolic::TestPacket* probe_packet = nullptr;
  for (std::size_t index = 0; index < packets->size(); ++index) {
    if (in_shard(index)) {
      probe_packet = &(*packets)[index];
      break;
    }
  }
  if (probe_packet != nullptr) {
    ScopedSpan span(trace, "packet-out", "dataplane");
    const symbolic::TestPacket& probe = *probe_packet;
    for (int port = 1; port <= options.packet_out_ports; ++port) {
      sut.DrainEgress();
      sut.DrainPacketIns();
      (void)sut.PacketOut(p4rt::PacketOut{
          probe.bytes, static_cast<std::uint16_t>(port), false});
      if (recorder != nullptr) {
        recorder->RecordOperation(FlightEvent::Kind::kPacketOut, sut.probe(),
                                  0, "direct to port " + std::to_string(port));
      }
      const auto egress = sut.DrainEgress();
      if (egress.size() != 1 ||
          egress[0].first != static_cast<std::uint16_t>(port) ||
          egress[0].second != probe.bytes) {
        report("packet-out did not egress on the requested port",
               "port " + std::to_string(port));
      }
      const auto bounced = sut.DrainPacketIns();
      if (!bounced.empty()) {
        report("packet-out was punted back to the controller",
               "port " + std::to_string(port));
      }
    }
    // Submit-to-ingress: expected behaviour is the pipeline run from the
    // CPU port.
    {
      sut.DrainEgress();
      (void)sut.PacketOut(p4rt::PacketOut{probe.bytes, 0, true});
      if (recorder != nullptr) {
        recorder->RecordOperation(FlightEvent::Kind::kPacketOut, sut.probe(),
                                  0, "submit-to-ingress");
      }
      auto behaviors = enumerate(probe.bytes, model.cpu_port);
      const auto egress = sut.DrainEgress();
      if (behaviors.ok()) {
        bool expect_forward = false;
        for (const packet::ForwardingOutcome& b : *behaviors) {
          if (!b.dropped) expect_forward = true;
        }
        const bool forwarded = !egress.empty();
        if (expect_forward && !forwarded) {
          report("submit-to-ingress packet was dropped by the switch",
                 "the model forwards this packet from the CPU port");
        } else if (forwarded && expect_forward) {
          bool admissible = false;
          for (const packet::ForwardingOutcome& b : *behaviors) {
            if (!b.dropped && b.egress_port == egress[0].first &&
                b.packet_bytes == egress[0].second) {
              admissible = true;
            }
          }
          if (!admissible) {
            report("submit-to-ingress forwarding diverges from the model",
                   "egress port " + std::to_string(egress[0].first));
          }
        }
      }
    }
  }

  return result;
}

}  // namespace

DataplaneResult RunDataplaneValidation(
    sut::SwitchUnderTest& sut, const p4ir::Program& model,
    const packet::ParserSpec& parser,
    const std::vector<p4rt::TableEntry>& entries,
    const DataplaneOptions& options) {
  if (!options.coverage_observe) {
    return RunDataplaneImpl(sut, model, parser, entries, options, nullptr);
  }
  CoverageMapSink sink;
  DataplaneResult result =
      RunDataplaneImpl(sut, model, parser, entries, options, &sink);
  result.coverage_edges = sink.map.PopulatedEdges();
  if (options.metrics != nullptr) {
    options.metrics->Add(options.metrics->coverage_edges_total,
                         result.coverage_edges);
  }
  return result;
}

}  // namespace switchv
