#include "switchv/trivial_suite.h"

#include "bmv2/interpreter.h"
#include "models/sai_model.h"
#include "p4runtime/entry_builder.h"

namespace switchv {

namespace {

BitString U(uint128 v, int w) { return BitString::FromUint(v, w); }

// One entry per table: the minimal viable forwarding setup of §6.2's test
// 2 ("install a rule in every table, including an ACL entry that punts
// packets to the controller and an IPv4 route"), in dependency order.
StatusOr<std::vector<p4rt::TableEntry>> SuiteEntries(
    const p4ir::P4Info& info) {
  using p4rt::EntryBuilder;
  std::vector<p4rt::TableEntry> entries;
  auto add = [&](StatusOr<p4rt::TableEntry> entry) -> Status {
    if (!entry.ok()) return entry.status();
    entries.push_back(std::move(entry).value());
    return OkStatus();
  };
  SWITCHV_RETURN_IF_ERROR(add(EntryBuilder(info, "vrf_tbl")
                                  .Exact("vrf_id", U(1, models::kVrfWidth))
                                  .Action("no_action")
                                  .Build()));
  SWITCHV_RETURN_IF_ERROR(add(EntryBuilder(info, "l3_admit_tbl")
                                  .Priority(1)
                                  .Action("l3_admit")
                                  .Build()));
  SWITCHV_RETURN_IF_ERROR(
      add(EntryBuilder(info, "acl_pre_ingress_tbl")
              .Priority(1)
              .Action("set_vrf", {{"vrf_id", U(1, models::kVrfWidth)}})
              .Build()));
  SWITCHV_RETURN_IF_ERROR(
      add(EntryBuilder(info, "router_interface_tbl")
              .Exact("router_interface_id", U(1, 16))
              .Action("set_port_and_src_mac",
                      {{"port", U(2, p4ir::kPortWidth)},
                       {"src_mac", U(0x020000000001ull, 48)}})
              .Build()));
  SWITCHV_RETURN_IF_ERROR(
      add(EntryBuilder(info, "neighbor_tbl")
              .Exact("router_interface_id", U(1, 16))
              .Exact("neighbor_id", U(1, 16))
              .Action("set_dst_mac", {{"dst_mac", U(0x0400000000AAull, 48)}})
              .Build()));
  SWITCHV_RETURN_IF_ERROR(
      add(EntryBuilder(info, "nexthop_tbl")
              .Exact("nexthop_id", U(1, 16))
              .Action("set_nexthop", {{"router_interface_id", U(1, 16)},
                                      {"neighbor_id", U(1, 16)}})
              .Build()));
  // Two buckets with the same action: valid per the P4Runtime spec (and
  // the kind of group real controllers install).
  SWITCHV_RETURN_IF_ERROR(
      add(EntryBuilder(info, "wcmp_group_tbl")
              .Exact("wcmp_group_id", U(1, 16))
              .WeightedAction("set_nexthop_id", 1, {{"nexthop_id", U(1, 16)}})
              .WeightedAction("set_nexthop_id", 2, {{"nexthop_id", U(1, 16)}})
              .Build()));
  SWITCHV_RETURN_IF_ERROR(
      add(EntryBuilder(info, "ipv4_tbl")
              .Exact("vrf_id", U(1, models::kVrfWidth))
              .Lpm("ipv4_dst", U(0x0A010000, 32), 16)
              .Action("set_nexthop_id", {{"nexthop_id", U(1, 16)}})
              .Build()));
  SWITCHV_RETURN_IF_ERROR(
      add(EntryBuilder(info, "ipv6_tbl")
              .Exact("vrf_id", U(1, models::kVrfWidth))
              .Lpm("ipv6_dst",
                   U(static_cast<uint128>(0x20010db8u) << 96, 128), 32)
              .Action("set_nexthop_id", {{"nexthop_id", U(1, 16)}})
              .Build()));
  // The punt rule for test 4: trap ICMP echo requests.
  SWITCHV_RETURN_IF_ERROR(
      add(EntryBuilder(info, "acl_ingress_tbl")
              .Ternary("ether_type", U(0x0800, 16), BitString::AllOnes(16))
              .Ternary("ip_protocol", U(1, 8), BitString::AllOnes(8))
              .Ternary("icmp_type", U(8, 8), BitString::AllOnes(8))
              .Priority(10)
              .Action("acl_trap")
              .Build()));
  SWITCHV_RETURN_IF_ERROR(
      add(EntryBuilder(info, "mirror_session_tbl")
              .Exact("mirror_port", U(11, 16))
              .Action("set_clone_session", {{"session_id", U(1, 16)}})
              .Build()));
  SWITCHV_RETURN_IF_ERROR(
      add(EntryBuilder(info, "egress_rif_tbl")
              .Exact("out_port", U(2, p4ir::kPortWidth))
              .Action("set_egress_src_mac",
                      {{"src_mac", U(0x020000000001ull, 48)}})
              .Build()));
  if (info.FindTableByName("decap_tbl") != nullptr) {
    SWITCHV_RETURN_IF_ERROR(add(EntryBuilder(info, "decap_tbl")
                                    .Exact("dst_ip", U(0xC0A80001, 32))
                                    .Action("tunnel_decap")
                                    .Build()));
    SWITCHV_RETURN_IF_ERROR(
        add(EntryBuilder(info, "tunnel_encap_tbl")
                .Exact("tunnel_id", U(1, 16))
                .Action("tunnel_encap", {{"src_ip", U(0xAC100001, 32)},
                                         {"dst_ip", U(0xAC110001, 32)}})
                .Build()));
  }
  return entries;
}

// An ICMP echo request toward a routed destination.
std::string EchoPacket(const p4ir::Program& model) {
  packet::ParsedPacket pkt;
  for (const p4ir::FieldDef& f : model.AllFields()) {
    pkt.fields.emplace(f.name, BitString::FromUint(0, f.width));
  }
  pkt.valid_headers = {"ethernet", "ipv4", "icmp"};
  pkt.fields["ethernet.dst_addr"] = U(0x02AA00000001ull, 48);
  pkt.fields["ethernet.src_addr"] = U(0x060000000001ull, 48);
  pkt.fields["ethernet.ether_type"] = U(0x0800, 16);
  pkt.fields["ipv4.version"] = U(4, 4);
  pkt.fields["ipv4.ihl"] = U(5, 4);
  pkt.fields["ipv4.ttl"] = U(64, 8);
  pkt.fields["ipv4.protocol"] = U(1, 8);
  pkt.fields["ipv4.src_addr"] = U(0xC0A80002, 32);
  pkt.fields["ipv4.dst_addr"] = U(0x0A010203, 32);
  pkt.fields["icmp.type"] = U(8, 8);
  pkt.fields["icmp.code"] = U(0, 8);
  return packet::Deparse(model, pkt);
}

// A routed TCP packet (no ACL hit).
std::string ForwardedPacket(const p4ir::Program& model) {
  packet::ParsedPacket pkt;
  for (const p4ir::FieldDef& f : model.AllFields()) {
    pkt.fields.emplace(f.name, BitString::FromUint(0, f.width));
  }
  pkt.valid_headers = {"ethernet", "ipv4", "tcp"};
  pkt.fields["ethernet.dst_addr"] = U(0x02AA00000001ull, 48);
  pkt.fields["ethernet.src_addr"] = U(0x060000000001ull, 48);
  pkt.fields["ethernet.ether_type"] = U(0x0800, 16);
  pkt.fields["ipv4.version"] = U(4, 4);
  pkt.fields["ipv4.ihl"] = U(5, 4);
  pkt.fields["ipv4.ttl"] = U(64, 8);
  pkt.fields["ipv4.protocol"] = U(6, 8);
  pkt.fields["ipv4.src_addr"] = U(0xC0A80002, 32);
  pkt.fields["ipv4.dst_addr"] = U(0x0A01FFFE, 32);
  pkt.fields["tcp.src_port"] = U(40000, 16);
  pkt.fields["tcp.dst_port"] = U(443, 16);
  pkt.fields["tcp.data_offset"] = U(5, 4);
  return packet::Deparse(model, pkt);
}

}  // namespace

std::optional<sut::TrivialTest> TrivialSuiteReport::FirstFailing() const {
  static constexpr sut::TrivialTest kSequence[6] = {
      sut::TrivialTest::kSetP4Info,
      sut::TrivialTest::kTableEntryProgramming,
      sut::TrivialTest::kReadAllTables,
      sut::TrivialTest::kPacketIn,
      sut::TrivialTest::kPacketOut,
      sut::TrivialTest::kPacketForwarding,
  };
  for (int i = 0; i < 6; ++i) {
    if (!passed[static_cast<std::size_t>(i)]) {
      return kSequence[i];
    }
  }
  return std::nullopt;
}

TrivialSuiteReport RunTrivialSuite(sut::SwitchUnderTest& sut,
                                   const p4ir::Program& model,
                                   const packet::ParserSpec& parser) {
  TrivialSuiteReport report;
  const p4ir::P4Info info = p4ir::P4Info::FromProgram(model);

  // Test 1: Set P4Info.
  {
    const Status status = sut.SetForwardingPipelineConfig(info);
    report.passed[0] = status.ok();
    if (!status.ok()) {
      report.failure_details[0] = status.ToString();
      return report;
    }
  }

  // Provisioning pushes the management config before functional testing.
  (void)sut.ApplyStandardBringUpConfig();

  // Test 2: Table entry programming.
  auto entries = SuiteEntries(info);
  if (!entries.ok()) {
    report.failure_details[1] = entries.status().ToString();
    return report;
  }
  {
    p4rt::WriteRequest request;
    for (const p4rt::TableEntry& entry : *entries) {
      request.updates.push_back(
          p4rt::Update{p4rt::UpdateType::kInsert, entry});
    }
    const p4rt::WriteResponse response = sut.Write(request);
    report.passed[1] = response.all_ok();
    if (!response.all_ok()) {
      for (std::size_t i = 0; i < response.statuses.size(); ++i) {
        if (!response.statuses[i].ok()) {
          report.failure_details[1] =
              (*entries)[i].ToString(&info) + ": " +
              response.statuses[i].ToString();
          break;
        }
      }
      return report;
    }
  }

  // Test 3: Read all tables and compare with what was installed.
  {
    auto read = sut.Read(p4rt::ReadRequest{});
    if (!read.ok()) {
      report.failure_details[2] = read.status().ToString();
      return report;
    }
    bool match = read->entries.size() == entries->size();
    for (const p4rt::TableEntry& want : *entries) {
      bool found = false;
      for (const p4rt::TableEntry& got : read->entries) {
        if (got == want) found = true;
      }
      if (!found) {
        match = false;
        report.failure_details[2] =
            "missing or different: " + want.ToString(&info);
        break;
      }
    }
    report.passed[2] = match;
    if (!match) return report;
  }

  bmv2::Interpreter reference(model, parser, models::DefaultCloneSessions());
  if (!reference.InstallEntries(*entries).ok()) {
    return report;  // cannot judge further tests
  }

  // Test 4: Packet-in. Send the ICMP echo matching the punt rule; judge
  // against the model's verdict.
  {
    const std::string echo = EchoPacket(model);
    sut.DrainPacketIns();
    const packet::ForwardingOutcome observed = sut.InjectPacket(echo, 1);
    auto behaviors = reference.EnumerateBehaviors(echo, 1);
    bool ok = behaviors.ok() && !behaviors->empty();
    if (ok) {
      bool admissible = false;
      for (const packet::ForwardingOutcome& b : *behaviors) {
        if (b == observed) admissible = true;
      }
      ok = admissible;
      // The punt must actually arrive on the packet-in channel with the
      // original payload.
      const auto packet_ins = sut.DrainPacketIns();
      if ((*behaviors)[0].punted) {
        ok = ok && packet_ins.size() == 1 && packet_ins[0].payload == echo;
      }
    }
    report.passed[3] = ok;
    if (!ok) {
      report.failure_details[3] =
          "observed " + observed.Canonical();
      return report;
    }
  }

  // Test 5: Packet-out on each port.
  {
    bool ok = true;
    const std::string payload = ForwardedPacket(model);
    for (std::uint16_t port = 1; port <= 4 && ok; ++port) {
      sut.DrainEgress();
      sut.DrainPacketIns();
      (void)sut.PacketOut(p4rt::PacketOut{payload, port, false});
      const auto egress = sut.DrainEgress();
      ok = egress.size() == 1 && egress[0].first == port &&
           egress[0].second == payload;
      // A packet-out must not come back on the packet-in channel.
      if (!sut.DrainPacketIns().empty()) {
        ok = false;
        report.failure_details[4] =
            "packet-out bounced back as packet-in on port " +
            std::to_string(port);
      } else if (!ok) {
        report.failure_details[4] = "port " + std::to_string(port);
      }
    }
    report.passed[4] = ok;
    if (!ok) return report;
  }

  // Test 6: Packet forwarding per the installed IPv4 route.
  {
    const std::string payload = ForwardedPacket(model);
    const packet::ForwardingOutcome observed = sut.InjectPacket(payload, 1);
    auto behaviors = reference.EnumerateBehaviors(payload, 1);
    bool ok = behaviors.ok();
    if (ok) {
      bool admissible = false;
      for (const packet::ForwardingOutcome& b : *behaviors) {
        if (b == observed) admissible = true;
      }
      ok = admissible && !observed.dropped && observed.egress_port == 2;
    }
    report.passed[5] = ok;
    if (!ok) {
      report.failure_details[5] = "observed " + observed.Canonical();
    }
  }
  return report;
}

}  // namespace switchv
