// Live campaign telemetry plane (coordinator side).
//
// A validation campaign already produces an exact, deterministic report when
// it *finishes*. This module is the "while it runs" view: worker hosts
// stream interval metric deltas and span batches back on their heartbeat
// channel, and the coordinator folds them into
//
//   * a rolling fleet-wide `MetricsSnapshot` (authoritative engine sink +
//     in-flight per-attempt delta accumulators — never double-counted:
//     an attempt's accumulator is discarded the moment its real result is
//     merged, or its attempt fails),
//   * per-host heartbeat round-trip histograms,
//   * first-seen incident class counters (detector × SUT layer), and
//   * the structured event journal (switchv/journal.h).
//
// Everything here is observational: the final campaign report is computed
// from shard results exactly as before and is byte-identical whether a
// CampaignTelemetry is attached or not.
//
// Thread-safe; one instance serves one campaign at a time but outlives it
// (EndCampaign freezes the final snapshot so /metrics keeps answering after
// the run completes).
#ifndef SWITCHV_SWITCHV_TELEMETRY_H_
#define SWITCHV_SWITCHV_TELEMETRY_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "switchv/journal.h"
#include "switchv/metrics.h"

namespace switchv {

class CampaignTelemetry {
 public:
  CampaignTelemetry() = default;
  CampaignTelemetry(const CampaignTelemetry&) = delete;
  CampaignTelemetry& operator=(const CampaignTelemetry&) = delete;

  // The campaign event journal. Host pool / fleet / engine all append here.
  EventJournal& journal() { return journal_; }
  const EventJournal& journal() const { return journal_; }

  // -- campaign lifecycle ---------------------------------------------------

  // `live` is the engine's authoritative metrics sink for the campaign; it
  // must outlive the campaign (it does — RunValidationCampaign owns it).
  void BeginCampaign(std::uint64_t campaign_id, int total_shards,
                     const Metrics* live);

  // Freezes the final snapshot (exactly what the report carries) and drops
  // the live-sink pointer; RollingSnapshot() returns `final` from now on.
  void EndCampaign(const MetricsSnapshot& final_snapshot);

  // -- shard attempts -------------------------------------------------------

  void ShardStarted();
  void ShardFinished();

  // An attempt accumulator holds the streamed deltas for one in-flight
  // (shard, attempt). EndAttempt discards it — the authoritative result (or
  // the retry) replaces it, which is what keeps the rolling view from
  // double-counting. Tokens are never reused.
  std::uint64_t BeginAttempt(int shard, const std::string& host);
  void AccumulateDelta(std::uint64_t token, const MetricsSnapshot& delta);
  void EndAttempt(std::uint64_t token);

  // -- fleet health ---------------------------------------------------------

  // Heartbeat (and hello) round-trip times, per host endpoint. Exported as
  // switchv_heartbeat_rtt_seconds{host="..."} histograms.
  void RecordHeartbeatRtt(const std::string& host, std::uint64_t rtt_ns);

  // First-seen incident classes (detector name × SUT layer name, the
  // human-readable enum names — sanitized/escaped at export time).
  void RecordIncidentClass(const std::string& detector,
                           const std::string& layer);

  // -- views ----------------------------------------------------------------

  // Rolling fleet-wide view: authoritative sink + in-flight deltas while
  // running, the frozen final snapshot after EndCampaign.
  MetricsSnapshot RollingSnapshot() const;

  // Prometheus text exposition 0.0.4: the rolling snapshot's series plus
  // campaign-progress gauges, per-host heartbeat RTT histograms, and
  // incident-class counters.
  std::string ToPrometheus() const;

  // JSON status document for /status: campaign identity, shard progress,
  // ETA, and per-host state derived from the journal.
  std::string StatusJson() const;

  // One terminal line for `validate_pins --watch` (no trailing newline).
  std::string ProgressLine() const;

  int shards_in_flight() const;
  int shards_done() const;

 private:
  struct Attempt {
    int shard = -1;
    std::string host;
    MetricsSnapshot accumulated;
  };

  double ElapsedSecondsLocked() const;
  MetricsSnapshot RollingSnapshotLocked() const;

  EventJournal journal_;

  mutable std::mutex mu_;
  std::uint64_t campaign_id_ = 0;
  int total_shards_ = 0;
  int shards_in_flight_ = 0;
  int shards_done_ = 0;
  bool running_ = false;
  bool finished_ = false;
  const Metrics* live_ = nullptr;
  MetricsSnapshot final_;
  std::chrono::steady_clock::time_point started_;
  std::uint64_t next_token_ = 1;
  std::map<std::uint64_t, Attempt> attempts_;
  std::map<std::string, HistogramSnapshot> heartbeat_rtt_;
  std::map<std::pair<std::string, std::string>, std::uint64_t>
      incident_classes_;
};

}  // namespace switchv

#endif  // SWITCHV_SWITCHV_TELEMETRY_H_
