#include "switchv/telemetry.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "switchv/trace.h"  // JsonEscape

namespace switchv {

namespace {

// Plain-value histogram record (the live LatencyHistogram is atomic; the
// per-host RTT histograms live under the telemetry mutex, so a value-type
// sibling is enough).
void RecordInto(HistogramSnapshot& hist, std::uint64_t ns) {
  for (int i = 0; i < kHistogramBuckets; ++i) {
    if (ns <= HistogramBucketUpperNs(i)) {
      ++hist.counts[static_cast<std::size_t>(i)];
      break;
    }
  }
  ++hist.count;
  hist.sum_ns += ns;
}

std::string SecondsField(double seconds) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", seconds);
  return buffer;
}

}  // namespace

void CampaignTelemetry::BeginCampaign(std::uint64_t campaign_id,
                                      int total_shards, const Metrics* live) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    campaign_id_ = campaign_id;
    total_shards_ = total_shards;
    shards_in_flight_ = 0;
    shards_done_ = 0;
    running_ = true;
    finished_ = false;
    live_ = live;
    started_ = std::chrono::steady_clock::now();
    attempts_.clear();
  }
  journal_.Append(JournalEventKind::kCampaignStarted, campaign_id, -1, "",
                  std::to_string(total_shards) + " shards");
}

void CampaignTelemetry::EndCampaign(const MetricsSnapshot& final_snapshot) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    final_ = final_snapshot;
    finished_ = true;
    running_ = false;
    live_ = nullptr;
    attempts_.clear();
  }
  journal_.Append(JournalEventKind::kCampaignFinished, campaign_id_, -1, "",
                  std::to_string(final_snapshot.incidents_unique) +
                      " unique incidents");
}

void CampaignTelemetry::ShardStarted() {
  std::lock_guard<std::mutex> lock(mu_);
  ++shards_in_flight_;
}

void CampaignTelemetry::ShardFinished() {
  std::lock_guard<std::mutex> lock(mu_);
  shards_in_flight_ = std::max(0, shards_in_flight_ - 1);
  ++shards_done_;
}

std::uint64_t CampaignTelemetry::BeginAttempt(int shard,
                                              const std::string& host) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t token = next_token_++;
  Attempt& attempt = attempts_[token];
  attempt.shard = shard;
  attempt.host = host;
  return token;
}

void CampaignTelemetry::AccumulateDelta(std::uint64_t token,
                                        const MetricsSnapshot& delta) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = attempts_.find(token);
  if (it == attempts_.end()) return;  // attempt already ended; late frame
  it->second.accumulated.Accumulate(delta);
}

void CampaignTelemetry::EndAttempt(std::uint64_t token) {
  std::lock_guard<std::mutex> lock(mu_);
  attempts_.erase(token);
}

void CampaignTelemetry::RecordHeartbeatRtt(const std::string& host,
                                           std::uint64_t rtt_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  RecordInto(heartbeat_rtt_[host], rtt_ns);
}

void CampaignTelemetry::RecordIncidentClass(const std::string& detector,
                                            const std::string& layer) {
  std::lock_guard<std::mutex> lock(mu_);
  ++incident_classes_[{detector, layer}];
}

double CampaignTelemetry::ElapsedSecondsLocked() const {
  if (!running_) return 0;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       started_)
      .count();
}

MetricsSnapshot CampaignTelemetry::RollingSnapshotLocked() const {
  if (finished_) return final_;
  if (live_ == nullptr) return MetricsSnapshot{};
  // Authoritative sink (merged shard results so far) plus the streamed
  // deltas of every still-in-flight attempt. Accumulators die with their
  // attempt, so a shard's work is counted from exactly one source at any
  // moment: its live stream before the result lands, the sink after.
  MetricsSnapshot rolling = live_->Snapshot(ElapsedSecondsLocked());
  for (const auto& [token, attempt] : attempts_) {
    rolling.Accumulate(attempt.accumulated);
  }
  return rolling;
}

MetricsSnapshot CampaignTelemetry::RollingSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return RollingSnapshotLocked();
}

int CampaignTelemetry::shards_in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shards_in_flight_;
}

int CampaignTelemetry::shards_done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shards_done_;
}

std::string CampaignTelemetry::ToPrometheus() const {
  MetricsSnapshot rolling;
  std::uint64_t campaign_id;
  int total_shards, in_flight, done;
  bool running;
  std::map<std::string, HistogramSnapshot> rtt;
  std::map<std::pair<std::string, std::string>, std::uint64_t> classes;
  {
    std::lock_guard<std::mutex> lock(mu_);
    rolling = RollingSnapshotLocked();
    campaign_id = campaign_id_;
    total_shards = total_shards_;
    in_flight = shards_in_flight_;
    done = shards_done_;
    running = running_;
    rtt = heartbeat_rtt_;
    classes = incident_classes_;
  }
  std::ostringstream out;
  out << rolling.ToPrometheus();

  out << "# HELP switchv_campaign_running 1 while the campaign is live.\n"
      << "# TYPE switchv_campaign_running gauge\n"
      << "switchv_campaign_running{campaign_id=\"" << campaign_id << "\"} "
      << (running ? 1 : 0) << "\n";
  out << "# HELP switchv_shards_total Shards in the campaign plan.\n"
      << "# TYPE switchv_shards_total gauge\n"
      << "switchv_shards_total " << total_shards << "\n";
  out << "# HELP switchv_shards_in_flight Shards currently executing.\n"
      << "# TYPE switchv_shards_in_flight gauge\n"
      << "switchv_shards_in_flight " << in_flight << "\n";
  out << "# HELP switchv_shards_done Shards absorbed into the report.\n"
      << "# TYPE switchv_shards_done gauge\n"
      << "switchv_shards_done " << done << "\n";

  if (!rtt.empty()) {
    out << "# HELP switchv_heartbeat_rtt_seconds Heartbeat/hello round-trip "
           "time per worker host.\n"
        << "# TYPE switchv_heartbeat_rtt_seconds histogram\n";
    for (const auto& [host, hist] : rtt) {
      const std::string host_label =
          "host=\"" + PrometheusLabelEscape(host) + "\"";
      std::uint64_t cumulative = 0;
      for (int i = 0; i < kHistogramBuckets; ++i) {
        cumulative += hist.counts[static_cast<std::size_t>(i)];
        const std::uint64_t upper = HistogramBucketUpperNs(i);
        out << "switchv_heartbeat_rtt_seconds_bucket{" << host_label
            << ",le=\"";
        if (i == kHistogramBuckets - 1) {
          out << "+Inf";
        } else {
          out << SecondsField(static_cast<double>(upper) / 1e9);
        }
        out << "\"} " << cumulative << "\n";
      }
      out << "switchv_heartbeat_rtt_seconds_sum{" << host_label << "} "
          << SecondsField(static_cast<double>(hist.sum_ns) / 1e9) << "\n";
      out << "switchv_heartbeat_rtt_seconds_count{" << host_label << "} "
          << hist.count << "\n";
    }
  }

  if (!classes.empty()) {
    out << "# HELP switchv_incident_class_total First-seen incident "
           "fingerprints by detector and SUT layer.\n"
        << "# TYPE switchv_incident_class_total counter\n";
    for (const auto& [key, count] : classes) {
      out << "switchv_incident_class_total{detector=\""
          << PrometheusLabelEscape(key.first) << "\",layer=\""
          << PrometheusLabelEscape(key.second) << "\"} " << count << "\n";
    }
    // Per-class counters with the class baked into the metric name — the
    // enum names carry dashes ("p4-fuzzer", "syncd-sai"), so the name goes
    // through PrometheusSanitizeName to stay a legal identifier.
    for (const auto& [key, count] : classes) {
      out << PrometheusSanitizeName("switchv_incident_" + key.first + "_" +
                                    key.second + "_total")
          << " " << count << "\n";
    }
  }
  return out.str();
}

std::string CampaignTelemetry::StatusJson() const {
  MetricsSnapshot rolling;
  std::uint64_t campaign_id;
  int total_shards, in_flight, done;
  bool running, finished;
  double elapsed;
  std::map<std::string, HistogramSnapshot> rtt;
  {
    std::lock_guard<std::mutex> lock(mu_);
    rolling = RollingSnapshotLocked();
    campaign_id = campaign_id_;
    total_shards = total_shards_;
    in_flight = shards_in_flight_;
    done = shards_done_;
    running = running_;
    finished = finished_;
    elapsed = ElapsedSecondsLocked();
    rtt = heartbeat_rtt_;
  }
  // Per-host state is derived from the journal (latest lifecycle event
  // wins), so /status needs no extra coupling to the host pool.
  std::map<std::string, std::string> host_state;
  for (const JournalEvent& event : journal_.EventsSince(0)) {
    if (event.host.empty()) continue;
    switch (event.kind) {
      case JournalEventKind::kHostLaunched:
        host_state[event.host] = "launched";
        break;
      case JournalEventKind::kHostHello:
        host_state[event.host] = "live";
        break;
      case JournalEventKind::kHostRetired:
        host_state[event.host] = "retired";
        break;
      case JournalEventKind::kHostProbation:
        host_state[event.host] = "probation";
        break;
      case JournalEventKind::kHostReadmitted:
        host_state[event.host] = "live";
        break;
      case JournalEventKind::kHostReprovisioned:
        host_state[event.host] = "reprovisioned";
        break;
      default:
        break;
    }
  }
  const double eta =
      (running && done > 0 && done < total_shards)
          ? elapsed / static_cast<double>(done) *
                static_cast<double>(total_shards - done)
          : 0;
  std::ostringstream out;
  out << "{\"campaign_id\":" << campaign_id << ",\"running\":"
      << (running ? "true" : "false") << ",\"finished\":"
      << (finished ? "true" : "false") << ",\"shards_total\":" << total_shards
      << ",\"shards_in_flight\":" << in_flight << ",\"shards_done\":" << done
      << ",\"elapsed_seconds\":" << SecondsField(elapsed)
      << ",\"eta_seconds\":" << SecondsField(eta)
      << ",\"updates_sent\":" << rolling.updates_sent
      << ",\"packets_tested\":" << rolling.packets_tested
      << ",\"incidents_unique\":" << rolling.incidents_unique
      << ",\"journal_events\":" << journal_.size() << ",\"hosts\":[";
  bool first = true;
  for (const auto& [host, state] : host_state) {
    if (!first) out << ",";
    first = false;
    out << "{\"endpoint\":\"" << JsonEscape(host) << "\",\"state\":\""
        << state << "\"";
    auto it = rtt.find(host);
    if (it != rtt.end() && it->second.count > 0) {
      out << ",\"heartbeat_rtt_p50_ns\":" << it->second.PercentileNs(0.5);
    }
    out << "}";
  }
  out << "]}";
  return out.str();
}

std::string CampaignTelemetry::ProgressLine() const {
  MetricsSnapshot rolling;
  std::uint64_t campaign_id;
  int total_shards, in_flight, done;
  double elapsed;
  bool running;
  std::size_t hosts;
  {
    std::lock_guard<std::mutex> lock(mu_);
    rolling = RollingSnapshotLocked();
    campaign_id = campaign_id_;
    total_shards = total_shards_;
    in_flight = shards_in_flight_;
    done = shards_done_;
    elapsed = ElapsedSecondsLocked();
    running = running_;
    hosts = heartbeat_rtt_.size();
  }
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "[campaign %llu] %d/%d shards done, %d in flight, "
                "%llu updates, %llu incidents, %zu host(s), %.1fs%s",
                static_cast<unsigned long long>(campaign_id), done,
                total_shards, in_flight,
                static_cast<unsigned long long>(rolling.updates_sent),
                static_cast<unsigned long long>(rolling.incidents_unique),
                hosts, elapsed, running ? "" : " (done)");
  return buffer;
}

}  // namespace switchv
