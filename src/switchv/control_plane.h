// Control-plane API validation: the p4-fuzzer run loop (paper §4, §4.4).
//
// Generates batches of valid and mutated requests, sends them to the switch
// under test, reads the state back after each batch, and judges responses
// and state with the oracle.
#ifndef SWITCHV_SWITCHV_CONTROL_PLANE_H_
#define SWITCHV_SWITCHV_CONTROL_PLANE_H_

#include "fuzzer/coverage.h"
#include "fuzzer/oracle.h"
#include "sut/switch_stack.h"
#include "switchv/incident.h"
#include "switchv/metrics.h"
#include "switchv/recorder.h"
#include "switchv/trace.h"

namespace switchv {

struct ControlPlaneOptions {
  // The paper's configuration: 1000 write requests with ~50 updates each
  // (§6.3); scaled down by default for interactive runs.
  int num_requests = 40;
  int updates_per_request = 50;
  fuzzer::FuzzerOptions fuzzer;
  std::uint64_t seed = 1;
  // Stop after this many incidents (a buggy switch floods otherwise).
  int max_incidents = 25;
  // Optional campaign telemetry sink (thread-safe; shared across shards).
  Metrics* metrics = nullptr;
  // Optional span track (single-threaded, owned by the calling shard);
  // null disables tracing at near-zero cost.
  TraceTrack* trace = nullptr;
  // Optional flight recorder; when set, every incident carries a rendered
  // replay of the last N switch operations.
  FlightRecorder* recorder = nullptr;
  // Optional shared memo for oracle judgments (thread-safe; one per host,
  // shared across every shard's oracle). Null judges from scratch.
  fuzzer::JudgmentCache* judgment_cache = nullptr;
  // Kill switch for conformance testing: when false the oracle ignores
  // `judgment_cache` and classifies every update from scratch. Travels
  // with the shard spec over the wire, so out-of-process workers honour it.
  bool oracle_cache = true;
  // Coverage-guided scheduling (fuzzer/coverage.h). kUniform is the
  // baseline uniform-random generator; kCoverage hangs a CoverageScheduler
  // off the generator, fed from the probe's per-unit layer attribution.
  // The scheduler draws from its own splitmix stream keyed by `seed`, so a
  // guided run is deterministic per (seed, shard) and replayable.
  fuzzer::Guidance guidance = fuzzer::Guidance::kUniform;
  fuzzer::GuidanceOptions guidance_options;
  // Seeds imported into the scheduler's corpus before the first batch
  // (cross-shard seed exchange, fanned out by the campaign engine).
  std::vector<fuzzer::SeedDescriptor> guidance_seeds;
};

struct ControlPlaneResult {
  std::vector<Incident> incidents;
  int updates_sent = 0;
  int requests_sent = 0;
  // Coverage counters (zero when guidance is off).
  std::uint64_t coverage_edges = 0;
  std::uint64_t coverage_novelty = 0;
  // The shard's highest-energy corpus seeds, harvested for exchange.
  std::vector<fuzzer::SeedDescriptor> harvested_seeds;
};

// Runs control-plane validation against an already-configured switch.
ControlPlaneResult RunControlPlaneValidation(sut::SwitchUnderTest& sut,
                                             const p4ir::P4Info& info,
                                             const ControlPlaneOptions&
                                                 options);

}  // namespace switchv

#endif  // SWITCHV_SWITCHV_CONTROL_PLANE_H_
