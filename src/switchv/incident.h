// Incident reports: SwitchV's output (paper §2).
//
// When SwitchV deems switch behaviour invalid it produces an incident log
// for a human to root-cause; the root cause may be in the switch, the P4
// model, the oracle, or the reference simulator — SwitchV only reports the
// divergence.
//
// Production SwitchV aggregates incidents centrally across many testbeds
// (§8); a single buggy switch floods the report with thousands of repeats of
// the same divergence. The incident pipeline therefore fingerprints every
// incident over (detector, summary shape, table id) and dedups repeats into
// `IncidentGroup`s carrying occurrence counts — the campaign engine's merge
// stage is built on these types.
#ifndef SWITCHV_SWITCHV_INCIDENT_H_
#define SWITCHV_SWITCHV_INCIDENT_H_

#include <cctype>
#include <cstdint>
#include <string>
#include <vector>

#include "sut/layer_probe.h"
#include "util/fingerprint.h"

namespace switchv {

// kHarness incidents are synthesized by the campaign engine itself — a
// crashed, hung, or unprovisionable shard worker — not by a validation
// component. They carry their own detector value so they fingerprint into
// their own dedup classes, never merging with model/switch divergences.
enum class Detector { kFuzzer, kSymbolic, kHarness };

inline std::string_view DetectorName(Detector detector) {
  switch (detector) {
    case Detector::kFuzzer:
      return "p4-fuzzer";
    case Detector::kSymbolic:
      return "p4-symbolic";
    case Detector::kHarness:
      break;
  }
  return "harness";
}

struct Incident {
  Detector detector;
  std::string summary;  // one-line description of the divergence
  std::string details;  // offending request/packet, observed vs expected
  // P4 table involved, when the raising component knows it (0 otherwise).
  // Part of the fingerprint: the same divergence on two tables is two bugs.
  std::uint32_t table_id = 0;
  // Campaign shard that raised the incident; -1 outside campaign runs.
  int shard = -1;
  // Deepest SUT layer the triggering operation reached — the reproduction's
  // per-incident analogue of the paper's Table 1 layer attribution. kNone
  // means unattributed (e.g. a generator defect that never touched the
  // switch). Excluded from the fingerprint: attribution annotates a
  // divergence class, it does not define one.
  sut::SutLayer layer = sut::SutLayer::kNone;
  // Flight-recorder excerpt: the last N switch operations before the
  // incident (switchv/recorder.h), rendered for the report. Excluded from
  // the fingerprint, like `details`.
  std::string replay_trace;
};

// Collapses the variable parts of a summary so repeats of one divergence
// fingerprint identically: every run of decimal digits (entry ids, counts)
// and every 0x-prefixed hex run (addresses, byte dumps) becomes a single
// '#'. "entry 17 missing" and "entry 23 missing" share a shape.
inline std::string IncidentSummaryShape(std::string_view summary) {
  std::string shape;
  shape.reserve(summary.size());
  for (std::size_t i = 0; i < summary.size();) {
    if (summary.compare(i, 2, "0x") == 0 && i + 2 < summary.size() &&
        std::isxdigit(static_cast<unsigned char>(summary[i + 2]))) {
      i += 2;
      while (i < summary.size() &&
             std::isxdigit(static_cast<unsigned char>(summary[i]))) {
        ++i;
      }
      shape.push_back('#');
    } else if (std::isdigit(static_cast<unsigned char>(summary[i]))) {
      while (i < summary.size() &&
             std::isdigit(static_cast<unsigned char>(summary[i]))) {
        ++i;
      }
      shape.push_back('#');
    } else {
      shape.push_back(summary[i]);
      ++i;
    }
  }
  return shape;
}

// Stable identity of a divergence class: detector + summary shape + table.
// Deliberately excludes `details` (always entry/packet-specific) and `shard`
// (the same bug found by two shards is one bug).
inline std::uint64_t IncidentFingerprint(const Incident& incident) {
  return Fingerprint()
      .AddU64(static_cast<std::uint64_t>(incident.detector))
      .AddBytes(IncidentSummaryShape(incident.summary))
      .AddU64(incident.table_id)
      .digest();
}

// One deduped divergence class in a campaign report.
struct IncidentGroup {
  Incident exemplar;  // first occurrence in deterministic merge order
  std::uint64_t fingerprint = 0;
  int occurrences = 0;
  std::vector<int> shards;  // sorted, unique shard indices that saw it
};

}  // namespace switchv

#endif  // SWITCHV_SWITCHV_INCIDENT_H_
