// Incident reports: SwitchV's output (paper §2).
//
// When SwitchV deems switch behaviour invalid it produces an incident log
// for a human to root-cause; the root cause may be in the switch, the P4
// model, the oracle, or the reference simulator — SwitchV only reports the
// divergence.
#ifndef SWITCHV_SWITCHV_INCIDENT_H_
#define SWITCHV_SWITCHV_INCIDENT_H_

#include <string>
#include <vector>

namespace switchv {

enum class Detector { kFuzzer, kSymbolic };

inline std::string_view DetectorName(Detector detector) {
  return detector == Detector::kFuzzer ? "p4-fuzzer" : "p4-symbolic";
}

struct Incident {
  Detector detector;
  std::string summary;  // one-line description of the divergence
  std::string details;  // offending request/packet, observed vs expected
};

}  // namespace switchv

#endif  // SWITCHV_SWITCHV_INCIDENT_H_
