// Wire protocol for out-of-process campaign shards.
//
// Production SwitchV runs its nightly campaigns across a fleet of testbeds
// (paper §8): the orchestrator must outlive any single wedged or crashed
// switch instance. The in-process worker pool (switchv/engine.h) cannot —
// a SUT abort takes the whole campaign down. This module is the seam that
// fixes that: a campaign shard, today a struct passed to a function, is
// serialized to one line of JSON, executed by a `switchv_shard_worker`
// process, and its results (incident list, counters, telemetry snapshot,
// trace spans) come back as one line of JSON on stdout.
//
// Format invariants (all load-bearing for the engine's conformance
// guarantee — a campaign report must be byte-identical whether its shards
// ran in-process or out-of-process):
//   * Lossless: every field that influences shard behaviour round-trips
//     exactly, including fuzzer probabilities (printed with max_digits10)
//     and 64-bit seeds (never routed through a double).
//   * Self-describing: specs and results carry a version tag; parsers
//     reject unknown versions, truncated payloads, and garbage with a
//     clear Status — never a crash (the parent treats a worker's stdout as
//     untrusted: the worker may have died mid-write).
//   * Line-delimited: one JSON object per line, so the stream composes
//     with pipes, files, and sockets between hosts — the TCP transport in
//     switchv/shard_transport.h frames these same lines for
//     Execution::kRemote without touching this format.
#ifndef SWITCHV_SWITCHV_SHARD_IO_H_
#define SWITCHV_SWITCHV_SHARD_IO_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "models/entry_gen.h"
#include "switchv/control_plane.h"
#include "switchv/dataplane.h"

namespace switchv {

// How a worker process rebuilds the campaign's scenario — the P4 model,
// parser, and replayed forwarding state — from first principles. Model
// construction and entry generation are deterministic in these fields, so
// shipping the recipe instead of the artifacts keeps specs small and the
// rebuilt scenario bit-identical to the parent's.
struct ShardScenario {
  models::Role role = models::Role::kMiddleblock;
  models::ModelOptions model;       // "Input P4 Program" bug knobs
  models::WorkloadSpec workload;    // forwarding-state shape
  std::uint64_t entry_seed = 1;
};

// Everything a worker process needs to run exactly one campaign shard.
// Mirrors the engine's internal shard decomposition; the embedded option
// structs are serialized by value only — their pointer members (metrics,
// trace, recorder, caches) are process-local and always null on the wire.
struct WireShardSpec {
  enum class Kind { kControlPlane, kDataplane };
  Kind kind = Kind::kControlPlane;
  int index = 0;  // global shard index (merge identity)
  ShardScenario scenario;
  // This shard's fault-registry view (sorted ids); empty = healthy stack.
  std::vector<sut::Fault> faults;
  // Control-plane shards: num_requests/seed are this shard's slice, not
  // campaign totals.
  ControlPlaneOptions control_plane;
  // Dataplane shards: packet_shard/packet_shards carry the partition.
  DataplaneOptions dataplane;
  bool dataplane_on_fuzzed_state = false;
  int flight_recorder_capacity = 32;
  // Record spans in the worker and ship them back in the result.
  bool trace = false;
  // Campaign pre-phase packets (split-dataplane campaigns generate once,
  // in the parent, and fan the list out — same as in-process execution).
  bool has_packets = false;
  std::vector<symbolic::TestPacket> packets;
};

std::string_view ShardKindName(WireShardSpec::Kind kind);

// A worker's complete output for one shard.
struct WireShardResult {
  int index = 0;
  std::vector<Incident> incidents;
  int fuzzed_updates = 0;
  int packets_tested = 0;
  symbolic::GenerationStats generation;
  // The worker's full telemetry (counters + histogram buckets); the parent
  // folds it into the campaign sink with Metrics::Merge. wall_seconds is
  // worker-local and ignored on merge.
  MetricsSnapshot metrics;
  // Shard spans when the spec asked for tracing; identity ((shard, seq),
  // names, nesting) is deterministic, timestamps are worker-relative.
  std::vector<TraceSpan> spans;
  // Coverage-guided shards: the shard's harvested corpus seeds (empty when
  // guidance is off — and then absent from the wire line entirely, keeping
  // unguided result bytes identical to the previous protocol revision).
  std::vector<fuzzer::SeedDescriptor> seeds;
};

// ---------------------------------------------------------------------------
// Serialization. Each Serialize* emits exactly one line (no trailing
// newline); each Parse* accepts exactly one line and reports malformed
// input — truncation, garbage, wrong version, out-of-range enums — as
// INVALID_ARGUMENT with the offending context.
// ---------------------------------------------------------------------------

std::string SerializeShardSpec(const WireShardSpec& spec);
StatusOr<WireShardSpec> ParseShardSpec(std::string_view line);

std::string SerializeShardResult(const WireShardResult& result);
StatusOr<WireShardResult> ParseShardResult(std::string_view line);

// ---------------------------------------------------------------------------
// Live telemetry samples. A worker running with --telemetry-interval emits
// these as *interim* stdout lines while the shard executes: each carries
// the metric delta since the previous sample plus any spans recorded in
// the interval. They are additive and observational — summing a shard's
// deltas reproduces its final counters, and dropping any or all of them
// loses nothing (the authoritative result line still carries the full
// snapshot). The result line stays the *last* line, so parents that only
// read the final line never see these.
// ---------------------------------------------------------------------------

struct TelemetrySample {
  int shard = -1;
  std::uint64_t seq = 0;  // 1-based per-shard sample index
  MetricsSnapshot delta;  // counters/histograms since the previous sample
  std::vector<TraceSpan> spans;
};

// Cheap sniff for dispatchers that see a mixed stdout stream: true iff the
// line starts with the telemetry-sample preamble (full validation is still
// ParseTelemetrySample's job).
bool LooksLikeTelemetrySample(std::string_view line);

std::string SerializeTelemetrySample(const TelemetrySample& sample);
StatusOr<TelemetrySample> ParseTelemetrySample(std::string_view line);

// ---------------------------------------------------------------------------
// Worker process runner: fork/exec with piped stdin/stdout, a wall-clock
// deadline, and SIGKILL on overrun. The harness side of crash isolation.
// ---------------------------------------------------------------------------

struct WorkerProcessResult {
  enum class Outcome {
    kExited,       // child exited; see exit_code
    kSignaled,     // child died on a signal (crash); see term_signal
    kTimedOut,     // deadline hit; child was SIGKILLed
    kSpawnFailed,  // never started; see error
  };
  Outcome outcome = Outcome::kSpawnFailed;
  int exit_code = -1;
  int term_signal = 0;
  std::string stdout_data;  // everything the child wrote before the end
  std::string error;        // spawn-failure detail
};

// Runs `binary` with `extra_args`, writes `stdin_payload` to its stdin
// (then EOF), and drains stdout until the child exits or
// `timeout_seconds` elapses. Never throws and never blocks past the
// deadline; the caller classifies the outcome. stderr is inherited so a
// failing worker's rendered error lands in the campaign log.
WorkerProcessResult RunWorkerProcess(const std::string& binary,
                                     const std::vector<std::string>& extra_args,
                                     std::string_view stdin_payload,
                                     double timeout_seconds);

// As above, but additionally invokes `on_stdout` with each chunk of child
// stdout as it arrives (before it is appended to stdout_data). Used by the
// worker host to forward interim telemetry lines while the shard is still
// running; a null callback makes this identical to the overload above.
WorkerProcessResult RunWorkerProcess(
    const std::string& binary, const std::vector<std::string>& extra_args,
    std::string_view stdin_payload, double timeout_seconds,
    const std::function<void(std::string_view)>& on_stdout);

}  // namespace switchv

#endif  // SWITCHV_SWITCHV_SHARD_IO_H_
