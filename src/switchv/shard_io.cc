#include "switchv/shard_io.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "util/strings.h"

namespace switchv {

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON document model. The wire format is machine-written JSON on
// one line; this parser exists to *reject* everything else — truncated
// writes from a dying worker, stray log lines, hostile garbage — with a
// Status instead of undefined behaviour. Numbers keep their raw token so
// 64-bit seeds never lose precision through a double.
// ---------------------------------------------------------------------------

struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  std::string number;  // raw token, e.g. "18446744073709551615" or "0.3"
  std::string str;
  std::vector<Json> array;
  std::vector<std::pair<std::string, Json>> object;

  const Json* Find(std::string_view key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonReader {
 public:
  static StatusOr<Json> Parse(std::string_view text) {
    JsonReader reader(text);
    SWITCHV_ASSIGN_OR_RETURN(Json value, reader.ParseValue());
    reader.SkipSpace();
    if (reader.pos_ != text.size()) {
      return InvalidArgumentError("trailing bytes after JSON document at " +
                                  reader.Context());
    }
    return value;
  }

 private:
  explicit JsonReader(std::string_view text) : text_(text) {}

  // Nesting cap: a garbage payload of ten thousand '[' must fail cleanly,
  // not exhaust the stack.
  static constexpr int kMaxDepth = 64;

  std::string Context() const {
    return "offset " + std::to_string(pos_) + " of " +
           std::to_string(text_.size());
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  StatusOr<Json> ParseValue() {
    if (++depth_ > kMaxDepth) {
      return InvalidArgumentError("JSON nesting exceeds depth limit");
    }
    SkipSpace();
    if (pos_ >= text_.size()) {
      return InvalidArgumentError("truncated JSON: value expected at " +
                                  Context());
    }
    StatusOr<Json> value = [&]() -> StatusOr<Json> {
      switch (text_[pos_]) {
        case '{':
          return ParseObject();
        case '[':
          return ParseArray();
        case '"':
          return ParseString();
        case 't':
        case 'f':
          return ParseBool();
        case 'n':
          return ParseNull();
        default:
          return ParseNumber();
      }
    }();
    --depth_;
    return value;
  }

  StatusOr<Json> ParseObject() {
    ++pos_;  // '{'
    Json value;
    value.type = Json::Type::kObject;
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return InvalidArgumentError("truncated JSON: object key expected at " +
                                    Context());
      }
      SWITCHV_ASSIGN_OR_RETURN(Json key, ParseString());
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return InvalidArgumentError("truncated JSON: ':' expected at " +
                                    Context());
      }
      ++pos_;
      SWITCHV_ASSIGN_OR_RETURN(Json element, ParseValue());
      value.object.emplace_back(std::move(key.str), std::move(element));
      SkipSpace();
      if (pos_ >= text_.size()) {
        return InvalidArgumentError("truncated JSON: unterminated object");
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return value;
      }
      return InvalidArgumentError("malformed JSON object at " + Context());
    }
  }

  StatusOr<Json> ParseArray() {
    ++pos_;  // '['
    Json value;
    value.type = Json::Type::kArray;
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      SWITCHV_ASSIGN_OR_RETURN(Json element, ParseValue());
      value.array.push_back(std::move(element));
      SkipSpace();
      if (pos_ >= text_.size()) {
        return InvalidArgumentError("truncated JSON: unterminated array");
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return value;
      }
      return InvalidArgumentError("malformed JSON array at " + Context());
    }
  }

  StatusOr<Json> ParseString() {
    ++pos_;  // '"'
    Json value;
    value.type = Json::Type::kString;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return value;
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) break;
        const char escape = text_[pos_ + 1];
        pos_ += 2;
        switch (escape) {
          case '"':
            value.str.push_back('"');
            break;
          case '\\':
            value.str.push_back('\\');
            break;
          case '/':
            value.str.push_back('/');
            break;
          case 'n':
            value.str.push_back('\n');
            break;
          case 't':
            value.str.push_back('\t');
            break;
          case 'r':
            value.str.push_back('\r');
            break;
          case 'b':
            value.str.push_back('\b');
            break;
          case 'f':
            value.str.push_back('\f');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return InvalidArgumentError("truncated \\u escape at " +
                                          Context());
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_ + static_cast<std::size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return InvalidArgumentError("bad \\u escape at " + Context());
              }
            }
            pos_ += 4;
            // The writer only emits \u00XX for control bytes; reject the
            // rest rather than hand-roll UTF-8 encoding.
            if (code > 0xFF) {
              return InvalidArgumentError(
                  "unsupported \\u escape above U+00FF at " + Context());
            }
            value.str.push_back(static_cast<char>(code));
            break;
          }
          default:
            return InvalidArgumentError("unknown escape at " + Context());
        }
        continue;
      }
      value.str.push_back(c);
      ++pos_;
    }
    return InvalidArgumentError("truncated JSON: unterminated string");
  }

  StatusOr<Json> ParseBool() {
    Json value;
    value.type = Json::Type::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      value.boolean = true;
      pos_ += 4;
      return value;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      value.boolean = false;
      pos_ += 5;
      return value;
    }
    return InvalidArgumentError("malformed JSON literal at " + Context());
  }

  StatusOr<Json> ParseNull() {
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return Json{};
    }
    return InvalidArgumentError("malformed JSON literal at " + Context());
  }

  StatusOr<Json> ParseNumber() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) {
      return InvalidArgumentError("malformed JSON value at " + Context());
    }
    Json value;
    value.type = Json::Type::kNumber;
    value.number = std::string(text_.substr(start, pos_ - start));
    // Validate the token now so field accessors can convert unchecked.
    errno = 0;
    char* end = nullptr;
    std::strtod(value.number.c_str(), &end);
    if (end != value.number.c_str() + value.number.size() || errno == ERANGE) {
      return InvalidArgumentError("malformed JSON number '" + value.number +
                                  "'");
    }
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

// ---------------------------------------------------------------------------
// Typed field accessors: every lookup failure names the missing/mistyped
// key so a rejected payload is diagnosable from the status alone.
// ---------------------------------------------------------------------------

StatusOr<const Json*> Require(const Json& parent, std::string_view key,
                              Json::Type type, const char* what) {
  if (parent.type != Json::Type::kObject) {
    return InvalidArgumentError(std::string(what) + ": not a JSON object");
  }
  const Json* value = parent.Find(key);
  if (value == nullptr) {
    return InvalidArgumentError(std::string(what) + ": missing field '" +
                                std::string(key) + "'");
  }
  if (value->type != type) {
    return InvalidArgumentError(std::string(what) + ": field '" +
                                std::string(key) + "' has the wrong type");
  }
  return value;
}

Status GetU64(const Json& parent, std::string_view key, const char* what,
              std::uint64_t& out) {
  SWITCHV_ASSIGN_OR_RETURN(const Json* value,
                           Require(parent, key, Json::Type::kNumber, what));
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value->number.c_str(), &end,
                                                  10);
  if (end != value->number.c_str() + value->number.size() ||
      errno == ERANGE || value->number[0] == '-') {
    return InvalidArgumentError(std::string(what) + ": field '" +
                                std::string(key) +
                                "' is not a 64-bit unsigned integer");
  }
  out = static_cast<std::uint64_t>(parsed);
  return OkStatus();
}

Status GetInt(const Json& parent, std::string_view key, const char* what,
              int& out) {
  SWITCHV_ASSIGN_OR_RETURN(const Json* value,
                           Require(parent, key, Json::Type::kNumber, what));
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(value->number.c_str(), &end, 10);
  if (end != value->number.c_str() + value->number.size() ||
      errno == ERANGE || parsed < INT32_MIN || parsed > INT32_MAX) {
    return InvalidArgumentError(std::string(what) + ": field '" +
                                std::string(key) + "' is not a 32-bit integer");
  }
  out = static_cast<int>(parsed);
  return OkStatus();
}

Status GetDouble(const Json& parent, std::string_view key, const char* what,
                 double& out) {
  SWITCHV_ASSIGN_OR_RETURN(const Json* value,
                           Require(parent, key, Json::Type::kNumber, what));
  out = std::strtod(value->number.c_str(), nullptr);
  return OkStatus();
}

Status GetBool(const Json& parent, std::string_view key, const char* what,
               bool& out) {
  SWITCHV_ASSIGN_OR_RETURN(const Json* value,
                           Require(parent, key, Json::Type::kBool, what));
  out = value->boolean;
  return OkStatus();
}

Status GetString(const Json& parent, std::string_view key, const char* what,
                 std::string& out) {
  SWITCHV_ASSIGN_OR_RETURN(const Json* value,
                           Require(parent, key, Json::Type::kString, what));
  out = value->str;
  return OkStatus();
}

// ---------------------------------------------------------------------------
// Scalar writers. Doubles are printed with max_digits10 so fuzzer
// probabilities round-trip bit-exactly; uint64 values print as integers.
// ---------------------------------------------------------------------------

void WriteDouble(std::ostringstream& out, double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out << buffer;
}

std::string HexError(std::string_view hex) {
  const std::string prefix(hex.substr(0, 16));
  return "bad hex packet bytes '" + prefix + (hex.size() > 16 ? "..." : "") +
         "'";
}

StatusOr<std::string> HexToBytes(std::string_view hex) {
  if (hex.size() % 2 != 0) return InvalidArgumentError(HexError(hex));
  std::string bytes;
  bytes.reserve(hex.size() / 2);
  const auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return InvalidArgumentError(HexError(hex));
    bytes.push_back(static_cast<char>((hi << 4) | lo));
  }
  return bytes;
}

// ---------------------------------------------------------------------------
// Enum name maps. Names, not ordinals, go on the wire wherever a stable
// name exists — a renumbered enum must not silently reinterpret old
// payloads.
// ---------------------------------------------------------------------------

StatusOr<WireShardSpec::Kind> ParseKindName(std::string_view name) {
  if (name == ShardKindName(WireShardSpec::Kind::kControlPlane)) {
    return WireShardSpec::Kind::kControlPlane;
  }
  if (name == ShardKindName(WireShardSpec::Kind::kDataplane)) {
    return WireShardSpec::Kind::kDataplane;
  }
  return InvalidArgumentError("unknown shard kind '" + std::string(name) +
                              "'");
}

StatusOr<models::Role> ParseRoleName(std::string_view name) {
  for (const models::Role role :
       {models::Role::kMiddleblock, models::Role::kWan}) {
    if (name == models::RoleName(role)) return role;
  }
  return InvalidArgumentError("unknown model role '" + std::string(name) +
                              "'");
}

std::string_view CoverageName(symbolic::CoverageMode mode) {
  return mode == symbolic::CoverageMode::kEntryCoverage ? "entry"
                                                        : "branch-and-entry";
}

StatusOr<symbolic::CoverageMode> ParseCoverageName(std::string_view name) {
  for (const symbolic::CoverageMode mode :
       {symbolic::CoverageMode::kEntryCoverage,
        symbolic::CoverageMode::kBranchAndEntryCoverage}) {
    if (name == CoverageName(mode)) return mode;
  }
  return InvalidArgumentError("unknown coverage mode '" + std::string(name) +
                              "'");
}

StatusOr<Detector> ParseDetectorName(std::string_view name) {
  for (const Detector detector :
       {Detector::kFuzzer, Detector::kSymbolic, Detector::kHarness}) {
    if (name == DetectorName(detector)) return detector;
  }
  return InvalidArgumentError("unknown detector '" + std::string(name) + "'");
}

StatusOr<sut::SutLayer> ParseLayerName(std::string_view name) {
  for (int i = 0; i < sut::kNumSutLayers; ++i) {
    const auto layer = static_cast<sut::SutLayer>(i);
    if (name == sut::SutLayerName(layer)) return layer;
  }
  return InvalidArgumentError("unknown SUT layer '" + std::string(name) +
                              "'");
}

// ---------------------------------------------------------------------------
// Sub-object writers/parsers shared by spec and result.
// ---------------------------------------------------------------------------

void WriteIncident(std::ostringstream& out, const Incident& incident) {
  out << "{\"detector\":\"" << DetectorName(incident.detector)
      << "\",\"summary\":\"" << JsonEscape(incident.summary)
      << "\",\"details\":\"" << JsonEscape(incident.details)
      << "\",\"table_id\":" << incident.table_id
      << ",\"shard\":" << incident.shard << ",\"layer\":\""
      << sut::SutLayerName(incident.layer) << "\",\"replay_trace\":\""
      << JsonEscape(incident.replay_trace) << "\"}";
}

StatusOr<Incident> ParseIncident(const Json& json) {
  constexpr const char* kWhat = "shard incident";
  Incident incident{Detector::kFuzzer, "", ""};
  std::string name;
  SWITCHV_RETURN_IF_ERROR(GetString(json, "detector", kWhat, name));
  SWITCHV_ASSIGN_OR_RETURN(incident.detector, ParseDetectorName(name));
  SWITCHV_RETURN_IF_ERROR(GetString(json, "summary", kWhat, incident.summary));
  SWITCHV_RETURN_IF_ERROR(GetString(json, "details", kWhat, incident.details));
  std::uint64_t table_id = 0;
  SWITCHV_RETURN_IF_ERROR(GetU64(json, "table_id", kWhat, table_id));
  if (table_id > UINT32_MAX) {
    return InvalidArgumentError("shard incident: table_id out of range");
  }
  incident.table_id = static_cast<std::uint32_t>(table_id);
  SWITCHV_RETURN_IF_ERROR(GetInt(json, "shard", kWhat, incident.shard));
  SWITCHV_RETURN_IF_ERROR(GetString(json, "layer", kWhat, name));
  SWITCHV_ASSIGN_OR_RETURN(incident.layer, ParseLayerName(name));
  SWITCHV_RETURN_IF_ERROR(
      GetString(json, "replay_trace", kWhat, incident.replay_trace));
  return incident;
}

void WriteSpan(std::ostringstream& out, const TraceSpan& span) {
  out << "{\"name\":\"" << JsonEscape(span.name) << "\",\"category\":\""
      << JsonEscape(span.category) << "\",\"shard\":" << span.shard
      << ",\"seq\":" << span.seq << ",\"parent_seq\":" << span.parent_seq
      << ",\"start_ns\":" << span.start_ns << ",\"duration_ns\":"
      << span.duration_ns << ",\"args\":[";
  bool first = true;
  for (const auto& [key, value] : span.args) {
    if (!first) out << ",";
    first = false;
    out << "[\"" << JsonEscape(key) << "\",\"" << JsonEscape(value) << "\"]";
  }
  out << "]}";
}

StatusOr<TraceSpan> ParseSpan(const Json& json) {
  constexpr const char* kWhat = "shard span";
  TraceSpan span;
  SWITCHV_RETURN_IF_ERROR(GetString(json, "name", kWhat, span.name));
  SWITCHV_RETURN_IF_ERROR(GetString(json, "category", kWhat, span.category));
  SWITCHV_RETURN_IF_ERROR(GetInt(json, "shard", kWhat, span.shard));
  SWITCHV_RETURN_IF_ERROR(GetU64(json, "seq", kWhat, span.seq));
  SWITCHV_RETURN_IF_ERROR(GetU64(json, "parent_seq", kWhat, span.parent_seq));
  SWITCHV_RETURN_IF_ERROR(GetU64(json, "start_ns", kWhat, span.start_ns));
  SWITCHV_RETURN_IF_ERROR(
      GetU64(json, "duration_ns", kWhat, span.duration_ns));
  SWITCHV_ASSIGN_OR_RETURN(const Json* args,
                           Require(json, "args", Json::Type::kArray, kWhat));
  for (const Json& pair : args->array) {
    if (pair.type != Json::Type::kArray || pair.array.size() != 2 ||
        pair.array[0].type != Json::Type::kString ||
        pair.array[1].type != Json::Type::kString) {
      return InvalidArgumentError("shard span: malformed args pair");
    }
    span.args.emplace_back(pair.array[0].str, pair.array[1].str);
  }
  return span;
}

Status ParseHistogram(const Json& hists, const char* name,
                      HistogramSnapshot& out) {
  SWITCHV_ASSIGN_OR_RETURN(
      const Json* hist, Require(hists, name, Json::Type::kObject,
                                "shard metrics histogram"));
  SWITCHV_RETURN_IF_ERROR(GetU64(*hist, "sum_ns", name, out.sum_ns));
  SWITCHV_ASSIGN_OR_RETURN(const Json* counts,
                           Require(*hist, "counts", Json::Type::kArray, name));
  if (counts->array.size() != static_cast<std::size_t>(kHistogramBuckets)) {
    return InvalidArgumentError(std::string(name) +
                                ": histogram bucket count mismatch");
  }
  out.count = 0;
  for (int i = 0; i < kHistogramBuckets; ++i) {
    const Json& bucket = counts->array[static_cast<std::size_t>(i)];
    if (bucket.type != Json::Type::kNumber) {
      return InvalidArgumentError(std::string(name) +
                                  ": histogram bucket is not a number");
    }
    errno = 0;
    char* end = nullptr;
    const unsigned long long parsed =
        std::strtoull(bucket.number.c_str(), &end, 10);
    if (end != bucket.number.c_str() + bucket.number.size() ||
        errno == ERANGE || bucket.number[0] == '-') {
      return InvalidArgumentError(std::string(name) +
                                  ": histogram bucket is not a u64");
    }
    out.counts[static_cast<std::size_t>(i)] = parsed;
    out.count += parsed;
  }
  return OkStatus();
}

StatusOr<fuzzer::SeedDescriptor> ParseSeedDescriptor(const Json& json) {
  constexpr const char* kWhat = "seed descriptor";
  if (json.type != Json::Type::kObject) {
    return InvalidArgumentError("seed descriptor is not an object");
  }
  fuzzer::SeedDescriptor seed;
  std::uint64_t table_id = 0;
  SWITCHV_RETURN_IF_ERROR(GetU64(json, "table_id", kWhat, table_id));
  if (table_id > UINT32_MAX) {
    return InvalidArgumentError("seed descriptor: table_id out of range");
  }
  seed.table_id = static_cast<std::uint32_t>(table_id);
  SWITCHV_RETURN_IF_ERROR(GetInt(json, "mutation", kWhat, seed.mutation));
  SWITCHV_RETURN_IF_ERROR(GetU64(json, "energy", kWhat, seed.energy));
  return seed;
}

Status ParseWireMetrics(const Json& json, MetricsSnapshot& out) {
  constexpr const char* kWhat = "shard metrics";
  const struct {
    const char* key;
    std::uint64_t* field;
  } counters[] = {
      {"shards_completed", &out.shards_completed},
      {"updates_sent", &out.updates_sent},
      {"requests_sent", &out.requests_sent},
      {"generated_valid", &out.generated_valid},
      {"generated_invalid", &out.generated_invalid},
      {"oracle_findings", &out.oracle_findings},
      {"packets_tested", &out.packets_tested},
      {"solver_queries", &out.solver_queries},
      {"generation_cache_hits", &out.generation_cache_hits},
      {"batch_lanes_run", &out.batch_lanes_run},
      {"batch_scalar_fallbacks", &out.batch_scalar_fallbacks},
      {"reference_packets", &out.reference_packets},
      {"oracle_cache_hits", &out.oracle_cache_hits},
      {"oracle_cache_misses", &out.oracle_cache_misses},
      {"oracle_cache_evictions", &out.oracle_cache_evictions},
      {"coverage_edges_total", &out.coverage_edges_total},
      {"coverage_new_edges", &out.coverage_new_edges},
      {"switch_writes", &out.switch_writes},
      {"switch_reads", &out.switch_reads},
      {"switch_packets_injected", &out.switch_packets_injected},
      {"incidents_raised", &out.incidents_raised},
      {"incidents_unique", &out.incidents_unique},
      {"shards_lost", &out.shards_lost},
      {"worker_crashes", &out.worker_crashes},
      {"worker_timeouts", &out.worker_timeouts},
      {"worker_retries", &out.worker_retries},
      {"switch_write_ns", &out.switch_write_ns},
      {"oracle_ns", &out.oracle_ns},
      {"reference_ns", &out.reference_ns},
      {"generation_ns", &out.generation_ns},
  };
  for (const auto& counter : counters) {
    SWITCHV_RETURN_IF_ERROR(GetU64(json, counter.key, kWhat, *counter.field));
  }
  SWITCHV_ASSIGN_OR_RETURN(const Json* hists,
                           Require(json, "hists", Json::Type::kObject, kWhat));
  SWITCHV_RETURN_IF_ERROR(
      ParseHistogram(*hists, "switch_write", out.switch_write_hist));
  SWITCHV_RETURN_IF_ERROR(ParseHistogram(*hists, "oracle", out.oracle_hist));
  SWITCHV_RETURN_IF_ERROR(
      ParseHistogram(*hists, "reference_sim", out.reference_hist));
  SWITCHV_RETURN_IF_ERROR(
      ParseHistogram(*hists, "generation", out.generation_hist));
  return OkStatus();
}

// Wire version tags. Bump on any incompatible change so a mixed-version
// fleet fails loudly instead of mis-merging.
constexpr int kSpecVersion = 1;
constexpr int kResultVersion = 1;

}  // namespace

std::string_view ShardKindName(WireShardSpec::Kind kind) {
  return kind == WireShardSpec::Kind::kControlPlane ? "control-plane"
                                                    : "dataplane";
}

std::string SerializeShardSpec(const WireShardSpec& spec) {
  std::ostringstream out;
  out << "{\"switchv_shard_spec\":" << kSpecVersion << ",\"kind\":\""
      << ShardKindName(spec.kind) << "\",\"index\":" << spec.index;

  out << ",\"scenario\":{\"role\":\"" << models::RoleName(spec.scenario.role)
      << "\",\"entry_seed\":" << spec.scenario.entry_seed << ",\"model\":{"
      << "\"omit_ttl_trap\":" << (spec.scenario.model.omit_ttl_trap ? "true"
                                                                    : "false")
      << ",\"omit_broadcast_drop\":"
      << (spec.scenario.model.omit_broadcast_drop ? "true" : "false")
      << ",\"acl_after_rewrite\":"
      << (spec.scenario.model.acl_after_rewrite ? "true" : "false")
      << ",\"acl_wrong_icmp_field\":"
      << (spec.scenario.model.acl_wrong_icmp_field ? "true" : "false") << "}";
  const models::WorkloadSpec& w = spec.scenario.workload;
  out << ",\"workload\":{\"num_vrfs\":" << w.num_vrfs
      << ",\"num_l3_admit\":" << w.num_l3_admit
      << ",\"num_pre_ingress\":" << w.num_pre_ingress
      << ",\"num_ipv4_routes\":" << w.num_ipv4_routes
      << ",\"num_ipv6_routes\":" << w.num_ipv6_routes
      << ",\"num_wcmp_groups\":" << w.num_wcmp_groups
      << ",\"num_nexthops\":" << w.num_nexthops
      << ",\"num_neighbors\":" << w.num_neighbors
      << ",\"num_rifs\":" << w.num_rifs
      << ",\"num_acl_ingress\":" << w.num_acl_ingress
      << ",\"num_mirror_sessions\":" << w.num_mirror_sessions
      << ",\"num_egress_rifs\":" << w.num_egress_rifs
      << ",\"num_decap\":" << w.num_decap
      << ",\"num_tunnels\":" << w.num_tunnels << "}}";

  out << ",\"faults\":[";
  bool first = true;
  for (const sut::Fault fault : spec.faults) {
    if (!first) out << ",";
    first = false;
    out << static_cast<int>(fault);
  }
  out << "]";

  const ControlPlaneOptions& cp = spec.control_plane;
  out << ",\"control_plane\":{\"num_requests\":" << cp.num_requests
      << ",\"updates_per_request\":" << cp.updates_per_request
      << ",\"seed\":" << cp.seed << ",\"max_incidents\":" << cp.max_incidents
      << ",\"oracle_cache\":" << (cp.oracle_cache ? "true" : "false");
  // Guidance keys are emitted only when they depart from the defaults, so
  // an unguided spec line (and hence a v2 request envelope's payload) is
  // byte-identical to the previous protocol revision.
  if (cp.guidance != fuzzer::Guidance::kUniform ||
      !cp.guidance_seeds.empty()) {
    const fuzzer::GuidanceOptions& go = cp.guidance_options;
    out << ",\"guidance\":" << static_cast<int>(cp.guidance)
        << ",\"guidance_options\":{\"exploration\":";
    WriteDouble(out, go.exploration);
    out << ",\"plateau_batches\":" << go.plateau_batches
        << ",\"corpus_max\":" << go.corpus_max
        << ",\"harvest_max\":" << go.harvest_max << "}";
    out << ",\"guidance_seeds\":[";
    bool first_seed = true;
    for (const fuzzer::SeedDescriptor& seed : cp.guidance_seeds) {
      if (!first_seed) out << ",";
      first_seed = false;
      out << "{\"table_id\":" << seed.table_id
          << ",\"mutation\":" << seed.mutation
          << ",\"energy\":" << seed.energy << "}";
    }
    out << "]";
  }
  out << ",\"fuzzer\":{\"invalid_probability\":";
  WriteDouble(out, cp.fuzzer.invalid_probability);
  out << ",\"delete_probability\":";
  WriteDouble(out, cp.fuzzer.delete_probability);
  out << ",\"modify_probability\":";
  WriteDouble(out, cp.fuzzer.modify_probability);
  out << ",\"use_bdd_for_constraints\":"
      << (cp.fuzzer.use_bdd_for_constraints ? "true" : "false")
      << ",\"priority_table_bias\":";
  WriteDouble(out, cp.fuzzer.priority_table_bias);
  out << "}}";

  const DataplaneOptions& dp = spec.dataplane;
  out << ",\"dataplane\":{\"coverage\":\"" << CoverageName(dp.coverage)
      << "\",\"max_incidents\":" << dp.max_incidents
      << ",\"packet_out_ports\":" << dp.packet_out_ports
      << ",\"packet_shard\":" << dp.packet_shard
      << ",\"packet_shards\":" << dp.packet_shards
      << ",\"batch_reference\":" << (dp.batch_reference ? "true" : "false");
  // Conditional for the same byte-identity reason as the guidance keys.
  if (dp.coverage_observe) out << ",\"coverage_observe\":true";
  out << "}";

  out << ",\"dataplane_on_fuzzed_state\":"
      << (spec.dataplane_on_fuzzed_state ? "true" : "false")
      << ",\"flight_recorder_capacity\":" << spec.flight_recorder_capacity
      << ",\"trace\":" << (spec.trace ? "true" : "false");

  if (spec.has_packets) {
    out << ",\"packets\":[";
    first = true;
    for (const symbolic::TestPacket& packet : spec.packets) {
      if (!first) out << ",";
      first = false;
      out << "{\"bytes_hex\":\"" << BytesToHex(packet.bytes)
          << "\",\"ingress_port\":" << packet.ingress_port
          << ",\"target_id\":\"" << JsonEscape(packet.target_id) << "\"}";
    }
    out << "]";
  }
  out << "}";
  return out.str();
}

StatusOr<WireShardSpec> ParseShardSpec(std::string_view line) {
  SWITCHV_ASSIGN_OR_RETURN(const Json json, JsonReader::Parse(line));
  constexpr const char* kWhat = "shard spec";
  int version = 0;
  SWITCHV_RETURN_IF_ERROR(GetInt(json, "switchv_shard_spec", kWhat, version));
  if (version != kSpecVersion) {
    return InvalidArgumentError("unsupported shard-spec version " +
                                std::to_string(version));
  }
  WireShardSpec spec;
  std::string name;
  SWITCHV_RETURN_IF_ERROR(GetString(json, "kind", kWhat, name));
  SWITCHV_ASSIGN_OR_RETURN(spec.kind, ParseKindName(name));
  SWITCHV_RETURN_IF_ERROR(GetInt(json, "index", kWhat, spec.index));

  SWITCHV_ASSIGN_OR_RETURN(
      const Json* scenario,
      Require(json, "scenario", Json::Type::kObject, kWhat));
  SWITCHV_RETURN_IF_ERROR(GetString(*scenario, "role", kWhat, name));
  SWITCHV_ASSIGN_OR_RETURN(spec.scenario.role, ParseRoleName(name));
  SWITCHV_RETURN_IF_ERROR(
      GetU64(*scenario, "entry_seed", kWhat, spec.scenario.entry_seed));
  SWITCHV_ASSIGN_OR_RETURN(
      const Json* model,
      Require(*scenario, "model", Json::Type::kObject, kWhat));
  models::ModelOptions& mo = spec.scenario.model;
  SWITCHV_RETURN_IF_ERROR(
      GetBool(*model, "omit_ttl_trap", kWhat, mo.omit_ttl_trap));
  SWITCHV_RETURN_IF_ERROR(
      GetBool(*model, "omit_broadcast_drop", kWhat, mo.omit_broadcast_drop));
  SWITCHV_RETURN_IF_ERROR(
      GetBool(*model, "acl_after_rewrite", kWhat, mo.acl_after_rewrite));
  SWITCHV_RETURN_IF_ERROR(GetBool(*model, "acl_wrong_icmp_field", kWhat,
                                  mo.acl_wrong_icmp_field));
  SWITCHV_ASSIGN_OR_RETURN(
      const Json* workload,
      Require(*scenario, "workload", Json::Type::kObject, kWhat));
  models::WorkloadSpec& w = spec.scenario.workload;
  const struct {
    const char* key;
    int* field;
  } workload_fields[] = {
      {"num_vrfs", &w.num_vrfs},
      {"num_l3_admit", &w.num_l3_admit},
      {"num_pre_ingress", &w.num_pre_ingress},
      {"num_ipv4_routes", &w.num_ipv4_routes},
      {"num_ipv6_routes", &w.num_ipv6_routes},
      {"num_wcmp_groups", &w.num_wcmp_groups},
      {"num_nexthops", &w.num_nexthops},
      {"num_neighbors", &w.num_neighbors},
      {"num_rifs", &w.num_rifs},
      {"num_acl_ingress", &w.num_acl_ingress},
      {"num_mirror_sessions", &w.num_mirror_sessions},
      {"num_egress_rifs", &w.num_egress_rifs},
      {"num_decap", &w.num_decap},
      {"num_tunnels", &w.num_tunnels},
  };
  for (const auto& field : workload_fields) {
    SWITCHV_RETURN_IF_ERROR(GetInt(*workload, field.key, kWhat, *field.field));
  }

  SWITCHV_ASSIGN_OR_RETURN(const Json* faults,
                           Require(json, "faults", Json::Type::kArray, kWhat));
  for (const Json& fault : faults->array) {
    if (fault.type != Json::Type::kNumber) {
      return InvalidArgumentError("shard spec: fault id is not a number");
    }
    const long id = std::strtol(fault.number.c_str(), nullptr, 10);
    if (id < 0 || id >= sut::kNumFaults) {
      return InvalidArgumentError("shard spec: fault id " +
                                  std::to_string(id) + " out of range");
    }
    spec.faults.push_back(static_cast<sut::Fault>(id));
  }

  SWITCHV_ASSIGN_OR_RETURN(
      const Json* cp,
      Require(json, "control_plane", Json::Type::kObject, kWhat));
  SWITCHV_RETURN_IF_ERROR(
      GetInt(*cp, "num_requests", kWhat, spec.control_plane.num_requests));
  SWITCHV_RETURN_IF_ERROR(GetInt(*cp, "updates_per_request", kWhat,
                                 spec.control_plane.updates_per_request));
  SWITCHV_RETURN_IF_ERROR(GetU64(*cp, "seed", kWhat, spec.control_plane.seed));
  SWITCHV_RETURN_IF_ERROR(
      GetInt(*cp, "max_incidents", kWhat, spec.control_plane.max_incidents));
  SWITCHV_RETURN_IF_ERROR(
      GetBool(*cp, "oracle_cache", kWhat, spec.control_plane.oracle_cache));
  if (cp->Find("guidance") != nullptr) {
    int guidance = 0;
    SWITCHV_RETURN_IF_ERROR(GetInt(*cp, "guidance", kWhat, guidance));
    if (guidance < 0 || guidance > 1) {
      return InvalidArgumentError("shard spec: guidance " +
                                  std::to_string(guidance) + " out of range");
    }
    spec.control_plane.guidance = static_cast<fuzzer::Guidance>(guidance);
    SWITCHV_ASSIGN_OR_RETURN(
        const Json* go,
        Require(*cp, "guidance_options", Json::Type::kObject, kWhat));
    fuzzer::GuidanceOptions& opts = spec.control_plane.guidance_options;
    SWITCHV_RETURN_IF_ERROR(
        GetDouble(*go, "exploration", kWhat, opts.exploration));
    SWITCHV_RETURN_IF_ERROR(
        GetInt(*go, "plateau_batches", kWhat, opts.plateau_batches));
    SWITCHV_RETURN_IF_ERROR(GetInt(*go, "corpus_max", kWhat, opts.corpus_max));
    SWITCHV_RETURN_IF_ERROR(
        GetInt(*go, "harvest_max", kWhat, opts.harvest_max));
    SWITCHV_ASSIGN_OR_RETURN(
        const Json* seeds,
        Require(*cp, "guidance_seeds", Json::Type::kArray, kWhat));
    spec.control_plane.guidance_seeds.reserve(seeds->array.size());
    for (const Json& seed : seeds->array) {
      SWITCHV_ASSIGN_OR_RETURN(fuzzer::SeedDescriptor parsed,
                               ParseSeedDescriptor(seed));
      spec.control_plane.guidance_seeds.push_back(parsed);
    }
  }
  SWITCHV_ASSIGN_OR_RETURN(
      const Json* fuzzer, Require(*cp, "fuzzer", Json::Type::kObject, kWhat));
  fuzzer::FuzzerOptions& fo = spec.control_plane.fuzzer;
  SWITCHV_RETURN_IF_ERROR(GetDouble(*fuzzer, "invalid_probability", kWhat,
                                    fo.invalid_probability));
  SWITCHV_RETURN_IF_ERROR(
      GetDouble(*fuzzer, "delete_probability", kWhat, fo.delete_probability));
  SWITCHV_RETURN_IF_ERROR(
      GetDouble(*fuzzer, "modify_probability", kWhat, fo.modify_probability));
  SWITCHV_RETURN_IF_ERROR(GetBool(*fuzzer, "use_bdd_for_constraints", kWhat,
                                  fo.use_bdd_for_constraints));
  SWITCHV_RETURN_IF_ERROR(GetDouble(*fuzzer, "priority_table_bias", kWhat,
                                    fo.priority_table_bias));

  SWITCHV_ASSIGN_OR_RETURN(
      const Json* dp, Require(json, "dataplane", Json::Type::kObject, kWhat));
  SWITCHV_RETURN_IF_ERROR(GetString(*dp, "coverage", kWhat, name));
  SWITCHV_ASSIGN_OR_RETURN(spec.dataplane.coverage, ParseCoverageName(name));
  SWITCHV_RETURN_IF_ERROR(
      GetInt(*dp, "max_incidents", kWhat, spec.dataplane.max_incidents));
  SWITCHV_RETURN_IF_ERROR(GetInt(*dp, "packet_out_ports", kWhat,
                                 spec.dataplane.packet_out_ports));
  SWITCHV_RETURN_IF_ERROR(
      GetInt(*dp, "packet_shard", kWhat, spec.dataplane.packet_shard));
  SWITCHV_RETURN_IF_ERROR(
      GetInt(*dp, "packet_shards", kWhat, spec.dataplane.packet_shards));
  SWITCHV_RETURN_IF_ERROR(GetBool(*dp, "batch_reference", kWhat,
                                  spec.dataplane.batch_reference));
  if (dp->Find("coverage_observe") != nullptr) {
    SWITCHV_RETURN_IF_ERROR(GetBool(*dp, "coverage_observe", kWhat,
                                    spec.dataplane.coverage_observe));
  }

  SWITCHV_RETURN_IF_ERROR(GetBool(json, "dataplane_on_fuzzed_state", kWhat,
                                  spec.dataplane_on_fuzzed_state));
  SWITCHV_RETURN_IF_ERROR(GetInt(json, "flight_recorder_capacity", kWhat,
                                 spec.flight_recorder_capacity));
  SWITCHV_RETURN_IF_ERROR(GetBool(json, "trace", kWhat, spec.trace));

  if (const Json* packets = json.Find("packets"); packets != nullptr) {
    if (packets->type != Json::Type::kArray) {
      return InvalidArgumentError("shard spec: 'packets' is not an array");
    }
    spec.has_packets = true;
    spec.packets.reserve(packets->array.size());
    for (const Json& packet : packets->array) {
      symbolic::TestPacket parsed;
      std::string hex;
      SWITCHV_RETURN_IF_ERROR(GetString(packet, "bytes_hex", kWhat, hex));
      SWITCHV_ASSIGN_OR_RETURN(parsed.bytes, HexToBytes(hex));
      int port = 0;
      SWITCHV_RETURN_IF_ERROR(GetInt(packet, "ingress_port", kWhat, port));
      if (port < 0 || port > UINT16_MAX) {
        return InvalidArgumentError("shard spec: ingress_port out of range");
      }
      parsed.ingress_port = static_cast<std::uint16_t>(port);
      SWITCHV_RETURN_IF_ERROR(
          GetString(packet, "target_id", kWhat, parsed.target_id));
      spec.packets.push_back(std::move(parsed));
    }
  }
  return spec;
}

std::string SerializeShardResult(const WireShardResult& result) {
  std::ostringstream out;
  out << "{\"switchv_shard_result\":" << kResultVersion
      << ",\"index\":" << result.index << ",\"incidents\":[";
  bool first = true;
  for (const Incident& incident : result.incidents) {
    if (!first) out << ",";
    first = false;
    WriteIncident(out, incident);
  }
  out << "],\"fuzzed_updates\":" << result.fuzzed_updates
      << ",\"packets_tested\":" << result.packets_tested
      << ",\"generation\":{\"targets_total\":" << result.generation.targets_total
      << ",\"targets_covered\":" << result.generation.targets_covered
      << ",\"targets_infeasible\":" << result.generation.targets_infeasible
      << ",\"solver_queries\":" << result.generation.solver_queries
      << ",\"cache_hit\":" << (result.generation.cache_hit ? "true" : "false")
      << "},\"metrics\":" << result.metrics.ToWireJson() << ",\"spans\":[";
  first = true;
  for (const TraceSpan& span : result.spans) {
    if (!first) out << ",";
    first = false;
    WriteSpan(out, span);
  }
  out << "]";
  // Conditional: an unguided result line carries no seeds key, keeping its
  // bytes identical to the previous protocol revision.
  if (!result.seeds.empty()) {
    out << ",\"seeds\":[";
    first = true;
    for (const fuzzer::SeedDescriptor& seed : result.seeds) {
      if (!first) out << ",";
      first = false;
      out << "{\"table_id\":" << seed.table_id
          << ",\"mutation\":" << seed.mutation
          << ",\"energy\":" << seed.energy << "}";
    }
    out << "]";
  }
  out << "}";
  return out.str();
}

StatusOr<WireShardResult> ParseShardResult(std::string_view line) {
  SWITCHV_ASSIGN_OR_RETURN(const Json json, JsonReader::Parse(line));
  constexpr const char* kWhat = "shard result";
  int version = 0;
  SWITCHV_RETURN_IF_ERROR(
      GetInt(json, "switchv_shard_result", kWhat, version));
  if (version != kResultVersion) {
    return InvalidArgumentError("unsupported shard-result version " +
                                std::to_string(version));
  }
  WireShardResult result;
  SWITCHV_RETURN_IF_ERROR(GetInt(json, "index", kWhat, result.index));
  SWITCHV_ASSIGN_OR_RETURN(
      const Json* incidents,
      Require(json, "incidents", Json::Type::kArray, kWhat));
  result.incidents.reserve(incidents->array.size());
  for (const Json& incident : incidents->array) {
    SWITCHV_ASSIGN_OR_RETURN(Incident parsed, ParseIncident(incident));
    result.incidents.push_back(std::move(parsed));
  }
  SWITCHV_RETURN_IF_ERROR(
      GetInt(json, "fuzzed_updates", kWhat, result.fuzzed_updates));
  SWITCHV_RETURN_IF_ERROR(
      GetInt(json, "packets_tested", kWhat, result.packets_tested));
  SWITCHV_ASSIGN_OR_RETURN(
      const Json* generation,
      Require(json, "generation", Json::Type::kObject, kWhat));
  SWITCHV_RETURN_IF_ERROR(GetInt(*generation, "targets_total", kWhat,
                                 result.generation.targets_total));
  SWITCHV_RETURN_IF_ERROR(GetInt(*generation, "targets_covered", kWhat,
                                 result.generation.targets_covered));
  SWITCHV_RETURN_IF_ERROR(GetInt(*generation, "targets_infeasible", kWhat,
                                 result.generation.targets_infeasible));
  SWITCHV_RETURN_IF_ERROR(GetInt(*generation, "solver_queries", kWhat,
                                 result.generation.solver_queries));
  SWITCHV_RETURN_IF_ERROR(
      GetBool(*generation, "cache_hit", kWhat, result.generation.cache_hit));
  SWITCHV_ASSIGN_OR_RETURN(
      const Json* metrics,
      Require(json, "metrics", Json::Type::kObject, kWhat));
  SWITCHV_RETURN_IF_ERROR(ParseWireMetrics(*metrics, result.metrics));
  SWITCHV_ASSIGN_OR_RETURN(const Json* spans,
                           Require(json, "spans", Json::Type::kArray, kWhat));
  result.spans.reserve(spans->array.size());
  for (const Json& span : spans->array) {
    SWITCHV_ASSIGN_OR_RETURN(TraceSpan parsed, ParseSpan(span));
    result.spans.push_back(std::move(parsed));
  }
  if (const Json* seeds = json.Find("seeds"); seeds != nullptr) {
    if (seeds->type != Json::Type::kArray) {
      return InvalidArgumentError("shard result: 'seeds' is not an array");
    }
    result.seeds.reserve(seeds->array.size());
    for (const Json& seed : seeds->array) {
      SWITCHV_ASSIGN_OR_RETURN(fuzzer::SeedDescriptor parsed,
                               ParseSeedDescriptor(seed));
      result.seeds.push_back(parsed);
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// Live telemetry samples
// ---------------------------------------------------------------------------

namespace {
// Bump together with any incompatible sample change; parsers reject other
// versions (a stale host forwarding to a newer coordinator must fail
// loudly, not merge garbage into the rolling view).
constexpr int kTelemetryVersion = 1;
constexpr std::string_view kTelemetryPreamble = "{\"switchv_telemetry\":";
}  // namespace

bool LooksLikeTelemetrySample(std::string_view line) {
  return line.substr(0, kTelemetryPreamble.size()) == kTelemetryPreamble;
}

std::string SerializeTelemetrySample(const TelemetrySample& sample) {
  std::ostringstream out;
  out << kTelemetryPreamble << kTelemetryVersion
      << ",\"shard\":" << sample.shard << ",\"seq\":" << sample.seq
      << ",\"delta\":" << sample.delta.ToWireJson() << ",\"spans\":[";
  bool first = true;
  for (const TraceSpan& span : sample.spans) {
    if (!first) out << ",";
    first = false;
    WriteSpan(out, span);
  }
  out << "]}";
  return out.str();
}

StatusOr<TelemetrySample> ParseTelemetrySample(std::string_view line) {
  SWITCHV_ASSIGN_OR_RETURN(const Json json, JsonReader::Parse(line));
  constexpr const char* kWhat = "telemetry sample";
  int version = 0;
  SWITCHV_RETURN_IF_ERROR(
      GetInt(json, "switchv_telemetry", kWhat, version));
  if (version != kTelemetryVersion) {
    return InvalidArgumentError("unsupported telemetry-sample version " +
                                std::to_string(version));
  }
  TelemetrySample sample;
  SWITCHV_RETURN_IF_ERROR(GetInt(json, "shard", kWhat, sample.shard));
  SWITCHV_RETURN_IF_ERROR(GetU64(json, "seq", kWhat, sample.seq));
  SWITCHV_ASSIGN_OR_RETURN(
      const Json* delta, Require(json, "delta", Json::Type::kObject, kWhat));
  SWITCHV_RETURN_IF_ERROR(ParseWireMetrics(*delta, sample.delta));
  SWITCHV_ASSIGN_OR_RETURN(const Json* spans,
                           Require(json, "spans", Json::Type::kArray, kWhat));
  sample.spans.reserve(spans->array.size());
  for (const Json& span : spans->array) {
    SWITCHV_ASSIGN_OR_RETURN(TraceSpan parsed, ParseSpan(span));
    sample.spans.push_back(std::move(parsed));
  }
  return sample;
}

// ---------------------------------------------------------------------------
// Worker process runner
// ---------------------------------------------------------------------------

namespace {

void CloseFd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

// A worker can die before draining its stdin; the resulting EPIPE must
// surface as a write error, not a SIGPIPE that kills the campaign.
void IgnoreSigpipeOnce() {
  static const bool ignored = [] {
    ::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)ignored;
}

// Reaps the child: polls for a voluntary exit until `deadline`, SIGKILLs
// on overrun, then waits *unconditionally*. The child is always waitpid'd
// on every path — a SIGKILLed-but-abandoned child would sit in the process
// table as a zombie, and a nightly campaign times out enough wedged workers
// for that to accumulate into pid exhaustion. SIGKILL cannot be caught or
// ignored, so the final blocking wait terminates (the only exception — a
// child wedged in uninterruptible kernel sleep — would leak a zombie either
// way; waiting is the conservative choice). Returns the waitpid status and
// sets `killed` if this function fired the kill.
int ReapChild(pid_t pid, std::chrono::steady_clock::time_point deadline,
              bool* killed) {
  int status = 0;
  while (!*killed) {
    const pid_t reaped = ::waitpid(pid, &status, WNOHANG);
    if (reaped == pid) return status;
    if (reaped < 0 && errno == EINTR) continue;
    if (reaped < 0) break;  // ECHILD: fall through to the final wait
    if (std::chrono::steady_clock::now() >= deadline) {
      ::kill(pid, SIGKILL);
      *killed = true;
      break;
    }
    ::usleep(2000);
  }
  // The child was SIGKILLed (here or by the caller before the call): block
  // until it is reaped so no zombie survives the shard.
  while (true) {
    const pid_t reaped = ::waitpid(pid, &status, 0);
    if (reaped == pid) return status;
    if (reaped < 0 && errno == EINTR) continue;
    return -1;  // ECHILD: already reaped elsewhere; nothing left to leak
  }
}

}  // namespace

WorkerProcessResult RunWorkerProcess(const std::string& binary,
                                     const std::vector<std::string>& extra_args,
                                     std::string_view stdin_payload,
                                     double timeout_seconds) {
  return RunWorkerProcess(binary, extra_args, stdin_payload, timeout_seconds,
                          nullptr);
}

WorkerProcessResult RunWorkerProcess(
    const std::string& binary, const std::vector<std::string>& extra_args,
    std::string_view stdin_payload, double timeout_seconds,
    const std::function<void(std::string_view)>& on_stdout) {
  IgnoreSigpipeOnce();
  WorkerProcessResult result;

  int in_pipe[2] = {-1, -1};   // parent writes spec -> child stdin
  int out_pipe[2] = {-1, -1};  // child stdout -> parent reads result
  if (::pipe(in_pipe) != 0 || ::pipe(out_pipe) != 0) {
    result.error = std::string("pipe: ") + std::strerror(errno);
    CloseFd(in_pipe[0]);
    CloseFd(in_pipe[1]);
    return result;
  }

  std::vector<char*> argv;
  argv.push_back(const_cast<char*>(binary.c_str()));
  for (const std::string& arg : extra_args) {
    argv.push_back(const_cast<char*>(arg.c_str()));
  }
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    result.error = std::string("fork: ") + std::strerror(errno);
    CloseFd(in_pipe[0]);
    CloseFd(in_pipe[1]);
    CloseFd(out_pipe[0]);
    CloseFd(out_pipe[1]);
    return result;
  }
  if (pid == 0) {
    // Child: wire the pipes to stdin/stdout (stderr is inherited) and exec.
    ::dup2(in_pipe[0], STDIN_FILENO);
    ::dup2(out_pipe[1], STDOUT_FILENO);
    ::close(in_pipe[0]);
    ::close(in_pipe[1]);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    ::execv(binary.c_str(), argv.data());
    // Exec failed; 127 is the shell's convention for "command not found".
    std::fprintf(stderr, "switchv shard worker exec '%s' failed: %s\n",
                 binary.c_str(), std::strerror(errno));
    ::_exit(127);
  }

  // Parent.
  CloseFd(in_pipe[0]);
  CloseFd(out_pipe[1]);
  int write_fd = in_pipe[1];
  int read_fd = out_pipe[0];
  ::fcntl(write_fd, F_SETFL, O_NONBLOCK);
  ::fcntl(read_fd, F_SETFL, O_NONBLOCK);

  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_seconds > 0 ? timeout_seconds
                                                            : 0.001));
  std::size_t written = 0;
  bool timed_out = false;
  char buffer[65536];

  // One poll loop drives both directions: the spec may exceed the pipe
  // buffer (packet-laden dataplane shards), so the parent must keep
  // draining stdout while it is still feeding stdin.
  while (read_fd >= 0) {
    struct pollfd fds[2];
    int nfds = 0;
    int read_slot = -1;
    int write_slot = -1;
    if (read_fd >= 0) {
      read_slot = nfds;
      fds[nfds].fd = read_fd;
      fds[nfds].events = POLLIN;
      fds[nfds].revents = 0;
      ++nfds;
    }
    if (write_fd >= 0) {
      write_slot = nfds;
      fds[nfds].fd = write_fd;
      fds[nfds].events = POLLOUT;
      fds[nfds].revents = 0;
      ++nfds;
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      timed_out = true;
      break;
    }
    const int remaining_ms = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count());
    const int ready = ::poll(fds, static_cast<nfds_t>(nfds),
                             remaining_ms > 0 ? remaining_ms : 1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) {
      timed_out = true;
      break;
    }
    if (write_slot >= 0 &&
        (fds[write_slot].revents & (POLLOUT | POLLERR | POLLHUP)) != 0) {
      const ssize_t n =
          ::write(write_fd, stdin_payload.data() + written,
                  stdin_payload.size() - written);
      if (n > 0) written += static_cast<std::size_t>(n);
      const bool failed = n < 0 && errno != EAGAIN && errno != EINTR;
      if (failed || written >= stdin_payload.size()) {
        CloseFd(write_fd);  // EOF tells the worker the spec is complete
      }
    }
    if (read_slot >= 0 && (fds[read_slot].revents & (POLLIN | POLLHUP)) != 0) {
      const ssize_t n = ::read(read_fd, buffer, sizeof(buffer));
      if (n > 0) {
        if (on_stdout) {
          on_stdout(std::string_view(buffer, static_cast<std::size_t>(n)));
        }
        result.stdout_data.append(buffer, static_cast<std::size_t>(n));
      } else if (n == 0 || (n < 0 && errno != EAGAIN && errno != EINTR)) {
        CloseFd(read_fd);  // EOF: the child closed stdout (usually: exited)
      }
    }
  }
  CloseFd(write_fd);
  CloseFd(read_fd);

  bool killed = false;
  if (timed_out) {
    ::kill(pid, SIGKILL);
    killed = true;
  }
  const int status = ReapChild(
      pid,
      timed_out ? std::chrono::steady_clock::now() + std::chrono::seconds(5)
                : deadline,
      &killed);
  if (timed_out || (killed && !timed_out)) {
    result.outcome = WorkerProcessResult::Outcome::kTimedOut;
    return result;
  }
  if (status >= 0 && WIFEXITED(status)) {
    result.outcome = WorkerProcessResult::Outcome::kExited;
    result.exit_code = WEXITSTATUS(status);
    return result;
  }
  if (status >= 0 && WIFSIGNALED(status)) {
    result.outcome = WorkerProcessResult::Outcome::kSignaled;
    result.term_signal = WTERMSIG(status);
    return result;
  }
  result.outcome = WorkerProcessResult::Outcome::kSpawnFailed;
  result.error = "worker process could not be reaped";
  return result;
}

}  // namespace switchv
