// Flight recorder: the bounded replay trace behind every incident.
//
// When production SwitchV reports a divergence, the first question an
// operator asks is "what did the controller do to the switch right before
// this?" (paper §8 — incident logs exist to be root-caused by humans). The
// flight recorder answers it: each campaign shard keeps a small ring buffer
// of the control-plane updates and data-plane packets it sent, each stamped
// with the deepest SUT layer the operation reached (sut/layer_probe.h).
// Every incident the shard raises carries a rendering of this buffer plus
// the layer attribution — the reproduction's analogue of the paper's
// Table 1 layer split, derived per incident instead of per bug.
//
// One recorder per shard, single-threaded, always on (a bounded ring of
// small structs is noise next to a switch write); capacity is a
// CampaignOptions knob.
#ifndef SWITCHV_SWITCHV_RECORDER_H_
#define SWITCHV_SWITCHV_RECORDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sut/layer_probe.h"

namespace switchv {

struct FlightEvent {
  enum class Kind {
    kConfigPush,
    kWrite,
    kRead,
    kPacket,
    kPacketOut,
  };
  Kind kind = Kind::kWrite;
  // Monotonic per-recorder sequence number, assigned by Record(); survives
  // wraparound so a rendered excerpt shows how far into the run it sits.
  std::uint64_t seq = 0;
  int units = 0;     // updates in the batch / 1 for packets
  int rejected = 0;  // units with a non-ok status
  sut::SutLayer deepest = sut::SutLayer::kNone;
  sut::SutLayer failed_deepest = sut::SutLayer::kNone;
  std::string note;  // short content summary ("fuzz batch 7", target id...)
};

std::string_view FlightEventKindName(FlightEvent::Kind kind);

class FlightRecorder {
 public:
  explicit FlightRecorder(int capacity)
      : capacity_(capacity < 1 ? 1 : capacity) {}

  // Records one event, overwriting the oldest once the ring is full.
  void Record(FlightEvent event);

  // Convenience: stamps kind/units/rejected/note plus the probe's
  // per-operation layer summary.
  void RecordOperation(FlightEvent::Kind kind, const sut::StackProbe& probe,
                       int rejected, std::string note);

  // Buffered events, oldest first.
  std::vector<FlightEvent> Snapshot() const;

  // Human-readable excerpt for incident reports, oldest first, e.g.:
  //   flight recorder (last 3 of 41 operations):
  //     #39 write  50 updates (12 rejected)  reached=asic failed@=p4rt-server  fuzz batch 38
  //     #40 read                             reached=p4rt-server
  //     #41 packet                           reached=asic  target ipv4_tbl.entry[3]
  std::string Render() const;

  std::uint64_t total_recorded() const { return next_seq_; }
  int capacity() const { return capacity_; }

 private:
  const int capacity_;
  std::uint64_t next_seq_ = 0;
  std::vector<FlightEvent> ring_;  // grows to capacity_, then wraps
  std::size_t write_pos_ = 0;
};

}  // namespace switchv

#endif  // SWITCHV_SWITCHV_RECORDER_H_
