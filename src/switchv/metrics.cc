#include "switchv/metrics.h"

#include <iomanip>
#include <sstream>

namespace switchv {

namespace {

double Seconds(std::uint64_t ns) { return static_cast<double>(ns) * 1e-9; }

}  // namespace

MetricsSnapshot Metrics::Snapshot(double wall_seconds) const {
  MetricsSnapshot s;
  s.shards_completed = shards_completed.load(std::memory_order_relaxed);
  s.wall_seconds = wall_seconds;
  s.updates_sent = updates_sent.load(std::memory_order_relaxed);
  s.requests_sent = requests_sent.load(std::memory_order_relaxed);
  s.generated_valid = generated_valid.load(std::memory_order_relaxed);
  s.generated_invalid = generated_invalid.load(std::memory_order_relaxed);
  s.oracle_findings = oracle_findings.load(std::memory_order_relaxed);
  s.packets_tested = packets_tested.load(std::memory_order_relaxed);
  s.solver_queries = solver_queries.load(std::memory_order_relaxed);
  s.generation_cache_hits =
      generation_cache_hits.load(std::memory_order_relaxed);
  s.switch_writes = switch_writes.load(std::memory_order_relaxed);
  s.switch_reads = switch_reads.load(std::memory_order_relaxed);
  s.switch_packets_injected =
      switch_packets_injected.load(std::memory_order_relaxed);
  s.incidents_raised = incidents_raised.load(std::memory_order_relaxed);
  s.incidents_unique = incidents_unique.load(std::memory_order_relaxed);
  s.switch_write_ns = switch_write_ns.load(std::memory_order_relaxed);
  s.oracle_ns = oracle_ns.load(std::memory_order_relaxed);
  s.reference_ns = reference_ns.load(std::memory_order_relaxed);
  s.generation_ns = generation_ns.load(std::memory_order_relaxed);
  return s;
}

std::string MetricsSnapshot::ToString() const {
  std::ostringstream out;
  out << std::fixed;
  out << "campaign stats: " << shards_completed << " shards, wall "
      << std::setprecision(2) << wall_seconds << "s\n";
  out << "  control-plane: " << updates_sent << " updates / " << requests_sent
      << " requests (" << std::setprecision(0) << updates_per_second()
      << " updates/s), generator " << generated_valid << " valid + "
      << generated_invalid << " mutated, oracle " << oracle_findings
      << " findings\n";
  out << "  data-plane:    " << packets_tested << " packets ("
      << std::setprecision(0) << packets_per_second() << " packets/s), "
      << solver_queries << " solver queries, " << generation_cache_hits
      << " cache hits\n";
  out << "  switch io:     " << switch_writes << " writes, " << switch_reads
      << " reads, " << switch_packets_injected << " packets injected\n";
  out << "  phase time:    " << std::setprecision(3) << "switch-write "
      << Seconds(switch_write_ns) << "s, oracle " << Seconds(oracle_ns)
      << "s, reference-sim " << Seconds(reference_ns) << "s, packet-gen "
      << Seconds(generation_ns) << "s\n";
  out << "  incidents:     " << incidents_raised << " raised -> "
      << incidents_unique << " unique fingerprints";
  return out.str();
}

}  // namespace switchv
