#include "switchv/metrics.h"

#include <cstdint>
#include <iomanip>
#include <limits>
#include <sstream>
#include <string>

namespace switchv {

namespace {

double Seconds(std::uint64_t ns) { return static_cast<double>(ns) * 1e-9; }

// Prometheus wants finite floats with no locale surprises; fixed precision
// keeps the output diffable across runs.
void AppendDouble(std::ostringstream& out, double value) {
  out << std::fixed << std::setprecision(6) << value;
}

struct PhaseHistogram {
  const char* name;
  const HistogramSnapshot* hist;
  std::uint64_t total_ns;
};

}  // namespace

std::uint64_t HistogramBucketUpperNs(int i) {
  if (i >= kHistogramBuckets - 1) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return static_cast<std::uint64_t>(1000) << i;
}

void LatencyHistogram::Record(std::uint64_t ns) {
  int bucket = 0;
  while (bucket < kHistogramBuckets - 1 &&
         ns > HistogramBucketUpperNs(bucket)) {
    ++bucket;
  }
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(ns, std::memory_order_relaxed);
}

void LatencyHistogram::Merge(const HistogramSnapshot& snapshot) {
  for (int i = 0; i < kHistogramBuckets; ++i) {
    if (snapshot.counts[i] != 0) {
      counts_[i].fetch_add(snapshot.counts[i], std::memory_order_relaxed);
    }
  }
  if (snapshot.sum_ns != 0) {
    sum_ns_.fetch_add(snapshot.sum_ns, std::memory_order_relaxed);
  }
}

HistogramSnapshot LatencyHistogram::Snapshot() const {
  HistogramSnapshot s;
  for (int i = 0; i < kHistogramBuckets; ++i) {
    s.counts[i] = counts_[i].load(std::memory_order_relaxed);
    s.count += s.counts[i];
  }
  s.sum_ns = sum_ns_.load(std::memory_order_relaxed);
  return s;
}

std::uint64_t HistogramSnapshot::PercentileNs(double p) const {
  if (count == 0) return 0;
  if (p <= 0) p = 0;
  if (p > 1) p = 1;
  // Rank of the requested observation (1-based, ceil).
  const std::uint64_t rank = static_cast<std::uint64_t>(
      p * static_cast<double>(count) + 0.999999);
  std::uint64_t cumulative = 0;
  for (int i = 0; i < kHistogramBuckets; ++i) {
    if (counts[i] == 0) continue;
    const std::uint64_t next = cumulative + counts[i];
    if (rank <= next) {
      const std::uint64_t lower = i == 0 ? 0 : HistogramBucketUpperNs(i - 1);
      std::uint64_t upper = HistogramBucketUpperNs(i);
      // Overflow bucket has no finite upper bound; report its lower edge.
      if (i == kHistogramBuckets - 1) return lower;
      // Linear interpolation inside the bucket.
      const double fraction =
          static_cast<double>(rank - cumulative) /
          static_cast<double>(counts[i]);
      return lower + static_cast<std::uint64_t>(
                         fraction * static_cast<double>(upper - lower));
    }
    cumulative = next;
  }
  return 0;
}

void Metrics::Merge(const MetricsSnapshot& s) {
  Add(updates_sent, s.updates_sent);
  Add(requests_sent, s.requests_sent);
  Add(generated_valid, s.generated_valid);
  Add(generated_invalid, s.generated_invalid);
  Add(oracle_findings, s.oracle_findings);
  Add(packets_tested, s.packets_tested);
  Add(solver_queries, s.solver_queries);
  Add(generation_cache_hits, s.generation_cache_hits);
  Add(batch_lanes_run, s.batch_lanes_run);
  Add(batch_scalar_fallbacks, s.batch_scalar_fallbacks);
  Add(reference_packets, s.reference_packets);
  Add(oracle_cache_hits, s.oracle_cache_hits);
  Add(oracle_cache_misses, s.oracle_cache_misses);
  Add(oracle_cache_evictions, s.oracle_cache_evictions);
  Add(coverage_edges_total, s.coverage_edges_total);
  Add(coverage_new_edges, s.coverage_new_edges);
  Add(switch_writes, s.switch_writes);
  Add(switch_reads, s.switch_reads);
  Add(switch_packets_injected, s.switch_packets_injected);
  Add(shards_lost, s.shards_lost);
  Add(worker_crashes, s.worker_crashes);
  Add(worker_timeouts, s.worker_timeouts);
  Add(worker_retries, s.worker_retries);
  Add(switch_write_ns, s.switch_write_ns);
  Add(oracle_ns, s.oracle_ns);
  Add(reference_ns, s.reference_ns);
  Add(generation_ns, s.generation_ns);
  switch_write_hist.Merge(s.switch_write_hist);
  oracle_hist.Merge(s.oracle_hist);
  reference_hist.Merge(s.reference_hist);
  generation_hist.Merge(s.generation_hist);
}

MetricsSnapshot Metrics::Snapshot(double wall_seconds) const {
  MetricsSnapshot s;
  s.shards_completed = shards_completed.load(std::memory_order_relaxed);
  s.wall_seconds = wall_seconds;
  s.updates_sent = updates_sent.load(std::memory_order_relaxed);
  s.requests_sent = requests_sent.load(std::memory_order_relaxed);
  s.generated_valid = generated_valid.load(std::memory_order_relaxed);
  s.generated_invalid = generated_invalid.load(std::memory_order_relaxed);
  s.oracle_findings = oracle_findings.load(std::memory_order_relaxed);
  s.packets_tested = packets_tested.load(std::memory_order_relaxed);
  s.solver_queries = solver_queries.load(std::memory_order_relaxed);
  s.generation_cache_hits =
      generation_cache_hits.load(std::memory_order_relaxed);
  s.batch_lanes_run = batch_lanes_run.load(std::memory_order_relaxed);
  s.batch_scalar_fallbacks =
      batch_scalar_fallbacks.load(std::memory_order_relaxed);
  s.reference_packets = reference_packets.load(std::memory_order_relaxed);
  s.oracle_cache_hits = oracle_cache_hits.load(std::memory_order_relaxed);
  s.oracle_cache_misses =
      oracle_cache_misses.load(std::memory_order_relaxed);
  s.oracle_cache_evictions =
      oracle_cache_evictions.load(std::memory_order_relaxed);
  s.coverage_edges_total =
      coverage_edges_total.load(std::memory_order_relaxed);
  s.coverage_new_edges = coverage_new_edges.load(std::memory_order_relaxed);
  s.seeds_exchanged = seeds_exchanged.load(std::memory_order_relaxed);
  s.switch_writes = switch_writes.load(std::memory_order_relaxed);
  s.switch_reads = switch_reads.load(std::memory_order_relaxed);
  s.switch_packets_injected =
      switch_packets_injected.load(std::memory_order_relaxed);
  s.incidents_raised = incidents_raised.load(std::memory_order_relaxed);
  s.incidents_unique = incidents_unique.load(std::memory_order_relaxed);
  s.shards_lost = shards_lost.load(std::memory_order_relaxed);
  s.worker_crashes = worker_crashes.load(std::memory_order_relaxed);
  s.worker_timeouts = worker_timeouts.load(std::memory_order_relaxed);
  s.worker_retries = worker_retries.load(std::memory_order_relaxed);
  s.remote_reconnects = remote_reconnects.load(std::memory_order_relaxed);
  s.hosts_retired = hosts_retired.load(std::memory_order_relaxed);
  s.switch_write_ns = switch_write_ns.load(std::memory_order_relaxed);
  s.oracle_ns = oracle_ns.load(std::memory_order_relaxed);
  s.reference_ns = reference_ns.load(std::memory_order_relaxed);
  s.generation_ns = generation_ns.load(std::memory_order_relaxed);
  s.switch_write_hist = switch_write_hist.Snapshot();
  s.oracle_hist = oracle_hist.Snapshot();
  s.reference_hist = reference_hist.Snapshot();
  s.generation_hist = generation_hist.Snapshot();
  return s;
}

namespace {

std::uint64_t ClampedSub(std::uint64_t now, std::uint64_t then) {
  return now >= then ? now - then : 0;
}

HistogramSnapshot HistDelta(const HistogramSnapshot& now,
                            const HistogramSnapshot& then) {
  HistogramSnapshot delta;
  for (int i = 0; i < kHistogramBuckets; ++i) {
    delta.counts[i] = ClampedSub(now.counts[i], then.counts[i]);
    delta.count += delta.counts[i];
  }
  delta.sum_ns = ClampedSub(now.sum_ns, then.sum_ns);
  return delta;
}

void HistAccumulate(HistogramSnapshot& into, const HistogramSnapshot& delta) {
  for (int i = 0; i < kHistogramBuckets; ++i) {
    into.counts[i] += delta.counts[i];
    into.count += delta.counts[i];
  }
  into.sum_ns += delta.sum_ns;
}

// One authoritative walk over every counter field, pairwise, so a new
// counter cannot be subtracted in DeltaSince but forgotten in Accumulate
// (or vice versa). `fn(mine, theirs)` runs once per field.
template <typename Fn>
void ZipCounterFields(MetricsSnapshot& a, const MetricsSnapshot& b, Fn&& fn) {
  fn(a.shards_completed, b.shards_completed);
  fn(a.updates_sent, b.updates_sent);
  fn(a.requests_sent, b.requests_sent);
  fn(a.generated_valid, b.generated_valid);
  fn(a.generated_invalid, b.generated_invalid);
  fn(a.oracle_findings, b.oracle_findings);
  fn(a.packets_tested, b.packets_tested);
  fn(a.solver_queries, b.solver_queries);
  fn(a.generation_cache_hits, b.generation_cache_hits);
  fn(a.batch_lanes_run, b.batch_lanes_run);
  fn(a.batch_scalar_fallbacks, b.batch_scalar_fallbacks);
  fn(a.reference_packets, b.reference_packets);
  fn(a.oracle_cache_hits, b.oracle_cache_hits);
  fn(a.oracle_cache_misses, b.oracle_cache_misses);
  fn(a.oracle_cache_evictions, b.oracle_cache_evictions);
  fn(a.coverage_edges_total, b.coverage_edges_total);
  fn(a.coverage_new_edges, b.coverage_new_edges);
  fn(a.seeds_exchanged, b.seeds_exchanged);
  fn(a.switch_writes, b.switch_writes);
  fn(a.switch_reads, b.switch_reads);
  fn(a.switch_packets_injected, b.switch_packets_injected);
  fn(a.incidents_raised, b.incidents_raised);
  fn(a.incidents_unique, b.incidents_unique);
  fn(a.shards_lost, b.shards_lost);
  fn(a.worker_crashes, b.worker_crashes);
  fn(a.worker_timeouts, b.worker_timeouts);
  fn(a.worker_retries, b.worker_retries);
  fn(a.remote_reconnects, b.remote_reconnects);
  fn(a.hosts_retired, b.hosts_retired);
  fn(a.switch_write_ns, b.switch_write_ns);
  fn(a.oracle_ns, b.oracle_ns);
  fn(a.reference_ns, b.reference_ns);
  fn(a.generation_ns, b.generation_ns);
}

}  // namespace

MetricsSnapshot MetricsSnapshot::DeltaSince(const MetricsSnapshot& prev) const {
  MetricsSnapshot delta = *this;
  ZipCounterFields(delta, prev,
                   [](std::uint64_t& now, const std::uint64_t& then) {
                     now = ClampedSub(now, then);
                   });
  delta.wall_seconds = 0;
  delta.switch_write_hist = HistDelta(switch_write_hist,
                                      prev.switch_write_hist);
  delta.oracle_hist = HistDelta(oracle_hist, prev.oracle_hist);
  delta.reference_hist = HistDelta(reference_hist, prev.reference_hist);
  delta.generation_hist = HistDelta(generation_hist, prev.generation_hist);
  return delta;
}

void MetricsSnapshot::Accumulate(const MetricsSnapshot& delta) {
  ZipCounterFields(*this, delta,
                   [](std::uint64_t& into, const std::uint64_t& from) {
                     into += from;
                   });
  HistAccumulate(switch_write_hist, delta.switch_write_hist);
  HistAccumulate(oracle_hist, delta.oracle_hist);
  HistAccumulate(reference_hist, delta.reference_hist);
  HistAccumulate(generation_hist, delta.generation_hist);
}

std::string PrometheusLabelEscape(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string PrometheusSanitizeName(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (const char c : name) {
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
    const bool digit = c >= '0' && c <= '9';
    const bool valid = alpha || digit || c == '_' || c == ':';
    if (out.empty() && digit) out += '_';
    out += valid ? c : '_';
  }
  if (out.empty()) out = "_";
  return out;
}

std::string MetricsSnapshot::ToString() const {
  std::ostringstream out;
  out << std::fixed;
  out << "campaign stats: " << shards_completed << " shards, wall "
      << std::setprecision(2) << wall_seconds << "s\n";
  out << "  control-plane: " << updates_sent << " updates / " << requests_sent
      << " requests (" << std::setprecision(0) << updates_per_second()
      << " updates/s), generator " << generated_valid << " valid + "
      << generated_invalid << " mutated, oracle " << oracle_findings
      << " findings\n";
  out << "  data-plane:    " << packets_tested << " packets ("
      << std::setprecision(0) << packets_per_second() << " packets/s), "
      << solver_queries << " solver queries, " << generation_cache_hits
      << " cache hits\n";
  if (batch_lanes_run + batch_scalar_fallbacks + reference_packets > 0) {
    out << "  reference:     " << reference_packets << " packets ("
        << std::setprecision(0) << reference_packets_per_second()
        << " packets/ref-s), batch " << batch_lanes_run << " lanes + "
        << batch_scalar_fallbacks << " scalar fallbacks\n";
  }
  if (oracle_cache_hits + oracle_cache_misses + oracle_cache_evictions > 0) {
    out << "  oracle cache:  " << oracle_cache_hits << " hits, "
        << oracle_cache_misses << " misses, " << oracle_cache_evictions
        << " evictions\n";
  }
  if (coverage_edges_total + coverage_new_edges + seeds_exchanged > 0) {
    out << "  coverage:      " << coverage_edges_total << " edges, "
        << coverage_new_edges << " novelty events, " << seeds_exchanged
        << " seeds exchanged\n";
  }
  out << "  switch io:     " << switch_writes << " writes, " << switch_reads
      << " reads, " << switch_packets_injected << " packets injected\n";
  out << "  phase time:    " << std::setprecision(3) << "switch-write "
      << Seconds(switch_write_ns) << "s, oracle " << Seconds(oracle_ns)
      << "s, reference-sim " << Seconds(reference_ns) << "s, packet-gen "
      << Seconds(generation_ns) << "s\n";
  const PhaseHistogram phases[] = {
      {"switch-write", &switch_write_hist, switch_write_ns},
      {"oracle", &oracle_hist, oracle_ns},
      {"reference-sim", &reference_hist, reference_ns},
      {"packet-gen", &generation_hist, generation_ns},
  };
  bool any_latency = false;
  for (const PhaseHistogram& phase : phases) {
    if (phase.hist->count == 0) continue;
    out << (any_latency ? ", " : "  phase latency: ");
    any_latency = true;
    out << phase.name << " p50/p90/p99 "
        << phase.hist->PercentileNs(0.50) / 1000 << "/"
        << phase.hist->PercentileNs(0.90) / 1000 << "/"
        << phase.hist->PercentileNs(0.99) / 1000 << "us";
  }
  if (any_latency) out << "\n";
  if (shards_lost + worker_crashes + worker_timeouts + worker_retries > 0) {
    out << "  harness:       " << shards_lost << " lost shards ("
        << worker_crashes << " crashes, " << worker_timeouts
        << " timeouts, " << worker_retries << " retries)\n";
  }
  if (remote_reconnects + hosts_retired > 0) {
    out << "  transport:     " << remote_reconnects << " reconnects, "
        << hosts_retired << " hosts retired\n";
  }
  out << "  incidents:     " << incidents_raised << " raised -> "
      << incidents_unique << " unique fingerprints";
  return out.str();
}

std::string MetricsSnapshot::ToPrometheus() const {
  std::ostringstream out;
  const auto counter = [&out](const char* name, const char* help,
                              std::uint64_t value) {
    out << "# HELP " << name << " " << help << "\n";
    out << "# TYPE " << name << " counter\n";
    out << name << " " << value << "\n";
  };
  const auto gauge = [&out](const char* name, const char* help,
                            double value) {
    out << "# HELP " << name << " " << help << "\n";
    out << "# TYPE " << name << " gauge\n";
    out << name << " ";
    AppendDouble(out, value);
    out << "\n";
  };

  gauge("switchv_campaign_wall_seconds", "Campaign wall-clock duration.",
        wall_seconds > 0 ? wall_seconds : 0);
  counter("switchv_shards_completed_total", "Validation shards completed.",
          shards_completed);
  counter("switchv_updates_sent_total",
          "Control-plane updates sent to the switch.", updates_sent);
  counter("switchv_requests_sent_total",
          "Control-plane write requests sent to the switch.", requests_sent);
  counter("switchv_generated_valid_total",
          "Fuzzer-generated well-formed updates.", generated_valid);
  counter("switchv_generated_invalid_total",
          "Fuzzer-generated mutated (intentionally invalid) updates.",
          generated_invalid);
  counter("switchv_oracle_findings_total",
          "Oracle findings before incident dedup.", oracle_findings);
  counter("switchv_packets_tested_total",
          "Data-plane packets differentially tested.", packets_tested);
  counter("switchv_solver_queries_total", "Symbolic solver queries.",
          solver_queries);
  counter("switchv_generation_cache_hits_total",
          "Packet-generation cache hits.", generation_cache_hits);
  counter("switchv_batch_lanes_run_total",
          "Reference lane-runs completed word-parallel.", batch_lanes_run);
  counter("switchv_batch_scalar_fallbacks_total",
          "Reference lane-runs demoted to the scalar fallback.",
          batch_scalar_fallbacks);
  counter("switchv_reference_packets_total",
          "Packets enumerated through the reference simulator.",
          reference_packets);
  counter("switchv_oracle_cache_hits_total",
          "Oracle judgment-cache hits.", oracle_cache_hits);
  counter("switchv_oracle_cache_misses_total",
          "Oracle judgment-cache misses.", oracle_cache_misses);
  counter("switchv_oracle_cache_evictions_total",
          "Oracle judgment-cache evictions.", oracle_cache_evictions);
  counter("switchv_coverage_edges_total",
          "Distinct coverage-map edges populated, summed across shards.",
          coverage_edges_total);
  counter("switchv_coverage_new_edges_total",
          "Coverage novelty events credited by the guided scheduler.",
          coverage_new_edges);
  counter("switchv_seeds_exchanged_total",
          "Interesting seeds exchanged between shards and hosts.",
          seeds_exchanged);
  counter("switchv_switch_writes_total", "P4Runtime Write calls.",
          switch_writes);
  counter("switchv_switch_reads_total", "P4Runtime Read calls.",
          switch_reads);
  counter("switchv_switch_packets_injected_total",
          "Packets injected into the SUT dataplane.",
          switch_packets_injected);
  counter("switchv_incidents_raised_total", "Incidents raised before dedup.",
          incidents_raised);
  counter("switchv_incidents_unique_total",
          "Distinct incident fingerprints.", incidents_unique);
  counter("switchv_shards_lost_total",
          "Shards lost after exhausting worker retries.", shards_lost);
  counter("switchv_worker_crashes_total",
          "Shard worker attempts that crashed or exited nonzero.",
          worker_crashes);
  counter("switchv_worker_timeouts_total",
          "Shard worker attempts killed on the per-shard timeout.",
          worker_timeouts);
  counter("switchv_worker_retries_total",
          "Shard re-executions after a lost worker attempt.",
          worker_retries);
  counter("switchv_remote_reconnects_total",
          "Remote-shard redials after a dead or silent connection.",
          remote_reconnects);
  counter("switchv_hosts_retired_total",
          "Worker hosts retired from the pool for repeated "
          "transport failures.",
          hosts_retired);
  gauge("switchv_updates_per_second", "Control-plane update throughput.",
        updates_per_second());
  gauge("switchv_packets_per_second", "Data-plane packet throughput.",
        packets_per_second());
  gauge("switchv_reference_packets_per_second",
        "Packets enumerated per second of reference-simulation phase time.",
        reference_packets_per_second());

  const PhaseHistogram phases[] = {
      {"switch_write", &switch_write_hist, switch_write_ns},
      {"oracle", &oracle_hist, oracle_ns},
      {"reference_sim", &reference_hist, reference_ns},
      {"packet_gen", &generation_hist, generation_ns},
  };
  for (const PhaseHistogram& phase : phases) {
    const std::string name =
        std::string("switchv_phase_") + phase.name + "_seconds";
    out << "# HELP " << name << " Per-call latency of the " << phase.name
        << " phase.\n";
    out << "# TYPE " << name << " histogram\n";
    std::uint64_t cumulative = 0;
    for (int i = 0; i < kHistogramBuckets; ++i) {
      cumulative += phase.hist->counts[i];
      out << name << "_bucket{le=\"";
      if (i == kHistogramBuckets - 1) {
        out << "+Inf";
      } else {
        AppendDouble(out, Seconds(HistogramBucketUpperNs(i)));
      }
      out << "\"} " << cumulative << "\n";
    }
    out << name << "_sum ";
    AppendDouble(out, Seconds(phase.hist->sum_ns));
    out << "\n";
    out << name << "_count " << phase.hist->count << "\n";
  }
  return out.str();
}

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream out;
  out << std::fixed << std::setprecision(3);
  out << "{";
  out << "\"wall_seconds\":" << wall_seconds;
  out << ",\"shards_completed\":" << shards_completed;
  out << ",\"updates_sent\":" << updates_sent;
  out << ",\"requests_sent\":" << requests_sent;
  out << ",\"updates_per_second\":" << updates_per_second();
  out << ",\"packets_tested\":" << packets_tested;
  out << ",\"packets_per_second\":" << packets_per_second();
  out << ",\"generated_valid\":" << generated_valid;
  out << ",\"generated_invalid\":" << generated_invalid;
  out << ",\"oracle_findings\":" << oracle_findings;
  out << ",\"solver_queries\":" << solver_queries;
  out << ",\"generation_cache_hits\":" << generation_cache_hits;
  out << ",\"batch_lanes_run\":" << batch_lanes_run;
  out << ",\"batch_scalar_fallbacks\":" << batch_scalar_fallbacks;
  out << ",\"reference_packets\":" << reference_packets;
  out << ",\"reference_packets_per_second\":"
      << reference_packets_per_second();
  out << ",\"oracle_cache_hits\":" << oracle_cache_hits;
  out << ",\"oracle_cache_misses\":" << oracle_cache_misses;
  out << ",\"oracle_cache_evictions\":" << oracle_cache_evictions;
  out << ",\"coverage_edges_total\":" << coverage_edges_total;
  out << ",\"coverage_new_edges\":" << coverage_new_edges;
  out << ",\"seeds_exchanged\":" << seeds_exchanged;
  out << ",\"switch_writes\":" << switch_writes;
  out << ",\"switch_reads\":" << switch_reads;
  out << ",\"switch_packets_injected\":" << switch_packets_injected;
  out << ",\"incidents_raised\":" << incidents_raised;
  out << ",\"incidents_unique\":" << incidents_unique;
  out << ",\"shards_lost\":" << shards_lost;
  out << ",\"worker_crashes\":" << worker_crashes;
  out << ",\"worker_timeouts\":" << worker_timeouts;
  out << ",\"worker_retries\":" << worker_retries;
  out << ",\"remote_reconnects\":" << remote_reconnects;
  out << ",\"hosts_retired\":" << hosts_retired;
  const PhaseHistogram phases[] = {
      {"switch_write", &switch_write_hist, switch_write_ns},
      {"oracle", &oracle_hist, oracle_ns},
      {"reference_sim", &reference_hist, reference_ns},
      {"packet_gen", &generation_hist, generation_ns},
  };
  out << ",\"phases\":{";
  bool first = true;
  for (const PhaseHistogram& phase : phases) {
    if (!first) out << ",";
    first = false;
    out << "\"" << phase.name << "\":{";
    out << "\"total_ns\":" << phase.total_ns;
    out << ",\"count\":" << phase.hist->count;
    out << ",\"p50_ns\":" << phase.hist->PercentileNs(0.50);
    out << ",\"p90_ns\":" << phase.hist->PercentileNs(0.90);
    out << ",\"p99_ns\":" << phase.hist->PercentileNs(0.99);
    out << "}";
  }
  out << "}}";
  return out.str();
}

std::string MetricsSnapshot::ToWireJson() const {
  std::ostringstream out;
  out << "{";
  const auto field = [&out](const char* name, std::uint64_t value,
                            bool first = false) {
    if (!first) out << ",";
    out << "\"" << name << "\":" << value;
  };
  field("shards_completed", shards_completed, /*first=*/true);
  field("updates_sent", updates_sent);
  field("requests_sent", requests_sent);
  field("generated_valid", generated_valid);
  field("generated_invalid", generated_invalid);
  field("oracle_findings", oracle_findings);
  field("packets_tested", packets_tested);
  field("solver_queries", solver_queries);
  field("generation_cache_hits", generation_cache_hits);
  field("batch_lanes_run", batch_lanes_run);
  field("batch_scalar_fallbacks", batch_scalar_fallbacks);
  field("reference_packets", reference_packets);
  field("oracle_cache_hits", oracle_cache_hits);
  field("oracle_cache_misses", oracle_cache_misses);
  field("oracle_cache_evictions", oracle_cache_evictions);
  field("coverage_edges_total", coverage_edges_total);
  field("coverage_new_edges", coverage_new_edges);
  field("switch_writes", switch_writes);
  field("switch_reads", switch_reads);
  field("switch_packets_injected", switch_packets_injected);
  field("incidents_raised", incidents_raised);
  field("incidents_unique", incidents_unique);
  field("shards_lost", shards_lost);
  field("worker_crashes", worker_crashes);
  field("worker_timeouts", worker_timeouts);
  field("worker_retries", worker_retries);
  field("switch_write_ns", switch_write_ns);
  field("oracle_ns", oracle_ns);
  field("reference_ns", reference_ns);
  field("generation_ns", generation_ns);
  const PhaseHistogram phases[] = {
      {"switch_write", &switch_write_hist, switch_write_ns},
      {"oracle", &oracle_hist, oracle_ns},
      {"reference_sim", &reference_hist, reference_ns},
      {"generation", &generation_hist, generation_ns},
  };
  out << ",\"hists\":{";
  bool first = true;
  for (const PhaseHistogram& phase : phases) {
    if (!first) out << ",";
    first = false;
    out << "\"" << phase.name << "\":{\"sum_ns\":" << phase.hist->sum_ns
        << ",\"counts\":[";
    for (int i = 0; i < kHistogramBuckets; ++i) {
      if (i > 0) out << ",";
      out << phase.hist->counts[i];
    }
    out << "]}";
  }
  out << "}}";
  return out.str();
}

}  // namespace switchv
