#include "switchv/journal.h"

#include <sstream>

#include "switchv/trace.h"  // JsonEscape

namespace switchv {

std::string_view JournalEventKindName(JournalEventKind kind) {
  switch (kind) {
    case JournalEventKind::kCampaignStarted:
      return "campaign-started";
    case JournalEventKind::kCampaignFinished:
      return "campaign-finished";
    case JournalEventKind::kHostLaunched:
      return "host-launched";
    case JournalEventKind::kHostHello:
      return "host-hello";
    case JournalEventKind::kHostRetired:
      return "host-retired";
    case JournalEventKind::kHostProbation:
      return "host-probation";
    case JournalEventKind::kHostReadmitted:
      return "host-readmitted";
    case JournalEventKind::kHostReprovisioned:
      return "host-reprovisioned";
    case JournalEventKind::kShardDispatched:
      return "shard-dispatched";
    case JournalEventKind::kShardRetried:
      return "shard-retried";
    case JournalEventKind::kShardCompleted:
      return "shard-completed";
    case JournalEventKind::kShardLost:
      return "shard-lost";
    case JournalEventKind::kIncidentFirstSeen:
      return "incident-first-seen";
    case JournalEventKind::kSeedsExchanged:
      return "seeds-exchanged";
  }
  return "unknown";
}

std::string JournalEvent::ToJson() const {
  std::ostringstream out;
  out << "{\"seq\":" << seq << ",\"ts_ns\":" << ts_ns << ",\"event\":\""
      << JournalEventKindName(kind) << "\",\"campaign_id\":" << campaign_id;
  if (shard >= 0) out << ",\"shard\":" << shard;
  if (!host.empty()) out << ",\"host\":\"" << JsonEscape(host) << "\"";
  if (!detail.empty()) out << ",\"detail\":\"" << JsonEscape(detail) << "\"";
  out << "}";
  return out.str();
}

std::uint64_t EventJournal::Append(JournalEventKind kind,
                                   std::uint64_t campaign_id, int shard,
                                   std::string host, std::string detail) {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  JournalEvent event;
  event.seq = events_.size() + 1;
  // Clamp monotone under the mutex: steady_clock never goes backwards, but
  // two appends can land in the same nanosecond — keep ts strictly ordered
  // with seq so consumers may sort by either.
  std::uint64_t ts = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - epoch_)
          .count());
  if (ts <= last_ts_ns_) ts = last_ts_ns_ + 1;
  last_ts_ns_ = ts;
  event.ts_ns = ts;
  event.kind = kind;
  event.campaign_id = campaign_id;
  event.shard = shard;
  event.host = std::move(host);
  event.detail = std::move(detail);
  events_.push_back(std::move(event));
  return events_.size();
}

std::size_t EventJournal::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::uint64_t EventJournal::CountKind(JournalEventKind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t count = 0;
  for (const JournalEvent& event : events_) {
    if (event.kind == kind) ++count;
  }
  return count;
}

std::vector<JournalEvent> EventJournal::EventsSince(
    std::uint64_t since) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (since >= events_.size()) return {};
  return std::vector<JournalEvent>(
      events_.begin() + static_cast<std::ptrdiff_t>(since), events_.end());
}

std::string EventJournal::ToJsonl() const { return ToJsonlSince(0); }

std::string EventJournal::ToJsonlSince(std::uint64_t since) const {
  std::string out;
  for (const JournalEvent& event : EventsSince(since)) {
    out += event.ToJson();
    out += "\n";
  }
  return out;
}

}  // namespace switchv
