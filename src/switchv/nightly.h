// The nightly SwitchV run (paper §2, §7 "Development Processes"): control
// plane validation (p4-fuzzer) followed by data-plane validation
// (p4-symbolic), each against a fresh switch instance, with unified
// incident reporting.
//
// Since the campaign-engine refactor this is a thin wrapper over
// RunValidationCampaign (switchv/engine.h): a nightly run is a campaign,
// and the sharding/parallelism knobs below pass straight through. The
// defaults (one shard per phase, one worker) reproduce the original
// sequential nightly exactly.
#ifndef SWITCHV_SWITCHV_NIGHTLY_H_
#define SWITCHV_SWITCHV_NIGHTLY_H_

#include <optional>

#include "switchv/engine.h"

namespace switchv {

struct NightlyOptions {
  ControlPlaneOptions control_plane;
  DataplaneOptions dataplane;
  bool run_control_plane = true;
  bool run_dataplane = true;
  // §7 extension: after the fuzzing campaign, ALSO run data-plane
  // validation against the state the fuzzer left on the switch (instead of
  // only against the clean replayed state) — fuzzed entries exercise
  // additional control paths during data-plane validation.
  bool dataplane_on_fuzzed_state = false;
  // Coverage-guided scheduling (see CampaignOptions for semantics). The
  // default kUniform reproduces the historical request stream exactly.
  fuzzer::Guidance guidance = fuzzer::Guidance::kUniform;
  fuzzer::GuidanceOptions guidance_options;
  std::vector<fuzzer::SeedDescriptor> guidance_seeds;

  // Campaign-engine knobs (see CampaignOptions for semantics).
  int parallelism = 1;
  int control_plane_shards = 1;
  int dataplane_shards = 1;
  // Campaign seed for shard-seed derivation; 0 means "use
  // control_plane.seed", which keeps single-shard runs reproducing the
  // historical request stream.
  std::uint64_t campaign_seed = 0;

  // Observability knobs (see CampaignOptions for semantics).
  Tracer* tracer = nullptr;
  int flight_recorder_capacity = 32;

  // Execution-substrate knobs (see CampaignOptions for semantics): run each
  // campaign shard in its own `switchv_shard_worker` process so a crashed
  // or wedged switch instance loses one shard, never the nightly run.
  CampaignOptions::Execution execution = CampaignOptions::Execution::kInProcess;
  std::optional<ShardScenario> scenario;
  std::string worker_binary;
  double shard_timeout_seconds = 120;
  int shard_retries = 1;
  // Remote execution (Execution::kRemote): `switchv_worker_host` endpoints
  // and the campaign's idempotency id — see CampaignOptions for the full
  // transport knob set; the nightly keeps its defaults.
  std::vector<std::string> remote_endpoints;
  std::uint64_t campaign_id = 0;
  // Provisioned fleet and frame-authentication secret (see CampaignOptions
  // and switchv/fleet.h). A set fleet supersedes `remote_endpoints`.
  Fleet* fleet = nullptr;
  std::string remote_auth_secret;

  // Live telemetry plane (see CampaignOptions and switchv/telemetry.h).
  // Strictly observational; the report is byte-identical on or off.
  CampaignTelemetry* telemetry = nullptr;
  double telemetry_interval_seconds = 0.5;
};

struct NightlyReport {
  // Deduped incident exemplars, in deterministic merge order. With the
  // default single-shard options each divergence class appears once here
  // where the pre-engine nightly could repeat it; `groups` carries the
  // occurrence counts.
  std::vector<Incident> incidents;
  std::vector<IncidentGroup> groups;
  MetricsSnapshot metrics;
  int fuzzed_updates = 0;
  int packets_tested = 0;
  symbolic::GenerationStats generation;
  // Guided runs: shard-order seed harvest (see CampaignReport).
  std::vector<fuzzer::SeedDescriptor> harvested_seeds;

  bool bug_detected() const { return !incidents.empty(); }
  // The component that raised the first incident.
  std::optional<Detector> first_detector() const {
    if (incidents.empty()) return std::nullopt;
    return incidents.front().detector;
  }
};

// Runs a full nightly validation of a switch built with the given fault set
// against the given model and forwarding state. `faults` may be nullptr
// (healthy switch); `entries` is the production-like replay state.
NightlyReport RunNightlyValidation(
    const sut::FaultRegistry* faults, const p4ir::Program& model,
    const packet::ParserSpec& parser,
    const std::vector<p4rt::TableEntry>& entries,
    const NightlyOptions& options);

}  // namespace switchv

#endif  // SWITCHV_SWITCHV_NIGHTLY_H_
