#include "switchv/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "models/sai_model.h"
#include "util/rng.h"

namespace switchv {

namespace {

struct ShardSpec {
  enum class Kind { kControlPlane, kDataplane };
  Kind kind = Kind::kControlPlane;
  int index = 0;  // global shard index
  const sut::FaultRegistry* faults = nullptr;
  // Control-plane shards: this shard's slice of the fuzzing campaign.
  int num_requests = 0;
  std::uint64_t seed = 0;
  // Dataplane shards: this shard's packet partition.
  int packet_shard = 0;
  int packet_shards = 1;
};

struct ShardResult {
  std::vector<Incident> incidents;
  int fuzzed_updates = 0;
  int packets_tested = 0;
  symbolic::GenerationStats generation;
};

void ScrapeSwitchIo(const sut::SwitchUnderTest& sut, Metrics& metrics) {
  const sut::IoCounters& io = sut.io_counters();
  metrics.Add(metrics.switch_writes, io.writes);
  metrics.Add(metrics.switch_reads, io.reads);
  metrics.Add(metrics.switch_packets_injected, io.packets_injected);
}

// Attribution of the probe's current operation (see dataplane.cc).
sut::SutLayer ProbeLayer(const sut::StackProbe& probe) {
  return probe.op_failed_deepest() != sut::SutLayer::kNone
             ? probe.op_failed_deepest()
             : probe.op_deepest();
}

ShardResult RunControlPlaneShard(const ShardSpec& spec,
                                 const p4ir::Program& model,
                                 const p4ir::P4Info& info,
                                 const packet::ParserSpec& parser,
                                 const std::vector<p4rt::TableEntry>& entries,
                                 const CampaignOptions& options,
                                 Metrics& metrics) {
  ShardResult result;
  // Each shard owns its (single-threaded) trace track and flight recorder;
  // the track pushes completed spans into the shared, mutex-guarded tracer.
  TraceTrack track(options.tracer, spec.index);
  TraceTrack* trace = options.tracer != nullptr ? &track : nullptr;
  FlightRecorder recorder(options.flight_recorder_capacity);
  ScopedSpan shard_span(trace, "control-plane shard", "shard");
  shard_span.AddArg("requests", static_cast<std::uint64_t>(spec.num_requests));
  shard_span.AddArg("seed", spec.seed);
  sut::SwitchUnderTest sut(spec.faults, models::DefaultCloneSessions(),
                           model.cpu_port);
  const Status config = sut.SetForwardingPipelineConfig(info);
  recorder.RecordOperation(FlightEvent::Kind::kConfigPush, sut.probe(),
                           config.ok() ? 0 : 1, "pipeline config push");
  if (!config.ok()) {
    Incident incident{
        Detector::kFuzzer,
        "switch rejected a valid forwarding pipeline config: " +
            config.ToString(),
        "SetForwardingPipelineConfig"};
    incident.layer = ProbeLayer(sut.probe());
    incident.replay_trace = recorder.Render();
    result.incidents.push_back(std::move(incident));
    return result;
  }
  (void)sut.ApplyStandardBringUpConfig();
  // Seed with the replayed state so the fuzzer starts from a realistic
  // switch, then fuzz.
  p4rt::WriteRequest seed;
  for (const p4rt::TableEntry& entry : entries) {
    seed.updates.push_back(p4rt::Update{p4rt::UpdateType::kInsert, entry});
  }
  (void)sut.Write(seed);  // failures surface via the oracle's read-sync
  recorder.RecordOperation(FlightEvent::Kind::kWrite, sut.probe(),
                           sut.probe().failed_units(), "replay-state seed");

  ControlPlaneOptions control = options.control_plane;
  control.num_requests = spec.num_requests;
  control.seed = spec.seed;
  control.metrics = &metrics;
  control.trace = trace;
  control.recorder = &recorder;
  ControlPlaneResult fuzzed = RunControlPlaneValidation(sut, info, control);
  result.fuzzed_updates = fuzzed.updates_sent;
  for (Incident& incident : fuzzed.incidents) {
    result.incidents.push_back(std::move(incident));
  }

  if (options.dataplane_on_fuzzed_state && result.incidents.empty()) {
    // §7 extension: validate the forwarding behaviour of the state the
    // fuzzing campaign left behind, in place.
    auto fuzzed_state = sut.Read(p4rt::ReadRequest{});
    if (fuzzed_state.ok()) {
      DataplaneOptions dataplane = options.dataplane;
      dataplane.simulator_faults = spec.faults;
      dataplane.entries_preinstalled = true;
      dataplane.precomputed_packets = nullptr;
      dataplane.packet_shard = 0;
      dataplane.packet_shards = 1;
      dataplane.metrics = &metrics;
      dataplane.trace = trace;
      dataplane.recorder = &recorder;
      DataplaneResult data = RunDataplaneValidation(
          sut, model, parser, fuzzed_state->entries, dataplane);
      result.packets_tested += data.packets_tested;
      for (Incident& incident : data.incidents) {
        result.incidents.push_back(std::move(incident));
      }
    }
  }
  ScrapeSwitchIo(sut, metrics);
  return result;
}

ShardResult RunDataplaneShard(
    const ShardSpec& spec, const p4ir::Program& model,
    const p4ir::P4Info& info, const packet::ParserSpec& parser,
    const std::vector<p4rt::TableEntry>& entries,
    const std::vector<symbolic::TestPacket>* precomputed,
    const CampaignOptions& options, Metrics& metrics) {
  ShardResult result;
  TraceTrack track(options.tracer, spec.index);
  TraceTrack* trace = options.tracer != nullptr ? &track : nullptr;
  FlightRecorder recorder(options.flight_recorder_capacity);
  ScopedSpan shard_span(trace, "dataplane shard", "shard");
  shard_span.AddArg("packet_shard",
                    static_cast<std::uint64_t>(spec.packet_shard));
  shard_span.AddArg("packet_shards",
                    static_cast<std::uint64_t>(spec.packet_shards));
  sut::SwitchUnderTest sut(spec.faults, models::DefaultCloneSessions(),
                           model.cpu_port);
  const Status config = sut.SetForwardingPipelineConfig(info);
  recorder.RecordOperation(FlightEvent::Kind::kConfigPush, sut.probe(),
                           config.ok() ? 0 : 1, "pipeline config push");
  if (!config.ok()) {
    Incident incident{
        Detector::kSymbolic,
        "data-plane validation could not configure the switch: " +
            config.ToString(),
        "SetForwardingPipelineConfig"};
    incident.layer = ProbeLayer(sut.probe());
    incident.replay_trace = recorder.Render();
    result.incidents.push_back(std::move(incident));
    return result;
  }
  (void)sut.ApplyStandardBringUpConfig();
  DataplaneOptions dataplane = options.dataplane;
  dataplane.simulator_faults = spec.faults;
  dataplane.precomputed_packets = precomputed;
  dataplane.packet_shard = spec.packet_shard;
  dataplane.packet_shards = spec.packet_shards;
  dataplane.metrics = &metrics;
  dataplane.trace = trace;
  dataplane.recorder = &recorder;
  DataplaneResult data =
      RunDataplaneValidation(sut, model, parser, entries, dataplane);
  result.packets_tested = data.packets_tested;
  result.generation = data.generation;
  for (Incident& incident : data.incidents) {
    result.incidents.push_back(std::move(incident));
  }
  ScrapeSwitchIo(sut, metrics);
  return result;
}

}  // namespace

std::vector<Incident> CampaignReport::Incidents() const {
  std::vector<Incident> incidents;
  incidents.reserve(groups.size());
  for (const IncidentGroup& group : groups) {
    incidents.push_back(group.exemplar);
  }
  return incidents;
}

std::set<std::uint64_t> CampaignReport::FingerprintSet() const {
  std::set<std::uint64_t> fingerprints;
  for (const IncidentGroup& group : groups) {
    fingerprints.insert(group.fingerprint);
  }
  return fingerprints;
}

CampaignReport RunValidationCampaign(
    const sut::FaultRegistry* faults, const p4ir::Program& model,
    const packet::ParserSpec& parser,
    const std::vector<p4rt::TableEntry>& entries,
    const CampaignOptions& options) {
  const auto campaign_start = std::chrono::steady_clock::now();
  CampaignReport report;
  Metrics metrics;
  // Campaign-level trace track (shard -1): brackets the whole run and the
  // shared packet-generation pre-phase.
  TraceTrack campaign_track(options.tracer, /*shard=*/-1);
  TraceTrack* campaign_trace =
      options.tracer != nullptr ? &campaign_track : nullptr;
  ScopedSpan campaign_span(campaign_trace, "campaign", "campaign");
  const p4ir::P4Info info = p4ir::P4Info::FromProgram(model);

  // ---- Shard decomposition: a pure function of the options. ----
  // Never more fuzzing shards than requests; at least one shard per enabled
  // phase so configuration failures still surface.
  const int control_shards =
      options.run_control_plane
          ? std::clamp(options.control_plane_shards, 1,
                       std::max(1, options.control_plane.num_requests))
          : 0;
  const int dataplane_shards =
      options.run_dataplane ? std::max(1, options.dataplane_shards) : 0;
  const int total_shards = control_shards + dataplane_shards;
  campaign_span.AddArg("shards", static_cast<std::uint64_t>(total_shards));
  campaign_span.AddArg("parallelism",
                       static_cast<std::uint64_t>(options.parallelism));

  std::vector<ShardSpec> shards;
  shards.reserve(static_cast<std::size_t>(total_shards));
  for (int i = 0; i < control_shards; ++i) {
    ShardSpec spec;
    spec.kind = ShardSpec::Kind::kControlPlane;
    spec.index = static_cast<int>(shards.size());
    // Distribute the campaign's request budget as evenly as possible.
    const int base = options.control_plane.num_requests / control_shards;
    const int remainder = options.control_plane.num_requests % control_shards;
    spec.num_requests = base + (i < remainder ? 1 : 0);
    // A single-shard campaign fuzzes with the campaign seed verbatim, so it
    // reproduces the historical (pre-engine) request stream bit-for-bit;
    // split campaigns derive statistically independent per-shard streams.
    spec.seed = control_shards == 1
                    ? options.seed
                    : ShardSeed(options.seed, static_cast<std::uint64_t>(i));
    shards.push_back(spec);
  }
  for (int i = 0; i < dataplane_shards; ++i) {
    ShardSpec spec;
    spec.kind = ShardSpec::Kind::kDataplane;
    spec.index = static_cast<int>(shards.size());
    spec.packet_shard = i;
    spec.packet_shards = dataplane_shards;
    shards.push_back(spec);
  }
  for (ShardSpec& spec : shards) {
    auto it = options.shard_faults.find(spec.index);
    spec.faults = it != options.shard_faults.end() ? it->second : faults;
  }

  // ---- Pre-phase: generate the campaign's test packets once when the
  // dataplane is split, so shards share one (expensive) Z3 pass. ----
  std::vector<symbolic::TestPacket> campaign_packets;
  const std::vector<symbolic::TestPacket>* precomputed = nullptr;
  std::vector<Incident> pre_phase_incidents;
  if (dataplane_shards > 1) {
    StatusOr<std::vector<symbolic::TestPacket>> generated = [&] {
      ScopedSpan span(campaign_trace, "generate-packets", "campaign");
      ScopedTimer timer(&metrics.generation_ns, &metrics.generation_hist);
      return symbolic::GeneratePackets(model, parser, entries,
                                       options.dataplane.coverage,
                                       options.dataplane.cache,
                                       &report.generation);
    }();
    if (generated.ok()) {
      campaign_packets = std::move(generated).value();
      precomputed = &campaign_packets;
      metrics.Add(metrics.solver_queries,
                  static_cast<std::uint64_t>(report.generation.solver_queries));
      if (report.generation.cache_hit) {
        metrics.Add(metrics.generation_cache_hits, 1);
      }
    } else {
      Incident incident{Detector::kSymbolic,
                        "test packet generation failed: " +
                            generated.status().ToString(),
                        ""};
      incident.shard = control_shards;  // first dataplane shard
      // A generator defect never touched the switch: layer stays kNone and
      // the replay trace is an (empty) recorder rendering, so the report
      // format is uniform across incident classes.
      incident.replay_trace =
          FlightRecorder(options.flight_recorder_capacity).Render();
      pre_phase_incidents.push_back(std::move(incident));
    }
  }

  // ---- Execution: workers drain the shard queue. ----
  std::vector<ShardResult> results(shards.size());
  std::atomic<std::size_t> next_shard{0};
  auto worker = [&]() {
    for (std::size_t i = next_shard.fetch_add(1); i < shards.size();
         i = next_shard.fetch_add(1)) {
      const ShardSpec& spec = shards[i];
      if (spec.kind == ShardSpec::Kind::kControlPlane) {
        results[i] = RunControlPlaneShard(spec, model, info, parser, entries,
                                          options, metrics);
      } else if (precomputed != nullptr || pre_phase_incidents.empty()) {
        results[i] = RunDataplaneShard(spec, model, info, parser, entries,
                                       precomputed, options, metrics);
      }
      metrics.Add(metrics.shards_completed, 1);
    }
  };
  const int workers =
      std::clamp(options.parallelism, 1, std::max(1, total_shards));
  if (workers == 1) {
    worker();  // run inline: no thread overhead for sequential campaigns
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i) pool.emplace_back(worker);
    for (std::thread& thread : pool) thread.join();
  }

  // ---- Merge: deterministic shard order, incident pipeline dedup. ----
  std::map<std::uint64_t, std::size_t> group_by_fingerprint;
  std::uint64_t raw_incidents = 0;
  auto absorb = [&](Incident incident, int shard_index) {
    incident.shard = shard_index;
    ++raw_incidents;
    const std::uint64_t fingerprint = IncidentFingerprint(incident);
    auto [it, inserted] =
        group_by_fingerprint.try_emplace(fingerprint, report.groups.size());
    if (inserted) {
      IncidentGroup group;
      group.exemplar = std::move(incident);
      group.fingerprint = fingerprint;
      report.groups.push_back(std::move(group));
    }
    IncidentGroup& group = report.groups[it->second];
    ++group.occurrences;
    if (group.shards.empty() || group.shards.back() != shard_index) {
      group.shards.push_back(shard_index);
    }
  };
  for (Incident& incident : pre_phase_incidents) {
    const int shard_index = incident.shard;
    absorb(std::move(incident), shard_index);
  }
  for (std::size_t i = 0; i < shards.size(); ++i) {
    for (Incident& incident : results[i].incidents) {
      absorb(std::move(incident), shards[i].index);
    }
    report.fuzzed_updates += results[i].fuzzed_updates;
    report.packets_tested += results[i].packets_tested;
    if (shards[i].kind == ShardSpec::Kind::kDataplane &&
        dataplane_shards == 1) {
      report.generation = results[i].generation;
    }
  }
  report.shards_run = total_shards;
  metrics.Add(metrics.incidents_raised, raw_incidents);
  metrics.Add(metrics.incidents_unique, report.groups.size());
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    campaign_start)
          .count();
  report.metrics = metrics.Snapshot(wall_seconds);
  return report;
}

}  // namespace switchv
