#include "switchv/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <thread>

#include "models/sai_model.h"
#include "switchv/fleet.h"
#include "switchv/shard_transport.h"
#include "switchv/telemetry.h"
#include "util/rng.h"

namespace switchv {

namespace {

// Telemetry-plane accessors, all null-safe: with options.telemetry unset
// every call below degenerates to a pointer check, and nothing in the
// campaign's behaviour — or its report — changes.
EventJournal* JournalOf(const CampaignOptions& options) {
  return options.telemetry != nullptr ? &options.telemetry->journal()
                                      : nullptr;
}

std::uint64_t EffectiveCampaignId(const CampaignOptions& options) {
  return options.campaign_id != 0 ? options.campaign_id : options.seed;
}

struct ShardSpec {
  enum class Kind { kControlPlane, kDataplane };
  Kind kind = Kind::kControlPlane;
  int index = 0;  // global shard index
  const sut::FaultRegistry* faults = nullptr;
  // Control-plane shards: this shard's slice of the fuzzing campaign.
  int num_requests = 0;
  std::uint64_t seed = 0;
  // Dataplane shards: this shard's packet partition.
  int packet_shard = 0;
  int packet_shards = 1;
};

struct ShardResult {
  std::vector<Incident> incidents;
  int fuzzed_updates = 0;
  int packets_tested = 0;
  symbolic::GenerationStats generation;
  // Guided shards: the seeds harvested from the shard's coverage corpus,
  // already energy-sorted and truncated (fuzzer/coverage.h HarvestSeeds).
  std::vector<fuzzer::SeedDescriptor> seeds;
};

// The campaign-immutable context a shard executes against. Bundled so the
// in-process pool and the worker-process entry point (ExecuteShardSpec)
// drive the exact same shard implementation — the engine's conformance
// guarantee is structural, not duplicated logic kept in sync by hand.
struct ShardEnv {
  const p4ir::Program& model;
  const p4ir::P4Info& info;
  const packet::ParserSpec& parser;
  const std::vector<p4rt::TableEntry>& entries;
  const ControlPlaneOptions& control_plane;
  const DataplaneOptions& dataplane;
  bool dataplane_on_fuzzed_state;
  Tracer* tracer;
  int flight_recorder_capacity;
};

// One judgment cache per host process, shared by every control-plane shard
// the engine runs — in-process pool shards and worker-side ExecuteShardSpec
// alike. Content-digest keys make the shared map safe across shards that
// fuzz different scenarios (fuzzer/judgment_cache.h).
fuzzer::JudgmentCache& ProcessJudgmentCache() {
  static fuzzer::JudgmentCache* cache =
      new fuzzer::JudgmentCache(fuzzer::JudgmentCache::Options{});
  return *cache;
}

void ScrapeSwitchIo(const sut::SwitchUnderTest& sut, Metrics& metrics) {
  const sut::IoCounters& io = sut.io_counters();
  metrics.Add(metrics.switch_writes, io.writes);
  metrics.Add(metrics.switch_reads, io.reads);
  metrics.Add(metrics.switch_packets_injected, io.packets_injected);
}

// Attribution of the probe's current operation (see dataplane.cc).
sut::SutLayer ProbeLayer(const sut::StackProbe& probe) {
  return probe.op_failed_deepest() != sut::SutLayer::kNone
             ? probe.op_failed_deepest()
             : probe.op_deepest();
}

// A shard that fails with a Status (as opposed to raising incidents) could
// not be provisioned at all: that is a harness defect, not a detector
// finding. RunControlPlaneShard/RunDataplaneShard return the status so an
// out-of-process worker exits nonzero with the rendered error; the engine
// converts it into a synthetic harness incident either way.
StatusOr<ShardResult> RunControlPlaneShard(
    const ShardSpec& spec, const ShardEnv& env, Metrics& metrics) {
  ShardResult result;
  // Each shard owns its (single-threaded) trace track and flight recorder;
  // the track pushes completed spans into the shared, mutex-guarded tracer.
  TraceTrack track(env.tracer, spec.index);
  TraceTrack* trace = env.tracer != nullptr ? &track : nullptr;
  FlightRecorder recorder(env.flight_recorder_capacity);
  ScopedSpan shard_span(trace, "control-plane shard", "shard");
  shard_span.AddArg("requests", static_cast<std::uint64_t>(spec.num_requests));
  shard_span.AddArg("seed", spec.seed);
  sut::SwitchUnderTest sut(spec.faults, models::DefaultCloneSessions(),
                           env.model.cpu_port);
  const Status config = sut.SetForwardingPipelineConfig(env.info);
  recorder.RecordOperation(FlightEvent::Kind::kConfigPush, sut.probe(),
                           config.ok() ? 0 : 1, "pipeline config push");
  if (!config.ok()) {
    // A rejected (valid) config is a detector finding about the switch, so
    // it stays an incident — unlike the bring-up failure below.
    Incident incident{
        Detector::kFuzzer,
        "switch rejected a valid forwarding pipeline config: " +
            config.ToString(),
        "SetForwardingPipelineConfig"};
    incident.layer = ProbeLayer(sut.probe());
    incident.replay_trace = recorder.Render();
    result.incidents.push_back(std::move(incident));
    return result;
  }
  const Status bring_up = sut.ApplyStandardBringUpConfig();
  if (!bring_up.ok()) {
    // The bring-up config is harness-authored: it failing means the shard
    // never reached a valid starting state, and everything it would have
    // observed is noise.
    return Status(bring_up.code(),
                  "standard bring-up config failed on control-plane shard " +
                      std::to_string(spec.index) + ": " + bring_up.message());
  }
  // Seed with the replayed state so the fuzzer starts from a realistic
  // switch, then fuzz.
  p4rt::WriteRequest seed;
  for (const p4rt::TableEntry& entry : env.entries) {
    seed.updates.push_back(p4rt::Update{p4rt::UpdateType::kInsert, entry});
  }
  (void)sut.Write(seed);  // failures surface via the oracle's read-sync
  recorder.RecordOperation(FlightEvent::Kind::kWrite, sut.probe(),
                           sut.probe().failed_units(), "replay-state seed");

  ControlPlaneOptions control = env.control_plane;
  control.num_requests = spec.num_requests;
  control.seed = spec.seed;
  control.metrics = &metrics;
  control.trace = trace;
  control.recorder = &recorder;
  if (control.oracle_cache && control.judgment_cache == nullptr) {
    control.judgment_cache = &ProcessJudgmentCache();
  }
  ControlPlaneResult fuzzed =
      RunControlPlaneValidation(sut, env.info, control);
  result.fuzzed_updates = fuzzed.updates_sent;
  result.seeds = std::move(fuzzed.harvested_seeds);
  for (Incident& incident : fuzzed.incidents) {
    result.incidents.push_back(std::move(incident));
  }

  if (env.dataplane_on_fuzzed_state && result.incidents.empty()) {
    // §7 extension: validate the forwarding behaviour of the state the
    // fuzzing campaign left behind, in place.
    auto fuzzed_state = sut.Read(p4rt::ReadRequest{});
    if (fuzzed_state.ok()) {
      DataplaneOptions dataplane = env.dataplane;
      dataplane.simulator_faults = spec.faults;
      dataplane.entries_preinstalled = true;
      dataplane.precomputed_packets = nullptr;
      dataplane.packet_shard = 0;
      dataplane.packet_shards = 1;
      dataplane.metrics = &metrics;
      dataplane.trace = trace;
      dataplane.recorder = &recorder;
      DataplaneResult data = RunDataplaneValidation(
          sut, env.model, env.parser, fuzzed_state->entries, dataplane);
      result.packets_tested += data.packets_tested;
      for (Incident& incident : data.incidents) {
        result.incidents.push_back(std::move(incident));
      }
    }
  }
  ScrapeSwitchIo(sut, metrics);
  return result;
}

StatusOr<ShardResult> RunDataplaneShard(
    const ShardSpec& spec, const ShardEnv& env,
    const std::vector<symbolic::TestPacket>* precomputed, Metrics& metrics) {
  ShardResult result;
  TraceTrack track(env.tracer, spec.index);
  TraceTrack* trace = env.tracer != nullptr ? &track : nullptr;
  FlightRecorder recorder(env.flight_recorder_capacity);
  ScopedSpan shard_span(trace, "dataplane shard", "shard");
  shard_span.AddArg("packet_shard",
                    static_cast<std::uint64_t>(spec.packet_shard));
  shard_span.AddArg("packet_shards",
                    static_cast<std::uint64_t>(spec.packet_shards));
  sut::SwitchUnderTest sut(spec.faults, models::DefaultCloneSessions(),
                           env.model.cpu_port);
  const Status config = sut.SetForwardingPipelineConfig(env.info);
  recorder.RecordOperation(FlightEvent::Kind::kConfigPush, sut.probe(),
                           config.ok() ? 0 : 1, "pipeline config push");
  if (!config.ok()) {
    Incident incident{
        Detector::kSymbolic,
        "data-plane validation could not configure the switch: " +
            config.ToString(),
        "SetForwardingPipelineConfig"};
    incident.layer = ProbeLayer(sut.probe());
    incident.replay_trace = recorder.Render();
    result.incidents.push_back(std::move(incident));
    return result;
  }
  const Status bring_up = sut.ApplyStandardBringUpConfig();
  if (!bring_up.ok()) {
    return Status(bring_up.code(),
                  "standard bring-up config failed on dataplane shard " +
                      std::to_string(spec.index) + ": " + bring_up.message());
  }
  DataplaneOptions dataplane = env.dataplane;
  dataplane.simulator_faults = spec.faults;
  dataplane.precomputed_packets = precomputed;
  dataplane.packet_shard = spec.packet_shard;
  dataplane.packet_shards = spec.packet_shards;
  dataplane.metrics = &metrics;
  dataplane.trace = trace;
  dataplane.recorder = &recorder;
  DataplaneResult data =
      RunDataplaneValidation(sut, env.model, env.parser, env.entries,
                             dataplane);
  result.packets_tested = data.packets_tested;
  result.generation = data.generation;
  for (Incident& incident : data.incidents) {
    result.incidents.push_back(std::move(incident));
  }
  ScrapeSwitchIo(sut, metrics);
  return result;
}

// ---------------------------------------------------------------------------
// Out-of-process execution
// ---------------------------------------------------------------------------

WireShardSpec MakeWireSpec(const ShardSpec& spec,
                           const ShardScenario& scenario,
                           const CampaignOptions& options,
                           const std::vector<symbolic::TestPacket>* packets) {
  WireShardSpec wire;
  wire.kind = spec.kind == ShardSpec::Kind::kControlPlane
                  ? WireShardSpec::Kind::kControlPlane
                  : WireShardSpec::Kind::kDataplane;
  wire.index = spec.index;
  wire.scenario = scenario;
  if (spec.faults != nullptr) {
    wire.faults.assign(spec.faults->active_set().begin(),
                       spec.faults->active_set().end());
  }
  wire.control_plane = options.control_plane;
  wire.control_plane.num_requests = spec.num_requests;
  wire.control_plane.seed = spec.seed;
  wire.dataplane = options.dataplane;
  wire.dataplane.packet_shard = spec.packet_shard;
  wire.dataplane.packet_shards = spec.packet_shards;
  wire.dataplane_on_fuzzed_state = options.dataplane_on_fuzzed_state;
  wire.flight_recorder_capacity = options.flight_recorder_capacity;
  wire.trace = options.tracer != nullptr;
  if (spec.kind == ShardSpec::Kind::kDataplane && packets != nullptr) {
    wire.has_packets = true;
    wire.packets = *packets;
  }
  return wire;
}

Incident HarnessIncident(std::string summary, std::string details,
                         int flight_recorder_capacity) {
  Incident incident{Detector::kHarness, std::move(summary),
                    std::move(details)};
  // kHarness detector + kHarness layer: these fingerprint into their own
  // dedup classes and the report attributes them to the harness, not to any
  // layer of the switch stack.
  incident.layer = sut::SutLayer::kHarness;
  // Uniform report format across incident classes: an (empty) recorder
  // rendering, as with pre-phase incidents.
  incident.replay_trace = FlightRecorder(flight_recorder_capacity).Render();
  return incident;
}

ShardResult LostShard(int index, const Status& status,
                      const CampaignOptions& options, Metrics& metrics) {
  metrics.Add(metrics.shards_lost, 1);
  JournalAppend(JournalOf(options), JournalEventKind::kShardLost,
                EffectiveCampaignId(options), index, "", status.ToString());
  ShardResult result;
  result.incidents.push_back(HarnessIncident(
      "campaign shard " + std::to_string(index) +
          " lost: " + status.ToString(),
      "shard ran in-process; nothing to retry",
      options.flight_recorder_capacity));
  return result;
}

// Cross-host trace stitching context for one absorbed shard attempt: which
// host ran it, and the coordinator-clock window it ran inside. A worker's
// span timestamps are relative to its own process epoch; the coordinator
// rebases them by estimating the worker epoch at the round-trip midpoint —
//   offset = dispatch + max(0, receive - dispatch - worker_wall) / 2
// — the classic NTP-style symmetric-delay assumption, with worker_wall
// taken from the shard's own wall-clock measurement.
struct StitchContext {
  std::string host;  // "" = subprocess on the coordinator's own box
  std::uint64_t dispatch_ns = 0;  // coordinator clock, attempt sent
  std::uint64_t receive_ns = 0;   // coordinator clock, result received
};

// Parses a worker's result line and folds its telemetry into the campaign:
// Metrics::Merge for the counter/histogram snapshot, tracer record for the
// shard's spans. Shared by the subprocess pool and the remote dispatcher —
// both substrates merge *exactly* the same way, which is what keeps the
// campaign report byte-identical across them. `stitch` (optional) rebases
// the spans into the coordinator clock and tags their origin host; it only
// ever touches span timestamps/host, never anything the report renders.
StatusOr<ShardResult> AbsorbWireResultLine(std::string_view line,
                                           const CampaignOptions& options,
                                           Metrics& metrics,
                                           const StitchContext* stitch) {
  SWITCHV_ASSIGN_OR_RETURN(WireShardResult wire, ParseShardResult(line));
  metrics.Merge(wire.metrics);
  if (options.tracer != nullptr) {
    std::uint64_t offset_ns = 0;
    if (stitch != nullptr) {
      const auto worker_wall_ns =
          static_cast<std::uint64_t>(wire.metrics.wall_seconds * 1e9);
      const std::uint64_t window_ns =
          stitch->receive_ns > stitch->dispatch_ns
              ? stitch->receive_ns - stitch->dispatch_ns
              : 0;
      const std::uint64_t slack_ns =
          window_ns > worker_wall_ns ? window_ns - worker_wall_ns : 0;
      offset_ns = stitch->dispatch_ns + slack_ns / 2;
      // A cache-replayed result (idempotent resend after a dropped
      // connection) arrives in a window far shorter than the shard
      // actually ran; midpoint rebasing would then push its spans past the
      // receive time, into the coordinator's future. Clamp so no span ends
      // after the moment its result arrived — the execution genuinely
      // happened earlier, during the original (interrupted) dial.
      std::uint64_t max_end_ns = 0;
      for (const TraceSpan& span : wire.spans) {
        max_end_ns = std::max(max_end_ns, span.start_ns + span.duration_ns);
      }
      if (offset_ns + max_end_ns > stitch->receive_ns) {
        offset_ns = max_end_ns < stitch->receive_ns
                        ? stitch->receive_ns - max_end_ns
                        : 0;
      }
    }
    for (TraceSpan& span : wire.spans) {
      if (stitch != nullptr) {
        span.start_ns += offset_ns;
        span.host = stitch->host;
      }
      options.tracer->Record(std::move(span));
    }
  }
  ShardResult result;
  result.incidents = std::move(wire.incidents);
  result.fuzzed_updates = wire.fuzzed_updates;
  result.packets_tested = wire.packets_tested;
  result.generation = wire.generation;
  result.seeds = std::move(wire.seeds);
  return result;
}

// Runs one shard through a worker process, retrying failed attempts up to
// the configured bound. A shard whose every attempt fails is converted into
// a synthetic harness incident — the campaign completes regardless of what
// individual workers do.
ShardResult RunShardViaWorker(const ShardSpec& spec, const std::string& binary,
                              const CampaignOptions& options,
                              const std::vector<symbolic::TestPacket>* packets,
                              Metrics& metrics) {
  const std::string payload =
      SerializeShardSpec(
          MakeWireSpec(spec, *options.scenario, options, packets)) +
      "\n";
  const int attempts = 1 + std::max(0, options.shard_retries);
  const bool telemetry = options.telemetry != nullptr &&
                         options.telemetry_interval_seconds > 0;
  std::vector<std::string> worker_args = options.worker_extra_args;
  if (telemetry) {
    worker_args.push_back(
        "--telemetry-interval=" +
        std::to_string(options.telemetry_interval_seconds));
  }
  std::string summary;
  std::string details;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    if (attempt > 1) {
      metrics.Add(metrics.worker_retries, 1);
      JournalAppend(JournalOf(options), JournalEventKind::kShardRetried,
                    EffectiveCampaignId(options), spec.index, "",
                    "attempt " + std::to_string(attempt));
    }
    // Live streaming for the subprocess substrate: the worker's interim
    // sample lines are parsed as they arrive and folded into this
    // attempt's accumulator; the accumulator dies with the attempt, so
    // once the authoritative result merges, nothing is double-counted.
    std::uint64_t token = 0;
    std::string sample_buffer;
    std::function<void(std::string_view)> on_stdout;
    if (telemetry) {
      token = options.telemetry->BeginAttempt(spec.index, "");
      on_stdout = [&options, &sample_buffer, token](std::string_view chunk) {
        sample_buffer.append(chunk);
        std::size_t newline;
        while ((newline = sample_buffer.find('\n')) != std::string::npos) {
          const std::string sample_line = sample_buffer.substr(0, newline);
          sample_buffer.erase(0, newline + 1);
          if (!LooksLikeTelemetrySample(sample_line)) continue;
          StatusOr<TelemetrySample> sample =
              ParseTelemetrySample(sample_line);
          if (sample.ok()) {
            options.telemetry->AccumulateDelta(token, sample->delta);
          }
        }
      };
    }
    StitchContext stitch;
    if (options.tracer != nullptr) {
      stitch.dispatch_ns = options.tracer->NowNs();
    }
    const WorkerProcessResult proc =
        RunWorkerProcess(binary, worker_args, payload,
                         options.shard_timeout_seconds, on_stdout);
    if (options.tracer != nullptr) {
      stitch.receive_ns = options.tracer->NowNs();
    }
    if (telemetry) options.telemetry->EndAttempt(token);
    std::string note;
    if (proc.outcome == WorkerProcessResult::Outcome::kExited &&
        proc.exit_code == 0) {
      // The result is the last non-empty stdout line (workers may log above
      // it); the worker's stdout is untrusted — it may have died mid-write.
      std::string_view out = proc.stdout_data;
      while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
        out.remove_suffix(1);
      }
      const std::size_t newline = out.rfind('\n');
      const std::string_view line =
          newline == std::string_view::npos ? out : out.substr(newline + 1);
      StatusOr<ShardResult> parsed =
          AbsorbWireResultLine(line, options, metrics, &stitch);
      if (parsed.ok()) {
        return std::move(parsed).value();
      }
      metrics.Add(metrics.worker_crashes, 1);
      summary = "campaign shard " + std::to_string(spec.index) +
                " lost: worker returned an unparseable result";
      note = parsed.status().ToString();
    } else if (proc.outcome == WorkerProcessResult::Outcome::kTimedOut) {
      metrics.Add(metrics.worker_timeouts, 1);
      summary = "campaign shard " + std::to_string(spec.index) +
                " lost: worker timed out";
      note = "killed after exceeding the shard deadline";
    } else if (proc.outcome == WorkerProcessResult::Outcome::kSignaled) {
      metrics.Add(metrics.worker_crashes, 1);
      summary = "campaign shard " + std::to_string(spec.index) +
                " lost: worker crashed";
      note = "terminated by signal " + std::to_string(proc.term_signal);
    } else if (proc.outcome == WorkerProcessResult::Outcome::kExited) {
      metrics.Add(metrics.worker_crashes, 1);
      summary = "campaign shard " + std::to_string(spec.index) +
                " lost: worker exited with an error";
      note = "exit code " + std::to_string(proc.exit_code);
    } else {
      metrics.Add(metrics.worker_crashes, 1);
      summary = "campaign shard " + std::to_string(spec.index) +
                " lost: worker could not be spawned";
      note = proc.error;
    }
    if (!details.empty()) details += "; ";
    details += "attempt " + std::to_string(attempt) + ": " + note;
  }
  metrics.Add(metrics.shards_lost, 1);
  JournalAppend(JournalOf(options), JournalEventKind::kShardLost,
                EffectiveCampaignId(options), spec.index, "", details);
  ShardResult result;
  result.incidents.push_back(HarnessIncident(
      std::move(summary), std::move(details),
      options.flight_recorder_capacity));
  return result;
}

// Runs one shard through the remote host pool (switchv/fleet.h: work-
// stealing acquire, consecutive-failure retirement, cooldown probation).
// Two nested failure scopes, both bounded:
//   * transport failures (connection refused/dropped/silent) redial — on
//     the now-least-loaded host — up to `remote_reconnects` times, resending
//     the same idempotency key so a host that already finished the shard
//     replays its cached result;
//   * worker failures (the host ran the attempt; the subprocess crashed,
//     timed out, or wrote garbage) consume a shard retry, exactly like the
//     local subprocess path.
// When both bounds are exhausted — or every host is retired — the shard
// degrades to the same synthetic kHarness incident as a lost local worker:
// a torn-down fleet costs findings, never the campaign.
//
// With a provisioned fleet, a release that *newly* retires a host also
// replaces it: the fleet SIGKILLs the old process, brings a fresh one
// through the bring-up gate, and the pool gains its endpoint while the
// dead one is marked dead (probation must not resurrect a killed host).
// A failed replacement — budget exhausted, bring-up timeout — leaves the
// host retired, where probation can still re-admit it if it was merely
// flapping.
ShardResult RunShardViaRemote(const ShardSpec& spec,
                              const CampaignOptions& options,
                              HostPool& pool, Fleet* fleet,
                              const std::string& auth_secret,
                              const std::vector<symbolic::TestPacket>* packets,
                              Metrics& metrics) {
  RemoteShardRequest request;
  request.campaign_id =
      options.campaign_id != 0 ? options.campaign_id : options.seed;
  request.shard = spec.index;
  request.timeout_seconds = options.shard_timeout_seconds;
  request.spec_line =
      SerializeShardSpec(MakeWireSpec(spec, *options.scenario, options,
                                      packets));
  const bool telemetry = options.telemetry != nullptr &&
                         options.telemetry_interval_seconds > 0;
  if (telemetry) {
    // Opting in upgrades the request envelope to v2; the host streams
    // interval deltas back on the heartbeat channel and echoes RTT pings.
    request.telemetry_interval_seconds = options.telemetry_interval_seconds;
  }
  if (options.guidance != fuzzer::Guidance::kUniform) {
    // Guided campaigns upgrade to the v3 envelope, which carries the
    // guidance mode explicitly (the spec line carries its parameters).
    // Uniform campaigns keep every wire byte identical to v1/v2.
    request.guidance = static_cast<int>(options.guidance);
  }
  const int attempts = 1 + std::max(0, options.shard_retries);
  const int dials = 1 + std::max(0, options.remote_reconnects);
  std::string summary;
  std::string details;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    if (attempt > 1) {
      metrics.Add(metrics.worker_retries, 1);
      JournalAppend(JournalOf(options), JournalEventKind::kShardRetried,
                    EffectiveCampaignId(options), spec.index, "",
                    "attempt " + std::to_string(attempt));
    }
    request.attempt = attempt;
    std::string note;
    for (int dial = 1; dial <= dials; ++dial) {
      if (dial > 1) metrics.Add(metrics.remote_reconnects, 1);
      const int host = pool.Acquire();
      if (host < 0) {
        metrics.Add(metrics.shards_lost, 1);
        JournalAppend(JournalOf(options), JournalEventKind::kShardLost,
                      EffectiveCampaignId(options), spec.index, "",
                      "every worker host is retired");
        ShardResult result;
        result.incidents.push_back(HarnessIncident(
            "campaign shard " + std::to_string(spec.index) +
                " lost: every worker host is retired",
            details.empty() ? "no live endpoints remained in the pool"
                            : details,
            options.flight_recorder_capacity));
        return result;
      }
      const std::string endpoint = pool.endpoint(host);
      // The attempt accumulator is scoped to this dial: a redial re-runs
      // (or replays) the shard from scratch on another host, so the
      // half-streamed deltas from the dropped connection must not survive
      // into the rolling view alongside the fresh stream.
      std::uint64_t token = 0;
      RemoteCallHooks hooks;
      const RemoteCallHooks* hooks_ptr = nullptr;
      if (telemetry) {
        token = options.telemetry->BeginAttempt(spec.index, endpoint);
        hooks.ping_interval_seconds = options.telemetry_interval_seconds;
        hooks.on_telemetry = [&options, token](std::string_view payload) {
          StatusOr<TelemetrySample> sample = ParseTelemetrySample(payload);
          if (sample.ok()) {
            options.telemetry->AccumulateDelta(token, sample->delta);
          }
        };
        hooks.on_rtt = [&options, &endpoint](std::uint64_t rtt_ns) {
          options.telemetry->RecordHeartbeatRtt(endpoint, rtt_ns);
        };
        hooks_ptr = &hooks;
      }
      StitchContext stitch;
      stitch.host = endpoint;
      if (options.tracer != nullptr) {
        stitch.dispatch_ns = options.tracer->NowNs();
      }
      const RemoteCallOutcome call =
          CallRemoteShard(endpoint, request,
                          options.remote_heartbeat_timeout_seconds,
                          auth_secret, hooks_ptr);
      if (options.tracer != nullptr) {
        stitch.receive_ns = options.tracer->NowNs();
      }
      if (telemetry) options.telemetry->EndAttempt(token);
      const HostPool::ReleaseOutcome released = pool.Release(
          host, call.kind != RemoteCallOutcome::Kind::kTransport);
      if (released.newly_retired && fleet != nullptr) {
        StatusOr<std::string> replacement = fleet->Replace(released.endpoint);
        if (replacement.ok()) {
          pool.MarkDead(released.endpoint);
          pool.AddEndpoint(*replacement);
          JournalAppend(JournalOf(options),
                        JournalEventKind::kHostReprovisioned,
                        EffectiveCampaignId(options), spec.index,
                        released.endpoint, "replaced by " + *replacement);
        }
      }
      if (call.kind == RemoteCallOutcome::Kind::kResult) {
        StatusOr<ShardResult> parsed =
            AbsorbWireResultLine(call.result_line, options, metrics, &stitch);
        if (parsed.ok()) {
          return std::move(parsed).value();
        }
        metrics.Add(metrics.worker_crashes, 1);
        summary = "campaign shard " + std::to_string(spec.index) +
                  " lost: remote worker returned an unparseable result";
        note = parsed.status().ToString();
        break;  // a worker failure consumes the attempt, not a redial
      }
      if (call.kind == RemoteCallOutcome::Kind::kWorkerError) {
        if (call.error_kind == RemoteShardError::Kind::kTimeout) {
          metrics.Add(metrics.worker_timeouts, 1);
          summary = "campaign shard " + std::to_string(spec.index) +
                    " lost: remote worker timed out";
        } else {
          metrics.Add(metrics.worker_crashes, 1);
          summary = "campaign shard " + std::to_string(spec.index) +
                    " lost: remote worker failed";
        }
        note = call.note;
        break;
      }
      if (call.kind == RemoteCallOutcome::Kind::kTimeout) {
        metrics.Add(metrics.worker_timeouts, 1);
        summary = "campaign shard " + std::to_string(spec.index) +
                  " lost: remote shard deadline expired";
        note = call.note;
        break;
      }
      // Transport failure: safe to resend — the shard is deterministic in
      // the spec and the host dedupes by (campaign_id, shard, attempt).
      summary = "campaign shard " + std::to_string(spec.index) +
                " lost: worker hosts unreachable";
      note = call.note;
    }
    if (!details.empty()) details += "; ";
    details += "attempt " + std::to_string(attempt) + ": " + note;
  }
  metrics.Add(metrics.shards_lost, 1);
  JournalAppend(JournalOf(options), JournalEventKind::kShardLost,
                EffectiveCampaignId(options), spec.index, "", details);
  ShardResult result;
  result.incidents.push_back(HarnessIncident(
      std::move(summary), std::move(details),
      options.flight_recorder_capacity));
  return result;
}

// Resolves the worker binary for subprocess execution: the explicit option
// wins, then $SWITCHV_SHARD_WORKER. Empty = fall back to in-process.
std::string ResolveWorkerBinary(const CampaignOptions& options) {
  if (!options.worker_binary.empty()) return options.worker_binary;
  const char* env = std::getenv("SWITCHV_SHARD_WORKER");
  return env != nullptr ? env : "";
}

}  // namespace

std::vector<Incident> CampaignReport::Incidents() const {
  std::vector<Incident> incidents;
  incidents.reserve(groups.size());
  for (const IncidentGroup& group : groups) {
    incidents.push_back(group.exemplar);
  }
  return incidents;
}

std::set<std::uint64_t> CampaignReport::FingerprintSet() const {
  std::set<std::uint64_t> fingerprints;
  for (const IncidentGroup& group : groups) {
    fingerprints.insert(group.fingerprint);
  }
  return fingerprints;
}

StatusOr<WireShardResult> ExecuteShardSpec(const WireShardSpec& spec) {
  return ExecuteShardSpec(spec, nullptr);
}

StatusOr<WireShardResult> ExecuteShardSpec(const WireShardSpec& spec,
                                           const ShardTelemetryHook* hook) {
  const auto shard_start = std::chrono::steady_clock::now();
  SWITCHV_ASSIGN_OR_RETURN(
      const p4ir::Program model,
      models::BuildSaiProgram(spec.scenario.role, spec.scenario.model));
  const p4ir::P4Info info = p4ir::P4Info::FromProgram(model);
  const packet::ParserSpec parser = models::SaiParserSpec();
  SWITCHV_ASSIGN_OR_RETURN(
      const std::vector<p4rt::TableEntry> entries,
      models::GenerateEntries(info, spec.scenario.role, spec.scenario.workload,
                              spec.scenario.entry_seed));
  sut::FaultRegistry registry;
  for (const sut::Fault fault : spec.faults) registry.Activate(fault);

  Metrics metrics;
  Tracer tracer;
  ShardEnv env{model,
               info,
               parser,
               entries,
               spec.control_plane,
               spec.dataplane,
               spec.dataplane_on_fuzzed_state,
               spec.trace ? &tracer : nullptr,
               spec.flight_recorder_capacity};
  ShardSpec shard;
  shard.kind = spec.kind == WireShardSpec::Kind::kControlPlane
                   ? ShardSpec::Kind::kControlPlane
                   : ShardSpec::Kind::kDataplane;
  shard.index = spec.index;
  shard.faults = registry.empty() ? nullptr : &registry;
  shard.num_requests = spec.control_plane.num_requests;
  shard.seed = spec.control_plane.seed;
  shard.packet_shard = spec.dataplane.packet_shard;
  shard.packet_shards = spec.dataplane.packet_shards;
  const std::vector<symbolic::TestPacket>* precomputed =
      spec.has_packets ? &spec.packets : nullptr;

  // Live sampling: a sampler thread periodically emits the metric delta —
  // and the spans closed — since the previous sample. The deltas are
  // additive and a final flush runs after the shard completes, so the
  // stream sums exactly to the shard's final snapshot regardless of how
  // the interval aligned with the work.
  const bool sampling = hook != nullptr && hook->interval_seconds > 0 &&
                        hook->emit != nullptr;
  std::thread sampler;
  std::mutex sampler_mu;
  std::condition_variable sampler_cv;
  bool sampler_stop = false;
  MetricsSnapshot sample_base;
  std::size_t span_cursor = 0;
  std::uint64_t sample_seq = 0;
  auto emit_sample = [&] {
    const MetricsSnapshot now = metrics.Snapshot(0);
    TelemetrySample sample;
    sample.shard = spec.index;
    sample.seq = ++sample_seq;
    sample.delta = now.DeltaSince(sample_base);
    sample.spans = tracer.SpansSince(&span_cursor);
    sample_base = now;
    hook->emit(sample);
  };
  if (sampling) {
    sampler = std::thread([&] {
      std::unique_lock<std::mutex> lock(sampler_mu);
      const auto interval = std::chrono::duration_cast<
          std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(hook->interval_seconds));
      while (!sampler_stop) {
        if (sampler_cv.wait_for(lock, interval,
                                [&] { return sampler_stop; })) {
          break;
        }
        emit_sample();
      }
    });
  }
  auto stop_sampler = [&] {
    if (!sampler.joinable()) return;
    {
      std::lock_guard<std::mutex> lock(sampler_mu);
      sampler_stop = true;
    }
    sampler_cv.notify_all();
    sampler.join();
  };

  StatusOr<ShardResult> run =
      shard.kind == ShardSpec::Kind::kControlPlane
          ? RunControlPlaneShard(shard, env, metrics)
          : RunDataplaneShard(shard, env, precomputed, metrics);
  stop_sampler();
  if (!run.ok()) return run.status();
  ShardResult result = std::move(run).value();
  if (sampling) {
    std::lock_guard<std::mutex> lock(sampler_mu);
    emit_sample();  // final flush: nothing recorded is lost to alignment
  }

  WireShardResult out;
  out.index = spec.index;
  out.incidents = std::move(result.incidents);
  for (Incident& incident : out.incidents) incident.shard = spec.index;
  out.fuzzed_updates = result.fuzzed_updates;
  out.packets_tested = result.packets_tested;
  out.generation = result.generation;
  out.seeds = std::move(result.seeds);
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    shard_start)
          .count();
  out.metrics = metrics.Snapshot(wall_seconds);
  out.spans = tracer.Spans();
  return out;
}

CampaignReport RunValidationCampaign(
    const sut::FaultRegistry* faults, const p4ir::Program& model,
    const packet::ParserSpec& parser,
    const std::vector<p4rt::TableEntry>& entries,
    const CampaignOptions& options_in) {
  const auto campaign_start = std::chrono::steady_clock::now();
  // Campaign-level guidance folds into the per-shard option structs here,
  // once, so every execution substrate sees the same shard recipe:
  // in-process shards read env.control_plane, wire specs copy
  // options.control_plane verbatim (MakeWireSpec), and the dataplane's
  // reference interpreter observes coverage whenever the campaign is
  // guided. kUniform leaves the copies bit-identical to the input.
  CampaignOptions options = options_in;
  if (options.guidance != fuzzer::Guidance::kUniform) {
    options.control_plane.guidance = options.guidance;
    options.control_plane.guidance_options = options.guidance_options;
    options.control_plane.guidance_seeds = options.guidance_seeds;
    options.dataplane.coverage_observe = true;
  }
  CampaignReport report;
  Metrics metrics;
  // Campaign-level trace track (shard -1): brackets the whole run and the
  // shared packet-generation pre-phase.
  TraceTrack campaign_track(options.tracer, /*shard=*/-1);
  TraceTrack* campaign_trace =
      options.tracer != nullptr ? &campaign_track : nullptr;
  ScopedSpan campaign_span(campaign_trace, "campaign", "campaign");
  const p4ir::P4Info info = p4ir::P4Info::FromProgram(model);

  // Out-of-process execution needs a scenario recipe (workers rebuild the
  // campaign inputs from it) and a worker binary — or, for remote
  // execution, at least one host endpoint; with either missing the
  // campaign silently runs in-process, which is behaviourally identical.
  const std::string worker_binary = ResolveWorkerBinary(options);
  const std::vector<std::string> remote_endpoints =
      options.fleet != nullptr ? options.fleet->Endpoints()
                               : options.remote_endpoints;
  const bool remote =
      options.execution == CampaignOptions::Execution::kRemote &&
      options.scenario.has_value() && !remote_endpoints.empty();
  const bool subprocess =
      options.execution == CampaignOptions::Execution::kSubprocess &&
      options.scenario.has_value() && !worker_binary.empty();
  campaign_span.AddArg("execution", remote       ? "remote"
                                    : subprocess ? "subprocess"
                                                 : "in-process");
  const std::string remote_secret =
      !options.remote_auth_secret.empty()
          ? options.remote_auth_secret
          : (options.fleet != nullptr ? options.fleet->options().auth_secret
                                      : "");
  std::optional<HostPool> host_pool;
  if (remote) {
    HostPool::Options pool_options;
    pool_options.max_consecutive_failures = options.remote_host_max_failures;
    pool_options.probation_cooldown_seconds =
        options.remote_host_probation_seconds;
    pool_options.journal = JournalOf(options);
    pool_options.campaign_id = EffectiveCampaignId(options);
    host_pool.emplace(remote_endpoints, pool_options);
  }

  // ---- Shard decomposition: a pure function of the options. ----
  // Never more fuzzing shards than requests; at least one shard per enabled
  // phase so configuration failures still surface.
  const int control_shards =
      options.run_control_plane
          ? std::clamp(options.control_plane_shards, 1,
                       std::max(1, options.control_plane.num_requests))
          : 0;
  const int dataplane_shards =
      options.run_dataplane ? std::max(1, options.dataplane_shards) : 0;
  const int total_shards = control_shards + dataplane_shards;
  if (options.telemetry != nullptr) {
    options.telemetry->BeginCampaign(EffectiveCampaignId(options),
                                     total_shards, &metrics);
  }
  campaign_span.AddArg("shards", static_cast<std::uint64_t>(total_shards));
  campaign_span.AddArg("parallelism",
                       static_cast<std::uint64_t>(options.parallelism));

  std::vector<ShardSpec> shards;
  shards.reserve(static_cast<std::size_t>(total_shards));
  for (int i = 0; i < control_shards; ++i) {
    ShardSpec spec;
    spec.kind = ShardSpec::Kind::kControlPlane;
    spec.index = static_cast<int>(shards.size());
    // Distribute the campaign's request budget as evenly as possible.
    const int base = options.control_plane.num_requests / control_shards;
    const int remainder = options.control_plane.num_requests % control_shards;
    spec.num_requests = base + (i < remainder ? 1 : 0);
    // A single-shard campaign fuzzes with the campaign seed verbatim, so it
    // reproduces the historical (pre-engine) request stream bit-for-bit;
    // split campaigns derive statistically independent per-shard streams.
    spec.seed = control_shards == 1
                    ? options.seed
                    : ShardSeed(options.seed, static_cast<std::uint64_t>(i));
    shards.push_back(spec);
  }
  for (int i = 0; i < dataplane_shards; ++i) {
    ShardSpec spec;
    spec.kind = ShardSpec::Kind::kDataplane;
    spec.index = static_cast<int>(shards.size());
    spec.packet_shard = i;
    spec.packet_shards = dataplane_shards;
    shards.push_back(spec);
  }
  for (ShardSpec& spec : shards) {
    auto it = options.shard_faults.find(spec.index);
    spec.faults = it != options.shard_faults.end() ? it->second : faults;
  }

  // ---- Pre-phase: generate the campaign's test packets once when the
  // dataplane is split — so shards share one (expensive) Z3 pass — and
  // whenever shards run out of process, split or not: the packets fan out
  // inside each shard spec, workers never repeat the Z3 pass, the parent's
  // generation cache is shared across campaigns, and the merged telemetry
  // counts the pass once, exactly as in-process execution does. ----
  std::vector<symbolic::TestPacket> campaign_packets;
  const std::vector<symbolic::TestPacket>* precomputed = nullptr;
  std::vector<Incident> pre_phase_incidents;
  if (dataplane_shards > 1 ||
      (dataplane_shards == 1 && (remote || subprocess))) {
    StatusOr<std::vector<symbolic::TestPacket>> generated = [&] {
      ScopedSpan span(campaign_trace, "generate-packets", "campaign");
      ScopedTimer timer(&metrics.generation_ns, &metrics.generation_hist);
      return symbolic::GeneratePackets(model, parser, entries,
                                       options.dataplane.coverage,
                                       options.dataplane.cache,
                                       &report.generation);
    }();
    if (generated.ok()) {
      campaign_packets = std::move(generated).value();
      precomputed = &campaign_packets;
      metrics.Add(metrics.solver_queries,
                  static_cast<std::uint64_t>(report.generation.solver_queries));
      if (report.generation.cache_hit) {
        metrics.Add(metrics.generation_cache_hits, 1);
      }
    } else {
      Incident incident{Detector::kSymbolic,
                        "test packet generation failed: " +
                            generated.status().ToString(),
                        ""};
      incident.shard = control_shards;  // first dataplane shard
      // A generator defect never touched the switch: layer stays kNone and
      // the replay trace is an (empty) recorder rendering, so the report
      // format is uniform across incident classes.
      incident.replay_trace =
          FlightRecorder(options.flight_recorder_capacity).Render();
      pre_phase_incidents.push_back(std::move(incident));
    }
  }

  // ---- Execution: workers drain the shard queue. ----
  ShardEnv env{model,
               info,
               parser,
               entries,
               options.control_plane,
               options.dataplane,
               options.dataplane_on_fuzzed_state,
               options.tracer,
               options.flight_recorder_capacity};
  std::vector<ShardResult> results(shards.size());
  std::atomic<std::size_t> next_shard{0};
  auto worker = [&]() {
    for (std::size_t i = next_shard.fetch_add(1); i < shards.size();
         i = next_shard.fetch_add(1)) {
      const ShardSpec& spec = shards[i];
      const bool run_this_shard =
          spec.kind == ShardSpec::Kind::kControlPlane ||
          precomputed != nullptr || pre_phase_incidents.empty();
      if (options.telemetry != nullptr) {
        options.telemetry->ShardStarted();
        JournalAppend(JournalOf(options), JournalEventKind::kShardDispatched,
                      EffectiveCampaignId(options), spec.index, "",
                      remote       ? "remote"
                      : subprocess ? "subprocess"
                                   : "in-process");
      }
      if (run_this_shard) {
        if (remote) {
          results[i] =
              RunShardViaRemote(spec, options, *host_pool, options.fleet,
                                remote_secret,
                                spec.kind == ShardSpec::Kind::kDataplane
                                    ? precomputed
                                    : nullptr,
                                metrics);
        } else if (subprocess) {
          results[i] =
              RunShardViaWorker(spec, worker_binary, options,
                                spec.kind == ShardSpec::Kind::kDataplane
                                    ? precomputed
                                    : nullptr,
                                metrics);
        } else {
          StatusOr<ShardResult> outcome =
              spec.kind == ShardSpec::Kind::kControlPlane
                  ? RunControlPlaneShard(spec, env, metrics)
                  : RunDataplaneShard(spec, env, precomputed, metrics);
          results[i] = outcome.ok()
                           ? std::move(outcome).value()
                           : LostShard(spec.index, outcome.status(), options,
                                       metrics);
        }
      }
      metrics.Add(metrics.shards_completed, 1);
      if (options.telemetry != nullptr) {
        // Guided campaigns stamp the cumulative edge count on each
        // completion event: the shard's wire metrics merged just above, so
        // the journal alone yields a coverage-growth curve (EXPERIMENTS.md
        // has the plotting recipe). Unguided journals stay byte-identical.
        std::string detail;
        if (options.guidance != fuzzer::Guidance::kUniform) {
          detail = "coverage " +
                   std::to_string(metrics.coverage_edges_total.load()) +
                   " edges, " +
                   std::to_string(metrics.coverage_new_edges.load()) +
                   " novel";
        }
        JournalAppend(JournalOf(options), JournalEventKind::kShardCompleted,
                      EffectiveCampaignId(options), spec.index, "",
                      std::move(detail));
        options.telemetry->ShardFinished();
      }
    }
  };
  const int workers =
      std::clamp(options.parallelism, 1, std::max(1, total_shards));
  if (workers == 1) {
    worker();  // run inline: no thread overhead for sequential campaigns
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i) pool.emplace_back(worker);
    for (std::thread& thread : pool) thread.join();
  }

  // ---- Merge: deterministic shard order, incident pipeline dedup. ----
  std::map<std::uint64_t, std::size_t> group_by_fingerprint;
  std::uint64_t raw_incidents = 0;
  auto absorb = [&](Incident incident, int shard_index) {
    incident.shard = shard_index;
    ++raw_incidents;
    const std::uint64_t fingerprint = IncidentFingerprint(incident);
    auto [it, inserted] =
        group_by_fingerprint.try_emplace(fingerprint, report.groups.size());
    if (inserted) {
      if (options.telemetry != nullptr) {
        const std::string detector(DetectorName(incident.detector));
        const std::string layer(sut::SutLayerName(incident.layer));
        JournalAppend(JournalOf(options),
                      JournalEventKind::kIncidentFirstSeen,
                      EffectiveCampaignId(options), shard_index, "",
                      "fingerprint " + std::to_string(fingerprint) + " " +
                          detector + "/" + layer);
        options.telemetry->RecordIncidentClass(detector, layer);
      }
      IncidentGroup group;
      group.exemplar = std::move(incident);
      group.fingerprint = fingerprint;
      report.groups.push_back(std::move(group));
    }
    IncidentGroup& group = report.groups[it->second];
    ++group.occurrences;
    if (group.shards.empty() || group.shards.back() != shard_index) {
      group.shards.push_back(shard_index);
    }
  };
  for (Incident& incident : pre_phase_incidents) {
    const int shard_index = incident.shard;
    absorb(std::move(incident), shard_index);
  }
  for (std::size_t i = 0; i < shards.size(); ++i) {
    for (Incident& incident : results[i].incidents) {
      absorb(std::move(incident), shards[i].index);
    }
    report.fuzzed_updates += results[i].fuzzed_updates;
    report.packets_tested += results[i].packets_tested;
    if (!results[i].seeds.empty()) {
      // Seed exchange: harvested seeds concatenate in shard order — a pure
      // function of the shard results, independent of parallelism — ready
      // to fan out as guidance_seeds of a follow-up campaign.
      metrics.Add(metrics.seeds_exchanged, results[i].seeds.size());
      JournalAppend(JournalOf(options), JournalEventKind::kSeedsExchanged,
                    EffectiveCampaignId(options), shards[i].index, "",
                    std::to_string(results[i].seeds.size()) + " seeds");
      for (fuzzer::SeedDescriptor& seed : results[i].seeds) {
        report.harvested_seeds.push_back(seed);
      }
    }
    if (shards[i].kind == ShardSpec::Kind::kDataplane &&
        dataplane_shards == 1 && precomputed == nullptr) {
      // With a pre-phase the generation stats are already in the report;
      // the shard never generated.
      report.generation = results[i].generation;
    }
  }
  report.shards_run = total_shards;
  if (host_pool.has_value()) {
    metrics.Add(metrics.hosts_retired, host_pool->retired_count());
  }
  metrics.Add(metrics.incidents_raised, raw_incidents);
  metrics.Add(metrics.incidents_unique, report.groups.size());
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    campaign_start)
          .count();
  report.metrics = metrics.Snapshot(wall_seconds);
  if (options.telemetry != nullptr) {
    options.telemetry->EndCampaign(report.metrics);
  }
  return report;
}

}  // namespace switchv
