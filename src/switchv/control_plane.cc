#include "switchv/control_plane.h"

namespace switchv {

ControlPlaneResult RunControlPlaneValidation(
    sut::SwitchUnderTest& sut, const p4ir::P4Info& info,
    const ControlPlaneOptions& options) {
  ControlPlaneResult result;
  Metrics* metrics = options.metrics;
  fuzzer::RequestGenerator generator(info, options.fuzzer, options.seed);
  fuzzer::Oracle oracle(info);

  // Seed the oracle's view with whatever is already installed.
  auto initial = sut.Read(p4rt::ReadRequest{});
  if (initial.ok()) {
    oracle.SyncState(initial->entries);
  }

  for (int i = 0; i < options.num_requests; ++i) {
    const std::vector<fuzzer::AnnotatedUpdate> batch =
        generator.GenerateBatch(oracle.state(), options.updates_per_request);
    p4rt::WriteRequest request;
    for (const fuzzer::AnnotatedUpdate& annotated : batch) {
      request.updates.push_back(annotated.update);
    }
    p4rt::WriteResponse response;
    {
      ScopedTimer timer(metrics ? &metrics->switch_write_ns : nullptr);
      response = sut.Write(request);
    }
    result.updates_sent += static_cast<int>(batch.size());
    ++result.requests_sent;
    if (metrics != nullptr) {
      metrics->Add(metrics->updates_sent, batch.size());
      metrics->Add(metrics->requests_sent, 1);
    }

    const auto post_read = sut.Read(p4rt::ReadRequest{});
    std::vector<fuzzer::Finding> findings;
    {
      ScopedTimer timer(metrics ? &metrics->oracle_ns : nullptr);
      findings = oracle.JudgeBatch(batch, response, post_read);
    }
    if (metrics != nullptr) {
      metrics->Add(metrics->oracle_findings, findings.size());
    }
    for (fuzzer::Finding& finding : findings) {
      if (static_cast<int>(result.incidents.size()) >=
          options.max_incidents) {
        break;
      }
      std::string details = finding.entry_text;
      if (finding.mutation.has_value()) {
        details += " [mutation: " +
                   std::string(fuzzer::MutationName(*finding.mutation)) + "]";
      }
      result.incidents.push_back(Incident{Detector::kFuzzer,
                                          std::move(finding.message),
                                          std::move(details),
                                          finding.table_id});
    }
    if (static_cast<int>(result.incidents.size()) >= options.max_incidents) {
      break;
    }
  }
  if (metrics != nullptr) {
    metrics->Add(metrics->generated_valid, generator.generated_valid());
    metrics->Add(metrics->generated_invalid, generator.generated_invalid());
  }
  return result;
}

}  // namespace switchv
