#include "switchv/control_plane.h"

#include <memory>
#include <string>

namespace switchv {

ControlPlaneResult RunControlPlaneValidation(
    sut::SwitchUnderTest& sut, const p4ir::P4Info& info,
    const ControlPlaneOptions& options) {
  ControlPlaneResult result;
  Metrics* metrics = options.metrics;
  TraceTrack* trace = options.trace;
  FlightRecorder* recorder = options.recorder;
  fuzzer::RequestGenerator generator(info, options.fuzzer, options.seed);
  fuzzer::Oracle oracle(
      info, options.oracle_cache ? options.judgment_cache : nullptr);
  std::unique_ptr<fuzzer::CoverageScheduler> scheduler;
  if (options.guidance == fuzzer::Guidance::kCoverage) {
    scheduler = std::make_unique<fuzzer::CoverageScheduler>(
        options.seed, options.guidance_options);
    scheduler->ImportSeeds(options.guidance_seeds);
    generator.set_scheduler(scheduler.get());
  }

  // Seed the oracle's view with whatever is already installed.
  auto initial = sut.Read(p4rt::ReadRequest{});
  if (initial.ok()) {
    oracle.SyncState(initial->entries);
  }

  for (int i = 0; i < options.num_requests; ++i) {
    ScopedSpan batch_span(trace, "fuzz-batch " + std::to_string(i),
                          "control-plane");
    std::vector<fuzzer::AnnotatedUpdate> batch;
    {
      ScopedSpan span(trace, "generate", "control-plane");
      batch = generator.GenerateBatch(oracle.state(),
                                      options.updates_per_request);
    }
    p4rt::WriteRequest request;
    for (const fuzzer::AnnotatedUpdate& annotated : batch) {
      request.updates.push_back(annotated.update);
    }
    p4rt::WriteResponse response;
    {
      ScopedSpan span(trace, "switch-write", "control-plane");
      ScopedTimer timer(metrics ? &metrics->switch_write_ns : nullptr,
                        metrics ? &metrics->switch_write_hist : nullptr);
      response = sut.Write(request);
      span.AddArg("layers", sut.probe().OpLayersSummary());
    }
    int rejected = 0;
    for (const Status& status : response.statuses) {
      if (!status.ok()) ++rejected;
    }
    if (recorder != nullptr) {
      recorder->RecordOperation(FlightEvent::Kind::kWrite, sut.probe(),
                                rejected, "fuzz batch " + std::to_string(i));
    }
    // The write's layer attribution outlives the probe state (the post-read
    // below restarts the operation): capture it now for incident reports.
    const sut::SutLayer write_layer =
        sut.probe().op_failed_deepest() != sut::SutLayer::kNone
            ? sut.probe().op_failed_deepest()
            : sut.probe().op_deepest();
    // Feed the coverage map before the post-read below restarts the probe
    // operation and drops the per-unit layer log.
    if (scheduler != nullptr) {
      const sut::StackProbe& probe = sut.probe();
      for (std::size_t u = 0; u < batch.size(); ++u) {
        const p4rt::TableEntry& entry = batch[u].update.entry;
        const std::uint32_t action_id =
            entry.action.kind == p4rt::TableAction::Kind::kDirect
                ? entry.action.direct.action_id
                : 0;
        const std::uint8_t layer_mask =
            static_cast<int>(u) < probe.unit_count()
                ? probe.unit_layer_mask(static_cast<int>(u))
                : 0;
        scheduler->RecordUpdate(
            entry.table_id, action_id, layer_mask,
            batch[u].mutation.has_value() ? static_cast<int>(*batch[u].mutation)
                                          : -1);
      }
      scheduler->EndBatch();
    }
    result.updates_sent += static_cast<int>(batch.size());
    ++result.requests_sent;
    if (metrics != nullptr) {
      metrics->Add(metrics->updates_sent, batch.size());
      metrics->Add(metrics->requests_sent, 1);
    }

    const auto post_read = sut.Read(p4rt::ReadRequest{});
    if (recorder != nullptr) {
      recorder->RecordOperation(FlightEvent::Kind::kRead, sut.probe(),
                                post_read.ok() ? 0 : 1, "post-batch read");
    }
    std::vector<fuzzer::Finding> findings;
    {
      ScopedSpan span(trace, "oracle", "control-plane");
      ScopedTimer timer(metrics ? &metrics->oracle_ns : nullptr,
                        metrics ? &metrics->oracle_hist : nullptr);
      findings = oracle.JudgeBatch(batch, response, post_read);
      span.AddArg("findings", static_cast<std::uint64_t>(findings.size()));
    }
    if (metrics != nullptr) {
      metrics->Add(metrics->oracle_findings, findings.size());
    }
    batch_span.AddArg("updates", static_cast<std::uint64_t>(batch.size()));
    batch_span.AddArg("rejected", static_cast<std::uint64_t>(rejected));
    for (fuzzer::Finding& finding : findings) {
      if (static_cast<int>(result.incidents.size()) >=
          options.max_incidents) {
        break;
      }
      std::string details = finding.entry_text;
      if (finding.mutation.has_value()) {
        details += " [mutation: " +
                   std::string(fuzzer::MutationName(*finding.mutation)) + "]";
      }
      Incident incident{Detector::kFuzzer, std::move(finding.message),
                        std::move(details), finding.table_id};
      incident.layer = write_layer;
      if (recorder != nullptr) incident.replay_trace = recorder->Render();
      result.incidents.push_back(std::move(incident));
    }
    if (static_cast<int>(result.incidents.size()) >= options.max_incidents) {
      break;
    }
  }
  if (scheduler != nullptr) {
    result.coverage_edges = scheduler->map().PopulatedEdges();
    result.coverage_novelty = scheduler->novelty_events();
    result.harvested_seeds = scheduler->HarvestSeeds();
    if (metrics != nullptr) {
      metrics->Add(metrics->coverage_edges_total, result.coverage_edges);
      metrics->Add(metrics->coverage_new_edges, result.coverage_novelty);
    }
  }
  if (metrics != nullptr) {
    metrics->Add(metrics->generated_valid, generator.generated_valid());
    metrics->Add(metrics->generated_invalid, generator.generated_invalid());
    const fuzzer::JudgmentCacheStats& cache_stats = oracle.cache_stats();
    metrics->Add(metrics->oracle_cache_hits, cache_stats.hits);
    metrics->Add(metrics->oracle_cache_misses, cache_stats.misses);
    metrics->Add(metrics->oracle_cache_evictions, cache_stats.evictions);
  }
  return result;
}

}  // namespace switchv
