// Fleet provisioner and host pool for remote campaign execution.
//
// PR 5's remote dispatcher took a static list of `switchv_worker_host`
// endpoints the operator had started by hand; a host that died stayed dead
// for the rest of the campaign. This module closes that loop:
//
//   * `Fleet` launches, health-checks, drains, and *replaces* worker-host
//     processes. Two backends: kLocalProcess forks `switchv_worker_host`
//     directly (the one CI exercises), kCommandTemplate runs a user-supplied
//     launch command with {host}/{port} placeholders (ssh wrappers,
//     container runtimes). A host enters service only through the bring-up
//     gate: process started, endpoint announced, and a hello round-trip
//     answered within the bring-up deadline. Retired hosts are reprovisioned
//     up to a budget; a torn-down fleet degrades the campaign to synthetic
//     harness incidents, never a hang.
//
//   * `HostPool` is the dispatcher's endpoint selector: work-stealing
//     acquire (least-loaded live host), consecutive-transport-failure
//     retirement, and — new here — cooldown *probation*: a retired host is
//     no longer gone for good; after the cooldown one probe shard is routed
//     to it, and a success re-admits the host while a failure re-retires it
//     with a fresh cooldown. A host that flapped during a transient network
//     wobble rejoins the campaign instead of shrinking the fleet forever.
//
// Threading: HostPool is fully thread-safe (the dispatcher's worker threads
// share it). Fleet::Replace is serialized internally; Provision and Drain
// are called from the owning thread.
#ifndef SWITCHV_SWITCHV_FLEET_H_
#define SWITCHV_SWITCHV_FLEET_H_

#include <sys/types.h>

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace switchv {

class EventJournal;  // switchv/journal.h

// ---------------------------------------------------------------------------
// HostPool
// ---------------------------------------------------------------------------

// Endpoint pool with work-stealing acquire, consecutive-failure retirement,
// and cooldown probation. Time is injectable (AcquireAt/ReleaseAt) so the
// probation state machine is testable without sleeping.
class HostPool {
 public:
  using Clock = std::chrono::steady_clock;

  struct Options {
    // A host with this many *consecutive* transport failures is retired.
    int max_consecutive_failures = 2;
    // A retired host becomes probe-eligible after this cooldown; <= 0
    // makes retirement permanent (the pre-probation behaviour).
    double probation_cooldown_seconds = 5;
    // Optional event journal (switchv/journal.h): retire / probation /
    // readmission transitions are appended as they happen. Not owned;
    // null disables journaling.
    EventJournal* journal = nullptr;
    // Campaign identity stamped on journaled events.
    std::uint64_t campaign_id = 0;
  };

  HostPool(const std::vector<std::string>& endpoints, Options options);

  // Index of the host to dispatch to, or -1 when nothing is acquirable.
  // Preference order: a retired host whose cooldown has elapsed (one probe
  // shard, at most one in flight per host), else the least-loaded live
  // host.
  int Acquire() { return AcquireAt(Clock::now()); }
  int AcquireAt(Clock::time_point now);

  // `transport_ok` is false when the call failed at the transport level
  // (connect failure, dropped or silent connection, authentication
  // failure) — worker failures reported in-band do not count against the
  // host. `newly_retired` flags the live→retired transition so the caller
  // can trigger reprovisioning exactly once per retirement.
  struct ReleaseOutcome {
    bool newly_retired = false;
    std::string endpoint;  // set when newly_retired
  };
  ReleaseOutcome Release(int index, bool transport_ok) {
    return ReleaseAt(index, transport_ok, Clock::now());
  }
  ReleaseOutcome ReleaseAt(int index, bool transport_ok,
                           Clock::time_point now);

  // Adds a freshly provisioned endpoint to the pool, live immediately (it
  // passed the fleet's bring-up gate). Returns its index.
  int AddEndpoint(const std::string& endpoint);

  // Permanently removes an endpoint from rotation — its replacement has
  // been provisioned, so probation must never resurrect it.
  void MarkDead(const std::string& endpoint);

  std::string endpoint(int index) const;
  // Cumulative live→retired transitions (probation re-retirement of an
  // already-retired host does not count again).
  std::uint64_t retired_count() const;
  // Hosts re-admitted by a successful probation probe.
  std::uint64_t probe_readmissions() const;
  std::size_t size() const;

 private:
  enum class State { kLive, kRetired, kDead };
  struct Host {
    std::string endpoint;
    State state = State::kLive;
    int inflight = 0;
    int consecutive_failures = 0;
    bool on_probation = false;  // the single probe shard is in flight
    Clock::time_point retired_at{};
  };

  mutable std::mutex mu_;
  std::vector<Host> hosts_;
  const Options options_;
  std::uint64_t retirements_ = 0;
  std::uint64_t probe_readmissions_ = 0;
};

// ---------------------------------------------------------------------------
// Fleet
// ---------------------------------------------------------------------------

struct FleetOptions {
  enum class Backend {
    kLocalProcess,      // fork/exec switchv_worker_host on this machine
    kCommandTemplate,   // run `command_template` via /bin/sh per host
  };
  Backend backend = Backend::kLocalProcess;

  // Hosts brought up by Provision().
  int size = 2;

  // ---- kLocalProcess ----
  // switchv_worker_host binary; empty consults $SWITCHV_WORKER_HOST.
  std::string host_binary;
  // Shard worker the hosts run; empty consults $SWITCHV_SHARD_WORKER
  // (which the host binary also resolves itself).
  std::string worker_binary;
  // Extra argv for every host (test hooks: --drop-once-on-shard=N).
  std::vector<std::string> host_extra_args;
  std::string bind_host = "127.0.0.1";

  // ---- kCommandTemplate ----
  // Launch command with {host} and {port} placeholders, e.g.
  //   "ssh testbed-{host} switchv_worker_host --bind=0.0.0.0 --port={port}"
  // Run via `/bin/sh -c` in its own process group so Drain can tear down
  // the whole command.
  std::string command_template;
  // The endpoint host the dispatcher dials for template-launched hosts.
  std::string template_host = "127.0.0.1";
  // First port for template hosts (incremented per launch); 0 asks the
  // kernel for a free ephemeral port per host.
  int base_port = 0;

  // Shared secret for frame authentication (see shard_transport.h). Passed
  // to local-process hosts via $SWITCHV_FLEET_SECRET — never argv, so it
  // stays out of /proc/*/cmdline. Empty = unauthenticated (the default;
  // wire bytes identical to the pre-auth protocol).
  std::string auth_secret;

  // Bring-up gate: a host that has not announced its endpoint *and*
  // answered a hello within this deadline is killed and counts as a
  // provisioning failure.
  double bring_up_timeout_seconds = 10;
  // Hello-probe retry interval during bring-up.
  double health_check_interval_seconds = 0.25;

  // Replace() calls honoured over the fleet's lifetime; further calls fail
  // with RESOURCE_EXHAUSTED and the campaign degrades gracefully.
  int reprovision_budget = 4;

  // Optional event journal (switchv/journal.h): host-launched and
  // host-hello (bring-up gate passed) events are appended per launch,
  // including launches on behalf of Replace(). Not owned; null disables
  // journaling.
  EventJournal* journal = nullptr;
  // Campaign identity stamped on journaled events.
  std::uint64_t campaign_id = 0;
};

// A provisioned fleet of worker hosts. Drains (SIGTERM, then SIGKILL) on
// destruction; every child runs in its own process group so draining a
// host also reaps anything it spawned.
class Fleet {
 public:
  explicit Fleet(FleetOptions options);
  ~Fleet();
  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  struct HostInfo {
    std::string endpoint;
    pid_t pid = -1;
  };

  // Brings up `options.size` hosts through the bring-up gate. On any
  // failure the already-started hosts are drained and the error returned.
  Status Provision();

  // Endpoints of the currently live (non-replaced) hosts.
  std::vector<std::string> Endpoints() const;
  // Endpoint/pid pairs of the live hosts (tests kill pids directly).
  std::vector<HostInfo> Hosts() const;

  // Replaces a retired host with a freshly provisioned one: the old
  // process (group) is SIGKILLed and reaped, a new host is brought up
  // through the same gate, and its endpoint returned. RESOURCE_EXHAUSTED
  // once the reprovision budget is spent; NOT_FOUND for an endpoint this
  // fleet does not own.
  StatusOr<std::string> Replace(const std::string& endpoint);

  // Stops every host: SIGTERM to the process group, a short grace period,
  // then SIGKILL; all children reaped. Idempotent.
  void Drain();

  // Hosts successfully brought up by Replace().
  int reprovisions() const;

  const FleetOptions& options() const { return options_; }

 private:
  struct ManagedHost {
    std::string endpoint;
    pid_t pid = -1;
    bool alive = false;
  };

  // Launches one host through the bring-up gate (unlocked; callers
  // serialize via mu_).
  StatusOr<ManagedHost> LaunchHost();
  StatusOr<ManagedHost> LaunchLocalProcess();
  StatusOr<ManagedHost> LaunchCommandTemplate();
  Status AwaitHealthy(const std::string& endpoint,
                      HostPool::Clock::time_point deadline);
  static void KillHost(ManagedHost& host, bool graceful);

  mutable std::mutex mu_;
  FleetOptions options_;
  std::vector<ManagedHost> hosts_;
  int reprovisions_ = 0;
  int next_template_port_ = 0;
};

}  // namespace switchv

#endif  // SWITCHV_SWITCHV_FLEET_H_
