// Campaign telemetry (paper §8 "Deployment"): SwitchV's production fleet
// aggregates per-run statistics — updates/sec, packets/sec, time spent in
// the oracle vs. the reference simulator vs. the solver — so regressions in
// validation throughput are visible. This is the reproduction's equivalent:
// a thread-safe bag of counters and phase timers that every campaign shard
// writes into and every campaign emits as a structured stats block.
//
// `Metrics` is the live, atomic object shared across shard worker threads;
// `MetricsSnapshot` is the plain-value copy embedded in reports.
#ifndef SWITCHV_SWITCHV_METRICS_H_
#define SWITCHV_SWITCHV_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace switchv {

// Plain-value copy of the counters plus derived rates. Copyable, printable.
struct MetricsSnapshot {
  // Campaign shape.
  std::uint64_t shards_completed = 0;
  double wall_seconds = 0;

  // Control-plane (p4-fuzzer) counters.
  std::uint64_t updates_sent = 0;
  std::uint64_t requests_sent = 0;
  std::uint64_t generated_valid = 0;
  std::uint64_t generated_invalid = 0;
  std::uint64_t oracle_findings = 0;

  // Data-plane (p4-symbolic) counters.
  std::uint64_t packets_tested = 0;
  std::uint64_t solver_queries = 0;
  std::uint64_t generation_cache_hits = 0;

  // Switch-under-test I/O.
  std::uint64_t switch_writes = 0;
  std::uint64_t switch_reads = 0;
  std::uint64_t switch_packets_injected = 0;

  // Incident pipeline.
  std::uint64_t incidents_raised = 0;   // raw, before dedup
  std::uint64_t incidents_unique = 0;   // distinct fingerprints

  // Phase timers (nanoseconds, summed across shards — with parallelism > 1
  // the sum exceeds wall time; that is the point of sharding).
  std::uint64_t switch_write_ns = 0;
  std::uint64_t oracle_ns = 0;
  std::uint64_t reference_ns = 0;
  std::uint64_t generation_ns = 0;

  double updates_per_second() const {
    return wall_seconds > 0 ? static_cast<double>(updates_sent) / wall_seconds
                            : 0;
  }
  double packets_per_second() const {
    return wall_seconds > 0
               ? static_cast<double>(packets_tested) / wall_seconds
               : 0;
  }

  // The structured stats block every campaign emits, e.g.:
  //   campaign stats: 5 shards, wall 1.84s
  //     control-plane: 2000 updates / 40 requests (1087 updates/s), ...
  std::string ToString() const;
};

// Thread-safe telemetry sink. All counters are relaxed atomics: shards only
// ever add, and readers snapshot after the worker pool joins (or tolerate a
// slightly stale view mid-run).
class Metrics {
 public:
  std::atomic<std::uint64_t> shards_completed{0};
  std::atomic<std::uint64_t> updates_sent{0};
  std::atomic<std::uint64_t> requests_sent{0};
  std::atomic<std::uint64_t> generated_valid{0};
  std::atomic<std::uint64_t> generated_invalid{0};
  std::atomic<std::uint64_t> oracle_findings{0};
  std::atomic<std::uint64_t> packets_tested{0};
  std::atomic<std::uint64_t> solver_queries{0};
  std::atomic<std::uint64_t> generation_cache_hits{0};
  std::atomic<std::uint64_t> switch_writes{0};
  std::atomic<std::uint64_t> switch_reads{0};
  std::atomic<std::uint64_t> switch_packets_injected{0};
  std::atomic<std::uint64_t> incidents_raised{0};
  std::atomic<std::uint64_t> incidents_unique{0};
  std::atomic<std::uint64_t> switch_write_ns{0};
  std::atomic<std::uint64_t> oracle_ns{0};
  std::atomic<std::uint64_t> reference_ns{0};
  std::atomic<std::uint64_t> generation_ns{0};

  void Add(std::atomic<std::uint64_t>& counter, std::uint64_t n) {
    counter.fetch_add(n, std::memory_order_relaxed);
  }

  MetricsSnapshot Snapshot(double wall_seconds) const;
};

// Accumulates wall time into an atomic nanosecond counter on destruction.
// Null-safe: a null sink makes the timer a no-op, so instrumented code paths
// work unchanged when no metrics are attached.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::atomic<std::uint64_t>* sink_ns)
      : sink_(sink_ns),
        start_(sink_ns != nullptr ? std::chrono::steady_clock::now()
                                  : std::chrono::steady_clock::time_point{}) {}
  ~ScopedTimer() {
    if (sink_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    sink_->fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()),
        std::memory_order_relaxed);
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  std::atomic<std::uint64_t>* sink_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace switchv

#endif  // SWITCHV_SWITCHV_METRICS_H_
