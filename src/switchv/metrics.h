// Campaign telemetry (paper §8 "Deployment"): SwitchV's production fleet
// aggregates per-run statistics — updates/sec, packets/sec, time spent in
// the oracle vs. the reference simulator vs. the solver — so regressions in
// validation throughput are visible. This is the reproduction's equivalent:
// a thread-safe bag of counters, phase timers, and fixed-bucket latency
// histograms that every campaign shard writes into and every campaign emits
// as a structured stats block.
//
// `Metrics` is the live, atomic object shared across shard worker threads;
// `MetricsSnapshot` is the plain-value copy embedded in reports, with three
// export formats: the human-readable stats block (`ToString`), Prometheus
// text exposition (`ToPrometheus`), and machine-readable JSON for bench
// trajectories (`ToJson` — what BENCH_fuzzer.json is made of).
#ifndef SWITCHV_SWITCHV_METRICS_H_
#define SWITCHV_SWITCHV_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace switchv {

// ---------------------------------------------------------------------------
// Fixed-bucket latency histograms
// ---------------------------------------------------------------------------

// Bucket layout shared by the live histogram and its snapshot: 26
// exponential buckets with upper bounds 1µs·2^i (1µs .. ~33.6s) plus one
// overflow bucket. Fixed buckets keep recording lock-free (one relaxed
// fetch_add) and make percentile math deterministic.
inline constexpr int kHistogramBuckets = 27;

// Upper bound (ns) of bucket `i`; the overflow bucket returns UINT64_MAX.
std::uint64_t HistogramBucketUpperNs(int i);

// Plain-value copy. Percentiles interpolate linearly within the bucket the
// requested rank falls into — exact enough for p50/p90/p99 dashboards and
// fully deterministic (no sampling).
struct HistogramSnapshot {
  std::array<std::uint64_t, kHistogramBuckets> counts{};
  std::uint64_t count = 0;
  std::uint64_t sum_ns = 0;

  // p in (0, 1], e.g. 0.5 / 0.9 / 0.99. Returns 0 for an empty histogram.
  std::uint64_t PercentileNs(double p) const;
};

// Thread-safe recording sink (relaxed atomics, like the counters).
class LatencyHistogram {
 public:
  void Record(std::uint64_t ns);
  HistogramSnapshot Snapshot() const;
  // Adds a snapshot's buckets and sum into this histogram — how the
  // campaign engine folds an out-of-process shard's telemetry back into
  // the campaign sink. Exact: bucket counts add, so the merged histogram
  // is identical to recording the same observations locally.
  void Merge(const HistogramSnapshot& snapshot);

 private:
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> counts_{};
  std::atomic<std::uint64_t> sum_ns_{0};
};

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

// Plain-value copy of the counters plus derived rates. Copyable, printable.
struct MetricsSnapshot {
  // Campaign shape.
  std::uint64_t shards_completed = 0;
  double wall_seconds = 0;

  // Control-plane (p4-fuzzer) counters.
  std::uint64_t updates_sent = 0;
  std::uint64_t requests_sent = 0;
  std::uint64_t generated_valid = 0;
  std::uint64_t generated_invalid = 0;
  std::uint64_t oracle_findings = 0;

  // Data-plane (p4-symbolic) counters.
  std::uint64_t packets_tested = 0;
  std::uint64_t solver_queries = 0;
  std::uint64_t generation_cache_hits = 0;

  // Bit-parallel reference simulation (bmv2/batch_interpreter.h):
  // lane-runs completed word-parallel, lane-runs demoted to the scalar
  // fallback, and packets enumerated through the reference (batch or
  // scalar) — the numerator of reference_packets_per_second().
  std::uint64_t batch_lanes_run = 0;
  std::uint64_t batch_scalar_fallbacks = 0;
  std::uint64_t reference_packets = 0;

  // Oracle judgment-cache traffic (fuzzer/judgment_cache.h): memoized
  // classification verdicts shared across every shard on a host.
  std::uint64_t oracle_cache_hits = 0;
  std::uint64_t oracle_cache_misses = 0;
  std::uint64_t oracle_cache_evictions = 0;

  // Coverage-guided fuzzing (fuzzer/coverage.h): distinct edges populated
  // in each shard's coverage map (summed across shards) and novelty events
  // credited by the scheduler. Shard-scope: they travel over the shard
  // wire and Merge() folds them like any other shard counter.
  std::uint64_t coverage_edges_total = 0;
  std::uint64_t coverage_new_edges = 0;
  // Interesting seeds fanned out / harvested through the campaign engine's
  // seed exchange. Engine-owned like remote_reconnects: never on the shard
  // wire, accounted once at merge.
  std::uint64_t seeds_exchanged = 0;

  // Switch-under-test I/O.
  std::uint64_t switch_writes = 0;
  std::uint64_t switch_reads = 0;
  std::uint64_t switch_packets_injected = 0;

  // Incident pipeline.
  std::uint64_t incidents_raised = 0;   // raw, before dedup
  std::uint64_t incidents_unique = 0;   // distinct fingerprints

  // Harness health (subprocess execution, switchv/shard_io.h). A lost
  // shard is one whose worker process never returned a result across all
  // retry attempts; crashes/timeouts count every failed attempt.
  std::uint64_t shards_lost = 0;
  std::uint64_t worker_crashes = 0;
  std::uint64_t worker_timeouts = 0;
  std::uint64_t worker_retries = 0;

  // Remote-transport health (switchv/shard_transport.h). Campaign-side
  // observations only — a worker host cannot see its own connection drop —
  // so these never travel over the shard wire protocol and Merge() leaves
  // them alone.
  std::uint64_t remote_reconnects = 0;  // redials after a dead connection
  std::uint64_t hosts_retired = 0;      // endpoints dropped from the pool

  // Phase timers (nanoseconds, summed across shards — with parallelism > 1
  // the sum exceeds wall time; that is the point of sharding).
  std::uint64_t switch_write_ns = 0;
  std::uint64_t oracle_ns = 0;
  std::uint64_t reference_ns = 0;
  std::uint64_t generation_ns = 0;

  // Per-phase latency distributions (p50/p90/p99 in the exports).
  HistogramSnapshot switch_write_hist;
  HistogramSnapshot oracle_hist;
  HistogramSnapshot reference_hist;
  HistogramSnapshot generation_hist;

  // Derived rates guard a zero/negative wall clock (instant campaigns must
  // not leak inf/nan into the stats block or the exporters).
  double updates_per_second() const {
    return SafeRate(static_cast<double>(updates_sent), wall_seconds);
  }
  double packets_per_second() const {
    return SafeRate(static_cast<double>(packets_tested), wall_seconds);
  }
  // Packets enumerated per second of reference-simulation phase time —
  // the rate the batch lane accelerates (and the bench gate pins).
  double reference_packets_per_second() const {
    return SafeRate(static_cast<double>(reference_packets),
                    static_cast<double>(reference_ns) / 1e9);
  }
  static double SafeRate(double numerator, double denominator) {
    return denominator > 0 ? numerator / denominator : 0;
  }

  // The structured stats block every campaign emits, e.g.:
  //   campaign stats: 5 shards, wall 1.84s
  //     control-plane: 2000 updates / 40 requests (1087 updates/s), ...
  std::string ToString() const;

  // Prometheus text exposition (format 0.0.4): counters, gauges, and the
  // four phase histograms in cumulative-bucket form, seconds-based.
  std::string ToPrometheus() const;

  // Machine-readable stats for per-PR bench trajectories: rates, totals,
  // and per-phase p50/p90/p99 in nanoseconds.
  std::string ToJson() const;

  // Lossless single-line JSON for the shard wire protocol: every counter
  // plus full per-phase bucket arrays, so a parent process can merge a
  // worker's telemetry exactly (shard_io.cc parses it back). Unlike
  // ToJson(), carries no derived rates and no percentiles — those are
  // recomputed after the merge.
  std::string ToWireJson() const;

  // Counter/histogram difference against an earlier snapshot of the same
  // sink: every u64 counter, phase timer, and histogram bucket is
  // subtracted (clamped at zero — the counters are monotone, the clamp only
  // guards a torn relaxed read). wall_seconds is left at zero: deltas are
  // interval-scoped, not campaign-scoped. The live-telemetry invariant is
  //   prev.Accumulate(prev.DeltaSince(base)) == prev  (field-wise),
  // so streaming per-interval deltas and merging them reproduces the final
  // snapshot exactly.
  MetricsSnapshot DeltaSince(const MetricsSnapshot& prev) const;

  // Adds another snapshot's counters, phase timers, and histogram buckets
  // into this one (plain values — the value-type sibling of
  // Metrics::Merge, but without the engine-owned-field exclusions: deltas
  // carry zeros there anyway). wall_seconds is not touched.
  void Accumulate(const MetricsSnapshot& delta);
};

// ---------------------------------------------------------------------------
// Prometheus exposition helpers (text format 0.0.4)
// ---------------------------------------------------------------------------

// Escapes a label *value*: backslash, double-quote, and newline become
// \\ \" \n — anything else (command-template host strings, incident
// summaries) passes through verbatim.
std::string PrometheusLabelEscape(std::string_view value);

// Sanitizes a metric-name fragment derived from enum names (detector
// "p4-fuzzer", layer "syncd-sai", ...) to [a-zA-Z_:][a-zA-Z0-9_:]*:
// every invalid character becomes '_', and a leading digit is prefixed
// with '_'. Empty input yields "_".
std::string PrometheusSanitizeName(std::string_view name);

// ---------------------------------------------------------------------------
// Live sink
// ---------------------------------------------------------------------------

// Thread-safe telemetry sink. All counters are relaxed atomics: shards only
// ever add, and readers snapshot after the worker pool joins (or tolerate a
// slightly stale view mid-run).
class Metrics {
 public:
  std::atomic<std::uint64_t> shards_completed{0};
  std::atomic<std::uint64_t> updates_sent{0};
  std::atomic<std::uint64_t> requests_sent{0};
  std::atomic<std::uint64_t> generated_valid{0};
  std::atomic<std::uint64_t> generated_invalid{0};
  std::atomic<std::uint64_t> oracle_findings{0};
  std::atomic<std::uint64_t> packets_tested{0};
  std::atomic<std::uint64_t> solver_queries{0};
  std::atomic<std::uint64_t> generation_cache_hits{0};
  std::atomic<std::uint64_t> batch_lanes_run{0};
  std::atomic<std::uint64_t> batch_scalar_fallbacks{0};
  std::atomic<std::uint64_t> reference_packets{0};
  std::atomic<std::uint64_t> oracle_cache_hits{0};
  std::atomic<std::uint64_t> oracle_cache_misses{0};
  std::atomic<std::uint64_t> oracle_cache_evictions{0};
  std::atomic<std::uint64_t> coverage_edges_total{0};
  std::atomic<std::uint64_t> coverage_new_edges{0};
  std::atomic<std::uint64_t> seeds_exchanged{0};
  std::atomic<std::uint64_t> switch_writes{0};
  std::atomic<std::uint64_t> switch_reads{0};
  std::atomic<std::uint64_t> switch_packets_injected{0};
  std::atomic<std::uint64_t> incidents_raised{0};
  std::atomic<std::uint64_t> incidents_unique{0};
  std::atomic<std::uint64_t> shards_lost{0};
  std::atomic<std::uint64_t> worker_crashes{0};
  std::atomic<std::uint64_t> worker_timeouts{0};
  std::atomic<std::uint64_t> worker_retries{0};
  std::atomic<std::uint64_t> remote_reconnects{0};
  std::atomic<std::uint64_t> hosts_retired{0};
  std::atomic<std::uint64_t> switch_write_ns{0};
  std::atomic<std::uint64_t> oracle_ns{0};
  std::atomic<std::uint64_t> reference_ns{0};
  std::atomic<std::uint64_t> generation_ns{0};

  LatencyHistogram switch_write_hist;
  LatencyHistogram oracle_hist;
  LatencyHistogram reference_hist;
  LatencyHistogram generation_hist;

  void Add(std::atomic<std::uint64_t>& counter, std::uint64_t n) {
    counter.fetch_add(n, std::memory_order_relaxed);
  }

  // Adds a (worker-process) snapshot's counters and histogram buckets into
  // this live sink. Skips campaign-scope fields the engine owns
  // (shards_completed, incidents_raised/unique, wall time): those are
  // accounted once, at merge, regardless of where the shard ran.
  void Merge(const MetricsSnapshot& snapshot);

  MetricsSnapshot Snapshot(double wall_seconds) const;
};

// Accumulates wall time into an atomic nanosecond counter — and optionally
// a latency histogram — on destruction. Null-safe: a null sink makes the
// timer a no-op, so instrumented code paths work unchanged when no metrics
// are attached.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::atomic<std::uint64_t>* sink_ns,
                       LatencyHistogram* histogram = nullptr)
      : sink_(sink_ns),
        histogram_(histogram),
        start_(sink_ns != nullptr || histogram != nullptr
                   ? std::chrono::steady_clock::now()
                   : std::chrono::steady_clock::time_point{}) {}
  ~ScopedTimer() {
    if (sink_ == nullptr && histogram_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    const auto elapsed_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count());
    if (sink_ != nullptr) {
      sink_->fetch_add(elapsed_ns, std::memory_order_relaxed);
    }
    if (histogram_ != nullptr) {
      histogram_->Record(elapsed_ns);
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  std::atomic<std::uint64_t>* sink_;
  LatencyHistogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace switchv

#endif  // SWITCHV_SWITCHV_METRICS_H_
