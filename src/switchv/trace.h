// Span tracing for validation campaigns (paper §8 "Deployment").
//
// An incident report says *what* diverged; operators also need to see
// *where validation time goes* — how long each shard spent fuzzing vs. in
// the oracle vs. waiting on Z3, and which SUT layers its traffic crossed.
// This module records that as a tree of spans per campaign:
//
//   campaign
//   ├─ generate-packets            (campaign thread, dataplane pre-phase)
//   ├─ shard 0 (control-plane)
//   │  ├─ fuzz-batch 0  ├─ generate ├─ switch-write ├─ oracle
//   │  └─ ...
//   └─ shard 4 (dataplane)
//      ├─ install ├─ resync ├─ churn ├─ read-back ├─ reference-install
//      └─ packet-test
//
// Design constraints (all load-bearing for the engine):
//   * Thread-safe: shard workers record concurrently into one `Tracer`
//     (a mutex-guarded sink; spans are assembled lock-free on the shard's
//     own `TraceTrack` and pushed once, at close).
//   * Near-zero cost when disabled: a null `TraceTrack*` makes every
//     `ScopedSpan` a pointer check (benchmarked in bench/micro_benchmarks).
//   * Deterministic content: span identity is (shard, per-track sequence),
//     both pure functions of the campaign options. Exports order spans by
//     that identity, so trace *content* is identical for parallelism 1 and
//     N; only timestamps differ.
//
// Export: Chrome trace_event JSON — load the file in chrome://tracing or
// https://ui.perfetto.dev to see the campaign on a timeline.
#ifndef SWITCHV_SWITCHV_TRACE_H_
#define SWITCHV_SWITCHV_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace switchv {

// One completed span. `seq` numbers spans per track in open order starting
// at 1; `parent_seq` is the enclosing open span on the same track (0 =
// track root). Times are nanoseconds relative to the tracer's epoch.
struct TraceSpan {
  std::string name;
  std::string category;
  int shard = -1;  // -1 = the campaign-level track
  std::uint64_t seq = 0;
  std::uint64_t parent_seq = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  std::vector<std::pair<std::string, std::string>> args;
  // Fleet provenance, assigned by the coordinator when it absorbs a remote
  // shard's spans (never serialized on the shard wire — a worker does not
  // know its own endpoint). Empty = recorded in the coordinator process.
  // ToChromeJson renders each distinct host as its own process track.
  std::string host;
};

// Campaign-wide span sink. Thread-safe; one per campaign run.
class Tracer {
 public:
  Tracer() : epoch_(std::chrono::steady_clock::now()) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  std::uint64_t NowNs() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  void Record(TraceSpan span) {
    std::lock_guard<std::mutex> lock(mu_);
    spans_.push_back(std::move(span));
  }

  // All recorded spans in deterministic order: (shard, seq).
  std::vector<TraceSpan> Spans() const;

  // Spans recorded since the cursor position, in record order, advancing
  // the caller-owned cursor past them. The incremental sibling of Spans()
  // for live telemetry samplers: repeated calls partition the record
  // stream without copying the whole history each tick.
  std::vector<TraceSpan> SpansSince(std::size_t* cursor) const;

  // Chrome trace_event JSON ("X" complete events, one tid per shard).
  // Deterministic event order; timestamps are the only run-varying part.
  std::string ToChromeJson() const;

 private:
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<TraceSpan> spans_;
};

// A shard's handle into the tracer. Single-threaded (each shard owns one),
// which makes sequence numbers — and therefore trace content — independent
// of worker-pool scheduling.
class TraceTrack {
 public:
  TraceTrack(Tracer* tracer, int shard) : tracer_(tracer), shard_(shard) {}

  Tracer* tracer() const { return tracer_; }
  int shard() const { return shard_; }
  bool enabled() const { return tracer_ != nullptr; }

  // ScopedSpan internals.
  std::uint64_t OpenSpan() {
    const std::uint64_t seq = next_seq_++;
    open_.push_back(seq);
    return seq;
  }
  std::uint64_t CurrentParent() const {
    return open_.empty() ? 0 : open_.back();
  }
  void CloseSpan() { open_.pop_back(); }

 private:
  Tracer* tracer_;
  int shard_;
  std::uint64_t next_seq_ = 1;
  std::vector<std::uint64_t> open_;
};

// RAII span. A null track disables it entirely — construction is a pointer
// copy and a branch, so instrumented code paths cost ~nothing untraced.
class ScopedSpan {
 public:
  ScopedSpan(TraceTrack* track, std::string_view name,
             std::string_view category)
      : track_(track) {
    if (track_ == nullptr) return;
    span_.parent_seq = track_->CurrentParent();
    span_.seq = track_->OpenSpan();
    span_.shard = track_->shard();
    span_.name = name;
    span_.category = category;
    span_.start_ns = track_->tracer()->NowNs();
  }

  ~ScopedSpan() {
    if (track_ == nullptr) return;
    span_.duration_ns = track_->tracer()->NowNs() - span_.start_ns;
    track_->CloseSpan();
    track_->tracer()->Record(std::move(span_));
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool enabled() const { return track_ != nullptr; }

  void AddArg(std::string_view key, std::string_view value) {
    if (track_ == nullptr) return;
    span_.args.emplace_back(std::string(key), std::string(value));
  }
  void AddArg(std::string_view key, std::uint64_t value) {
    if (track_ == nullptr) return;
    span_.args.emplace_back(std::string(key), std::to_string(value));
  }

 private:
  TraceTrack* track_;
  TraceSpan span_;
};

// Escapes a string for embedding in a JSON string literal (shared with the
// metrics exporters).
std::string JsonEscape(std::string_view text);

}  // namespace switchv

#endif  // SWITCHV_SWITCHV_TRACE_H_
