#include "switchv/fleet.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <utility>

#include "switchv/journal.h"
#include "switchv/shard_transport.h"

namespace switchv {

namespace {

using Clock = HostPool::Clock;

Clock::time_point DeadlineAfter(double seconds) {
  return Clock::now() + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(
                                seconds > 0 ? seconds : 0.001));
}

double RemainingSeconds(Clock::time_point deadline) {
  const double remaining =
      std::chrono::duration<double>(deadline - Clock::now()).count();
  return remaining > 0 ? remaining : 0;
}

// Asks the kernel for a currently-free TCP port. Inherently racy (the port
// is released before the host binds it), which is why kLocalProcess avoids
// it entirely by letting the host bind port 0 and announce the result; the
// template backend has no announcement channel, so this is its best effort.
StatusOr<int> PickFreePort(const std::string& host) {
  int port = 0;
  SWITCHV_ASSIGN_OR_RETURN(int fd, ListenTcp(host, 0, &port));
  ::close(fd);
  if (port <= 0) return UnavailableError("could not pick an ephemeral port");
  return port;
}

std::string SubstitutePlaceholders(std::string text, const std::string& host,
                                   int port) {
  const auto replace_all = [&text](std::string_view needle,
                                   const std::string& value) {
    std::size_t pos = 0;
    while ((pos = text.find(needle, pos)) != std::string::npos) {
      text.replace(pos, needle.size(), value);
      pos += value.size();
    }
  };
  replace_all("{host}", host);
  replace_all("{port}", std::to_string(port));
  return text;
}

}  // namespace

// ---------------------------------------------------------------------------
// HostPool
// ---------------------------------------------------------------------------

HostPool::HostPool(const std::vector<std::string>& endpoints, Options options)
    : options_(options) {
  hosts_.reserve(endpoints.size());
  for (const std::string& endpoint : endpoints) {
    Host host;
    host.endpoint = endpoint;
    hosts_.push_back(std::move(host));
  }
}

int HostPool::AcquireAt(Clock::time_point now) {
  const std::lock_guard<std::mutex> lock(mu_);
  // Probation first: a cooled-down retired host gets exactly one probe
  // shard (inflight must be 0 — the probe is the only traffic it sees
  // until it proves itself).
  if (options_.probation_cooldown_seconds > 0) {
    const auto cooldown = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(options_.probation_cooldown_seconds));
    for (int i = 0; i < static_cast<int>(hosts_.size()); ++i) {
      Host& host = hosts_[static_cast<std::size_t>(i)];
      if (host.state != State::kRetired || host.on_probation ||
          host.inflight != 0) {
        continue;
      }
      if (now - host.retired_at < cooldown) continue;
      host.on_probation = true;
      ++host.inflight;
      JournalAppend(options_.journal, JournalEventKind::kHostProbation,
                    options_.campaign_id, -1, host.endpoint,
                    "cooldown elapsed; routing one probe shard");
      return i;
    }
  }
  int best = -1;
  for (int i = 0; i < static_cast<int>(hosts_.size()); ++i) {
    const Host& host = hosts_[static_cast<std::size_t>(i)];
    if (host.state != State::kLive) continue;
    if (best < 0 ||
        host.inflight < hosts_[static_cast<std::size_t>(best)].inflight) {
      best = i;
    }
  }
  if (best >= 0) ++hosts_[static_cast<std::size_t>(best)].inflight;
  return best;
}

HostPool::ReleaseOutcome HostPool::ReleaseAt(int index, bool transport_ok,
                                             Clock::time_point now) {
  const std::lock_guard<std::mutex> lock(mu_);
  ReleaseOutcome outcome;
  Host& host = hosts_[static_cast<std::size_t>(index)];
  --host.inflight;
  if (host.on_probation) {
    host.on_probation = false;
    if (transport_ok) {
      host.state = State::kLive;
      host.consecutive_failures = 0;
      ++probe_readmissions_;
      JournalAppend(options_.journal, JournalEventKind::kHostReadmitted,
                    options_.campaign_id, -1, host.endpoint,
                    "probe shard succeeded");
    } else {
      host.retired_at = now;  // fresh cooldown; stays retired
    }
    return outcome;  // a probe verdict is never a *new* retirement
  }
  if (host.state != State::kLive) return outcome;  // replaced mid-flight
  if (transport_ok) {
    host.consecutive_failures = 0;
    return outcome;
  }
  if (++host.consecutive_failures >=
      std::max(1, options_.max_consecutive_failures)) {
    host.state = State::kRetired;
    host.retired_at = now;
    ++retirements_;
    outcome.newly_retired = true;
    outcome.endpoint = host.endpoint;
    JournalAppend(options_.journal, JournalEventKind::kHostRetired,
                  options_.campaign_id, -1, host.endpoint,
                  std::to_string(host.consecutive_failures) +
                      " consecutive transport failures");
  }
  return outcome;
}

int HostPool::AddEndpoint(const std::string& endpoint) {
  const std::lock_guard<std::mutex> lock(mu_);
  Host host;
  host.endpoint = endpoint;
  hosts_.push_back(std::move(host));
  return static_cast<int>(hosts_.size()) - 1;
}

void HostPool::MarkDead(const std::string& endpoint) {
  const std::lock_guard<std::mutex> lock(mu_);
  for (Host& host : hosts_) {
    if (host.endpoint == endpoint && host.state != State::kDead) {
      host.state = State::kDead;
      host.on_probation = false;
    }
  }
}

std::string HostPool::endpoint(int index) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return hosts_[static_cast<std::size_t>(index)].endpoint;
}

std::uint64_t HostPool::retired_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return retirements_;
}

std::uint64_t HostPool::probe_readmissions() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return probe_readmissions_;
}

std::size_t HostPool::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return hosts_.size();
}

// ---------------------------------------------------------------------------
// Fleet
// ---------------------------------------------------------------------------

Fleet::Fleet(FleetOptions options) : options_(std::move(options)) {
  next_template_port_ = options_.base_port;
}

Fleet::~Fleet() { Drain(); }

Status Fleet::Provision() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (int i = 0; i < options_.size; ++i) {
    StatusOr<ManagedHost> host = LaunchHost();
    if (!host.ok()) {
      for (ManagedHost& started : hosts_) KillHost(started, /*graceful=*/false);
      return host.status();
    }
    hosts_.push_back(std::move(host).value());
  }
  return OkStatus();
}

std::vector<std::string> Fleet::Endpoints() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> endpoints;
  for (const ManagedHost& host : hosts_) {
    if (host.alive) endpoints.push_back(host.endpoint);
  }
  return endpoints;
}

std::vector<Fleet::HostInfo> Fleet::Hosts() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<HostInfo> hosts;
  for (const ManagedHost& host : hosts_) {
    if (host.alive) hosts.push_back(HostInfo{host.endpoint, host.pid});
  }
  return hosts;
}

StatusOr<std::string> Fleet::Replace(const std::string& endpoint) {
  const std::lock_guard<std::mutex> lock(mu_);
  ManagedHost* old_host = nullptr;
  for (ManagedHost& host : hosts_) {
    if (host.alive && host.endpoint == endpoint) {
      old_host = &host;
      break;
    }
  }
  if (old_host == nullptr) {
    return NotFoundError("fleet does not own endpoint " + endpoint);
  }
  if (reprovisions_ >= options_.reprovision_budget) {
    return ResourceExhaustedError(
        "reprovision budget (" + std::to_string(options_.reprovision_budget) +
        ") exhausted");
  }
  // The old host is retired — presumed dead or misbehaving; no grace.
  KillHost(*old_host, /*graceful=*/false);
  SWITCHV_ASSIGN_OR_RETURN(ManagedHost fresh, LaunchHost());
  ++reprovisions_;
  std::string fresh_endpoint = fresh.endpoint;
  hosts_.push_back(std::move(fresh));
  return fresh_endpoint;
}

void Fleet::Drain() {
  const std::lock_guard<std::mutex> lock(mu_);
  // SIGTERM everyone first, grace once, then sweep with SIGKILL.
  for (ManagedHost& host : hosts_) {
    if (host.alive && host.pid > 0) ::kill(-host.pid, SIGTERM);
  }
  const auto grace_deadline = DeadlineAfter(2.0);
  for (ManagedHost& host : hosts_) {
    if (!host.alive) continue;
    if (host.pid > 0) {
      while (true) {
        const pid_t reaped = ::waitpid(host.pid, nullptr, WNOHANG);
        if (reaped == host.pid || (reaped < 0 && errno == ECHILD)) {
          host.pid = -1;
          break;
        }
        if (Clock::now() >= grace_deadline) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    }
    KillHost(host, /*graceful=*/false);
  }
}

int Fleet::reprovisions() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return reprovisions_;
}

void Fleet::KillHost(ManagedHost& host, bool graceful) {
  if (host.alive && host.pid > 0) {
    ::kill(-host.pid, graceful ? SIGTERM : SIGKILL);
    ::kill(host.pid, graceful ? SIGTERM : SIGKILL);
    while (::waitpid(host.pid, nullptr, 0) < 0 && errno == EINTR) {
    }
  }
  host.pid = -1;
  host.alive = false;
}

StatusOr<Fleet::ManagedHost> Fleet::LaunchHost() {
  return options_.backend == FleetOptions::Backend::kLocalProcess
             ? LaunchLocalProcess()
             : LaunchCommandTemplate();
}

Status Fleet::AwaitHealthy(const std::string& endpoint,
                           Clock::time_point deadline) {
  const double interval =
      options_.health_check_interval_seconds > 0
          ? options_.health_check_interval_seconds
          : 0.25;
  Status last = UnavailableError("host " + endpoint + " never became healthy");
  while (Clock::now() < deadline) {
    const double remaining = RemainingSeconds(deadline);
    last = ProbeWorkerHost(endpoint, options_.auth_secret,
                           std::min(remaining, 2.0));
    if (last.ok()) return OkStatus();
    std::this_thread::sleep_for(std::chrono::duration<double>(
        std::min(interval, RemainingSeconds(deadline))));
  }
  return DeadlineExceededError("host " + endpoint +
                               " failed bring-up: " + last.ToString());
}

StatusOr<Fleet::ManagedHost> Fleet::LaunchLocalProcess() {
  std::string binary = options_.host_binary;
  if (binary.empty()) {
    const char* env = std::getenv("SWITCHV_WORKER_HOST");
    binary = env != nullptr ? env : "";
  }
  if (binary.empty()) {
    return FailedPreconditionError(
        "no worker-host binary (FleetOptions::host_binary or "
        "$SWITCHV_WORKER_HOST)");
  }

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    return UnavailableError(std::string("pipe: ") + std::strerror(errno));
  }

  std::vector<std::string> args;
  args.push_back(binary);
  args.push_back("--bind=" + options_.bind_host);
  args.push_back("--port=0");  // announce the kernel-picked port on stdout
  if (!options_.worker_binary.empty()) {
    args.push_back("--worker=" + options_.worker_binary);
  }
  for (const std::string& extra : options_.host_extra_args) {
    args.push_back(extra);
  }

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    return UnavailableError(std::string("fork: ") + std::strerror(errno));
  }
  if (pid == 0) {
    // Child: own process group (Drain kills the group), stdout → pipe,
    // secret via the environment — never argv.
    ::setpgid(0, 0);
    ::dup2(pipe_fds[1], STDOUT_FILENO);
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    if (!options_.auth_secret.empty()) {
      ::setenv("SWITCHV_FLEET_SECRET", options_.auth_secret.c_str(), 1);
    } else {
      ::unsetenv("SWITCHV_FLEET_SECRET");
    }
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& arg : args) argv.push_back(arg.data());
    argv.push_back(nullptr);
    ::execv(binary.c_str(), argv.data());
    _exit(127);
  }
  ::close(pipe_fds[1]);

  // Bring-up gate, stage 1: the endpoint announcement line.
  const auto deadline = DeadlineAfter(options_.bring_up_timeout_seconds);
  std::string announced;
  std::string buffered;
  char buffer[4096];
  while (announced.empty()) {
    const std::size_t newline = buffered.find('\n');
    if (newline != std::string::npos) {
      const std::string line = buffered.substr(0, newline);
      buffered.erase(0, newline + 1);
      const std::size_t marker = line.find("listening on ");
      if (marker != std::string::npos) {
        announced = line.substr(marker + std::strlen("listening on "));
      }
      continue;
    }
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (remaining.count() <= 0) break;
    struct pollfd pfd = {pipe_fds[0], POLLIN, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
    if (ready < 0 && errno == EINTR) continue;
    if (ready <= 0) break;
    const ssize_t n = ::read(pipe_fds[0], buffer, sizeof(buffer));
    if (n > 0) {
      buffered.append(buffer, static_cast<std::size_t>(n));
    } else {
      break;  // EOF: the host died before announcing
    }
  }
  ::close(pipe_fds[0]);
  ManagedHost host;
  host.pid = pid;
  host.alive = true;
  if (announced.empty()) {
    KillHost(host, /*graceful=*/false);
    return DeadlineExceededError(
        "worker host never announced its endpoint (binary: " + binary + ")");
  }
  host.endpoint = announced;
  JournalAppend(options_.journal, JournalEventKind::kHostLaunched,
                options_.campaign_id, -1, host.endpoint,
                "pid " + std::to_string(pid));

  // Stage 2: a hello round-trip with the campaign's credentials.
  const Status healthy = AwaitHealthy(host.endpoint, deadline);
  if (!healthy.ok()) {
    KillHost(host, /*graceful=*/false);
    return healthy;
  }
  JournalAppend(options_.journal, JournalEventKind::kHostHello,
                options_.campaign_id, -1, host.endpoint,
                "bring-up gate passed");
  return host;
}

StatusOr<Fleet::ManagedHost> Fleet::LaunchCommandTemplate() {
  if (options_.command_template.empty()) {
    return FailedPreconditionError(
        "kCommandTemplate backend needs FleetOptions::command_template");
  }
  int port = 0;
  if (options_.base_port > 0) {
    port = next_template_port_++;
  } else {
    SWITCHV_ASSIGN_OR_RETURN(port, PickFreePort(options_.template_host));
  }
  const std::string command = SubstitutePlaceholders(
      options_.command_template, options_.template_host, port);

  const pid_t pid = ::fork();
  if (pid < 0) {
    return UnavailableError(std::string("fork: ") + std::strerror(errno));
  }
  if (pid == 0) {
    ::setpgid(0, 0);
    if (!options_.auth_secret.empty()) {
      ::setenv("SWITCHV_FLEET_SECRET", options_.auth_secret.c_str(), 1);
    } else {
      ::unsetenv("SWITCHV_FLEET_SECRET");
    }
    ::execl("/bin/sh", "sh", "-c", command.c_str(),
            static_cast<char*>(nullptr));
    _exit(127);
  }

  ManagedHost host;
  host.pid = pid;
  host.alive = true;
  host.endpoint = options_.template_host + ":" + std::to_string(port);
  JournalAppend(options_.journal, JournalEventKind::kHostLaunched,
                options_.campaign_id, -1, host.endpoint,
                "pid " + std::to_string(pid));
  const Status healthy = AwaitHealthy(
      host.endpoint, DeadlineAfter(options_.bring_up_timeout_seconds));
  if (!healthy.ok()) {
    KillHost(host, /*graceful=*/false);
    return healthy;
  }
  JournalAppend(options_.journal, JournalEventKind::kHostHello,
                options_.campaign_id, -1, host.endpoint,
                "bring-up gate passed");
  return host;
}

}  // namespace switchv
