#include "switchv/shard_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <limits>
#include <random>
#include <sstream>

#include "util/hmac.h"
#include "util/strings.h"

namespace switchv {

namespace {

using Clock = std::chrono::steady_clock;

constexpr char kMagic[4] = {'S', 'w', 'V', '1'};
constexpr std::size_t kHeaderSize = 4 + 1 + 4;  // magic + type + length

// Slack on top of the per-shard deadline for connection setup and result
// transfer before the client gives up on a live connection.
constexpr double kTransferSlackSeconds = 15.0;

bool ValidFrameType(std::uint8_t type) {
  return type >= static_cast<std::uint8_t>(FrameType::kShardRequest) &&
         type <= static_cast<std::uint8_t>(FrameType::kTelemetry);
}

Clock::time_point DeadlineAfter(double seconds) {
  return Clock::now() +
         std::chrono::duration_cast<Clock::duration>(
             std::chrono::duration<double>(seconds > 0 ? seconds : 0.001));
}

int RemainingMs(Clock::time_point deadline) {
  const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return remaining.count() > 0 ? static_cast<int>(remaining.count()) : 0;
}

void CloseSocket(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

// ---- strict envelope scanning ----

bool ConsumeLiteral(std::string_view& in, std::string_view literal) {
  if (in.substr(0, literal.size()) != literal) return false;
  in.remove_prefix(literal.size());
  return true;
}

// Consumes digits up to the next space/newline/end into `token`.
bool ConsumeToken(std::string_view& in, std::string_view& token) {
  const std::size_t end = in.find_first_of(" \n");
  token = in.substr(0, end);
  in.remove_prefix(end == std::string_view::npos ? in.size() : end);
  return !token.empty();
}

bool ConsumeU64(std::string_view& in, std::uint64_t& out) {
  std::string_view token;
  if (!ConsumeToken(in, token)) return false;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), out);
  return ec == std::errc() && ptr == token.data() + token.size();
}

bool ConsumeInt(std::string_view& in, int& out) {
  std::string_view token;
  if (!ConsumeToken(in, token)) return false;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), out);
  return ec == std::errc() && ptr == token.data() + token.size();
}

bool ConsumeDouble(std::string_view& in, double& out) {
  std::string_view token;
  if (!ConsumeToken(in, token)) return false;
  const std::string buffer(token);  // strtod needs a terminator
  char* end = nullptr;
  errno = 0;
  out = std::strtod(buffer.c_str(), &end);
  return errno == 0 && end == buffer.c_str() + buffer.size();
}

bool HexToBytes(std::string_view hex, std::string* out) {
  if (hex.size() % 2 != 0) return false;
  out->clear();
  out->reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    int value = 0;
    for (int j = 0; j < 2; ++j) {
      const char c = hex[i + j];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= c - '0';
      } else if (c >= 'a' && c <= 'f') {
        value |= c - 'a' + 10;
      } else {
        return false;
      }
    }
    out->push_back(static_cast<char>(value));
  }
  return true;
}

void AppendBigEndian64(std::string& out, std::uint64_t value) {
  for (int i = 7; i >= 0; --i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

std::uint64_t ReadBigEndian64(std::string_view bytes) {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value = (value << 8) | static_cast<std::uint8_t>(bytes[i]);
  }
  return value;
}

std::string_view ErrorKindName(RemoteShardError::Kind kind) {
  switch (kind) {
    case RemoteShardError::Kind::kCrash:
      return "crash";
    case RemoteShardError::Kind::kTimeout:
      return "timeout";
    case RemoteShardError::Kind::kExit:
      return "exit";
    case RemoteShardError::Kind::kSpawn:
      return "spawn";
    case RemoteShardError::Kind::kBadRequest:
      return "bad-request";
  }
  return "crash";
}

bool ParseErrorKind(std::string_view name, RemoteShardError::Kind& out) {
  for (const RemoteShardError::Kind kind :
       {RemoteShardError::Kind::kCrash, RemoteShardError::Kind::kTimeout,
        RemoteShardError::Kind::kExit, RemoteShardError::Kind::kSpawn,
        RemoteShardError::Kind::kBadRequest}) {
    if (name == ErrorKindName(kind)) {
      out = kind;
      return true;
    }
  }
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

std::string EncodeFrame(FrameType type, std::string_view payload) {
  std::string frame;
  frame.reserve(kHeaderSize + payload.size());
  frame.append(kMagic, sizeof(kMagic));
  frame.push_back(static_cast<char>(type));
  const std::uint32_t length = static_cast<std::uint32_t>(payload.size());
  frame.push_back(static_cast<char>((length >> 24) & 0xff));
  frame.push_back(static_cast<char>((length >> 16) & 0xff));
  frame.push_back(static_cast<char>((length >> 8) & 0xff));
  frame.push_back(static_cast<char>(length & 0xff));
  frame.append(payload);
  return frame;
}

void FrameDecoder::Feed(std::string_view bytes) {
  // Compact consumed bytes before the buffer doubles past them.
  if (pos_ > 0 && pos_ >= buffer_.size() / 2) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  buffer_.append(bytes);
}

StatusOr<std::optional<Frame>> FrameDecoder::Next() {
  if (!corrupt_.ok()) return corrupt_;
  const std::size_t available = buffer_.size() - pos_;
  if (available < kHeaderSize) return std::optional<Frame>();
  const char* header = buffer_.data() + pos_;
  if (std::memcmp(header, kMagic, sizeof(kMagic)) != 0) {
    corrupt_ = InvalidArgumentError("transport frame: bad magic");
    return corrupt_;
  }
  const std::uint8_t type = static_cast<std::uint8_t>(header[4]);
  if (!ValidFrameType(type)) {
    corrupt_ = InvalidArgumentError("transport frame: unknown type " +
                                    std::to_string(type));
    return corrupt_;
  }
  const std::uint32_t length =
      (static_cast<std::uint32_t>(static_cast<std::uint8_t>(header[5]))
       << 24) |
      (static_cast<std::uint32_t>(static_cast<std::uint8_t>(header[6]))
       << 16) |
      (static_cast<std::uint32_t>(static_cast<std::uint8_t>(header[7])) << 8) |
      static_cast<std::uint32_t>(static_cast<std::uint8_t>(header[8]));
  if (length > kMaxFramePayload) {
    corrupt_ = InvalidArgumentError("transport frame: oversized payload (" +
                                    std::to_string(length) + " bytes)");
    return corrupt_;
  }
  if (available < kHeaderSize + length) return std::optional<Frame>();
  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.payload.assign(buffer_, pos_ + kHeaderSize, length);
  pos_ += kHeaderSize + length;
  return std::optional<Frame>(std::move(frame));
}

// ---------------------------------------------------------------------------
// Frame authentication
// ---------------------------------------------------------------------------

FrameAuthenticator::FrameAuthenticator(std::string secret, std::string nonce,
                                       bool is_client)
    : secret_(std::move(secret)), nonce_(std::move(nonce)) {
  send_direction_ = is_client ? 'C' : 'S';
  recv_direction_ = is_client ? 'S' : 'C';
}

std::string FrameAuthenticator::NewNonce() {
  // std::random_device on Linux draws from the OS entropy pool; uniqueness
  // is all the nonce needs (the MAC key stays secret).
  std::random_device entropy;
  std::string nonce;
  nonce.reserve(16);
  for (int word_index = 0; word_index < 4; ++word_index) {
    const std::uint32_t word = entropy();
    for (int shift = 24; shift >= 0; shift -= 8) {
      nonce.push_back(static_cast<char>((word >> shift) & 0xff));
    }
  }
  return nonce;
}

std::string FrameAuthenticator::Mac(char direction, std::uint64_t seq,
                                    FrameType type,
                                    std::string_view payload) const {
  std::string message;
  message.reserve(nonce_.size() + 1 + 8 + 1 + payload.size());
  message.append(nonce_);
  message.push_back(direction);
  AppendBigEndian64(message, seq);
  message.push_back(static_cast<char>(type));
  message.append(payload);
  const auto digest = HmacSha256(secret_, message);
  return std::string(reinterpret_cast<const char*>(digest.data()),
                     digest.size());
}

std::string FrameAuthenticator::Seal(FrameType type,
                                     std::string_view payload) {
  if (!enabled()) return std::string(payload);
  const std::uint64_t seq = send_seq_++;
  std::string sealed = Mac(send_direction_, seq, type, payload);
  AppendBigEndian64(sealed, seq);
  sealed.append(payload);
  return sealed;
}

StatusOr<std::string> FrameAuthenticator::Open(FrameType type,
                                               std::string_view sealed) {
  if (!enabled()) return std::string(sealed);
  if (sealed.size() < kAuthHeaderSize) {
    return PermissionDeniedError("authenticated frame: truncated auth header");
  }
  const std::string_view mac = sealed.substr(0, kAuthMacSize);
  const std::uint64_t seq = ReadBigEndian64(sealed.substr(kAuthMacSize, 8));
  const std::string_view payload = sealed.substr(kAuthHeaderSize);
  // MAC first (over the *claimed* sequence number), so a forged frame learns
  // nothing about the expected sequence; then strict equality kills replays.
  const std::string expected = Mac(recv_direction_, seq, type, payload);
  if (!ConstantTimeEqual(mac, expected)) {
    return PermissionDeniedError("authenticated frame: MAC mismatch");
  }
  if (seq != recv_seq_) {
    return PermissionDeniedError("authenticated frame: sequence " +
                                 std::to_string(seq) +
                                 " replayed or out of order");
  }
  ++recv_seq_;
  return std::string(payload);
}

StatusOr<FrameAuthenticator> AcceptAuthenticatedHello(
    const std::string& secret, std::string_view sealed) {
  // Bootstrap: the nonce the MAC is keyed on rides inside this very frame,
  // in the clear portion past the auth header. Parse it, build the host-side
  // authenticator, then verify the frame with it — a tampered nonce fails
  // its own MAC.
  if (sealed.size() < kAuthHeaderSize) {
    return PermissionDeniedError("authenticated hello: truncated auth header");
  }
  StatusOr<HelloEnvelope> hello = ParseHello(sealed.substr(kAuthHeaderSize));
  if (!hello.ok() || hello->nonce.empty()) {
    return PermissionDeniedError("authenticated hello: malformed envelope");
  }
  FrameAuthenticator auth(secret, std::move(hello->nonce),
                          /*is_client=*/false);
  StatusOr<std::string> opened = auth.Open(FrameType::kHello, sealed);
  if (!opened.ok()) return opened.status();
  return auth;
}

// ---------------------------------------------------------------------------
// Envelopes
// ---------------------------------------------------------------------------

std::string SerializeHello(const HelloEnvelope& hello) {
  std::string out = "switchv-hello 1 ";
  out.append(hello.nonce.empty() ? "-" : BytesToHex(hello.nonce));
  return out;
}

StatusOr<HelloEnvelope> ParseHello(std::string_view payload) {
  std::string_view in = payload;
  std::string_view nonce_token;
  if (!ConsumeLiteral(in, "switchv-hello 1 ") ||
      !ConsumeToken(in, nonce_token) || !in.empty()) {
    return InvalidArgumentError("malformed hello envelope");
  }
  HelloEnvelope hello;
  if (nonce_token == "-") return hello;
  if (!HexToBytes(nonce_token, &hello.nonce)) {
    return InvalidArgumentError("malformed hello nonce");
  }
  return hello;
}

std::string SerializeRemoteRequest(const RemoteShardRequest& request) {
  // Version 1 when telemetry is off: a telemetry-disabled campaign puts
  // byte-identical requests on the wire, and pre-telemetry hosts keep
  // working. Version 2 appends the telemetry interval. Version 3 (only
  // when guidance is on) appends the interval — 0 allowed there, guidance
  // does not require telemetry — and then the guidance value.
  const bool guided = request.guidance > 0;
  const bool telemetry = request.telemetry_interval_seconds > 0;
  std::ostringstream out;
  out << "switchv-shard-request " << (guided ? 3 : (telemetry ? 2 : 1)) << " "
      << request.campaign_id << " " << request.shard << " "
      << request.attempt << " "
      << std::setprecision(std::numeric_limits<double>::max_digits10)
      << request.timeout_seconds;
  if (guided || telemetry) out << " " << request.telemetry_interval_seconds;
  if (guided) out << " " << request.guidance;
  out << "\n" << request.spec_line;
  return out.str();
}

StatusOr<RemoteShardRequest> ParseRemoteRequest(std::string_view payload) {
  RemoteShardRequest request;
  std::string_view in = payload;
  int version = 0;
  if (!ConsumeLiteral(in, "switchv-shard-request ") ||
      !ConsumeInt(in, version) ||
      (version != 1 && version != 2 && version != 3) ||
      !ConsumeLiteral(in, " ") || !ConsumeU64(in, request.campaign_id) ||
      !ConsumeLiteral(in, " ") || !ConsumeInt(in, request.shard) ||
      !ConsumeLiteral(in, " ") || !ConsumeInt(in, request.attempt) ||
      !ConsumeLiteral(in, " ") ||
      !ConsumeDouble(in, request.timeout_seconds)) {
    return InvalidArgumentError("malformed remote shard request envelope");
  }
  if (version >= 2 &&
      (!ConsumeLiteral(in, " ") ||
       !ConsumeDouble(in, request.telemetry_interval_seconds) ||
       // v2 exists only to carry a live interval; v3 allows 0 (guided
       // shard without telemetry).
       (version == 2 ? request.telemetry_interval_seconds <= 0
                     : request.telemetry_interval_seconds < 0))) {
    return InvalidArgumentError(
        "malformed remote shard request telemetry interval");
  }
  if (version == 3 &&
      (!ConsumeLiteral(in, " ") || !ConsumeInt(in, request.guidance) ||
       request.guidance <= 0)) {
    return InvalidArgumentError("malformed remote shard request guidance");
  }
  if (!ConsumeLiteral(in, "\n")) {
    return InvalidArgumentError("malformed remote shard request envelope");
  }
  if (in.empty()) {
    return InvalidArgumentError("remote shard request carries no spec line");
  }
  request.spec_line.assign(in);
  return request;
}

std::string SerializeRemoteError(const RemoteShardError& error) {
  std::string out = "switchv-shard-error 1 ";
  out.append(ErrorKindName(error.kind));
  out.push_back('\n');
  out.append(error.note);
  return out;
}

StatusOr<RemoteShardError> ParseRemoteError(std::string_view payload) {
  RemoteShardError error;
  std::string_view in = payload;
  std::string_view kind;
  if (!ConsumeLiteral(in, "switchv-shard-error 1 ") ||
      !ConsumeToken(in, kind) || !ParseErrorKind(kind, error.kind) ||
      !ConsumeLiteral(in, "\n")) {
    return InvalidArgumentError("malformed remote shard error envelope");
  }
  error.note.assign(in);
  return error;
}

// ---------------------------------------------------------------------------
// Sockets
// ---------------------------------------------------------------------------

Status ParseEndpoint(std::string_view endpoint, std::string* host,
                     int* port) {
  const std::size_t colon = endpoint.rfind(':');
  if (colon == std::string_view::npos || colon == 0) {
    return InvalidArgumentError("endpoint '" + std::string(endpoint) +
                                "' is not host:port");
  }
  const std::string_view port_text = endpoint.substr(colon + 1);
  int parsed = 0;
  const auto [ptr, ec] = std::from_chars(
      port_text.data(), port_text.data() + port_text.size(), parsed);
  if (ec != std::errc() || ptr != port_text.data() + port_text.size() ||
      parsed < 1 || parsed > 65535) {
    return InvalidArgumentError("endpoint '" + std::string(endpoint) +
                                "' has an invalid port");
  }
  host->assign(endpoint.substr(0, colon));
  *port = parsed;
  return OkStatus();
}

StatusOr<int> ConnectTcp(const std::string& endpoint,
                         double timeout_seconds) {
  std::string host;
  int port = 0;
  SWITCHV_RETURN_IF_ERROR(ParseEndpoint(endpoint, &host, &port));

  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV;
  struct addrinfo* resolved = nullptr;
  const std::string service = std::to_string(port);
  const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints,
                               &resolved);
  if (rc != 0) {
    return UnavailableError("resolve " + endpoint + ": " + gai_strerror(rc));
  }

  const auto deadline = DeadlineAfter(timeout_seconds);
  Status last = UnavailableError("no addresses for " + endpoint);
  for (struct addrinfo* ai = resolved; ai != nullptr; ai = ai->ai_next) {
    int fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_NONBLOCK,
                      ai->ai_protocol);
    if (fd < 0) {
      last = UnavailableError(std::string("socket: ") + std::strerror(errno));
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      ::freeaddrinfo(resolved);
      return fd;
    }
    if (errno == EINPROGRESS) {
      struct pollfd pfd = {fd, POLLOUT, 0};
      while (true) {
        const int ready = ::poll(&pfd, 1, RemainingMs(deadline));
        if (ready < 0 && errno == EINTR) continue;
        if (ready > 0) {
          int error = 0;
          socklen_t len = sizeof(error);
          ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &error, &len);
          if (error == 0) {
            ::freeaddrinfo(resolved);
            return fd;
          }
          last = UnavailableError("connect " + endpoint + ": " +
                                  std::strerror(error));
        } else {
          last = UnavailableError("connect " + endpoint + ": timed out");
        }
        break;
      }
    } else {
      last = UnavailableError("connect " + endpoint + ": " +
                              std::strerror(errno));
    }
    CloseSocket(fd);
  }
  ::freeaddrinfo(resolved);
  return last;
}

StatusOr<int> ListenTcp(const std::string& host, int port, int* bound_port) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE | AI_NUMERICSERV;
  struct addrinfo* resolved = nullptr;
  const std::string service = std::to_string(port);
  const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                               service.c_str(), &hints, &resolved);
  if (rc != 0) {
    return UnavailableError("resolve bind address '" + host +
                            "': " + gai_strerror(rc));
  }
  Status last = UnavailableError("no bindable addresses for '" + host + "'");
  for (struct addrinfo* ai = resolved; ai != nullptr; ai = ai->ai_next) {
    int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) != 0 ||
        ::listen(fd, 64) != 0) {
      last = UnavailableError(std::string("bind/listen: ") +
                              std::strerror(errno));
      CloseSocket(fd);
      continue;
    }
    if (bound_port != nullptr) {
      struct sockaddr_storage bound;
      socklen_t len = sizeof(bound);
      if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound),
                        &len) == 0) {
        if (bound.ss_family == AF_INET) {
          *bound_port = ntohs(
              reinterpret_cast<struct sockaddr_in*>(&bound)->sin_port);
        } else if (bound.ss_family == AF_INET6) {
          *bound_port = ntohs(
              reinterpret_cast<struct sockaddr_in6*>(&bound)->sin6_port);
        }
      }
    }
    ::freeaddrinfo(resolved);
    return fd;
  }
  ::freeaddrinfo(resolved);
  return last;
}

Status SendFrame(int fd, FrameType type, std::string_view payload,
                 double timeout_seconds) {
  const std::string frame = EncodeFrame(type, payload);
  const auto deadline = DeadlineAfter(timeout_seconds);
  std::size_t written = 0;
  while (written < frame.size()) {
    // MSG_NOSIGNAL: a peer that hung up must surface as EPIPE, not SIGPIPE.
    const ssize_t n = ::send(fd, frame.data() + written,
                             frame.size() - written, MSG_NOSIGNAL);
    if (n > 0) {
      written += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      struct pollfd pfd = {fd, POLLOUT, 0};
      const int remaining = RemainingMs(deadline);
      if (remaining == 0) return UnavailableError("send: timed out");
      const int ready = ::poll(&pfd, 1, remaining);
      if (ready < 0 && errno != EINTR) {
        return UnavailableError(std::string("send poll: ") +
                                std::strerror(errno));
      }
      if (ready == 0) return UnavailableError("send: timed out");
      continue;
    }
    return UnavailableError(std::string("send: ") + std::strerror(errno));
  }
  return OkStatus();
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

namespace {

double RemainingSeconds(Clock::time_point deadline) {
  return RemainingMs(deadline) / 1000.0;
}

// Reads from `fd` until the decoder yields one complete frame or the
// deadline passes.
StatusOr<Frame> AwaitFrame(int fd, FrameDecoder& decoder,
                           Clock::time_point deadline) {
  char buffer[65536];
  while (true) {
    StatusOr<std::optional<Frame>> next = decoder.Next();
    if (!next.ok()) return next.status();
    if (next->has_value()) return std::move(**next);
    const int wait_ms = RemainingMs(deadline);
    if (wait_ms == 0) {
      return DeadlineExceededError("timed out awaiting a frame");
    }
    struct pollfd pfd = {fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, wait_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return UnavailableError(std::string("poll: ") + std::strerror(errno));
    }
    if (ready == 0) continue;  // deadline re-checked above
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n > 0) {
      decoder.Feed(std::string_view(buffer, static_cast<std::size_t>(n)));
    } else if (n == 0) {
      return UnavailableError("connection closed awaiting a frame");
    } else if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      return UnavailableError(std::string("read: ") + std::strerror(errno));
    }
  }
}

// Client half of the hello handshake: send the (possibly sealed) hello,
// require the host's kHelloOk before the deadline. With authentication off
// this is a plain liveness ping; with it on, a host holding the wrong key
// cannot produce an acceptable kHelloOk.
Status ClientHello(int fd, FrameAuthenticator& auth, FrameDecoder& decoder,
                   Clock::time_point deadline) {
  HelloEnvelope hello;
  hello.nonce = auth.nonce();
  SWITCHV_RETURN_IF_ERROR(
      SendFrame(fd, FrameType::kHello,
                auth.Seal(FrameType::kHello, SerializeHello(hello)),
                RemainingSeconds(deadline)));
  SWITCHV_ASSIGN_OR_RETURN(Frame frame, AwaitFrame(fd, decoder, deadline));
  if (frame.type != FrameType::kHelloOk) {
    return UnavailableError(
        "host answered hello with frame type " +
        std::to_string(static_cast<int>(frame.type)));
  }
  return auth.Open(FrameType::kHelloOk, frame.payload).status();
}

}  // namespace

RemoteCallOutcome CallRemoteShard(const std::string& endpoint,
                                  const RemoteShardRequest& request,
                                  double heartbeat_timeout_seconds,
                                  const std::string& auth_secret,
                                  const RemoteCallHooks* hooks) {
  RemoteCallOutcome outcome;
  outcome.kind = RemoteCallOutcome::Kind::kTransport;

  StatusOr<int> connected = ConnectTcp(endpoint, heartbeat_timeout_seconds);
  if (!connected.ok()) {
    outcome.note = connected.status().ToString();
    return outcome;
  }
  int fd = connected.value();

  FrameDecoder decoder;
  FrameAuthenticator auth;
  if (!auth_secret.empty()) {
    auth = FrameAuthenticator(auth_secret, FrameAuthenticator::NewNonce(),
                              /*is_client=*/true);
    const auto hello_sent = Clock::now();
    const Status hello = ClientHello(
        fd, auth, decoder, DeadlineAfter(heartbeat_timeout_seconds));
    if (!hello.ok()) {
      outcome.note = "authenticated hello failed: " + hello.ToString();
      CloseSocket(fd);
      return outcome;
    }
    if (hooks != nullptr && hooks->on_rtt) {
      hooks->on_rtt(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               hello_sent)
              .count()));
    }
  }

  const Status sent = SendFrame(
      fd, FrameType::kShardRequest,
      auth.Seal(FrameType::kShardRequest, SerializeRemoteRequest(request)),
      heartbeat_timeout_seconds);
  if (!sent.ok()) {
    outcome.note = sent.ToString();
    CloseSocket(fd);
    return outcome;
  }

  const auto shard_deadline =
      DeadlineAfter(request.timeout_seconds + kTransferSlackSeconds);
  auto idle_deadline = DeadlineAfter(heartbeat_timeout_seconds);
  // RTT sampling: with hooks attached the client also *sends* heartbeats —
  // "ping <seq> <ns>" — which telemetry-capable hosts echo as pongs. The
  // <ns> timestamp rides in the payload, so the pong itself carries
  // everything needed to compute the round trip. Without hooks no ping is
  // ever sent and the wire matches the pre-telemetry client exactly.
  const bool pinging =
      hooks != nullptr && hooks->ping_interval_seconds > 0;
  const auto ping_epoch = Clock::now();
  auto next_ping =
      pinging ? DeadlineAfter(hooks->ping_interval_seconds) : Clock::time_point::max();
  std::uint64_t ping_seq = 0;
  const auto now_ping_ns = [&ping_epoch] {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             ping_epoch)
            .count());
  };
  char buffer[65536];
  while (true) {
    // Drain every complete frame before touching the socket again.
    while (true) {
      StatusOr<std::optional<Frame>> next = decoder.Next();
      if (!next.ok()) {
        outcome.note = next.status().ToString();
        CloseSocket(fd);
        return outcome;
      }
      if (!next->has_value()) break;
      Frame& frame = **next;
      // Authenticate before any payload parsing; a frame that fails its MAC
      // or sequence check kills the connection (kTransport → reconnect).
      std::string payload;
      if (auth.enabled()) {
        StatusOr<std::string> opened = auth.Open(frame.type, frame.payload);
        if (!opened.ok()) {
          outcome.note = opened.status().ToString();
          CloseSocket(fd);
          return outcome;
        }
        payload = std::move(*opened);
      } else {
        payload = std::move(frame.payload);
      }
      switch (frame.type) {
        case FrameType::kHeartbeat: {
          idle_deadline = DeadlineAfter(heartbeat_timeout_seconds);
          // A telemetry-capable host answers our pings with
          // "pong <seq> <ns>", echoing the timestamp we sent.
          std::string_view pong = payload;
          std::uint64_t echo_seq = 0, echo_ns = 0;
          if (hooks != nullptr && hooks->on_rtt &&
              ConsumeLiteral(pong, "pong ") && ConsumeU64(pong, echo_seq) &&
              ConsumeLiteral(pong, " ") && ConsumeU64(pong, echo_ns) &&
              pong.empty()) {
            const std::uint64_t now_ns = now_ping_ns();
            if (now_ns >= echo_ns) hooks->on_rtt(now_ns - echo_ns);
          }
          break;
        }
        case FrameType::kTelemetry:
          // Live sample from the running shard — proves host liveness just
          // like a heartbeat does.
          idle_deadline = DeadlineAfter(heartbeat_timeout_seconds);
          if (hooks != nullptr && hooks->on_telemetry) {
            hooks->on_telemetry(payload);
          }
          break;
        case FrameType::kShardResult:
          outcome.kind = RemoteCallOutcome::Kind::kResult;
          outcome.result_line = std::move(payload);
          CloseSocket(fd);
          return outcome;
        case FrameType::kShardError: {
          StatusOr<RemoteShardError> error = ParseRemoteError(payload);
          if (!error.ok()) {
            outcome.note = error.status().ToString();
          } else {
            outcome.kind = RemoteCallOutcome::Kind::kWorkerError;
            outcome.error_kind = error->kind;
            outcome.note = std::move(error->note);
          }
          CloseSocket(fd);
          return outcome;
        }
        case FrameType::kShardRequest:
        case FrameType::kHello:
        case FrameType::kHelloOk:
          outcome.note = "host sent an unexpected frame type " +
                         std::to_string(static_cast<int>(frame.type));
          CloseSocket(fd);
          return outcome;
      }
    }
    const auto now = Clock::now();
    if (now >= shard_deadline) {
      outcome.kind = RemoteCallOutcome::Kind::kTimeout;
      outcome.note = "shard deadline expired awaiting the remote result";
      CloseSocket(fd);
      return outcome;
    }
    if (now >= idle_deadline) {
      outcome.note = "connection went silent past the heartbeat timeout";
      CloseSocket(fd);
      return outcome;
    }
    if (pinging && now >= next_ping) {
      const std::string ping = "ping " + std::to_string(++ping_seq) + " " +
                               std::to_string(now_ping_ns());
      const Status ping_sent =
          SendFrame(fd, FrameType::kHeartbeat,
                    auth.Seal(FrameType::kHeartbeat, ping),
                    hooks->ping_interval_seconds);
      if (!ping_sent.ok()) {
        outcome.note = "heartbeat ping failed: " + ping_sent.ToString();
        CloseSocket(fd);
        return outcome;
      }
      next_ping = DeadlineAfter(hooks->ping_interval_seconds);
    }
    struct pollfd pfd = {fd, POLLIN, 0};
    int wait_ms = std::min(RemainingMs(shard_deadline),
                           RemainingMs(idle_deadline));
    if (pinging) wait_ms = std::min(wait_ms, RemainingMs(next_ping));
    const int ready = ::poll(&pfd, 1, wait_ms > 0 ? wait_ms : 1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      outcome.note = std::string("poll: ") + std::strerror(errno);
      CloseSocket(fd);
      return outcome;
    }
    if (ready == 0) continue;  // deadlines re-checked above
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n > 0) {
      decoder.Feed(std::string_view(buffer, static_cast<std::size_t>(n)));
    } else if (n == 0) {
      outcome.note = "connection closed by the worker host";
      CloseSocket(fd);
      return outcome;
    } else if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      outcome.note = std::string("read: ") + std::strerror(errno);
      CloseSocket(fd);
      return outcome;
    }
  }
}

Status ProbeWorkerHost(const std::string& endpoint,
                       const std::string& auth_secret,
                       double timeout_seconds) {
  const auto deadline = DeadlineAfter(timeout_seconds);
  StatusOr<int> connected = ConnectTcp(endpoint, timeout_seconds);
  if (!connected.ok()) return connected.status();
  int fd = connected.value();
  FrameAuthenticator auth;
  if (!auth_secret.empty()) {
    auth = FrameAuthenticator(auth_secret, FrameAuthenticator::NewNonce(),
                              /*is_client=*/true);
  }
  FrameDecoder decoder;
  const Status hello = ClientHello(fd, auth, decoder, deadline);
  CloseSocket(fd);
  return hello;
}

}  // namespace switchv
