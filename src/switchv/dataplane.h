// Data-plane validation: p4-symbolic packets through switch and simulator
// (paper §5, §2 "Design").
//
// Installs the forwarding state, generates test packets with the symbolic
// executor, runs each packet through the switch under test and the
// reference interpreter, and checks that the observed switch behaviour is
// in the set of behaviours the reference produces under round-robin
// hashing. Also exercises packet-out (direct and submit-to-ingress) and
// watches the packet-in channel for unexpected punts — how the paper caught
// the LLDP and router-solicitation daemons.
#ifndef SWITCHV_SWITCHV_DATAPLANE_H_
#define SWITCHV_SWITCHV_DATAPLANE_H_

#include "bmv2/interpreter.h"
#include "sut/switch_stack.h"
#include "switchv/incident.h"
#include "switchv/metrics.h"
#include "switchv/recorder.h"
#include "switchv/trace.h"
#include "symbolic/packet_gen.h"

namespace switchv {

struct DataplaneOptions {
  symbolic::CoverageMode coverage = symbolic::CoverageMode::kEntryCoverage;
  symbolic::PacketCache* cache = nullptr;
  int max_incidents = 25;
  // Ports exercised by the packet-out phase.
  int packet_out_ports = 4;
  // Emulates reference-simulator bugs (the paper found 4 BMv2 bugs);
  // nullptr = healthy simulator.
  const sut::FaultRegistry* simulator_faults = nullptr;
  // The entries are already installed on the switch (e.g. the state left
  // behind by a fuzzing campaign, §7's "pass these entries to
  // p4-symbolic"): skip the installation phase and validate in place.
  bool entries_preinstalled = false;
  // Run reference behaviour enumeration through the bit-parallel 64-lane
  // batch interpreter (bmv2/batch_interpreter.h). Lane results are
  // byte-identical to the scalar path (ctest -L batch pins this over the
  // whole fault catalog); off switches every enumeration back to scalar
  // Interpreter::Run.
  bool batch_reference = true;
  // Campaign-engine hooks. With `precomputed_packets` set, symbolic
  // generation is skipped and the given packets are used instead (the
  // engine generates once per campaign and fans the list out to shards).
  // The shard tests the packet subset {i : i % packet_shards ==
  // packet_shard}; per-switch phases (install, resync, churn, read-back,
  // packet-out) always run whole — they define the instance's state.
  const std::vector<symbolic::TestPacket>* precomputed_packets = nullptr;
  int packet_shard = 0;
  int packet_shards = 1;
  // Optional campaign telemetry sink (thread-safe; shared across shards).
  Metrics* metrics = nullptr;
  // Optional span track (single-threaded, owned by the calling shard);
  // null disables tracing at near-zero cost.
  TraceTrack* trace = nullptr;
  // Optional flight recorder; when set, every incident carries a rendered
  // replay of the last N switch operations.
  FlightRecorder* recorder = nullptr;
  // Observe (table, action) coverage of the reference interpreters
  // (fuzzer/coverage.h) and fold edge counts into `metrics`. Purely
  // observational: outcomes and incident sets are unchanged.
  bool coverage_observe = false;
};

struct DataplaneResult {
  std::vector<Incident> incidents;
  int packets_tested = 0;
  symbolic::GenerationStats generation;
  // Distinct coverage-map edges the reference touched; zero unless
  // `coverage_observe` was set.
  std::uint64_t coverage_edges = 0;
};

// Validates the packet-forwarding behaviour of an already-configured
// switch. `entries` is the forwarding state (e.g. a production replay); it
// is installed into both the switch and the reference simulator.
DataplaneResult RunDataplaneValidation(
    sut::SwitchUnderTest& sut, const p4ir::Program& model,
    const packet::ParserSpec& parser,
    const std::vector<p4rt::TableEntry>& entries,
    const DataplaneOptions& options);

}  // namespace switchv

#endif  // SWITCHV_SWITCHV_DATAPLANE_H_
