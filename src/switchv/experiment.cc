#include "switchv/experiment.h"

namespace switchv {

models::WorkloadSpec ExperimentOptions::SmallWorkload() {
  models::WorkloadSpec spec;
  spec.num_vrfs = 3;
  spec.num_l3_admit = 3;
  spec.num_pre_ingress = 6;
  spec.num_ipv4_routes = 30;
  spec.num_ipv6_routes = 10;
  spec.num_wcmp_groups = 4;
  spec.num_nexthops = 10;
  spec.num_neighbors = 8;
  spec.num_rifs = 6;
  spec.num_acl_ingress = 10;
  spec.num_mirror_sessions = 2;
  spec.num_egress_rifs = 4;
  return spec;
}

models::Role RoleForStack(sut::Stack stack) {
  return stack == sut::Stack::kPins ? models::Role::kMiddleblock
                                    : models::Role::kWan;
}

models::ModelOptions ModelOptionsForBug(const sut::BugInfo& bug) {
  models::ModelOptions options;
  switch (bug.fault) {
    case sut::Fault::kModelMissingTtlTrap:
      options.omit_ttl_trap = true;
      break;
    case sut::Fault::kModelMissingBroadcastDrop:
      options.omit_broadcast_drop = true;
      break;
    case sut::Fault::kModelAclAfterRewrite:
    case sut::Fault::kCerberusModelAclAfterRewrite:
      options.acl_after_rewrite = true;
      break;
    case sut::Fault::kModelWrongIcmpField:
      options.acl_wrong_icmp_field = true;
      break;
    default:
      break;  // the model is the intended specification
  }
  return options;
}

StatusOr<p4ir::Program> ModelForBug(const sut::BugInfo& bug) {
  return models::BuildSaiProgram(RoleForStack(bug.stack),
                                 ModelOptionsForBug(bug));
}

models::WorkloadSpec WorkloadForBug(const sut::BugInfo& bug,
                                    const ExperimentOptions& options) {
  models::WorkloadSpec workload = options.workload;
  if (bug.stack == sut::Stack::kCerberus) {
    workload.num_decap = 3;
    workload.num_tunnels = 6;
  }
  return workload;
}

StatusOr<BugRunResult> RunNightlyForBug(const sut::BugInfo& bug,
                                        const ExperimentOptions& options) {
  SWITCHV_ASSIGN_OR_RETURN(p4ir::Program model, ModelForBug(bug));
  const p4ir::P4Info info = p4ir::P4Info::FromProgram(model);
  const models::WorkloadSpec workload = WorkloadForBug(bug, options);
  SWITCHV_ASSIGN_OR_RETURN(
      std::vector<p4rt::TableEntry> entries,
      models::GenerateEntries(info, RoleForStack(bug.stack), workload,
                              options.seed));

  sut::FaultRegistry faults;
  faults.Activate(bug.fault);
  NightlyOptions nightly = options.nightly;
  if (nightly.execution != CampaignOptions::Execution::kInProcess &&
      !nightly.scenario.has_value()) {
    // Out-of-process runs rebuild the campaign inputs from a recipe; the
    // recipe is exactly the construction above, so workers reproduce the
    // experiment's model, workload, and entries bit-for-bit.
    ShardScenario scenario;
    scenario.role = RoleForStack(bug.stack);
    scenario.model = ModelOptionsForBug(bug);
    scenario.workload = workload;
    scenario.entry_seed = options.seed;
    nightly.scenario = scenario;
  }
  const NightlyReport report = RunNightlyValidation(
      &faults, model, models::SaiParserSpec(), entries, nightly);

  BugRunResult result;
  result.bug = &bug;
  result.detected = report.bug_detected();
  result.detector = report.first_detector();
  result.incident_count = static_cast<int>(report.incidents.size());
  if (!report.incidents.empty()) {
    result.first_incident = report.incidents.front().summary;
  }
  result.report = report;
  return result;
}

StatusOr<std::vector<BugRunResult>> RunFullSweep(
    const ExperimentOptions& options, std::ostream* progress) {
  symbolic::PacketCache cache;
  ExperimentOptions shared = options;
  shared.nightly.dataplane.cache = &cache;
  std::vector<BugRunResult> results;
  for (const sut::BugInfo& bug : sut::BugCatalog()) {
    SWITCHV_ASSIGN_OR_RETURN(BugRunResult result,
                             RunNightlyForBug(bug, shared));
    if (progress != nullptr) {
      int raised = 0;
      for (const IncidentGroup& group : result.report.groups) {
        raised += group.occurrences;
      }
      *progress << "  " << bug.name << ": "
                << (result.detected
                        ? std::string(DetectorName(*result.detector))
                        : "NOT DETECTED")
                << " (" << result.incident_count << " incident classes, "
                << raised << " raised)\n";
      progress->flush();
    }
    results.push_back(std::move(result));
  }
  return results;
}

StatusOr<sut::TrivialTest> RunTrivialSuiteForBug(const sut::BugInfo& bug) {
  SWITCHV_ASSIGN_OR_RETURN(p4ir::Program model, ModelForBug(bug));
  sut::FaultRegistry faults;
  faults.Activate(bug.fault);
  sut::SwitchUnderTest sut(&faults, models::DefaultCloneSessions(),
                           model.cpu_port);
  const TrivialSuiteReport report =
      RunTrivialSuite(sut, model, models::SaiParserSpec());
  return report.FirstFailing().value_or(sut::TrivialTest::kNone);
}

}  // namespace switchv
