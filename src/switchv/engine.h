// The campaign engine (paper §5 "p4-symbolic", §8 "Deployment"): production
// SwitchV shards fuzzing and symbolic campaigns across many testbeds in
// parallel and aggregates bug reports centrally. This module is that
// architecture in-process: a nightly validation run is decomposed into
// independent, deterministic *campaign shards*, executed on a worker pool,
// and merged through the incident pipeline (fingerprint → dedup →
// occurrence counts) with unified telemetry.
//
// Shard model:
//   * A control-plane shard runs its slice of the fuzzing campaign against
//     its own SwitchUnderTest, with a RequestGenerator seeded via splitmix
//     from (campaign seed, shard index) — see util/rng.h. Each shard owns
//     its generator, oracle, and (inside the generator) BDD managers:
//     ConstraintBdd is thread-hostile, so one per fuzzing thread.
//   * A dataplane shard validates a round-robin subset of the campaign's
//     test packets against its own SwitchUnderTest + reference interpreter.
//     Packets are generated once, on the campaign thread, when more than
//     one dataplane shard exists.
//
// Determinism: the shard decomposition and every shard's behaviour are pure
// functions of (options, seed); `parallelism` only chooses how many worker
// threads drain the shard queue. The merged, deduped incident-fingerprint
// set is therefore identical for parallelism 1 and N.
#ifndef SWITCHV_SWITCHV_ENGINE_H_
#define SWITCHV_SWITCHV_ENGINE_H_

#include <map>
#include <optional>
#include <set>

#include "switchv/control_plane.h"
#include "switchv/dataplane.h"
#include "switchv/shard_io.h"

namespace switchv {

class Fleet;              // switchv/fleet.h
class CampaignTelemetry;  // switchv/telemetry.h

struct CampaignOptions {
  // Worker threads executing shards. Results are bit-identical for any
  // value; only wall-clock changes.
  int parallelism = 1;
  // Fuzzing-campaign split: control_plane.num_requests is divided across
  // this many shards, each drawing from its own derived seed.
  int control_plane_shards = 1;
  // Differential-testing split: shard k of M tests packets {i : i % M == k}.
  int dataplane_shards = 1;
  // Campaign seed; shard i fuzzes with ShardSeed(seed, i).
  std::uint64_t seed = 1;

  ControlPlaneOptions control_plane;  // campaign-wide totals
  DataplaneOptions dataplane;
  bool run_control_plane = true;
  bool run_dataplane = true;
  // Coverage-guided scheduling (fuzzer/coverage.h). kCoverage turns on the
  // per-shard CoverageScheduler (folded into control_plane.guidance),
  // coverage observation of the dataplane reference
  // (dataplane.coverage_observe), seed harvest/fan-out across shards, and
  // the v3 request envelope for kRemote. kUniform — the default — leaves
  // every wire byte and every generated update identical to a build
  // without guidance.
  fuzzer::Guidance guidance = fuzzer::Guidance::kUniform;
  fuzzer::GuidanceOptions guidance_options;
  // Seeds fanned out identically to every control-plane shard (e.g. a
  // previous campaign's harvest — cross-campaign seed exchange). Fan-out
  // to all shards keeps shard behaviour independent of merge order, so
  // the parallelism-determinism invariant holds under guidance.
  std::vector<fuzzer::SeedDescriptor> guidance_seeds;
  // §7 extension: after its fuzzing slice, a control-plane shard also
  // validates the forwarding behaviour of the state it left on its switch.
  bool dataplane_on_fuzzed_state = false;

  // ---- Execution substrate ----
  // kInProcess runs shards on worker threads (above). kSubprocess runs each
  // shard in its own `switchv_shard_worker` process via the wire protocol in
  // switchv/shard_io.h: a crashed or wedged switch instance loses one shard,
  // never the campaign. kRemote dispatches shards over TCP
  // (switchv/shard_transport.h) to a pool of `switchv_worker_host` daemons,
  // each of which runs them in worker subprocesses — the same crash
  // isolation, spanning hosts. The merged report is byte-identical in all
  // three modes — same fingerprints, same group counts, same merged
  // histogram totals.
  enum class Execution { kInProcess, kSubprocess, kRemote };
  Execution execution = Execution::kInProcess;
  // How workers rebuild the campaign's model, parser, and replay entries
  // from first principles (construction is deterministic in these fields).
  // Required for kSubprocess: without it — or without a resolvable worker
  // binary — the campaign falls back to in-process execution, which is
  // behaviourally identical.
  std::optional<ShardScenario> scenario;
  // Path to the worker binary; empty consults $SWITCHV_SHARD_WORKER.
  std::string worker_binary;
  // Wall-clock deadline per worker attempt; an overrunning worker is
  // SIGKILLed and the attempt counts as a timeout.
  double shard_timeout_seconds = 120;
  // Failed shard attempts are retried this many times before the shard is
  // declared lost and a synthetic harness incident takes its place.
  int shard_retries = 1;
  // Extra argv entries for every worker (test hooks: --abort-on-shard=N,
  // --hang-on-shard=N).
  std::vector<std::string> worker_extra_args;

  // ---- Remote execution (Execution::kRemote) ----
  // `switchv_worker_host` endpoints ("host:port"). The dispatcher
  // work-steals across them: an idle host takes the next queued shard.
  // Required for kRemote; empty falls back to in-process execution.
  std::vector<std::string> remote_endpoints;
  // Idempotency-key prefix for shard resends: a host answers a repeated
  // (campaign_id, shard, attempt, spec) from its result cache instead of
  // re-running the shard. 0 derives the id from the campaign seed.
  std::uint64_t campaign_id = 0;
  // Transport-level reconnect-with-resend bound per shard attempt: a
  // dropped or silent connection is redialed (possibly on another host)
  // this many times before the attempt counts as failed.
  int remote_reconnects = 2;
  // Slow-host retirement: a host with this many *consecutive* transport
  // failures is dropped from the pool for the rest of the campaign.
  int remote_host_max_failures = 2;
  // Liveness bound: hosts stream heartbeats while a shard runs; a
  // connection silent for this long is declared dead and the shard resent.
  double remote_heartbeat_timeout_seconds = 10;
  // A retired host is not gone for good: after this cooldown the pool
  // routes one probe shard to it, and a success re-admits the host while a
  // failure re-retires it with a fresh cooldown. <= 0 restores permanent
  // retirement.
  double remote_host_probation_seconds = 5;
  // Provisioned fleet (switchv/fleet.h). When set, the dispatcher draws
  // its endpoints from the fleet instead of `remote_endpoints`, and a
  // newly *retired* host is replaced by a freshly provisioned one (budget
  // permitting) — the pool grows a live endpoint where the static list
  // would have shrunk. Not owned; must outlive the campaign.
  Fleet* fleet = nullptr;
  // Shared secret authenticating every transport frame (HMAC-SHA256; see
  // shard_transport.h). Empty — the default — leaves the wire bytes
  // exactly as the unauthenticated protocol. When empty and a fleet is
  // set, the fleet's own auth_secret applies.
  std::string remote_auth_secret;

  // Per-shard fault-registry views, keyed by global shard index. Shards
  // absent from the map see the campaign-level registry. This models a
  // fleet where individual testbeds carry different switch builds; the
  // shard-isolation tests are built on it.
  std::map<int, const sut::FaultRegistry*> shard_faults;

  // Optional campaign-wide span sink (switchv/trace.h). When set, the
  // campaign thread and every shard record spans into it; export with
  // Tracer::ToChromeJson() after the run. Null = tracing disabled at
  // near-zero cost. Trace *content* (span identity, nesting, names) is
  // deterministic across parallelism; only timestamps vary.
  Tracer* tracer = nullptr;
  // Ring-buffer capacity of each shard's flight recorder: the last N switch
  // operations replayed in every incident report.
  int flight_recorder_capacity = 32;

  // ---- Live telemetry plane (switchv/telemetry.h) ----
  // When set, the campaign streams into it: rolling fleet-wide metrics
  // (worker hosts piggyback interval deltas on their heartbeat channel),
  // the structured event journal, per-host heartbeat RTTs, and cross-host
  // span stitching (remote span timestamps rebased into the coordinator
  // clock, host-tagged for per-host trace tracks). Strictly observational:
  // the final report is byte-identical with telemetry on or off. Not
  // owned; must outlive the campaign.
  CampaignTelemetry* telemetry = nullptr;
  // Interval between streamed worker samples and heartbeat RTT pings when
  // the telemetry plane is attached. Ignored when `telemetry` is null.
  double telemetry_interval_seconds = 0.5;
};

struct CampaignReport {
  // Deduped incident classes, in deterministic merge order (control-plane
  // shards by index, then dataplane shards; within a shard, raise order).
  std::vector<IncidentGroup> groups;
  MetricsSnapshot metrics;
  int shards_run = 0;
  int fuzzed_updates = 0;
  int packets_tested = 0;
  symbolic::GenerationStats generation;
  // Guided campaigns: every shard's harvested seeds, concatenated in shard
  // order (deterministic across parallelism and execution substrate).
  // Feed back into CampaignOptions::guidance_seeds of a later campaign.
  std::vector<fuzzer::SeedDescriptor> harvested_seeds;

  bool bug_detected() const { return !groups.empty(); }
  std::optional<Detector> first_detector() const {
    if (groups.empty()) return std::nullopt;
    return groups.front().exemplar.detector;
  }
  // Exemplar incidents in merge order (one per group).
  std::vector<Incident> Incidents() const;
  // The campaign's deduped fingerprint set — the determinism invariant.
  std::set<std::uint64_t> FingerprintSet() const;
};

// Runs a full validation campaign of a switch built with the given fault
// set against the given model and forwarding state. `faults` may be nullptr
// (healthy fleet); `entries` is the production-like replay state, shared
// immutably by all shards.
CampaignReport RunValidationCampaign(
    const sut::FaultRegistry* faults, const p4ir::Program& model,
    const packet::ParserSpec& parser,
    const std::vector<p4rt::TableEntry>& entries,
    const CampaignOptions& options);

// Executes exactly one wire shard spec in the calling process: rebuilds the
// scenario (model, parser, entries, fault registry) from the recipe, runs
// the shard, and returns its complete output — incidents, counters, a full
// telemetry snapshot, and trace spans when the spec asked for them. This is
// the body of the `switchv_shard_worker` binary; it lives here so worker
// and engine share one shard implementation (the conformance guarantee is
// structural, not tested-into-existence). Fails with a Status — which the
// worker renders to stderr before exiting nonzero — when the scenario
// cannot be provisioned.
StatusOr<WireShardResult> ExecuteShardSpec(const WireShardSpec& spec);

// Live-sampling hook for out-of-process shard execution (the
// `switchv_shard_worker --telemetry-interval=S` path): while the shard
// runs, a sampler thread calls `emit` roughly every `interval_seconds`
// with the metric delta — and any spans recorded — since the previous
// sample. Samples are additive: accumulating all of a shard's deltas
// reproduces its final snapshot exactly, and a final flush sample is
// emitted before the function returns, so nothing recorded is ever lost
// to interval alignment. `emit` runs on the sampler thread.
struct ShardTelemetryHook {
  double interval_seconds = 0;
  std::function<void(const TelemetrySample& sample)> emit;
};

// As above, with live sampling when `hook` is non-null and enabled. The
// returned result is identical either way — sampling only observes.
StatusOr<WireShardResult> ExecuteShardSpec(const WireShardSpec& spec,
                                           const ShardTelemetryHook* hook);

}  // namespace switchv

#endif  // SWITCHV_SWITCHV_ENGINE_H_
