#include "packet/packet.h"

#include <algorithm>

#include "util/strings.h"

namespace switchv::packet {

ParserSpec ParserSpec::Sai() {
  ParserSpec spec;
  spec.start_header = "ethernet";
  spec.transitions = {
      {"ethernet.ether_type", 0x0806, "arp"},
      {"ethernet.ether_type", 0x0800, "ipv4"},
      {"ethernet.ether_type", 0x86DD, "ipv6"},
      {"ipv4.protocol", 6, "tcp"},
      {"ipv4.protocol", 17, "udp"},
      {"ipv4.protocol", 1, "icmp"},
      // IPv4-in-IPv4 (protocol 4): the inner header is parsed as
      // "inner_ipv4" when the program declares it (Cerberus-style
      // encap/decap pipelines).
      {"ipv4.protocol", 4, "inner_ipv4"},
      {"ipv6.next_header", 6, "tcp"},
      {"ipv6.next_header", 17, "udp"},
      {"ipv6.next_header", 58, "icmp"},
  };
  return spec;
}

namespace {

// Big-endian bit cursor over a byte string.
class BitReader {
 public:
  explicit BitReader(std::string_view bytes) : bytes_(bytes) {}

  bool HasBits(int count) const {
    return bit_pos_ + static_cast<std::size_t>(count) <= bytes_.size() * 8;
  }

  BitString Read(int width) {
    uint128 value = 0;
    for (int i = 0; i < width; ++i) {
      const std::size_t byte = bit_pos_ >> 3;
      const int bit = 7 - static_cast<int>(bit_pos_ & 7);
      value = (value << 1) |
              ((static_cast<unsigned char>(bytes_[byte]) >> bit) & 1);
      ++bit_pos_;
    }
    return BitString::FromUint(value, width);
  }

  // Remaining whole bytes from the current (byte-aligned) position.
  std::string_view Tail() const { return bytes_.substr(bit_pos_ / 8); }

 private:
  std::string_view bytes_;
  std::size_t bit_pos_ = 0;
};

class BitWriter {
 public:
  void Write(const BitString& value) {
    for (int i = value.width() - 1; i >= 0; --i) {
      const bool bit = (value.value() >> i) & 1;
      if (bit_fill_ == 0) bytes_.push_back('\0');
      bytes_.back() = static_cast<char>(
          static_cast<unsigned char>(bytes_.back()) |
          ((bit ? 1u : 0u) << (7 - bit_fill_)));
      bit_fill_ = (bit_fill_ + 1) & 7;
    }
  }

  void WriteBytes(std::string_view payload) {
    bytes_.append(payload.data(), payload.size());
  }

  std::string Take() { return std::move(bytes_); }

 private:
  std::string bytes_;
  int bit_fill_ = 0;
};

int HeaderBits(const p4ir::HeaderDef& header) {
  int bits = 0;
  for (const p4ir::FieldDef& f : header.fields) bits += f.width;
  return bits;
}

}  // namespace

ParsedPacket Parse(const p4ir::Program& program, const ParserSpec& spec,
                   std::string_view bytes) {
  ParsedPacket out;
  // Initialize every program field to zero so lookups are total.
  for (const p4ir::FieldDef& f : program.AllFields()) {
    out.fields.emplace(f.name, BitString::FromUint(0, f.width));
  }

  BitReader reader(bytes);
  std::string current = spec.start_header;
  while (!current.empty()) {
    const p4ir::HeaderDef* header = program.FindHeader(current);
    if (header == nullptr || !reader.HasBits(HeaderBits(*header))) break;
    for (const p4ir::FieldDef& f : header->fields) {
      out.fields[f.name] = reader.Read(f.width);
    }
    out.valid_headers.insert(current);
    std::string next;
    for (const ParseTransition& t : spec.transitions) {
      auto it = out.fields.find(t.select_field);
      if (it == out.fields.end()) continue;
      // Only transitions keyed on the header just parsed are considered.
      if (!HasPrefix(t.select_field, current + ".")) continue;
      if (it->second.value() == t.value) {
        next = t.next_header;
        break;
      }
    }
    current = next;
  }
  out.payload = std::string(reader.Tail());
  return out;
}

std::string Deparse(const p4ir::Program& program, const ParsedPacket& packet) {
  BitWriter writer;
  for (const p4ir::HeaderDef& header : program.headers) {
    if (!packet.valid_headers.contains(header.name)) continue;
    for (const p4ir::FieldDef& f : header.fields) {
      auto it = packet.fields.find(f.name);
      writer.Write(it != packet.fields.end()
                       ? it->second
                       : BitString::FromUint(0, f.width));
    }
  }
  writer.WriteBytes(packet.payload);
  return writer.Take();
}

std::string ForwardingOutcome::Canonical() const {
  std::string out;
  if (dropped) {
    out += "drop";
  } else {
    out += "fwd:" + std::to_string(egress_port) + ":" +
           BytesToHex(packet_bytes);
  }
  if (punted) out += "|punt";
  std::vector<std::pair<std::uint16_t, std::string>> sorted = clones;
  std::sort(sorted.begin(), sorted.end());
  for (const auto& [port, bytes] : sorted) {
    out += "|clone:" + std::to_string(port) + ":" + BytesToHex(bytes);
  }
  return out;
}

}  // namespace switchv::packet
