// Wire packets and their parsed representation.
//
// SwitchV exchanges *concrete byte packets* with the switch under test and
// the reference simulator; both sides parse them into header fields using
// the header layouts declared in the P4 model plus a small, data-driven
// transition table (the paper deprioritized generic P4 parsers in favour of
// "semi-hardcoded support for parser patterns of interest", §5).
//
// Checksums are not recomputed: the paper's models treat them as opaque
// fields, and differential comparison is unaffected as long as both
// implementations agree (documented in DESIGN.md).
#ifndef SWITCHV_PACKET_PACKET_H_
#define SWITCHV_PACKET_PACKET_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "p4ir/program.h"
#include "util/status.h"

namespace switchv::packet {

// One parser transition: if `select_field` of the just-parsed header equals
// `value`, continue parsing `next_header`.
struct ParseTransition {
  std::string select_field;
  uint128 value = 0;
  std::string next_header;
};

// A semi-hardcoded parser: start header plus a transition table. Header
// layouts (field order and widths) come from the P4 program.
struct ParserSpec {
  std::string start_header;
  std::vector<ParseTransition> transitions;

  // The standard SAI-style parser used by all models in this repo:
  // ethernet -> { arp, ipv4, ipv6 }, ipv4 -> { tcp, udp, icmp, ipv4-in-ipv4 },
  // ipv6 -> { tcp, udp, icmp }.
  static ParserSpec Sai();
};

// A packet parsed against a program: field values, header validity, and the
// unparsed payload tail.
struct ParsedPacket {
  std::map<std::string, BitString> fields;
  std::set<std::string> valid_headers;
  std::string payload;
};

// Parses `bytes` per `spec` and the header layouts of `program`. Headers
// whose bytes are truncated terminate parsing (the partial header is not
// marked valid). Never fails: an unparseable packet is all-payload.
ParsedPacket Parse(const p4ir::Program& program, const ParserSpec& spec,
                   std::string_view bytes);

// Serializes valid headers (in program declaration order) followed by the
// payload. Inverse of Parse for packets without truncated headers.
std::string Deparse(const p4ir::Program& program, const ParsedPacket& packet);

// The forwarding verdict of one packet through one switch implementation.
// This is the unit of behavioural comparison in data-plane validation.
struct ForwardingOutcome {
  bool dropped = false;
  bool punted = false;                   // packet-in to the controller
  std::uint16_t egress_port = 0;         // meaningful iff !dropped
  std::string packet_bytes;              // egress bytes, iff !dropped
  // Mirror copies: (port, bytes) pairs, sorted for comparison.
  std::vector<std::pair<std::uint16_t, std::string>> clones;

  // Canonical rendering; two outcomes are behaviourally equal iff their
  // canonical strings are equal.
  std::string Canonical() const;

  friend bool operator==(const ForwardingOutcome& a,
                         const ForwardingOutcome& b) {
    return a.Canonical() == b.Canonical();
  }
};

}  // namespace switchv::packet

#endif  // SWITCHV_PACKET_PACKET_H_
