// SHA-256 and HMAC-SHA256, implemented from first principles (FIPS 180-4,
// RFC 2104) so the shard transport can authenticate frames on untrusted
// networks without pulling in a TLS dependency.
//
// Scope: message authentication of the fleet transport's "SwV1" frames
// (switchv/shard_transport.h) under a pre-shared secret — integrity and
// peer authentication, not confidentiality. Shard specs and results are
// test artifacts, not secrets; what the transport must prevent is an
// attacker injecting, tampering with, or replaying frames, and HMAC over a
// per-connection nonce and sequence number does exactly that.
//
// Correctness is pinned by tests/hmac_test.cc against the FIPS 180-4
// example digests and the RFC 4231 HMAC-SHA256 test vectors.
#ifndef SWITCHV_UTIL_HMAC_H_
#define SWITCHV_UTIL_HMAC_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace switchv {

inline constexpr std::size_t kSha256DigestSize = 32;
inline constexpr std::size_t kSha256BlockSize = 64;

// SHA-256 digest of `data` (FIPS 180-4).
std::array<std::uint8_t, kSha256DigestSize> Sha256(std::string_view data);

// Lowercase hex rendering of the digest, for logs and test vectors.
std::string Sha256Hex(std::string_view data);

// HMAC-SHA256(key, message) per RFC 2104: keys longer than the block size
// are hashed first; shorter keys are zero-padded.
std::array<std::uint8_t, kSha256DigestSize> HmacSha256(std::string_view key,
                                                       std::string_view message);

std::string HmacSha256Hex(std::string_view key, std::string_view message);

// Constant-time byte-string comparison: the running time depends only on
// the lengths, never on where the first mismatch sits. MAC verification
// must use this — a short-circuiting memcmp leaks the mismatch position.
bool ConstantTimeEqual(std::string_view a, std::string_view b);

}  // namespace switchv

#endif  // SWITCHV_UTIL_HMAC_H_
