// 64-bit FNV-1a fingerprinting, used to key the p4-symbolic test-packet
// cache on (program, table entries, coverage goals) — see paper §6.3.
#ifndef SWITCHV_UTIL_FINGERPRINT_H_
#define SWITCHV_UTIL_FINGERPRINT_H_

#include <cstdint>
#include <string_view>

namespace switchv {

// Incremental FNV-1a hasher. Combine heterogeneous inputs by repeatedly
// calling Add*; order matters.
class Fingerprint {
 public:
  Fingerprint& AddBytes(std::string_view bytes) {
    for (char c : bytes) Mix(static_cast<unsigned char>(c));
    return *this;
  }

  Fingerprint& AddU64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) Mix(static_cast<unsigned char>(v >> (i * 8)));
    return *this;
  }

  std::uint64_t digest() const { return state_; }

 private:
  void Mix(unsigned char byte) {
    state_ ^= byte;
    state_ *= 0x100000001b3ull;
  }

  std::uint64_t state_ = 0xcbf29ce484222325ull;
};

}  // namespace switchv

#endif  // SWITCHV_UTIL_FINGERPRINT_H_
