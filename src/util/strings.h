// Small string utilities shared across modules.
#ifndef SWITCHV_UTIL_STRINGS_H_
#define SWITCHV_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace switchv {

// Splits `text` on `sep`, keeping empty pieces.
std::vector<std::string> StrSplit(std::string_view text, char sep);

// Joins `pieces` with `sep`.
std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view sep);

// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

// Lowercase hex of a byte string, e.g. "0a0001ff".
std::string BytesToHex(std::string_view bytes);

// True if `text` starts with / ends with the given prefix or suffix.
bool HasPrefix(std::string_view text, std::string_view prefix);

}  // namespace switchv

#endif  // SWITCHV_UTIL_STRINGS_H_
