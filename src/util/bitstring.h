// BitString: an arbitrary-width (1..128 bit) unsigned value, the universal
// representation of P4 match-field values, action parameters, and header
// fields throughout this codebase.
//
// P4Runtime transmits values as big-endian byte strings and requires the
// *canonical* representation: the shortest byte string that encodes the
// value (a single 0x00 byte for zero). Non-canonical encodings are a real
// bug class the paper's fuzzer exercises ("Incorrect handling of zero bytes
// in IDs", Appendix A), so encoding and validation live here.
#ifndef SWITCHV_UTIL_BITSTRING_H_
#define SWITCHV_UTIL_BITSTRING_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace switchv {

// 128-bit unsigned integer; GCC/Clang builtin, sufficient for IPv6 addresses,
// the widest field in our models.
using uint128 = unsigned __int128;

class BitString {
 public:
  static constexpr int kMaxWidth = 128;

  // Constructs the zero value of width 1. Prefer the factory functions.
  BitString() : width_(1), value_(0) {}

  // Constructs a value of the given width. The value is truncated to fit.
  static BitString FromUint(uint128 value, int width);

  // Parses a big-endian byte string into a value of the given width.
  // Fails if the bytes are empty, exceed the width, or are non-canonical
  // when `require_canonical` is set.
  static StatusOr<BitString> FromBytes(std::string_view bytes, int width,
                                       bool require_canonical = true);

  // Parses dotted-quad IPv4 ("10.0.0.1") into a 32-bit value.
  static StatusOr<BitString> FromIpv4(std::string_view dotted);

  // Parses colon-hex IPv6 (full or `::`-compressed) into a 128-bit value.
  static StatusOr<BitString> FromIpv6(std::string_view text);

  // Parses a MAC address ("aa:bb:cc:dd:ee:ff") into a 48-bit value.
  static StatusOr<BitString> FromMac(std::string_view text);

  // The all-ones value of the given width.
  static BitString AllOnes(int width);

  // A mask of `prefix_len` leading ones within `width` bits (LPM mask).
  static BitString PrefixMask(int prefix_len, int width);

  int width() const { return width_; }
  uint128 value() const { return value_; }

  // Value as uint64; precondition: fits in 64 bits.
  std::uint64_t ToUint64() const;

  bool IsZero() const { return value_ == 0; }

  // The canonical big-endian P4Runtime byte string (shortest encoding).
  std::string ToCanonicalBytes() const;

  // The big-endian byte string zero-padded to ceil(width/8) bytes.
  std::string ToPaddedBytes() const;

  // "0x..." hexadecimal with the width as a suffix, e.g. "0x0a000001/32".
  std::string ToString() const;

  // Bitwise operations preserve the width of *this.
  BitString operator&(const BitString& other) const;
  BitString operator|(const BitString& other) const;
  BitString operator^(const BitString& other) const;
  BitString operator~() const;

  // True if this value matches `value` under `mask` (ternary semantics).
  bool TernaryMatches(const BitString& value, const BitString& mask) const;

  friend bool operator==(const BitString& a, const BitString& b) {
    return a.width_ == b.width_ && a.value_ == b.value_;
  }
  friend auto operator<=>(const BitString& a, const BitString& b) {
    if (a.value_ != b.value_) return a.value_ < b.value_ ? -1 : 1;
    return a.width_ < b.width_ ? -1 : (a.width_ > b.width_ ? 1 : 0);
  }

 private:
  BitString(int width, uint128 value) : width_(width), value_(value) {}

  int width_;
  uint128 value_;
};

std::ostream& operator<<(std::ostream& os, const BitString& b);

// True if `bytes` is the canonical (shortest) encoding of its value.
bool IsCanonicalByteString(std::string_view bytes);

// Mask with the low `width` bits set; width in [0, 128].
uint128 LowBitMask(int width);

}  // namespace switchv

#endif  // SWITCHV_UTIL_BITSTRING_H_
