#include "util/strings.h"

namespace switchv {

std::vector<std::string> StrSplit(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string_view StripWhitespace(std::string_view text) {
  std::size_t begin = 0;
  while (begin < text.size() &&
         (text[begin] == ' ' || text[begin] == '\t' || text[begin] == '\n' ||
          text[begin] == '\r')) {
    ++begin;
  }
  std::size_t end = text.size();
  while (end > begin &&
         (text[end - 1] == ' ' || text[end - 1] == '\t' ||
          text[end - 1] == '\n' || text[end - 1] == '\r')) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string BytesToHex(std::string_view bytes) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (char c : bytes) {
    const auto b = static_cast<unsigned char>(c);
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xF]);
  }
  return out;
}

bool HasPrefix(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

}  // namespace switchv
