// Status and StatusOr: explicit error propagation with gRPC canonical codes.
//
// The P4Runtime specification defines switch responses in terms of gRPC
// canonical status codes (e.g. a write with an unknown table id must fail
// with NOT_FOUND or INVALID_ARGUMENT). The SwitchV oracle reasons about
// *which* codes are admissible for a request, so the code is part of the
// domain model rather than incidental plumbing.
#ifndef SWITCHV_UTIL_STATUS_H_
#define SWITCHV_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace switchv {

// The gRPC canonical status codes, numbered identically to grpc::StatusCode.
enum class StatusCode {
  kOk = 0,
  kCancelled = 1,
  kUnknown = 2,
  kInvalidArgument = 3,
  kDeadlineExceeded = 4,
  kNotFound = 5,
  kAlreadyExists = 6,
  kPermissionDenied = 7,
  kResourceExhausted = 8,
  kFailedPrecondition = 9,
  kAborted = 10,
  kOutOfRange = 11,
  kUnimplemented = 12,
  kInternal = 13,
  kUnavailable = 14,
  kDataLoss = 15,
  kUnauthenticated = 16,
};

// Human-readable name of a canonical code, e.g. "INVALID_ARGUMENT".
std::string_view StatusCodeName(StatusCode code);

// A status result: either OK or an error code plus a message.
class [[nodiscard]] Status {
 public:
  // Constructs an OK status.
  Status() = default;

  // Constructs a status with the given code and message. An OK code with a
  // message is allowed but the message is ignored by comparisons.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "CODE_NAME: message".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

inline Status OkStatus() { return Status(); }
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status ResourceExhaustedError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);
Status UnknownError(std::string message);
Status AbortedError(std::string message);
Status UnavailableError(std::string message);
Status PermissionDeniedError(std::string message);
Status DeadlineExceededError(std::string message);

// A value-or-error result, analogous to absl::StatusOr<T>.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  // Implicit conversions mirror absl::StatusOr for ergonomic returns.
  StatusOr(const T& value) : value_(value) {}          // NOLINT
  StatusOr(T&& value) : value_(std::move(value)) {}    // NOLINT
  StatusOr(Status status) : value_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(value_).ok() &&
           "StatusOr may not hold an OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(value_); }

  // The status: OK when a value is held.
  Status status() const {
    if (ok()) return OkStatus();
    return std::get<Status>(value_);
  }

  // Value accessors. Precondition: ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(value_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(value_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(value_));
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> value_;
};

// Propagates an error status from an expression, analogous to
// RETURN_IF_ERROR in Abseil-based codebases.
#define SWITCHV_RETURN_IF_ERROR(expr)                 \
  do {                                                \
    if (auto status_ = (expr); !status_.ok()) {       \
      return status_;                                 \
    }                                                 \
  } while (false)

// Assigns the value of a StatusOr expression or propagates its error.
// `lhs` may be a declaration, e.g. SWITCHV_ASSIGN_OR_RETURN(int x, F()).
#define SWITCHV_INTERNAL_CONCAT2(a, b) a##b
#define SWITCHV_INTERNAL_CONCAT(a, b) SWITCHV_INTERNAL_CONCAT2(a, b)
#define SWITCHV_ASSIGN_OR_RETURN(lhs, expr)                                 \
  SWITCHV_ASSIGN_OR_RETURN_IMPL(SWITCHV_INTERNAL_CONCAT(status_or_, __LINE__), \
                                lhs, expr)
#define SWITCHV_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) {                                    \
    return tmp.status();                              \
  }                                                   \
  lhs = std::move(tmp).value()

}  // namespace switchv

#endif  // SWITCHV_UTIL_STATUS_H_
