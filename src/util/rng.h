// Deterministic random number generation for fuzzing and workload synthesis.
//
// Every randomized component in this repo draws from an explicitly seeded
// Rng so that fuzzing runs, generated workloads, and benchmark inputs are
// reproducible — a requirement for regenerating the paper's tables.
#ifndef SWITCHV_UTIL_RNG_H_
#define SWITCHV_UTIL_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

#include "util/bitstring.h"

namespace switchv {

// SplitMix64 finalizer (Steele et al.): a cheap, high-quality mix used to
// derive independent seeds. Campaign shards seed their generators with
// ShardSeed(campaign_seed, shard_index) so that (a) every shard draws from a
// statistically independent stream and (b) the decomposition is a pure
// function of the campaign seed — execution order and thread count never
// change what a shard generates.
inline std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

inline std::uint64_t ShardSeed(std::uint64_t campaign_seed,
                               std::uint64_t shard_index) {
  return SplitMix64(SplitMix64(campaign_seed) ^ SplitMix64(~shard_index));
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Uniform integer in [lo, hi] (inclusive). Precondition: lo <= hi.
  std::uint64_t Uniform(std::uint64_t lo, std::uint64_t hi) {
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
  }

  // Uniform index in [0, size). Precondition: size > 0.
  std::size_t Index(std::size_t size) {
    return static_cast<std::size_t>(Uniform(0, size - 1));
  }

  // True with probability `p` in [0, 1].
  bool Chance(double p) {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_) < p;
  }

  // A uniformly random value of the given bit width.
  BitString Bits(int width) {
    uint128 v = (static_cast<uint128>(engine_()) << 64) | engine_();
    return BitString::FromUint(v, width);
  }

  // A uniformly random element of a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    return items[Index(items.size())];
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace switchv

#endif  // SWITCHV_UTIL_RNG_H_
