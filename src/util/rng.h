// Deterministic random number generation for fuzzing and workload synthesis.
//
// Every randomized component in this repo draws from an explicitly seeded
// Rng so that fuzzing runs, generated workloads, and benchmark inputs are
// reproducible — a requirement for regenerating the paper's tables.
#ifndef SWITCHV_UTIL_RNG_H_
#define SWITCHV_UTIL_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

#include "util/bitstring.h"

namespace switchv {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Uniform integer in [lo, hi] (inclusive). Precondition: lo <= hi.
  std::uint64_t Uniform(std::uint64_t lo, std::uint64_t hi) {
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
  }

  // Uniform index in [0, size). Precondition: size > 0.
  std::size_t Index(std::size_t size) {
    return static_cast<std::size_t>(Uniform(0, size - 1));
  }

  // True with probability `p` in [0, 1].
  bool Chance(double p) {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_) < p;
  }

  // A uniformly random value of the given bit width.
  BitString Bits(int width) {
    uint128 v = (static_cast<uint128>(engine_()) << 64) | engine_();
    return BitString::FromUint(v, width);
  }

  // A uniformly random element of a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    return items[Index(items.size())];
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace switchv

#endif  // SWITCHV_UTIL_RNG_H_
