#include "util/hmac.h"

#include <algorithm>
#include <cstring>

#include "util/strings.h"

namespace switchv {

namespace {

// FIPS 180-4 §4.2.2: the first 32 bits of the fractional parts of the cube
// roots of the first 64 primes.
constexpr std::uint32_t kRoundConstants[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
};

inline std::uint32_t RotateRight(std::uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

// Incremental SHA-256: the HMAC inner/outer hashes stream a padded key
// block followed by the message without concatenating them into one buffer.
class Sha256State {
 public:
  Sha256State() {
    // FIPS 180-4 §5.3.3: fractional parts of the square roots of the first
    // eight primes.
    state_[0] = 0x6a09e667;
    state_[1] = 0xbb67ae85;
    state_[2] = 0x3c6ef372;
    state_[3] = 0xa54ff53a;
    state_[4] = 0x510e527f;
    state_[5] = 0x9b05688c;
    state_[6] = 0x1f83d9ab;
    state_[7] = 0x5be0cd19;
  }

  void Update(const std::uint8_t* data, std::size_t size) {
    total_bytes_ += size;
    while (size > 0) {
      const std::size_t take =
          std::min(size, kSha256BlockSize - pending_size_);
      std::memcpy(pending_ + pending_size_, data, take);
      pending_size_ += take;
      data += take;
      size -= take;
      if (pending_size_ == kSha256BlockSize) {
        Compress(pending_);
        pending_size_ = 0;
      }
    }
  }

  void Update(std::string_view data) {
    Update(reinterpret_cast<const std::uint8_t*>(data.data()), data.size());
  }

  std::array<std::uint8_t, kSha256DigestSize> Finish() {
    // Padding (§5.1.1): 0x80, zeros to 56 mod 64, then the bit length as a
    // 64-bit big-endian integer.
    const std::uint64_t bit_length = total_bytes_ * 8;
    const std::uint8_t one = 0x80;
    Update(&one, 1);
    const std::uint8_t zero = 0x00;
    while (pending_size_ != kSha256BlockSize - 8) Update(&zero, 1);
    std::uint8_t length_be[8];
    for (int i = 0; i < 8; ++i) {
      length_be[i] = static_cast<std::uint8_t>(bit_length >> (56 - 8 * i));
    }
    Update(length_be, sizeof(length_be));

    std::array<std::uint8_t, kSha256DigestSize> digest;
    for (int i = 0; i < 8; ++i) {
      digest[4 * i] = static_cast<std::uint8_t>(state_[i] >> 24);
      digest[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
      digest[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
      digest[4 * i + 3] = static_cast<std::uint8_t>(state_[i]);
    }
    return digest;
  }

 private:
  void Compress(const std::uint8_t* block) {
    std::uint32_t w[64];
    for (int t = 0; t < 16; ++t) {
      w[t] = (static_cast<std::uint32_t>(block[4 * t]) << 24) |
             (static_cast<std::uint32_t>(block[4 * t + 1]) << 16) |
             (static_cast<std::uint32_t>(block[4 * t + 2]) << 8) |
             static_cast<std::uint32_t>(block[4 * t + 3]);
    }
    for (int t = 16; t < 64; ++t) {
      const std::uint32_t s0 = RotateRight(w[t - 15], 7) ^
                               RotateRight(w[t - 15], 18) ^ (w[t - 15] >> 3);
      const std::uint32_t s1 = RotateRight(w[t - 2], 17) ^
                               RotateRight(w[t - 2], 19) ^ (w[t - 2] >> 10);
      w[t] = w[t - 16] + s0 + w[t - 7] + s1;
    }
    std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
    std::uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];
    for (int t = 0; t < 64; ++t) {
      const std::uint32_t big_s1 =
          RotateRight(e, 6) ^ RotateRight(e, 11) ^ RotateRight(e, 25);
      const std::uint32_t choose = (e & f) ^ (~e & g);
      const std::uint32_t temp1 = h + big_s1 + choose + kRoundConstants[t] +
                                  w[t];
      const std::uint32_t big_s0 =
          RotateRight(a, 2) ^ RotateRight(a, 13) ^ RotateRight(a, 22);
      const std::uint32_t majority = (a & b) ^ (a & c) ^ (b & c);
      const std::uint32_t temp2 = big_s0 + majority;
      h = g;
      g = f;
      f = e;
      e = d + temp1;
      d = c;
      c = b;
      b = a;
      a = temp1 + temp2;
    }
    state_[0] += a;
    state_[1] += b;
    state_[2] += c;
    state_[3] += d;
    state_[4] += e;
    state_[5] += f;
    state_[6] += g;
    state_[7] += h;
  }

  std::uint32_t state_[8];
  std::uint8_t pending_[kSha256BlockSize];
  std::size_t pending_size_ = 0;
  std::uint64_t total_bytes_ = 0;
};

std::string DigestToString(
    const std::array<std::uint8_t, kSha256DigestSize>& digest) {
  return std::string(reinterpret_cast<const char*>(digest.data()),
                     digest.size());
}

}  // namespace

std::array<std::uint8_t, kSha256DigestSize> Sha256(std::string_view data) {
  Sha256State state;
  state.Update(data);
  return state.Finish();
}

std::string Sha256Hex(std::string_view data) {
  return BytesToHex(DigestToString(Sha256(data)));
}

std::array<std::uint8_t, kSha256DigestSize> HmacSha256(
    std::string_view key, std::string_view message) {
  // RFC 2104: K' = key hashed down to the block size if longer, then
  // zero-padded to exactly one block.
  std::uint8_t padded_key[kSha256BlockSize] = {};
  if (key.size() > kSha256BlockSize) {
    const auto hashed = Sha256(key);
    std::memcpy(padded_key, hashed.data(), hashed.size());
  } else {
    std::memcpy(padded_key, key.data(), key.size());
  }

  std::uint8_t inner_pad[kSha256BlockSize];
  std::uint8_t outer_pad[kSha256BlockSize];
  for (std::size_t i = 0; i < kSha256BlockSize; ++i) {
    inner_pad[i] = padded_key[i] ^ 0x36;
    outer_pad[i] = padded_key[i] ^ 0x5c;
  }

  Sha256State inner;
  inner.Update(inner_pad, sizeof(inner_pad));
  inner.Update(message);
  const auto inner_digest = inner.Finish();

  Sha256State outer;
  outer.Update(outer_pad, sizeof(outer_pad));
  outer.Update(inner_digest.data(), inner_digest.size());
  return outer.Finish();
}

std::string HmacSha256Hex(std::string_view key, std::string_view message) {
  return BytesToHex(DigestToString(HmacSha256(key, message)));
}

bool ConstantTimeEqual(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  unsigned char diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    diff |= static_cast<unsigned char>(a[i]) ^
            static_cast<unsigned char>(b[i]);
  }
  return diff == 0;
}

}  // namespace switchv
