#include "util/bitstring.h"

#include <algorithm>
#include <array>
#include <cctype>

namespace switchv {

uint128 LowBitMask(int width) {
  if (width <= 0) return 0;
  if (width >= 128) return ~static_cast<uint128>(0);
  return (static_cast<uint128>(1) << width) - 1;
}

BitString BitString::FromUint(uint128 value, int width) {
  if (width < 1) width = 1;
  if (width > kMaxWidth) width = kMaxWidth;
  return BitString(width, value & LowBitMask(width));
}

StatusOr<BitString> BitString::FromBytes(std::string_view bytes, int width,
                                         bool require_canonical) {
  if (width < 1 || width > kMaxWidth) {
    return InvalidArgumentError("field width out of range");
  }
  if (bytes.empty()) {
    return InvalidArgumentError("empty byte string");
  }
  if (require_canonical && !IsCanonicalByteString(bytes)) {
    return InvalidArgumentError("byte string is not in canonical form");
  }
  std::size_t first_nonzero = 0;
  while (first_nonzero < bytes.size() && bytes[first_nonzero] == '\0') {
    ++first_nonzero;
  }
  int significant_bits = 0;
  if (first_nonzero < bytes.size()) {
    const auto lead = static_cast<unsigned char>(bytes[first_nonzero]);
    const int lead_bits = 32 - __builtin_clz(static_cast<unsigned>(lead));
    significant_bits =
        lead_bits + static_cast<int>(bytes.size() - first_nonzero - 1) * 8;
  }
  if (significant_bits > width) {
    return OutOfRangeError("value does not fit in field width");
  }
  uint128 value = 0;
  for (std::size_t i = first_nonzero; i < bytes.size(); ++i) {
    value = (value << 8) | static_cast<unsigned char>(bytes[i]);
  }
  return BitString(width, value);
}

StatusOr<BitString> BitString::FromIpv4(std::string_view dotted) {
  std::uint32_t out = 0;
  int octets = 0;
  std::uint32_t current = 0;
  bool have_digit = false;
  for (char c : dotted) {
    if (c == '.') {
      if (!have_digit || current > 255) {
        return InvalidArgumentError("bad IPv4 literal");
      }
      out = (out << 8) | current;
      current = 0;
      have_digit = false;
      ++octets;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      current = current * 10 + static_cast<std::uint32_t>(c - '0');
      have_digit = true;
    } else {
      return InvalidArgumentError("bad IPv4 literal");
    }
  }
  if (octets != 3 || !have_digit || current > 255) {
    return InvalidArgumentError("bad IPv4 literal");
  }
  out = (out << 8) | current;
  return BitString::FromUint(out, 32);
}

StatusOr<BitString> BitString::FromIpv6(std::string_view text) {
  // Split into up-to-8 hextets, honoring one "::" gap.
  std::array<std::uint16_t, 8> groups = {};
  std::vector<std::uint16_t> head;
  std::vector<std::uint16_t> tail;
  bool seen_gap = false;
  std::vector<std::uint16_t>* current_list = &head;

  std::size_t i = 0;
  if (text.starts_with("::")) {
    seen_gap = true;
    current_list = &tail;
    i = 2;
  }
  std::uint32_t current = 0;
  bool have_digit = false;
  auto flush = [&]() -> Status {
    if (!have_digit) return InvalidArgumentError("bad IPv6 literal");
    if (current > 0xFFFF) return InvalidArgumentError("bad IPv6 hextet");
    current_list->push_back(static_cast<std::uint16_t>(current));
    current = 0;
    have_digit = false;
    return OkStatus();
  };
  for (; i < text.size(); ++i) {
    const char c = text[i];
    if (c == ':') {
      if (i + 1 < text.size() && text[i + 1] == ':') {
        if (seen_gap) return InvalidArgumentError("multiple '::' in IPv6");
        SWITCHV_RETURN_IF_ERROR(flush());
        seen_gap = true;
        current_list = &tail;
        ++i;
      } else {
        SWITCHV_RETURN_IF_ERROR(flush());
      }
    } else if (std::isxdigit(static_cast<unsigned char>(c))) {
      const char lower = static_cast<char>(
          std::tolower(static_cast<unsigned char>(c)));
      const std::uint32_t digit =
          std::isdigit(static_cast<unsigned char>(lower))
              ? static_cast<std::uint32_t>(lower - '0')
              : static_cast<std::uint32_t>(lower - 'a' + 10);
      current = (current << 4) | digit;
      if (current > 0xFFFFF) return InvalidArgumentError("bad IPv6 hextet");
      have_digit = true;
    } else {
      return InvalidArgumentError("bad IPv6 literal");
    }
  }
  if (have_digit) {
    SWITCHV_RETURN_IF_ERROR(flush());
  }
  const std::size_t total = head.size() + tail.size();
  if (seen_gap ? total > 7 : total != 8) {
    return InvalidArgumentError("bad IPv6 group count");
  }
  std::copy(head.begin(), head.end(), groups.begin());
  std::copy(tail.begin(), tail.end(), groups.end() - tail.size());
  uint128 value = 0;
  for (std::uint16_t g : groups) value = (value << 16) | g;
  return BitString::FromUint(value, 128);
}

StatusOr<BitString> BitString::FromMac(std::string_view text) {
  std::uint64_t value = 0;
  int bytes = 0;
  std::uint32_t current = 0;
  int digits = 0;
  for (char c : text) {
    if (c == ':') {
      if (digits == 0 || digits > 2 || bytes >= 5) {
        return InvalidArgumentError("bad MAC literal");
      }
      value = (value << 8) | current;
      current = 0;
      digits = 0;
      ++bytes;
    } else if (std::isxdigit(static_cast<unsigned char>(c))) {
      const char lower = static_cast<char>(
          std::tolower(static_cast<unsigned char>(c)));
      const std::uint32_t digit =
          std::isdigit(static_cast<unsigned char>(lower))
              ? static_cast<std::uint32_t>(lower - '0')
              : static_cast<std::uint32_t>(lower - 'a' + 10);
      current = (current << 4) | digit;
      ++digits;
    } else {
      return InvalidArgumentError("bad MAC literal");
    }
  }
  if (bytes != 5 || digits == 0 || digits > 2) {
    return InvalidArgumentError("bad MAC literal");
  }
  value = (value << 8) | current;
  return BitString::FromUint(value, 48);
}

BitString BitString::AllOnes(int width) {
  return BitString::FromUint(~static_cast<uint128>(0), width);
}

BitString BitString::PrefixMask(int prefix_len, int width) {
  if (prefix_len <= 0) return BitString::FromUint(0, width);
  if (prefix_len >= width) return AllOnes(width);
  const uint128 ones = LowBitMask(prefix_len);
  return BitString::FromUint(ones << (width - prefix_len), width);
}

std::uint64_t BitString::ToUint64() const {
  return static_cast<std::uint64_t>(value_ & LowBitMask(64));
}

std::string BitString::ToCanonicalBytes() const {
  std::string padded = ToPaddedBytes();
  std::size_t first = 0;
  while (first + 1 < padded.size() && padded[first] == '\0') ++first;
  return padded.substr(first);
}

std::string BitString::ToPaddedBytes() const {
  const int num_bytes = (width_ + 7) / 8;
  std::string out(static_cast<std::size_t>(num_bytes), '\0');
  uint128 v = value_;
  for (int i = num_bytes - 1; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = static_cast<char>(v & 0xFF);
    v >>= 8;
  }
  return out;
}

std::string BitString::ToString() const {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string hex;
  uint128 v = value_;
  if (v == 0) {
    hex = "0";
  } else {
    while (v != 0) {
      hex.push_back(kHex[static_cast<unsigned>(v & 0xF)]);
      v >>= 4;
    }
    std::reverse(hex.begin(), hex.end());
  }
  return "0x" + hex + "/" + std::to_string(width_);
}

BitString BitString::operator&(const BitString& other) const {
  return BitString(width_, (value_ & other.value_) & LowBitMask(width_));
}
BitString BitString::operator|(const BitString& other) const {
  return BitString(width_, (value_ | other.value_) & LowBitMask(width_));
}
BitString BitString::operator^(const BitString& other) const {
  return BitString(width_, (value_ ^ other.value_) & LowBitMask(width_));
}
BitString BitString::operator~() const {
  return BitString(width_, ~value_ & LowBitMask(width_));
}

bool BitString::TernaryMatches(const BitString& value,
                               const BitString& mask) const {
  return (value_ & mask.value_) == (value.value_ & mask.value_);
}

std::ostream& operator<<(std::ostream& os, const BitString& b) {
  return os << b.ToString();
}

bool IsCanonicalByteString(std::string_view bytes) {
  if (bytes.empty()) return false;
  if (bytes.size() == 1) return true;
  return bytes[0] != '\0';
}

}  // namespace switchv
