// In-process P4Runtime protocol messages.
//
// Mirrors the structure of the P4Runtime v1 protobufs the paper's switches
// speak (WriteRequest batches of INSERT/MODIFY/DELETE updates, reads,
// SetForwardingPipelineConfig, packet-in/out), minus the gRPC transport —
// everything SwitchV exercises is message-level semantics. Values are
// canonical big-endian byte strings exactly as on the wire, so canonical-
// form bugs (a real PINS bug class) remain expressible.
#ifndef SWITCHV_P4RUNTIME_MESSAGES_H_
#define SWITCHV_P4RUNTIME_MESSAGES_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "p4ir/p4info.h"
#include "util/status.h"

namespace switchv::p4rt {

// One match field of a table entry. Which members are meaningful depends on
// the match kind declared in P4Info for `field_id`.
struct FieldMatch {
  std::uint32_t field_id = 0;
  // Canonical value bytes (all kinds).
  std::string value;
  // Ternary/optional mask bytes; empty for other kinds.
  std::string mask;
  // LPM prefix length; 0 for other kinds.
  int prefix_len = 0;

  friend bool operator==(const FieldMatch&, const FieldMatch&) = default;
};

// A direct action invocation with parameter bytes.
struct ActionInvocation {
  struct Param {
    std::uint32_t param_id = 0;
    std::string value;
    friend bool operator==(const Param&, const Param&) = default;
  };
  std::uint32_t action_id = 0;
  std::vector<Param> params;

  friend bool operator==(const ActionInvocation&,
                         const ActionInvocation&) = default;
};

// One member of a one-shot action set (WCMP member with a weight).
struct WeightedAction {
  ActionInvocation action;
  int weight = 0;
  friend bool operator==(const WeightedAction&,
                         const WeightedAction&) = default;
};

// The action part of an entry: a direct action or a one-shot action set.
struct TableAction {
  enum class Kind { kDirect, kActionSet };
  Kind kind = Kind::kDirect;
  ActionInvocation direct;              // kDirect
  std::vector<WeightedAction> action_set;  // kActionSet

  friend bool operator==(const TableAction&, const TableAction&) = default;
};

// A table entry. Identity (for MODIFY/DELETE and duplicate detection) is
// (table_id, match fields, priority) per the P4Runtime spec.
struct TableEntry {
  std::uint32_t table_id = 0;
  std::vector<FieldMatch> matches;
  TableAction action;
  int priority = 0;

  // Canonical identity string: equal iff the entries denote the same key.
  // Match fields are compared as a set (order-insensitive).
  std::string KeyFingerprint() const;

  // Debug rendering, e.g. for incident reports.
  std::string ToString(const p4ir::P4Info* info = nullptr) const;

  friend bool operator==(const TableEntry&, const TableEntry&) = default;
};

enum class UpdateType { kInsert, kModify, kDelete };

std::string_view UpdateTypeName(UpdateType type);

struct Update {
  UpdateType type = UpdateType::kInsert;
  TableEntry entry;
};

// A batch write. The switch may apply updates in any order (paper §4,
// Example 2); P4Runtime reports one status per update.
struct WriteRequest {
  std::vector<Update> updates;
};

struct WriteResponse {
  // Per-update statuses, same order as the request.
  std::vector<Status> statuses;

  bool all_ok() const {
    for (const Status& s : statuses) {
      if (!s.ok()) return false;
    }
    return true;
  }
};

struct ReadRequest {
  // 0 = read all tables; otherwise restrict to one table.
  std::uint32_t table_id = 0;
};

struct ReadResponse {
  std::vector<TableEntry> entries;
};

// Packet-out: controller-originated packet (paper's trivial test 5).
struct PacketOut {
  std::string payload;
  std::uint16_t egress_port = 0;
  // Submit to the ingress pipeline instead of sending directly out a port.
  bool submit_to_ingress = false;
};

// Packet-in: packet punted to the controller with its ingress metadata.
struct PacketIn {
  std::string payload;
  std::uint16_t ingress_port = 0;
  friend bool operator==(const PacketIn&, const PacketIn&) = default;
};

// SetForwardingPipelineConfig payload: the P4Info contract (and, on real
// switches, the compiled device config; our ASIC consumes P4Info directly).
struct ForwardingPipelineConfig {
  p4ir::P4Info p4info;
  std::uint64_t cookie = 0;
};

}  // namespace switchv::p4rt

#endif  // SWITCHV_P4RUNTIME_MESSAGES_H_
