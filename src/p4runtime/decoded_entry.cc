#include "p4runtime/decoded_entry.h"

namespace switchv::p4rt {

namespace {

StatusOr<DecodedAction> DecodeAction(const p4ir::P4Info& info,
                                     const ActionInvocation& invocation,
                                     int weight) {
  const p4ir::ActionInfo* ai = info.FindAction(invocation.action_id);
  if (ai == nullptr) {
    return NotFoundError("unknown action id in decode");
  }
  DecodedAction decoded;
  decoded.name = ai->name;
  decoded.weight = weight;
  decoded.args.resize(ai->params.size());
  for (const ActionInvocation::Param& p : invocation.params) {
    const p4ir::ActionParamInfo* pi = ai->FindParam(p.param_id);
    if (pi == nullptr) {
      return NotFoundError("unknown param id in decode");
    }
    SWITCHV_ASSIGN_OR_RETURN(BitString value,
                             BitString::FromBytes(p.value, pi->width));
    decoded.args[pi->id - 1] = value;
  }
  return decoded;
}

}  // namespace

StatusOr<DecodedEntry> DecodeEntry(const p4ir::P4Info& info,
                                   const TableEntry& entry) {
  const p4ir::TableInfo* table = info.FindTable(entry.table_id);
  if (table == nullptr) {
    return NotFoundError("unknown table id in decode");
  }
  DecodedEntry decoded;
  decoded.table_name = table->name;
  decoded.table_id = table->id;
  decoded.priority = entry.priority;
  decoded.matches.resize(table->match_fields.size());
  for (std::size_t i = 0; i < table->match_fields.size(); ++i) {
    const p4ir::MatchFieldInfo& field = table->match_fields[i];
    DecodedMatch& m = decoded.matches[i];
    m.value = BitString::FromUint(0, field.width);
    m.mask = BitString::FromUint(0, field.width);
    for (const FieldMatch& fm : entry.matches) {
      if (fm.field_id != field.id) continue;
      m.present = true;
      SWITCHV_ASSIGN_OR_RETURN(m.value,
                               BitString::FromBytes(fm.value, field.width));
      switch (field.kind) {
        case p4ir::MatchKind::kExact:
        case p4ir::MatchKind::kOptional:
          m.mask = BitString::AllOnes(field.width);
          break;
        case p4ir::MatchKind::kLpm:
          m.prefix_len = fm.prefix_len;
          m.mask = BitString::PrefixMask(fm.prefix_len, field.width);
          break;
        case p4ir::MatchKind::kTernary:
          SWITCHV_ASSIGN_OR_RETURN(m.mask,
                                   BitString::FromBytes(fm.mask, field.width));
          break;
      }
    }
  }
  if (entry.action.kind == TableAction::Kind::kDirect) {
    SWITCHV_ASSIGN_OR_RETURN(DecodedAction action,
                             DecodeAction(info, entry.action.direct, 0));
    decoded.actions.push_back(std::move(action));
  } else {
    decoded.is_action_set = true;
    for (const WeightedAction& wa : entry.action.action_set) {
      SWITCHV_ASSIGN_OR_RETURN(DecodedAction action,
                               DecodeAction(info, wa.action, wa.weight));
      decoded.actions.push_back(std::move(action));
    }
  }
  return decoded;
}

}  // namespace switchv::p4rt
