// Decoding of wire-format table entries into typed match values.
//
// Purely mechanical (bytes -> BitString per declared width); the two
// dataplane implementations (bmv2 reference interpreter and the SUT's ASIC
// simulator) deliberately do NOT share matching or action semantics — only
// this decode step, which has a single correct meaning fixed by P4Runtime.
#ifndef SWITCHV_P4RUNTIME_DECODED_ENTRY_H_
#define SWITCHV_P4RUNTIME_DECODED_ENTRY_H_

#include <string>
#include <vector>

#include "p4runtime/messages.h"

namespace switchv::p4rt {

// One decoded match: semantics depend on the key's match kind.
struct DecodedMatch {
  bool present = false;       // omitted ternary/optional/lpm = wildcard
  BitString value;
  BitString mask;             // ternary: as sent; lpm: derived; exact: ones
  int prefix_len = 0;         // lpm only
};

// A decoded action invocation: name plus argument values in parameter order.
struct DecodedAction {
  std::string name;
  std::vector<BitString> args;
  int weight = 0;  // one-shot member weight; 0 for direct actions
};

struct DecodedEntry {
  std::string table_name;
  std::uint32_t table_id = 0;
  int priority = 0;
  // Parallel to the table's match_fields in P4Info order.
  std::vector<DecodedMatch> matches;
  // Direct action: exactly one element (weight 0). One-shot: one per member.
  std::vector<DecodedAction> actions;
  bool is_action_set = false;

  int TotalWeight() const {
    int total = 0;
    for (const DecodedAction& a : actions) total += a.weight;
    return total;
  }
};

// Decodes a syntactically valid entry. Returns an error on malformed bytes
// (callers validate first; this guards internal consistency).
StatusOr<DecodedEntry> DecodeEntry(const p4ir::P4Info& info,
                                   const TableEntry& entry);

}  // namespace switchv::p4rt

#endif  // SWITCHV_P4RUNTIME_DECODED_ENTRY_H_
