// Syntactic and semantic validation of table entries against P4Info.
//
// Implements the request-validity model of paper §4: a request is
// *syntactically valid* if it conforms to the P4 program's format per the
// P4Runtime spec, *constraint compliant* if it violates no
// @entry_restriction, and *valid* iff both. Used by the switch-under-test's
// P4Runtime server (PINS enforces constraints at run time, §3) and by the
// fuzzer oracle to classify generated requests.
#ifndef SWITCHV_P4RUNTIME_VALIDATOR_H_
#define SWITCHV_P4RUNTIME_VALIDATOR_H_

#include "p4constraints/eval.h"
#include "p4constraints/parser.h"
#include "p4runtime/messages.h"

namespace switchv::p4rt {

// Checks table/action/field IDs, byte-string canonicality and widths,
// mandatory exact matches, mask/prefix well-formedness, priority presence,
// and one-shot action-set rules. Returns INVALID_ARGUMENT/NOT_FOUND with a
// specific message on the first violation found.
Status ValidateEntrySyntax(const p4ir::P4Info& info, const TableEntry& entry);

// The p4constraints schema of a table's keys.
p4constraints::TableSchema SchemaForTable(const p4ir::TableInfo& table);

// Converts a syntactically valid entry into a constraint valuation
// (omitted ternary/optional keys become wildcards).
StatusOr<p4constraints::EntryValuation> EntryToValuation(
    const p4ir::P4Info& info, const TableEntry& entry);

// True if the entry satisfies the table's @entry_restriction (vacuously
// true for unconstrained tables). Precondition: syntactically valid.
StatusOr<bool> IsConstraintCompliant(const p4ir::P4Info& info,
                                     const TableEntry& entry);

// Syntax + constraint compliance; the paper's definition of a valid request.
Status ValidateEntry(const p4ir::P4Info& info, const TableEntry& entry);

}  // namespace switchv::p4rt

#endif  // SWITCHV_P4RUNTIME_VALIDATOR_H_
