#include "p4runtime/entry_builder.h"

namespace switchv::p4rt {

EntryBuilder::EntryBuilder(const p4ir::P4Info& info, std::string table_name)
    : info_(info), table_name_(std::move(table_name)) {}

EntryBuilder& EntryBuilder::Exact(std::string key, BitString value) {
  matches_.push_back(PendingMatch{std::move(key), value, {}, false, 0});
  return *this;
}

EntryBuilder& EntryBuilder::Lpm(std::string key, BitString value,
                                int prefix_len) {
  matches_.push_back(
      PendingMatch{std::move(key), value, {}, false, prefix_len});
  return *this;
}

EntryBuilder& EntryBuilder::Ternary(std::string key, BitString value,
                                    BitString mask) {
  matches_.push_back(PendingMatch{std::move(key), value, mask, true, 0});
  return *this;
}

EntryBuilder& EntryBuilder::Optional(std::string key, BitString value) {
  matches_.push_back(PendingMatch{std::move(key), value, {}, false, 0});
  return *this;
}

EntryBuilder& EntryBuilder::Priority(int priority) {
  priority_ = priority;
  return *this;
}

EntryBuilder& EntryBuilder::Action(
    std::string name, std::vector<std::pair<std::string, BitString>> args) {
  actions_.push_back(PendingAction{std::move(name), std::move(args), 0});
  is_action_set_ = false;
  return *this;
}

EntryBuilder& EntryBuilder::WeightedAction(
    std::string name, int weight,
    std::vector<std::pair<std::string, BitString>> args) {
  actions_.push_back(PendingAction{std::move(name), std::move(args), weight});
  is_action_set_ = true;
  return *this;
}

StatusOr<TableEntry> EntryBuilder::Build() const {
  const p4ir::TableInfo* table = info_.FindTableByName(table_name_);
  if (table == nullptr) {
    return NotFoundError("unknown table: " + table_name_);
  }
  TableEntry entry;
  entry.table_id = table->id;
  entry.priority = priority_;
  for (const PendingMatch& m : matches_) {
    const p4ir::MatchFieldInfo* field = nullptr;
    for (const p4ir::MatchFieldInfo& f : table->match_fields) {
      if (f.name == m.key) field = &f;
    }
    if (field == nullptr) {
      return NotFoundError("unknown key '" + m.key + "' in " + table_name_);
    }
    FieldMatch fm;
    fm.field_id = field->id;
    fm.value = m.value.ToCanonicalBytes();
    if (m.has_mask) fm.mask = m.mask.ToCanonicalBytes();
    fm.prefix_len = m.prefix_len;
    entry.matches.push_back(std::move(fm));
  }
  if (actions_.empty()) {
    return InvalidArgumentError("entry for " + table_name_ + " has no action");
  }
  auto build_invocation =
      [&](const PendingAction& pa) -> StatusOr<ActionInvocation> {
    const p4ir::ActionInfo* action = info_.FindActionByName(pa.name);
    if (action == nullptr) {
      return NotFoundError("unknown action: " + pa.name);
    }
    ActionInvocation invocation;
    invocation.action_id = action->id;
    for (const auto& [param_name, value] : pa.args) {
      const p4ir::ActionParamInfo* param = nullptr;
      for (const p4ir::ActionParamInfo& p : action->params) {
        if (p.name == param_name) param = &p;
      }
      if (param == nullptr) {
        return NotFoundError("unknown param '" + param_name + "' of " +
                             pa.name);
      }
      invocation.params.push_back(
          ActionInvocation::Param{param->id, value.ToCanonicalBytes()});
    }
    return invocation;
  };
  if (is_action_set_) {
    entry.action.kind = TableAction::Kind::kActionSet;
    for (const PendingAction& pa : actions_) {
      SWITCHV_ASSIGN_OR_RETURN(ActionInvocation invocation,
                               build_invocation(pa));
      entry.action.action_set.push_back(
          p4rt::WeightedAction{std::move(invocation), pa.weight});
    }
  } else {
    if (actions_.size() != 1) {
      return InvalidArgumentError("multiple direct actions for " +
                                  table_name_);
    }
    entry.action.kind = TableAction::Kind::kDirect;
    SWITCHV_ASSIGN_OR_RETURN(entry.action.direct,
                             build_invocation(actions_[0]));
  }
  return entry;
}

}  // namespace switchv::p4rt
