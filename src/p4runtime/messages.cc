#include "p4runtime/messages.h"

#include <algorithm>

#include "util/strings.h"

namespace switchv::p4rt {

std::string_view UpdateTypeName(UpdateType type) {
  switch (type) {
    case UpdateType::kInsert: return "INSERT";
    case UpdateType::kModify: return "MODIFY";
    case UpdateType::kDelete: return "DELETE";
  }
  return "?";
}

std::string TableEntry::KeyFingerprint() const {
  std::vector<std::string> pieces;
  pieces.reserve(matches.size());
  for (const FieldMatch& m : matches) {
    pieces.push_back(std::to_string(m.field_id) + "=" + BytesToHex(m.value) +
                     "&" + BytesToHex(m.mask) + "/" +
                     std::to_string(m.prefix_len));
  }
  std::sort(pieces.begin(), pieces.end());
  return std::to_string(table_id) + "|" + StrJoin(pieces, ",") + "|p" +
         std::to_string(priority);
}

namespace {

std::string ActionToString(const ActionInvocation& action,
                           const p4ir::P4Info* info) {
  const p4ir::ActionInfo* ai =
      info != nullptr ? info->FindAction(action.action_id) : nullptr;
  std::string out = ai != nullptr ? ai->name
                                  : "action#" + std::to_string(action.action_id);
  out += "(";
  for (std::size_t i = 0; i < action.params.size(); ++i) {
    if (i > 0) out += ", ";
    out += "0x" + BytesToHex(action.params[i].value);
  }
  out += ")";
  return out;
}

}  // namespace

std::string TableEntry::ToString(const p4ir::P4Info* info) const {
  const p4ir::TableInfo* ti =
      info != nullptr ? info->FindTable(table_id) : nullptr;
  std::string out =
      ti != nullptr ? ti->name : "table#" + std::to_string(table_id);
  out += " {";
  for (std::size_t i = 0; i < matches.size(); ++i) {
    const FieldMatch& m = matches[i];
    if (i > 0) out += ", ";
    const p4ir::MatchFieldInfo* fi =
        ti != nullptr ? ti->FindMatchField(m.field_id) : nullptr;
    out += fi != nullptr ? fi->name : "f" + std::to_string(m.field_id);
    out += "=0x" + BytesToHex(m.value);
    if (!m.mask.empty()) out += "&0x" + BytesToHex(m.mask);
    if (m.prefix_len != 0) out += "/" + std::to_string(m.prefix_len);
  }
  out += "}";
  if (priority != 0) out += " prio=" + std::to_string(priority);
  out += " => ";
  if (action.kind == TableAction::Kind::kDirect) {
    out += ActionToString(action.direct, info);
  } else {
    out += "[";
    for (std::size_t i = 0; i < action.action_set.size(); ++i) {
      if (i > 0) out += ", ";
      out += ActionToString(action.action_set[i].action, info) + "*" +
             std::to_string(action.action_set[i].weight);
    }
    out += "]";
  }
  return out;
}

}  // namespace switchv::p4rt
