#include "p4runtime/validator.h"

#include <set>

#include "util/bitstring.h"

namespace switchv::p4rt {

namespace {

// Parses canonical bytes into a BitString of the field's width.
StatusOr<BitString> ParseValue(std::string_view bytes, int width,
                               const std::string& what) {
  auto parsed = BitString::FromBytes(bytes, width);
  if (!parsed.ok()) {
    return Status(parsed.status().code(),
                  what + ": " + parsed.status().message());
  }
  return std::move(parsed).value();
}

Status ValidateActionInvocation(const p4ir::P4Info& info,
                                const p4ir::TableInfo& table,
                                const ActionInvocation& action) {
  const p4ir::ActionInfo* ai = info.FindAction(action.action_id);
  if (ai == nullptr) {
    return NotFoundError("unknown action id " +
                         std::to_string(action.action_id));
  }
  if (!table.HasAction(action.action_id)) {
    return InvalidArgumentError("action " + ai->name +
                                " is not permitted in table " + table.name);
  }
  if (action.params.size() != ai->params.size()) {
    return InvalidArgumentError("action " + ai->name + " expects " +
                                std::to_string(ai->params.size()) +
                                " params, got " +
                                std::to_string(action.params.size()));
  }
  std::set<std::uint32_t> seen;
  for (const ActionInvocation::Param& p : action.params) {
    if (!seen.insert(p.param_id).second) {
      return InvalidArgumentError("duplicate param id in action " + ai->name);
    }
    const p4ir::ActionParamInfo* pi = ai->FindParam(p.param_id);
    if (pi == nullptr) {
      return NotFoundError("unknown param id " + std::to_string(p.param_id) +
                           " for action " + ai->name);
    }
    SWITCHV_RETURN_IF_ERROR(
        ParseValue(p.value, pi->width, "param " + pi->name).status());
  }
  return OkStatus();
}

}  // namespace

Status ValidateEntrySyntax(const p4ir::P4Info& info, const TableEntry& entry) {
  const p4ir::TableInfo* table = info.FindTable(entry.table_id);
  if (table == nullptr) {
    return NotFoundError("unknown table id " + std::to_string(entry.table_id));
  }

  std::set<std::uint32_t> seen_fields;
  for (const FieldMatch& m : entry.matches) {
    if (!seen_fields.insert(m.field_id).second) {
      return InvalidArgumentError("duplicate match field id " +
                                  std::to_string(m.field_id) + " in table " +
                                  table->name);
    }
    const p4ir::MatchFieldInfo* field = table->FindMatchField(m.field_id);
    if (field == nullptr) {
      return NotFoundError("unknown match field id " +
                           std::to_string(m.field_id) + " in table " +
                           table->name);
    }
    SWITCHV_ASSIGN_OR_RETURN(
        BitString value,
        ParseValue(m.value, field->width, "match field " + field->name));
    switch (field->kind) {
      case p4ir::MatchKind::kExact:
        if (!m.mask.empty() || m.prefix_len != 0) {
          return InvalidArgumentError("exact match " + field->name +
                                      " must not carry mask or prefix");
        }
        break;
      case p4ir::MatchKind::kLpm: {
        if (!m.mask.empty()) {
          return InvalidArgumentError("lpm match " + field->name +
                                      " must not carry a mask");
        }
        if (m.prefix_len <= 0 || m.prefix_len > field->width) {
          return InvalidArgumentError(
              "lpm match " + field->name + " has bad prefix length " +
              std::to_string(m.prefix_len));
        }
        const BitString mask =
            BitString::PrefixMask(m.prefix_len, field->width);
        if ((value & ~mask).value() != 0) {
          return InvalidArgumentError("lpm match " + field->name +
                                      " has value bits outside the prefix");
        }
        break;
      }
      case p4ir::MatchKind::kTernary: {
        if (m.prefix_len != 0) {
          return InvalidArgumentError("ternary match " + field->name +
                                      " must not carry a prefix length");
        }
        SWITCHV_ASSIGN_OR_RETURN(
            BitString mask,
            ParseValue(m.mask, field->width, "mask of " + field->name));
        if (mask.IsZero()) {
          return InvalidArgumentError(
              "ternary match " + field->name +
              " with zero mask must be omitted (wildcard)");
        }
        if ((value & ~mask).value() != 0) {
          return InvalidArgumentError("ternary match " + field->name +
                                      " is not canonical: value & ~mask != 0");
        }
        break;
      }
      case p4ir::MatchKind::kOptional: {
        if (!m.mask.empty() || m.prefix_len != 0) {
          return InvalidArgumentError("optional match " + field->name +
                                      " must not carry mask or prefix");
        }
        break;
      }
    }
  }

  // Mandatory keys: exact matches must be present.
  for (const p4ir::MatchFieldInfo& field : table->match_fields) {
    if (field.kind != p4ir::MatchKind::kExact) continue;
    bool present = false;
    for (const FieldMatch& m : entry.matches) {
      if (m.field_id == field.id) present = true;
    }
    if (!present) {
      return InvalidArgumentError("missing mandatory exact match " +
                                  field.name + " in table " + table->name);
    }
  }

  // Priority rules (P4Runtime §9.1.1).
  if (table->requires_priority) {
    if (entry.priority <= 0) {
      return InvalidArgumentError("table " + table->name +
                                  " requires priority > 0");
    }
  } else if (entry.priority != 0) {
    return InvalidArgumentError("table " + table->name +
                                " must not set a priority");
  }

  // Action rules.
  if (table->selector.has_value()) {
    if (entry.action.kind != TableAction::Kind::kActionSet) {
      return InvalidArgumentError(
          "table " + table->name +
          " uses an action selector and requires a one-shot action set");
    }
    const auto& set = entry.action.action_set;
    if (set.empty()) {
      return InvalidArgumentError("empty action set for table " + table->name);
    }
    if (static_cast<int>(set.size()) > table->selector->max_group_size) {
      return ResourceExhaustedError("action set exceeds max group size of " +
                                    table->name);
    }
    int total_weight = 0;
    for (const WeightedAction& wa : set) {
      if (wa.weight <= 0) {
        return InvalidArgumentError(
            "action selector weights must be strictly positive");
      }
      total_weight += wa.weight;
      SWITCHV_RETURN_IF_ERROR(
          ValidateActionInvocation(info, *table, wa.action));
    }
    if (total_weight > table->selector->max_total_weight) {
      return ResourceExhaustedError("action set exceeds max total weight of " +
                                    table->name);
    }
  } else {
    if (entry.action.kind != TableAction::Kind::kDirect) {
      return InvalidArgumentError("table " + table->name +
                                  " requires a single direct action");
    }
    SWITCHV_RETURN_IF_ERROR(
        ValidateActionInvocation(info, *table, entry.action.direct));
  }
  return OkStatus();
}

p4constraints::TableSchema SchemaForTable(const p4ir::TableInfo& table) {
  p4constraints::TableSchema schema;
  for (const p4ir::MatchFieldInfo& field : table.match_fields) {
    p4constraints::KeySchema key;
    key.name = field.name;
    key.width = field.width;
    switch (field.kind) {
      case p4ir::MatchKind::kExact:
        key.kind = p4constraints::KeySchema::Kind::kExact;
        break;
      case p4ir::MatchKind::kLpm:
        key.kind = p4constraints::KeySchema::Kind::kLpm;
        break;
      case p4ir::MatchKind::kTernary:
        key.kind = p4constraints::KeySchema::Kind::kTernary;
        break;
      case p4ir::MatchKind::kOptional:
        key.kind = p4constraints::KeySchema::Kind::kOptional;
        break;
    }
    schema.keys.push_back(std::move(key));
  }
  return schema;
}

StatusOr<p4constraints::EntryValuation> EntryToValuation(
    const p4ir::P4Info& info, const TableEntry& entry) {
  const p4ir::TableInfo* table = info.FindTable(entry.table_id);
  if (table == nullptr) {
    return NotFoundError("unknown table id");
  }
  p4constraints::EntryValuation valuation;
  valuation.priority = entry.priority;
  for (const p4ir::MatchFieldInfo& field : table->match_fields) {
    p4constraints::KeyValuation kv;  // default: absent wildcard
    for (const FieldMatch& m : entry.matches) {
      if (m.field_id != field.id) continue;
      kv.present = true;
      SWITCHV_ASSIGN_OR_RETURN(BitString value,
                               BitString::FromBytes(m.value, field.width));
      kv.value = value.value();
      switch (field.kind) {
        case p4ir::MatchKind::kExact:
          kv.mask = LowBitMask(field.width);
          break;
        case p4ir::MatchKind::kLpm:
          kv.prefix_len = m.prefix_len;
          kv.mask =
              BitString::PrefixMask(m.prefix_len, field.width).value();
          break;
        case p4ir::MatchKind::kTernary: {
          SWITCHV_ASSIGN_OR_RETURN(BitString mask,
                                   BitString::FromBytes(m.mask, field.width));
          kv.mask = mask.value();
          break;
        }
        case p4ir::MatchKind::kOptional:
          kv.mask = LowBitMask(field.width);
          break;
      }
    }
    valuation.keys.emplace(field.name, kv);
  }
  return valuation;
}

StatusOr<bool> IsConstraintCompliant(const p4ir::P4Info& info,
                                     const TableEntry& entry) {
  const p4ir::TableInfo* table = info.FindTable(entry.table_id);
  if (table == nullptr) {
    return NotFoundError("unknown table id");
  }
  if (table->entry_restriction.empty()) return true;
  const p4constraints::TableSchema schema = SchemaForTable(*table);
  SWITCHV_ASSIGN_OR_RETURN(
      p4constraints::CExpr constraint,
      p4constraints::ParseConstraint(table->entry_restriction, schema));
  SWITCHV_ASSIGN_OR_RETURN(p4constraints::EntryValuation valuation,
                           EntryToValuation(info, entry));
  return p4constraints::EvalConstraint(constraint, valuation);
}

Status ValidateEntry(const p4ir::P4Info& info, const TableEntry& entry) {
  SWITCHV_RETURN_IF_ERROR(ValidateEntrySyntax(info, entry));
  SWITCHV_ASSIGN_OR_RETURN(bool compliant, IsConstraintCompliant(info, entry));
  if (!compliant) {
    const p4ir::TableInfo* table = info.FindTable(entry.table_id);
    return InvalidArgumentError("entry violates @entry_restriction of " +
                                table->name + ": " +
                                table->entry_restriction);
  }
  return OkStatus();
}

}  // namespace switchv::p4rt
