#include "p4runtime/validator.h"

#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <utility>

#include "util/bitstring.h"

namespace switchv::p4rt {

namespace {

Status ValidateActionInvocation(const p4ir::P4Info& info,
                                const p4ir::TableInfo& table,
                                const ActionInvocation& action) {
  const p4ir::ActionInfo* ai = info.FindAction(action.action_id);
  if (ai == nullptr) {
    return NotFoundError("unknown action id " +
                         std::to_string(action.action_id));
  }
  if (!table.HasAction(action.action_id)) {
    return InvalidArgumentError("action " + ai->name +
                                " is not permitted in table " + table.name);
  }
  if (action.params.size() != ai->params.size()) {
    return InvalidArgumentError("action " + ai->name + " expects " +
                                std::to_string(ai->params.size()) +
                                " params, got " +
                                std::to_string(action.params.size()));
  }
  for (std::size_t i = 0; i < action.params.size(); ++i) {
    const ActionInvocation::Param& p = action.params[i];
    // Params are few; a linear scan beats a heap-allocated set here (this
    // runs on every action of every judged and written update).
    for (std::size_t j = 0; j < i; ++j) {
      if (action.params[j].param_id == p.param_id) {
        return InvalidArgumentError("duplicate param id in action " +
                                    ai->name);
      }
    }
    const p4ir::ActionParamInfo* pi = ai->FindParam(p.param_id);
    if (pi == nullptr) {
      return NotFoundError("unknown param id " + std::to_string(p.param_id) +
                           " for action " + ai->name);
    }
    auto parsed = BitString::FromBytes(p.value, pi->width);
    if (!parsed.ok()) {
      return Status(parsed.status().code(),
                    "param " + pi->name + ": " + parsed.status().message());
    }
  }
  return OkStatus();
}

}  // namespace

Status ValidateEntrySyntax(const p4ir::P4Info& info, const TableEntry& entry) {
  const p4ir::TableInfo* table = info.FindTable(entry.table_id);
  if (table == nullptr) {
    return NotFoundError("unknown table id " + std::to_string(entry.table_id));
  }

  for (std::size_t i = 0; i < entry.matches.size(); ++i) {
    const FieldMatch& m = entry.matches[i];
    // Matches are few; a linear scan beats a heap-allocated set here (this
    // runs on every judged and written update).
    for (std::size_t j = 0; j < i; ++j) {
      if (entry.matches[j].field_id == m.field_id) {
        return InvalidArgumentError("duplicate match field id " +
                                    std::to_string(m.field_id) +
                                    " in table " + table->name);
      }
    }
    const p4ir::MatchFieldInfo* field = table->FindMatchField(m.field_id);
    if (field == nullptr) {
      return NotFoundError("unknown match field id " +
                           std::to_string(m.field_id) + " in table " +
                           table->name);
    }
    auto parsed_value = BitString::FromBytes(m.value, field->width);
    if (!parsed_value.ok()) {
      // Build the contextual message only on failure; the old eager
      // "match field " + name argument allocated on every success too.
      return Status(parsed_value.status().code(), "match field " +
                                                      field->name + ": " +
                                                      parsed_value.status()
                                                          .message());
    }
    const BitString value = std::move(parsed_value).value();
    switch (field->kind) {
      case p4ir::MatchKind::kExact:
        if (!m.mask.empty() || m.prefix_len != 0) {
          return InvalidArgumentError("exact match " + field->name +
                                      " must not carry mask or prefix");
        }
        break;
      case p4ir::MatchKind::kLpm: {
        if (!m.mask.empty()) {
          return InvalidArgumentError("lpm match " + field->name +
                                      " must not carry a mask");
        }
        if (m.prefix_len <= 0 || m.prefix_len > field->width) {
          return InvalidArgumentError(
              "lpm match " + field->name + " has bad prefix length " +
              std::to_string(m.prefix_len));
        }
        const BitString mask =
            BitString::PrefixMask(m.prefix_len, field->width);
        if ((value & ~mask).value() != 0) {
          return InvalidArgumentError("lpm match " + field->name +
                                      " has value bits outside the prefix");
        }
        break;
      }
      case p4ir::MatchKind::kTernary: {
        if (m.prefix_len != 0) {
          return InvalidArgumentError("ternary match " + field->name +
                                      " must not carry a prefix length");
        }
        auto parsed_mask = BitString::FromBytes(m.mask, field->width);
        if (!parsed_mask.ok()) {
          return Status(parsed_mask.status().code(),
                        "mask of " + field->name + ": " +
                            parsed_mask.status().message());
        }
        const BitString mask = std::move(parsed_mask).value();
        if (mask.IsZero()) {
          return InvalidArgumentError(
              "ternary match " + field->name +
              " with zero mask must be omitted (wildcard)");
        }
        if ((value & ~mask).value() != 0) {
          return InvalidArgumentError("ternary match " + field->name +
                                      " is not canonical: value & ~mask != 0");
        }
        break;
      }
      case p4ir::MatchKind::kOptional: {
        if (!m.mask.empty() || m.prefix_len != 0) {
          return InvalidArgumentError("optional match " + field->name +
                                      " must not carry mask or prefix");
        }
        break;
      }
    }
  }

  // Mandatory keys: exact matches must be present.
  for (const p4ir::MatchFieldInfo& field : table->match_fields) {
    if (field.kind != p4ir::MatchKind::kExact) continue;
    bool present = false;
    for (const FieldMatch& m : entry.matches) {
      if (m.field_id == field.id) present = true;
    }
    if (!present) {
      return InvalidArgumentError("missing mandatory exact match " +
                                  field.name + " in table " + table->name);
    }
  }

  // Priority rules (P4Runtime §9.1.1).
  if (table->requires_priority) {
    if (entry.priority <= 0) {
      return InvalidArgumentError("table " + table->name +
                                  " requires priority > 0");
    }
  } else if (entry.priority != 0) {
    return InvalidArgumentError("table " + table->name +
                                " must not set a priority");
  }

  // Action rules.
  if (table->selector.has_value()) {
    if (entry.action.kind != TableAction::Kind::kActionSet) {
      return InvalidArgumentError(
          "table " + table->name +
          " uses an action selector and requires a one-shot action set");
    }
    const auto& set = entry.action.action_set;
    if (set.empty()) {
      return InvalidArgumentError("empty action set for table " + table->name);
    }
    if (static_cast<int>(set.size()) > table->selector->max_group_size) {
      return ResourceExhaustedError("action set exceeds max group size of " +
                                    table->name);
    }
    int total_weight = 0;
    for (const WeightedAction& wa : set) {
      if (wa.weight <= 0) {
        return InvalidArgumentError(
            "action selector weights must be strictly positive");
      }
      total_weight += wa.weight;
      SWITCHV_RETURN_IF_ERROR(
          ValidateActionInvocation(info, *table, wa.action));
    }
    if (total_weight > table->selector->max_total_weight) {
      return ResourceExhaustedError("action set exceeds max total weight of " +
                                    table->name);
    }
  } else {
    if (entry.action.kind != TableAction::Kind::kDirect) {
      return InvalidArgumentError("table " + table->name +
                                  " requires a single direct action");
    }
    SWITCHV_RETURN_IF_ERROR(
        ValidateActionInvocation(info, *table, entry.action.direct));
  }
  return OkStatus();
}

p4constraints::TableSchema SchemaForTable(const p4ir::TableInfo& table) {
  p4constraints::TableSchema schema;
  for (const p4ir::MatchFieldInfo& field : table.match_fields) {
    p4constraints::KeySchema key;
    key.name = field.name;
    key.width = field.width;
    switch (field.kind) {
      case p4ir::MatchKind::kExact:
        key.kind = p4constraints::KeySchema::Kind::kExact;
        break;
      case p4ir::MatchKind::kLpm:
        key.kind = p4constraints::KeySchema::Kind::kLpm;
        break;
      case p4ir::MatchKind::kTernary:
        key.kind = p4constraints::KeySchema::Kind::kTernary;
        break;
      case p4ir::MatchKind::kOptional:
        key.kind = p4constraints::KeySchema::Kind::kOptional;
        break;
    }
    schema.keys.push_back(std::move(key));
  }
  return schema;
}

StatusOr<p4constraints::EntryValuation> EntryToValuation(
    const p4ir::P4Info& info, const TableEntry& entry) {
  const p4ir::TableInfo* table = info.FindTable(entry.table_id);
  if (table == nullptr) {
    return NotFoundError("unknown table id");
  }
  p4constraints::EntryValuation valuation;
  valuation.priority = entry.priority;
  for (const p4ir::MatchFieldInfo& field : table->match_fields) {
    p4constraints::KeyValuation kv;  // default: absent wildcard
    for (const FieldMatch& m : entry.matches) {
      if (m.field_id != field.id) continue;
      kv.present = true;
      SWITCHV_ASSIGN_OR_RETURN(BitString value,
                               BitString::FromBytes(m.value, field.width));
      kv.value = value.value();
      switch (field.kind) {
        case p4ir::MatchKind::kExact:
          kv.mask = LowBitMask(field.width);
          break;
        case p4ir::MatchKind::kLpm:
          kv.prefix_len = m.prefix_len;
          kv.mask =
              BitString::PrefixMask(m.prefix_len, field.width).value();
          break;
        case p4ir::MatchKind::kTernary: {
          SWITCHV_ASSIGN_OR_RETURN(BitString mask,
                                   BitString::FromBytes(m.mask, field.width));
          kv.mask = mask.value();
          break;
        }
        case p4ir::MatchKind::kOptional:
          kv.mask = LowBitMask(field.width);
          break;
      }
    }
    valuation.keys.emplace(field.name, kv);
  }
  return valuation;
}

StatusOr<bool> IsConstraintCompliant(const p4ir::P4Info& info,
                                     const TableEntry& entry) {
  const p4ir::TableInfo* table = info.FindTable(entry.table_id);
  if (table == nullptr) {
    return NotFoundError("unknown table id");
  }
  if (table->entry_restriction.empty()) return true;
  // Restrictions are fixed per (program, table), but this is the hottest
  // call in both the SUT write path and the oracle: memoize the parsed AST
  // keyed by (P4Info fingerprint, table id). shared_ptr hands callers a
  // stable AST even if a concurrent pipeline push repopulates the memo.
  static std::mutex* mu = new std::mutex;
  static auto* parsed_memo =
      new std::map<std::pair<std::uint64_t, std::uint32_t>,
                   std::shared_ptr<const p4constraints::CExpr>>;
  const std::pair<std::uint64_t, std::uint32_t> memo_key{info.fingerprint(),
                                                         entry.table_id};
  std::shared_ptr<const p4constraints::CExpr> constraint;
  {
    std::lock_guard<std::mutex> lock(*mu);
    const auto it = parsed_memo->find(memo_key);
    if (it != parsed_memo->end()) constraint = it->second;
  }
  if (constraint == nullptr) {
    const p4constraints::TableSchema schema = SchemaForTable(*table);
    SWITCHV_ASSIGN_OR_RETURN(
        p4constraints::CExpr fresh,
        p4constraints::ParseConstraint(table->entry_restriction, schema));
    constraint =
        std::make_shared<const p4constraints::CExpr>(std::move(fresh));
    std::lock_guard<std::mutex> lock(*mu);
    parsed_memo->emplace(memo_key, constraint);
  }
  SWITCHV_ASSIGN_OR_RETURN(p4constraints::EntryValuation valuation,
                           EntryToValuation(info, entry));
  return p4constraints::EvalConstraint(*constraint, valuation);
}

Status ValidateEntry(const p4ir::P4Info& info, const TableEntry& entry) {
  SWITCHV_RETURN_IF_ERROR(ValidateEntrySyntax(info, entry));
  SWITCHV_ASSIGN_OR_RETURN(bool compliant, IsConstraintCompliant(info, entry));
  if (!compliant) {
    const p4ir::TableInfo* table = info.FindTable(entry.table_id);
    return InvalidArgumentError("entry violates @entry_restriction of " +
                                table->name + ": " +
                                table->entry_restriction);
  }
  return OkStatus();
}

}  // namespace switchv::p4rt
