// Ergonomic construction of wire-format table entries from names.
//
// Resolves table/field/action/param names against P4Info, encodes values in
// canonical bytes, and assembles a TableEntry. Used by the production-like
// entry generators, the trivial test suite, and unit tests. (The fuzzer
// builds entries directly so it can produce deliberately malformed ones.)
#ifndef SWITCHV_P4RUNTIME_ENTRY_BUILDER_H_
#define SWITCHV_P4RUNTIME_ENTRY_BUILDER_H_

#include <string>
#include <vector>

#include "p4runtime/messages.h"

namespace switchv::p4rt {

class EntryBuilder {
 public:
  // Starts an entry for `table_name`. Errors are deferred to Build().
  EntryBuilder(const p4ir::P4Info& info, std::string table_name);

  EntryBuilder& Exact(std::string key, BitString value);
  EntryBuilder& Lpm(std::string key, BitString value, int prefix_len);
  EntryBuilder& Ternary(std::string key, BitString value, BitString mask);
  EntryBuilder& Optional(std::string key, BitString value);
  EntryBuilder& Priority(int priority);

  // Sets a direct action; `args` are (param name, value) pairs.
  EntryBuilder& Action(
      std::string name,
      std::vector<std::pair<std::string, BitString>> args = {});

  // Appends a one-shot action-set member with the given weight.
  EntryBuilder& WeightedAction(
      std::string name, int weight,
      std::vector<std::pair<std::string, BitString>> args = {});

  // Resolves names and returns the entry; fails on unknown names.
  StatusOr<TableEntry> Build() const;

 private:
  struct PendingMatch {
    std::string key;
    BitString value;
    BitString mask;
    bool has_mask = false;
    int prefix_len = 0;
  };
  struct PendingAction {
    std::string name;
    std::vector<std::pair<std::string, BitString>> args;
    int weight = 0;
  };

  const p4ir::P4Info& info_;
  std::string table_name_;
  std::vector<PendingMatch> matches_;
  std::vector<PendingAction> actions_;
  bool is_action_set_ = false;
  int priority_ = 0;
};

}  // namespace switchv::p4rt

#endif  // SWITCHV_P4RUNTIME_ENTRY_BUILDER_H_
