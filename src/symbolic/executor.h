// p4-symbolic: symbolic execution of P4 models for test-packet generation
// (paper §5, Figure 6).
//
// Executes the program once, symbolically, over the *installed table
// entries*: every control-flow construct — branch arms, each table entry's
// match, each table's miss/default — is mapped to a Z3 boolean guard
// ("trace" T), and every header/metadata field to a Z3 bitvector expression
// (symbolic state S -> outputs Y over inputs X). Side effects are isolated
// with guarded assignments (Dijkstra-style guarded commands) instead of
// per-trace forking, so 3 consecutive tables with 100 entries each cost
// 300 guarded updates, not 100^3 paths.
//
// Hashing is a free operation: each hash draw (including WCMP member
// selection) is a fresh unconstrained variable (§5 "Hashing").
//
// Decidability: the generated formulas are quantifier-free over bitvectors
// and equality (QF_BV), which is decidable; pipelines are single-pass with
// no loops (§5 "Decidability").
#ifndef SWITCHV_SYMBOLIC_EXECUTOR_H_
#define SWITCHV_SYMBOLIC_EXECUTOR_H_

#include <z3++.h>

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "p4ir/p4info.h"
#include "p4ir/program.h"
#include "p4runtime/decoded_entry.h"
#include "p4runtime/messages.h"
#include "packet/packet.h"

namespace switchv::symbolic {

// One coverage target: a named construct and the condition under which it
// executes.
struct TraceTarget {
  enum class Kind { kTableEntry, kTableMiss, kBranchThen, kBranchElse };
  std::string id;    // e.g. "ipv4_tbl.entry[3]", "ipv4_tbl.miss", "if[2].then"
  Kind kind;
  z3::expr guard;
};

// A concrete test packet produced from a satisfying assignment.
struct TestPacket {
  std::string bytes;
  std::uint16_t ingress_port = 0;
  std::string target_id;  // the coverage target this packet exercises
};

class SymbolicExecutor {
 public:
  // `program` must be validated and outlive the executor.
  SymbolicExecutor(const p4ir::Program& program, packet::ParserSpec parser);

  // Symbolically executes the pipeline against the given entries,
  // populating the trace map and output state. Must be called once before
  // any query.
  Status Execute(const std::vector<p4rt::TableEntry>& entries);

  // The complete trace map T.
  const std::vector<TraceTarget>& targets() const { return targets_; }

  // X: symbolic input field / validity; Y: symbolic output expression.
  // These let test engineers pose custom coverage assertions over X, Y and
  // T (§5 "Coverage Constraints"). Field names are the program's.
  z3::expr InputField(const std::string& field) const;
  z3::expr InputValid(const std::string& header) const;
  z3::expr OutputField(const std::string& field) const;
  z3::expr OutputValid(const std::string& header) const;
  // Guard of a target by id; fails for unknown ids.
  StatusOr<z3::expr> TargetGuard(const std::string& id) const;

  // Solves for a packet satisfying `goal` (conjoined with the parser
  // well-formedness constraints). NOT_FOUND if unsatisfiable.
  StatusOr<TestPacket> SolvePacket(const z3::expr& goal,
                                   const std::string& target_id);

  z3::context& ctx() { return *ctx_; }

  // Statistics.
  int solver_queries() const { return solver_queries_; }

 private:
  struct SymbolicState {
    std::map<std::string, z3::expr> fields;     // field -> bitvec
    std::map<std::string, z3::expr> validity;   // header -> bool
  };

  z3::expr EvalExpr(const p4ir::Expr& expr, const SymbolicState& state,
                    const std::map<std::string, z3::expr>* args);
  void GuardedAssign(SymbolicState& state, const std::string& field,
                     const z3::expr& guard, const z3::expr& value);
  Status ApplyAction(const p4ir::Action& action,
                     const std::vector<z3::expr>& arg_values,
                     const z3::expr& guard, SymbolicState& state);
  Status ApplyTable(const p4ir::Table& table, const z3::expr& guard,
                    SymbolicState& state);
  Status ExecControl(const std::vector<p4ir::ControlNode>& nodes,
                     const z3::expr& guard, SymbolicState& state);
  z3::expr FreshHashVar(int width);

  // Parser-derived well-formedness of input packets (validity implications
  // and field zeroing for invalid headers are folded into initial state).
  z3::expr ParserConstraints();

  const p4ir::Program& program_;
  p4ir::P4Info p4info_;
  packet::ParserSpec parser_;
  std::unique_ptr<z3::context> ctx_;
  std::unique_ptr<z3::solver> solver_;

  std::map<std::string, z3::expr> input_fields_;   // X (header fields)
  std::map<std::string, z3::expr> input_valid_;    // X (validities)
  std::optional<z3::expr> ingress_port_;           // X (port)
  std::optional<SymbolicState> output_;            // Y
  std::vector<TraceTarget> targets_;               // T
  std::map<std::string, std::vector<p4rt::DecodedEntry>> entries_;
  int hash_vars_ = 0;
  int branch_counter_ = 0;
  int solver_queries_ = 0;
  bool executed_ = false;
};

}  // namespace switchv::symbolic

#endif  // SWITCHV_SYMBOLIC_EXECUTOR_H_
