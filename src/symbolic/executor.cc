#include "symbolic/executor.h"

#include <algorithm>
#include <numeric>

#include "p4runtime/decoded_entry.h"

namespace switchv::symbolic {

namespace {

// Decimal rendering of a uint128 (z3 parses decimal strings for wide
// bitvector constants).
std::string U128ToDecimal(uint128 v) {
  if (v == 0) return "0";
  std::string out;
  while (v != 0) {
    out.push_back(static_cast<char>('0' + static_cast<unsigned>(v % 10)));
    v /= 10;
  }
  return std::string(out.rbegin(), out.rend());
}

uint128 DecimalToU128(const std::string& text) {
  uint128 value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') break;
    value = value * 10 + static_cast<unsigned>(c - '0');
  }
  return value;
}

z3::expr BvConst(z3::context& ctx, const BitString& value) {
  return ctx.bv_val(U128ToDecimal(value.value()).c_str(),
                    static_cast<unsigned>(value.width()));
}

uint128 NumeralValue(const z3::expr& value) {
  return DecimalToU128(
      std::string(Z3_get_numeral_string(value.ctx(), value)));
}

z3::expr ToBool(const z3::expr& bv) {
  if (bv.is_bool()) return bv;
  return bv != 0;
}

z3::expr BoolToBv1(z3::context& ctx, const z3::expr& b) {
  return z3::ite(b, ctx.bv_val(1, 1), ctx.bv_val(0, 1));
}

// The port range test packets may arrive on (front-panel ports).
constexpr unsigned kMaxFrontPanelPort = 32;

}  // namespace

SymbolicExecutor::SymbolicExecutor(const p4ir::Program& program,
                                   packet::ParserSpec parser)
    : program_(program),
      p4info_(p4ir::P4Info::FromProgram(program)),
      parser_(std::move(parser)),
      ctx_(std::make_unique<z3::context>()),
      solver_(std::make_unique<z3::solver>(*ctx_)) {}

z3::expr SymbolicExecutor::FreshHashVar(int width) {
  return ctx_->bv_const(("$hash_" + std::to_string(hash_vars_++)).c_str(),
                        static_cast<unsigned>(width));
}

z3::expr SymbolicExecutor::EvalExpr(
    const p4ir::Expr& expr, const SymbolicState& state,
    const std::map<std::string, z3::expr>* args) {
  switch (expr.kind()) {
    case p4ir::Expr::Kind::kConstant:
      return BvConst(*ctx_, expr.constant());
    case p4ir::Expr::Kind::kField:
      return state.fields.at(expr.name());
    case p4ir::Expr::Kind::kParam:
      return args->at(expr.name());
    case p4ir::Expr::Kind::kValid:
      return BoolToBv1(*ctx_, state.validity.at(expr.name()));
    case p4ir::Expr::Kind::kUnary: {
      const z3::expr operand = EvalExpr(expr.children()[0], state, args);
      if (expr.unary_op() == p4ir::UnaryOp::kLogicalNot) {
        return BoolToBv1(*ctx_, !ToBool(operand));
      }
      return ~operand;
    }
    case p4ir::Expr::Kind::kBinary: {
      const z3::expr a = EvalExpr(expr.children()[0], state, args);
      const z3::expr b = EvalExpr(expr.children()[1], state, args);
      using Op = p4ir::BinaryOp;
      switch (expr.binary_op()) {
        case Op::kEq: return BoolToBv1(*ctx_, a == b);
        case Op::kNe: return BoolToBv1(*ctx_, a != b);
        case Op::kLt: return BoolToBv1(*ctx_, z3::ult(a, b));
        case Op::kLe: return BoolToBv1(*ctx_, z3::ule(a, b));
        case Op::kGt: return BoolToBv1(*ctx_, z3::ugt(a, b));
        case Op::kGe: return BoolToBv1(*ctx_, z3::uge(a, b));
        case Op::kAnd: return BoolToBv1(*ctx_, ToBool(a) && ToBool(b));
        case Op::kOr: return BoolToBv1(*ctx_, ToBool(a) || ToBool(b));
        case Op::kBitAnd: return a & b;
        case Op::kBitOr: return a | b;
        case Op::kBitXor: return a ^ b;
        case Op::kAdd: return a + b;
        case Op::kSub: return a - b;
      }
      break;
    }
  }
  return ctx_->bv_val(0, 1);  // unreachable for validated programs
}

void SymbolicExecutor::GuardedAssign(SymbolicState& state,
                                     const std::string& field,
                                     const z3::expr& guard,
                                     const z3::expr& value) {
  auto it = state.fields.find(field);
  it->second = z3::ite(guard, value, it->second).simplify();
}

Status SymbolicExecutor::ApplyAction(const p4ir::Action& action,
                                     const std::vector<z3::expr>& arg_values,
                                     const z3::expr& guard,
                                     SymbolicState& state) {
  std::map<std::string, z3::expr> args;
  for (std::size_t i = 0; i < action.params.size(); ++i) {
    args.emplace(action.params[i].name, arg_values[i]);
  }
  for (const p4ir::Statement& stmt : action.body) {
    switch (stmt.kind) {
      case p4ir::Statement::Kind::kAssign: {
        const z3::expr value = EvalExpr(*stmt.value, state, &args);
        GuardedAssign(state, stmt.target, guard, value);
        break;
      }
      case p4ir::Statement::Kind::kSetValid: {
        auto it = state.validity.find(stmt.target);
        it->second =
            z3::ite(guard, ctx_->bool_val(stmt.valid), it->second).simplify();
        break;
      }
      case p4ir::Statement::Kind::kHash: {
        // Free operation: the result can be anything (§5 "Hashing").
        const int width = program_.FieldWidth(stmt.target);
        GuardedAssign(state, stmt.target, guard, FreshHashVar(width));
        break;
      }
    }
  }
  return OkStatus();
}

Status SymbolicExecutor::ApplyTable(const p4ir::Table& table,
                                    const z3::expr& guard,
                                    SymbolicState& state) {
  static const std::vector<p4rt::DecodedEntry> kEmpty;
  const std::vector<p4rt::DecodedEntry>* installed = &kEmpty;
  if (auto it = entries_.find(table.name); it != entries_.end()) {
    installed = &it->second;
  }

  // Precedence order: descending priority, or descending prefix length
  // (paper §5's worked example iterates entries by priority and negates
  // higher-priority matches).
  std::vector<std::size_t> order(installed->size());
  std::iota(order.begin(), order.end(), 0);
  const bool by_priority = table.RequiresPriority();
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const p4rt::DecodedEntry& ea = (*installed)[a];
    const p4rt::DecodedEntry& eb = (*installed)[b];
    if (by_priority && ea.priority != eb.priority) {
      return ea.priority > eb.priority;
    }
    int pa = 0;
    int pb = 0;
    for (const p4rt::DecodedMatch& m : ea.matches) pa += m.prefix_len;
    for (const p4rt::DecodedMatch& m : eb.matches) pb += m.prefix_len;
    if (pa != pb) return pa > pb;
    return a < b;
  });

  z3::expr any_match = ctx_->bool_val(false);
  for (std::size_t idx : order) {
    const p4rt::DecodedEntry& entry = (*installed)[idx];
    z3::expr cond = ctx_->bool_val(true);
    for (std::size_t k = 0; k < table.keys.size(); ++k) {
      const p4rt::DecodedMatch& m = entry.matches[k];
      if (!m.present) continue;  // wildcard
      const z3::expr field = state.fields.at(table.keys[k].field);
      const z3::expr value = BvConst(*ctx_, m.value);
      const z3::expr mask = BvConst(*ctx_, m.mask);
      cond = cond && ((field & mask) == (value & mask));
    }
    const z3::expr match = (guard && cond && !any_match).simplify();
    any_match = (any_match || cond).simplify();
    targets_.push_back(TraceTarget{
        table.name + ".entry[" + std::to_string(idx) + "]",
        TraceTarget::Kind::kTableEntry, match});

    if (entry.is_action_set) {
      // One-shot selector: member choice is hash-driven and thus free.
      const int total = entry.TotalWeight();
      const z3::expr selector = FreshHashVar(32);
      const z3::expr draw =
          z3::urem(selector, ctx_->bv_val(static_cast<unsigned>(total), 32));
      unsigned cumulative = 0;
      for (const p4rt::DecodedAction& member : entry.actions) {
        const z3::expr in_range =
            z3::uge(draw, ctx_->bv_val(cumulative, 32)) &&
            z3::ult(draw, ctx_->bv_val(
                              cumulative +
                                  static_cast<unsigned>(member.weight),
                              32));
        const p4ir::Action* action = program_.FindAction(member.name);
        std::vector<z3::expr> args;
        for (const BitString& arg : member.args) {
          args.push_back(BvConst(*ctx_, arg));
        }
        SWITCHV_RETURN_IF_ERROR(
            ApplyAction(*action, args, match && in_range, state));
        cumulative += static_cast<unsigned>(member.weight);
      }
    } else {
      const p4rt::DecodedAction& invocation = entry.actions[0];
      const p4ir::Action* action = program_.FindAction(invocation.name);
      std::vector<z3::expr> args;
      for (const BitString& arg : invocation.args) {
        args.push_back(BvConst(*ctx_, arg));
      }
      SWITCHV_RETURN_IF_ERROR(ApplyAction(*action, args, match, state));
    }
  }

  // Miss: the default action runs.
  const z3::expr miss = (guard && !any_match).simplify();
  targets_.push_back(TraceTarget{table.name + ".miss",
                                 TraceTarget::Kind::kTableMiss, miss});
  const p4ir::Action* default_action =
      program_.FindAction(table.default_action);
  std::vector<z3::expr> args;
  for (const BitString& arg : table.default_action_args) {
    args.push_back(BvConst(*ctx_, arg));
  }
  return ApplyAction(*default_action, args, miss, state);
}

Status SymbolicExecutor::ExecControl(
    const std::vector<p4ir::ControlNode>& nodes, const z3::expr& guard,
    SymbolicState& state) {
  for (const p4ir::ControlNode& node : nodes) {
    switch (node.kind) {
      case p4ir::ControlNode::Kind::kApplyTable: {
        const p4ir::Table* table = program_.FindTable(node.table);
        SWITCHV_RETURN_IF_ERROR(ApplyTable(*table, guard, state));
        break;
      }
      case p4ir::ControlNode::Kind::kApplyAction: {
        const p4ir::Action* action = program_.FindAction(node.action);
        std::vector<z3::expr> args;
        for (const BitString& arg : node.action_args) {
          args.push_back(BvConst(*ctx_, arg));
        }
        SWITCHV_RETURN_IF_ERROR(ApplyAction(*action, args, guard, state));
        break;
      }
      case p4ir::ControlNode::Kind::kIf: {
        const int id = branch_counter_++;
        const z3::expr cond =
            ToBool(EvalExpr(*node.condition, state, nullptr));
        const z3::expr then_guard = (guard && cond).simplify();
        const z3::expr else_guard = (guard && !cond).simplify();
        targets_.push_back(TraceTarget{
            "if[" + std::to_string(id) + "].then",
            TraceTarget::Kind::kBranchThen, then_guard});
        targets_.push_back(TraceTarget{
            "if[" + std::to_string(id) + "].else",
            TraceTarget::Kind::kBranchElse, else_guard});
        SWITCHV_RETURN_IF_ERROR(
            ExecControl(node.then_branch, then_guard, state));
        SWITCHV_RETURN_IF_ERROR(
            ExecControl(node.else_branch, else_guard, state));
        break;
      }
    }
  }
  return OkStatus();
}

z3::expr SymbolicExecutor::ParserConstraints() {
  z3::expr constraints = ctx_->bool_val(true);
  for (const p4ir::HeaderDef& header : program_.headers) {
    if (header.name == parser_.start_header) {
      constraints = constraints && input_valid_.at(header.name);
      continue;
    }
    // valid(h) -> some transition into h fired.
    z3::expr reachable = ctx_->bool_val(false);
    for (const packet::ParseTransition& t : parser_.transitions) {
      if (t.next_header != header.name) continue;
      const std::size_t dot = t.select_field.find('.');
      const std::string owner = t.select_field.substr(0, dot);
      auto owner_valid = input_valid_.find(owner);
      auto select = input_fields_.find(t.select_field);
      if (owner_valid == input_valid_.end() ||
          select == input_fields_.end()) {
        continue;
      }
      const int width = program_.FieldWidth(t.select_field);
      reachable = reachable ||
                  (owner_valid->second &&
                   select->second ==
                       BvConst(*ctx_, BitString::FromUint(t.value, width)));
    }
    constraints = constraints &&
                  z3::implies(input_valid_.at(header.name), reachable);
  }
  // Test packets arrive on front-panel ports.
  constraints = constraints &&
                z3::uge(*ingress_port_, ctx_->bv_val(1u, p4ir::kPortWidth)) &&
                z3::ule(*ingress_port_,
                        ctx_->bv_val(kMaxFrontPanelPort, p4ir::kPortWidth));
  return constraints;
}

Status SymbolicExecutor::Execute(
    const std::vector<p4rt::TableEntry>& entries) {
  if (executed_) {
    return FailedPreconditionError("Execute may only be called once");
  }
  executed_ = true;

  entries_.clear();
  for (const p4rt::TableEntry& entry : entries) {
    SWITCHV_ASSIGN_OR_RETURN(p4rt::DecodedEntry decoded,
                             p4rt::DecodeEntry(p4info_, entry));
    entries_[decoded.table_name].push_back(std::move(decoded));
  }

  SymbolicState state{{}, {}};
  // Input variables X: one bitvector per header field, one boolean per
  // header validity. Fields of invalid headers read as zero, exactly as in
  // the reference interpreter's parser.
  for (const p4ir::HeaderDef& header : program_.headers) {
    const z3::expr valid =
        ctx_->bool_const(("$valid_" + header.name).c_str());
    input_valid_.emplace(header.name, valid);
    state.validity.emplace(header.name, valid);
    for (const p4ir::FieldDef& field : header.fields) {
      const z3::expr x = ctx_->bv_const(
          field.name.c_str(), static_cast<unsigned>(field.width));
      input_fields_.emplace(field.name, x);
      state.fields.emplace(
          field.name,
          z3::ite(valid, x,
                  ctx_->bv_val(0, static_cast<unsigned>(field.width))));
    }
  }
  // Metadata: zero-initialized, except the ingress port (symbolic input).
  for (const p4ir::FieldDef& field : program_.metadata) {
    if (field.name == p4ir::kIngressPortField) {
      ingress_port_ = ctx_->bv_const(
          field.name.c_str(), static_cast<unsigned>(field.width));
      state.fields.emplace(field.name, *ingress_port_);
    } else {
      state.fields.emplace(
          field.name, ctx_->bv_val(0, static_cast<unsigned>(field.width)));
    }
  }

  solver_->add(ParserConstraints());

  const z3::expr top = ctx_->bool_val(true);
  SWITCHV_RETURN_IF_ERROR(ExecControl(program_.ingress, top, state));
  // The egress pipeline only runs for packets that were not dropped.
  const z3::expr not_dropped =
      !ToBool(state.fields.at(p4ir::kDropField));
  SWITCHV_RETURN_IF_ERROR(ExecControl(program_.egress, not_dropped, state));
  output_ = std::move(state);
  return OkStatus();
}

z3::expr SymbolicExecutor::InputField(const std::string& field) const {
  return input_fields_.at(field);
}

z3::expr SymbolicExecutor::InputValid(const std::string& header) const {
  return input_valid_.at(header);
}

z3::expr SymbolicExecutor::OutputField(const std::string& field) const {
  return output_->fields.at(field);
}

z3::expr SymbolicExecutor::OutputValid(const std::string& header) const {
  return output_->validity.at(header);
}

StatusOr<z3::expr> SymbolicExecutor::TargetGuard(
    const std::string& id) const {
  for (const TraceTarget& target : targets_) {
    if (target.id == id) return target.guard;
  }
  return NotFoundError("no such trace target: " + id);
}

StatusOr<TestPacket> SymbolicExecutor::SolvePacket(
    const z3::expr& goal, const std::string& target_id) {
  ++solver_queries_;
  solver_->push();
  solver_->add(goal);
  const z3::check_result result = solver_->check();
  if (result != z3::sat) {
    solver_->pop();
    return NotFoundError("goal is unsatisfiable: " + target_id);
  }
  const z3::model model = solver_->get_model();

  packet::ParsedPacket parsed;
  for (const p4ir::FieldDef& field : program_.AllFields()) {
    parsed.fields.emplace(field.name, BitString::FromUint(0, field.width));
  }
  for (const p4ir::HeaderDef& header : program_.headers) {
    const z3::expr valid =
        model.eval(input_valid_.at(header.name), /*model_completion=*/true);
    if (!valid.is_true()) continue;
    parsed.valid_headers.insert(header.name);
    for (const p4ir::FieldDef& field : header.fields) {
      const z3::expr value =
          model.eval(input_fields_.at(field.name), true);
      parsed.fields[field.name] =
          BitString::FromUint(NumeralValue(value), field.width);
    }
  }
  TestPacket packet;
  packet.bytes = packet::Deparse(program_, parsed);
  const z3::expr port = model.eval(*ingress_port_, true);
  packet.ingress_port = static_cast<std::uint16_t>(NumeralValue(port));
  packet.target_id = target_id;
  solver_->pop();
  return packet;
}

}  // namespace switchv::symbolic
