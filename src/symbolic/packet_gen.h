// Test-packet generation with coverage goals and caching (paper §5, §6.3).
//
// Drives the symbolic executor over the chosen coverage metric and solves
// one SMT query per uncovered target. Generation is by far the slowest
// stage of SwitchV (it dominates Table 3), so results are cached keyed on a
// fingerprint of (program, installed entries, coverage mode): unchanged
// specifications hit the cache and skip Z3 entirely.
#ifndef SWITCHV_SYMBOLIC_PACKET_GEN_H_
#define SWITCHV_SYMBOLIC_PACKET_GEN_H_

#include <map>
#include <mutex>
#include <vector>

#include "symbolic/executor.h"

namespace switchv::symbolic {

enum class CoverageMode {
  // Hit every reachable installed table entry (and every table miss) at
  // least once — the paper's configuration for Table 3.
  kEntryCoverage,
  // Entries plus both arms of every conditional.
  kBranchAndEntryCoverage,
};

struct GenerationStats {
  int targets_total = 0;
  int targets_covered = 0;    // satisfiable targets with a packet
  int targets_infeasible = 0; // unreachable given the entries
  int solver_queries = 0;
  bool cache_hit = false;
};

// Packet cache. Thread-safe: campaign shards running on a worker pool may
// share one cache (e.g. control-plane shards validating their fuzzed state
// while a dataplane shard generates). Persistable to disk, so nightly runs
// whose specifications did not change skip Z3 entirely even across process
// restarts (§6.3 "Caching").
class PacketCache {
 public:
  bool Lookup(std::uint64_t key, std::vector<TestPacket>* packets,
              GenerationStats* stats) const;
  void Store(std::uint64_t key, const std::vector<TestPacket>& packets,
             const GenerationStats& stats);
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return cache_.size();
  }

  // Saves to / loads from a simple line-oriented text file. Load merges
  // into the current contents.
  Status Save(const std::string& path) const;
  Status Load(const std::string& path);

 private:
  struct CacheEntry {
    std::vector<TestPacket> packets;
    GenerationStats stats;
  };
  mutable std::mutex mu_;
  std::map<std::uint64_t, CacheEntry> cache_;
};

// Fingerprint of the generation inputs (cache key).
std::uint64_t WorkloadFingerprint(const p4ir::Program& program,
                                  const std::vector<p4rt::TableEntry>& entries,
                                  CoverageMode mode);

// Generates test packets meeting the coverage goal. With a warm `cache`
// this returns without invoking Z3.
StatusOr<std::vector<TestPacket>> GeneratePackets(
    const p4ir::Program& program, const packet::ParserSpec& parser,
    const std::vector<p4rt::TableEntry>& entries, CoverageMode mode,
    PacketCache* cache = nullptr, GenerationStats* stats = nullptr);

}  // namespace switchv::symbolic

#endif  // SWITCHV_SYMBOLIC_PACKET_GEN_H_
