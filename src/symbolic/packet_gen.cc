#include "symbolic/packet_gen.h"

#include <fstream>
#include <sstream>

#include "util/fingerprint.h"
#include "util/strings.h"

namespace switchv::symbolic {

bool PacketCache::Lookup(std::uint64_t key, std::vector<TestPacket>* packets,
                         GenerationStats* stats) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(key);
  if (it == cache_.end()) return false;
  *packets = it->second.packets;
  if (stats != nullptr) {
    *stats = it->second.stats;
    stats->cache_hit = true;
    stats->solver_queries = 0;
  }
  return true;
}

void PacketCache::Store(std::uint64_t key,
                        const std::vector<TestPacket>& packets,
                        const GenerationStats& stats) {
  std::lock_guard<std::mutex> lock(mu_);
  cache_[key] = CacheEntry{packets, stats};
}

namespace {

std::string HexDecode(std::string_view hex) {
  std::string out;
  out.reserve(hex.size() / 2);
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  for (std::size_t i = 0; i + 1 < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) break;
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return out;
}

}  // namespace

Status PacketCache::Save(const std::string& path) const {
  std::ofstream file(path);
  if (!file) {
    return InternalError("cannot open cache file for writing: " + path);
  }
  file << "switchv-packet-cache-v1\n";
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, entry] : cache_) {
    file << "workload " << key << " " << entry.packets.size() << " "
         << entry.stats.targets_total << " " << entry.stats.targets_covered
         << " " << entry.stats.targets_infeasible << "\n";
    for (const TestPacket& packet : entry.packets) {
      file << packet.ingress_port << " " << packet.target_id << " "
           << BytesToHex(packet.bytes) << "\n";
    }
  }
  return file.good() ? OkStatus()
                     : InternalError("write failed: " + path);
}

Status PacketCache::Load(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return NotFoundError("cannot open cache file: " + path);
  }
  std::string header;
  std::getline(file, header);
  if (header != "switchv-packet-cache-v1") {
    return InvalidArgumentError("unrecognized cache file format: " + path);
  }
  std::lock_guard<std::mutex> lock(mu_);
  std::string line;
  while (std::getline(file, line)) {
    std::istringstream workload(line);
    std::string tag;
    std::uint64_t key = 0;
    std::size_t count = 0;
    CacheEntry entry;
    workload >> tag >> key >> count >> entry.stats.targets_total >>
        entry.stats.targets_covered >> entry.stats.targets_infeasible;
    if (tag != "workload" || !workload) {
      return InvalidArgumentError("malformed cache workload line");
    }
    for (std::size_t i = 0; i < count; ++i) {
      if (!std::getline(file, line)) {
        return InvalidArgumentError("truncated cache file");
      }
      std::istringstream packet_line(line);
      TestPacket packet;
      std::string hex;
      packet_line >> packet.ingress_port >> packet.target_id >> hex;
      if (!packet_line) {
        return InvalidArgumentError("malformed cache packet line");
      }
      packet.bytes = HexDecode(hex);
      entry.packets.push_back(std::move(packet));
    }
    cache_[key] = std::move(entry);
  }
  return OkStatus();
}

std::uint64_t WorkloadFingerprint(
    const p4ir::Program& program,
    const std::vector<p4rt::TableEntry>& entries, CoverageMode mode) {
  Fingerprint fp;
  fp.AddU64(program.Fingerprint());
  fp.AddU64(static_cast<std::uint64_t>(mode));
  for (const p4rt::TableEntry& entry : entries) {
    fp.AddU64(entry.table_id);
    fp.AddU64(static_cast<std::uint64_t>(entry.priority));
    fp.AddBytes(entry.KeyFingerprint());
    // Actions matter too: they decide reachability of downstream targets.
    auto add_action = [&fp](const p4rt::ActionInvocation& action) {
      fp.AddU64(action.action_id);
      for (const p4rt::ActionInvocation::Param& p : action.params) {
        fp.AddU64(p.param_id);
        fp.AddBytes(p.value);
      }
    };
    if (entry.action.kind == p4rt::TableAction::Kind::kDirect) {
      add_action(entry.action.direct);
    } else {
      for (const p4rt::WeightedAction& wa : entry.action.action_set) {
        fp.AddU64(static_cast<std::uint64_t>(wa.weight));
        add_action(wa.action);
      }
    }
  }
  return fp.digest();
}

StatusOr<std::vector<TestPacket>> GeneratePackets(
    const p4ir::Program& program, const packet::ParserSpec& parser,
    const std::vector<p4rt::TableEntry>& entries, CoverageMode mode,
    PacketCache* cache, GenerationStats* stats) {
  const std::uint64_t key = WorkloadFingerprint(program, entries, mode);
  std::vector<TestPacket> packets;
  if (cache != nullptr && cache->Lookup(key, &packets, stats)) {
    return packets;
  }

  SymbolicExecutor executor(program, parser);
  SWITCHV_RETURN_IF_ERROR(executor.Execute(entries));

  GenerationStats local;
  z3::context& ctx = executor.ctx();
  const z3::expr not_dropped =
      executor.OutputField(p4ir::kDropField) == ctx.bv_val(0, 1);
  const z3::expr not_punted =
      executor.OutputField(p4ir::kPuntField) == ctx.bv_val(0, 1);
  for (const TraceTarget& target : executor.targets()) {
    const bool is_entry = target.kind == TraceTarget::Kind::kTableEntry ||
                          target.kind == TraceTarget::Kind::kTableMiss;
    if (mode == CoverageMode::kEntryCoverage && !is_entry) continue;
    ++local.targets_total;
    // Prefer packets that survive to egress: they exercise the rewrite
    // path and have far more discriminating power than packets the solver
    // happens to park on a trap (e.g. TTL 0). For targets that force a
    // drop (ACL deny entries), prefer packets that were at least *routed*
    // (an egress port was resolved), so stage-ordering bugs between
    // routing, rewrite, and ACL still surface. Fall back progressively.
    const z3::expr routed =
        executor.OutputField(p4ir::kEgressPortField) !=
        ctx.bv_val(0, p4ir::kPortWidth);
    auto packet = executor.SolvePacket(
        target.guard && not_dropped && not_punted, target.id);
    if (!packet.ok() && packet.status().code() == StatusCode::kNotFound) {
      packet = executor.SolvePacket(target.guard && not_dropped, target.id);
    }
    if (!packet.ok() && packet.status().code() == StatusCode::kNotFound) {
      packet = executor.SolvePacket(target.guard && routed, target.id);
    }
    if (!packet.ok() && packet.status().code() == StatusCode::kNotFound) {
      packet = executor.SolvePacket(target.guard, target.id);
    }
    if (packet.ok()) {
      ++local.targets_covered;
      packets.push_back(std::move(packet).value());
    } else if (packet.status().code() == StatusCode::kNotFound) {
      ++local.targets_infeasible;  // unreachable under these entries
    } else {
      return packet.status();
    }
  }

  // Engineer-provided boundary assertions (§5 "Coverage Constraints", §7):
  // classic networking boundary values posed over X, Y and the drop/punt
  // verdicts. Infeasible goals (e.g. a forwarded broadcast under a model
  // that drops broadcasts) cost one UNSAT query and are skipped.
  struct AuxGoal {
    std::string id;
    z3::expr goal;
  };
  std::vector<AuxGoal> aux;
  if (program.FieldWidth("ipv4.ttl") != 0) {
    aux.push_back(AuxGoal{
        "aux.ipv4_ttl_boundary",
        executor.InputValid("ipv4") &&
            z3::ule(executor.InputField("ipv4.ttl"), ctx.bv_val(1, 8)) &&
            not_dropped});
  }
  if (program.FieldWidth("ipv4.dst_addr") != 0) {
    aux.push_back(AuxGoal{
        "aux.ipv4_broadcast",
        executor.InputValid("ipv4") &&
            executor.InputField("ipv4.dst_addr") ==
                ctx.bv_val(0xFFFFFFFFu, 32) &&
            not_dropped});
  }
  if (program.FieldWidth("ipv4.dscp") != 0) {
    aux.push_back(AuxGoal{
        "aux.ipv4_dscp_nonzero",
        executor.InputValid("ipv4") &&
            executor.InputField("ipv4.dscp") != ctx.bv_val(0, 6) &&
            not_dropped && not_punted});
  }
  if (program.FieldWidth("ipv6.dscp") != 0) {
    aux.push_back(AuxGoal{
        "aux.ipv6_dscp_nonzero",
        executor.InputValid("ipv6") &&
            executor.InputField("ipv6.dscp") != ctx.bv_val(0, 6) &&
            not_dropped && not_punted});
  }
  if (program.FieldWidth("ipv6.hop_limit") != 0) {
    aux.push_back(AuxGoal{
        "aux.ipv6_hop_boundary",
        executor.InputValid("ipv6") &&
            z3::ule(executor.InputField("ipv6.hop_limit"),
                    ctx.bv_val(1, 8)) &&
            not_dropped});
  }
  for (const AuxGoal& goal : aux) {
    ++local.targets_total;
    auto packet = executor.SolvePacket(goal.goal, goal.id);
    if (packet.ok()) {
      ++local.targets_covered;
      packets.push_back(std::move(packet).value());
    } else if (packet.status().code() == StatusCode::kNotFound) {
      ++local.targets_infeasible;
    } else {
      return packet.status();
    }
  }
  local.solver_queries = executor.solver_queries();
  if (cache != nullptr) cache->Store(key, packets, local);
  if (stats != nullptr) *stats = local;
  return packets;
}

}  // namespace switchv::symbolic
