#include "p4ir/program.h"

#include <set>

#include "util/fingerprint.h"

namespace switchv::p4ir {

Statement Statement::Assign(std::string field, Expr value) {
  Statement s;
  s.kind = Kind::kAssign;
  s.target = std::move(field);
  s.value = std::move(value);
  return s;
}

Statement Statement::SetValid(std::string header, bool valid) {
  Statement s;
  s.kind = Kind::kSetValid;
  s.target = std::move(header);
  s.valid = valid;
  return s;
}

Statement Statement::Hash(std::string field, std::vector<std::string> inputs) {
  Statement s;
  s.kind = Kind::kHash;
  s.target = std::move(field);
  s.hash_inputs = std::move(inputs);
  return s;
}

const ParamDef* Action::FindParam(const std::string& param_name) const {
  for (const ParamDef& p : params) {
    if (p.name == param_name) return &p;
  }
  return nullptr;
}

std::string_view MatchKindName(MatchKind kind) {
  switch (kind) {
    case MatchKind::kExact: return "exact";
    case MatchKind::kLpm: return "lpm";
    case MatchKind::kTernary: return "ternary";
    case MatchKind::kOptional: return "optional";
  }
  return "?";
}

const KeyDef* Table::FindKey(const std::string& key_name) const {
  for (const KeyDef& k : keys) {
    if (k.name == key_name) return &k;
  }
  return nullptr;
}

bool Table::HasAction(const std::string& action_name) const {
  for (const std::string& a : action_names) {
    if (a == action_name) return true;
  }
  return false;
}

bool Table::RequiresPriority() const {
  for (const KeyDef& k : keys) {
    if (k.kind == MatchKind::kTernary || k.kind == MatchKind::kOptional) {
      return true;
    }
  }
  return false;
}

ControlNode ControlNode::ApplyTable(std::string table) {
  ControlNode n;
  n.kind = Kind::kApplyTable;
  n.table = std::move(table);
  return n;
}

ControlNode ControlNode::If(Expr condition,
                            std::vector<ControlNode> then_branch,
                            std::vector<ControlNode> else_branch) {
  ControlNode n;
  n.kind = Kind::kIf;
  n.condition = std::move(condition);
  n.then_branch = std::move(then_branch);
  n.else_branch = std::move(else_branch);
  return n;
}

ControlNode ControlNode::ApplyAction(std::string action,
                                     std::vector<BitString> args) {
  ControlNode n;
  n.kind = Kind::kApplyAction;
  n.action = std::move(action);
  n.action_args = std::move(args);
  return n;
}

const Table* Program::FindTable(const std::string& table_name) const {
  for (const Table& t : tables) {
    if (t.name == table_name) return &t;
  }
  return nullptr;
}

const Action* Program::FindAction(const std::string& action_name) const {
  for (const Action& a : actions) {
    if (a.name == action_name) return &a;
  }
  return nullptr;
}

const HeaderDef* Program::FindHeader(const std::string& header_name) const {
  for (const HeaderDef& h : headers) {
    if (h.name == header_name) return &h;
  }
  return nullptr;
}

int Program::FieldWidth(const std::string& field_name) const {
  for (const HeaderDef& h : headers) {
    for (const FieldDef& f : h.fields) {
      if (f.name == field_name) return f.width;
    }
  }
  for (const FieldDef& f : metadata) {
    if (f.name == field_name) return f.width;
  }
  return 0;
}

std::vector<FieldDef> Program::AllFields() const {
  std::vector<FieldDef> out;
  for (const HeaderDef& h : headers) {
    for (const FieldDef& f : h.fields) out.push_back(f);
  }
  for (const FieldDef& f : metadata) out.push_back(f);
  return out;
}

namespace {

Status ValidateExpr(const Program& program, const Action* action,
                    const Expr& expr) {
  switch (expr.kind()) {
    case Expr::Kind::kConstant:
      return OkStatus();
    case Expr::Kind::kField:
      if (program.FieldWidth(expr.name()) != expr.width()) {
        return InvalidArgumentError("unknown field or width mismatch: " +
                                    expr.name());
      }
      return OkStatus();
    case Expr::Kind::kParam: {
      if (action == nullptr) {
        return InvalidArgumentError(
            "action parameter referenced outside an action body: " +
            expr.name());
      }
      const ParamDef* param = action->FindParam(expr.name());
      if (param == nullptr || param->width != expr.width()) {
        return InvalidArgumentError("unknown parameter or width mismatch: " +
                                    expr.name());
      }
      return OkStatus();
    }
    case Expr::Kind::kValid:
      if (program.FindHeader(expr.name()) == nullptr) {
        return InvalidArgumentError("validity check on unknown header: " +
                                    expr.name());
      }
      return OkStatus();
    case Expr::Kind::kUnary:
    case Expr::Kind::kBinary:
      for (const Expr& child : expr.children()) {
        SWITCHV_RETURN_IF_ERROR(ValidateExpr(program, action, child));
      }
      return OkStatus();
  }
  return InternalError("unreachable expression kind");
}

Status ValidateControl(const Program& program,
                       const std::vector<ControlNode>& nodes,
                       std::set<std::string>& applied) {
  for (const ControlNode& node : nodes) {
    if (node.kind == ControlNode::Kind::kApplyTable) {
      if (program.FindTable(node.table) == nullptr) {
        return InvalidArgumentError("apply of unknown table: " + node.table);
      }
      if (!applied.insert(node.table).second) {
        return InvalidArgumentError(
            "table applied more than once (single-pass restriction): " +
            node.table);
      }
    } else if (node.kind == ControlNode::Kind::kApplyAction) {
      const Action* action = program.FindAction(node.action);
      if (action == nullptr) {
        return InvalidArgumentError("apply of unknown action: " + node.action);
      }
      if (action->params.size() != node.action_args.size()) {
        return InvalidArgumentError("inline action arity mismatch: " +
                                    node.action);
      }
    } else {
      SWITCHV_RETURN_IF_ERROR(
          ValidateExpr(program, nullptr, *node.condition));
      SWITCHV_RETURN_IF_ERROR(
          ValidateControl(program, node.then_branch, applied));
      SWITCHV_RETURN_IF_ERROR(
          ValidateControl(program, node.else_branch, applied));
    }
  }
  return OkStatus();
}

}  // namespace

Status Program::Validate() const {
  std::set<std::string> field_names;
  for (const FieldDef& f : AllFields()) {
    if (f.width <= 0 || f.width > BitString::kMaxWidth) {
      return InvalidArgumentError("field has invalid width: " + f.name);
    }
    if (!field_names.insert(f.name).second) {
      return InvalidArgumentError("duplicate field: " + f.name);
    }
  }
  std::set<std::string> action_names;
  for (const Action& a : actions) {
    if (!action_names.insert(a.name).second) {
      return InvalidArgumentError("duplicate action: " + a.name);
    }
    for (const Statement& s : a.body) {
      switch (s.kind) {
        case Statement::Kind::kAssign: {
          const int width = FieldWidth(s.target);
          if (width == 0) {
            return InvalidArgumentError("assignment to unknown field: " +
                                        s.target);
          }
          if (s.value->width() != width) {
            return InvalidArgumentError("assignment width mismatch on " +
                                        s.target);
          }
          SWITCHV_RETURN_IF_ERROR(ValidateExpr(*this, &a, *s.value));
          break;
        }
        case Statement::Kind::kSetValid:
          if (FindHeader(s.target) == nullptr) {
            return InvalidArgumentError("setValid on unknown header: " +
                                        s.target);
          }
          break;
        case Statement::Kind::kHash:
          if (FieldWidth(s.target) == 0) {
            return InvalidArgumentError("hash into unknown field: " +
                                        s.target);
          }
          for (const std::string& in : s.hash_inputs) {
            if (FieldWidth(in) == 0) {
              return InvalidArgumentError("hash over unknown field: " + in);
            }
          }
          break;
      }
    }
  }
  std::set<std::string> table_names;
  for (const Table& t : tables) {
    if (!table_names.insert(t.name).second) {
      return InvalidArgumentError("duplicate table: " + t.name);
    }
    if (t.keys.empty()) {
      return InvalidArgumentError("table has no keys: " + t.name);
    }
    std::set<std::string> key_names;
    for (const KeyDef& k : t.keys) {
      if (!key_names.insert(k.name).second) {
        return InvalidArgumentError("duplicate key in table " + t.name);
      }
      if (FieldWidth(k.field) != k.width || k.width == 0) {
        return InvalidArgumentError("key width mismatch in table " + t.name +
                                    " for field " + k.field);
      }
    }
    if (t.action_names.empty()) {
      return InvalidArgumentError("table has no actions: " + t.name);
    }
    for (const std::string& a : t.action_names) {
      if (FindAction(a) == nullptr) {
        return InvalidArgumentError("table " + t.name +
                                    " references unknown action: " + a);
      }
    }
    const Action* default_action = FindAction(t.default_action);
    if (default_action == nullptr) {
      return InvalidArgumentError("table " + t.name +
                                  " has unknown default action");
    }
    if (default_action->params.size() != t.default_action_args.size()) {
      return InvalidArgumentError("table " + t.name +
                                  " default action arity mismatch");
    }
    if (t.size <= 0) {
      return InvalidArgumentError("table " + t.name +
                                  " must declare a guaranteed size");
    }
    for (const KeyDef& k : t.keys) {
      if (!k.refers_to.has_value()) continue;
      const Table* target = FindTable(k.refers_to->table);
      if (target == nullptr ||
          target->FindKey(k.refers_to->key) == nullptr) {
        return InvalidArgumentError("dangling @refers_to on table " + t.name);
      }
    }
    for (const ParamRefersTo& r : t.param_refers_to) {
      const Action* action = FindAction(r.action);
      if (action == nullptr || action->FindParam(r.param) == nullptr) {
        return InvalidArgumentError("param @refers_to on unknown param in " +
                                    t.name);
      }
      const Table* target = FindTable(r.target.table);
      if (target == nullptr || target->FindKey(r.target.key) == nullptr) {
        return InvalidArgumentError("dangling param @refers_to in " + t.name);
      }
    }
  }
  std::set<std::string> applied;
  SWITCHV_RETURN_IF_ERROR(ValidateControl(*this, ingress, applied));
  SWITCHV_RETURN_IF_ERROR(ValidateControl(*this, egress, applied));
  return OkStatus();
}

namespace {

void FingerprintExpr(Fingerprint& fp, const Expr& e) {
  fp.AddU64(static_cast<std::uint64_t>(e.kind()));
  fp.AddU64(static_cast<std::uint64_t>(e.width()));
  fp.AddBytes(e.name());
  if (e.kind() == Expr::Kind::kConstant) {
    fp.AddBytes(e.constant().ToPaddedBytes());
  }
  fp.AddU64(static_cast<std::uint64_t>(e.unary_op()));
  fp.AddU64(static_cast<std::uint64_t>(e.binary_op()));
  for (const Expr& c : e.children()) FingerprintExpr(fp, c);
}

void FingerprintControl(Fingerprint& fp, const std::vector<ControlNode>& ns) {
  for (const ControlNode& n : ns) {
    fp.AddU64(static_cast<std::uint64_t>(n.kind));
    fp.AddBytes(n.table);
    fp.AddBytes(n.action);
    for (const BitString& arg : n.action_args) {
      fp.AddBytes(arg.ToPaddedBytes());
    }
    if (n.condition.has_value()) FingerprintExpr(fp, *n.condition);
    FingerprintControl(fp, n.then_branch);
    FingerprintControl(fp, n.else_branch);
  }
}

}  // namespace

std::uint64_t Program::Fingerprint() const {
  switchv::Fingerprint fp;
  fp.AddBytes(name);
  for (const FieldDef& f : AllFields()) {
    fp.AddBytes(f.name);
    fp.AddU64(static_cast<std::uint64_t>(f.width));
  }
  for (const Action& a : actions) {
    fp.AddBytes(a.name);
    for (const ParamDef& p : a.params) {
      fp.AddBytes(p.name);
      fp.AddU64(static_cast<std::uint64_t>(p.width));
    }
    for (const Statement& s : a.body) {
      fp.AddU64(static_cast<std::uint64_t>(s.kind));
      fp.AddBytes(s.target);
      if (s.value.has_value()) FingerprintExpr(fp, *s.value);
      fp.AddU64(s.valid ? 1 : 0);
      for (const std::string& in : s.hash_inputs) fp.AddBytes(in);
    }
  }
  for (const Table& t : tables) {
    fp.AddBytes(t.name);
    fp.AddU64(static_cast<std::uint64_t>(t.size));
    fp.AddBytes(t.entry_restriction);
    for (const KeyDef& k : t.keys) {
      fp.AddBytes(k.name);
      fp.AddBytes(k.field);
      fp.AddU64(static_cast<std::uint64_t>(k.kind));
    }
    for (const std::string& a : t.action_names) fp.AddBytes(a);
    fp.AddBytes(t.default_action);
    fp.AddU64(t.selector.has_value() ? 1 : 0);
  }
  FingerprintControl(fp, ingress);
  FingerprintControl(fp, egress);
  return fp.digest();
}

}  // namespace switchv::p4ir
