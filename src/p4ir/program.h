// The P4 model IR: a machine-readable, implementation-agnostic specification
// of a fixed-function switch, mirroring the paper's use of P4 programs (§3).
//
// A Program declares headers and metadata fields, actions, match-action
// tables (with sizes, `@entry_restriction` constraints, and `@refers_to`
// references), and a single-pass ingress/egress control flow. It is consumed
// by four independent clients:
//   * p4runtime — derives the P4Info contract and validates requests,
//   * bmv2     — the reference interpreter,
//   * sut      — the switch-under-test configures its ACLs from it,
//   * symbolic — compiles it to SMT for test-packet generation.
#ifndef SWITCHV_P4IR_PROGRAM_H_
#define SWITCHV_P4IR_PROGRAM_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "p4ir/expr.h"
#include "util/status.h"

namespace switchv::p4ir {

// Well-known standard-metadata fields every pipeline shares. The forwarding
// verdict of a packet is read from these after the pipeline runs.
inline constexpr const char* kIngressPortField =
    "standard_metadata.ingress_port";
inline constexpr const char* kEgressPortField =
    "standard_metadata.egress_port";
inline constexpr const char* kDropField = "standard_metadata.drop";
inline constexpr const char* kPuntField = "standard_metadata.punt";  // to CPU
// Non-zero selects a mirror session that clones the packet (§3 "Mirror
// Sessions"); the logical session table maps it to a clone port.
inline constexpr const char* kCloneSessionField =
    "standard_metadata.clone_session";

inline constexpr int kPortWidth = 16;

// A named header or metadata field and its bit width.
struct FieldDef {
  std::string name;  // fully qualified, e.g. "ipv4.dst_addr"
  int width = 0;
};

// A protocol header: a group of fields with a validity bit.
struct HeaderDef {
  std::string name;  // e.g. "ipv4"
  std::vector<FieldDef> fields;
};

// One primitive statement inside an action body.
struct Statement {
  enum class Kind {
    kAssign,    // target field = value expression
    kSetValid,  // set header validity (encap/decap building block)
    kHash,      // target = hash(inputs): modeled as a free/unconstrained op
  };

  static Statement Assign(std::string field, Expr value);
  static Statement SetValid(std::string header, bool valid);
  static Statement Hash(std::string field, std::vector<std::string> inputs);

  Kind kind = Kind::kAssign;
  std::string target;                    // field (assign/hash), header (valid)
  std::optional<Expr> value;             // assign only
  bool valid = false;                    // set-valid only
  std::vector<std::string> hash_inputs;  // hash only
};

// An action parameter: runtime-supplied argument with a declared width.
struct ParamDef {
  std::string name;
  int width = 0;
};

// A P4 action: named, parameterized sequence of primitive statements.
struct Action {
  std::string name;
  std::vector<ParamDef> params;
  std::vector<Statement> body;

  // Returns the parameter with the given name, or nullptr.
  const ParamDef* FindParam(const std::string& param_name) const;
};

// How a table key matches: the P4Runtime match kinds used by the paper's
// models (range is unused there and omitted, as in PINS).
enum class MatchKind { kExact, kLpm, kTernary, kOptional };

std::string_view MatchKindName(MatchKind kind);

// `@refers_to(table, key)`: the value of this key must equal the value of
// an *installed* entry's key in another table (referential integrity, §3).
struct RefersTo {
  std::string table;
  std::string key;
};

// One match key of a table.
struct KeyDef {
  std::string name;   // match-field name exposed via P4Info (often the field)
  std::string field;  // the header/metadata field matched against
  int width = 0;
  MatchKind kind = MatchKind::kExact;
  std::optional<RefersTo> refers_to;
};

// `@refers_to` on an action parameter (e.g. nexthop_id argument referring to
// the nexthop table).
struct ParamRefersTo {
  std::string action;
  std::string param;
  RefersTo target;
};

// A one-shot action-selector implementation (WCMP, §4.2 "One-shot Action
// Selector Programming"): entries carry weighted sets of actions instead of
// a single action.
struct ActionSelector {
  int max_group_size = 0;   // max members per entry
  int max_total_weight = 0; // max sum of weights per entry
};

// A match-action table.
struct Table {
  std::string name;
  std::vector<KeyDef> keys;
  std::vector<std::string> action_names;  // entries may use only these
  // Default action invoked when no entry matches (name + constant args).
  std::string default_action;
  std::vector<BitString> default_action_args;
  // Guaranteed capacity (`size =` in P4): the switch must accept at least
  // this many entries; beyond it, accept-or-reject is under-specified (§4).
  int size = 0;
  // `@entry_restriction` source text, empty if unconstrained. Parsed by
  // p4constraints; part of the control-plane contract.
  std::string entry_restriction;
  // Present for WCMP-style tables programmed with one-shot action sets.
  std::optional<ActionSelector> selector;
  // `@refers_to` annotations on action parameters of this table.
  std::vector<ParamRefersTo> param_refers_to;

  const KeyDef* FindKey(const std::string& key_name) const;
  bool HasAction(const std::string& action_name) const;
  // True if any key is ternary/optional: entries then require priority > 0.
  bool RequiresPriority() const;
};

// A node of the single-pass control flow: apply a table, branch, or invoke
// an action inline with constant arguments (P4 statements in the apply
// block, e.g. fixed traps such as "punt packets with TTL <= 1").
struct ControlNode {
  enum class Kind { kApplyTable, kIf, kApplyAction };

  static ControlNode ApplyTable(std::string table);
  static ControlNode If(Expr condition, std::vector<ControlNode> then_branch,
                        std::vector<ControlNode> else_branch);
  static ControlNode ApplyAction(std::string action,
                                 std::vector<BitString> args = {});

  Kind kind = Kind::kApplyTable;
  std::string table;  // apply-table only
  std::optional<Expr> condition;
  std::vector<ControlNode> then_branch;
  std::vector<ControlNode> else_branch;
  std::string action;               // apply-action only
  std::vector<BitString> action_args;
};

// A complete role-specific P4 model (§3 "Role Specific Instantiations").
class Program {
 public:
  std::string name;
  std::vector<HeaderDef> headers;
  std::vector<FieldDef> metadata;  // standard + user metadata fields
  std::vector<Action> actions;
  std::vector<Table> tables;      // in pipeline order
  std::vector<ControlNode> ingress;
  std::vector<ControlNode> egress;
  // The CPU port: packets punted or sent via packet-out use it.
  std::uint16_t cpu_port = 0xFFF;

  // Lookup helpers; return nullptr when absent.
  const Table* FindTable(const std::string& table_name) const;
  const Action* FindAction(const std::string& action_name) const;
  const HeaderDef* FindHeader(const std::string& header_name) const;

  // Width of a (fully-qualified) header or metadata field; 0 when unknown.
  int FieldWidth(const std::string& field_name) const;

  // All fields (headers then metadata), in declaration order.
  std::vector<FieldDef> AllFields() const;

  // Structural well-formedness: every referenced field/action/table exists,
  // widths are positive, control flow applies each table at most once
  // (single-pass restriction, §3 "P4 Language Features").
  Status Validate() const;

  // Stable structural fingerprint; used to key the p4-symbolic cache.
  std::uint64_t Fingerprint() const;
};

}  // namespace switchv::p4ir

#endif  // SWITCHV_P4IR_PROGRAM_H_
