// Fluent construction of P4 model programs.
//
// The paper's role-specific models are "instantiations of the same
// blueprint" assembled from a common library of components (§3). The
// builder is the C++ analogue of that P4 source + preprocessor setup: model
// code composes headers, actions, and tables into a validated Program.
#ifndef SWITCHV_P4IR_BUILDER_H_
#define SWITCHV_P4IR_BUILDER_H_

#include <string>
#include <utility>
#include <vector>

#include "p4ir/program.h"

namespace switchv::p4ir {

// Builds one table; obtained from ProgramBuilder::AddTable.
class TableBuilder {
 public:
  explicit TableBuilder(Table& table) : table_(table) {}

  TableBuilder& Key(std::string name, std::string field, int width,
                    MatchKind kind);
  // Key with a @refers_to(table, key) annotation.
  TableBuilder& ReferencingKey(std::string name, std::string field, int width,
                               MatchKind kind, std::string ref_table,
                               std::string ref_key);
  TableBuilder& Action(std::string action_name);
  TableBuilder& DefaultAction(std::string action_name,
                              std::vector<BitString> args = {});
  TableBuilder& Size(int size);
  // Attaches an @entry_restriction constraint (p4constraints source text).
  TableBuilder& EntryRestriction(std::string constraint);
  // Marks the table as WCMP-style with a one-shot action selector.
  TableBuilder& WithSelector(int max_group_size, int max_total_weight);
  // Attaches @refers_to to an action parameter of this table.
  TableBuilder& ParamReference(std::string action, std::string param,
                               std::string ref_table, std::string ref_key);

 private:
  Table& table_;
};

// Builds a Program. Standard metadata (ingress/egress port, drop, punt,
// clone session) is declared automatically.
class ProgramBuilder {
 public:
  explicit ProgramBuilder(std::string name);

  // Declares a header; field names must be fully qualified ("ipv4.ttl").
  ProgramBuilder& AddHeader(std::string name, std::vector<FieldDef> fields);

  // Declares a user metadata field, e.g. "local_metadata.vrf_id".
  ProgramBuilder& AddMetadata(std::string name, int width);

  // Declares an action.
  ProgramBuilder& AddAction(std::string name, std::vector<ParamDef> params,
                            std::vector<Statement> body);

  // Declares a table and returns a builder for it. The returned builder is
  // invalidated by further AddTable calls.
  TableBuilder AddTable(std::string name);

  ProgramBuilder& SetIngress(std::vector<ControlNode> nodes);
  ProgramBuilder& SetEgress(std::vector<ControlNode> nodes);
  ProgramBuilder& SetCpuPort(std::uint16_t port);

  // Width lookup over everything declared so far (0 if unknown); lets model
  // code write `b.FieldExpr("ipv4.ttl")` without repeating widths.
  int FieldWidth(const std::string& field) const;
  Expr FieldExpr(const std::string& field) const;

  // Validates and returns the finished program.
  StatusOr<Program> Build() &&;

 private:
  Program program_;
};

}  // namespace switchv::p4ir

#endif  // SWITCHV_P4IR_BUILDER_H_
