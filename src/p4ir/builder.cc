#include "p4ir/builder.h"

namespace switchv::p4ir {

TableBuilder& TableBuilder::Key(std::string name, std::string field,
                                int width, MatchKind kind) {
  KeyDef key;
  key.name = std::move(name);
  key.field = std::move(field);
  key.width = width;
  key.kind = kind;
  table_.keys.push_back(std::move(key));
  return *this;
}

TableBuilder& TableBuilder::ReferencingKey(std::string name,
                                           std::string field, int width,
                                           MatchKind kind,
                                           std::string ref_table,
                                           std::string ref_key) {
  Key(std::move(name), std::move(field), width, kind);
  table_.keys.back().refers_to =
      RefersTo{std::move(ref_table), std::move(ref_key)};
  return *this;
}

TableBuilder& TableBuilder::Action(std::string action_name) {
  table_.action_names.push_back(std::move(action_name));
  return *this;
}

TableBuilder& TableBuilder::DefaultAction(std::string action_name,
                                          std::vector<BitString> args) {
  table_.default_action = std::move(action_name);
  table_.default_action_args = std::move(args);
  return *this;
}

TableBuilder& TableBuilder::Size(int size) {
  table_.size = size;
  return *this;
}

TableBuilder& TableBuilder::EntryRestriction(std::string constraint) {
  table_.entry_restriction = std::move(constraint);
  return *this;
}

TableBuilder& TableBuilder::WithSelector(int max_group_size,
                                         int max_total_weight) {
  table_.selector = ActionSelector{max_group_size, max_total_weight};
  return *this;
}

TableBuilder& TableBuilder::ParamReference(std::string action,
                                           std::string param,
                                           std::string ref_table,
                                           std::string ref_key) {
  table_.param_refers_to.push_back(ParamRefersTo{
      std::move(action), std::move(param),
      RefersTo{std::move(ref_table), std::move(ref_key)}});
  return *this;
}

ProgramBuilder::ProgramBuilder(std::string name) {
  program_.name = std::move(name);
  program_.metadata = {
      {kIngressPortField, kPortWidth}, {kEgressPortField, kPortWidth},
      {kDropField, 1},                 {kPuntField, 1},
      {kCloneSessionField, 16},
  };
}

ProgramBuilder& ProgramBuilder::AddHeader(std::string name,
                                          std::vector<FieldDef> fields) {
  program_.headers.push_back(HeaderDef{std::move(name), std::move(fields)});
  return *this;
}

ProgramBuilder& ProgramBuilder::AddMetadata(std::string name, int width) {
  program_.metadata.push_back(FieldDef{std::move(name), width});
  return *this;
}

ProgramBuilder& ProgramBuilder::AddAction(std::string name,
                                          std::vector<ParamDef> params,
                                          std::vector<Statement> body) {
  Action action;
  action.name = std::move(name);
  action.params = std::move(params);
  action.body = std::move(body);
  program_.actions.push_back(std::move(action));
  return *this;
}

TableBuilder ProgramBuilder::AddTable(std::string name) {
  Table table;
  table.name = std::move(name);
  program_.tables.push_back(std::move(table));
  return TableBuilder(program_.tables.back());
}

ProgramBuilder& ProgramBuilder::SetIngress(std::vector<ControlNode> nodes) {
  program_.ingress = std::move(nodes);
  return *this;
}

ProgramBuilder& ProgramBuilder::SetEgress(std::vector<ControlNode> nodes) {
  program_.egress = std::move(nodes);
  return *this;
}

ProgramBuilder& ProgramBuilder::SetCpuPort(std::uint16_t port) {
  program_.cpu_port = port;
  return *this;
}

int ProgramBuilder::FieldWidth(const std::string& field) const {
  return program_.FieldWidth(field);
}

Expr ProgramBuilder::FieldExpr(const std::string& field) const {
  return Expr::Field(field, FieldWidth(field));
}

StatusOr<Program> ProgramBuilder::Build() && {
  SWITCHV_RETURN_IF_ERROR(program_.Validate());
  return std::move(program_);
}

}  // namespace switchv::p4ir
