// Rendering of a P4 model back to P4-16-style source text.
//
// The paper's central argument is that P4 models double as *living
// documentation* engineers consult instead of informal English specs (§1,
// §3, §7). This renderer produces that artifact: a human-readable P4-like
// program listing — headers, actions with bodies, tables with their
// @entry_restriction / @refers_to annotations and sizes, and the apply
// blocks — from the in-memory model.
//
// The output is documentation-faithful rather than compilable P4 (the IR
// abstracts architecture specifics like parsers and intrinsic metadata).
#ifndef SWITCHV_P4IR_P4_SOURCE_H_
#define SWITCHV_P4IR_P4_SOURCE_H_

#include <string>

#include "p4ir/program.h"

namespace switchv::p4ir {

// Renders the whole program.
std::string ToP4Source(const Program& program);

}  // namespace switchv::p4ir

#endif  // SWITCHV_P4IR_P4_SOURCE_H_
