#include "p4ir/expr.h"

#include <cassert>

namespace switchv::p4ir {

Expr Expr::Constant(BitString value) {
  Expr e;
  e.kind_ = Kind::kConstant;
  e.width_ = value.width();
  e.constant_ = value;
  return e;
}

Expr Expr::ConstantU(uint128 value, int width) {
  return Constant(BitString::FromUint(value, width));
}

Expr Expr::Field(std::string name, int width) {
  Expr e;
  e.kind_ = Kind::kField;
  e.width_ = width;
  e.name_ = std::move(name);
  return e;
}

Expr Expr::Param(std::string name, int width) {
  Expr e;
  e.kind_ = Kind::kParam;
  e.width_ = width;
  e.name_ = std::move(name);
  return e;
}

Expr Expr::Valid(std::string header) {
  Expr e;
  e.kind_ = Kind::kValid;
  e.width_ = 1;
  e.name_ = std::move(header);
  return e;
}

Expr Expr::Unary(UnaryOp op, Expr operand) {
  Expr e;
  e.kind_ = Kind::kUnary;
  e.unary_op_ = op;
  e.width_ = op == UnaryOp::kLogicalNot ? 1 : operand.width();
  e.children_.push_back(std::move(operand));
  return e;
}

Expr Expr::Binary(BinaryOp op, Expr lhs, Expr rhs) {
  assert(lhs.width() == rhs.width() && "binary operands must have equal width");
  Expr e;
  e.kind_ = Kind::kBinary;
  e.binary_op_ = op;
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
    case BinaryOp::kAnd:
    case BinaryOp::kOr:
      e.width_ = 1;
      break;
    default:
      e.width_ = lhs.width();
  }
  e.children_.push_back(std::move(lhs));
  e.children_.push_back(std::move(rhs));
  return e;
}

namespace {

std::string_view UnaryOpName(UnaryOp op) {
  switch (op) {
    case UnaryOp::kLogicalNot: return "!";
    case UnaryOp::kBitNot: return "~";
  }
  return "?";
}

std::string_view BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq: return "==";
    case BinaryOp::kNe: return "!=";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "&&";
    case BinaryOp::kOr: return "||";
    case BinaryOp::kBitAnd: return "&";
    case BinaryOp::kBitOr: return "|";
    case BinaryOp::kBitXor: return "^";
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
  }
  return "?";
}

}  // namespace

std::string Expr::ToString() const {
  switch (kind_) {
    case Kind::kConstant:
      return constant_.ToString();
    case Kind::kField:
      return name_;
    case Kind::kParam:
      return "$" + name_;
    case Kind::kValid:
      return name_ + ".isValid()";
    case Kind::kUnary:
      return std::string(UnaryOpName(unary_op_)) + "(" +
             children_[0].ToString() + ")";
    case Kind::kBinary:
      return "(" + children_[0].ToString() + " " +
             std::string(BinaryOpName(binary_op_)) + " " +
             children_[1].ToString() + ")";
  }
  return "?";
}

}  // namespace switchv::p4ir
