#include "p4ir/p4info.h"

namespace switchv::p4ir {

const ActionParamInfo* ActionInfo::FindParam(std::uint32_t param_id) const {
  for (const ActionParamInfo& p : params) {
    if (p.id == param_id) return &p;
  }
  return nullptr;
}

const MatchFieldInfo* TableInfo::FindMatchField(
    std::uint32_t field_id) const {
  for (const MatchFieldInfo& f : match_fields) {
    if (f.id == field_id) return &f;
  }
  return nullptr;
}

bool TableInfo::HasAction(std::uint32_t action_id) const {
  for (std::uint32_t id : action_ids) {
    if (id == action_id) return true;
  }
  return false;
}

P4Info P4Info::FromProgram(const Program& program) {
  P4Info info;
  info.program_name_ = program.name;
  info.fingerprint_ = program.Fingerprint();

  for (std::size_t i = 0; i < program.actions.size(); ++i) {
    const Action& action = program.actions[i];
    ActionInfo ai;
    ai.id = kActionIdBase + static_cast<std::uint32_t>(i) + 1;
    ai.name = action.name;
    for (std::size_t j = 0; j < action.params.size(); ++j) {
      ai.params.push_back(ActionParamInfo{
          static_cast<std::uint32_t>(j) + 1, action.params[j].name,
          action.params[j].width});
    }
    info.action_name_index_[ai.name] = info.actions_.size();
    info.action_index_[ai.id] = info.actions_.size();
    info.actions_.push_back(std::move(ai));
  }

  for (std::size_t i = 0; i < program.tables.size(); ++i) {
    const Table& table = program.tables[i];
    TableInfo ti;
    ti.id = kTableIdBase + static_cast<std::uint32_t>(i) + 1;
    ti.name = table.name;
    ti.size = table.size;
    ti.requires_priority = table.RequiresPriority();
    ti.entry_restriction = table.entry_restriction;
    ti.selector = table.selector;
    for (std::size_t j = 0; j < table.keys.size(); ++j) {
      const KeyDef& key = table.keys[j];
      ti.match_fields.push_back(MatchFieldInfo{
          static_cast<std::uint32_t>(j) + 1, key.name, key.width, key.kind,
          key.refers_to});
    }
    for (const std::string& action_name : table.action_names) {
      const ActionInfo* ai = info.FindActionByName(action_name);
      ti.action_ids.push_back(ai->id);
    }
    ti.default_action_id = info.FindActionByName(table.default_action)->id;
    for (const ParamRefersTo& r : table.param_refers_to) {
      const ActionInfo* ai = info.FindActionByName(r.action);
      if (ai == nullptr) continue;
      for (const ActionParamInfo& p : ai->params) {
        if (p.name == r.param) {
          ti.param_references.push_back(
              TableParamReference{ai->id, p.id, r.target});
        }
      }
    }
    info.table_name_index_[ti.name] = info.tables_.size();
    info.table_index_[ti.id] = info.tables_.size();
    info.tables_.push_back(std::move(ti));
  }
  return info;
}

const TableInfo* P4Info::FindTable(std::uint32_t table_id) const {
  auto it = table_index_.find(table_id);
  return it == table_index_.end() ? nullptr : &tables_[it->second];
}

const TableInfo* P4Info::FindTableByName(const std::string& name) const {
  auto it = table_name_index_.find(name);
  return it == table_name_index_.end() ? nullptr : &tables_[it->second];
}

const ActionInfo* P4Info::FindAction(std::uint32_t action_id) const {
  auto it = action_index_.find(action_id);
  return it == action_index_.end() ? nullptr : &actions_[it->second];
}

const ActionInfo* P4Info::FindActionByName(const std::string& name) const {
  auto it = action_name_index_.find(name);
  return it == action_name_index_.end() ? nullptr : &actions_[it->second];
}

}  // namespace switchv::p4ir
