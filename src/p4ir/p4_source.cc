#include "p4ir/p4_source.h"

namespace switchv::p4ir {

namespace {

void Indent(std::string& out, int depth) {
  out.append(static_cast<std::size_t>(depth) * 2, ' ');
}

std::string RenderStatement(const Statement& stmt) {
  switch (stmt.kind) {
    case Statement::Kind::kAssign:
      return stmt.target + " = " + stmt.value->ToString() + ";";
    case Statement::Kind::kSetValid:
      return stmt.target + (stmt.valid ? ".setValid();" : ".setInvalid();");
    case Statement::Kind::kHash: {
      std::string out = stmt.target + " = hash(";
      for (std::size_t i = 0; i < stmt.hash_inputs.size(); ++i) {
        if (i > 0) out += ", ";
        out += stmt.hash_inputs[i];
      }
      out += ");  // unspecified algorithm: free operation";
      return out;
    }
  }
  return ";";
}

void RenderControl(const Program& program,
                   const std::vector<ControlNode>& nodes, int depth,
                   std::string& out) {
  for (const ControlNode& node : nodes) {
    switch (node.kind) {
      case ControlNode::Kind::kApplyTable:
        Indent(out, depth);
        out += node.table + ".apply();\n";
        break;
      case ControlNode::Kind::kApplyAction: {
        Indent(out, depth);
        out += node.action + "(";
        for (std::size_t i = 0; i < node.action_args.size(); ++i) {
          if (i > 0) out += ", ";
          out += node.action_args[i].ToString();
        }
        out += ");\n";
        break;
      }
      case ControlNode::Kind::kIf:
        Indent(out, depth);
        out += "if " + node.condition->ToString() + " {\n";
        RenderControl(program, node.then_branch, depth + 1, out);
        if (!node.else_branch.empty()) {
          Indent(out, depth);
          out += "} else {\n";
          RenderControl(program, node.else_branch, depth + 1, out);
        }
        Indent(out, depth);
        out += "}\n";
        break;
    }
  }
}

}  // namespace

std::string ToP4Source(const Program& program) {
  std::string out;
  out += "// P4 model \"" + program.name +
         "\" — rendered from the in-memory specification.\n";
  out += "// Fingerprint: " + std::to_string(program.Fingerprint()) + "\n\n";

  for (const HeaderDef& header : program.headers) {
    out += "header " + header.name + "_t {\n";
    for (const FieldDef& field : header.fields) {
      const std::string short_name =
          field.name.substr(header.name.size() + 1);
      Indent(out, 1);
      out += "bit<" + std::to_string(field.width) + "> " + short_name + ";\n";
    }
    out += "}\n\n";
  }

  out += "struct metadata_t {\n";
  for (const FieldDef& field : program.metadata) {
    Indent(out, 1);
    out += "bit<" + std::to_string(field.width) + "> " + field.name + ";\n";
  }
  out += "}\n\n";

  for (const Action& action : program.actions) {
    out += "action " + action.name + "(";
    for (std::size_t i = 0; i < action.params.size(); ++i) {
      if (i > 0) out += ", ";
      out += "bit<" + std::to_string(action.params[i].width) + "> " +
             action.params[i].name;
    }
    out += ") {\n";
    for (const Statement& stmt : action.body) {
      Indent(out, 1);
      out += RenderStatement(stmt) + "\n";
    }
    out += "}\n\n";
  }

  for (const Table& table : program.tables) {
    if (!table.entry_restriction.empty()) {
      out += "@entry_restriction(\"" + table.entry_restriction + "\")\n";
    }
    out += "table " + table.name + " {\n";
    Indent(out, 1);
    out += "key = {\n";
    for (const KeyDef& key : table.keys) {
      Indent(out, 2);
      out += key.field + " : " + std::string(MatchKindName(key.kind));
      if (key.refers_to.has_value()) {
        out += " @refers_to(" + key.refers_to->table + ", " +
               key.refers_to->key + ")";
      }
      out += ";  // " + key.name + "\n";
    }
    Indent(out, 1);
    out += "}\n";
    Indent(out, 1);
    out += "actions = {";
    for (std::size_t i = 0; i < table.action_names.size(); ++i) {
      if (i > 0) out += "; ";
      out += " " + table.action_names[i];
    }
    out += "; }\n";
    for (const ParamRefersTo& r : table.param_refers_to) {
      Indent(out, 1);
      out += "// @refers_to(" + r.target.table + ", " + r.target.key +
             ") on " + r.action + "." + r.param + "\n";
    }
    Indent(out, 1);
    out += "const default_action = " + table.default_action + ";\n";
    Indent(out, 1);
    out += "size = " + std::to_string(table.size) + ";\n";
    if (table.selector.has_value()) {
      Indent(out, 1);
      out += "implementation = action_selector(max_group_size=" +
             std::to_string(table.selector->max_group_size) +
             ", max_total_weight=" +
             std::to_string(table.selector->max_total_weight) + ");\n";
    }
    out += "}\n\n";
  }

  out += "control ingress() {\n  apply {\n";
  RenderControl(program, program.ingress, 2, out);
  out += "  }\n}\n\n";
  out += "control egress() {\n  apply {\n";
  RenderControl(program, program.egress, 2, out);
  out += "  }\n}\n";
  return out;
}

}  // namespace switchv::p4ir
