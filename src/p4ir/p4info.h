// P4Info: the numeric-ID contract derived from a P4 model.
//
// P4Runtime clients (the SDN controller, and SwitchV's fuzzer) address
// tables, match fields, actions, and parameters by the numeric IDs published
// in P4Info, not by name. The switch under test receives P4Info via
// SetForwardingPipelineConfig and validates every write against it. IDs are
// assigned deterministically from declaration order, using the same ID
// prefixes as the real p4c-generated P4Info (0x02 tables, 0x01 actions).
#ifndef SWITCHV_P4IR_P4INFO_H_
#define SWITCHV_P4IR_P4INFO_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "p4ir/program.h"

namespace switchv::p4ir {

struct MatchFieldInfo {
  std::uint32_t id = 0;  // 1-based within the table
  std::string name;
  int width = 0;
  MatchKind kind = MatchKind::kExact;
  std::optional<RefersTo> refers_to;
};

struct ActionParamInfo {
  std::uint32_t id = 0;  // 1-based within the action
  std::string name;
  int width = 0;
};

struct ActionInfo {
  std::uint32_t id = 0;
  std::string name;
  std::vector<ActionParamInfo> params;

  const ActionParamInfo* FindParam(std::uint32_t param_id) const;
};

// @refers_to on an action parameter, scoped to a table (as in P4-PDPI).
struct TableParamReference {
  std::uint32_t action_id = 0;
  std::uint32_t param_id = 0;
  RefersTo target;
};

struct TableInfo {
  std::uint32_t id = 0;
  std::string name;
  std::vector<MatchFieldInfo> match_fields;
  std::vector<std::uint32_t> action_ids;
  std::uint32_t default_action_id = 0;
  int size = 0;
  bool requires_priority = false;
  std::string entry_restriction;  // p4constraints source, "" if none
  std::optional<ActionSelector> selector;
  std::vector<TableParamReference> param_references;

  const MatchFieldInfo* FindMatchField(std::uint32_t field_id) const;
  bool HasAction(std::uint32_t action_id) const;
};

// Immutable view of the control-plane contract of a Program.
class P4Info {
 public:
  // ID block prefixes matching p4c's conventions.
  static constexpr std::uint32_t kTableIdBase = 0x02000000;
  static constexpr std::uint32_t kActionIdBase = 0x01000000;

  P4Info() = default;

  // Derives P4Info from a validated program.
  static P4Info FromProgram(const Program& program);

  const std::vector<TableInfo>& tables() const { return tables_; }
  const std::vector<ActionInfo>& actions() const { return actions_; }

  const TableInfo* FindTable(std::uint32_t table_id) const;
  const TableInfo* FindTableByName(const std::string& name) const;
  const ActionInfo* FindAction(std::uint32_t action_id) const;
  const ActionInfo* FindActionByName(const std::string& name) const;

  // Structural fingerprint, equal iff derived from structurally equal
  // programs; used for cache keys and config-change detection.
  std::uint64_t fingerprint() const { return fingerprint_; }

  // The program name this P4Info was derived from (role instantiation).
  const std::string& program_name() const { return program_name_; }

 private:
  std::string program_name_;
  std::vector<TableInfo> tables_;
  std::vector<ActionInfo> actions_;
  std::map<std::uint32_t, std::size_t> table_index_;
  std::map<std::string, std::size_t> table_name_index_;
  std::map<std::uint32_t, std::size_t> action_index_;
  std::map<std::string, std::size_t> action_name_index_;
  std::uint64_t fingerprint_ = 0;
};

}  // namespace switchv::p4ir

#endif  // SWITCHV_P4IR_P4INFO_H_
