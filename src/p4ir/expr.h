// Expression trees for the P4 model IR.
//
// Expressions appear in pipeline conditionals (e.g. `if
// (headers.ipv4.isValid())`) and in action bodies (right-hand sides of field
// assignments). All values are fixed-width bit vectors; boolean results have
// width 1. This mirrors the fragment of P4-16 the paper's models use — no
// header stacks, unions, registers, or varbits (§5 "Limitations").
#ifndef SWITCHV_P4IR_EXPR_H_
#define SWITCHV_P4IR_EXPR_H_

#include <string>
#include <vector>

#include "util/bitstring.h"

namespace switchv::p4ir {

enum class UnaryOp {
  kLogicalNot,  // width-1 operand, width-1 result
  kBitNot,      // bitwise complement, preserves width
};

enum class BinaryOp {
  // Comparisons: any equal-width operands, width-1 result.
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  // Logical: width-1 operands, width-1 result.
  kAnd,
  kOr,
  // Bitwise / arithmetic: equal-width operands, same-width result.
  kBitAnd,
  kBitOr,
  kBitXor,
  kAdd,
  kSub,
};

// An immutable expression tree node. Construct via the factory functions;
// trees are value types (copyable), which keeps program objects easy to
// clone for differential configurations.
class Expr {
 public:
  enum class Kind {
    kConstant,  // literal value
    kField,     // header or metadata field, by fully-qualified name
    kParam,     // action parameter, by name (only valid inside action bodies)
    kValid,     // header validity bit, by header name; width 1
    kUnary,
    kBinary,
  };

  // Factories.
  static Expr Constant(BitString value);
  static Expr ConstantU(uint128 value, int width);
  static Expr Field(std::string name, int width);
  static Expr Param(std::string name, int width);
  static Expr Valid(std::string header);
  static Expr Unary(UnaryOp op, Expr operand);
  static Expr Binary(BinaryOp op, Expr lhs, Expr rhs);

  // Convenience composers.
  static Expr Not(Expr e) { return Unary(UnaryOp::kLogicalNot, std::move(e)); }
  static Expr Eq(Expr a, Expr b) {
    return Binary(BinaryOp::kEq, std::move(a), std::move(b));
  }
  static Expr Ne(Expr a, Expr b) {
    return Binary(BinaryOp::kNe, std::move(a), std::move(b));
  }
  static Expr And(Expr a, Expr b) {
    return Binary(BinaryOp::kAnd, std::move(a), std::move(b));
  }
  static Expr Or(Expr a, Expr b) {
    return Binary(BinaryOp::kOr, std::move(a), std::move(b));
  }

  Kind kind() const { return kind_; }
  // Result width in bits (1 for booleans).
  int width() const { return width_; }
  // Constant value; precondition: kind() == kConstant.
  const BitString& constant() const { return constant_; }
  // Field/param/header name; precondition: kind is kField/kParam/kValid.
  const std::string& name() const { return name_; }
  UnaryOp unary_op() const { return unary_op_; }
  BinaryOp binary_op() const { return binary_op_; }
  // Children; one for unary, two for binary.
  const std::vector<Expr>& children() const { return children_; }

  // Human-readable rendering for incident reports and debugging.
  std::string ToString() const;

 private:
  Expr() = default;

  Kind kind_ = Kind::kConstant;
  int width_ = 1;
  BitString constant_;
  std::string name_;
  UnaryOp unary_op_ = UnaryOp::kLogicalNot;
  BinaryOp binary_op_ = BinaryOp::kEq;
  std::vector<Expr> children_;
};

}  // namespace switchv::p4ir

#endif  // SWITCHV_P4IR_EXPR_H_
