// Compilation of entry-restriction constraints to BDDs, plus sampling of
// constraint-compliant and constraint-violating entries (paper §7).
//
// Every key of the table is encoded as BDD variables (MSB-first):
//   * value bits (all kinds),
//   * mask bits (ternary/optional),
//   * an 8-bit prefix length (lpm),
// plus 16 priority bits. The compiled BDD is the conjunction of the parsed
// constraint and the P4Runtime well-formedness rules, so every sample is a
// syntactically canonical entry:
//   * ternary/optional: value & ~mask == 0 (canonical form),
//   * optional: mask is all-zeros or all-ones (wildcard or exact),
//   * lpm: prefix_length <= width and value bits outside the prefix are 0.
#ifndef SWITCHV_P4CONSTRAINTS_CONSTRAINT_BDD_H_
#define SWITCHV_P4CONSTRAINTS_CONSTRAINT_BDD_H_

#include <map>
#include <memory>
#include <string>

#include "p4constraints/ast.h"
#include "p4constraints/bdd.h"
#include "p4constraints/eval.h"
#include "p4constraints/parser.h"
#include "util/rng.h"
#include "util/status.h"

namespace switchv::p4constraints {

// Variable layout of one table's keys within the BDD.
//
// Variable ordering is chosen for small BDDs: a ternary/optional key's
// value and mask bits are *interleaved* (the canonical-form constraint
// value_i -> mask_i then touches adjacent variables), and an lpm key's
// prefix-length bits precede its value bits (each value bit's constraint
// mentions only the 8 prefix bits plus itself). A naive contiguous layout
// makes the well-formedness BDD of a 128-bit ternary key exponential.
struct BitLayout {
  struct KeyBits {
    int width = 0;
    KeySchema::Kind kind = KeySchema::Kind::kExact;
    // Variable indices, MSB first. Empty vectors when not applicable.
    std::vector<std::uint32_t> value_vars;
    std::vector<std::uint32_t> mask_vars;
    std::vector<std::uint32_t> prefix_vars;
  };

  static constexpr int kPrefixBits = 8;
  static constexpr int kPriorityBits = 16;

  std::map<std::string, KeyBits> keys;
  std::vector<std::uint32_t> priority_vars;
  std::uint32_t num_vars = 0;

  static BitLayout ForSchema(const TableSchema& schema);
};

// A compiled constraint over one table, ready for sampling. Thread-hostile
// (owns a mutable BddManager); create one per fuzzing thread.
class ConstraintBdd {
 public:
  // Parses (if needed) and compiles `constraint` for `schema`. An empty
  // constraint compiles to TRUE (only well-formedness remains).
  static StatusOr<ConstraintBdd> Compile(std::string_view constraint,
                                         const TableSchema& schema);

  // Samples an entry satisfying both the constraint and well-formedness.
  // Returns NOT_FOUND if the constraint is unsatisfiable.
  StatusOr<EntryValuation> SampleSatisfying(Rng& rng);

  // Samples a well-formed entry *violating* the constraint, preferring the
  // near-miss region reached by flipping a random internal BDD node (§7).
  // Returns NOT_FOUND if the constraint is a tautology over well-formed
  // entries (nothing violates it).
  StatusOr<EntryValuation> SampleViolating(Rng& rng);

  const BitLayout& layout() const { return layout_; }
  std::size_t node_count() const { return manager_->node_count(); }

 private:
  ConstraintBdd(std::unique_ptr<BddManager> manager, BitLayout layout,
                TableSchema schema, BddRef constraint_root,
                BddRef wellformed_root)
      : manager_(std::move(manager)),
        layout_(std::move(layout)),
        schema_(std::move(schema)),
        constraint_root_(constraint_root),
        wellformed_root_(wellformed_root) {}

  EntryValuation Decode(const std::vector<bool>& assignment) const;

  std::unique_ptr<BddManager> manager_;
  BitLayout layout_;
  TableSchema schema_;
  BddRef constraint_root_;  // constraint ∧ well-formedness
  BddRef wellformed_root_;  // well-formedness only
  // Lazily built sampling state.
  BddRef violating_ = BddManager::kFalse;
  std::vector<BddRef> flip_nodes_;
};

}  // namespace switchv::p4constraints

#endif  // SWITCHV_P4CONSTRAINTS_CONSTRAINT_BDD_H_
