// A reduced ordered binary decision diagram (ROBDD) engine.
//
// Implements the mechanism sketched in the paper's §7: "transform every
// constraint in the P4 program into a BDD over the bits of the header and
// metadata fields referred to in that constraint. We can efficiently sample
// solutions to this BDD to ensure that our valid tests are
// constraint-compliant, and randomly mutate one of the nodes of the BDD to
// generate (otherwise valid) table entries that violate the corresponding
// constraint."
#ifndef SWITCHV_P4CONSTRAINTS_BDD_H_
#define SWITCHV_P4CONSTRAINTS_BDD_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "util/rng.h"

namespace switchv::p4constraints {

// Node references: 0 is the FALSE terminal, 1 the TRUE terminal; larger
// values index internal nodes. Nodes are hash-consed (unique table), so
// structural equality is reference equality.
using BddRef = std::uint32_t;

class BddManager {
 public:
  static constexpr BddRef kFalse = 0;
  static constexpr BddRef kTrue = 1;

  BddManager() = default;

  // The decision variable `var` itself (true iff the bit is 1).
  BddRef Var(std::uint32_t var);

  BddRef Not(BddRef a);
  BddRef And(BddRef a, BddRef b);
  BddRef Or(BddRef a, BddRef b);
  BddRef Xor(BddRef a, BddRef b);
  BddRef Implies(BddRef a, BddRef b) { return Or(Not(a), b); }
  BddRef Iff(BddRef a, BddRef b) { return Not(Xor(a, b)); }

  bool IsTerminal(BddRef r) const { return r <= kTrue; }

  // Number of satisfying assignments over `num_vars` variables. Computed in
  // long double: exact for the variable counts in practice, and only used
  // to weight sampling.
  long double SatCount(BddRef root, std::uint32_t num_vars);

  // Samples a uniformly random satisfying assignment over `num_vars`
  // variables. Returns false iff the BDD is unsatisfiable.
  bool Sample(BddRef root, std::uint32_t num_vars, Rng& rng,
              std::vector<bool>& assignment);

  // All internal (non-terminal) nodes reachable from `root`.
  std::vector<BddRef> ReachableInternalNodes(BddRef root);

  // Rebuilds the function with the lo/hi branches of `victim` swapped — the
  // §7 node mutation producing a near-miss of the original constraint.
  BddRef FlipNode(BddRef root, BddRef victim);

  // Total nodes allocated (diagnostics / bench counters).
  std::size_t node_count() const { return nodes_.size(); }

 private:
  struct Node {
    std::uint32_t var;
    BddRef lo;
    BddRef hi;
  };

  BddRef MakeNode(std::uint32_t var, BddRef lo, BddRef hi);
  BddRef Ite(BddRef f, BddRef g, BddRef h);
  std::uint32_t VarOf(BddRef r) const;

  // nodes_[0..1] are sentinel terminals.
  std::vector<Node> nodes_ = {{UINT32_MAX, 0, 0}, {UINT32_MAX, 1, 1}};
  std::map<std::tuple<std::uint32_t, BddRef, BddRef>, BddRef> unique_;
  std::map<std::tuple<BddRef, BddRef, BddRef>, BddRef> ite_cache_;
  std::unordered_map<std::uint64_t, long double> count_cache_;
  std::uint32_t count_cache_vars_ = 0;
};

}  // namespace switchv::p4constraints

#endif  // SWITCHV_P4CONSTRAINTS_BDD_H_
