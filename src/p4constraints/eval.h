// Concrete evaluation of constraints against a candidate table entry.
//
// Used in three places: the switch-under-test's P4Runtime layer enforces
// constraints at write time (as PINS does), the fuzzer oracle classifies
// generated requests as constraint-compliant or not, and tests cross-check
// the BDD engine against this reference semantics.
#ifndef SWITCHV_P4CONSTRAINTS_EVAL_H_
#define SWITCHV_P4CONSTRAINTS_EVAL_H_

#include <map>
#include <string>

#include "p4constraints/ast.h"
#include "util/status.h"

namespace switchv::p4constraints {

// The value of one match key within an entry. An omitted ternary/optional
// key is a wildcard: present=false, value=0, mask=0 (P4Runtime semantics).
struct KeyValuation {
  bool present = false;
  uint128 value = 0;
  uint128 mask = 0;     // exact: all-ones; lpm: prefix mask
  int prefix_len = 0;   // lpm only
};

struct EntryValuation {
  std::map<std::string, KeyValuation> keys;
  int priority = 0;
};

// Evaluates a parsed, type-checked constraint. Fails only on internal
// inconsistencies (e.g. a key missing from the valuation map entirely).
StatusOr<bool> EvalConstraint(const CExpr& expr,
                              const EntryValuation& entry);

}  // namespace switchv::p4constraints

#endif  // SWITCHV_P4CONSTRAINTS_EVAL_H_
