#include "p4constraints/bdd.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace switchv::p4constraints {

std::uint32_t BddManager::VarOf(BddRef r) const { return nodes_[r].var; }

BddRef BddManager::MakeNode(std::uint32_t var, BddRef lo, BddRef hi) {
  if (lo == hi) return lo;  // reduction rule
  const auto key = std::make_tuple(var, lo, hi);
  auto it = unique_.find(key);
  if (it != unique_.end()) return it->second;
  nodes_.push_back(Node{var, lo, hi});
  const BddRef ref = static_cast<BddRef>(nodes_.size() - 1);
  unique_.emplace(key, ref);
  return ref;
}

BddRef BddManager::Var(std::uint32_t var) {
  return MakeNode(var, kFalse, kTrue);
}

BddRef BddManager::Ite(BddRef f, BddRef g, BddRef h) {
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  if (g == kTrue && h == kFalse) return f;
  const auto key = std::make_tuple(f, g, h);
  auto it = ite_cache_.find(key);
  if (it != ite_cache_.end()) return it->second;

  auto var_or_max = [&](BddRef r) {
    return IsTerminal(r) ? UINT32_MAX : VarOf(r);
  };
  const std::uint32_t top =
      std::min({var_or_max(f), var_or_max(g), var_or_max(h)});
  auto cofactor = [&](BddRef r, bool positive) {
    if (IsTerminal(r) || VarOf(r) != top) return r;
    return positive ? nodes_[r].hi : nodes_[r].lo;
  };
  const BddRef hi =
      Ite(cofactor(f, true), cofactor(g, true), cofactor(h, true));
  const BddRef lo =
      Ite(cofactor(f, false), cofactor(g, false), cofactor(h, false));
  const BddRef result = MakeNode(top, lo, hi);
  ite_cache_.emplace(key, result);
  return result;
}

BddRef BddManager::Not(BddRef a) { return Ite(a, kFalse, kTrue); }
BddRef BddManager::And(BddRef a, BddRef b) { return Ite(a, b, kFalse); }
BddRef BddManager::Or(BddRef a, BddRef b) { return Ite(a, kTrue, b); }
BddRef BddManager::Xor(BddRef a, BddRef b) { return Ite(a, Not(b), b); }

// CountBelow(r) = satisfying assignments of variables in [VarOf(r),
// num_vars) under r, where terminals sit at depth num_vars (so TRUE counts
// 1 and FALSE 0). The full SatCount scales by the variables above the root.
namespace {
constexpr std::uint64_t CacheKey(BddRef r) { return r; }
}  // namespace

long double BddManager::SatCount(BddRef root, std::uint32_t num_vars) {
  if (count_cache_vars_ != num_vars) {
    count_cache_.clear();
    count_cache_vars_ = num_vars;
  }
  auto depth = [&](BddRef r) {
    return IsTerminal(r) ? num_vars : VarOf(r);
  };
  auto count_below = [&](auto&& self, BddRef r) -> long double {
    if (r == kFalse) return 0.0L;
    if (r == kTrue) return 1.0L;
    auto it = count_cache_.find(CacheKey(r));
    if (it != count_cache_.end()) return it->second;
    const std::uint32_t var = VarOf(r);
    const BddRef lo = nodes_[r].lo;
    const BddRef hi = nodes_[r].hi;
    const long double value =
        std::exp2l(static_cast<long double>(depth(lo) - var - 1)) *
            self(self, lo) +
        std::exp2l(static_cast<long double>(depth(hi) - var - 1)) *
            self(self, hi);
    count_cache_.emplace(CacheKey(r), value);
    return value;
  };
  return std::exp2l(static_cast<long double>(depth(root))) *
         count_below(count_below, root);
}

bool BddManager::Sample(BddRef root, std::uint32_t num_vars, Rng& rng,
                        std::vector<bool>& assignment) {
  if (root == kFalse) return false;
  // Prime the memoized per-node counts.
  SatCount(root, num_vars);
  assignment.assign(num_vars, false);
  auto depth = [&](BddRef r) {
    return IsTerminal(r) ? num_vars : VarOf(r);
  };
  auto count_below = [&](BddRef r) -> long double {
    if (r == kFalse) return 0.0L;
    if (r == kTrue) return 1.0L;
    return count_cache_.at(CacheKey(r));
  };
  auto fill_free = [&](std::uint32_t from, std::uint32_t to) {
    for (std::uint32_t v = from; v < to; ++v) assignment[v] = rng.Chance(0.5);
  };
  std::uint32_t next_var = 0;
  BddRef node = root;
  while (!IsTerminal(node)) {
    const std::uint32_t var = VarOf(node);
    fill_free(next_var, var);
    const BddRef lo = nodes_[node].lo;
    const BddRef hi = nodes_[node].hi;
    auto weight = [&](BddRef r) -> long double {
      if (r == kFalse) return 0.0L;
      return std::exp2l(static_cast<long double>(depth(r) - var - 1)) *
             count_below(r);
    };
    const long double w_lo = weight(lo);
    const long double w_hi = weight(hi);
    const long double total = w_lo + w_hi;
    const bool take_hi =
        total <= 0.0L ? (w_hi > 0.0L)
                      : rng.Chance(static_cast<double>(w_hi / total));
    assignment[var] = take_hi;
    node = take_hi ? hi : lo;
    next_var = var + 1;
  }
  if (node == kFalse) return false;
  fill_free(next_var, num_vars);
  return true;
}

std::vector<BddRef> BddManager::ReachableInternalNodes(BddRef root) {
  std::vector<BddRef> out;
  std::set<BddRef> seen;
  std::vector<BddRef> stack = {root};
  while (!stack.empty()) {
    const BddRef r = stack.back();
    stack.pop_back();
    if (IsTerminal(r) || !seen.insert(r).second) continue;
    out.push_back(r);
    stack.push_back(nodes_[r].lo);
    stack.push_back(nodes_[r].hi);
  }
  return out;
}

BddRef BddManager::FlipNode(BddRef root, BddRef victim) {
  std::map<BddRef, BddRef> memo;
  auto rebuild = [&](auto&& self, BddRef r) -> BddRef {
    if (IsTerminal(r)) return r;
    auto it = memo.find(r);
    if (it != memo.end()) return it->second;
    BddRef lo = self(self, nodes_[r].lo);
    BddRef hi = self(self, nodes_[r].hi);
    if (r == victim) std::swap(lo, hi);
    const BddRef result = MakeNode(nodes_[r].var, lo, hi);
    memo.emplace(r, result);
    return result;
  };
  return rebuild(rebuild, root);
}

}  // namespace switchv::p4constraints
