#include "p4constraints/constraint_bdd.h"

#include <algorithm>

namespace switchv::p4constraints {

BitLayout BitLayout::ForSchema(const TableSchema& schema) {
  BitLayout layout;
  std::uint32_t next = 0;
  for (const KeySchema& key : schema.keys) {
    KeyBits bits;
    bits.kind = key.kind;
    bits.width = key.width;
    switch (key.kind) {
      case KeySchema::Kind::kExact:
        for (int i = 0; i < key.width; ++i) bits.value_vars.push_back(next++);
        break;
      case KeySchema::Kind::kTernary:
      case KeySchema::Kind::kOptional:
        // Interleave value and mask bits (see header).
        for (int i = 0; i < key.width; ++i) {
          bits.value_vars.push_back(next++);
          bits.mask_vars.push_back(next++);
        }
        break;
      case KeySchema::Kind::kLpm:
        // Prefix-length bits first, then value bits (see header).
        for (int i = 0; i < kPrefixBits; ++i) {
          bits.prefix_vars.push_back(next++);
        }
        for (int i = 0; i < key.width; ++i) bits.value_vars.push_back(next++);
        break;
    }
    layout.keys.emplace(key.name, bits);
  }
  for (int i = 0; i < kPriorityBits; ++i) {
    layout.priority_vars.push_back(next++);
  }
  layout.num_vars = next;
  return layout;
}

namespace {

// A bit-vector of BDD functions, MSB first.
using BitVec = std::vector<BddRef>;

BitVec ConstBits(uint128 value, int width) {
  BitVec bits(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    const bool set = (value >> (width - 1 - i)) & 1;
    bits[static_cast<std::size_t>(i)] =
        set ? BddManager::kTrue : BddManager::kFalse;
  }
  return bits;
}

BitVec VarBits(BddManager& m, const std::vector<std::uint32_t>& vars) {
  BitVec bits;
  bits.reserve(vars.size());
  for (std::uint32_t v : vars) bits.push_back(m.Var(v));
  return bits;
}

BitVec ZeroExtend(BitVec bits, std::size_t width) {
  if (bits.size() >= width) return bits;
  BitVec out(width - bits.size(), BddManager::kFalse);
  out.insert(out.end(), bits.begin(), bits.end());
  return out;
}

BddRef EqVec(BddManager& m, const BitVec& a, const BitVec& b) {
  BddRef acc = BddManager::kTrue;
  for (std::size_t i = a.size(); i-- > 0;) {
    acc = m.And(acc, m.Iff(a[i], b[i]));
  }
  return acc;
}

// a < b, unsigned, MSB-first.
BddRef LtVec(BddManager& m, const BitVec& a, const BitVec& b) {
  BddRef result = BddManager::kFalse;  // built LSB->MSB
  for (std::size_t i = a.size(); i-- > 0;) {
    const BddRef lt_here = m.And(m.Not(a[i]), b[i]);
    const BddRef eq_here = m.Iff(a[i], b[i]);
    result = m.Or(lt_here, m.And(eq_here, result));
  }
  return result;
}

class Compiler {
 public:
  Compiler(BddManager& m, const BitLayout& layout) : m_(m), layout_(layout) {}

  StatusOr<BddRef> CompileBool(const CExpr& e) {
    switch (e.kind) {
      case CExpr::Kind::kBoolLiteral:
        return e.bool_value ? BddManager::kTrue : BddManager::kFalse;
      case CExpr::Kind::kNot: {
        SWITCHV_ASSIGN_OR_RETURN(BddRef a, CompileBool(e.children[0]));
        return m_.Not(a);
      }
      case CExpr::Kind::kAnd: {
        SWITCHV_ASSIGN_OR_RETURN(BddRef a, CompileBool(e.children[0]));
        SWITCHV_ASSIGN_OR_RETURN(BddRef b, CompileBool(e.children[1]));
        return m_.And(a, b);
      }
      case CExpr::Kind::kOr: {
        SWITCHV_ASSIGN_OR_RETURN(BddRef a, CompileBool(e.children[0]));
        SWITCHV_ASSIGN_OR_RETURN(BddRef b, CompileBool(e.children[1]));
        return m_.Or(a, b);
      }
      case CExpr::Kind::kImplies: {
        SWITCHV_ASSIGN_OR_RETURN(BddRef a, CompileBool(e.children[0]));
        SWITCHV_ASSIGN_OR_RETURN(BddRef b, CompileBool(e.children[1]));
        return m_.Implies(a, b);
      }
      case CExpr::Kind::kEq:
      case CExpr::Kind::kNe:
      case CExpr::Kind::kLt:
      case CExpr::Kind::kLe:
      case CExpr::Kind::kGt:
      case CExpr::Kind::kGe: {
        SWITCHV_ASSIGN_OR_RETURN(BitVec a, CompileInt(e.children[0]));
        SWITCHV_ASSIGN_OR_RETURN(BitVec b, CompileInt(e.children[1]));
        const std::size_t width = std::max(a.size(), b.size());
        a = ZeroExtend(std::move(a), width);
        b = ZeroExtend(std::move(b), width);
        switch (e.kind) {
          case CExpr::Kind::kEq: return EqVec(m_, a, b);
          case CExpr::Kind::kNe: return m_.Not(EqVec(m_, a, b));
          case CExpr::Kind::kLt: return LtVec(m_, a, b);
          case CExpr::Kind::kLe: return m_.Not(LtVec(m_, b, a));
          case CExpr::Kind::kGt: return LtVec(m_, b, a);
          default: return m_.Not(LtVec(m_, a, b));
        }
      }
      default:
        return InternalError("expected boolean constraint expression");
    }
  }

 private:
  StatusOr<BitVec> CompileInt(const CExpr& e) {
    switch (e.kind) {
      case CExpr::Kind::kNumber: {
        int width = 1;
        while (width < 128 && (e.number >> width) != 0) ++width;
        return ConstBits(e.number, width);
      }
      case CExpr::Kind::kPriority:
        return VarBits(m_, layout_.priority_vars);
      case CExpr::Kind::kKeyValue:
      case CExpr::Kind::kKeyMask:
      case CExpr::Kind::kKeyPrefixLen: {
        auto it = layout_.keys.find(e.key);
        if (it == layout_.keys.end()) {
          return InternalError("layout missing key: " + e.key);
        }
        const BitLayout::KeyBits& bits = it->second;
        if (e.kind == CExpr::Kind::kKeyValue) {
          return VarBits(m_, bits.value_vars);
        }
        if (e.kind == CExpr::Kind::kKeyMask) {
          if (bits.mask_vars.empty()) {
            // Exact keys behave as fully-masked.
            return ConstBits(LowBitMask(bits.width), bits.width);
          }
          return VarBits(m_, bits.mask_vars);
        }
        if (bits.prefix_vars.empty()) {
          return InternalError("::prefix_length on non-lpm key: " + e.key);
        }
        return VarBits(m_, bits.prefix_vars);
      }
      default:
        return InternalError("expected integer constraint expression");
    }
  }

  BddManager& m_;
  const BitLayout& layout_;
};

// The P4Runtime canonical-form rules as a BDD (see header).
BddRef WellFormedness(BddManager& m, const BitLayout& layout,
                      const TableSchema& schema) {
  BddRef acc = BddManager::kTrue;
  for (const KeySchema& key : schema.keys) {
    const BitLayout::KeyBits& bits = layout.keys.at(key.name);
    switch (key.kind) {
      case KeySchema::Kind::kExact:
        break;
      case KeySchema::Kind::kTernary: {
        // value & ~mask == 0 (adjacent variables: linear BDD).
        for (int i = 0; i < bits.width; ++i) {
          acc = m.And(acc, m.Implies(m.Var(bits.value_vars[i]),
                                     m.Var(bits.mask_vars[i])));
        }
        break;
      }
      case KeySchema::Kind::kOptional: {
        // mask all-zero (wildcard) or all-one (exact); value under mask.
        BddRef all_zero = BddManager::kTrue;
        BddRef all_one = BddManager::kTrue;
        for (int i = bits.width; i-- > 0;) {
          const BddRef msk = m.Var(bits.mask_vars[i]);
          all_zero = m.And(all_zero, m.Not(msk));
          all_one = m.And(all_one, msk);
        }
        acc = m.And(acc, m.Or(all_zero, all_one));
        for (int i = 0; i < bits.width; ++i) {
          acc = m.And(acc, m.Implies(m.Var(bits.value_vars[i]),
                                     m.Var(bits.mask_vars[i])));
        }
        break;
      }
      case KeySchema::Kind::kLpm: {
        const BitVec prefix = VarBits(m, bits.prefix_vars);
        // prefix_length <= width
        const BitVec width_const = ConstBits(
            static_cast<uint128>(bits.width), BitLayout::kPrefixBits);
        acc = m.And(acc, m.Not(LtVec(m, width_const, prefix)));
        // Value bits outside the prefix must be zero: value bit i (MSB
        // first) set implies prefix_length > i. Each conjunct touches the
        // 8 prefix bits (which precede the value bits) plus one value bit.
        for (int i = 0; i < bits.width; ++i) {
          const BitVec i_const = ConstBits(static_cast<uint128>(i),
                                           BitLayout::kPrefixBits);
          acc = m.And(acc, m.Implies(m.Var(bits.value_vars[i]),
                                     LtVec(m, i_const, prefix)));
        }
        break;
      }
    }
  }
  return acc;
}

uint128 DecodeBits(const std::vector<bool>& assignment,
                   const std::vector<std::uint32_t>& vars) {
  uint128 value = 0;
  for (std::uint32_t v : vars) {
    value = (value << 1) | (assignment[v] ? 1 : 0);
  }
  return value;
}

}  // namespace

StatusOr<ConstraintBdd> ConstraintBdd::Compile(std::string_view constraint,
                                               const TableSchema& schema) {
  auto manager = std::make_unique<BddManager>();
  BitLayout layout = BitLayout::ForSchema(schema);
  const BddRef wellformed = WellFormedness(*manager, layout, schema);
  BddRef parsed = BddManager::kTrue;
  if (!constraint.empty()) {
    SWITCHV_ASSIGN_OR_RETURN(CExpr ast, ParseConstraint(constraint, schema));
    Compiler compiler(*manager, layout);
    SWITCHV_ASSIGN_OR_RETURN(parsed, compiler.CompileBool(ast));
  }
  const BddRef root = manager->And(parsed, wellformed);
  return ConstraintBdd(std::move(manager), std::move(layout), schema, root,
                       wellformed);
}

EntryValuation ConstraintBdd::Decode(
    const std::vector<bool>& assignment) const {
  EntryValuation entry;
  entry.priority =
      static_cast<int>(DecodeBits(assignment, layout_.priority_vars));
  for (const KeySchema& key : schema_.keys) {
    const BitLayout::KeyBits& bits = layout_.keys.at(key.name);
    KeyValuation kv;
    kv.value = DecodeBits(assignment, bits.value_vars);
    switch (key.kind) {
      case KeySchema::Kind::kExact:
        kv.mask = LowBitMask(bits.width);
        kv.present = true;
        break;
      case KeySchema::Kind::kTernary:
      case KeySchema::Kind::kOptional:
        kv.mask = DecodeBits(assignment, bits.mask_vars);
        kv.present = kv.mask != 0;
        break;
      case KeySchema::Kind::kLpm: {
        kv.prefix_len =
            static_cast<int>(DecodeBits(assignment, bits.prefix_vars));
        const uint128 ones = LowBitMask(kv.prefix_len);
        kv.mask = kv.prefix_len == 0
                      ? 0
                      : (ones << (bits.width - kv.prefix_len)) &
                            LowBitMask(bits.width);
        kv.present = kv.prefix_len != 0;
        break;
      }
    }
    entry.keys.emplace(key.name, kv);
  }
  return entry;
}

StatusOr<EntryValuation> ConstraintBdd::SampleSatisfying(Rng& rng) {
  std::vector<bool> assignment;
  if (!manager_->Sample(constraint_root_, layout_.num_vars, rng,
                        assignment)) {
    return NotFoundError("constraint is unsatisfiable");
  }
  return Decode(assignment);
}

StatusOr<EntryValuation> ConstraintBdd::SampleViolating(Rng& rng) {
  // Violating region: well-formed but not constraint-satisfying.
  if (violating_ == BddManager::kFalse) {
    violating_ =
        manager_->And(wellformed_root_, manager_->Not(constraint_root_));
  }
  if (violating_ == BddManager::kFalse) {
    return NotFoundError("constraint is a tautology; nothing violates it");
  }
  // Prefer the near-miss region produced by a random node flip.
  if (flip_nodes_.empty()) {
    flip_nodes_ = manager_->ReachableInternalNodes(constraint_root_);
    // Bound the candidate set: huge BDDs make per-sample flips expensive.
    if (flip_nodes_.size() > 512) flip_nodes_.resize(512);
  }
  if (!flip_nodes_.empty()) {
    for (int attempt = 0; attempt < 4; ++attempt) {
      const BddRef victim = rng.Pick(flip_nodes_);
      const BddRef flipped = manager_->FlipNode(constraint_root_, victim);
      const BddRef region = manager_->And(flipped, violating_);
      std::vector<bool> assignment;
      if (manager_->Sample(region, layout_.num_vars, rng, assignment)) {
        return Decode(assignment);
      }
    }
  }
  std::vector<bool> assignment;
  if (!manager_->Sample(violating_, layout_.num_vars, rng, assignment)) {
    return NotFoundError("violating region unexpectedly empty");
  }
  return Decode(assignment);
}

}  // namespace switchv::p4constraints
