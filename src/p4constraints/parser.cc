#include "p4constraints/parser.h"

#include <cctype>

namespace switchv::p4constraints {

const KeySchema* TableSchema::FindKey(std::string_view name) const {
  for (const KeySchema& k : keys) {
    if (k.name == name) return &k;
  }
  return nullptr;
}

namespace {

enum class TokenKind {
  kEnd,
  kIdent,
  kNumber,
  kLParen,
  kRParen,
  kNot,       // !
  kAnd,       // &&
  kOr,        // ||
  kImplies,   // ->
  kEq,        // ==
  kNe,        // !=
  kLt,
  kLe,
  kGt,
  kGe,
  kColonColon,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   // ident
  uint128 number = 0; // number
};

class Lexer {
 public:
  explicit Lexer(std::string_view source) : source_(source) {}

  StatusOr<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    while (pos_ < source_.size()) {
      const char c = source_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == ';') {
        ++pos_;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        SWITCHV_ASSIGN_OR_RETURN(Token t, LexNumber());
        tokens.push_back(std::move(t));
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        tokens.push_back(LexIdent());
        continue;
      }
      SWITCHV_ASSIGN_OR_RETURN(Token t, LexOperator());
      tokens.push_back(std::move(t));
    }
    tokens.push_back(Token{});
    return tokens;
  }

 private:
  StatusOr<Token> LexNumber() {
    Token t;
    t.kind = TokenKind::kNumber;
    // IPv4 literals ("10.0.0.1") are sugar for their 32-bit value, as in
    // the upstream p4-constraints language.
    {
      std::size_t end = pos_;
      int dots = 0;
      while (end < source_.size() &&
             (std::isdigit(static_cast<unsigned char>(source_[end])) ||
              source_[end] == '.')) {
        if (source_[end] == '.') ++dots;
        ++end;
      }
      if (dots == 3) {
        auto addr = BitString::FromIpv4(source_.substr(pos_, end - pos_));
        if (!addr.ok()) return addr.status();
        t.number = addr->value();
        pos_ = end;
        return t;
      }
    }
    if (source_.substr(pos_).starts_with("0x") ||
        source_.substr(pos_).starts_with("0X")) {
      pos_ += 2;
      bool any = false;
      while (pos_ < source_.size() &&
             std::isxdigit(static_cast<unsigned char>(source_[pos_]))) {
        const char lower = static_cast<char>(
            std::tolower(static_cast<unsigned char>(source_[pos_])));
        const unsigned digit =
            std::isdigit(static_cast<unsigned char>(lower))
                ? static_cast<unsigned>(lower - '0')
                : static_cast<unsigned>(lower - 'a' + 10);
        t.number = (t.number << 4) | digit;
        ++pos_;
        any = true;
      }
      if (!any) return InvalidArgumentError("bad hex literal");
      return t;
    }
    while (pos_ < source_.size() &&
           std::isdigit(static_cast<unsigned char>(source_[pos_]))) {
      t.number = t.number * 10 +
                 static_cast<unsigned>(source_[pos_] - '0');
      ++pos_;
    }
    return t;
  }

  Token LexIdent() {
    Token t;
    t.kind = TokenKind::kIdent;
    while (pos_ < source_.size() &&
           (std::isalnum(static_cast<unsigned char>(source_[pos_])) ||
            source_[pos_] == '_' || source_[pos_] == '.')) {
      t.text.push_back(source_[pos_]);
      ++pos_;
    }
    return t;
  }

  StatusOr<Token> LexOperator() {
    auto two = source_.substr(pos_, 2);
    Token t;
    if (two == "&&") { t.kind = TokenKind::kAnd; pos_ += 2; return t; }
    if (two == "||") { t.kind = TokenKind::kOr; pos_ += 2; return t; }
    if (two == "->") { t.kind = TokenKind::kImplies; pos_ += 2; return t; }
    if (two == "==") { t.kind = TokenKind::kEq; pos_ += 2; return t; }
    if (two == "!=") { t.kind = TokenKind::kNe; pos_ += 2; return t; }
    if (two == "<=") { t.kind = TokenKind::kLe; pos_ += 2; return t; }
    if (two == ">=") { t.kind = TokenKind::kGe; pos_ += 2; return t; }
    if (two == "::") { t.kind = TokenKind::kColonColon; pos_ += 2; return t; }
    const char c = source_[pos_];
    switch (c) {
      case '(': t.kind = TokenKind::kLParen; break;
      case ')': t.kind = TokenKind::kRParen; break;
      case '!': t.kind = TokenKind::kNot; break;
      case '<': t.kind = TokenKind::kLt; break;
      case '>': t.kind = TokenKind::kGt; break;
      default:
        return InvalidArgumentError(std::string("unexpected character '") +
                                    c + "' in constraint");
    }
    ++pos_;
    return t;
  }

  std::string_view source_;
  std::size_t pos_ = 0;
};

class Parser {
 public:
  Parser(std::vector<Token> tokens, const TableSchema& schema)
      : tokens_(std::move(tokens)), schema_(schema) {}

  StatusOr<CExpr> Parse() {
    SWITCHV_ASSIGN_OR_RETURN(CExpr expr, ParseImplies());
    if (Peek().kind != TokenKind::kEnd) {
      return InvalidArgumentError("trailing tokens in constraint");
    }
    if (!expr.IsBoolean()) {
      return InvalidArgumentError("constraint must be boolean-valued");
    }
    return expr;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  Token Next() { return tokens_[pos_++]; }
  bool Eat(TokenKind kind) {
    if (Peek().kind == kind) {
      ++pos_;
      return true;
    }
    return false;
  }

  StatusOr<CExpr> ParseImplies() {
    SWITCHV_ASSIGN_OR_RETURN(CExpr lhs, ParseOr());
    if (Eat(TokenKind::kImplies)) {
      SWITCHV_ASSIGN_OR_RETURN(CExpr rhs, ParseImplies());
      SWITCHV_RETURN_IF_ERROR(RequireBoolean(lhs));
      SWITCHV_RETURN_IF_ERROR(RequireBoolean(rhs));
      CExpr node;
      node.kind = CExpr::Kind::kImplies;
      node.children = {std::move(lhs), std::move(rhs)};
      return node;
    }
    return lhs;
  }

  StatusOr<CExpr> ParseOr() {
    SWITCHV_ASSIGN_OR_RETURN(CExpr lhs, ParseAnd());
    while (Eat(TokenKind::kOr)) {
      SWITCHV_ASSIGN_OR_RETURN(CExpr rhs, ParseAnd());
      SWITCHV_RETURN_IF_ERROR(RequireBoolean(lhs));
      SWITCHV_RETURN_IF_ERROR(RequireBoolean(rhs));
      CExpr node;
      node.kind = CExpr::Kind::kOr;
      node.children = {std::move(lhs), std::move(rhs)};
      lhs = std::move(node);
    }
    return lhs;
  }

  StatusOr<CExpr> ParseAnd() {
    SWITCHV_ASSIGN_OR_RETURN(CExpr lhs, ParseNot());
    while (Eat(TokenKind::kAnd)) {
      SWITCHV_ASSIGN_OR_RETURN(CExpr rhs, ParseNot());
      SWITCHV_RETURN_IF_ERROR(RequireBoolean(lhs));
      SWITCHV_RETURN_IF_ERROR(RequireBoolean(rhs));
      CExpr node;
      node.kind = CExpr::Kind::kAnd;
      node.children = {std::move(lhs), std::move(rhs)};
      lhs = std::move(node);
    }
    return lhs;
  }

  StatusOr<CExpr> ParseNot() {
    if (Eat(TokenKind::kNot)) {
      SWITCHV_ASSIGN_OR_RETURN(CExpr operand, ParseNot());
      SWITCHV_RETURN_IF_ERROR(RequireBoolean(operand));
      CExpr node;
      node.kind = CExpr::Kind::kNot;
      node.children = {std::move(operand)};
      return node;
    }
    return ParseComparison();
  }

  StatusOr<CExpr> ParseComparison() {
    SWITCHV_ASSIGN_OR_RETURN(CExpr lhs, ParseAtom());
    CExpr::Kind op;
    switch (Peek().kind) {
      case TokenKind::kEq: op = CExpr::Kind::kEq; break;
      case TokenKind::kNe: op = CExpr::Kind::kNe; break;
      case TokenKind::kLt: op = CExpr::Kind::kLt; break;
      case TokenKind::kLe: op = CExpr::Kind::kLe; break;
      case TokenKind::kGt: op = CExpr::Kind::kGt; break;
      case TokenKind::kGe: op = CExpr::Kind::kGe; break;
      default:
        return lhs;
    }
    Next();
    SWITCHV_ASSIGN_OR_RETURN(CExpr rhs, ParseAtom());
    if (lhs.IsBoolean() || rhs.IsBoolean()) {
      return InvalidArgumentError("comparison operands must be integers");
    }
    CExpr node;
    node.kind = op;
    node.children = {std::move(lhs), std::move(rhs)};
    return node;
  }

  StatusOr<CExpr> ParseAtom() {
    if (Eat(TokenKind::kLParen)) {
      SWITCHV_ASSIGN_OR_RETURN(CExpr inner, ParseImplies());
      if (!Eat(TokenKind::kRParen)) {
        return InvalidArgumentError("missing ')'");
      }
      return inner;
    }
    if (Peek().kind == TokenKind::kNumber) {
      CExpr node;
      node.kind = CExpr::Kind::kNumber;
      node.number = Next().number;
      return node;
    }
    if (Peek().kind != TokenKind::kIdent) {
      return InvalidArgumentError("expected identifier or literal");
    }
    Token ident = Next();
    if (ident.text == "true" || ident.text == "false") {
      CExpr node;
      node.kind = CExpr::Kind::kBoolLiteral;
      node.bool_value = ident.text == "true";
      return node;
    }
    if (ident.text == "priority") {
      CExpr node;
      node.kind = CExpr::Kind::kPriority;
      return node;
    }
    const KeySchema* key = schema_.FindKey(ident.text);
    if (key == nullptr) {
      return InvalidArgumentError("constraint references unknown key: " +
                                  ident.text);
    }
    CExpr node;
    node.kind = CExpr::Kind::kKeyValue;
    node.key = ident.text;
    if (Eat(TokenKind::kColonColon)) {
      if (Peek().kind != TokenKind::kIdent) {
        return InvalidArgumentError("expected attribute after '::'");
      }
      const std::string attr = Next().text;
      if (attr == "value") {
        node.kind = CExpr::Kind::kKeyValue;
      } else if (attr == "mask") {
        if (key->kind != KeySchema::Kind::kTernary &&
            key->kind != KeySchema::Kind::kOptional) {
          return InvalidArgumentError("::mask requires a ternary key: " +
                                      ident.text);
        }
        node.kind = CExpr::Kind::kKeyMask;
      } else if (attr == "prefix_length") {
        if (key->kind != KeySchema::Kind::kLpm) {
          return InvalidArgumentError(
              "::prefix_length requires an lpm key: " + ident.text);
        }
        node.kind = CExpr::Kind::kKeyPrefixLen;
      } else {
        return InvalidArgumentError("unknown key attribute: " + attr);
      }
    }
    return node;
  }

  Status RequireBoolean(const CExpr& e) {
    if (!e.IsBoolean()) {
      return InvalidArgumentError(
          "logical operator applied to integer operand");
    }
    return OkStatus();
  }

  std::vector<Token> tokens_;
  const TableSchema& schema_;
  std::size_t pos_ = 0;
};

}  // namespace

StatusOr<CExpr> ParseConstraint(std::string_view source,
                                const TableSchema& schema) {
  Lexer lexer(source);
  SWITCHV_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  return Parser(std::move(tokens), schema).Parse();
}

}  // namespace switchv::p4constraints
