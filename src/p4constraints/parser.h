// Recursive-descent parser for the entry-restriction language.
#ifndef SWITCHV_P4CONSTRAINTS_PARSER_H_
#define SWITCHV_P4CONSTRAINTS_PARSER_H_

#include <string_view>

#include "p4constraints/ast.h"
#include "util/status.h"

namespace switchv::p4constraints {

// Describes the keys a constraint may reference: needed for name resolution
// and for rejecting attribute accesses that do not fit the match kind
// (e.g. `::prefix_length` on an exact key).
struct KeySchema {
  std::string name;
  int width = 0;
  // Match kind as in p4ir; duplicated here to keep this module independent.
  enum class Kind { kExact, kLpm, kTernary, kOptional } kind = Kind::kExact;
};

struct TableSchema {
  std::vector<KeySchema> keys;

  const KeySchema* FindKey(std::string_view name) const;
};

// Parses and type-checks `source` against `schema`. The resulting AST is
// boolean-valued.
StatusOr<CExpr> ParseConstraint(std::string_view source,
                                const TableSchema& schema);

}  // namespace switchv::p4constraints

#endif  // SWITCHV_P4CONSTRAINTS_PARSER_H_
