#include "p4constraints/ast.h"

namespace switchv::p4constraints {

bool CExpr::IsBoolean() const {
  switch (kind) {
    case Kind::kNumber:
    case Kind::kKeyValue:
    case Kind::kKeyMask:
    case Kind::kKeyPrefixLen:
    case Kind::kPriority:
      return false;
    default:
      return true;
  }
}

namespace {

std::string U128ToString(uint128 v) {
  if (v == 0) return "0";
  std::string out;
  while (v != 0) {
    out.push_back(static_cast<char>('0' + static_cast<unsigned>(v % 10)));
    v /= 10;
  }
  return std::string(out.rbegin(), out.rend());
}

std::string_view OpName(CExpr::Kind kind) {
  switch (kind) {
    case CExpr::Kind::kAnd: return "&&";
    case CExpr::Kind::kOr: return "||";
    case CExpr::Kind::kImplies: return "->";
    case CExpr::Kind::kEq: return "==";
    case CExpr::Kind::kNe: return "!=";
    case CExpr::Kind::kLt: return "<";
    case CExpr::Kind::kLe: return "<=";
    case CExpr::Kind::kGt: return ">";
    case CExpr::Kind::kGe: return ">=";
    default: return "?";
  }
}

}  // namespace

std::string CExpr::ToString() const {
  switch (kind) {
    case Kind::kNumber:
      return U128ToString(number);
    case Kind::kBoolLiteral:
      return bool_value ? "true" : "false";
    case Kind::kKeyValue:
      return key;
    case Kind::kKeyMask:
      return key + "::mask";
    case Kind::kKeyPrefixLen:
      return key + "::prefix_length";
    case Kind::kPriority:
      return "priority";
    case Kind::kNot:
      return "!(" + children[0].ToString() + ")";
    default:
      return "(" + children[0].ToString() + " " + std::string(OpName(kind)) +
             " " + children[1].ToString() + ")";
  }
}

}  // namespace switchv::p4constraints
