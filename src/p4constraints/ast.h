// AST for the P4-constraints entry-restriction language (paper §3,
// "P4-Constraints"; open-sourced by the authors as p4lang/p4-constraints).
//
// Constraints are boolean expressions over the match keys of one table,
// attached via @entry_restriction. They express requirements the permissive
// P4Runtime API cannot, e.g. `vrf_id != 0` (the default VRF is reserved by
// the hardware) or `ipv4.isValid() -> ipv6_dst::mask == 0` style exclusions.
//
// Grammar (recursive descent, see parser.h):
//   expr   := implies
//   implies:= or ('->' implies)?
//   or     := and ('||' and)*
//   and    := not ('&&' not)*
//   not    := '!' not | cmp
//   cmp    := atom (('=='|'!='|'<'|'<='|'>'|'>=') atom)?
//   atom   := 'true' | 'false' | number | key | key'::'attr | '(' expr ')'
//   attr   := 'mask' | 'value' | 'prefix_length'
//   key    := identifier (a match key of the table), or 'priority'
//   number := decimal or 0x-hex literal
#ifndef SWITCHV_P4CONSTRAINTS_AST_H_
#define SWITCHV_P4CONSTRAINTS_AST_H_

#include <string>
#include <vector>

#include "util/bitstring.h"

namespace switchv::p4constraints {

// A node of the constraint AST. Integer-valued nodes evaluate to unsigned
// values; boolean-valued nodes to 0/1. The parser type-checks operand sorts.
struct CExpr {
  enum class Kind {
    kNumber,        // integer literal
    kBoolLiteral,   // true / false
    kKeyValue,      // key (or key::value): the match value of a key
    kKeyMask,       // key::mask (ternary/optional keys)
    kKeyPrefixLen,  // key::prefix_length (lpm keys)
    kPriority,      // entry priority
    kNot,           // boolean negation
    kAnd,
    kOr,
    kImplies,
    kEq,
    kNe,
    kLt,
    kLe,
    kGt,
    kGe,
  };

  Kind kind = Kind::kBoolLiteral;
  uint128 number = 0;        // kNumber
  bool bool_value = false;   // kBoolLiteral
  std::string key;           // kKeyValue/kKeyMask/kKeyPrefixLen
  std::vector<CExpr> children;

  // True for nodes whose value is boolean (usable under !/&&/||/->).
  bool IsBoolean() const;

  // Source-like rendering for diagnostics.
  std::string ToString() const;
};

}  // namespace switchv::p4constraints

#endif  // SWITCHV_P4CONSTRAINTS_AST_H_
