#include "p4constraints/eval.h"

namespace switchv::p4constraints {

namespace {

StatusOr<uint128> EvalInt(const CExpr& expr, const EntryValuation& entry) {
  switch (expr.kind) {
    case CExpr::Kind::kNumber:
      return expr.number;
    case CExpr::Kind::kPriority:
      return static_cast<uint128>(entry.priority);
    case CExpr::Kind::kKeyValue:
    case CExpr::Kind::kKeyMask:
    case CExpr::Kind::kKeyPrefixLen: {
      auto it = entry.keys.find(expr.key);
      if (it == entry.keys.end()) {
        return InternalError("valuation missing key: " + expr.key);
      }
      const KeyValuation& kv = it->second;
      if (expr.kind == CExpr::Kind::kKeyValue) return kv.value;
      if (expr.kind == CExpr::Kind::kKeyMask) return kv.mask;
      return static_cast<uint128>(kv.prefix_len);
    }
    default:
      return InternalError("expected integer constraint expression");
  }
}

}  // namespace

StatusOr<bool> EvalConstraint(const CExpr& expr,
                              const EntryValuation& entry) {
  switch (expr.kind) {
    case CExpr::Kind::kBoolLiteral:
      return expr.bool_value;
    case CExpr::Kind::kNot: {
      SWITCHV_ASSIGN_OR_RETURN(bool v, EvalConstraint(expr.children[0], entry));
      return !v;
    }
    case CExpr::Kind::kAnd: {
      SWITCHV_ASSIGN_OR_RETURN(bool a, EvalConstraint(expr.children[0], entry));
      SWITCHV_ASSIGN_OR_RETURN(bool b, EvalConstraint(expr.children[1], entry));
      return a && b;
    }
    case CExpr::Kind::kOr: {
      SWITCHV_ASSIGN_OR_RETURN(bool a, EvalConstraint(expr.children[0], entry));
      SWITCHV_ASSIGN_OR_RETURN(bool b, EvalConstraint(expr.children[1], entry));
      return a || b;
    }
    case CExpr::Kind::kImplies: {
      SWITCHV_ASSIGN_OR_RETURN(bool a, EvalConstraint(expr.children[0], entry));
      SWITCHV_ASSIGN_OR_RETURN(bool b, EvalConstraint(expr.children[1], entry));
      return !a || b;
    }
    case CExpr::Kind::kEq:
    case CExpr::Kind::kNe:
    case CExpr::Kind::kLt:
    case CExpr::Kind::kLe:
    case CExpr::Kind::kGt:
    case CExpr::Kind::kGe: {
      SWITCHV_ASSIGN_OR_RETURN(uint128 a, EvalInt(expr.children[0], entry));
      SWITCHV_ASSIGN_OR_RETURN(uint128 b, EvalInt(expr.children[1], entry));
      switch (expr.kind) {
        case CExpr::Kind::kEq: return a == b;
        case CExpr::Kind::kNe: return a != b;
        case CExpr::Kind::kLt: return a < b;
        case CExpr::Kind::kLe: return a <= b;
        case CExpr::Kind::kGt: return a > b;
        default: return a >= b;
      }
    }
    default:
      return InternalError("expected boolean constraint expression");
  }
}

}  // namespace switchv::p4constraints
