#include "models/sai_model.h"

#include "p4ir/builder.h"

namespace switchv::models {

using p4ir::ControlNode;
using p4ir::Expr;
using p4ir::FieldDef;
using p4ir::MatchKind;
using p4ir::ParamDef;
using p4ir::ProgramBuilder;
using p4ir::Statement;

std::string_view RoleName(Role role) {
  switch (role) {
    case Role::kMiddleblock: return "middleblock";
    case Role::kWan: return "wan";
  }
  return "?";
}

packet::ParserSpec SaiParserSpec() { return packet::ParserSpec::Sai(); }

bmv2::CloneSessionMap DefaultCloneSessions() {
  bmv2::CloneSessionMap sessions;
  for (std::uint16_t s = 1; s <= 8; ++s) {
    sessions[s] = static_cast<std::uint16_t>(100 + s);
  }
  return sessions;
}

namespace {

// The 13 fields of an IPv4 header, with the given name prefix.
std::vector<FieldDef> Ipv4Fields(const std::string& prefix) {
  return {
      {prefix + ".version", 4},        {prefix + ".ihl", 4},
      {prefix + ".dscp", 6},           {prefix + ".ecn", 2},
      {prefix + ".total_len", 16},     {prefix + ".identification", 16},
      {prefix + ".flags", 3},          {prefix + ".frag_offset", 13},
      {prefix + ".ttl", 8},            {prefix + ".protocol", 8},
      {prefix + ".header_checksum", 16}, {prefix + ".src_addr", 32},
      {prefix + ".dst_addr", 32},
  };
}

// Field-by-field copy between two same-layout IPv4 headers.
std::vector<Statement> CopyIpv4(const std::string& from,
                                const std::string& to) {
  std::vector<Statement> body;
  for (const FieldDef& f : Ipv4Fields(from)) {
    const std::string suffix = f.name.substr(from.size());
    body.push_back(
        Statement::Assign(to + suffix, Expr::Field(f.name, f.width)));
  }
  return body;
}

void DeclareHeaders(ProgramBuilder& b, Role role) {
  b.AddHeader("ethernet", {{"ethernet.dst_addr", 48},
                           {"ethernet.src_addr", 48},
                           {"ethernet.ether_type", 16}});
  b.AddHeader("arp", {{"arp.hw_type", 16},
                      {"arp.proto_type", 16},
                      {"arp.hw_size", 8},
                      {"arp.proto_size", 8},
                      {"arp.opcode", 16}});
  b.AddHeader("ipv4", Ipv4Fields("ipv4"));
  b.AddHeader("ipv6", {{"ipv6.version", 4},
                       {"ipv6.dscp", 6},
                       {"ipv6.ecn", 2},
                       {"ipv6.flow_label", 20},
                       {"ipv6.payload_length", 16},
                       {"ipv6.next_header", 8},
                       {"ipv6.hop_limit", 8},
                       {"ipv6.src_addr", 128},
                       {"ipv6.dst_addr", 128}});
  if (role == Role::kWan) {
    b.AddHeader("inner_ipv4", Ipv4Fields("inner_ipv4"));
  }
  b.AddHeader("tcp", {{"tcp.src_port", 16},
                      {"tcp.dst_port", 16},
                      {"tcp.seq_no", 32},
                      {"tcp.ack_no", 32},
                      {"tcp.data_offset", 4},
                      {"tcp.res", 4},
                      {"tcp.flags", 8},
                      {"tcp.window", 16},
                      {"tcp.checksum", 16},
                      {"tcp.urgent_ptr", 16}});
  b.AddHeader("udp", {{"udp.src_port", 16},
                      {"udp.dst_port", 16},
                      {"udp.hdr_length", 16},
                      {"udp.checksum", 16}});
  b.AddHeader("icmp",
              {{"icmp.type", 8}, {"icmp.code", 8}, {"icmp.checksum", 16}});
}

void DeclareMetadata(ProgramBuilder& b) {
  b.AddMetadata("local_metadata.vrf_id", kVrfWidth);
  b.AddMetadata("local_metadata.admit_to_l3", 1);
  b.AddMetadata("local_metadata.nexthop_id", kIdWidth);
  b.AddMetadata("local_metadata.wcmp_group_id", kIdWidth);
  b.AddMetadata("local_metadata.use_wcmp", 1);
  b.AddMetadata("local_metadata.rif_id", kIdWidth);
  b.AddMetadata("local_metadata.neighbor_id", kIdWidth);
  b.AddMetadata("local_metadata.l4_src_port", 16);
  b.AddMetadata("local_metadata.l4_dst_port", 16);
  b.AddMetadata("local_metadata.mirror_port", 16);
  b.AddMetadata("local_metadata.tunnel_id", kIdWidth);
}

void DeclareActions(ProgramBuilder& b, Role role) {
  auto one = Expr::ConstantU(1, 1);
  b.AddAction("no_action", {}, {});
  b.AddAction("drop_packet", {},
              {Statement::Assign(p4ir::kDropField, one)});
  b.AddAction("trap_ttl", {},
              {Statement::Assign(p4ir::kPuntField, one),
               Statement::Assign(p4ir::kDropField, one)});
  b.AddAction("acl_drop", {}, {Statement::Assign(p4ir::kDropField, one)});
  b.AddAction("acl_trap", {},
              {Statement::Assign(p4ir::kPuntField, one),
               Statement::Assign(p4ir::kDropField, one)});
  b.AddAction("acl_copy", {}, {Statement::Assign(p4ir::kPuntField, one)});
  b.AddAction("acl_mirror", {ParamDef{"mirror_port", 16}},
              {Statement::Assign("local_metadata.mirror_port",
                                 Expr::Param("mirror_port", 16))});
  b.AddAction("set_vrf", {ParamDef{"vrf_id", kVrfWidth}},
              {Statement::Assign("local_metadata.vrf_id",
                                 Expr::Param("vrf_id", kVrfWidth))});
  b.AddAction("l3_admit", {},
              {Statement::Assign("local_metadata.admit_to_l3", one)});
  b.AddAction("set_nexthop_id", {ParamDef{"nexthop_id", kIdWidth}},
              {Statement::Assign("local_metadata.nexthop_id",
                                 Expr::Param("nexthop_id", kIdWidth)),
               Statement::Assign("local_metadata.use_wcmp",
                                 Expr::ConstantU(0, 1))});
  b.AddAction("set_wcmp_group_id", {ParamDef{"wcmp_group_id", kIdWidth}},
              {Statement::Assign("local_metadata.wcmp_group_id",
                                 Expr::Param("wcmp_group_id", kIdWidth)),
               Statement::Assign("local_metadata.use_wcmp", one)});
  b.AddAction(
      "set_nexthop",
      {ParamDef{"router_interface_id", kIdWidth},
       ParamDef{"neighbor_id", kIdWidth}},
      {Statement::Assign("local_metadata.rif_id",
                         Expr::Param("router_interface_id", kIdWidth)),
       Statement::Assign("local_metadata.neighbor_id",
                         Expr::Param("neighbor_id", kIdWidth))});
  b.AddAction("set_dst_mac", {ParamDef{"dst_mac", 48}},
              {Statement::Assign("ethernet.dst_addr",
                                 Expr::Param("dst_mac", 48))});
  b.AddAction(
      "set_port_and_src_mac",
      {ParamDef{"port", p4ir::kPortWidth}, ParamDef{"src_mac", 48}},
      {Statement::Assign(p4ir::kEgressPortField,
                         Expr::Param("port", p4ir::kPortWidth)),
       Statement::Assign("ethernet.src_addr", Expr::Param("src_mac", 48)),
       // L3 forwarding decrements the hop budget of whichever IP header
       // the packet carries (writes to invalid headers are inert).
       Statement::Assign("ipv4.ttl",
                         Expr::Binary(p4ir::BinaryOp::kSub,
                                      Expr::Field("ipv4.ttl", 8),
                                      Expr::ConstantU(1, 8))),
       Statement::Assign("ipv6.hop_limit",
                         Expr::Binary(p4ir::BinaryOp::kSub,
                                      Expr::Field("ipv6.hop_limit", 8),
                                      Expr::ConstantU(1, 8)))});
  b.AddAction("set_egress_src_mac", {ParamDef{"src_mac", 48}},
              {Statement::Assign("ethernet.src_addr",
                                 Expr::Param("src_mac", 48))});
  b.AddAction("set_clone_session", {ParamDef{"session_id", 16}},
              {Statement::Assign(p4ir::kCloneSessionField,
                                 Expr::Param("session_id", 16))});
  b.AddAction("set_l4_tcp", {},
              {Statement::Assign("local_metadata.l4_src_port",
                                 Expr::Field("tcp.src_port", 16)),
               Statement::Assign("local_metadata.l4_dst_port",
                                 Expr::Field("tcp.dst_port", 16))});
  b.AddAction("set_l4_udp", {},
              {Statement::Assign("local_metadata.l4_src_port",
                                 Expr::Field("udp.src_port", 16)),
               Statement::Assign("local_metadata.l4_dst_port",
                                 Expr::Field("udp.dst_port", 16))});
  if (role == Role::kWan) {
    b.AddAction("set_tunnel",
                {ParamDef{"tunnel_id", kIdWidth},
                 ParamDef{"nexthop_id", kIdWidth}},
                {Statement::Assign("local_metadata.tunnel_id",
                                   Expr::Param("tunnel_id", kIdWidth)),
                 Statement::Assign("local_metadata.nexthop_id",
                                   Expr::Param("nexthop_id", kIdWidth)),
                 Statement::Assign("local_metadata.use_wcmp",
                                   Expr::ConstantU(0, 1))});
    // IP-in-IP encapsulation: the current IPv4 header moves inside; the
    // outer header addresses come from the tunnel entry.
    std::vector<Statement> encap = CopyIpv4("ipv4", "inner_ipv4");
    encap.push_back(Statement::SetValid("inner_ipv4", true));
    encap.push_back(
        Statement::Assign("ipv4.src_addr", Expr::Param("src_ip", 32)));
    encap.push_back(
        Statement::Assign("ipv4.dst_addr", Expr::Param("dst_ip", 32)));
    encap.push_back(
        Statement::Assign("ipv4.protocol", Expr::ConstantU(4, 8)));
    encap.push_back(Statement::Assign("ipv4.ttl", Expr::ConstantU(64, 8)));
    b.AddAction("tunnel_encap",
                {ParamDef{"src_ip", 32}, ParamDef{"dst_ip", 32}},
                std::move(encap));
    std::vector<Statement> decap = CopyIpv4("inner_ipv4", "ipv4");
    decap.push_back(Statement::SetValid("inner_ipv4", false));
    b.AddAction("tunnel_decap", {}, std::move(decap));
  }
}

void DeclareTables(ProgramBuilder& b, Role role,
                   const ModelOptions& options) {
  b.AddTable("l3_admit_tbl")
      .Key("dst_mac", "ethernet.dst_addr", 48, MatchKind::kTernary)
      .Key("in_port", p4ir::kIngressPortField, p4ir::kPortWidth,
           MatchKind::kOptional)
      .Action("l3_admit")
      .DefaultAction("no_action")
      .Size(64);

  {
    auto t = b.AddTable("acl_pre_ingress_tbl")
                 .Key("src_mac", "ethernet.src_addr", 48, MatchKind::kTernary)
                 .Key("ether_type", "ethernet.ether_type", 16,
                      MatchKind::kTernary)
                 .Key("dst_ip", "ipv4.dst_addr", 32, MatchKind::kTernary);
    std::string restriction = "dst_ip::mask != 0 -> ether_type == 0x0800";
    if (role == Role::kWan) {
      t.Key("dst_ipv6", "ipv6.dst_addr", 128, MatchKind::kTernary);
      restriction +=
          " && (dst_ipv6::mask != 0 -> ether_type == 0x86dd)";
    }
    t.Action("set_vrf")
        .DefaultAction("no_action")
        .Size(255)
        .EntryRestriction(restriction)
        .ParamReference("set_vrf", "vrf_id", "vrf_tbl", "vrf_id");
  }

  b.AddTable("vrf_tbl")
      .Key("vrf_id", "local_metadata.vrf_id", kVrfWidth, MatchKind::kExact)
      .Action("no_action")
      .DefaultAction("no_action")
      .Size(64)
      // The default VRF 0 is reserved by the hardware (paper Figure 2).
      .EntryRestriction("vrf_id != 0");

  {
    auto t = b.AddTable("ipv4_tbl")
                 .ReferencingKey("vrf_id", "local_metadata.vrf_id", kVrfWidth,
                                 MatchKind::kExact, "vrf_tbl", "vrf_id")
                 .Key("ipv4_dst", "ipv4.dst_addr", 32, MatchKind::kLpm)
                 .Action("drop_packet")
                 .Action("set_nexthop_id")
                 .Action("set_wcmp_group_id")
                 .DefaultAction("drop_packet")
                 // The WAN role guarantees a larger route budget.
                 .Size(role == Role::kWan ? 1024 : 512)
                 .ParamReference("set_nexthop_id", "nexthop_id",
                                 "nexthop_tbl", "nexthop_id")
                 .ParamReference("set_wcmp_group_id", "wcmp_group_id",
                                 "wcmp_group_tbl", "wcmp_group_id");
    if (role == Role::kWan) {
      t.Action("set_tunnel")
          .ParamReference("set_tunnel", "tunnel_id", "tunnel_encap_tbl",
                          "tunnel_id")
          .ParamReference("set_tunnel", "nexthop_id", "nexthop_tbl",
                          "nexthop_id");
    }
  }

  b.AddTable("ipv6_tbl")
      .ReferencingKey("vrf_id", "local_metadata.vrf_id", kVrfWidth,
                      MatchKind::kExact, "vrf_tbl", "vrf_id")
      .Key("ipv6_dst", "ipv6.dst_addr", 128, MatchKind::kLpm)
      .Action("drop_packet")
      .Action("set_nexthop_id")
      .Action("set_wcmp_group_id")
      .DefaultAction("drop_packet")
      .Size(role == Role::kWan ? 512 : 256)
      .ParamReference("set_nexthop_id", "nexthop_id", "nexthop_tbl",
                      "nexthop_id")
      .ParamReference("set_wcmp_group_id", "wcmp_group_id", "wcmp_group_tbl",
                      "wcmp_group_id");

  b.AddTable("wcmp_group_tbl")
      .Key("wcmp_group_id", "local_metadata.wcmp_group_id", kIdWidth,
           MatchKind::kExact)
      .Action("set_nexthop_id")
      .DefaultAction("drop_packet")
      .Size(128)
      .WithSelector(/*max_group_size=*/16, /*max_total_weight=*/128)
      .ParamReference("set_nexthop_id", "nexthop_id", "nexthop_tbl",
                      "nexthop_id");

  b.AddTable("nexthop_tbl")
      .Key("nexthop_id", "local_metadata.nexthop_id", kIdWidth,
           MatchKind::kExact)
      .Action("set_nexthop")
      .DefaultAction("drop_packet")
      .Size(1024)
      .ParamReference("set_nexthop", "router_interface_id",
                      "router_interface_tbl", "router_interface_id")
      .ParamReference("set_nexthop", "neighbor_id", "neighbor_tbl",
                      "neighbor_id");

  b.AddTable("neighbor_tbl")
      .ReferencingKey("router_interface_id", "local_metadata.rif_id",
                      kIdWidth, MatchKind::kExact, "router_interface_tbl",
                      "router_interface_id")
      .Key("neighbor_id", "local_metadata.neighbor_id", kIdWidth,
           MatchKind::kExact)
      .Action("set_dst_mac")
      .DefaultAction("drop_packet")
      .Size(1024);

  b.AddTable("router_interface_tbl")
      .Key("router_interface_id", "local_metadata.rif_id", kIdWidth,
           MatchKind::kExact)
      .Action("set_port_and_src_mac")
      .DefaultAction("drop_packet")
      .Size(256);

  {
    const std::string icmp_field =
        options.acl_wrong_icmp_field ? "icmp.code" : "icmp.type";
    auto t = b.AddTable("acl_ingress_tbl")
                 .Key("ether_type", "ethernet.ether_type", 16,
                      MatchKind::kTernary)
                 .Key("dst_ip", "ipv4.dst_addr", 32, MatchKind::kTernary)
                 .Key("dst_ipv6", "ipv6.dst_addr", 128, MatchKind::kTernary)
                 .Key("ip_protocol", "ipv4.protocol", 8, MatchKind::kTernary)
                 .Key("l4_dst_port", "local_metadata.l4_dst_port", 16,
                      MatchKind::kTernary)
                 .Key("ttl", "ipv4.ttl", 8, MatchKind::kTernary)
                 .Key("icmp_type", icmp_field, 8, MatchKind::kTernary)
                 .Key("in_port", p4ir::kIngressPortField, p4ir::kPortWidth,
                      MatchKind::kOptional);
    std::string restriction =
        "(dst_ip::mask != 0 -> ether_type == 0x0800)"
        " && (dst_ipv6::mask != 0 -> ether_type == 0x86dd)"
        " && (icmp_type::mask != 0 -> (ip_protocol == 1 || ip_protocol == 58))"
        " && (l4_dst_port::mask != 0 -> (ip_protocol == 6 || ip_protocol == "
        "17))";
    int size = 128;
    if (role == Role::kWan) {
      // The WAN role trades scalability for expressivity: a wider TCAM key.
      t.Key("src_ip", "ipv4.src_addr", 32, MatchKind::kTernary)
          .Key("src_ipv6", "ipv6.src_addr", 128, MatchKind::kTernary)
          .Key("l4_src_port", "local_metadata.l4_src_port", 16,
               MatchKind::kTernary)
          .Key("dscp", "ipv4.dscp", 6, MatchKind::kTernary);
      restriction +=
          " && (src_ip::mask != 0 -> ether_type == 0x0800)"
          " && (src_ipv6::mask != 0 -> ether_type == 0x86dd)";
      size = 256;
    }
    t.Action("acl_drop")
        .Action("acl_trap")
        .Action("acl_copy")
        .Action("acl_mirror")
        .DefaultAction("no_action")
        .Size(size)
        .EntryRestriction(restriction);
  }

  // Logical table translating a mirror target port to a clone session of
  // the packet replication engine (paper §3, "Mirror Sessions").
  b.AddTable("mirror_session_tbl")
      .Key("mirror_port", "local_metadata.mirror_port", 16,
           MatchKind::kExact)
      .Action("set_clone_session")
      .DefaultAction("no_action")
      .Size(32);

  // Egress replica of the router interface component (paper §3 "P4
  // Language Features": components used at both ingress and egress must be
  // replicated, with the consistency constraint that replica entries agree).
  b.AddTable("egress_rif_tbl")
      .Key("out_port", p4ir::kEgressPortField, p4ir::kPortWidth,
           MatchKind::kExact)
      .Action("set_egress_src_mac")
      .DefaultAction("no_action")
      .Size(256);

  if (role == Role::kWan) {
    b.AddTable("decap_tbl")
        .Key("dst_ip", "ipv4.dst_addr", 32, MatchKind::kExact)
        .Action("tunnel_decap")
        .DefaultAction("no_action")
        .Size(64);
    b.AddTable("tunnel_encap_tbl")
        .Key("tunnel_id", "local_metadata.tunnel_id", kIdWidth,
             MatchKind::kExact)
        .Action("tunnel_encap")
        .DefaultAction("drop_packet")
        .Size(128);
  }
}

std::vector<ControlNode> BuildIngress(ProgramBuilder& b, Role role,
                                      const ModelOptions& options) {
  std::vector<ControlNode> ingress;

  // L4 port extraction feeds the ACL keys.
  ingress.push_back(ControlNode::If(
      Expr::Valid("tcp"), {ControlNode::ApplyAction("set_l4_tcp")},
      {ControlNode::If(Expr::Valid("udp"),
                       {ControlNode::ApplyAction("set_l4_udp")}, {})}));

  ingress.push_back(ControlNode::ApplyTable("l3_admit_tbl"));
  ingress.push_back(ControlNode::ApplyTable("acl_pre_ingress_tbl"));
  ingress.push_back(ControlNode::ApplyTable("vrf_tbl"));

  if (role == Role::kWan) {
    ingress.push_back(ControlNode::If(
        Expr::And(Expr::Valid("ipv4"), Expr::Valid("inner_ipv4")),
        {ControlNode::ApplyTable("decap_tbl")}, {}));
  }

  ingress.push_back(ControlNode::If(
      Expr::Eq(b.FieldExpr("local_metadata.admit_to_l3"),
               Expr::ConstantU(1, 1)),
      {ControlNode::If(Expr::Valid("ipv4"),
                       {ControlNode::ApplyTable("ipv4_tbl")},
                       {ControlNode::If(
                           Expr::Valid("ipv6"),
                           {ControlNode::ApplyTable("ipv6_tbl")}, {})})},
      {}));

  ingress.push_back(ControlNode::If(
      Expr::Eq(b.FieldExpr("local_metadata.use_wcmp"), Expr::ConstantU(1, 1)),
      {ControlNode::ApplyTable("wcmp_group_tbl")}, {}));

  const ControlNode acl = ControlNode::ApplyTable("acl_ingress_tbl");
  if (!options.acl_after_rewrite) ingress.push_back(acl);

  if (!options.omit_ttl_trap) {
    // Fixed-function trap: IPv4 packets with TTL 0 or 1 are punted.
    ingress.push_back(ControlNode::If(
        Expr::And(Expr::Valid("ipv4"),
                  Expr::Binary(p4ir::BinaryOp::kLt,
                               Expr::Field("ipv4.ttl", 8),
                               Expr::ConstantU(2, 8))),
        {ControlNode::ApplyAction("trap_ttl")}, {}));
  }
  if (!options.omit_broadcast_drop) {
    // Fixed-function behaviour: limited-broadcast destinations are dropped.
    ingress.push_back(ControlNode::If(
        Expr::And(Expr::Valid("ipv4"),
                  Expr::Eq(Expr::Field("ipv4.dst_addr", 32),
                           Expr::ConstantU(0xFFFFFFFFu, 32))),
        {ControlNode::ApplyAction("drop_packet")}, {}));
  }

  std::vector<ControlNode> rewrite_chain = {
      ControlNode::ApplyTable("nexthop_tbl"),
      ControlNode::ApplyTable("neighbor_tbl"),
      ControlNode::ApplyTable("router_interface_tbl"),
  };
  if (role == Role::kWan) {
    // Nested tunneling is unsupported: a packet that is already IP-in-IP
    // and would be encapsulated again is dropped. (A modeling workaround in
    // the §3 sense: P4 header instances cannot express header stacks, so
    // the spec forbids the nesting instead.)
    rewrite_chain.push_back(ControlNode::If(
        Expr::Ne(b.FieldExpr("local_metadata.tunnel_id"),
                 Expr::ConstantU(0, kIdWidth)),
        {ControlNode::If(Expr::Valid("inner_ipv4"),
                         {ControlNode::ApplyAction("drop_packet")},
                         {ControlNode::ApplyTable("tunnel_encap_tbl")})},
        {}));
  }
  ingress.push_back(ControlNode::If(
      Expr::Ne(b.FieldExpr("local_metadata.nexthop_id"),
               Expr::ConstantU(0, kIdWidth)),
      std::move(rewrite_chain), {}));

  if (options.acl_after_rewrite) ingress.push_back(acl);

  ingress.push_back(ControlNode::If(
      Expr::Ne(b.FieldExpr("local_metadata.mirror_port"),
               Expr::ConstantU(0, 16)),
      {ControlNode::ApplyTable("mirror_session_tbl")}, {}));

  return ingress;
}

}  // namespace

StatusOr<p4ir::Program> BuildSaiProgram(Role role,
                                        const ModelOptions& options) {
  ProgramBuilder b(std::string(RoleName(role)));
  DeclareHeaders(b, role);
  DeclareMetadata(b);
  DeclareActions(b, role);
  DeclareTables(b, role, options);
  b.SetIngress(BuildIngress(b, role, options));
  b.SetEgress({ControlNode::ApplyTable("egress_rif_tbl")});
  b.SetCpuPort(kCpuPort);
  return std::move(b).Build();
}

}  // namespace switchv::models
