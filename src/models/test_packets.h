// Hand-construction of concrete test packets for examples and tests.
// (SwitchV's own data-plane packets come from p4-symbolic; these helpers
// serve the trivial test suite of §6.2 and unit tests.)
#ifndef SWITCHV_MODELS_TEST_PACKETS_H_
#define SWITCHV_MODELS_TEST_PACKETS_H_

#include <string>

#include "p4ir/program.h"

namespace switchv::models {

struct Ipv4PacketSpec {
  std::uint64_t dst_mac = 0x02AA00000002ull;
  std::uint64_t src_mac = 0x0600000000FFull;
  std::uint32_t src_ip = 0xC0A80101;  // 192.168.1.1
  std::uint32_t dst_ip = 0x0A000001;  // 10.0.0.1
  int ttl = 64;
  int protocol = 6;  // TCP
  int dscp = 0;
  std::uint16_t src_port = 12345;
  std::uint16_t dst_port = 443;
  std::string payload = "switchv-test-payload";
};

// Builds an Ethernet+IPv4(+TCP/UDP) packet laid out per `program`'s headers.
std::string BuildIpv4Packet(const p4ir::Program& program,
                            const Ipv4PacketSpec& spec);

struct Ipv6PacketSpec {
  std::uint64_t dst_mac = 0x02AA00000002ull;
  std::uint64_t src_mac = 0x0600000000FFull;
  uint128 src_ip = (static_cast<uint128>(0x20010db8u) << 96) | 0x1;
  uint128 dst_ip = (static_cast<uint128>(0x20010db8u) << 96) | 0x2;
  int hop_limit = 64;
  int next_header = 17;  // UDP
  std::uint16_t src_port = 5353;
  std::uint16_t dst_port = 53;
  std::string payload = "switchv-test-payload";
};

std::string BuildIpv6Packet(const p4ir::Program& program,
                            const Ipv6PacketSpec& spec);

// An ARP request packet (exercises punt paths).
std::string BuildArpPacket(const p4ir::Program& program);

}  // namespace switchv::models

#endif  // SWITCHV_MODELS_TEST_PACKETS_H_
