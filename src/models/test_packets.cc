#include "models/test_packets.h"

#include "packet/packet.h"

namespace switchv::models {

namespace {

packet::ParsedPacket BaseEthernet(const p4ir::Program& program,
                                  std::uint64_t dst_mac, std::uint64_t src_mac,
                                  std::uint16_t ether_type) {
  packet::ParsedPacket pkt;
  for (const p4ir::FieldDef& f : program.AllFields()) {
    pkt.fields.emplace(f.name, BitString::FromUint(0, f.width));
  }
  pkt.valid_headers.insert("ethernet");
  pkt.fields["ethernet.dst_addr"] = BitString::FromUint(dst_mac, 48);
  pkt.fields["ethernet.src_addr"] = BitString::FromUint(src_mac, 48);
  pkt.fields["ethernet.ether_type"] = BitString::FromUint(ether_type, 16);
  return pkt;
}

}  // namespace

std::string BuildIpv4Packet(const p4ir::Program& program,
                            const Ipv4PacketSpec& spec) {
  packet::ParsedPacket pkt =
      BaseEthernet(program, spec.dst_mac, spec.src_mac, 0x0800);
  pkt.valid_headers.insert("ipv4");
  pkt.fields["ipv4.version"] = BitString::FromUint(4, 4);
  pkt.fields["ipv4.ihl"] = BitString::FromUint(5, 4);
  pkt.fields["ipv4.dscp"] = BitString::FromUint(spec.dscp, 6);
  pkt.fields["ipv4.total_len"] = BitString::FromUint(40, 16);
  pkt.fields["ipv4.ttl"] = BitString::FromUint(spec.ttl, 8);
  pkt.fields["ipv4.protocol"] = BitString::FromUint(spec.protocol, 8);
  pkt.fields["ipv4.src_addr"] = BitString::FromUint(spec.src_ip, 32);
  pkt.fields["ipv4.dst_addr"] = BitString::FromUint(spec.dst_ip, 32);
  if (spec.protocol == 6) {
    pkt.valid_headers.insert("tcp");
    pkt.fields["tcp.src_port"] = BitString::FromUint(spec.src_port, 16);
    pkt.fields["tcp.dst_port"] = BitString::FromUint(spec.dst_port, 16);
    pkt.fields["tcp.data_offset"] = BitString::FromUint(5, 4);
  } else if (spec.protocol == 17) {
    pkt.valid_headers.insert("udp");
    pkt.fields["udp.src_port"] = BitString::FromUint(spec.src_port, 16);
    pkt.fields["udp.dst_port"] = BitString::FromUint(spec.dst_port, 16);
    pkt.fields["udp.hdr_length"] = BitString::FromUint(20, 16);
  } else if (spec.protocol == 1) {
    pkt.valid_headers.insert("icmp");
    pkt.fields["icmp.type"] = BitString::FromUint(8, 8);  // echo request
  }
  pkt.payload = spec.payload;
  return packet::Deparse(program, pkt);
}

std::string BuildIpv6Packet(const p4ir::Program& program,
                            const Ipv6PacketSpec& spec) {
  packet::ParsedPacket pkt =
      BaseEthernet(program, spec.dst_mac, spec.src_mac, 0x86DD);
  pkt.valid_headers.insert("ipv6");
  pkt.fields["ipv6.version"] = BitString::FromUint(6, 4);
  pkt.fields["ipv6.payload_length"] = BitString::FromUint(8, 16);
  pkt.fields["ipv6.next_header"] = BitString::FromUint(spec.next_header, 8);
  pkt.fields["ipv6.hop_limit"] = BitString::FromUint(spec.hop_limit, 8);
  pkt.fields["ipv6.src_addr"] = BitString::FromUint(spec.src_ip, 128);
  pkt.fields["ipv6.dst_addr"] = BitString::FromUint(spec.dst_ip, 128);
  if (spec.next_header == 17) {
    pkt.valid_headers.insert("udp");
    pkt.fields["udp.src_port"] = BitString::FromUint(spec.src_port, 16);
    pkt.fields["udp.dst_port"] = BitString::FromUint(spec.dst_port, 16);
  } else if (spec.next_header == 6) {
    pkt.valid_headers.insert("tcp");
    pkt.fields["tcp.src_port"] = BitString::FromUint(spec.src_port, 16);
    pkt.fields["tcp.dst_port"] = BitString::FromUint(spec.dst_port, 16);
  }
  pkt.payload = spec.payload;
  return packet::Deparse(program, pkt);
}

std::string BuildArpPacket(const p4ir::Program& program) {
  packet::ParsedPacket pkt = BaseEthernet(program, 0xFFFFFFFFFFFFull,
                                          0x0600000000FFull, 0x0806);
  pkt.valid_headers.insert("arp");
  pkt.fields["arp.hw_type"] = BitString::FromUint(1, 16);
  pkt.fields["arp.proto_type"] = BitString::FromUint(0x0800, 16);
  pkt.fields["arp.hw_size"] = BitString::FromUint(6, 8);
  pkt.fields["arp.proto_size"] = BitString::FromUint(4, 8);
  pkt.fields["arp.opcode"] = BitString::FromUint(1, 16);
  return packet::Deparse(program, pkt);
}

}  // namespace switchv::models
