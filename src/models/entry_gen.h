// Production-like forwarding state for data-plane validation.
//
// The paper feeds p4-symbolic "a replay of production table entries" (§2).
// We do not have Google's production state, so this generator synthesizes
// a forwarding state with the same *shape*: referentially consistent VRFs,
// router interfaces, neighbors, nexthops, WCMP groups, LPM routes at mixed
// prefix lengths, constraint-compliant ACL entries, and (for the WAN role)
// tunnels — sized to match the entry counts of the paper's Table 3
// (Inst1: 798 entries, Inst2: 1314 entries).
#ifndef SWITCHV_MODELS_ENTRY_GEN_H_
#define SWITCHV_MODELS_ENTRY_GEN_H_

#include <vector>

#include "models/sai_model.h"
#include "p4runtime/messages.h"

namespace switchv::models {

struct WorkloadSpec {
  int num_vrfs = 4;
  int num_l3_admit = 8;
  int num_pre_ingress = 24;
  int num_ipv4_routes = 400;
  int num_ipv6_routes = 150;
  int num_wcmp_groups = 12;
  int num_nexthops = 48;
  int num_neighbors = 32;
  int num_rifs = 16;
  int num_acl_ingress = 24;
  int num_mirror_sessions = 4;
  int num_egress_rifs = 8;
  // WAN role only.
  int num_decap = 0;
  int num_tunnels = 0;

  int TotalEntries() const;

  // Entry counts matching the paper's Table 3.
  static WorkloadSpec Inst1();  // middleblock, 798 entries
  static WorkloadSpec Inst2();  // wan, 1314 entries
};

// Generates the entries in a dependency-safe install order (referenced
// entries precede referencing ones). Deterministic in `seed`.
StatusOr<std::vector<p4rt::TableEntry>> GenerateEntries(
    const p4ir::P4Info& info, Role role, const WorkloadSpec& spec,
    std::uint64_t seed);

}  // namespace switchv::models

#endif  // SWITCHV_MODELS_ENTRY_GEN_H_
