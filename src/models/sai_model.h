// Role-specific P4 models of a SAI-based fixed-function switch (paper §3).
//
// Two instantiations of the same blueprint, as in the paper's Table 3:
//  * kMiddleblock ("Inst1"): ToR-style L3 pipeline — L3 admit, pre-ingress
//    ACL (VRF assignment), VRF allocation table, IPv4/IPv6 LPM routing,
//    WCMP groups (one-shot action selector), nexthop/neighbor/router-
//    interface chain, role-specific ingress ACL, mirroring with a logical
//    clone-session table, fixed TTL and broadcast traps, and an egress
//    router-interface replica.
//  * kWan ("Inst2", Cerberus-style): everything above plus IP-in-IP tunnel
//    encap/decap and a wider ACL — "more involved forwarding pipelines and
//    additional features such as encapsulation and decapsulation" (§6).
//
// ModelOptions can deliberately mis-specify the model, reproducing the
// paper's "Input P4 Program" bug class (the switch is right, the model is
// wrong; Table 1 and Appendix A).
#ifndef SWITCHV_MODELS_SAI_MODEL_H_
#define SWITCHV_MODELS_SAI_MODEL_H_

#include "bmv2/interpreter.h"
#include "p4ir/program.h"
#include "packet/packet.h"

namespace switchv::models {

enum class Role { kMiddleblock, kWan };

std::string_view RoleName(Role role);

// Each flag makes the *model* diverge from the intended switch behaviour.
struct ModelOptions {
  // Omits the fixed-function trap punting IPv4 packets with TTL 0/1
  // (Appendix A: the new chip's built-in trap missing from the model).
  bool omit_ttl_trap = false;
  // Omits the drop of IPv4 packets with destination 255.255.255.255
  // (Appendix A: "P4 program does not reflect that switch drops...").
  bool omit_broadcast_drop = false;
  // Places the ingress ACL after header rewrite (Appendix A: "Header
  // fields get rewritten before ACL is applied").
  bool acl_after_rewrite = false;
  // ACL matches icmp.code where the switch matches icmp.type (Appendix A:
  // "Program matches on the wrong ICMP field").
  bool acl_wrong_icmp_field = false;
};

// Builds the validated role model. Well-known table names (used by the
// fixed-function ASIC simulator and the entry generators):
//   l3_admit_tbl, acl_pre_ingress_tbl, vrf_tbl, ipv4_tbl, ipv6_tbl,
//   wcmp_group_tbl, nexthop_tbl, neighbor_tbl, router_interface_tbl,
//   acl_ingress_tbl, mirror_session_tbl, egress_rif_tbl,
//   and for kWan: decap_tbl, tunnel_encap_tbl.
StatusOr<p4ir::Program> BuildSaiProgram(Role role,
                                        const ModelOptions& options = {});

// The parser both dataplanes use for these models.
packet::ParserSpec SaiParserSpec();

// Default packet-replication config: clone sessions 1..8 -> ports 101..108.
bmv2::CloneSessionMap DefaultCloneSessions();

// Well-known constants shared by models, entry generators and the ASIC.
inline constexpr int kVrfWidth = 12;
inline constexpr int kIdWidth = 16;
inline constexpr std::uint16_t kCpuPort = 0xFFD;
inline constexpr int kNumFrontPanelPorts = 32;  // ports 1..32

}  // namespace switchv::models

#endif  // SWITCHV_MODELS_SAI_MODEL_H_
