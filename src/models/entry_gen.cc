#include "models/entry_gen.h"

#include "p4runtime/entry_builder.h"
#include "util/rng.h"

namespace switchv::models {

using p4rt::EntryBuilder;
using p4rt::TableEntry;

int WorkloadSpec::TotalEntries() const {
  return num_vrfs + num_l3_admit + num_pre_ingress + num_ipv4_routes +
         num_ipv6_routes + num_wcmp_groups + num_nexthops + num_neighbors +
         num_rifs + num_acl_ingress + num_mirror_sessions + num_egress_rifs +
         num_decap + num_tunnels;
}

WorkloadSpec WorkloadSpec::Inst1() {
  WorkloadSpec spec;
  spec.num_vrfs = 6;
  spec.num_l3_admit = 10;
  spec.num_pre_ingress = 30;
  spec.num_ipv4_routes = 430;
  spec.num_ipv6_routes = 160;
  spec.num_wcmp_groups = 12;
  spec.num_nexthops = 60;
  spec.num_neighbors = 40;
  spec.num_rifs = 16;
  spec.num_acl_ingress = 24;
  spec.num_mirror_sessions = 4;
  spec.num_egress_rifs = 6;
  // Total: 798 entries, as in the paper's Table 3 for Inst1.
  return spec;
}

WorkloadSpec WorkloadSpec::Inst2() {
  WorkloadSpec spec;
  spec.num_vrfs = 8;
  spec.num_l3_admit = 12;
  spec.num_pre_ingress = 40;
  spec.num_ipv4_routes = 700;
  spec.num_ipv6_routes = 280;
  spec.num_wcmp_groups = 16;
  spec.num_nexthops = 80;
  spec.num_neighbors = 48;
  spec.num_rifs = 20;
  spec.num_acl_ingress = 40;
  spec.num_mirror_sessions = 4;
  spec.num_egress_rifs = 8;
  spec.num_decap = 10;
  spec.num_tunnels = 48;
  // Total: 1314 entries, as in the paper's Table 3 for Inst2.
  return spec;
}

namespace {

BitString U(uint128 value, int width) {
  return BitString::FromUint(value, width);
}

// Deterministic MAC blocks: RIF source MACs, neighbor destination MACs,
// L3-admit "my MAC" addresses.
constexpr std::uint64_t kRifMacBase = 0x020000000000ull;
constexpr std::uint64_t kNeighborMacBase = 0x040000000000ull;
constexpr std::uint64_t kAdmitMacBase = 0x02AA00000000ull;

int RifOfNeighbor(int neighbor, const WorkloadSpec& spec) {
  return (neighbor - 1) % spec.num_rifs + 1;
}

int NeighborOfNexthop(int nexthop, const WorkloadSpec& spec) {
  return (nexthop - 1) % spec.num_neighbors + 1;
}

std::uint16_t PortOfRif(int rif) {
  return static_cast<std::uint16_t>((rif - 1) % kNumFrontPanelPorts + 1);
}

}  // namespace

StatusOr<std::vector<TableEntry>> GenerateEntries(const p4ir::P4Info& info,
                                                  Role role,
                                                  const WorkloadSpec& spec,
                                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<TableEntry> out;
  out.reserve(static_cast<std::size_t>(spec.TotalEntries()));
  auto add = [&](StatusOr<TableEntry> entry) -> Status {
    if (!entry.ok()) return entry.status();
    out.push_back(std::move(entry).value());
    return OkStatus();
  };

  // VRFs (allocation table; VRF 0 is reserved).
  for (int v = 1; v <= spec.num_vrfs; ++v) {
    SWITCHV_RETURN_IF_ERROR(add(EntryBuilder(info, "vrf_tbl")
                                    .Exact("vrf_id", U(v, kVrfWidth))
                                    .Action("no_action")
                                    .Build()));
  }

  // L3 admit: one catch-all plus specific router MACs.
  SWITCHV_RETURN_IF_ERROR(add(EntryBuilder(info, "l3_admit_tbl")
                                  .Priority(1)
                                  .Action("l3_admit")
                                  .Build()));
  for (int i = 2; i <= spec.num_l3_admit; ++i) {
    SWITCHV_RETURN_IF_ERROR(
        add(EntryBuilder(info, "l3_admit_tbl")
                .Ternary("dst_mac", U(kAdmitMacBase + i, 48),
                         BitString::AllOnes(48))
                .Priority(i)
                .Action("l3_admit")
                .Build()));
  }

  // Pre-ingress ACL assigning VRFs.
  for (int i = 1; i <= spec.num_pre_ingress; ++i) {
    const int vrf = (i - 1) % spec.num_vrfs + 1;
    EntryBuilder builder(info, "acl_pre_ingress_tbl");
    if (i % 2 == 0) {
      builder.Ternary("src_mac", U(0x060000000000ull + i, 48),
                      BitString::AllOnes(48));
    } else {
      // Matching on dst_ip requires ether_type == 0x0800 (constraint).
      builder
          .Ternary("dst_ip", U((10u << 24) | (static_cast<unsigned>(i) << 16),
                               32),
                   U(0xFFFF0000u, 32))
          .Ternary("ether_type", U(0x0800, 16), BitString::AllOnes(16));
    }
    SWITCHV_RETURN_IF_ERROR(
        add(builder.Priority(i)
                .Action("set_vrf", {{"vrf_id", U(vrf, kVrfWidth)}})
                .Build()));
  }

  // Router interfaces, neighbors, nexthops (dependency order).
  for (int r = 1; r <= spec.num_rifs; ++r) {
    SWITCHV_RETURN_IF_ERROR(
        add(EntryBuilder(info, "router_interface_tbl")
                .Exact("router_interface_id", U(r, kIdWidth))
                .Action("set_port_and_src_mac",
                        {{"port", U(PortOfRif(r), p4ir::kPortWidth)},
                         {"src_mac", U(kRifMacBase + r, 48)}})
                .Build()));
  }
  for (int n = 1; n <= spec.num_neighbors; ++n) {
    SWITCHV_RETURN_IF_ERROR(
        add(EntryBuilder(info, "neighbor_tbl")
                .Exact("router_interface_id",
                       U(RifOfNeighbor(n, spec), kIdWidth))
                .Exact("neighbor_id", U(n, kIdWidth))
                .Action("set_dst_mac",
                        {{"dst_mac", U(kNeighborMacBase + n, 48)}})
                .Build()));
  }
  for (int h = 1; h <= spec.num_nexthops; ++h) {
    const int neighbor = NeighborOfNexthop(h, spec);
    SWITCHV_RETURN_IF_ERROR(
        add(EntryBuilder(info, "nexthop_tbl")
                .Exact("nexthop_id", U(h, kIdWidth))
                .Action("set_nexthop",
                        {{"router_interface_id",
                          U(RifOfNeighbor(neighbor, spec), kIdWidth)},
                         {"neighbor_id", U(neighbor, kIdWidth)}})
                .Build()));
  }

  // WCMP groups: 2-4 members with mixed weights.
  for (int g = 1; g <= spec.num_wcmp_groups; ++g) {
    EntryBuilder builder(info, "wcmp_group_tbl");
    builder.Exact("wcmp_group_id", U(g, kIdWidth));
    const int members = 2 + g % 3;
    for (int m = 0; m < members; ++m) {
      const int nexthop = (g * 7 + m * 3) % spec.num_nexthops + 1;
      builder.WeightedAction("set_nexthop_id", 1 + m % 3,
                             {{"nexthop_id", U(nexthop, kIdWidth)}});
    }
    SWITCHV_RETURN_IF_ERROR(add(builder.Build()));
  }

  // Tunnels and decap endpoints (WAN only).
  for (int t = 1; t <= spec.num_tunnels; ++t) {
    SWITCHV_RETURN_IF_ERROR(
        add(EntryBuilder(info, "tunnel_encap_tbl")
                .Exact("tunnel_id", U(t, kIdWidth))
                .Action("tunnel_encap",
                        {{"src_ip", U((172u << 24) | (16u << 16) | t, 32)},
                         {"dst_ip", U((172u << 24) | (17u << 16) | t, 32)}})
                .Build()));
  }
  for (int d = 1; d <= spec.num_decap; ++d) {
    SWITCHV_RETURN_IF_ERROR(
        add(EntryBuilder(info, "decap_tbl")
                .Exact("dst_ip", U((192u << 24) | (168u << 16) | d, 32))
                .Action("tunnel_decap")
                .Build()));
  }

  // IPv4 routes across mixed prefix lengths, with correlated prefixes so
  // longest-prefix-match is actually exercised (cf. the paper's critique of
  // single-entry-per-table generation, §8).
  int c16 = 0;
  int c24 = 0;
  int c32 = 0;
  for (int i = 1; i <= spec.num_ipv4_routes; ++i) {
    const int vrf = (i - 1) % spec.num_vrfs + 1;
    if (i == 1) {
      // A default route in VRF 1, as every real deployment has: an omitted
      // LPM match is the /0 wildcard per P4Runtime.
      SWITCHV_RETURN_IF_ERROR(
          add(EntryBuilder(info, "ipv4_tbl")
                  .Exact("vrf_id", U(1, kVrfWidth))
                  .Action("set_nexthop_id", {{"nexthop_id", U(1, kIdWidth)}})
                  .Build()));
      continue;
    }
    int plen;
    std::uint32_t dst;
    switch (i % 8) {
      case 0:
        plen = 16;
        dst = (10u << 24) | ((static_cast<std::uint32_t>(c16++) & 0xFF) << 16);
        break;
      case 1:
      case 2:
      case 3:
        plen = 24;
        dst = (10u << 24) |
              ((static_cast<std::uint32_t>(c24++) & 0xFFFF) << 8);
        break;
      default:
        plen = 32;
        dst = (10u << 24) | static_cast<std::uint32_t>(c32++);
        break;
    }
    EntryBuilder builder(info, "ipv4_tbl");
    builder.Exact("vrf_id", U(vrf, kVrfWidth)).Lpm("ipv4_dst", U(dst, 32),
                                                   plen);
    const double mix = static_cast<double>(rng.Uniform(0, 99)) / 100.0;
    if (role == Role::kWan && mix < 0.10) {
      builder.Action(
          "set_tunnel",
          {{"tunnel_id", U(rng.Uniform(1, spec.num_tunnels), kIdWidth)},
           {"nexthop_id", U(rng.Uniform(1, spec.num_nexthops), kIdWidth)}});
    } else if (mix < 0.30) {
      builder.Action("set_wcmp_group_id",
                     {{"wcmp_group_id",
                       U(rng.Uniform(1, spec.num_wcmp_groups), kIdWidth)}});
    } else if (mix < 0.90) {
      builder.Action("set_nexthop_id",
                     {{"nexthop_id",
                       U(rng.Uniform(1, spec.num_nexthops), kIdWidth)}});
    } else {
      builder.Action("drop_packet");
    }
    SWITCHV_RETURN_IF_ERROR(add(builder.Build()));
  }

  // IPv6 routes under 2001:db8::/32.
  const uint128 v6_base = (static_cast<uint128>(0x20010db8u) << 96);
  int c48 = 0;
  int c64 = 0;
  int c128 = 0;
  for (int i = 1; i <= spec.num_ipv6_routes; ++i) {
    const int vrf = (i - 1) % spec.num_vrfs + 1;
    int plen;
    uint128 dst;
    switch (i % 4) {
      case 0:
        plen = 48;
        dst = v6_base | (static_cast<uint128>(c48++ & 0xFFFF) << 80);
        break;
      case 1:
      case 2:
        plen = 64;
        dst = v6_base | (static_cast<uint128>(c64++ & 0xFFFF) << 64);
        break;
      default:
        plen = 128;
        dst = v6_base | static_cast<uint128>(c128++);
        break;
    }
    EntryBuilder builder(info, "ipv6_tbl");
    builder.Exact("vrf_id", U(vrf, kVrfWidth)).Lpm("ipv6_dst", U(dst, 128),
                                                   plen);
    if (rng.Chance(0.25)) {
      builder.Action("set_wcmp_group_id",
                     {{"wcmp_group_id",
                       U(rng.Uniform(1, spec.num_wcmp_groups), kIdWidth)}});
    } else {
      builder.Action("set_nexthop_id",
                     {{"nexthop_id",
                       U(rng.Uniform(1, spec.num_nexthops), kIdWidth)}});
    }
    SWITCHV_RETURN_IF_ERROR(add(builder.Build()));
  }

  // Ingress ACL: constraint-compliant entries across the action mix.
  for (int i = 1; i <= spec.num_acl_ingress; ++i) {
    EntryBuilder builder(info, "acl_ingress_tbl");
    builder.Priority(i);
    switch (i % 8) {
      case 0:  // Punt ARP to the controller.
        builder.Ternary("ether_type", U(0x0806, 16), BitString::AllOnes(16))
            .Action("acl_trap");
        break;
      case 1:  // Drop a specific IPv4 destination block.
        builder
            .Ternary("ether_type", U(0x0800, 16), BitString::AllOnes(16))
            .Ternary("dst_ip",
                     U((10u << 24) | (250u << 16) |
                           (static_cast<unsigned>(i) << 8),
                       32),
                     U(0xFFFFFF00u, 32))
            .Action("acl_drop");
        break;
      case 2:  // Copy ICMP echo requests.
        builder.Ternary("ip_protocol", U(1, 8), BitString::AllOnes(8))
            .Ternary("icmp_type", U(8, 8), BitString::AllOnes(8))
            .Action("acl_copy");
        break;
      case 3:  // Trap BGP.
        builder.Ternary("ip_protocol", U(6, 8), BitString::AllOnes(8))
            .Ternary("l4_dst_port", U(179, 16), BitString::AllOnes(16))
            .Action("acl_trap");
        break;
      case 5:  // Copy HTTPS: overlaps with the broad TCP entry below; the
               // higher priority must win.
        builder.Priority(100 + i)
            .Ternary("ip_protocol", U(6, 8), BitString::AllOnes(8))
            .Ternary("l4_dst_port", U(443, 16), BitString::AllOnes(16))
            .Action("acl_copy");
        break;
      case 6:  // Broad TCP drop (overlapped by the entry above).
        builder.Ternary("ip_protocol", U(6, 8), BitString::AllOnes(8))
            .Action("acl_drop");
        break;
      case 7:  // Match on a rewritten field: TTL (stage-ordering bugs
               // surface here).
        builder.Ternary("ttl", U(5 + i % 3, 8), BitString::AllOnes(8))
            .Action("acl_drop");
        break;
      default:  // Mirror traffic from one ingress port.
        builder
            .Optional("in_port",
                      U((i - 1) % kNumFrontPanelPorts + 1, p4ir::kPortWidth))
            .Action("acl_mirror",
                    {{"mirror_port",
                      U(11 + (i % std::max(1, spec.num_mirror_sessions)),
                        16)}});
        break;
    }
    SWITCHV_RETURN_IF_ERROR(add(builder.Build()));
  }

  // Mirror sessions: logical port -> clone session.
  for (int m = 1; m <= spec.num_mirror_sessions; ++m) {
    SWITCHV_RETURN_IF_ERROR(
        add(EntryBuilder(info, "mirror_session_tbl")
                .Exact("mirror_port", U(10 + m, 16))
                .Action("set_clone_session", {{"session_id", U(m, 16)}})
                .Build()));
  }

  // Egress RIF replicas: must agree with the ingress router interfaces
  // (same port -> same source MAC).
  for (int p = 1; p <= spec.num_egress_rifs; ++p) {
    SWITCHV_RETURN_IF_ERROR(
        add(EntryBuilder(info, "egress_rif_tbl")
                .Exact("out_port", U(p, p4ir::kPortWidth))
                .Action("set_egress_src_mac",
                        {{"src_mac", U(kRifMacBase + p, 48)}})
                .Build()));
  }

  return out;
}

}  // namespace switchv::models
