#include "sut/p4rt_server.h"

#include <algorithm>
#include <cctype>

#include "p4runtime/decoded_entry.h"
#include "p4runtime/validator.h"

namespace switchv::sut {

using p4rt::TableEntry;

Status P4RuntimeServer::SetForwardingPipelineConfig(
    const p4rt::ForwardingPipelineConfig& config) {
  ProbeBeginUnit(probe_);
  ProbeReach(probe_, SutLayer::kP4rtServer);
  if (faulty(Fault::kP4InfoZeroByteIds)) {
    // The toolchain-produced IDs (0x02000001, ...) contain embedded zero
    // bytes, which the broken ID codec rejects.
    ProbeNoteUnitFailure(probe_);
    return InternalError(
        "failed to parse P4Info: unexpected zero byte in object id");
  }
  p4info_ = config.p4info;
  store_.clear();
  count_by_table_.clear();
  providers_.clear();
  references_.clear();
  if (faulty(Fault::kP4InfoPushFailureSwallowed)) {
    // The orchestration agent push fails internally, but the error is not
    // propagated: the controller sees success while the switch has no
    // usable table configuration.
    return OkStatus();
  }
  const Status status = agent_.ConfigureTables(*p4info_);
  if (!status.ok()) ProbeNoteUnitFailure(probe_);
  return status;
}

std::string P4RuntimeServer::AgentTableName(
    const p4ir::TableInfo& table) const {
  std::string name = table.name;
  const bool is_acl = name.starts_with("acl_") || name == "l3_admit_tbl";
  if (is_acl && faulty(Fault::kAclTableNameWrongCase)) {
    std::transform(name.begin(), name.end(), name.begin(),
                   [](unsigned char c) { return std::toupper(c); });
  }
  return name;
}

std::vector<P4RuntimeServer::RefKey> P4RuntimeServer::ReferencesOf(
    const TableEntry& entry) const {
  std::vector<RefKey> refs;
  const p4ir::TableInfo* table = p4info_->FindTable(entry.table_id);
  if (table == nullptr) return refs;
  for (const p4rt::FieldMatch& m : entry.matches) {
    const p4ir::MatchFieldInfo* field = table->FindMatchField(m.field_id);
    if (field == nullptr || !field->refers_to.has_value()) continue;
    refs.emplace_back(field->refers_to->table, field->refers_to->key,
                      m.value);
  }
  auto collect_action = [&](const p4rt::ActionInvocation& action) {
    for (const p4ir::TableParamReference& r : table->param_references) {
      if (r.action_id != action.action_id) continue;
      if (faulty(Fault::kNeighborDanglingAccepted) &&
          r.target.table == "neighbor_tbl") {
        continue;  // the reference check for neighbors is skipped
      }
      for (const p4rt::ActionInvocation::Param& p : action.params) {
        if (p.param_id == r.param_id) {
          refs.emplace_back(r.target.table, r.target.key, p.value);
        }
      }
    }
  };
  if (entry.action.kind == p4rt::TableAction::Kind::kDirect) {
    collect_action(entry.action.direct);
  } else {
    for (const p4rt::WeightedAction& wa : entry.action.action_set) {
      collect_action(wa.action);
    }
  }
  return refs;
}

std::vector<P4RuntimeServer::RefKey> P4RuntimeServer::ProvidedBy(
    const TableEntry& entry) const {
  std::vector<RefKey> provided;
  const p4ir::TableInfo* table = p4info_->FindTable(entry.table_id);
  if (table == nullptr) return provided;
  for (const p4rt::FieldMatch& m : entry.matches) {
    const p4ir::MatchFieldInfo* field = table->FindMatchField(m.field_id);
    if (field == nullptr) continue;
    provided.emplace_back(table->name, field->name, m.value);
  }
  return provided;
}

Status P4RuntimeServer::CheckReferencesExist(const TableEntry& entry) const {
  for (const RefKey& ref : ReferencesOf(entry)) {
    auto it = providers_.find(ref);
    if (it == providers_.end() || it->second <= 0) {
      return InvalidArgumentError(
          "entry references a non-existent " + std::get<0>(ref) + "." +
          std::get<1>(ref) + " (dangling @refers_to)");
    }
  }
  return OkStatus();
}

Status P4RuntimeServer::CheckNotReferenced(const TableEntry& entry) const {
  for (const RefKey& provided : ProvidedBy(entry)) {
    auto refs = references_.find(provided);
    if (refs == references_.end() || refs->second <= 0) continue;
    auto providers = providers_.find(provided);
    const int provider_count =
        providers == providers_.end() ? 0 : providers->second;
    if (provider_count <= 1) {
      return FailedPreconditionError("entry is still referenced (" +
                                     std::get<0>(provided) + "." +
                                     std::get<1>(provided) + " in use)");
    }
  }
  return OkStatus();
}

void P4RuntimeServer::IndexEntry(const TableEntry& entry, int delta) {
  for (const RefKey& provided : ProvidedBy(entry)) {
    providers_[provided] += delta;
  }
  for (const RefKey& ref : ReferencesOf(entry)) {
    references_[ref] += delta;
  }
}

Status P4RuntimeServer::ApplyInsert(const TableEntry& entry) {
  SWITCHV_RETURN_IF_ERROR(p4rt::ValidateEntrySyntax(*p4info_, entry));
  if (!faulty(Fault::kConstraintCheckSkipped)) {
    SWITCHV_ASSIGN_OR_RETURN(bool compliant,
                             p4rt::IsConstraintCompliant(*p4info_, entry));
    if (!compliant) {
      const p4ir::TableInfo* table = p4info_->FindTable(entry.table_id);
      return InvalidArgumentError("entry violates constraint of table " +
                                  table->name);
    }
  }
  const p4ir::TableInfo* table = p4info_->FindTable(entry.table_id);
  const std::string fingerprint = entry.KeyFingerprint();
  if (store_.contains(fingerprint)) {
    if (faulty(Fault::kDuplicateEntryWrongCode)) {
      return InternalError("SWSS_RC_UNKNOWN: unexpected state");
    }
    return AlreadyExistsError("entry already exists in " + table->name);
  }
  SWITCHV_RETURN_IF_ERROR(CheckReferencesExist(entry));
  if (EntryCount(entry.table_id) >= table->size) {
    // Beyond the guaranteed size the switch is allowed to accept or
    // reject; this implementation rejects deterministically.
    return ResourceExhaustedError("table " + table->name +
                                  " is at capacity");
  }
  if (faulty(Fault::kCerberusRejectsMaxLenPrefix)) {
    for (const p4rt::FieldMatch& m : entry.matches) {
      const p4ir::MatchFieldInfo* field = table->FindMatchField(m.field_id);
      if (field != nullptr && field->kind == p4ir::MatchKind::kLpm &&
          m.prefix_len == field->width) {
        return InvalidArgumentError("host routes are not supported");
      }
    }
  }
  if (faulty(Fault::kAclKeySpaceCharRejected) &&
      (table->name.starts_with("acl_") || table->name == "l3_admit_tbl")) {
    // The server serializes ACL keys with embedded spaces; the
    // orchestration agent's key-value API rejects them.
    return InternalError("orchagent: invalid key: space character");
  }
  SWITCHV_ASSIGN_OR_RETURN(p4rt::DecodedEntry decoded,
                           p4rt::DecodeEntry(*p4info_, entry));
  SWITCHV_RETURN_IF_ERROR(agent_.Insert(AgentTableName(*table), decoded));
  store_[fingerprint] = StoredEntry{entry, next_sequence_++};
  ++count_by_table_[entry.table_id];
  IndexEntry(entry, +1);
  return OkStatus();
}

Status P4RuntimeServer::ApplyModify(const TableEntry& entry) {
  SWITCHV_RETURN_IF_ERROR(p4rt::ValidateEntrySyntax(*p4info_, entry));
  if (!faulty(Fault::kConstraintCheckSkipped)) {
    SWITCHV_ASSIGN_OR_RETURN(bool compliant,
                             p4rt::IsConstraintCompliant(*p4info_, entry));
    if (!compliant) {
      return InvalidArgumentError("modified entry violates constraint");
    }
  }
  const std::string fingerprint = entry.KeyFingerprint();
  auto it = store_.find(fingerprint);
  if (it == store_.end()) {
    return NotFoundError("cannot modify non-existent entry");
  }
  if (faulty(Fault::kModifyKeepsOldActionParams)) {
    // The update is acknowledged but the stored and programmed action
    // parameters remain the old ones.
    return OkStatus();
  }
  SWITCHV_RETURN_IF_ERROR(CheckReferencesExist(entry));
  const p4ir::TableInfo* table = p4info_->FindTable(entry.table_id);
  SWITCHV_ASSIGN_OR_RETURN(p4rt::DecodedEntry old_decoded,
                           p4rt::DecodeEntry(*p4info_, it->second.entry));
  SWITCHV_ASSIGN_OR_RETURN(p4rt::DecodedEntry new_decoded,
                           p4rt::DecodeEntry(*p4info_, entry));
  SWITCHV_RETURN_IF_ERROR(
      agent_.Modify(AgentTableName(*table), old_decoded, new_decoded));
  IndexEntry(it->second.entry, -1);
  IndexEntry(entry, +1);
  it->second.entry = entry;
  return OkStatus();
}

Status P4RuntimeServer::ApplyDelete(const TableEntry& entry) {
  const std::string fingerprint = entry.KeyFingerprint();
  auto it = store_.find(fingerprint);
  if (it == store_.end()) {
    return NotFoundError("cannot delete non-existent entry");
  }
  SWITCHV_RETURN_IF_ERROR(CheckNotReferenced(it->second.entry));
  const p4ir::TableInfo* table =
      p4info_->FindTable(it->second.entry.table_id);
  SWITCHV_ASSIGN_OR_RETURN(p4rt::DecodedEntry decoded,
                           p4rt::DecodeEntry(*p4info_, it->second.entry));
  SWITCHV_RETURN_IF_ERROR(agent_.Delete(AgentTableName(*table), decoded));
  IndexEntry(it->second.entry, -1);
  --count_by_table_[it->second.entry.table_id];
  store_.erase(it);
  return OkStatus();
}

p4rt::WriteResponse P4RuntimeServer::Write(const p4rt::WriteRequest& request) {
  p4rt::WriteResponse response;
  response.statuses.resize(request.updates.size());
  // Every update in a rejected batch still reached (and failed at) the
  // application layer — the probe records one failed unit per update.
  const auto all_failed_here = [&] {
    for (std::size_t i = 0; i < request.updates.size(); ++i) {
      ProbeBeginUnit(probe_);
      ProbeReach(probe_, SutLayer::kP4rtServer);
      ProbeNoteUnitFailure(probe_);
    }
  };
  if (!p4info_.has_value()) {
    std::fill(response.statuses.begin(), response.statuses.end(),
              FailedPreconditionError("no forwarding pipeline config"));
    all_failed_here();
    return response;
  }
  if (faulty(Fault::kDeleteNonExistingFailsBatch)) {
    for (const p4rt::Update& update : request.updates) {
      if (update.type == p4rt::UpdateType::kDelete &&
          !store_.contains(update.entry.KeyFingerprint())) {
        std::fill(response.statuses.begin(), response.statuses.end(),
                  AbortedError("batch aborted: delete of missing entry"));
        all_failed_here();
        return response;
      }
    }
  }
  int ipv4_deletes_in_batch = 0;
  for (std::size_t i = 0; i < request.updates.size(); ++i) {
    const p4rt::Update& update = request.updates[i];
    ProbeBeginUnit(probe_);
    ProbeReach(probe_, SutLayer::kP4rtServer);
    switch (update.type) {
      case p4rt::UpdateType::kInsert:
        response.statuses[i] = ApplyInsert(update.entry);
        break;
      case p4rt::UpdateType::kModify:
        response.statuses[i] = ApplyModify(update.entry);
        break;
      case p4rt::UpdateType::kDelete: {
        const p4ir::TableInfo* table =
            p4info_->FindTable(update.entry.table_id);
        const bool is_ipv4_delete =
            table != nullptr && table->name == "ipv4_tbl";
        if (is_ipv4_delete) ++ipv4_deletes_in_batch;
        if (faulty(Fault::kBatchDeleteInconsistentState) && is_ipv4_delete &&
            ipv4_deletes_in_batch >= 2 &&
            store_.contains(update.entry.KeyFingerprint())) {
          // The hardware entry is removed but the server's internal state
          // keeps the entry: subsequent reads disagree with reality.
          auto it = store_.find(update.entry.KeyFingerprint());
          auto decoded = p4rt::DecodeEntry(*p4info_, it->second.entry);
          if (decoded.ok()) {
            (void)agent_.Delete(AgentTableName(*table), *decoded);
          }
          response.statuses[i] = OkStatus();
          break;
        }
        response.statuses[i] = ApplyDelete(update.entry);
        break;
      }
    }
    if (!response.statuses[i].ok()) ProbeNoteUnitFailure(probe_);
  }
  return response;
}

StatusOr<p4rt::ReadResponse> P4RuntimeServer::Read(
    const p4rt::ReadRequest& request) const {
  ProbeBeginUnit(probe_);
  ProbeReach(probe_, SutLayer::kP4rtServer);
  if (!p4info_.has_value()) {
    ProbeNoteUnitFailure(probe_);
    return FailedPreconditionError("no forwarding pipeline config");
  }
  std::vector<const StoredEntry*> stored;
  for (const auto& [fingerprint, entry] : store_) {
    if (request.table_id != 0 && entry.entry.table_id != request.table_id) {
      continue;
    }
    stored.push_back(&entry);
  }
  std::sort(stored.begin(), stored.end(),
            [](const StoredEntry* a, const StoredEntry* b) {
              return a->sequence < b->sequence;
            });
  p4rt::ReadResponse response;
  for (const StoredEntry* s : stored) {
    p4rt::TableEntry entry = s->entry;
    if (faulty(Fault::kReadTernaryUnsupported)) {
      const p4ir::TableInfo* table = p4info_->FindTable(entry.table_id);
      std::erase_if(entry.matches, [&](const p4rt::FieldMatch& m) {
        const p4ir::MatchFieldInfo* field =
            table == nullptr ? nullptr : table->FindMatchField(m.field_id);
        return field != nullptr && field->kind == p4ir::MatchKind::kTernary;
      });
    }
    response.entries.push_back(std::move(entry));
  }
  return response;
}

std::vector<TableEntry> P4RuntimeServer::InstalledEntries() const {
  std::vector<const StoredEntry*> stored;
  stored.reserve(store_.size());
  for (const auto& [fingerprint, entry] : store_) stored.push_back(&entry);
  std::sort(stored.begin(), stored.end(),
            [](const StoredEntry* a, const StoredEntry* b) {
              return a->sequence < b->sequence;
            });
  std::vector<TableEntry> entries;
  entries.reserve(stored.size());
  for (const StoredEntry* s : stored) entries.push_back(s->entry);
  return entries;
}

int P4RuntimeServer::EntryCount(std::uint32_t table_id) const {
  const auto it = count_by_table_.find(table_id);
  return it != count_by_table_.end() ? it->second : 0;
}

}  // namespace switchv::sut
