// Injectable faults for the switch under test.
//
// SwitchV's evaluation (paper §6) is defined over *bugs found*: Table 1
// splits them by component and detector, Table 2 by whether a trivial test
// suite would have caught them, Figure 7 by time-to-resolution. To measure
// rather than fabricate those results, every bug in our catalog is an
// activatable fault wired into a specific layer of the stack; the benches
// activate each fault, run SwitchV, and record whether/where it was caught.
//
// Faults are modeled on the paper's Appendix A ("Listing of selected bugs
// found in PINS") plus the bug classes described in §6.1 for Cerberus.
#ifndef SWITCHV_SUT_FAULT_H_
#define SWITCHV_SUT_FAULT_H_

#include <set>

namespace switchv::sut {

enum class Fault {
  // ---- P4Runtime server (application layer) ----
  kDeleteNonExistingFailsBatch,   // one bad delete fails the whole batch
  kModifyKeepsOldActionParams,    // MODIFY applies action id but not params
  kP4InfoPushFailureSwallowed,    // config-push errors not propagated
  kReadTernaryUnsupported,        // reads fail for entries w/ ternary fields
  kAclTableNameWrongCase,         // server capitalizes ACL table names
  kDuplicateEntryWrongCode,       // ALREADY_EXISTS reported as INTERNAL
  kPacketOutPuntedBack,           // packet-outs looped back as packet-ins
  kAclKeySpaceCharRejected,       // OA key API rejects spaces: all ACL
                                  // entries bounce
  kBatchDeleteInconsistentState,  // certain delete sequences corrupt state
  kConstraintCheckSkipped,        // @entry_restriction not enforced
  // ---- gNMI (config layer) ----
  kGnmiPortSpeedBreaksPunt,       // port reconfig breaks packet-in path
  // ---- Orchestration agent ----
  kWcmpPartialCleanup,            // failed group creation leaks members
  kWcmpRejectsDuplicateActions,   // rejects valid groups w/ equal members
  kWcmpUpdateRemovesMembers,      // update drops unchanged members
  kVrfDeleteBroken,               // VRF delete fails (ALPM flag misuse)
  kNeighborDanglingAccepted,      // accepts nexthops w/ missing neighbor
  kMirrorSessionIgnored,          // mirror sessions silently not programmed
  // ---- SyncD binary / SAI ----
  kAclResourceLeak,               // invalid entries leak TCAM slots:
                                  // RESOURCE_EXHAUSTED after 30 inserts
  kSubmitToIngressNotL3Enabled,   // submit-to-ingress packets dropped
  kDscpRemarkedToZero,            // forwarded packets get DSCP re-marked 0
  kRouteDeleteLeavesStale,        // deleted routes keep forwarding
  kEgressRifStaleSrcMac,          // egress RIF replica not updated
  // ---- Switch Linux ----
  kPortSyncDaemonRestart,         // daemon restart breaks all packet IO
  kLldpDaemonPunts,               // traditional LLDP app punts packets
  kIpv6RouterSolicitation,        // spontaneous RS packets to controller
  // ---- Hardware (ASIC) ----
  kAsicCapacityBelowGuarantee,    // rejects valid entries below table size
  kCursedPortDropsPackets,        // electric interference drops on a port
  // ---- P4 toolchain ----
  kP4InfoZeroByteIds,             // zero bytes in IDs handled incorrectly
  // ---- Input P4 program (the model is wrong; switch is right) ----
  kModelMissingTtlTrap,
  kModelMissingBroadcastDrop,
  kModelAclAfterRewrite,
  kModelWrongIcmpField,
  // ---- Cerberus-specific switch software ----
  kEncapReversedDstIp,            // endianness bug in tunnel destination
  kDecapSkipsTtlCopy,             // decap leaves outer TTL in place
  kEncapWrongProtocol,            // encap sets protocol 41 instead of 4
  kAclPriorityInverted,           // lowest priority wins in TCAM
  kLpmTreatsPrefixAsExact,        // /24 routes only match the network addr
  kWcmpSingleMemberOnly,          // hashing stuck on first member
  kCerberusRejectsMaxLenPrefix,   // valid /32 (/128) routes rejected
  kCerberusModelAclAfterRewrite,  // Cerberus model mis-ordered ACL stage
  // ---- BMv2 / reference simulator ----
  kBmv2RejectsValidOptional,      // simulator rejects valid optional match
};

// Number of faults in the catalog; wire-format parsers bounds-check
// serialized fault ids against this.
inline constexpr int kNumFaults =
    static_cast<int>(Fault::kBmv2RejectsValidOptional) + 1;

// The set of active faults. Layers consult this at the point where the
// fault's behaviour lives; no fault logic runs when the set is empty.
class FaultRegistry {
 public:
  void Activate(Fault fault) { active_.insert(fault); }
  void Deactivate(Fault fault) { active_.erase(fault); }
  void Clear() { active_.clear(); }
  bool active(Fault fault) const { return active_.contains(fault); }
  bool empty() const { return active_.empty(); }
  // The active set, sorted: the shard wire format ships a registry view to
  // out-of-process workers as a fault-id list.
  const std::set<Fault>& active_set() const { return active_; }

 private:
  std::set<Fault> active_;
};

}  // namespace switchv::sut

#endif  // SWITCHV_SUT_FAULT_H_
