#include "sut/bug_catalog.h"

namespace switchv::sut {

std::string_view ComponentName(Component component) {
  switch (component) {
    case Component::kP4RuntimeServer: return "P4Runtime Server";
    case Component::kGnmi: return "gNMI";
    case Component::kOrchestrationAgent: return "Orchestration Agent";
    case Component::kSyncdBinary: return "SyncD Binary";
    case Component::kSwitchLinux: return "Switch Linux";
    case Component::kHardware: return "Hardware";
    case Component::kP4Toolchain: return "P4 Toolchain";
    case Component::kInputP4Program: return "Input P4 Program";
    case Component::kSwitchSoftware: return "Switch software";
    case Component::kBmv2Simulator: return "BMv2 P4 Simulator";
  }
  return "?";
}

std::string_view TrivialTestName(TrivialTest test) {
  switch (test) {
    case TrivialTest::kSetP4Info: return "Set P4Info";
    case TrivialTest::kTableEntryProgramming:
      return "Table entry programming";
    case TrivialTest::kReadAllTables: return "Read all tables";
    case TrivialTest::kPacketIn: return "Packet-in";
    case TrivialTest::kPacketOut: return "Packet-out";
    case TrivialTest::kPacketForwarding: return "Packet forwarding";
    case TrivialTest::kNone: return "Not found by any test above";
  }
  return "?";
}

const std::vector<BugInfo>& BugCatalog() {
  static const std::vector<BugInfo>* const kCatalog = new std::vector<BugInfo>{
      // ---------------- PINS: P4Runtime server ----------------
      {Fault::kDeleteNonExistingFailsBatch, "delete-nonexisting-fails-batch",
       "Deleting non-existing entry causes entire batch to fail",
       Component::kP4RuntimeServer, Detector::kFuzzer, 14, TrivialTest::kNone,
       false, Stack::kPins},
      {Fault::kModifyKeepsOldActionParams, "modify-keeps-old-params",
       "Does not handle MODIFY requests correctly, leaving old action "
       "parameters unchanged in table entries",
       Component::kP4RuntimeServer, Detector::kFuzzer, 4, TrivialTest::kNone,
       false, Stack::kPins},
      {Fault::kP4InfoPushFailureSwallowed, "p4info-push-failure-swallowed",
       "P4Info push failures are not propagated up to the controller",
       Component::kP4RuntimeServer, Detector::kSymbolic, 0,
       TrivialTest::kTableEntryProgramming, true, Stack::kPins},
      {Fault::kReadTernaryUnsupported, "read-ternary-unsupported",
       "Does not support reading ternary fields",
       Component::kP4RuntimeServer, Detector::kSymbolic, 0,
       TrivialTest::kReadAllTables, false, Stack::kPins},
      {Fault::kAclTableNameWrongCase, "acl-table-name-wrong-case",
       "Does not capitalize ACL table names",
       Component::kP4RuntimeServer, Detector::kSymbolic, 16,
       TrivialTest::kTableEntryProgramming, true, Stack::kPins},
      {Fault::kDuplicateEntryWrongCode, "duplicate-entry-wrong-code",
       "Incorrect error message for duplicate entries",
       Component::kP4RuntimeServer, Detector::kFuzzer, 2, TrivialTest::kNone,
       false, Stack::kPins},
      {Fault::kPacketOutPuntedBack, "packet-out-punted-back",
       "PacketOut packets incorrectly get punted back to controller",
       Component::kP4RuntimeServer, Detector::kSymbolic, 26,
       TrivialTest::kPacketOut, false, Stack::kPins},
      {Fault::kAclKeySpaceCharRejected, "acl-key-space-char",
       "Uses an orchestration agent API that does not support the space "
       "character in keys, leading to the rejection of all ACL table entries",
       Component::kP4RuntimeServer, Detector::kSymbolic, 34,
       TrivialTest::kTableEntryProgramming, false, Stack::kPins},
      {Fault::kBatchDeleteInconsistentState, "l3-delete-inconsistent-state",
       "P4Runtime server gets into an inconsistent state after certain "
       "sequences of L3 table entry deletions",
       Component::kP4RuntimeServer, Detector::kFuzzer, 5, TrivialTest::kNone,
       false, Stack::kPins},
      {Fault::kConstraintCheckSkipped, "constraint-check-skipped",
       "@entry_restriction constraints not enforced at write time",
       Component::kP4RuntimeServer, Detector::kFuzzer, 3, TrivialTest::kNone,
       false, Stack::kPins},
      // ---------------- PINS: gNMI ----------------
      {Fault::kGnmiPortSpeedBreaksPunt, "gnmi-port-speed-breaks-punt",
       "Port speed reconfiguration via gNMI breaks the packet-in path",
       Component::kGnmi, Detector::kSymbolic, 11, TrivialTest::kPacketIn,
       true, Stack::kPins},
      // ---------------- PINS: Orchestration agent ----------------
      {Fault::kWcmpPartialCleanup, "wcmp-partial-cleanup",
       "Does not clean up all WCMP group members when creation of one fails",
       Component::kOrchestrationAgent, Detector::kFuzzer, 6,
       TrivialTest::kNone, false, Stack::kPins},
      {Fault::kWcmpRejectsDuplicateActions, "wcmp-rejects-duplicate-actions",
       "Switch rejects WCMP groups with buckets with the same action, "
       "violating the P4RT specification",
       Component::kOrchestrationAgent, Detector::kFuzzer, 157,
       TrivialTest::kTableEntryProgramming, true, Stack::kPins},
      {Fault::kWcmpUpdateRemovesMembers, "wcmp-update-removes-members",
       "A bug in WCMP group updating logic causes unchanged group members "
       "to get removed",
       Component::kOrchestrationAgent, Detector::kSymbolic, 3,
       TrivialTest::kNone, false, Stack::kPins},
      {Fault::kVrfDeleteBroken, "vrf-delete-broken",
       "VRF deletion fails due to incorrect ALPM flag usage & VRF response "
       "path is broken",
       Component::kOrchestrationAgent, Detector::kFuzzer, 15,
       TrivialTest::kNone, false, Stack::kPins},
      {Fault::kNeighborDanglingAccepted, "neighbor-dangling-accepted",
       "Accepts nexthop entries whose neighbor reference does not exist",
       Component::kOrchestrationAgent, Detector::kFuzzer, 9,
       TrivialTest::kNone, false, Stack::kPins},
      {Fault::kMirrorSessionIgnored, "mirror-session-ignored",
       "Mirror session entries are acknowledged but never programmed",
       Component::kOrchestrationAgent, Detector::kSymbolic, 12,
       TrivialTest::kNone, false, Stack::kPins},
      // ---------------- PINS: SyncD / SAI ----------------
      {Fault::kAclResourceLeak, "acl-resource-leak",
       "Does not clean up invalid entries in ACL tables, causing "
       "RESOURCE_EXHAUSTED error after 30 entries",
       Component::kSyncdBinary, Detector::kFuzzer, 120, TrivialTest::kNone,
       false, Stack::kPins},
      {Fault::kSubmitToIngressNotL3Enabled, "submit-to-ingress-dropped",
       "L3 forwarding not enabled for submit-to-ingress packets, causing "
       "them to be dropped with the new chip",
       Component::kSyncdBinary, Detector::kSymbolic, 19, TrivialTest::kNone,
       true, Stack::kPins},
      {Fault::kDscpRemarkedToZero, "dscp-remarked-to-zero",
       "Switch occasionally re-marks DSCP to 0 in forwarded packets",
       Component::kSyncdBinary, Detector::kSymbolic, 53, TrivialTest::kNone,
       true, Stack::kPins},
      {Fault::kRouteDeleteLeavesStale, "route-delete-leaves-stale",
       "Deleted routes keep forwarding in hardware (stale FIB state)",
       Component::kSyncdBinary, Detector::kSymbolic, 8, TrivialTest::kNone,
       false, Stack::kPins},
      {Fault::kEgressRifStaleSrcMac, "egress-rif-stale-src-mac",
       "Egress router-interface replica not updated on programming, leaving "
       "a stale source MAC",
       Component::kSyncdBinary, Detector::kSymbolic, 13, TrivialTest::kNone,
       false, Stack::kPins},
      // ---------------- PINS: Switch Linux ----------------
      {Fault::kPortSyncDaemonRestart, "port-sync-daemon-restart",
       "A port sync daemon restarts unexpectedly, breaking all packet IO",
       Component::kSwitchLinux, Detector::kSymbolic, 3, TrivialTest::kPacketIn,
       true, Stack::kPins},
      {Fault::kLldpDaemonPunts, "lldp-daemon-punts",
       "Runs LLDP causing packets to be punted to controller",
       Component::kSwitchLinux, Detector::kSymbolic, 9, TrivialTest::kPacketIn,
       true, Stack::kPins},
      {Fault::kIpv6RouterSolicitation, "ipv6-router-solicitation",
       "Switch sends IPv6 router solicitation packets unexpectedly",
       Component::kSwitchLinux, Detector::kSymbolic, -1, TrivialTest::kNone,
       true, Stack::kPins},
      // ---------------- PINS: Hardware ----------------
      {Fault::kAsicCapacityBelowGuarantee, "asic-capacity-below-guarantee",
       "ASIC rejects valid entries below the guaranteed table size "
       "(resource guarantees unrealistically high for the new chip)",
       Component::kHardware, Detector::kFuzzer, 47, TrivialTest::kNone, true,
       Stack::kPins},
      // ---------------- PINS: P4 toolchain ----------------
      {Fault::kP4InfoZeroByteIds, "p4info-zero-byte-ids",
       "Incorrect handling of zero bytes in IDs",
       Component::kP4Toolchain, Detector::kFuzzer, 22, TrivialTest::kSetP4Info,
       false, Stack::kPins},
      // ---------------- PINS: Input P4 program ----------------
      {Fault::kModelMissingTtlTrap, "model-missing-ttl-trap",
       "P4 program does not reflect the chip's built-in trap that punts "
       "packets with TTL 0 or 1",
       Component::kInputP4Program, Detector::kSymbolic, 19,
       TrivialTest::kNone, true, Stack::kPins},
      {Fault::kModelMissingBroadcastDrop, "model-missing-broadcast-drop",
       "P4 program does not reflect that switch drops IPv4 packets with "
       "destination IP 255.255.255.255",
       Component::kInputP4Program, Detector::kSymbolic, 36,
       TrivialTest::kNone, false, Stack::kPins},
      {Fault::kModelAclAfterRewrite, "model-acl-after-rewrite",
       "Header fields get rewritten before ACL is applied (model has the "
       "stages in the wrong order)",
       Component::kInputP4Program, Detector::kSymbolic, 14,
       TrivialTest::kNone, false, Stack::kPins},
      {Fault::kModelWrongIcmpField, "model-wrong-icmp-field",
       "Program matches on the wrong ICMP field",
       Component::kInputP4Program, Detector::kSymbolic, 13,
       TrivialTest::kPacketIn, false, Stack::kPins},
      // ---------------- Cerberus: switch software ----------------
      {Fault::kEncapReversedDstIp, "encap-reversed-dst-ip",
       "Switch software reverses the destination IP address used for packet "
       "encapsulation (endianness issue)",
       Component::kSwitchSoftware, Detector::kSymbolic, 10,
       TrivialTest::kNone, false, Stack::kCerberus},
      {Fault::kDecapSkipsTtlCopy, "decap-skips-ttl-copy",
       "Decapsulation keeps the outer TTL instead of restoring the inner one",
       Component::kSwitchSoftware, Detector::kSymbolic, 17,
       TrivialTest::kNone, false, Stack::kCerberus},
      {Fault::kEncapWrongProtocol, "encap-wrong-protocol",
       "Encapsulation sets IP protocol 41 instead of 4 (IP-in-IP)",
       Component::kSwitchSoftware, Detector::kSymbolic, 6, TrivialTest::kNone,
       false, Stack::kCerberus},
      {Fault::kAclPriorityInverted, "acl-priority-inverted",
       "TCAM programs ACL priorities inverted: the lowest priority entry "
       "wins",
       Component::kSwitchSoftware, Detector::kSymbolic, 24,
       TrivialTest::kNone, false, Stack::kCerberus},
      {Fault::kLpmTreatsPrefixAsExact, "lpm-treats-prefix-as-exact",
       "Routes with non-host prefixes only match the network address "
       "(prefix installed as exact match)",
       Component::kSwitchSoftware, Detector::kSymbolic, 12,
       TrivialTest::kNone, false, Stack::kCerberus},
      {Fault::kWcmpSingleMemberOnly, "wcmp-single-member-only",
       "WCMP hashing is stuck on the first group member",
       Component::kSwitchSoftware, Detector::kSymbolic, 31,
       TrivialTest::kNone, false, Stack::kCerberus},
      {Fault::kCerberusRejectsMaxLenPrefix, "rejects-max-len-prefix",
       "Valid host routes (/32, /128) are rejected by the control API",
       Component::kSwitchSoftware, Detector::kFuzzer, 5, TrivialTest::kNone,
       false, Stack::kCerberus},
      // ---------------- Cerberus: hardware ----------------
      {Fault::kCursedPortDropsPackets, "cursed-port-drops-packets",
       "The hardware dropped packets on a port with a certain port speed "
       "due to electric interference",
       Component::kHardware, Detector::kSymbolic, 40, TrivialTest::kNone,
       false, Stack::kCerberus},
      // ---------------- Cerberus: input P4 program ----------------
      {Fault::kCerberusModelAclAfterRewrite, "cerberus-model-acl-order",
       "Cerberus model applies the ACL stage after header rewrite; the "
       "switch applies it before",
       Component::kInputP4Program, Detector::kSymbolic, 18,
       TrivialTest::kNone, false, Stack::kCerberus},
      // ---------------- Cerberus: BMv2 simulator ----------------
      {Fault::kBmv2RejectsValidOptional, "bmv2-rejects-valid-optional",
       "The reference simulator rejects valid optional match fields at "
       "entry installation",
       Component::kBmv2Simulator, Detector::kFuzzer, 30, TrivialTest::kNone,
       false, Stack::kCerberus},
  };
  return *kCatalog;
}

const BugInfo* FindBug(Fault fault) {
  for (const BugInfo& bug : BugCatalog()) {
    if (bug.fault == fault) return &bug;
  }
  return nullptr;
}

}  // namespace switchv::sut
