// The bug catalog: metadata for every injectable fault.
//
// Substitutes for the paper's two years of recorded bug history (see
// DESIGN.md §1): each catalog row carries the component the bug lives in,
// the SwitchV component expected to detect it, the days-to-resolution used
// for Figure 7, which trivial test (if any) of §6.2 would catch it for
// Table 2, whether it is an integration bug (§6.1's 33% statistic), and
// which stack (PINS or Cerberus) it belongs to. Values are modeled on
// Appendix A; the distribution across buckets reproduces the paper's shape
// at catalog scale.
#ifndef SWITCHV_SUT_BUG_CATALOG_H_
#define SWITCHV_SUT_BUG_CATALOG_H_

#include <string>
#include <vector>

#include "sut/fault.h"

namespace switchv::sut {

// Component attribution, matching the rows of the paper's Table 1.
enum class Component {
  kP4RuntimeServer,
  kGnmi,
  kOrchestrationAgent,
  kSyncdBinary,
  kSwitchLinux,
  kHardware,
  kP4Toolchain,
  kInputP4Program,
  kSwitchSoftware,   // Cerberus coarse-grained bucket
  kBmv2Simulator,
};

std::string_view ComponentName(Component component);

// Which SwitchV component is expected to detect the bug.
enum class Detector { kFuzzer, kSymbolic };

// The trivial integration tests of §6.2, in sequence order. kNone means the
// trivial suite would not find the bug.
enum class TrivialTest {
  kSetP4Info,
  kTableEntryProgramming,
  kReadAllTables,
  kPacketIn,
  kPacketOut,
  kPacketForwarding,
  kNone,
};

std::string_view TrivialTestName(TrivialTest test);

enum class Stack { kPins, kCerberus };

struct BugInfo {
  Fault fault;
  std::string name;         // short human identifier
  std::string description;  // Appendix-A style one-liner
  Component component;
  Detector expected_detector;
  // Days until the bug was resolved; -1 = unresolved as of writing.
  int days_to_resolution = 0;
  TrivialTest trivial_test = TrivialTest::kNone;
  bool integration_bug = false;
  Stack stack = Stack::kPins;
};

// The full catalog, in a stable order.
const std::vector<BugInfo>& BugCatalog();

// Lookup by fault; never null for faults in the catalog.
const BugInfo* FindBug(Fault fault);

}  // namespace switchv::sut

#endif  // SWITCHV_SUT_BUG_CATALOG_H_
