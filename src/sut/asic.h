// The fixed-function ASIC simulator.
//
// The "hardware" at the bottom of the switch-under-test stack. It is NOT an
// interpreter of the P4 model: its pipeline is rigid C++ (parse raw bytes at
// fixed offsets, trie-based route lookup, first-match TCAM scan, in-place
// byte rewrites), programmed through a SAI-like object API by SyncD. The P4
// model *describes* this pipeline; SwitchV checks that the description and
// this implementation agree.
//
// Several catalog faults live here (hardware and Cerberus switch-software
// bugs): reversed encap destination, wrong encap protocol, TTL lost on
// decap, inverted ACL priority, LPM-as-exact, single-member WCMP, cursed
// egress port, capacity below the guarantee, DSCP re-marking, stale routes.
#ifndef SWITCHV_SUT_ASIC_H_
#define SWITCHV_SUT_ASIC_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "packet/packet.h"
#include "sut/fault.h"
#include "sut/lpm_trie.h"
#include "util/status.h"

namespace switchv::sut {

// Hardware-level ACL match field identifiers (fixed by the ASIC).
enum class AclFieldId {
  kEtherType,
  kSrcMac,
  kDstMac,
  kSrcIpv4,
  kDstIpv4,
  kSrcIpv6,
  kDstIpv6,
  kIpProtocol,
  kTtl,
  kDscp,
  kL4SrcPort,
  kL4DstPort,
  kIcmpType,
  kIcmpCode,
  kInPort,
};

struct AclFieldMatch {
  AclFieldId field;
  uint128 value = 0;
  uint128 mask = 0;
};

enum class AclActionKind { kDrop, kTrap, kCopy, kMirror, kSetVrf, kAdmit };

struct AclRule {
  int priority = 0;
  std::vector<AclFieldMatch> fields;
  AclActionKind action = AclActionKind::kDrop;
  std::uint32_t arg = 0;  // vrf for kSetVrf, mirror port for kMirror
};

enum class AclStage { kL3Admit, kPreIngress, kIngress };

// Route action in hardware form.
struct RouteAction {
  enum class Kind { kDrop, kNexthop, kWcmpGroup, kTunnelNexthop };
  Kind kind = Kind::kDrop;
  std::uint32_t nexthop_id = 0;
  std::uint32_t group_id = 0;
  std::uint32_t tunnel_id = 0;
};

struct WcmpMember {
  std::uint32_t nexthop_id = 0;
  int weight = 1;
};

// Per-object-type capacity limits of the chip.
struct AsicCapacities {
  int vrfs = 64;
  int ipv4_routes = 4096;
  int ipv6_routes = 2048;
  int nexthops = 2048;
  int neighbors = 2048;
  int rifs = 512;
  int wcmp_groups = 256;
  // TCAM budgets are tight: slightly above the guaranteed table size, so a
  // correct stack never exhausts them but leaked slots quickly do.
  int acl_ingress = 264;  // Inst2 guarantees 256
  int acl_pre_ingress = 512;
  int acl_l3_admit = 256;
  int mirror_sessions = 32;
  int tunnels = 256;
  int decap_entries = 128;
};

class AsicSimulator {
 public:
  // `faults` must outlive the simulator; may be nullptr (no faults).
  explicit AsicSimulator(const FaultRegistry* faults);

  // ------- Programming API (called by SyncD) -------
  Status CreateVrf(std::uint32_t vrf);
  Status RemoveVrf(std::uint32_t vrf);
  Status AddIpv4Route(std::uint32_t vrf, std::uint32_t prefix, int prefix_len,
                      const RouteAction& action);
  Status RemoveIpv4Route(std::uint32_t vrf, std::uint32_t prefix,
                         int prefix_len);
  Status AddIpv6Route(std::uint32_t vrf, uint128 prefix, int prefix_len,
                      const RouteAction& action);
  Status RemoveIpv6Route(std::uint32_t vrf, uint128 prefix, int prefix_len);
  Status SetNexthop(std::uint32_t nexthop_id, std::uint32_t rif_id,
                    std::uint32_t neighbor_id);
  Status RemoveNexthop(std::uint32_t nexthop_id);
  Status SetNeighbor(std::uint32_t rif_id, std::uint32_t neighbor_id,
                     std::uint64_t dst_mac);
  Status RemoveNeighbor(std::uint32_t rif_id, std::uint32_t neighbor_id);
  Status SetRif(std::uint32_t rif_id, std::uint16_t port,
                std::uint64_t src_mac);
  Status RemoveRif(std::uint32_t rif_id);
  Status SetWcmpGroup(std::uint32_t group_id, std::vector<WcmpMember> members);
  Status RemoveWcmpGroup(std::uint32_t group_id);
  // Returns an opaque rule handle for removal.
  StatusOr<std::uint64_t> AddAclRule(AclStage stage, const AclRule& rule);
  Status RemoveAclRule(AclStage stage, std::uint64_t handle);
  Status SetMirrorSession(std::uint32_t mirror_port, std::uint16_t dest_port);
  Status RemoveMirrorSession(std::uint32_t mirror_port);
  Status SetEgressRif(std::uint16_t port, std::uint64_t src_mac);
  Status RemoveEgressRif(std::uint16_t port);
  Status SetTunnel(std::uint32_t tunnel_id, std::uint32_t src_ip,
                   std::uint32_t dst_ip);
  Status RemoveTunnel(std::uint32_t tunnel_id);
  Status AddDecapEndpoint(std::uint32_t dst_ip);
  Status RemoveDecapEndpoint(std::uint32_t dst_ip);

  // Consumes an ingress TCAM slot without a rule attached (models leaked
  // hardware resources; used by the kAclResourceLeak fault in SyncD).
  void LeakIngressAclSlot() { ++leaked_acl_slots_; }

  const AsicCapacities& capacities() const { return capacities_; }
  void set_capacities(const AsicCapacities& caps) { capacities_ = caps; }
  // ACL stages are carved out of the TCAM at config-push time, sized to
  // the guarantees the P4 program declares (plus small headroom).
  void SetAclCapacity(AclStage stage, int capacity);

  // ------- Dataplane -------
  // Forwards one packet. Deterministic: WCMP member selection uses the
  // chip's (private) flow hash over the 5-tuple.
  packet::ForwardingOutcome Forward(std::string_view bytes,
                                    std::uint16_t ingress_port) const;

  // Raw fixed-offset packet view; public so the parser helpers in the
  // implementation file can operate on it.
  struct ParsedView;

 private:
  bool RuleMatches(const AclRule& rule, const ParsedView& view,
                   std::uint16_t ingress_port) const;
  const AclRule* FirstMatch(AclStage stage, const ParsedView& view,
                            std::uint16_t ingress_port) const;

  bool faulty(Fault f) const { return faults_ != nullptr && faults_->active(f); }

  const FaultRegistry* faults_;
  AsicCapacities capacities_;

  std::map<std::uint32_t, bool> vrfs_;
  std::map<std::uint32_t, LpmTrie<RouteAction>> v4_routes_;   // by vrf
  std::map<std::uint32_t, LpmTrie<RouteAction>> v6_routes_;   // by vrf
  int v4_route_count_ = 0;
  int v6_route_count_ = 0;
  std::map<std::uint32_t, std::pair<std::uint32_t, std::uint32_t>> nexthops_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t> neighbors_;
  std::map<std::uint32_t, std::pair<std::uint16_t, std::uint64_t>> rifs_;
  std::map<std::uint32_t, std::vector<WcmpMember>> wcmp_groups_;
  std::map<AclStage, std::map<std::uint64_t, AclRule>> acl_stages_;
  std::map<std::uint32_t, std::uint16_t> mirror_sessions_;
  std::map<std::uint16_t, std::uint64_t> egress_rifs_;
  std::map<std::uint32_t, std::pair<std::uint32_t, std::uint32_t>> tunnels_;
  std::map<std::uint32_t, bool> decap_endpoints_;
  // Leaked TCAM slots (kAclResourceLeak).
  mutable int leaked_acl_slots_ = 0;
  std::uint64_t next_acl_handle_ = 1;
};

}  // namespace switchv::sut

#endif  // SWITCHV_SUT_ASIC_H_
