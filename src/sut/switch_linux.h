// The "Switch Linux" layer: the OS under the switch stack, with its
// daemons. Healthy, it is invisible; its catalog faults make daemons
// interfere with the SDN dataplane — a traditional LLDP agent punting
// packets to the controller, spontaneous IPv6 router solicitations, and a
// port-sync daemon whose restart breaks packet IO (paper §6.1, Appendix A).
#ifndef SWITCHV_SUT_SWITCH_LINUX_H_
#define SWITCHV_SUT_SWITCH_LINUX_H_

#include <string>
#include <vector>

#include "p4runtime/messages.h"
#include "sut/fault.h"

namespace switchv::sut {

class SwitchLinux {
 public:
  explicit SwitchLinux(const FaultRegistry* faults) : faults_(faults) {}

  // One scheduling quantum of daemon activity: returns packets the daemons
  // injected toward the controller (empty when healthy).
  std::vector<p4rt::PacketIn> Tick();

  // False while the port-sync daemon is mid-restart: all packet IO is down.
  bool packet_io_healthy() const {
    return faults_ == nullptr ||
           !faults_->active(Fault::kPortSyncDaemonRestart);
  }

 private:
  const FaultRegistry* faults_;
  std::uint64_t tick_ = 0;
};

}  // namespace switchv::sut

#endif  // SWITCHV_SUT_SWITCH_LINUX_H_
