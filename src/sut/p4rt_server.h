// The P4Runtime server of the switch under test (application layer).
//
// Receives control-plane requests, validates them against the pushed
// P4Info — syntax, @entry_restriction constraints, and @refers_to
// referential integrity (insertions may only reference installed entries;
// installed entries may not be deleted while referenced, matching SAI's
// object-in-use semantics) — and applies them to the hardware through the
// orchestration agent. Maintains the application-level entry store served
// by reads.
//
// Hosts the largest share of catalog faults, mirroring the paper's Table 1
// where the (new, under-development) P4Runtime server accounts for the
// plurality of bugs.
#ifndef SWITCHV_SUT_P4RT_SERVER_H_
#define SWITCHV_SUT_P4RT_SERVER_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "p4runtime/messages.h"
#include "sut/layer_probe.h"
#include "sut/orchestration.h"

namespace switchv::sut {

class P4RuntimeServer {
 public:
  P4RuntimeServer(OrchestrationAgent& agent, const FaultRegistry* faults)
      : agent_(agent), faults_(faults) {}

  // Optional layer-attribution probe (owned by SwitchUnderTest). The server
  // brackets per-update units and marks its own depth; deeper layers mark
  // theirs through their own probe pointers.
  void set_probe(StackProbe* probe) { probe_ = probe; }

  // Pushes the pipeline config (P4Info). Configures the orchestration
  // agent's table translations.
  Status SetForwardingPipelineConfig(const p4rt::ForwardingPipelineConfig&
                                         config);

  bool has_config() const { return p4info_.has_value(); }
  const p4ir::P4Info& p4info() const { return *p4info_; }

  // Processes a batch write; returns one status per update. The batch is
  // applied in request order (an admissible order per the P4Runtime spec).
  p4rt::WriteResponse Write(const p4rt::WriteRequest& request);

  // Reads back installed entries (all tables, or one).
  StatusOr<p4rt::ReadResponse> Read(const p4rt::ReadRequest& request) const;

  // The installed entries in insertion order (used to configure the
  // reference simulator with the switch's current state).
  std::vector<p4rt::TableEntry> InstalledEntries() const;

  int EntryCount(std::uint32_t table_id) const;

 private:
  bool faulty(Fault f) const {
    return faults_ != nullptr && faults_->active(f);
  }

  Status ApplyInsert(const p4rt::TableEntry& entry);
  Status ApplyModify(const p4rt::TableEntry& entry);
  Status ApplyDelete(const p4rt::TableEntry& entry);

  // Reference bookkeeping. A key (table, key_name, value) is "provided" by
  // installed entries and "referenced" by entries whose @refers_to points
  // at it.
  using RefKey = std::tuple<std::string, std::string, std::string>;
  std::vector<RefKey> ReferencesOf(const p4rt::TableEntry& entry) const;
  std::vector<RefKey> ProvidedBy(const p4rt::TableEntry& entry) const;
  Status CheckReferencesExist(const p4rt::TableEntry& entry) const;
  Status CheckNotReferenced(const p4rt::TableEntry& entry) const;
  void IndexEntry(const p4rt::TableEntry& entry, int delta);

  // The table name handed to the orchestration agent (fault-mangled for
  // ACL tables under the name-case bug).
  std::string AgentTableName(const p4ir::TableInfo& table) const;

  OrchestrationAgent& agent_;
  const FaultRegistry* faults_;
  StackProbe* probe_ = nullptr;
  std::optional<p4ir::P4Info> p4info_;

  struct StoredEntry {
    p4rt::TableEntry entry;
    std::uint64_t sequence = 0;
  };
  // Keyed by entry identity fingerprint.
  std::map<std::string, StoredEntry> store_;
  // Live entries per table, maintained on insert/delete so the capacity
  // check in ApplyInsert is O(log tables) instead of a full store scan.
  std::map<std::uint32_t, int> count_by_table_;
  std::uint64_t next_sequence_ = 0;
  std::map<RefKey, int> providers_;
  std::map<RefKey, int> references_;
};

}  // namespace switchv::sut

#endif  // SWITCHV_SUT_P4RT_SERVER_H_
