// SwitchUnderTest: the assembled PINS-like switch (paper Figure 4).
//
// Owns the full layer stack — P4Runtime server over orchestration agent
// over SyncD over the ASIC simulator, beside the Switch Linux daemons — and
// exposes exactly the black-box surface SwitchV validates: the P4Runtime
// control API (config push, batch writes, reads, packet-out), the dataplane
// (inject a packet on a port, observe forwarding), and the packet-in
// channel toward the controller.
#ifndef SWITCHV_SUT_SWITCH_STACK_H_
#define SWITCHV_SUT_SWITCH_STACK_H_

#include <memory>
#include <vector>

#include "bmv2/interpreter.h"
#include "sut/gnmi.h"
#include "sut/layer_probe.h"
#include "sut/p4rt_server.h"
#include "sut/switch_linux.h"

namespace switchv::sut {

// Per-instance I/O tally. The stack is single-threaded (each campaign shard
// owns its own instance), so plain integers suffice; the campaign engine
// scrapes these into its thread-safe metrics after the shard completes.
struct IoCounters {
  std::uint64_t writes = 0;
  std::uint64_t reads = 0;
  std::uint64_t packets_injected = 0;
  std::uint64_t packet_outs = 0;
};

class SwitchUnderTest {
 public:
  // `faults` may be nullptr for a healthy switch and must outlive the
  // stack. `clone_sessions` is the packet-replication-engine config shared
  // with the reference simulator.
  SwitchUnderTest(const FaultRegistry* faults,
                  bmv2::CloneSessionMap clone_sessions,
                  std::uint16_t cpu_port);

  // ----- Control plane API (what the SDN controller sees) -----
  Status SetForwardingPipelineConfig(const p4ir::P4Info& p4info);
  p4rt::WriteResponse Write(const p4rt::WriteRequest& request);
  StatusOr<p4rt::ReadResponse> Read(const p4rt::ReadRequest& request);
  Status PacketOut(const p4rt::PacketOut& packet);

  // ----- Dataplane surface -----
  // Injects a packet on a front-panel port and returns the observed
  // behaviour. The punt flag reflects what the controller actually
  // receives (a broken packet-in path suppresses it). Punted packets are
  // also queued on the packet-in channel.
  packet::ForwardingOutcome InjectPacket(std::string_view bytes,
                                         std::uint16_t ingress_port);

  // Packets emitted by packet-out (port, bytes), in order.
  std::vector<std::pair<std::uint16_t, std::string>> DrainEgress();

  // Controller-visible packet-ins: punts plus daemon-injected noise.
  std::vector<p4rt::PacketIn> DrainPacketIns();

  // One daemon scheduling quantum (the nightly harness calls this as part
  // of its run loop).
  void Tick();

  P4RuntimeServer& server() { return *server_; }
  AsicSimulator& asic() { return *asic_; }
  GnmiServer& gnmi() { return *gnmi_; }

  const IoCounters& io_counters() const { return io_; }

  // Layer-attribution probe (sut/layer_probe.h): tracks the deepest stack
  // layer each control-plane update / data-plane packet reached. Reset at
  // the start of every top-level API call; the harness reads it right
  // after the call returns.
  const StackProbe& probe() const { return probe_; }

  // Standard bring-up: hostname plus port-speed config for the front-panel
  // ports, as a provisioning system would push before validation starts.
  Status ApplyStandardBringUpConfig(int num_ports = 8);

 private:
  bool faulty(Fault f) const {
    return faults_ != nullptr && faults_->active(f);
  }

  const FaultRegistry* faults_;
  std::uint16_t cpu_port_;
  IoCounters io_;
  StackProbe probe_;
  std::unique_ptr<AsicSimulator> asic_;
  std::unique_ptr<SyncdBinary> syncd_;
  std::unique_ptr<OrchestrationAgent> agent_;
  std::unique_ptr<P4RuntimeServer> server_;
  std::unique_ptr<GnmiServer> gnmi_;
  std::unique_ptr<SwitchLinux> switch_linux_;
  std::vector<p4rt::PacketIn> packet_in_queue_;
  std::vector<std::pair<std::uint16_t, std::string>> egress_queue_;
};

}  // namespace switchv::sut

#endif  // SWITCHV_SUT_SWITCH_STACK_H_
