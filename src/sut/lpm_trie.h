// A binary longest-prefix-match trie, as an ASIC route table would use.
//
// Deliberately a different matching algorithm than the reference
// interpreter's priority scan, so the two dataplanes are independent
// implementations of the same specification (differential testing).
#ifndef SWITCHV_SUT_LPM_TRIE_H_
#define SWITCHV_SUT_LPM_TRIE_H_

#include <memory>
#include <optional>

#include "util/bitstring.h"

namespace switchv::sut {

template <typename T>
class LpmTrie {
 public:
  explicit LpmTrie(int width) : width_(width) {}

  // Inserts (or overwrites) a prefix. Prefix bits beyond `prefix_len` are
  // ignored. Returns false if the prefix already existed (overwritten).
  bool Insert(uint128 prefix, int prefix_len, T value) {
    Node* node = &root_;
    for (int i = 0; i < prefix_len; ++i) {
      const bool bit = (prefix >> (width_ - 1 - i)) & 1;
      std::unique_ptr<Node>& child = bit ? node->one : node->zero;
      if (!child) child = std::make_unique<Node>();
      node = child.get();
    }
    const bool fresh = !node->value.has_value();
    node->value = std::move(value);
    return fresh;
  }

  // Removes a prefix; returns false if it was not present.
  bool Remove(uint128 prefix, int prefix_len) {
    Node* node = &root_;
    for (int i = 0; i < prefix_len && node != nullptr; ++i) {
      const bool bit = (prefix >> (width_ - 1 - i)) & 1;
      node = (bit ? node->one : node->zero).get();
    }
    if (node == nullptr || !node->value.has_value()) return false;
    node->value.reset();
    return true;
  }

  // Longest-prefix lookup; nullptr on miss.
  const T* Lookup(uint128 key) const {
    const T* best = nullptr;
    const Node* node = &root_;
    for (int i = 0; i <= width_ && node != nullptr; ++i) {
      if (node->value.has_value()) best = &*node->value;
      if (i == width_) break;
      const bool bit = (key >> (width_ - 1 - i)) & 1;
      node = (bit ? node->one : node->zero).get();
    }
    return best;
  }

  // Exact-prefix lookup (for reads); nullptr if absent.
  const T* Find(uint128 prefix, int prefix_len) const {
    const Node* node = &root_;
    for (int i = 0; i < prefix_len && node != nullptr; ++i) {
      const bool bit = (prefix >> (width_ - 1 - i)) & 1;
      node = (bit ? node->one : node->zero).get();
    }
    if (node == nullptr || !node->value.has_value()) return nullptr;
    return &*node->value;
  }

  int size() const { return Count(root_); }

 private:
  struct Node {
    std::optional<T> value;
    std::unique_ptr<Node> zero;
    std::unique_ptr<Node> one;
  };

  static int Count(const Node& node) {
    int n = node.value.has_value() ? 1 : 0;
    if (node.zero) n += Count(*node.zero);
    if (node.one) n += Count(*node.one);
    return n;
  }

  int width_;
  Node root_;
};

}  // namespace switchv::sut

#endif  // SWITCHV_SUT_LPM_TRIE_H_
