#include "sut/gnmi.h"

namespace switchv::sut {

Status GnmiServer::Set(const std::string& path, const std::string& value) {
  if (path.empty() || path[0] != '/') {
    return InvalidArgumentError("gNMI paths must be absolute: " + path);
  }
  config_[path] = value;
  if (faults_ != nullptr && faults_->active(Fault::kGnmiPortSpeedBreaksPunt) &&
      path.find("port-speed") != std::string::npos) {
    // The reconfiguration restarts the port datapath; the punt channel
    // never comes back up.
    punt_path_corrupted_ = true;
  }
  return OkStatus();
}

StatusOr<std::string> GnmiServer::Get(const std::string& path) const {
  auto it = config_.find(path);
  if (it == config_.end()) {
    return NotFoundError("no such gNMI path: " + path);
  }
  return it->second;
}

}  // namespace switchv::sut
