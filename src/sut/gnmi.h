// A minimal gNMI-style configuration service (paper Figure 4 lists gNMI as
// a switch component; Table 1 attributes 2 bugs to it).
//
// Holds an OpenConfig-flavoured path -> value tree. SwitchV does not
// validate management configuration itself (out of scope, §2), but the
// config path interacts with the dataplane: the catalog's gNMI bug makes a
// port-speed reconfiguration corrupt the packet-in path as a side effect,
// which data-plane validation then observes.
#ifndef SWITCHV_SUT_GNMI_H_
#define SWITCHV_SUT_GNMI_H_

#include <map>
#include <string>

#include "sut/fault.h"
#include "util/status.h"

namespace switchv::sut {

class GnmiServer {
 public:
  explicit GnmiServer(const FaultRegistry* faults) : faults_(faults) {}

  // Sets a config path, e.g.
  // "/interfaces/interface[name=Ethernet4]/ethernet/config/port-speed".
  Status Set(const std::string& path, const std::string& value);

  // Reads a config path back; NOT_FOUND if never set.
  StatusOr<std::string> Get(const std::string& path) const;

  std::size_t config_size() const { return config_.size(); }

  // True once a faulty port-speed reconfiguration has corrupted the punt
  // path (kGnmiPortSpeedBreaksPunt).
  bool punt_path_corrupted() const { return punt_path_corrupted_; }

 private:
  const FaultRegistry* faults_;
  std::map<std::string, std::string> config_;
  bool punt_path_corrupted_ = false;
};

}  // namespace switchv::sut

#endif  // SWITCHV_SUT_GNMI_H_
