#include "sut/orchestration.h"

#include <algorithm>

namespace switchv::sut {

using p4rt::DecodedEntry;

// ---------------------------------------------------------------------------
// SyncdBinary
// ---------------------------------------------------------------------------

StatusOr<std::uint64_t> SyncdBinary::AddAclRule(AclStage stage,
                                                const AclRule& rule) {
  ProbeReach(probe_, SutLayer::kSyncdSai);
  auto handle = asic().AddAclRule(stage, rule);
  if (handle.ok() && stage == AclStage::kIngress &&
      faulty(Fault::kAclResourceLeak)) {
    // Each installation leaves invalid shadow entries behind in the TCAM
    // (the failed first programming attempt and its retry) that cleanup
    // never reclaims.
    asic_.LeakIngressAclSlot();
    asic_.LeakIngressAclSlot();
  }
  return handle;
}

Status SyncdBinary::RemoveAclRule(AclStage stage, std::uint64_t handle) {
  ProbeReach(probe_, SutLayer::kSyncdSai);
  SWITCHV_RETURN_IF_ERROR(asic().RemoveAclRule(stage, handle));
  if (faulty(Fault::kAclResourceLeak) && stage == AclStage::kIngress) {
    // Cleanup does not return the TCAM slot to the free pool.
    asic_.LeakIngressAclSlot();
  }
  return OkStatus();
}

Status SyncdBinary::SetMirrorSession(std::uint32_t mirror_port,
                                     std::uint16_t session) {
  ProbeReach(probe_, SutLayer::kSyncdSai);
  auto it = pre_config_.find(session);
  if (it == pre_config_.end()) {
    return OkStatus();  // unconfigured session: cloning is a no-op
  }
  return asic().SetMirrorSession(mirror_port, it->second);
}

Status SyncdBinary::RemoveMirrorSession(std::uint32_t mirror_port) {
  ProbeReach(probe_, SutLayer::kSyncdSai);
  // Removing a session that never reached hardware is a no-op.
  const Status status = asic().RemoveMirrorSession(mirror_port);
  if (status.code() == StatusCode::kNotFound) return OkStatus();
  return status;
}

// ---------------------------------------------------------------------------
// OrchestrationAgent
// ---------------------------------------------------------------------------

Status OrchestrationAgent::ConfigureTables(const p4ir::P4Info& info) {
  ProbeReach(probe_, SutLayer::kOrchestration);
  configured_tables_.clear();
  table_key_names_.clear();
  table_key_kinds_.clear();
  for (const p4ir::TableInfo& table : info.tables()) {
    configured_tables_.insert(table.name);
    // ACL stages are sized from the guarantees in the pushed P4 program
    // ("the same P4 program is used to configure the ACLs", paper §2) with
    // a small TCAM headroom.
    if (table.name == "acl_ingress_tbl") {
      syncd_.asic().SetAclCapacity(AclStage::kIngress, table.size + 8);
    } else if (table.name == "acl_pre_ingress_tbl") {
      syncd_.asic().SetAclCapacity(AclStage::kPreIngress, table.size + 8);
    } else if (table.name == "l3_admit_tbl") {
      syncd_.asic().SetAclCapacity(AclStage::kL3Admit, table.size + 8);
    }
    std::vector<std::string> names;
    std::vector<p4ir::MatchKind> kinds;
    for (const p4ir::MatchFieldInfo& f : table.match_fields) {
      names.push_back(f.name);
      kinds.push_back(f.kind);
    }
    table_key_names_[table.name] = std::move(names);
    table_key_kinds_[table.name] = std::move(kinds);
  }
  configured_ = true;
  return OkStatus();
}

bool OrchestrationAgent::IsAclTable(const std::string& name) {
  return name == "acl_ingress_tbl" || name == "acl_pre_ingress_tbl" ||
         name == "l3_admit_tbl";
}

std::string OrchestrationAgent::EntryKey(const DecodedEntry& entry) {
  std::string key = entry.table_name + "|";
  for (const p4rt::DecodedMatch& m : entry.matches) {
    key += m.present ? m.value.ToString() + "&" + m.mask.ToString() + ";"
                     : "*;";
  }
  key += "p" + std::to_string(entry.priority);
  return key;
}

namespace {

// Match value by key name; zero if absent.
struct KeyView {
  const std::vector<std::string>& names;
  const DecodedEntry& entry;

  const p4rt::DecodedMatch* Find(std::string_view name) const {
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (names[i] == name) return &entry.matches[i];
    }
    return nullptr;
  }

  std::uint64_t Value(std::string_view name) const {
    const p4rt::DecodedMatch* m = Find(name);
    return m != nullptr && m->present ? m->value.ToUint64() : 0;
  }
};

StatusOr<AclFieldId> AclFieldByKeyName(std::string_view name) {
  if (name == "ether_type") return AclFieldId::kEtherType;
  if (name == "src_mac") return AclFieldId::kSrcMac;
  if (name == "dst_mac") return AclFieldId::kDstMac;
  if (name == "src_ip") return AclFieldId::kSrcIpv4;
  if (name == "dst_ip") return AclFieldId::kDstIpv4;
  if (name == "src_ipv6") return AclFieldId::kSrcIpv6;
  if (name == "dst_ipv6") return AclFieldId::kDstIpv6;
  if (name == "ip_protocol") return AclFieldId::kIpProtocol;
  if (name == "ttl") return AclFieldId::kTtl;
  if (name == "dscp") return AclFieldId::kDscp;
  if (name == "l4_src_port") return AclFieldId::kL4SrcPort;
  if (name == "l4_dst_port") return AclFieldId::kL4DstPort;
  if (name == "icmp_type") return AclFieldId::kIcmpType;
  if (name == "icmp_code") return AclFieldId::kIcmpCode;
  if (name == "in_port") return AclFieldId::kInPort;
  return InternalError("orchagent: unknown ACL key: " + std::string(name));
}

StatusOr<AclActionKind> AclActionByName(std::string_view name) {
  if (name == "acl_drop") return AclActionKind::kDrop;
  if (name == "acl_trap") return AclActionKind::kTrap;
  if (name == "acl_copy") return AclActionKind::kCopy;
  if (name == "acl_mirror") return AclActionKind::kMirror;
  if (name == "set_vrf") return AclActionKind::kSetVrf;
  if (name == "l3_admit") return AclActionKind::kAdmit;
  return InternalError("orchagent: unknown ACL action: " + std::string(name));
}

StatusOr<RouteAction> ToRouteAction(const p4rt::DecodedAction& action) {
  RouteAction out;
  if (action.name == "drop_packet") {
    out.kind = RouteAction::Kind::kDrop;
  } else if (action.name == "set_nexthop_id") {
    out.kind = RouteAction::Kind::kNexthop;
    out.nexthop_id = static_cast<std::uint32_t>(action.args[0].ToUint64());
  } else if (action.name == "set_wcmp_group_id") {
    out.kind = RouteAction::Kind::kWcmpGroup;
    out.group_id = static_cast<std::uint32_t>(action.args[0].ToUint64());
  } else if (action.name == "set_tunnel") {
    out.kind = RouteAction::Kind::kTunnelNexthop;
    out.tunnel_id = static_cast<std::uint32_t>(action.args[0].ToUint64());
    out.nexthop_id = static_cast<std::uint32_t>(action.args[1].ToUint64());
  } else {
    return InternalError("orchagent: unknown route action " + action.name);
  }
  return out;
}

}  // namespace

StatusOr<AclRule> OrchestrationAgent::ToAclRule(
    const DecodedEntry& entry) const {
  AclRule rule;
  rule.priority = entry.priority;
  const std::vector<std::string>& names =
      table_key_names_.at(entry.table_name);
  for (std::size_t i = 0; i < entry.matches.size(); ++i) {
    const p4rt::DecodedMatch& m = entry.matches[i];
    if (!m.present) continue;
    SWITCHV_ASSIGN_OR_RETURN(AclFieldId field, AclFieldByKeyName(names[i]));
    rule.fields.push_back(AclFieldMatch{field, m.value.value(),
                                        m.mask.value()});
  }
  const p4rt::DecodedAction& action = entry.actions[0];
  SWITCHV_ASSIGN_OR_RETURN(rule.action, AclActionByName(action.name));
  if (!action.args.empty()) {
    rule.arg = static_cast<std::uint32_t>(action.args[0].ToUint64());
  }
  return rule;
}

Status OrchestrationAgent::Insert(const std::string& table_name,
                                  const DecodedEntry& entry) {
  ProbeReach(probe_, SutLayer::kOrchestration);
  if (!configured_) {
    return FailedPreconditionError("orchagent: no pipeline config");
  }
  if (!configured_tables_.contains(table_name)) {
    return InternalError("orchagent: unknown table key: " + table_name);
  }
  return InsertImpl(entry);
}

Status OrchestrationAgent::InsertImpl(const DecodedEntry& entry) {
  // Hardware is reached per-table through syncd_.asic() — the accessor
  // marks the syncd/SAI + ASIC layers, so paths that bail out before
  // programming (unknown table, acknowledged-but-ignored faults) keep
  // their shallower attribution.
  const std::string& table = entry.table_name;
  const KeyView keys{table_key_names_.at(table), entry};

  if (table == "vrf_tbl") {
    return syncd_.asic().CreateVrf(static_cast<std::uint32_t>(keys.Value("vrf_id")));
  }
  if (table == "ipv4_tbl" || table == "ipv6_tbl") {
    SWITCHV_ASSIGN_OR_RETURN(RouteAction action,
                             ToRouteAction(entry.actions[0]));
    const auto vrf = static_cast<std::uint32_t>(keys.Value("vrf_id"));
    if (table == "ipv4_tbl") {
      const p4rt::DecodedMatch* dst = keys.Find("ipv4_dst");
      return syncd_.asic().AddIpv4Route(
          vrf, static_cast<std::uint32_t>(dst->value.ToUint64()),
          dst->present ? dst->prefix_len : 0, action);
    }
    const p4rt::DecodedMatch* dst = keys.Find("ipv6_dst");
    return syncd_.asic().AddIpv6Route(vrf, dst->value.value(),
                             dst->present ? dst->prefix_len : 0, action);
  }
  if (table == "wcmp_group_tbl") {
    std::vector<WcmpMember> members;
    for (const p4rt::DecodedAction& a : entry.actions) {
      members.push_back(WcmpMember{
          static_cast<std::uint32_t>(a.args[0].ToUint64()), a.weight});
    }
    if (faulty(Fault::kWcmpRejectsDuplicateActions)) {
      for (std::size_t i = 0; i < members.size(); ++i) {
        for (std::size_t j = i + 1; j < members.size(); ++j) {
          if (members[i].nexthop_id == members[j].nexthop_id &&
              entry.actions[i].weight >= 0) {
            return InvalidArgumentError(
                "orchagent: duplicate WCMP bucket action");
          }
        }
      }
    }
    const int member_count = static_cast<int>(members.size());
    if (wcmp_members_in_use_ + member_count > kWcmpMemberPool) {
      return ResourceExhaustedError("orchagent: WCMP member pool exhausted");
    }
    const auto group_id = static_cast<std::uint32_t>(
        keys.Value("wcmp_group_id"));
    SWITCHV_RETURN_IF_ERROR(syncd_.asic().SetWcmpGroup(group_id, std::move(members)));
    wcmp_members_in_use_ += member_count;
    wcmp_member_counts_[EntryKey(entry)] = member_count;
    return OkStatus();
  }
  if (table == "nexthop_tbl") {
    return syncd_.asic().SetNexthop(
        static_cast<std::uint32_t>(keys.Value("nexthop_id")),
        static_cast<std::uint32_t>(entry.actions[0].args[0].ToUint64()),
        static_cast<std::uint32_t>(entry.actions[0].args[1].ToUint64()));
  }
  if (table == "neighbor_tbl") {
    return syncd_.asic().SetNeighbor(
        static_cast<std::uint32_t>(keys.Value("router_interface_id")),
        static_cast<std::uint32_t>(keys.Value("neighbor_id")),
        entry.actions[0].args[0].ToUint64());
  }
  if (table == "router_interface_tbl") {
    return syncd_.asic().SetRif(
        static_cast<std::uint32_t>(keys.Value("router_interface_id")),
        static_cast<std::uint16_t>(entry.actions[0].args[0].ToUint64()),
        entry.actions[0].args[1].ToUint64());
  }
  if (table == "mirror_session_tbl") {
    if (faulty(Fault::kMirrorSessionIgnored)) {
      return OkStatus();  // acknowledged, never programmed
    }
    return syncd_.SetMirrorSession(
        static_cast<std::uint32_t>(keys.Value("mirror_port")),
        static_cast<std::uint16_t>(entry.actions[0].args[0].ToUint64()));
  }
  if (table == "egress_rif_tbl") {
    return syncd_.asic().SetEgressRif(
        static_cast<std::uint16_t>(keys.Value("out_port")),
        entry.actions[0].args[0].ToUint64());
  }
  if (table == "decap_tbl") {
    return syncd_.asic().AddDecapEndpoint(
        static_cast<std::uint32_t>(keys.Value("dst_ip")));
  }
  if (table == "tunnel_encap_tbl") {
    return syncd_.asic().SetTunnel(
        static_cast<std::uint32_t>(keys.Value("tunnel_id")),
        static_cast<std::uint32_t>(entry.actions[0].args[0].ToUint64()),
        static_cast<std::uint32_t>(entry.actions[0].args[1].ToUint64()));
  }
  if (IsAclTable(table)) {
    SWITCHV_ASSIGN_OR_RETURN(AclRule rule, ToAclRule(entry));
    AclStage stage = AclStage::kIngress;
    if (table == "acl_pre_ingress_tbl") stage = AclStage::kPreIngress;
    if (table == "l3_admit_tbl") stage = AclStage::kL3Admit;
    SWITCHV_ASSIGN_OR_RETURN(std::uint64_t handle,
                             syncd_.AddAclRule(stage, rule));
    acl_handles_[EntryKey(entry)] = handle;
    return OkStatus();
  }
  return InternalError("orchagent: no SAI translation for table " + table);
}

Status OrchestrationAgent::Delete(const std::string& table_name,
                                  const DecodedEntry& entry) {
  ProbeReach(probe_, SutLayer::kOrchestration);
  if (!configured_) {
    return FailedPreconditionError("orchagent: no pipeline config");
  }
  if (!configured_tables_.contains(table_name)) {
    return InternalError("orchagent: unknown table key: " + table_name);
  }
  return DeleteImpl(entry);
}

Status OrchestrationAgent::DeleteImpl(const DecodedEntry& entry) {
  const std::string& table = entry.table_name;
  const KeyView keys{table_key_names_.at(table), entry};

  if (table == "vrf_tbl") {
    return syncd_.asic().RemoveVrf(static_cast<std::uint32_t>(keys.Value("vrf_id")));
  }
  if (table == "ipv4_tbl") {
    const p4rt::DecodedMatch* dst = keys.Find("ipv4_dst");
    return syncd_.asic().RemoveIpv4Route(
        static_cast<std::uint32_t>(keys.Value("vrf_id")),
        static_cast<std::uint32_t>(dst->value.ToUint64()),
        dst->present ? dst->prefix_len : 0);
  }
  if (table == "ipv6_tbl") {
    const p4rt::DecodedMatch* dst = keys.Find("ipv6_dst");
    return syncd_.asic().RemoveIpv6Route(
        static_cast<std::uint32_t>(keys.Value("vrf_id")), dst->value.value(),
        dst->present ? dst->prefix_len : 0);
  }
  if (table == "wcmp_group_tbl") {
    if (faulty(Fault::kWcmpPartialCleanup)) {
      // The cleanup path forgets to destroy the hardware group object:
      // its members leak, and re-creating a group with the same id later
      // fails with SAI_STATUS_ITEM_ALREADY_EXISTS.
      wcmp_member_counts_.erase(EntryKey(entry));
      return OkStatus();
    }
    SWITCHV_RETURN_IF_ERROR(syncd_.asic().RemoveWcmpGroup(
        static_cast<std::uint32_t>(keys.Value("wcmp_group_id"))));
    auto it = wcmp_member_counts_.find(EntryKey(entry));
    if (it != wcmp_member_counts_.end()) {
      wcmp_members_in_use_ =
          std::max(0, wcmp_members_in_use_ - it->second);
      wcmp_member_counts_.erase(it);
    }
    return OkStatus();
  }
  if (table == "nexthop_tbl") {
    return syncd_.asic().RemoveNexthop(
        static_cast<std::uint32_t>(keys.Value("nexthop_id")));
  }
  if (table == "neighbor_tbl") {
    return syncd_.asic().RemoveNeighbor(
        static_cast<std::uint32_t>(keys.Value("router_interface_id")),
        static_cast<std::uint32_t>(keys.Value("neighbor_id")));
  }
  if (table == "router_interface_tbl") {
    return syncd_.asic().RemoveRif(
        static_cast<std::uint32_t>(keys.Value("router_interface_id")));
  }
  if (table == "mirror_session_tbl") {
    if (faulty(Fault::kMirrorSessionIgnored)) return OkStatus();
    return syncd_.RemoveMirrorSession(
        static_cast<std::uint32_t>(keys.Value("mirror_port")));
  }
  if (table == "egress_rif_tbl") {
    return syncd_.asic().RemoveEgressRif(
        static_cast<std::uint16_t>(keys.Value("out_port")));
  }
  if (table == "decap_tbl") {
    return syncd_.asic().RemoveDecapEndpoint(
        static_cast<std::uint32_t>(keys.Value("dst_ip")));
  }
  if (table == "tunnel_encap_tbl") {
    return syncd_.asic().RemoveTunnel(
        static_cast<std::uint32_t>(keys.Value("tunnel_id")));
  }
  if (IsAclTable(table)) {
    auto it = acl_handles_.find(EntryKey(entry));
    if (it == acl_handles_.end()) {
      return NotFoundError("orchagent: no such ACL rule");
    }
    AclStage stage = AclStage::kIngress;
    if (table == "acl_pre_ingress_tbl") stage = AclStage::kPreIngress;
    if (table == "l3_admit_tbl") stage = AclStage::kL3Admit;
    SWITCHV_RETURN_IF_ERROR(syncd_.RemoveAclRule(stage, it->second));
    acl_handles_.erase(it);
    return OkStatus();
  }
  return InternalError("orchagent: no SAI translation for table " + table);
}

Status OrchestrationAgent::Modify(const std::string& table_name,
                                  const DecodedEntry& old_entry,
                                  const DecodedEntry& new_entry) {
  ProbeReach(probe_, SutLayer::kOrchestration);
  if (!configured_) {
    return FailedPreconditionError("orchagent: no pipeline config");
  }
  if (!configured_tables_.contains(table_name)) {
    return InternalError("orchagent: unknown table key: " + table_name);
  }
  if (table_name == "wcmp_group_tbl" &&
      faulty(Fault::kWcmpUpdateRemovesMembers)) {
    // Diff-based updater with inverted logic: only *changed* members are
    // programmed; unchanged members are removed from the group.
    std::vector<WcmpMember> changed;
    for (const p4rt::DecodedAction& a : new_entry.actions) {
      bool unchanged = false;
      for (const p4rt::DecodedAction& old : old_entry.actions) {
        if (old.name == a.name && old.weight == a.weight &&
            old.args.size() == a.args.size()) {
          bool same_args = true;
          for (std::size_t i = 0; i < a.args.size(); ++i) {
            if (!(old.args[i] == a.args[i])) same_args = false;
          }
          if (same_args) unchanged = true;
        }
      }
      if (!unchanged) {
        changed.push_back(WcmpMember{
            static_cast<std::uint32_t>(a.args[0].ToUint64()), a.weight});
      }
    }
    const KeyView keys{table_key_names_.at(table_name), new_entry};
    const auto group_id =
        static_cast<std::uint32_t>(keys.Value("wcmp_group_id"));
    SWITCHV_RETURN_IF_ERROR(syncd_.asic().RemoveWcmpGroup(group_id));
    if (changed.empty()) {
      return OkStatus();
    }
    return syncd_.asic().SetWcmpGroup(group_id, std::move(changed));
  }
  // The general path implements MODIFY as delete + insert.
  SWITCHV_RETURN_IF_ERROR(DeleteImpl(old_entry));
  return InsertImpl(new_entry);
}

}  // namespace switchv::sut
