#include "sut/asic.h"

#include <algorithm>

namespace switchv::sut {

using packet::ForwardingOutcome;

AsicSimulator::AsicSimulator(const FaultRegistry* faults) : faults_(faults) {
  acl_stages_[AclStage::kL3Admit];
  acl_stages_[AclStage::kPreIngress];
  acl_stages_[AclStage::kIngress];
}

// ---------------------------------------------------------------------------
// Programming API
// ---------------------------------------------------------------------------

Status AsicSimulator::CreateVrf(std::uint32_t vrf) {
  if (static_cast<int>(vrfs_.size()) >= capacities_.vrfs) {
    return ResourceExhaustedError("ASIC out of VRFs");
  }
  vrfs_[vrf] = true;
  return OkStatus();
}

Status AsicSimulator::RemoveVrf(std::uint32_t vrf) {
  if (faulty(Fault::kVrfDeleteBroken)) {
    return InternalError("SAI_STATUS_FAILURE: ALPM flag mismatch on VRF");
  }
  if (vrfs_.erase(vrf) == 0) return NotFoundError("no such VRF");
  return OkStatus();
}

Status AsicSimulator::AddIpv4Route(std::uint32_t vrf, std::uint32_t prefix,
                                   int prefix_len, const RouteAction& action) {
  if (v4_route_count_ >= capacities_.ipv4_routes) {
    return ResourceExhaustedError("ASIC out of IPv4 routes");
  }
  int effective_len = prefix_len;
  if (faulty(Fault::kLpmTreatsPrefixAsExact)) effective_len = 32;
  auto [it, inserted] = v4_routes_.try_emplace(vrf, 32);
  // SAI create semantics: creating an object that already exists fails
  // (this is how stale FIB state from a leaked delete becomes visible).
  if (it->second.Find(prefix, effective_len) != nullptr) {
    return AlreadyExistsError("SAI_STATUS_ITEM_ALREADY_EXISTS: route");
  }
  if (it->second.Insert(prefix, effective_len, action)) ++v4_route_count_;
  return OkStatus();
}

Status AsicSimulator::RemoveIpv4Route(std::uint32_t vrf, std::uint32_t prefix,
                                      int prefix_len) {
  if (faulty(Fault::kRouteDeleteLeavesStale)) {
    return OkStatus();  // acknowledged but the FIB keeps forwarding
  }
  auto it = v4_routes_.find(vrf);
  int effective_len = prefix_len;
  if (faulty(Fault::kLpmTreatsPrefixAsExact)) effective_len = 32;
  if (it == v4_routes_.end() || !it->second.Remove(prefix, effective_len)) {
    return NotFoundError("no such IPv4 route");
  }
  --v4_route_count_;
  return OkStatus();
}

Status AsicSimulator::AddIpv6Route(std::uint32_t vrf, uint128 prefix,
                                   int prefix_len, const RouteAction& action) {
  if (v6_route_count_ >= capacities_.ipv6_routes) {
    return ResourceExhaustedError("ASIC out of IPv6 routes");
  }
  auto [it, inserted] = v6_routes_.try_emplace(vrf, 128);
  if (it->second.Find(prefix, prefix_len) != nullptr) {
    return AlreadyExistsError("SAI_STATUS_ITEM_ALREADY_EXISTS: route");
  }
  if (it->second.Insert(prefix, prefix_len, action)) ++v6_route_count_;
  return OkStatus();
}

Status AsicSimulator::RemoveIpv6Route(std::uint32_t vrf, uint128 prefix,
                                      int prefix_len) {
  auto it = v6_routes_.find(vrf);
  if (it == v6_routes_.end() || !it->second.Remove(prefix, prefix_len)) {
    return NotFoundError("no such IPv6 route");
  }
  --v6_route_count_;
  return OkStatus();
}

Status AsicSimulator::SetNexthop(std::uint32_t nexthop_id,
                                 std::uint32_t rif_id,
                                 std::uint32_t neighbor_id) {
  if (static_cast<int>(nexthops_.size()) >= capacities_.nexthops) {
    return ResourceExhaustedError("ASIC out of nexthops");
  }
  nexthops_[nexthop_id] = {rif_id, neighbor_id};
  return OkStatus();
}

Status AsicSimulator::RemoveNexthop(std::uint32_t nexthop_id) {
  if (nexthops_.erase(nexthop_id) == 0) return NotFoundError("no nexthop");
  return OkStatus();
}

Status AsicSimulator::SetNeighbor(std::uint32_t rif_id,
                                  std::uint32_t neighbor_id,
                                  std::uint64_t dst_mac) {
  if (static_cast<int>(neighbors_.size()) >= capacities_.neighbors) {
    return ResourceExhaustedError("ASIC out of neighbors");
  }
  neighbors_[{rif_id, neighbor_id}] = dst_mac;
  return OkStatus();
}

Status AsicSimulator::RemoveNeighbor(std::uint32_t rif_id,
                                     std::uint32_t neighbor_id) {
  if (neighbors_.erase({rif_id, neighbor_id}) == 0) {
    return NotFoundError("no neighbor");
  }
  return OkStatus();
}

Status AsicSimulator::SetRif(std::uint32_t rif_id, std::uint16_t port,
                             std::uint64_t src_mac) {
  if (static_cast<int>(rifs_.size()) >= capacities_.rifs) {
    return ResourceExhaustedError("ASIC out of RIFs");
  }
  rifs_[rif_id] = {port, src_mac};
  return OkStatus();
}

Status AsicSimulator::RemoveRif(std::uint32_t rif_id) {
  if (rifs_.erase(rif_id) == 0) return NotFoundError("no RIF");
  return OkStatus();
}

Status AsicSimulator::SetWcmpGroup(std::uint32_t group_id,
                                   std::vector<WcmpMember> members) {
  if (static_cast<int>(wcmp_groups_.size()) >= capacities_.wcmp_groups) {
    return ResourceExhaustedError("ASIC out of WCMP groups");
  }
  // SAI create semantics: the group object must not already exist (stale
  // hardware objects from a sloppy cleanup surface here).
  if (wcmp_groups_.contains(group_id)) {
    return AlreadyExistsError("SAI_STATUS_ITEM_ALREADY_EXISTS: WCMP group");
  }
  wcmp_groups_[group_id] = std::move(members);
  return OkStatus();
}

Status AsicSimulator::RemoveWcmpGroup(std::uint32_t group_id) {
  if (wcmp_groups_.erase(group_id) == 0) return NotFoundError("no group");
  return OkStatus();
}

void AsicSimulator::SetAclCapacity(AclStage stage, int capacity) {
  switch (stage) {
    case AclStage::kIngress: capacities_.acl_ingress = capacity; break;
    case AclStage::kPreIngress:
      capacities_.acl_pre_ingress = capacity;
      break;
    case AclStage::kL3Admit: capacities_.acl_l3_admit = capacity; break;
  }
}

StatusOr<std::uint64_t> AsicSimulator::AddAclRule(AclStage stage,
                                                  const AclRule& rule) {
  auto& rules = acl_stages_[stage];
  int capacity = capacities_.acl_ingress;
  if (stage == AclStage::kPreIngress) capacity = capacities_.acl_pre_ingress;
  if (stage == AclStage::kL3Admit) capacity = capacities_.acl_l3_admit;
  if (faulty(Fault::kAsicCapacityBelowGuarantee) &&
      stage == AclStage::kIngress) {
    // The new chip's real TCAM budget is far below what the resource
    // guarantees promise.
    capacity = 24;
  }
  int used = static_cast<int>(rules.size());
  if (stage == AclStage::kIngress) used += leaked_acl_slots_;
  if (used >= capacity) {
    return ResourceExhaustedError("ASIC out of ACL TCAM slots");
  }
  const std::uint64_t handle = next_acl_handle_++;
  rules[handle] = rule;
  return handle;
}

Status AsicSimulator::RemoveAclRule(AclStage stage, std::uint64_t handle) {
  if (acl_stages_[stage].erase(handle) == 0) {
    return NotFoundError("no such ACL rule");
  }
  return OkStatus();
}

Status AsicSimulator::SetMirrorSession(std::uint32_t mirror_port,
                                       std::uint16_t dest_port) {
  if (static_cast<int>(mirror_sessions_.size()) >=
      capacities_.mirror_sessions) {
    return ResourceExhaustedError("ASIC out of mirror sessions");
  }
  mirror_sessions_[mirror_port] = dest_port;
  return OkStatus();
}

Status AsicSimulator::RemoveMirrorSession(std::uint32_t mirror_port) {
  if (mirror_sessions_.erase(mirror_port) == 0) {
    return NotFoundError("no mirror session");
  }
  return OkStatus();
}

Status AsicSimulator::SetEgressRif(std::uint16_t port,
                                   std::uint64_t src_mac) {
  if (faulty(Fault::kEgressRifStaleSrcMac)) {
    // Programming acknowledged; hardware keeps the previous value.
    egress_rifs_.try_emplace(port, 0x0200DEADBEEFull);
    return OkStatus();
  }
  egress_rifs_[port] = src_mac;
  return OkStatus();
}

Status AsicSimulator::RemoveEgressRif(std::uint16_t port) {
  if (egress_rifs_.erase(port) == 0) return NotFoundError("no egress RIF");
  return OkStatus();
}

Status AsicSimulator::SetTunnel(std::uint32_t tunnel_id, std::uint32_t src_ip,
                                std::uint32_t dst_ip) {
  if (static_cast<int>(tunnels_.size()) >= capacities_.tunnels) {
    return ResourceExhaustedError("ASIC out of tunnels");
  }
  tunnels_[tunnel_id] = {src_ip, dst_ip};
  return OkStatus();
}

Status AsicSimulator::RemoveTunnel(std::uint32_t tunnel_id) {
  if (tunnels_.erase(tunnel_id) == 0) return NotFoundError("no tunnel");
  return OkStatus();
}

Status AsicSimulator::AddDecapEndpoint(std::uint32_t dst_ip) {
  if (static_cast<int>(decap_endpoints_.size()) >=
      capacities_.decap_entries) {
    return ResourceExhaustedError("ASIC out of decap entries");
  }
  decap_endpoints_[dst_ip] = true;
  return OkStatus();
}

Status AsicSimulator::RemoveDecapEndpoint(std::uint32_t dst_ip) {
  if (decap_endpoints_.erase(dst_ip) == 0) return NotFoundError("no decap");
  return OkStatus();
}

// ---------------------------------------------------------------------------
// Dataplane
// ---------------------------------------------------------------------------

// Raw fixed-offset view of a packet, as the parser block of the chip sees
// it. Offsets assume untagged Ethernet.
struct AsicSimulator::ParsedView {
  bool has_eth = false;
  bool is_ipv4 = false;
  bool is_ipv6 = false;
  bool has_l4 = false;
  bool has_icmp = false;
  bool has_inner_ipv4 = false;
  std::uint64_t dst_mac = 0;
  std::uint64_t src_mac = 0;
  std::uint16_t ether_type = 0;
  std::uint32_t v4_src = 0;
  std::uint32_t v4_dst = 0;
  std::uint8_t ttl = 0;
  std::uint8_t protocol = 0;
  std::uint8_t dscp = 0;
  uint128 v6_src = 0;
  uint128 v6_dst = 0;
  std::uint16_t l4_src = 0;
  std::uint16_t l4_dst = 0;
  std::uint8_t icmp_type = 0;
  std::uint8_t icmp_code = 0;
};

namespace {

std::uint64_t ReadBytes(std::string_view bytes, std::size_t offset,
                        int count) {
  std::uint64_t value = 0;
  for (int i = 0; i < count; ++i) {
    value = (value << 8) |
            static_cast<unsigned char>(bytes[offset + static_cast<std::size_t>(i)]);
  }
  return value;
}

uint128 ReadBytes128(std::string_view bytes, std::size_t offset, int count) {
  uint128 value = 0;
  for (int i = 0; i < count; ++i) {
    value = (value << 8) |
            static_cast<unsigned char>(bytes[offset + static_cast<std::size_t>(i)]);
  }
  return value;
}

void WriteBytes(std::string& bytes, std::size_t offset, std::uint64_t value,
                int count) {
  for (int i = count - 1; i >= 0; --i) {
    bytes[offset + static_cast<std::size_t>(i)] =
        static_cast<char>(value & 0xFF);
    value >>= 8;
  }
}

constexpr std::size_t kEthLen = 14;
constexpr std::size_t kIpv4Len = 20;

void ParseRaw(std::string_view bytes,
              AsicSimulator::ParsedView* view);

// Chip-private flow hash (not modeled in P4; a "free" operation).
std::uint64_t FlowHash(const AsicSimulator::ParsedView& view);

}  // namespace

namespace {

void ParseRaw(std::string_view bytes, AsicSimulator::ParsedView* view) {
  *view = {};
  if (bytes.size() < kEthLen) return;
  view->has_eth = true;
  view->dst_mac = ReadBytes(bytes, 0, 6);
  view->src_mac = ReadBytes(bytes, 6, 6);
  view->ether_type = static_cast<std::uint16_t>(ReadBytes(bytes, 12, 2));
  std::size_t l4_off = 0;
  if (view->ether_type == 0x0800 && bytes.size() >= kEthLen + kIpv4Len) {
    view->is_ipv4 = true;
    view->dscp = static_cast<std::uint8_t>(
        (ReadBytes(bytes, 15, 1) >> 2) & 0x3F);
    view->ttl = static_cast<std::uint8_t>(ReadBytes(bytes, 22, 1));
    view->protocol = static_cast<std::uint8_t>(ReadBytes(bytes, 23, 1));
    view->v4_src = static_cast<std::uint32_t>(ReadBytes(bytes, 26, 4));
    view->v4_dst = static_cast<std::uint32_t>(ReadBytes(bytes, 30, 4));
    l4_off = kEthLen + kIpv4Len;
    if (view->protocol == 4 && bytes.size() >= l4_off + kIpv4Len) {
      view->has_inner_ipv4 = true;
    }
  } else if (view->ether_type == 0x86DD && bytes.size() >= kEthLen + 40) {
    view->is_ipv6 = true;
    view->dscp = static_cast<std::uint8_t>(
        (ReadBytes(bytes, 14, 2) >> 6) & 0x3F);
    view->protocol = static_cast<std::uint8_t>(ReadBytes(bytes, 20, 1));
    view->ttl = static_cast<std::uint8_t>(ReadBytes(bytes, 21, 1));
    view->v6_src = ReadBytes128(bytes, 22, 16);
    view->v6_dst = ReadBytes128(bytes, 38, 16);
    l4_off = kEthLen + 40;
  }
  if (l4_off != 0 && !view->has_inner_ipv4) {
    if ((view->protocol == 6 && bytes.size() >= l4_off + 20) ||
        (view->protocol == 17 && bytes.size() >= l4_off + 8)) {
      view->has_l4 = true;
      view->l4_src = static_cast<std::uint16_t>(ReadBytes(bytes, l4_off, 2));
      view->l4_dst =
          static_cast<std::uint16_t>(ReadBytes(bytes, l4_off + 2, 2));
    } else if (((view->is_ipv4 && view->protocol == 1) ||
                (view->is_ipv6 && view->protocol == 58)) &&
               bytes.size() >= l4_off + 4) {
      view->has_icmp = true;
      view->icmp_type =
          static_cast<std::uint8_t>(ReadBytes(bytes, l4_off, 1));
      view->icmp_code =
          static_cast<std::uint8_t>(ReadBytes(bytes, l4_off + 1, 1));
    }
  }
}

std::uint64_t FlowHash(const AsicSimulator::ParsedView& view) {
  std::uint64_t h = 0x9E3779B97F4A7C15ull;  // chip-specific salt
  auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  };
  if (view.is_ipv4) {
    mix(view.v4_src);
    mix(view.v4_dst);
  } else {
    mix(static_cast<std::uint64_t>(view.v6_src));
    mix(static_cast<std::uint64_t>(view.v6_src >> 64));
    mix(static_cast<std::uint64_t>(view.v6_dst));
    mix(static_cast<std::uint64_t>(view.v6_dst >> 64));
  }
  mix(view.protocol);
  mix((static_cast<std::uint64_t>(view.l4_src) << 16) | view.l4_dst);
  return h;
}

}  // namespace

bool AsicSimulator::RuleMatches(const AclRule& rule, const ParsedView& view,
                                std::uint16_t ingress_port) const {
  for (const AclFieldMatch& f : rule.fields) {
    uint128 actual = 0;
    switch (f.field) {
      case AclFieldId::kEtherType: actual = view.ether_type; break;
      case AclFieldId::kSrcMac: actual = view.src_mac; break;
      case AclFieldId::kDstMac: actual = view.dst_mac; break;
      case AclFieldId::kSrcIpv4: actual = view.v4_src; break;
      case AclFieldId::kDstIpv4: actual = view.v4_dst; break;
      case AclFieldId::kSrcIpv6: actual = view.v6_src; break;
      case AclFieldId::kDstIpv6: actual = view.v6_dst; break;
      // The role models' ACL protocol/TTL/DSCP keys are declared over the
      // IPv4 header (IPv6 packets read them as 0); the TCAM matches the
      // same way.
      case AclFieldId::kIpProtocol:
        actual = view.is_ipv4 ? view.protocol : 0;
        break;
      case AclFieldId::kTtl: actual = view.is_ipv4 ? view.ttl : 0; break;
      case AclFieldId::kDscp: actual = view.is_ipv4 ? view.dscp : 0; break;
      case AclFieldId::kL4SrcPort: actual = view.l4_src; break;
      case AclFieldId::kL4DstPort: actual = view.l4_dst; break;
      case AclFieldId::kIcmpType: actual = view.icmp_type; break;
      case AclFieldId::kIcmpCode: actual = view.icmp_code; break;
      case AclFieldId::kInPort: actual = ingress_port; break;
    }
    if ((actual & f.mask) != (f.value & f.mask)) return false;
  }
  return true;
}

const AclRule* AsicSimulator::FirstMatch(AclStage stage,
                                         const ParsedView& view,
                                         std::uint16_t ingress_port) const {
  const auto& rules = acl_stages_.at(stage);
  const AclRule* best = nullptr;
  for (const auto& [handle, rule] : rules) {
    if (!RuleMatches(rule, view, ingress_port)) continue;
    bool better;
    if (best == nullptr) {
      better = true;
    } else if (faulty(Fault::kAclPriorityInverted) &&
               stage == AclStage::kIngress) {
      better = rule.priority < best->priority;
    } else {
      better = rule.priority > best->priority;
    }
    if (better) best = &rule;
  }
  return best;
}

ForwardingOutcome AsicSimulator::Forward(std::string_view bytes,
                                         std::uint16_t ingress_port) const {
  ForwardingOutcome outcome;
  std::string pkt(bytes);
  ParsedView view;
  ParseRaw(pkt, &view);

  bool drop = false;
  bool punt = false;
  std::uint32_t mirror_port = 0;

  // Stage 1: L3 admit.
  bool admit = FirstMatch(AclStage::kL3Admit, view, ingress_port) != nullptr;

  // Stage 2: pre-ingress ACL assigns the VRF.
  std::uint32_t vrf = 0;
  if (const AclRule* rule =
          FirstMatch(AclStage::kPreIngress, view, ingress_port)) {
    if (rule->action == AclActionKind::kSetVrf) vrf = rule->arg;
  }

  // Stage 3: tunnel decapsulation (before routing).
  if (view.is_ipv4 && view.has_inner_ipv4 &&
      decap_endpoints_.contains(view.v4_dst)) {
    const std::uint8_t outer_ttl = view.ttl;
    pkt.erase(kEthLen, kIpv4Len);
    ParseRaw(pkt, &view);
    if (faulty(Fault::kDecapSkipsTtlCopy) && pkt.size() >= kEthLen + kIpv4Len) {
      WriteBytes(pkt, 22, outer_ttl, 1);
      ParseRaw(pkt, &view);
    }
    // The parser block ran before decap (when the L4 header was hidden
    // behind the tunnel header), so L4/ICMP fields stay unparsed — exactly
    // as in the P4 model, where extraction happens once at ingress start.
    view.has_l4 = false;
    view.l4_src = 0;
    view.l4_dst = 0;
    view.has_icmp = false;
    view.icmp_type = 0;
    view.icmp_code = 0;
  }

  // Stage 4: route lookup.
  const RouteAction* route = nullptr;
  if (admit && view.is_ipv4) {
    if (auto it = v4_routes_.find(vrf); it != v4_routes_.end()) {
      route = it->second.Lookup(view.v4_dst);
    }
  } else if (admit && view.is_ipv6) {
    if (auto it = v6_routes_.find(vrf); it != v6_routes_.end()) {
      route = it->second.Lookup(view.v6_dst);
    }
  }
  bool routed = false;
  std::uint32_t nexthop_id = 0;
  std::uint32_t tunnel_id = 0;
  if (admit && (view.is_ipv4 || view.is_ipv6)) {
    if (route == nullptr || route->kind == RouteAction::Kind::kDrop) {
      drop = true;  // routing table default action is drop
    } else {
      routed = true;
      switch (route->kind) {
        case RouteAction::Kind::kNexthop:
          nexthop_id = route->nexthop_id;
          break;
        case RouteAction::Kind::kWcmpGroup: {
          auto it = wcmp_groups_.find(route->group_id);
          if (it == wcmp_groups_.end() || it->second.empty()) {
            drop = true;
            routed = false;
            break;
          }
          int total = 0;
          for (const WcmpMember& m : it->second) total += m.weight;
          std::uint64_t draw =
              faulty(Fault::kWcmpSingleMemberOnly)
                  ? 0
                  : FlowHash(view) % static_cast<std::uint64_t>(total);
          for (const WcmpMember& m : it->second) {
            if (draw < static_cast<std::uint64_t>(m.weight)) {
              nexthop_id = m.nexthop_id;
              break;
            }
            draw -= static_cast<std::uint64_t>(m.weight);
          }
          break;
        }
        case RouteAction::Kind::kTunnelNexthop:
          nexthop_id = route->nexthop_id;
          tunnel_id = route->tunnel_id;
          break;
        case RouteAction::Kind::kDrop:
          break;
      }
    }
  }

  // Stage 5: ingress ACL (on pre-rewrite fields).
  if (const AclRule* rule =
          FirstMatch(AclStage::kIngress, view, ingress_port)) {
    switch (rule->action) {
      case AclActionKind::kDrop: drop = true; break;
      case AclActionKind::kTrap:
        drop = true;
        punt = true;
        break;
      case AclActionKind::kCopy: punt = true; break;
      case AclActionKind::kMirror: mirror_port = rule->arg; break;
      default: break;
    }
  }

  // Stage 6: fixed-function traps.
  if (view.is_ipv4 && view.ttl < 2) {
    drop = true;
    punt = true;
  }
  if (view.is_ipv4 && view.v4_dst == 0xFFFFFFFFu) {
    drop = true;
  }

  // Stage 7: rewrite via the nexthop chain.
  std::uint16_t egress_port = 0;
  if (routed && nexthop_id != 0) {
    auto nh = nexthops_.find(nexthop_id);
    if (nh == nexthops_.end()) {
      drop = true;  // chain miss: default drop
    } else {
      const auto [rif_id, neighbor_id] = nh->second;
      auto neighbor = neighbors_.find({rif_id, neighbor_id});
      auto rif = rifs_.find(rif_id);
      if (neighbor == neighbors_.end() || rif == rifs_.end()) {
        drop = true;
      } else if (pkt.size() >= kEthLen) {
        WriteBytes(pkt, 0, neighbor->second, 6);
        WriteBytes(pkt, 6, rif->second.second, 6);
        egress_port = rif->second.first;
        if (view.is_ipv4 && pkt.size() >= kEthLen + kIpv4Len) {
          WriteBytes(pkt, 22, static_cast<std::uint8_t>(view.ttl - 1), 1);
        } else if (view.is_ipv6 && pkt.size() >= kEthLen + 40) {
          WriteBytes(pkt, 21, static_cast<std::uint8_t>(view.ttl - 1), 1);
        }
        // Tunnel encapsulation: duplicate the (rewritten) IPv4 header and
        // overwrite the outer copy's tunnel fields.
        if (tunnel_id != 0) {
          auto tunnel = tunnels_.find(tunnel_id);
          if (view.has_inner_ipv4) {
            // Nested tunneling unsupported (see the model's spec).
            drop = true;
          } else if (tunnel == tunnels_.end()) {
            drop = true;
          } else if (view.is_ipv4 && pkt.size() >= kEthLen + kIpv4Len) {
            pkt.insert(kEthLen, pkt.substr(kEthLen, kIpv4Len));
            WriteBytes(pkt, 22, 64, 1);  // outer TTL
            const std::uint8_t proto =
                faulty(Fault::kEncapWrongProtocol) ? 41 : 4;
            WriteBytes(pkt, 23, proto, 1);
            WriteBytes(pkt, 26, tunnel->second.first, 4);
            std::uint32_t dst = tunnel->second.second;
            if (faulty(Fault::kEncapReversedDstIp)) {
              dst = __builtin_bswap32(dst);
            }
            WriteBytes(pkt, 30, dst, 4);
          }
        }
      }
    }
  }
  // A routed packet whose action carried nexthop 0 skips the rewrite chain
  // entirely (the model guards the chain on nexthop_id != 0).

  // Stage 8: mirroring (clone of the post-rewrite packet).
  if (mirror_port != 0) {
    auto session = mirror_sessions_.find(mirror_port);
    if (session != mirror_sessions_.end()) {
      outcome.clones.emplace_back(session->second, pkt);
    }
  }

  outcome.punted = punt;
  if (drop) {
    outcome.dropped = true;
    return outcome;
  }

  // Egress stage: egress RIF source-MAC rewrite.
  if (auto it = egress_rifs_.find(egress_port); it != egress_rifs_.end() &&
                                                pkt.size() >= kEthLen) {
    WriteBytes(pkt, 6, it->second, 6);
  }
  if (faulty(Fault::kDscpRemarkedToZero)) {
    if (view.is_ipv4 && pkt.size() >= kEthLen + kIpv4Len) {
      const auto tos = static_cast<unsigned char>(pkt[15]);
      pkt[15] = static_cast<char>(tos & 0x03);  // keep ECN, zero DSCP
    } else if (view.is_ipv6 && pkt.size() >= kEthLen + 40) {
      const auto b0 = static_cast<unsigned char>(pkt[14]);
      const auto b1 = static_cast<unsigned char>(pkt[15]);
      pkt[14] = static_cast<char>(b0 & 0xF0);
      pkt[15] = static_cast<char>(b1 & 0x3F);
    }
  }
  if (faulty(Fault::kCursedPortDropsPackets) && egress_port == 5) {
    outcome.dropped = true;  // electric interference on this port
    return outcome;
  }
  outcome.egress_port = egress_port;
  outcome.packet_bytes = std::move(pkt);
  return outcome;
}

}  // namespace switchv::sut
