#include "sut/switch_stack.h"

namespace switchv::sut {

SwitchUnderTest::SwitchUnderTest(const FaultRegistry* faults,
                                 bmv2::CloneSessionMap clone_sessions,
                                 std::uint16_t cpu_port)
    : faults_(faults), cpu_port_(cpu_port) {
  asic_ = std::make_unique<AsicSimulator>(faults);
  syncd_ = std::make_unique<SyncdBinary>(*asic_, std::move(clone_sessions),
                                         faults);
  agent_ = std::make_unique<OrchestrationAgent>(*syncd_, faults);
  server_ = std::make_unique<P4RuntimeServer>(*agent_, faults);
  gnmi_ = std::make_unique<GnmiServer>(faults);
  switch_linux_ = std::make_unique<SwitchLinux>(faults);
  server_->set_probe(&probe_);
  agent_->set_probe(&probe_);
  syncd_->set_probe(&probe_);
}

Status SwitchUnderTest::ApplyStandardBringUpConfig(int num_ports) {
  SWITCHV_RETURN_IF_ERROR(
      gnmi_->Set("/system/config/hostname", "switchv-dut"));
  for (int port = 1; port <= num_ports; ++port) {
    SWITCHV_RETURN_IF_ERROR(
        gnmi_->Set("/interfaces/interface[name=Ethernet" +
                       std::to_string(port) + "]/ethernet/config/port-speed",
                   "SPEED_100GB"));
  }
  return OkStatus();
}

Status SwitchUnderTest::SetForwardingPipelineConfig(
    const p4ir::P4Info& p4info) {
  probe_.BeginOperation();
  return server_->SetForwardingPipelineConfig(
      p4rt::ForwardingPipelineConfig{p4info, /*cookie=*/0});
}

p4rt::WriteResponse SwitchUnderTest::Write(
    const p4rt::WriteRequest& request) {
  ++io_.writes;
  probe_.BeginOperation();
  return server_->Write(request);
}

StatusOr<p4rt::ReadResponse> SwitchUnderTest::Read(
    const p4rt::ReadRequest& request) {
  ++io_.reads;
  probe_.BeginOperation();
  return server_->Read(request);
}

Status SwitchUnderTest::PacketOut(const p4rt::PacketOut& packet) {
  ++io_.packet_outs;
  probe_.BeginOperation();
  probe_.BeginUnit();
  probe_.Reach(SutLayer::kP4rtServer);
  if (!switch_linux_->packet_io_healthy()) {
    return OkStatus();  // accepted, silently lost: the IO path is down
  }
  if (packet.submit_to_ingress) {
    // The submit-to-ingress decision is made by the SAI hostif layer
    // (whether the CPU port is L3-enabled) before the packet can enter the
    // pipeline — a drop here attributes to syncd/SAI.
    probe_.Reach(SutLayer::kSyncdSai);
    if (faulty(Fault::kSubmitToIngressNotL3Enabled)) {
      return OkStatus();  // dropped: L3 not enabled for the CPU port
    }
    // Runs the full pipeline as if arriving on the CPU port. (InjectPacket
    // restarts the probe operation; its deeper attribution stands.)
    const packet::ForwardingOutcome outcome =
        InjectPacket(packet.payload, cpu_port_);
    if (!outcome.dropped) {
      egress_queue_.emplace_back(outcome.egress_port, outcome.packet_bytes);
    }
    return OkStatus();
  }
  // Direct packet-out: the hostif TX path hands the frame to the port.
  probe_.Reach(SutLayer::kSyncdSai);
  probe_.Reach(SutLayer::kAsic);
  egress_queue_.emplace_back(packet.egress_port, packet.payload);
  if (faulty(Fault::kPacketOutPuntedBack)) {
    // A misbehaving application loops the packet back to the controller.
    packet_in_queue_.push_back(
        p4rt::PacketIn{packet.payload, packet.egress_port});
  }
  return OkStatus();
}

packet::ForwardingOutcome SwitchUnderTest::InjectPacket(
    std::string_view bytes, std::uint16_t ingress_port) {
  ++io_.packets_injected;
  probe_.BeginOperation();
  probe_.BeginUnit();
  // A front-panel packet bypasses the control layers and hits the pipeline.
  probe_.Reach(SutLayer::kAsic);
  packet::ForwardingOutcome outcome = asic_->Forward(bytes, ingress_port);
  const bool punt_path_up =
      switch_linux_->packet_io_healthy() && !gnmi_->punt_path_corrupted();
  if (outcome.punted && punt_path_up) {
    packet_in_queue_.push_back(
        p4rt::PacketIn{std::string(bytes), ingress_port});
  } else {
    // The controller never sees the punt.
    outcome.punted = outcome.punted && punt_path_up;
  }
  return outcome;
}

std::vector<std::pair<std::uint16_t, std::string>>
SwitchUnderTest::DrainEgress() {
  return std::exchange(egress_queue_, {});
}

std::vector<p4rt::PacketIn> SwitchUnderTest::DrainPacketIns() {
  return std::exchange(packet_in_queue_, {});
}

void SwitchUnderTest::Tick() {
  if (!switch_linux_->packet_io_healthy()) {
    packet_in_queue_.clear();  // everything in flight is lost
    return;
  }
  for (p4rt::PacketIn& packet : switch_linux_->Tick()) {
    packet_in_queue_.push_back(std::move(packet));
  }
}

}  // namespace switchv::sut
