// Layer-attribution probe for the switch-under-test stack.
//
// The paper's Table 1 attributes every bug to the SUT layer it lived in
// (SONiC application / orchestration / SAI-SDK / ASIC). The reproduction's
// analogue: each layer of the stack marks the probe as a control-plane
// update or data-plane packet crosses it, so every operation knows the
// deepest layer it reached and — for rejected updates — the deepest layer
// the failing update got to before it stopped. The SwitchV harness copies
// this into incident reports and trace spans.
//
// The probe is per-SwitchUnderTest and single-threaded (each campaign shard
// owns its own stack instance), so plain integers suffice. Layers hold a
// nullable pointer; all call sites go through the null-safe free functions
// below, making the probe zero-cost when absent.
#ifndef SWITCHV_SUT_LAYER_PROBE_H_
#define SWITCHV_SUT_LAYER_PROBE_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace switchv::sut {

// Stack depth, ordered top (controller-facing) to bottom (hardware).
// kNone means "no SUT layer involved" (e.g. a reference-simulator defect).
// kHarness is not a stack layer at all: it marks incidents synthesized by
// the validation harness itself (a crashed or hung out-of-process shard
// worker), so operators can separate infrastructure losses from switch
// bugs at a glance. The probe never Reach()es it.
enum class SutLayer {
  kNone = 0,
  kP4rtServer = 1,
  kOrchestration = 2,
  kSyncdSai = 3,
  kAsic = 4,
  kHarness = 5,
};

inline constexpr int kNumSutLayers = 6;  // including kNone and kHarness

inline std::string_view SutLayerName(SutLayer layer) {
  switch (layer) {
    case SutLayer::kP4rtServer:
      return "p4rt-server";
    case SutLayer::kOrchestration:
      return "orchestration";
    case SutLayer::kSyncdSai:
      return "syncd-sai";
    case SutLayer::kAsic:
      return "asic";
    case SutLayer::kHarness:
      return "harness";
    case SutLayer::kNone:
      break;
  }
  return "unattributed";
}

// One *operation* is a top-level API call on the stack (a Write batch, a
// Read, an injected packet, a packet-out); one *unit* is an individual
// update within a batch (or the packet itself). Layers call Reach() as the
// unit enters them; the P4Runtime server brackets units and notes failures.
class StackProbe {
 public:
  void BeginOperation() {
    op_deepest_ = SutLayer::kNone;
    op_failed_deepest_ = SutLayer::kNone;
    unit_deepest_ = SutLayer::kNone;
    units_ = 0;
    failed_units_ = 0;
    op_touches_.fill(0);
    unit_layers_.clear();
  }

  void BeginUnit() {
    unit_deepest_ = SutLayer::kNone;
    ++units_;
    unit_layers_.push_back(0);
  }

  void Reach(SutLayer layer) {
    if (layer > unit_deepest_) unit_deepest_ = layer;
    if (layer > op_deepest_) op_deepest_ = layer;
    ++op_touches_[static_cast<int>(layer)];
    ++total_touches_[static_cast<int>(layer)];
    // Config pushes and reads Reach() outside unit bracketing; only
    // bracketed units keep a per-unit layer log.
    if (!unit_layers_.empty()) {
      unit_layers_.back() |=
          static_cast<std::uint8_t>(1u << static_cast<int>(layer));
    }
  }

  // Called when the current unit's final status is a failure: the deepest
  // layer the unit entered is where it stopped.
  void NoteUnitFailure() {
    ++failed_units_;
    if (unit_deepest_ > op_failed_deepest_) {
      op_failed_deepest_ = unit_deepest_;
    }
    if (!unit_layers_.empty()) unit_layers_.back() |= 0x80;
  }

  // Deepest layer any unit of the current operation reached.
  SutLayer op_deepest() const { return op_deepest_; }
  // Deepest layer a *failed* unit of the current operation reached (kNone
  // when every unit succeeded).
  SutLayer op_failed_deepest() const { return op_failed_deepest_; }
  int units() const { return units_; }
  int failed_units() const { return failed_units_; }
  std::uint64_t op_touches(SutLayer layer) const {
    return op_touches_[static_cast<int>(layer)];
  }
  std::uint64_t total_touches(SutLayer layer) const {
    return total_touches_[static_cast<int>(layer)];
  }

  // Per-unit layer log of the current operation, in unit order: bit l set
  // when the unit reached SutLayer(l), bit 7 set when the unit failed.
  // Valid until the next BeginOperation; the coverage-guided fuzzer reads
  // it right after a Write returns (fuzzer/coverage.h edge attribution).
  int unit_count() const { return static_cast<int>(unit_layers_.size()); }
  std::uint8_t unit_layer_mask(int unit) const {
    return unit_layers_[static_cast<std::size_t>(unit)];
  }

  // Compact per-operation crossing counts for span annotation, e.g.
  // "p4rt-server:50 orchestration:43 syncd-sai:12 asic:41".
  std::string OpLayersSummary() const {
    std::string out;
    for (int i = 1; i < kNumSutLayers; ++i) {
      if (op_touches_[i] == 0) continue;
      if (!out.empty()) out += ' ';
      out += SutLayerName(static_cast<SutLayer>(i));
      out += ':';
      out += std::to_string(op_touches_[i]);
    }
    return out;
  }

 private:
  SutLayer op_deepest_ = SutLayer::kNone;
  SutLayer op_failed_deepest_ = SutLayer::kNone;
  SutLayer unit_deepest_ = SutLayer::kNone;
  int units_ = 0;
  int failed_units_ = 0;
  std::array<std::uint64_t, kNumSutLayers> op_touches_{};
  std::array<std::uint64_t, kNumSutLayers> total_touches_{};
  std::vector<std::uint8_t> unit_layers_;
};

// Null-safe call sites for layers holding an optional probe.
inline void ProbeReach(StackProbe* probe, SutLayer layer) {
  if (probe != nullptr) probe->Reach(layer);
}
inline void ProbeBeginUnit(StackProbe* probe) {
  if (probe != nullptr) probe->BeginUnit();
}
inline void ProbeNoteUnitFailure(StackProbe* probe) {
  if (probe != nullptr) probe->NoteUnitFailure();
}

}  // namespace switchv::sut

#endif  // SWITCHV_SUT_LAYER_PROBE_H_
