// The middle layers of the PINS-like stack (see paper Figure 4):
//
//  * SyncdBinary — builds on the SAI abstraction to provide a vendor- and
//    hardware-agnostic interface to the ASIC. Thin, but real enough to host
//    its catalog bugs (ACL slot leaks on cleanup, mirror-session
//    translation via the packet replication engine config).
//  * OrchestrationAgent — synchronizes the application-layer state (table
//    entries) and applies it to the hardware via SyncD, translating each
//    P4Runtime table into the SAI object it models (routes, nexthops,
//    neighbors, RIFs, WCMP groups, ACL rules, tunnels, mirror sessions).
//    Hosts the WCMP lifecycle bugs.
#ifndef SWITCHV_SUT_ORCHESTRATION_H_
#define SWITCHV_SUT_ORCHESTRATION_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "bmv2/interpreter.h"  // CloneSessionMap
#include "p4ir/p4info.h"
#include "p4runtime/decoded_entry.h"
#include "sut/asic.h"
#include "sut/fault.h"
#include "sut/layer_probe.h"

namespace switchv::sut {

class SyncdBinary {
 public:
  // `asic` and `faults` must outlive this object. `pre_config` is the
  // packet-replication-engine configuration (clone session -> port).
  SyncdBinary(AsicSimulator& asic, bmv2::CloneSessionMap pre_config,
              const FaultRegistry* faults)
      : asic_(asic), pre_config_(std::move(pre_config)), faults_(faults) {}

  void set_probe(StackProbe* probe) { probe_ = probe; }

  // The SAI adapter is the only path to the hardware: taking this accessor
  // means an ASIC operation is about to be issued, so it marks both the
  // syncd/SAI and ASIC layers on the attribution probe. Callers that stop
  // short of hardware (e.g. a mirror session with no replication-engine
  // config) must not take it.
  AsicSimulator& asic() {
    ProbeReach(probe_, SutLayer::kSyncdSai);
    ProbeReach(probe_, SutLayer::kAsic);
    return asic_;
  }

  StatusOr<std::uint64_t> AddAclRule(AclStage stage, const AclRule& rule);
  Status RemoveAclRule(AclStage stage, std::uint64_t handle);

  // Translates the logical mirror session (mirror port -> clone session id)
  // into the hardware mapping (mirror port -> destination port) using the
  // replication engine config. Unknown sessions program nothing (matching
  // the model: a clone to an unconfigured session is a no-op).
  Status SetMirrorSession(std::uint32_t mirror_port, std::uint16_t session);
  Status RemoveMirrorSession(std::uint32_t mirror_port);

 private:
  bool faulty(Fault f) const {
    return faults_ != nullptr && faults_->active(f);
  }

  AsicSimulator& asic_;
  bmv2::CloneSessionMap pre_config_;
  const FaultRegistry* faults_;
  StackProbe* probe_ = nullptr;
};

class OrchestrationAgent {
 public:
  OrchestrationAgent(SyncdBinary& syncd, const FaultRegistry* faults)
      : syncd_(syncd), faults_(faults) {}

  void set_probe(StackProbe* probe) { probe_ = probe; }

  // Applies the pipeline config: records the translatable tables. Entries
  // for unconfigured tables are rejected (this is where the server's
  // name-mangling bugs surface).
  Status ConfigureTables(const p4ir::P4Info& info);
  bool configured() const { return configured_; }
  bool IsConfiguredTable(const std::string& name) const {
    return configured_tables_.contains(name);
  }

  // Entry lifecycle. `table_name` may differ from entry.table_name when the
  // P4Runtime server mangles it (fault injection).
  Status Insert(const std::string& table_name,
                const p4rt::DecodedEntry& entry);
  Status Modify(const std::string& table_name,
                const p4rt::DecodedEntry& old_entry,
                const p4rt::DecodedEntry& new_entry);
  Status Delete(const std::string& table_name,
                const p4rt::DecodedEntry& entry);

 private:
  bool faulty(Fault f) const {
    return faults_ != nullptr && faults_->active(f);
  }

  Status InsertImpl(const p4rt::DecodedEntry& entry);
  Status DeleteImpl(const p4rt::DecodedEntry& entry);

  // ACL translation helpers.
  StatusOr<AclRule> ToAclRule(const p4rt::DecodedEntry& entry) const;
  static bool IsAclTable(const std::string& name);

  // Identity of an entry within OA's handle maps.
  static std::string EntryKey(const p4rt::DecodedEntry& entry);

  SyncdBinary& syncd_;
  const FaultRegistry* faults_;
  StackProbe* probe_ = nullptr;
  bool configured_ = false;
  std::set<std::string> configured_tables_;
  // Key layout per table: match-field names in P4Info order.
  std::map<std::string, std::vector<std::string>> table_key_names_;
  std::map<std::string, std::vector<p4ir::MatchKind>> table_key_kinds_;
  // ACL rule handles by entry identity.
  std::map<std::string, std::uint64_t> acl_handles_;
  // WCMP member accounting: the shared hardware member pool is sized to
  // back the table's guarantee (guaranteed groups x max group size), so a
  // correct stack can never exhaust it within the guarantee.
  int wcmp_members_in_use_ = 0;
  static constexpr int kWcmpMemberPool = 2048;
  std::map<std::string, int> wcmp_member_counts_;
};

}  // namespace switchv::sut

#endif  // SWITCHV_SUT_ORCHESTRATION_H_
