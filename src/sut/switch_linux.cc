#include "sut/switch_linux.h"

namespace switchv::sut {

namespace {

// A minimal LLDP frame: ethertype 0x88CC toward the LLDP multicast MAC.
std::string LldpFrame() {
  std::string frame;
  const char dst[] = "\x01\x80\xC2\x00\x00\x0E";
  const char src[] = "\x02\x11\x22\x33\x44\x55";
  frame.append(dst, 6);
  frame.append(src, 6);
  frame.append("\x88\xCC", 2);
  frame.append("\x02\x07\x04\x02\x11\x22\x33\x44\x55", 9);  // chassis TLV
  return frame;
}

// A minimal IPv6 router solicitation (ICMPv6 type 133) frame.
std::string RouterSolicitationFrame() {
  std::string frame;
  frame.append("\x33\x33\x00\x00\x00\x02", 6);  // all-routers multicast
  frame.append("\x02\x11\x22\x33\x44\x55", 6);
  frame.append("\x86\xDD", 2);  // IPv6
  // IPv6 header: version 6, next header 58 (ICMPv6), hop limit 255.
  std::string v6(40, '\0');
  v6[0] = '\x60';
  v6[4] = 0;
  v6[5] = 8;  // payload length 8
  v6[6] = '\x3A';
  v6[7] = '\xFF';
  frame += v6;
  frame.append("\x85\x00\x00\x00\x00\x00\x00\x00", 8);  // RS
  return frame;
}

}  // namespace

std::vector<p4rt::PacketIn> SwitchLinux::Tick() {
  ++tick_;
  std::vector<p4rt::PacketIn> injected;
  if (faults_ == nullptr) return injected;
  if (faults_->active(Fault::kLldpDaemonPunts)) {
    injected.push_back(p4rt::PacketIn{LldpFrame(), /*ingress_port=*/1});
  }
  if (faults_->active(Fault::kIpv6RouterSolicitation) && tick_ % 2 == 0) {
    injected.push_back(
        p4rt::PacketIn{RouterSolicitationFrame(), /*ingress_port=*/0});
  }
  return injected;
}

}  // namespace switchv::sut
