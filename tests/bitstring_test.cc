#include "util/bitstring.h"

#include <gtest/gtest.h>

namespace switchv {
namespace {

TEST(BitString, FromUintTruncatesToWidth) {
  const BitString b = BitString::FromUint(0x1FF, 8);
  EXPECT_EQ(b.ToUint64(), 0xFFu);
  EXPECT_EQ(b.width(), 8);
}

TEST(BitString, CanonicalBytesAreShortest) {
  EXPECT_EQ(BitString::FromUint(0, 32).ToCanonicalBytes(),
            std::string("\0", 1));
  EXPECT_EQ(BitString::FromUint(1, 32).ToCanonicalBytes(),
            std::string("\1", 1));
  EXPECT_EQ(BitString::FromUint(0x0A000001, 32).ToCanonicalBytes(),
            std::string("\x0A\x00\x00\x01", 4));
}

TEST(BitString, PaddedBytesCoverFullWidth) {
  EXPECT_EQ(BitString::FromUint(1, 32).ToPaddedBytes().size(), 4u);
  EXPECT_EQ(BitString::FromUint(1, 12).ToPaddedBytes().size(), 2u);
  EXPECT_EQ(BitString::FromUint(1, 1).ToPaddedBytes().size(), 1u);
}

TEST(BitString, FromBytesRoundTripsCanonical) {
  const BitString original = BitString::FromUint(0xDEADBEEF, 32);
  auto parsed = BitString::FromBytes(original.ToCanonicalBytes(), 32);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, original);
}

TEST(BitString, FromBytesRejectsNonCanonical) {
  // Leading zero byte: valid value, non-canonical encoding.
  auto parsed = BitString::FromBytes(std::string("\x00\x01", 2), 32);
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  // But accepted when canonicality is not required.
  auto lax = BitString::FromBytes(std::string("\x00\x01", 2), 32,
                                  /*require_canonical=*/false);
  ASSERT_TRUE(lax.ok());
  EXPECT_EQ(lax->ToUint64(), 1u);
}

TEST(BitString, FromBytesRejectsOverwideValue) {
  auto parsed = BitString::FromBytes(std::string("\x01\x00", 2), 8);
  EXPECT_EQ(parsed.status().code(), StatusCode::kOutOfRange);
}

TEST(BitString, FromBytesRejectsEmpty) {
  EXPECT_FALSE(BitString::FromBytes("", 8).ok());
}

TEST(BitString, FromBytesBoundaryFits) {
  // 0xFF fits exactly in 8 bits.
  auto parsed = BitString::FromBytes(std::string("\xFF", 1), 8);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->ToUint64(), 0xFFu);
  // 0x1FF does not.
  EXPECT_FALSE(BitString::FromBytes(std::string("\x01\xFF", 2), 8).ok());
}

TEST(BitString, Ipv4Parsing) {
  auto addr = BitString::FromIpv4("10.0.0.1");
  ASSERT_TRUE(addr.ok());
  EXPECT_EQ(addr->ToUint64(), 0x0A000001u);
  EXPECT_EQ(addr->width(), 32);
  EXPECT_FALSE(BitString::FromIpv4("10.0.0").ok());
  EXPECT_FALSE(BitString::FromIpv4("10.0.0.256").ok());
  EXPECT_FALSE(BitString::FromIpv4("10.0.0.1.2").ok());
}

TEST(BitString, Ipv6Parsing) {
  auto full = BitString::FromIpv6("2001:db8:0:0:0:0:0:1");
  ASSERT_TRUE(full.ok());
  auto compressed = BitString::FromIpv6("2001:db8::1");
  ASSERT_TRUE(compressed.ok());
  EXPECT_EQ(*full, *compressed);
  auto loopback = BitString::FromIpv6("::1");
  ASSERT_TRUE(loopback.ok());
  EXPECT_EQ(loopback->value(), static_cast<uint128>(1));
  auto zero = BitString::FromIpv6("::");
  ASSERT_TRUE(zero.ok());
  EXPECT_TRUE(zero->IsZero());
  EXPECT_FALSE(BitString::FromIpv6("2001:db8::1::2").ok());
  EXPECT_FALSE(BitString::FromIpv6("1:2:3:4:5:6:7").ok());
}

TEST(BitString, MacParsing) {
  auto mac = BitString::FromMac("02:aa:00:00:00:01");
  ASSERT_TRUE(mac.ok());
  EXPECT_EQ(mac->ToUint64(), 0x02AA00000001ull);
  EXPECT_FALSE(BitString::FromMac("02:aa:00:00:00").ok());
  EXPECT_FALSE(BitString::FromMac("02:aa:00:00:00:xx").ok());
}

TEST(BitString, PrefixMask) {
  EXPECT_EQ(BitString::PrefixMask(24, 32).ToUint64(), 0xFFFFFF00u);
  EXPECT_EQ(BitString::PrefixMask(0, 32).ToUint64(), 0u);
  EXPECT_EQ(BitString::PrefixMask(32, 32).ToUint64(), 0xFFFFFFFFu);
  EXPECT_EQ(BitString::PrefixMask(64, 128),
            BitString::FromUint(~static_cast<uint128>(0) << 64, 128));
}

TEST(BitString, TernaryMatches) {
  const BitString field = BitString::FromUint(0x0A0000FF, 32);
  const BitString value = BitString::FromUint(0x0A000000, 32);
  const BitString mask = BitString::FromUint(0xFFFF0000, 32);
  EXPECT_TRUE(field.TernaryMatches(value, mask));
  EXPECT_FALSE(field.TernaryMatches(value, BitString::AllOnes(32)));
}

TEST(BitString, BitwiseOps) {
  const BitString a = BitString::FromUint(0b1100, 4);
  const BitString b = BitString::FromUint(0b1010, 4);
  EXPECT_EQ((a & b).ToUint64(), 0b1000u);
  EXPECT_EQ((a | b).ToUint64(), 0b1110u);
  EXPECT_EQ((a ^ b).ToUint64(), 0b0110u);
  EXPECT_EQ((~a).ToUint64(), 0b0011u);
}

TEST(BitString, WidthBounds) {
  // Width 128 works end to end.
  const BitString wide = BitString::AllOnes(128);
  EXPECT_EQ(wide.ToPaddedBytes().size(), 16u);
  auto round = BitString::FromBytes(wide.ToCanonicalBytes(), 128);
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(*round, wide);
}

TEST(IsCanonicalByteString, Rules) {
  EXPECT_TRUE(IsCanonicalByteString(std::string("\x00", 1)));
  EXPECT_TRUE(IsCanonicalByteString(std::string("\x01\x00", 2)));
  EXPECT_FALSE(IsCanonicalByteString(std::string("\x00\x01", 2)));
  EXPECT_FALSE(IsCanonicalByteString(""));
}

}  // namespace
}  // namespace switchv
