// Live-telemetry plane suite (ctest -L telemetry).
//
// Unit layers: the Metrics merge algebra (commutative/associative,
// histogram buckets included) and the delta/accumulate streaming
// invariant; Prometheus label-value escaping and metric-name
// sanitization; journal ordering; TelemetrySample and request-envelope
// wire round-trips; the embedded HTTP server; rolling-view semantics.
//
// Acceptance: a two-host loopback fleet campaign with a host killed
// before the first dispatch must (a) produce a report byte-identical to
// the in-process telemetry-off run, (b) journal the full lifecycle —
// dispatch, retire, reprovision — with monotone timestamps, (c) stitch
// remote spans onto distinct per-host trace tracks in the coordinator
// clock, and (d) serve a parseable /metrics exposition matching the
// final rolling aggregate.
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <random>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "switchv/experiment.h"
#include "switchv/fleet.h"
#include "switchv/journal.h"
#include "switchv/shard_io.h"
#include "switchv/shard_transport.h"
#include "switchv/telemetry.h"
#include "switchv/telemetry_http.h"
#include "switchv/trace.h"

// Baked in by tests/CMakeLists.txt; the campaign tests skip when the tool
// binaries are unavailable (e.g. a hand-rolled compile).
#ifndef SWITCHV_SHARD_WORKER_PATH
#define SWITCHV_SHARD_WORKER_PATH ""
#endif
#ifndef SWITCHV_WORKER_HOST_PATH
#define SWITCHV_WORKER_HOST_PATH ""
#endif

namespace switchv {
namespace {

// ---------------------------------------------------------------------------
// Metrics merge algebra
// ---------------------------------------------------------------------------

// A pseudo-random snapshot: every counter, phase timer, and histogram
// bucket populated (cache and transport counters included), wall left at
// zero so the algebra comparisons are wall-free.
MetricsSnapshot ArbitrarySnapshot(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  const auto n = [&rng] { return rng() % 1000; };
  MetricsSnapshot s;
  s.shards_completed = n();
  s.updates_sent = n();
  s.requests_sent = n();
  s.generated_valid = n();
  s.generated_invalid = n();
  s.oracle_findings = n();
  s.packets_tested = n();
  s.solver_queries = n();
  s.generation_cache_hits = n();
  s.batch_lanes_run = n();
  s.batch_scalar_fallbacks = n();
  s.reference_packets = n();
  s.oracle_cache_hits = n();
  s.oracle_cache_misses = n();
  s.oracle_cache_evictions = n();
  s.switch_writes = n();
  s.switch_reads = n();
  s.switch_packets_injected = n();
  s.incidents_raised = n();
  s.incidents_unique = n();
  s.shards_lost = n();
  s.worker_crashes = n();
  s.worker_timeouts = n();
  s.worker_retries = n();
  s.remote_reconnects = n();
  s.hosts_retired = n();
  s.switch_write_ns = n();
  s.oracle_ns = n();
  s.reference_ns = n();
  s.generation_ns = n();
  for (HistogramSnapshot* hist :
       {&s.switch_write_hist, &s.oracle_hist, &s.reference_hist,
        &s.generation_hist}) {
    for (int i = 0; i < kHistogramBuckets; ++i) {
      hist->counts[static_cast<std::size_t>(i)] = n();
      hist->count += hist->counts[static_cast<std::size_t>(i)];
    }
    hist->sum_ns = n() * 1000;
  }
  return s;
}

// ToWireJson is the lossless projection (every counter + full bucket
// arrays), which makes it the right equality for algebra properties.
std::string Wire(const MetricsSnapshot& s) { return s.ToWireJson(); }

TEST(MetricsAlgebraTest, AccumulateCommutes) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const MetricsSnapshot a = ArbitrarySnapshot(seed);
    const MetricsSnapshot b = ArbitrarySnapshot(seed + 1000);
    MetricsSnapshot ab = a;
    ab.Accumulate(b);
    MetricsSnapshot ba = b;
    ba.Accumulate(a);
    ASSERT_EQ(Wire(ab), Wire(ba)) << "seed " << seed;
  }
}

TEST(MetricsAlgebraTest, AccumulateAssociates) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const MetricsSnapshot a = ArbitrarySnapshot(seed);
    const MetricsSnapshot b = ArbitrarySnapshot(seed + 1000);
    const MetricsSnapshot c = ArbitrarySnapshot(seed + 2000);
    MetricsSnapshot left = a;  // (a + b) + c
    left.Accumulate(b);
    left.Accumulate(c);
    MetricsSnapshot bc = b;  // a + (b + c)
    bc.Accumulate(c);
    MetricsSnapshot right = a;
    right.Accumulate(bc);
    ASSERT_EQ(Wire(left), Wire(right)) << "seed " << seed;
  }
}

// The streaming invariant: base + (now - base) == now, field-wise, bucket
// arrays included — this is what makes interval deltas lossless.
TEST(MetricsAlgebraTest, DeltaAccumulateRoundTrips) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const MetricsSnapshot base = ArbitrarySnapshot(seed);
    MetricsSnapshot now = base;
    now.Accumulate(ArbitrarySnapshot(seed + 500));  // counters grew
    const MetricsSnapshot delta = now.DeltaSince(base);
    EXPECT_EQ(delta.wall_seconds, 0) << "deltas are interval-scoped";
    MetricsSnapshot rebuilt = base;
    rebuilt.Accumulate(delta);
    ASSERT_EQ(Wire(rebuilt), Wire(now)) << "seed " << seed;
  }
}

TEST(MetricsAlgebraTest, LiveMergeCommutes) {
  const MetricsSnapshot a = ArbitrarySnapshot(7);
  const MetricsSnapshot b = ArbitrarySnapshot(8);
  Metrics ab;
  ab.Merge(a);
  ab.Merge(b);
  Metrics ba;
  ba.Merge(b);
  ba.Merge(a);
  EXPECT_EQ(Wire(ab.Snapshot(0)), Wire(ba.Snapshot(0)));
}

TEST(MetricsAlgebraTest, HistogramMergeOrderIndependent) {
  const MetricsSnapshot x = ArbitrarySnapshot(9);
  const MetricsSnapshot y = ArbitrarySnapshot(10);
  const MetricsSnapshot z = ArbitrarySnapshot(11);
  LatencyHistogram left;
  left.Merge(x.oracle_hist);
  left.Merge(y.oracle_hist);
  left.Merge(z.oracle_hist);
  LatencyHistogram right;
  right.Merge(z.oracle_hist);
  right.Merge(y.oracle_hist);
  right.Merge(x.oracle_hist);
  const HistogramSnapshot l = left.Snapshot();
  const HistogramSnapshot r = right.Snapshot();
  EXPECT_EQ(l.counts, r.counts);
  EXPECT_EQ(l.count, r.count);
  EXPECT_EQ(l.sum_ns, r.sum_ns);
}

// ---------------------------------------------------------------------------
// Prometheus exposition hygiene
// ---------------------------------------------------------------------------

TEST(PrometheusTest, LabelValueEscaping) {
  EXPECT_EQ(PrometheusLabelEscape("plain"), "plain");
  EXPECT_EQ(PrometheusLabelEscape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(PrometheusLabelEscape("quo\"te"), "quo\\\"te");
  EXPECT_EQ(PrometheusLabelEscape("new\nline"), "new\\nline");
  EXPECT_EQ(PrometheusLabelEscape("all\\\"\n"), "all\\\\\\\"\\n");
}

TEST(PrometheusTest, NameSanitization) {
  EXPECT_EQ(PrometheusSanitizeName("p4-fuzzer"), "p4_fuzzer");
  EXPECT_EQ(PrometheusSanitizeName("syncd-sai"), "syncd_sai");
  EXPECT_EQ(PrometheusSanitizeName("a:b_c9"), "a:b_c9");
  EXPECT_EQ(PrometheusSanitizeName("9lives"), "_9lives");
  EXPECT_EQ(PrometheusSanitizeName(""), "_");
  EXPECT_EQ(PrometheusSanitizeName("sp ace/slash"), "sp_ace_slash");
}

// Every non-comment exposition line must be `name value` or
// `name{labels} value` with a name that is already a legal identifier —
// the format 0.0.4 contract the CI curl check also asserts.
void ExpectValidExposition(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  int series = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    ++series;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string name = line.substr(0, space);
    const std::size_t brace = name.find('{');
    if (brace != std::string::npos) {
      ASSERT_EQ(name.back(), '}') << line;
      name = name.substr(0, brace);
    }
    EXPECT_EQ(PrometheusSanitizeName(name), name) << line;
    EXPECT_FALSE(line.substr(space + 1).empty()) << line;
  }
  EXPECT_GT(series, 0) << "empty exposition";
}

TEST(PrometheusTest, IncidentClassSeriesAreSanitizedAndEscaped) {
  Metrics live;
  CampaignTelemetry telemetry;
  telemetry.BeginCampaign(42, 1, &live);
  telemetry.RecordIncidentClass("p4-fuzzer", "syncd-sai");
  telemetry.RecordIncidentClass("evil\"detector\\n", "layer\nx");
  telemetry.RecordHeartbeatRtt("127.0.0.1:1234", 1500000);
  const std::string text = telemetry.ToPrometheus();
  ExpectValidExposition(text);
  EXPECT_NE(text.find("switchv_incident_p4_fuzzer_syncd_sai_total"),
            std::string::npos);
  EXPECT_NE(text.find("detector=\"evil\\\"detector\\\\n\""),
            std::string::npos);
  EXPECT_NE(text.find("switchv_heartbeat_rtt_seconds_count"
                      "{host=\"127.0.0.1:1234\"}"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Event journal
// ---------------------------------------------------------------------------

TEST(JournalTest, ConcurrentAppendsStayMonotone) {
  EventJournal journal;
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&journal, t] {
      for (int i = 0; i < 50; ++i) {
        journal.Append(JournalEventKind::kShardDispatched, 1, t * 50 + i,
                       "host" + std::to_string(t));
      }
    });
  }
  for (std::thread& w : writers) w.join();
  const std::vector<JournalEvent> events = journal.EventsSince(0);
  ASSERT_EQ(events.size(), 200u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);
    EXPECT_GT(events[i].ts_ns, events[i - 1].ts_ns)
        << "timestamps must stay strictly monotone in seq order";
  }
}

TEST(JournalTest, RangeQueriesAndKindCounts) {
  EventJournal journal;
  journal.Append(JournalEventKind::kCampaignStarted, 9);
  journal.Append(JournalEventKind::kShardDispatched, 9, 0);
  journal.Append(JournalEventKind::kShardDispatched, 9, 1);
  journal.Append(JournalEventKind::kShardCompleted, 9, 0);
  EXPECT_EQ(journal.size(), 4u);
  EXPECT_EQ(journal.CountKind(JournalEventKind::kShardDispatched), 2u);
  EXPECT_EQ(journal.CountKind(JournalEventKind::kShardLost), 0u);
  EXPECT_EQ(journal.EventsSince(2).size(), 2u);
  EXPECT_EQ(journal.EventsSince(4).size(), 0u);
  const std::string jsonl = journal.ToJsonlSince(3);
  EXPECT_EQ(jsonl.find("\"seq\":3"), std::string::npos);
  EXPECT_NE(jsonl.find("\"seq\":4"), std::string::npos);
  EXPECT_NE(jsonl.find("\"event\":\"shard-completed\""), std::string::npos);
}

TEST(JournalTest, JsonlCarriesIdentityFields) {
  EventJournal journal;
  journal.Append(JournalEventKind::kHostRetired, 5, 3, "127.0.0.1:99",
                 "2 consecutive \"failures\"");
  const std::string jsonl = journal.ToJsonl();
  EXPECT_NE(jsonl.find("\"event\":\"host-retired\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"campaign_id\":5"), std::string::npos);
  EXPECT_NE(jsonl.find("\"shard\":3"), std::string::npos);
  EXPECT_NE(jsonl.find("\"host\":\"127.0.0.1:99\""), std::string::npos);
  EXPECT_NE(jsonl.find("\\\"failures\\\""), std::string::npos)
      << "details must be JSON-escaped";
}

// ---------------------------------------------------------------------------
// Wire formats
// ---------------------------------------------------------------------------

TEST(TelemetrySampleTest, RoundTrips) {
  TelemetrySample sample;
  sample.shard = 4;
  sample.seq = 17;
  sample.delta = ArbitrarySnapshot(33);
  TraceSpan span;
  span.name = "fuzz-batch 0";
  span.category = "control-plane";
  span.shard = 4;
  span.seq = 2;
  span.parent_seq = 1;
  span.start_ns = 1000;
  span.duration_ns = 500;
  sample.spans.push_back(span);

  const std::string line = SerializeTelemetrySample(sample);
  ASSERT_TRUE(LooksLikeTelemetrySample(line));
  const StatusOr<TelemetrySample> parsed = ParseTelemetrySample(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->shard, 4);
  EXPECT_EQ(parsed->seq, 17u);
  EXPECT_EQ(Wire(parsed->delta), Wire(sample.delta));
  ASSERT_EQ(parsed->spans.size(), 1u);
  EXPECT_EQ(parsed->spans[0].name, "fuzz-batch 0");
  EXPECT_EQ(parsed->spans[0].start_ns, 1000u);
  EXPECT_EQ(parsed->spans[0].parent_seq, 1u);
}

TEST(TelemetrySampleTest, PreambleSniffingRejectsOtherLines) {
  EXPECT_FALSE(LooksLikeTelemetrySample(""));
  EXPECT_FALSE(LooksLikeTelemetrySample("{\"index\":0}"));
  EXPECT_FALSE(LooksLikeTelemetrySample("worker log line"));
}

TEST(EnvelopeTest, V1IsByteIdenticalWhenTelemetryOff) {
  RemoteShardRequest request;
  request.campaign_id = 12;
  request.shard = 3;
  request.attempt = 2;
  request.timeout_seconds = 5;
  request.spec_line = "{\"spec\":true}";
  const std::string wire = SerializeRemoteRequest(request);
  EXPECT_EQ(wire, "switchv-shard-request 1 12 3 2 5\n{\"spec\":true}")
      << "telemetry-off envelopes must not change on the wire";
  const StatusOr<RemoteShardRequest> parsed = ParseRemoteRequest(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->telemetry_interval_seconds, 0);
}

TEST(EnvelopeTest, V2RoundTripsTheInterval) {
  RemoteShardRequest request;
  request.campaign_id = 12;
  request.shard = 3;
  request.attempt = 1;
  request.timeout_seconds = 5;
  request.telemetry_interval_seconds = 0.25;
  request.spec_line = "{\"spec\":true}";
  const std::string wire = SerializeRemoteRequest(request);
  EXPECT_EQ(wire.rfind("switchv-shard-request 2 ", 0), 0u) << wire;
  const StatusOr<RemoteShardRequest> parsed = ParseRemoteRequest(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->telemetry_interval_seconds, 0.25);
  EXPECT_EQ(parsed->spec_line, "{\"spec\":true}");
}

TEST(EnvelopeTest, RejectsBadVersionsAndIntervals) {
  EXPECT_FALSE(
      ParseRemoteRequest("switchv-shard-request 2 1 0 1 5 0\n{}").ok())
      << "v2 requires a positive interval";
  EXPECT_FALSE(
      ParseRemoteRequest("switchv-shard-request 2 1 0 1 5\n{}").ok())
      << "v2 without an interval is malformed";
  EXPECT_FALSE(ParseRemoteRequest("switchv-shard-request 3 1 0 1 5\n{}").ok())
      << "unknown envelope versions are rejected";
}

// ---------------------------------------------------------------------------
// Embedded HTTP server
// ---------------------------------------------------------------------------

// Minimal blocking request against 127.0.0.1:port; returns the raw
// response (headers + body).
std::string HttpRequest(int port, const std::string& request_text) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  (void)::send(fd, request_text.data(), request_text.size(), 0);
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string HttpGet(int port, const std::string& target) {
  return HttpRequest(port, "GET " + target + " HTTP/1.0\r\n\r\n");
}

std::string HttpBody(const std::string& response) {
  const std::size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

TEST(HttpServerTest, ServesRegisteredPathsAndRejectsTheRest) {
  TelemetryHttpServer server;
  server.Handle("/ping", [](std::string_view query, std::string* type) {
    *type = "text/plain";
    return "pong:" + std::string(query);
  });
  const Status started = server.Start(0);
  ASSERT_TRUE(started.ok()) << started;
  ASSERT_GT(server.port(), 0);
  EXPECT_TRUE(server.running());

  const std::string ok = HttpGet(server.port(), "/ping?x=1");
  EXPECT_NE(ok.find("200 OK"), std::string::npos) << ok;
  EXPECT_NE(ok.find("pong:x=1"), std::string::npos) << ok;
  EXPECT_NE(ok.find("Content-Type: text/plain"), std::string::npos) << ok;

  EXPECT_NE(HttpGet(server.port(), "/nope").find("404"), std::string::npos);
  EXPECT_NE(
      HttpRequest(server.port(), "POST /ping HTTP/1.0\r\n\r\n").find("405"),
      std::string::npos);
  EXPECT_NE(HttpRequest(server.port(), "garbage\r\n\r\n").find("400"),
            std::string::npos);

  server.Stop();
  EXPECT_FALSE(server.running());
}

// ---------------------------------------------------------------------------
// Rolling view semantics
// ---------------------------------------------------------------------------

TEST(CampaignTelemetryTest, RollingViewFoldsAndDiscardsAttemptDeltas) {
  Metrics live;
  CampaignTelemetry telemetry;
  telemetry.BeginCampaign(77, 2, &live);
  live.Add(live.updates_sent, 100);

  const std::uint64_t token = telemetry.BeginAttempt(0, "hostA");
  MetricsSnapshot delta;
  delta.updates_sent = 40;
  telemetry.AccumulateDelta(token, delta);
  EXPECT_EQ(telemetry.RollingSnapshot().updates_sent, 140u)
      << "rolling = authoritative sink + in-flight attempt deltas";

  // The attempt ends (its real result merges into the sink): the
  // accumulator is discarded, never double-counted.
  telemetry.EndAttempt(token);
  live.Add(live.updates_sent, 40);
  EXPECT_EQ(telemetry.RollingSnapshot().updates_sent, 140u);

  // A late sample for a dead token is a no-op.
  telemetry.AccumulateDelta(token, delta);
  EXPECT_EQ(telemetry.RollingSnapshot().updates_sent, 140u);

  MetricsSnapshot final_snapshot;
  final_snapshot.updates_sent = 140;
  final_snapshot.wall_seconds = 1.5;
  telemetry.EndCampaign(final_snapshot);
  live.Add(live.updates_sent, 999);  // the sink is detached from the view
  EXPECT_EQ(telemetry.RollingSnapshot().updates_sent, 140u);
  EXPECT_EQ(telemetry.RollingSnapshot().wall_seconds, 1.5);
}

// ---------------------------------------------------------------------------
// Campaign acceptance
// ---------------------------------------------------------------------------

// One model + replay state shared by every campaign test in this file
// (mirrors FleetTest in fleet_test.cc: building the SAI program and
// workload is comparatively expensive).
class TelemetryCampaignTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto model = models::BuildSaiProgram(models::Role::kMiddleblock);
    ASSERT_TRUE(model.ok()) << model.status();
    model_ = new p4ir::Program(*std::move(model));
    const p4ir::P4Info info = p4ir::P4Info::FromProgram(*model_);
    auto entries =
        models::GenerateEntries(info, models::Role::kMiddleblock,
                                ExperimentOptions::SmallWorkload(), /*seed=*/2);
    ASSERT_TRUE(entries.ok()) << entries.status();
    entries_ = new std::vector<p4rt::TableEntry>(*std::move(entries));
  }
  static void TearDownTestSuite() {
    delete model_;
    delete entries_;
    model_ = nullptr;
    entries_ = nullptr;
  }

  static bool ToolsAvailable() {
    return !std::string(SWITCHV_WORKER_HOST_PATH).empty() &&
           !std::string(SWITCHV_SHARD_WORKER_PATH).empty();
  }

  static CampaignOptions FastCampaign() {
    CampaignOptions options;
    options.seed = 7;
    options.control_plane_shards = 4;
    options.dataplane_shards = 2;
    options.control_plane.num_requests = 12;
    options.control_plane.updates_per_request = 40;
    options.dataplane.packet_out_ports = 2;
    options.parallelism = 2;
    return options;
  }

  // The recipe matching the fixture's model and entries exactly.
  static ShardScenario Scenario() {
    ShardScenario scenario;
    scenario.role = models::Role::kMiddleblock;
    scenario.workload = ExperimentOptions::SmallWorkload();
    scenario.entry_seed = 2;
    return scenario;
  }

  static CampaignReport Run(const sut::FaultRegistry* faults,
                            const CampaignOptions& options) {
    return RunValidationCampaign(faults, *model_, models::SaiParserSpec(),
                                 *entries_, options);
  }

  static p4ir::Program* model_;
  static std::vector<p4rt::TableEntry>* entries_;
};

p4ir::Program* TelemetryCampaignTest::model_ = nullptr;
std::vector<p4rt::TableEntry>* TelemetryCampaignTest::entries_ = nullptr;

// Same deterministic projection as engine_test.cc / fleet_test.cc: the
// byte-identity invariant is asserted by comparing these strings.
std::string RenderReport(const CampaignReport& report) {
  std::ostringstream out;
  out << "shards=" << report.shards_run
      << " fuzzed=" << report.fuzzed_updates
      << " packets=" << report.packets_tested
      << " targets=" << report.generation.targets_covered << "/"
      << report.generation.targets_total
      << " queries=" << report.generation.solver_queries << "\n";
  for (const IncidentGroup& group : report.groups) {
    out << "group " << group.fingerprint << " x" << group.occurrences
        << " shards=[";
    for (const int shard : group.shards) out << shard << ",";
    out << "] detector=" << DetectorName(group.exemplar.detector)
        << " layer=" << sut::SutLayerName(group.exemplar.layer)
        << " shard=" << group.exemplar.shard << "\n"
        << "summary: " << group.exemplar.summary << "\n"
        << "details: " << group.exemplar.details << "\n"
        << group.exemplar.replay_trace << "\n";
  }
  const MetricsSnapshot& m = report.metrics;
  out << "counts " << m.shards_completed << " " << m.updates_sent << " "
      << m.requests_sent << " " << m.generated_valid << " "
      << m.generated_invalid << " " << m.oracle_findings << " "
      << m.packets_tested << " " << m.solver_queries << " "
      << m.switch_writes << " " << m.switch_reads << " "
      << m.switch_packets_injected << " " << m.incidents_raised << " "
      << m.incidents_unique << "\n";
  out << "hists " << m.switch_write_hist.count << " " << m.oracle_hist.count
      << " " << m.reference_hist.count << " " << m.generation_hist.count
      << "\n";
  return out.str();
}

// Telemetry is strictly observational: the in-process report with the
// plane attached is byte-identical to the plain run, the journal carries
// the shard lifecycle, and the frozen rolling view IS the report.
TEST_F(TelemetryCampaignTest, InProcessReportIdenticalWithTelemetry) {
  sut::FaultRegistry faults;
  faults.Activate(sut::Fault::kDeleteNonExistingFailsBatch);

  const CampaignOptions plain = FastCampaign();
  const CampaignReport off = Run(&faults, plain);

  CampaignTelemetry telemetry;
  CampaignOptions instrumented = plain;
  instrumented.telemetry = &telemetry;
  instrumented.telemetry_interval_seconds = 0.05;
  const CampaignReport on = Run(&faults, instrumented);

  ASSERT_TRUE(off.bug_detected());
  EXPECT_EQ(RenderReport(off), RenderReport(on));
  const EventJournal& journal = telemetry.journal();
  EXPECT_EQ(journal.CountKind(JournalEventKind::kCampaignStarted), 1u);
  EXPECT_EQ(journal.CountKind(JournalEventKind::kCampaignFinished), 1u);
  EXPECT_EQ(journal.CountKind(JournalEventKind::kShardDispatched),
            static_cast<std::uint64_t>(off.shards_run));
  EXPECT_EQ(journal.CountKind(JournalEventKind::kShardCompleted),
            static_cast<std::uint64_t>(off.shards_run));
  EXPECT_EQ(journal.CountKind(JournalEventKind::kIncidentFirstSeen),
            off.groups.size());
  EXPECT_EQ(Wire(telemetry.RollingSnapshot()), Wire(on.metrics));
}

// Subprocess substrate: workers stream interval samples over stdout; the
// report stays byte-identical and the samples never double-count.
TEST_F(TelemetryCampaignTest, SubprocessStreamingKeepsReportIdentical) {
  if (!ToolsAvailable()) GTEST_SKIP() << "tool binaries not baked in";
  sut::FaultRegistry faults;
  faults.Activate(sut::Fault::kDeleteNonExistingFailsBatch);

  const CampaignOptions plain = FastCampaign();
  const CampaignReport off = Run(&faults, plain);

  CampaignTelemetry telemetry;
  CampaignOptions streamed = plain;
  streamed.execution = CampaignOptions::Execution::kSubprocess;
  streamed.scenario = Scenario();
  streamed.worker_binary = SWITCHV_SHARD_WORKER_PATH;
  streamed.telemetry = &telemetry;
  streamed.telemetry_interval_seconds = 0.02;
  const CampaignReport on = Run(&faults, streamed);

  EXPECT_EQ(RenderReport(off), RenderReport(on));
  EXPECT_EQ(Wire(telemetry.RollingSnapshot()), Wire(on.metrics));
}

// The ISSUE acceptance: a two-host loopback fleet campaign in which host 0
// is SIGKILLed before the first dispatch, with the telemetry plane, the
// tracer, and the HTTP endpoint all attached.
TEST_F(TelemetryCampaignTest, TwoHostFleetAcceptance) {
  if (!ToolsAvailable()) GTEST_SKIP() << "tool binaries not baked in";
  sut::FaultRegistry faults;
  faults.Activate(sut::Fault::kDeleteNonExistingFailsBatch);

  const CampaignReport baseline = Run(&faults, FastCampaign());

  CampaignTelemetry telemetry;
  FleetOptions fleet_options;
  fleet_options.backend = FleetOptions::Backend::kLocalProcess;
  fleet_options.size = 2;
  fleet_options.host_binary = SWITCHV_WORKER_HOST_PATH;
  fleet_options.worker_binary = SWITCHV_SHARD_WORKER_PATH;
  fleet_options.host_extra_args = {"--heartbeat-interval=0.2"};
  fleet_options.auth_secret = "telemetry-acceptance-secret";
  fleet_options.reprovision_budget = 4;
  fleet_options.journal = &telemetry.journal();
  fleet_options.campaign_id = 7;  // matches EffectiveCampaignId of seed 7
  Fleet fleet(fleet_options);
  const Status provisioned = fleet.Provision();
  ASSERT_TRUE(provisioned.ok()) << provisioned;
  const std::vector<Fleet::HostInfo> hosts = fleet.Hosts();
  ASSERT_EQ(hosts.size(), 2u);
  // Host 0 dies before the first dial: its first shard fails at the
  // transport, the pool retires it, and the fleet replaces it.
  ::kill(hosts[0].pid, SIGKILL);

  TelemetryHttpServer http;
  http.ServeCampaignTelemetry(&telemetry);
  ASSERT_TRUE(http.Start(0).ok());

  Tracer tracer;
  CampaignOptions options = FastCampaign();
  options.execution = CampaignOptions::Execution::kRemote;
  options.fleet = &fleet;
  options.scenario = Scenario();
  options.remote_host_max_failures = 1;
  options.telemetry = &telemetry;
  options.telemetry_interval_seconds = 0.05;
  options.tracer = &tracer;
  const CampaignReport report = Run(&faults, options);

  // (a) Byte-identical report, despite the kill and the live streaming.
  EXPECT_GE(fleet.reprovisions(), 1);
  EXPECT_EQ(report.metrics.shards_lost, 0u);
  EXPECT_EQ(RenderReport(baseline), RenderReport(report));

  // (b) The journal saw the full lifecycle, timestamps monotone.
  const EventJournal& journal = telemetry.journal();
  EXPECT_GE(journal.CountKind(JournalEventKind::kHostLaunched), 3u)
      << "2 provisioned + >=1 replacement";
  EXPECT_GE(journal.CountKind(JournalEventKind::kHostHello), 3u);
  EXPECT_GE(journal.CountKind(JournalEventKind::kHostRetired), 1u);
  EXPECT_GE(journal.CountKind(JournalEventKind::kHostReprovisioned), 1u);
  EXPECT_EQ(journal.CountKind(JournalEventKind::kShardDispatched),
            static_cast<std::uint64_t>(report.shards_run));
  EXPECT_EQ(journal.CountKind(JournalEventKind::kShardCompleted),
            static_cast<std::uint64_t>(report.shards_run));
  const std::vector<JournalEvent> events = journal.EventsSince(0);
  for (std::size_t i = 1; i < events.size(); ++i) {
    ASSERT_GT(events[i].ts_ns, events[i - 1].ts_ns);
  }

  // (c) Stitched trace: remote spans landed host-tagged, from at least two
  // distinct endpoints, rebased into the coordinator clock (inside the
  // campaign span's window) — and ToChromeJson gives each host its own
  // labelled process track.
  std::uint64_t campaign_end_ns = 0;
  for (const TraceSpan& span : tracer.Spans()) {
    if (span.name == "campaign") {
      campaign_end_ns = span.start_ns + span.duration_ns;
    }
  }
  ASSERT_GT(campaign_end_ns, 0u);
  std::set<std::string> span_hosts;
  for (const TraceSpan& span : tracer.Spans()) {
    if (!span.host.empty()) span_hosts.insert(span.host);
    EXPECT_LE(span.start_ns, campaign_end_ns)
        << "span " << span.name << " on host '" << span.host
        << "' was not rebased into the coordinator clock";
  }
  EXPECT_GE(span_hosts.size(), 2u)
      << "shards must have traced from both fleet hosts";
  const std::string chrome = tracer.ToChromeJson();
  for (const std::string& host : span_hosts) {
    EXPECT_NE(chrome.find("host " + host), std::string::npos)
        << "each fleet host gets its own labelled track";
  }

  // (d) /metrics parses and matches the frozen rolling aggregate; /status
  // and /events agree with the journal.
  const std::string exposition = HttpGet(http.port(), "/metrics");
  ASSERT_NE(exposition.find("200 OK"), std::string::npos);
  const std::string body = HttpBody(exposition);
  ExpectValidExposition(body);
  EXPECT_NE(body.find("switchv_updates_sent_total " +
                      std::to_string(report.metrics.updates_sent)),
            std::string::npos);
  EXPECT_NE(body.find("switchv_heartbeat_rtt_seconds_count"),
            std::string::npos)
      << "heartbeat RTT histograms must be exported per host";
  EXPECT_EQ(Wire(telemetry.RollingSnapshot()), Wire(report.metrics));

  const std::string status = HttpGet(http.port(), "/status");
  EXPECT_NE(status.find("\"finished\":true"), std::string::npos) << status;
  EXPECT_NE(status.find("\"shards_done\":" +
                        std::to_string(report.shards_run)),
            std::string::npos)
      << status;

  const std::string events_body = HttpBody(HttpGet(http.port(),
                                                   "/events?since=0"));
  std::size_t lines = 0;
  for (const char c : events_body) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, journal.size());
}

}  // namespace
}  // namespace switchv
